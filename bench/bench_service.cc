// Serving-loop benchmark: windows-per-second and per-window cost of the
// ServiceHarness across its robustness features — eviction on/off (the
// memory/throughput tradeoff of the rolling store), segment length (session
// rebuild amortization), sharding, inline vs background guide refresh, and
// a faulted run (flash crowd + slow shard + forced refresh failures) versus
// the clean baseline. Counters expose the service-side outcomes: matched
// pairs, evictions, shed load, and the final store size (the memory story —
// with eviction off the store holds the whole admitted history).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "serve/service_harness.h"

namespace ftoa {
namespace {

CityProfile BenchCity() {
  CityProfile profile;
  profile.name = "bench-service";
  profile.grid_x = 8;
  profile.grid_y = 6;
  profile.slots_per_day = 6;
  profile.history_days = 5;
  profile.workers_per_day = 120;
  profile.tasks_per_day = 140;
  profile.velocity = 3.0;
  profile.task_duration = 1.0;
  profile.worker_duration = 2.0;
  profile.seed = 2017;
  return profile;
}

/// Aborts with the status message; benches have no caller to report to.
template <typename ResultT>
auto DieUnless(ResultT result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench_service: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Runs `windows` serving windows per iteration on a fresh harness (the
/// harness is stateful and unbounded, so each iteration gets its own).
void RunService(benchmark::State& state, const ServiceOptions& options,
                int64_t windows) {
  int64_t processed = 0;
  ServiceTotals last;
  int64_t last_store = 0;
  for (auto _ : state) {
    auto harness = DieUnless(ServiceHarness::Create(
        BenchCity(), LoopedTraceSource::Options{}, options));
    const Status status = harness->RunWindows(windows);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_service: %s\n", status.ToString().c_str());
      std::exit(1);
    }
    processed += windows;
    last = harness->totals();
    last_store = harness->store_size();
  }
  state.SetItemsProcessed(processed);
  state.counters["matched"] = static_cast<double>(last.matched);
  state.counters["evicted"] = static_cast<double>(last.evictions);
  state.counters["shed"] = static_cast<double>(last.shed);
  state.counters["store"] = static_cast<double>(last_store);
  state.counters["swaps"] = static_cast<double>(last.guide_swaps);
}

/// The serving default: evicting store, one-day segments, inline refresh.
void BM_ServeBaseline(benchmark::State& state) {
  ServiceOptions options;
  RunService(state, options, state.range(0));
}

/// The unbounded reference the eviction property tests diff against: same
/// decisions, store grows with the admitted history.
void BM_ServeNoEvict(benchmark::State& state) {
  ServiceOptions options;
  options.evict_expired = false;
  RunService(state, options, state.range(0));
}

/// Segment-length sweep: shorter segments rotate (and rebuild) sessions
/// more often but bound carryover replay; range(1) is windows_per_segment.
void BM_ServeSegment(benchmark::State& state) {
  ServiceOptions options;
  options.windows_per_segment = static_cast<int>(state.range(1));
  RunService(state, options, state.range(0));
}

/// Sharded threaded sessions with background refresh — the soak topology.
void BM_ServeSharded(benchmark::State& state) {
  ServiceOptions options;
  options.num_shards = static_cast<int>(state.range(1));
  options.shard_threads = static_cast<int>(state.range(1));
  options.background_refresh = true;
  options.refresh.timeout_ms = 30000.0;
  RunService(state, options, state.range(0));
}

/// The acceptance fault plan over the soak topology: what robustness costs
/// when everything goes wrong at once.
void BM_ServeFaulted(benchmark::State& state) {
  ServiceOptions options;
  options.num_shards = 3;
  options.shard_threads = 3;
  options.background_refresh = true;
  options.refresh.timeout_ms = 30000.0;
  options.refresh_period_windows = 3;
  options.max_queue_depth = 110;
  options.faults =
      "slow-shard@4-6:shard=1:stall-ms=2,guide-fail@6-600:count=2,"
      "flash@8-9:factor=6";
  options.fault_seed = 42;
  RunService(state, options, state.range(0));
}

BENCHMARK(BM_ServeBaseline)->Arg(12)->Arg(24)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeNoEvict)->Arg(24)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeSegment)
    ->Args({24, 1})
    ->Args({24, 2})
    ->Args({24, 3})
    ->Args({24, 6})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeSharded)
    ->Args({24, 1})
    ->Args({24, 3})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeFaulted)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ftoa

BENCHMARK_MAIN();
