// Microbenchmark for the flow/matching engine overhaul:
//
//  * BM_MinCostFlowDijkstra vs BM_MinCostFlowSpfa — the new production
//    solver (Dijkstra over Johnson reduced costs, binary heap, reusable
//    arenas) against the retained SPFA reference on dense random bipartite
//    assignment networks. The acceptance bar for the overhaul was >= 3x at
//    2048 x 2048; measured ~5x on that instance.
//  * BM_MinCostFlowEngine/<shape>_<engine> — the FlowEngine shape sweep
//    behind ChooseFlowEngine's crossover table (docs/flow_engines.md):
//    each registered engine (ssp, blocking-ssp, cost-scaling, auto) on the
//    three canonical instance shapes — `dense` (unit-capacity bipartite,
//    distinct 1e6-range costs), `ties` (unit-capacity bipartite,
//    small-integer travel costs, the guide generator's regime), and
//    `heavy` (high-capacity compressed type-pair networks). The `auto`
//    rows certify that kAuto lands on the measured winner per shape.
//  * BM_MinCostFlowArenaReuse — same solve through a long-lived solver
//    whose Reset() keeps the edge arena and scratch buffers, the usage
//    pattern of guide generation in a live deployment.
//  * BM_DynamicMatchingArrivals vs BM_HopcroftKarpRebuildPerArrival — the
//    incremental matcher's per-arrival augmenting-path cost against
//    rebuilding a Hopcroft-Karp instance per arrival (the TGOA/GR pattern
//    this PR removed). The rebuild leg is quadratic, so it only runs at
//    small sizes.
//
// tools/run_bench_smoke.sh runs this binary and records BENCH_flow.json
// for the perf trajectory across PRs.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "flow/dynamic_matching.h"
#include "flow/hopcroft_karp.h"
#include "flow/min_cost_flow.h"
#include "util/rng.h"

namespace ftoa {
namespace {

// Dense random assignment network: unit-capacity source/worker/task/sink
// layout with `degree` random cost edges per worker (costs in the 1e6
// fixed-point range the guide generator uses for travel times).
void BuildAssignment(MinCostFlowGraph& g, int32_t n, int32_t degree,
                     uint64_t seed) {
  Rng rng(seed);
  const int32_t source = 0;
  const int32_t sink = 1 + 2 * n;
  g.Reset(sink + 1);
  g.ReserveEdges(static_cast<size_t>(n) * (static_cast<size_t>(degree) + 2));
  for (int32_t w = 0; w < n; ++w) g.AddEdge(source, 1 + w, 1, 0);
  for (int32_t r = 0; r < n; ++r) g.AddEdge(1 + n + r, sink, 1, 0);
  for (int32_t w = 0; w < n; ++w) {
    for (int32_t d = 0; d < degree; ++d) {
      g.AddEdge(1 + w,
                1 + n + static_cast<int32_t>(
                            rng.NextBounded(static_cast<uint64_t>(n))),
                1, 1 + static_cast<int64_t>(rng.NextBounded(1'000'000)));
    }
  }
}

void BM_MinCostFlowDijkstra(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  const int32_t degree = static_cast<int32_t>(state.range(1));
  MinCostFlowGraph g;
  int64_t flow = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BuildAssignment(g, n, degree, 42);
    state.ResumeTiming();
    flow = g.Solve(0, 1 + 2 * n).flow;
    benchmark::DoNotOptimize(flow);
  }
  state.counters["flow"] = static_cast<double>(flow);
  state.counters["path_searches"] = static_cast<double>(g.path_searches());
}
BENCHMARK(BM_MinCostFlowDijkstra)
    ->Args({512, 16})
    ->Args({1024, 32})
    ->Args({2048, 48})
    ->Unit(benchmark::kMillisecond);

void BM_MinCostFlowSpfa(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  const int32_t degree = static_cast<int32_t>(state.range(1));
  MinCostFlowGraph g;
  int64_t flow = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BuildAssignment(g, n, degree, 42);
    state.ResumeTiming();
    flow = g.SolveSpfa(0, 1 + 2 * n).flow;
    benchmark::DoNotOptimize(flow);
  }
  state.counters["flow"] = static_cast<double>(flow);
}
BENCHMARK(BM_MinCostFlowSpfa)
    ->Args({512, 16})
    ->Args({1024, 32})
    ->Args({2048, 48})
    ->Unit(benchmark::kMillisecond);

// The FlowEngine shape sweep. Three canonical shapes:
//  * kDense — BuildAssignment above: unit capacities, all-distinct costs.
//    Nearly every shortest-path cost class is unique, so one blocking
//    phase admits few paths; the per-search engines fight it out here.
//  * kTies  — same layout, costs in {1..4}: the guide generator's regime
//    (quantized travel times collide constantly). Each cost class admits
//    many vertex-disjoint paths, the blocking engine's territory.
//  * kHeavy — compressed type-pair shape: few nodes, capacities in the
//    hundreds. Per-unit augmentation pays per unit; cost-scaling's
//    network-size-bound refine is the point of this shape.
enum class BenchShape { kDense, kTies, kHeavy };

void BuildShaped(MinCostFlowGraph& g, BenchShape shape, int32_t n,
                 int32_t degree, uint64_t seed) {
  if (shape != BenchShape::kHeavy) {
    Rng rng(seed);
    const int32_t source = 0;
    const int32_t sink = 1 + 2 * n;
    const uint64_t cost_range =
        shape == BenchShape::kTies ? 4 : 1'000'000;
    g.Reset(sink + 1);
    g.ReserveEdges(static_cast<size_t>(n) *
                   (static_cast<size_t>(degree) + 2));
    for (int32_t w = 0; w < n; ++w) g.AddEdge(source, 1 + w, 1, 0);
    for (int32_t r = 0; r < n; ++r) g.AddEdge(1 + n + r, sink, 1, 0);
    for (int32_t w = 0; w < n; ++w) {
      for (int32_t d = 0; d < degree; ++d) {
        g.AddEdge(1 + w,
                  1 + n + static_cast<int32_t>(
                              rng.NextBounded(static_cast<uint64_t>(n))),
                  1, 1 + static_cast<int64_t>(rng.NextBounded(cost_range)));
      }
    }
    return;
  }
  Rng rng(seed);
  const int32_t source = 0;
  const int32_t sink = 1 + 2 * n;
  g.Reset(sink + 1);
  g.ReserveEdges(static_cast<size_t>(n) * (static_cast<size_t>(degree) + 2));
  for (int32_t w = 0; w < n; ++w) {
    g.AddEdge(source, 1 + w, 1 + static_cast<int64_t>(rng.NextBounded(256)),
              0);
  }
  for (int32_t r = 0; r < n; ++r) {
    g.AddEdge(1 + n + r, sink, 1 + static_cast<int64_t>(rng.NextBounded(256)),
              0);
  }
  for (int32_t w = 0; w < n; ++w) {
    for (int32_t d = 0; d < degree; ++d) {
      g.AddEdge(1 + w,
                1 + n + static_cast<int32_t>(
                            rng.NextBounded(static_cast<uint64_t>(n))),
                1 + static_cast<int64_t>(rng.NextBounded(256)),
                1 + static_cast<int64_t>(rng.NextBounded(1'000'000)));
    }
  }
}

void BM_MinCostFlowEngine(benchmark::State& state, FlowEngine engine,
                          BenchShape shape) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  const int32_t degree = static_cast<int32_t>(state.range(1));
  MinCostFlowGraph g;
  MinCostFlowGraph::Outcome outcome;
  for (auto _ : state) {
    state.PauseTiming();
    BuildShaped(g, shape, n, degree, 42);
    state.ResumeTiming();
    outcome = g.Solve(0, 1 + 2 * n, engine);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["flow"] = static_cast<double>(outcome.flow);
  state.counters["cost"] = static_cast<double>(outcome.cost);
  state.counters["path_searches"] = static_cast<double>(g.path_searches());
  state.counters["blocking_phases"] =
      static_cast<double>(g.blocking_phases());
  state.counters["refine_rounds"] = static_cast<double>(g.refine_rounds());
}

#define FTOA_ENGINE_BENCH(shape_tag, shape, n, degree)                       \
  BENCHMARK_CAPTURE(BM_MinCostFlowEngine, shape_tag##_ssp, FlowEngine::kSsp, \
                    shape)                                                   \
      ->Args({n, degree})                                                    \
      ->Unit(benchmark::kMillisecond);                                       \
  BENCHMARK_CAPTURE(BM_MinCostFlowEngine, shape_tag##_blocking,              \
                    FlowEngine::kBlockingSsp, shape)                         \
      ->Args({n, degree})                                                    \
      ->Unit(benchmark::kMillisecond);                                       \
  BENCHMARK_CAPTURE(BM_MinCostFlowEngine, shape_tag##_cost_scaling,          \
                    FlowEngine::kCostScaling, shape)                         \
      ->Args({n, degree})                                                    \
      ->Unit(benchmark::kMillisecond);                                       \
  BENCHMARK_CAPTURE(BM_MinCostFlowEngine, shape_tag##_auto,                  \
                    FlowEngine::kAuto, shape)                                \
      ->Args({n, degree})                                                    \
      ->Unit(benchmark::kMillisecond)

FTOA_ENGINE_BENCH(dense, BenchShape::kDense, 512, 16);
FTOA_ENGINE_BENCH(dense, BenchShape::kDense, 2048, 48);
FTOA_ENGINE_BENCH(ties, BenchShape::kTies, 512, 16);
FTOA_ENGINE_BENCH(ties, BenchShape::kTies, 2048, 48);
FTOA_ENGINE_BENCH(heavy, BenchShape::kHeavy, 128, 32);
FTOA_ENGINE_BENCH(heavy, BenchShape::kHeavy, 256, 32);

#undef FTOA_ENGINE_BENCH

// Includes the rebuild: Reset() + edge insertion + solve through one
// long-lived arena, i.e. the steady-state cost of one guide-generation
// round without any allocation churn.
void BM_MinCostFlowArenaReuse(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  const int32_t degree = static_cast<int32_t>(state.range(1));
  MinCostFlowGraph g;
  BuildAssignment(g, n, degree, 42);  // Warm the arenas.
  g.Solve(0, 1 + 2 * n);
  for (auto _ : state) {
    BuildAssignment(g, n, degree, 42);
    benchmark::DoNotOptimize(g.Solve(0, 1 + 2 * n).flow);
  }
}
BENCHMARK(BM_MinCostFlowArenaReuse)
    ->Args({512, 16})
    ->Args({1024, 32})
    ->Unit(benchmark::kMillisecond);

// Streaming arrivals: each left arrival inserts its edges and runs one
// augmenting-path search — the incremental TGOA/GR pattern. items == one
// arrival, so items_per_second^-1 is the per-arrival cost.
void BM_DynamicMatchingArrivals(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  const int32_t degree = static_cast<int32_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    DynamicBipartiteMatcher m;
    m.ReserveNodes(static_cast<size_t>(n), static_cast<size_t>(n));
    m.ReserveEdges(static_cast<size_t>(n) * degree);
    for (int32_t r = 0; r < n; ++r) m.AddRight();
    state.ResumeTiming();
    for (int32_t l = 0; l < n; ++l) {
      const int32_t slot = m.AddLeft();
      for (int32_t d = 0; d < degree; ++d) {
        m.AddEdge(slot, static_cast<int32_t>(
                            rng.NextBounded(static_cast<uint64_t>(n))));
      }
      m.TryAugmentLeft(slot);
    }
    benchmark::DoNotOptimize(m.matching_size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DynamicMatchingArrivals)
    ->Args({1024, 8})
    ->Args({4096, 8})
    ->Unit(benchmark::kMillisecond);

// The historical pattern: a fresh Hopcroft-Karp over the full revealed
// graph per arrival. Quadratic — kept at small sizes as the contrast.
void BM_HopcroftKarpRebuildPerArrival(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  const int32_t degree = static_cast<int32_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    std::vector<std::pair<int32_t, int32_t>> edges;
    edges.reserve(static_cast<size_t>(n) * degree);
    state.ResumeTiming();
    int64_t matching = 0;
    for (int32_t l = 0; l < n; ++l) {
      for (int32_t d = 0; d < degree; ++d) {
        edges.emplace_back(l, static_cast<int32_t>(rng.NextBounded(
                                  static_cast<uint64_t>(n))));
      }
      HopcroftKarp hk(l + 1, n);
      hk.ReserveEdges(edges.size());
      for (const auto& [u, v] : edges) hk.AddEdge(u, v);
      matching = hk.Solve();
    }
    benchmark::DoNotOptimize(matching);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HopcroftKarpRebuildPerArrival)
    ->Args({256, 8})
    ->Args({1024, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ftoa

BENCHMARK_MAIN();
