// E10 — Figure 6, column 2 (b, f, j): varying the sigma of the tasks'
// temporal distribution. Matching stays stable while mu - sigma still
// reaches the workers' temporal mass (paper Section 6.2).

#include "bench_fig6.h"

int main(int argc, char** argv) {
  return ftoa::bench::RunFig6Sweep(
      "Figure 6 col 2: varying temporal sigma", "sigma",
      [](ftoa::SyntheticConfig* config, double value) {
        config->tasks.temporal_sigma = value;
      },
      argc, argv);
}
