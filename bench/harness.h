// Shared infrastructure for the figure/table benchmark binaries: scaled
// workload construction, the standard algorithm suite (SimpleGreedy, GR,
// POLAR, POLAR-OP, OPT — the five series of Figures 4-6), sweep execution,
// and paper-style table rendering (one table per measured axis: matching
// size, running time, memory).
//
// Every binary accepts:
//   --scale=<f>        object-count multiplier vs the paper's defaults
//                      (default 1.0 = the paper's instance sizes)
//   --no-opt           skip the offline OPT series (dominates running time)
//   --hybrid           add the POLAR-OP+G extension series
//   --tgoa             add the TGOA [26] predecessor series (slow at full
//                      scale: it recomputes a matching per arrival)
//   --prediction=<m>   expected | replicate | perfect (synthetic sweeps)
//   --csv=<dir>        additionally dump each table as CSV into <dir>
//   --threads=<n>      worker threads for sweep-point preparation (instance
//                      + prediction + guide generation) and the sharded
//                      guide solve; the measured algorithm runs stay serial
//                      so Time/Memory remain paper-comparable

#ifndef FTOA_BENCH_HARNESS_H_
#define FTOA_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/guide_generator.h"
#include "core/prediction_matrix.h"
#include "gen/config.h"
#include "gen/synthetic.h"
#include "model/instance.h"
#include "sim/metrics.h"

namespace ftoa {
namespace bench {

/// Which prediction feeds the guide in synthetic sweeps.
enum class PredictionMode {
  kExpected,   ///< Expected per-type counts (i.i.d. model prior; default).
  kReplicate,  ///< Counts of an independent draw (sampling noise included).
  kPerfect,    ///< The realized counts themselves (oracle).
};

/// Parsed command-line options.
struct BenchContext {
  /// Default 1.0: the paper's instance sizes. Sub-type-density regimes
  /// (scale << 1 without shrinking the grid) change who wins — see
  /// EXPERIMENTS.md.
  double scale = 1.0;
  bool include_opt = true;
  bool include_hybrid = false;
  bool include_tgoa = false;
  PredictionMode prediction_mode = PredictionMode::kExpected;
  std::string csv_dir;
  /// OPT is skipped above this many objects per side even when enabled
  /// (its pruned bipartite graph stops fitting in laptop memory).
  int64_t opt_object_cap = 50000;
  /// Worker threads for sweep preparation and the sharded guide solve
  /// (--threads). 1 = fully serial.
  int num_threads = 1;
};

/// Parses argv; unknown flags abort with a usage message.
BenchContext ParseArgs(int argc, char** argv);

/// The paper's default synthetic configuration (Section 6.1) with object
/// counts scaled by context.scale.
SyntheticConfig DefaultSyntheticConfig(const BenchContext& context);

/// A city profile scaled for benchmarking: object counts scale linearly
/// and the grid area scales along, keeping per-(slot,cell) density — and
/// with it the algorithms' relative behaviour — roughly constant.
CityProfile ScaledCityProfile(const CityProfile& base, double scale);

/// Runs the full algorithm suite on one instance.
/// `prediction` feeds the guide for the POLAR family; guide construction is
/// offline preprocessing and excluded from the measured running time, as in
/// the paper ("we omit the running time of the offline preprocessing").
std::vector<RunMetrics> RunSuite(const Instance& instance,
                                 const PredictionMatrix& prediction,
                                 const GuideOptions& guide_options,
                                 const BenchContext& context);

/// As RunSuite, but with the guide already built (used by the parallel
/// sweep, which prepares guides off-thread and measures serially).
std::vector<RunMetrics> RunSuiteWithGuide(
    const Instance& instance,
    const std::shared_ptr<const OfflineGuide>& guide,
    const BenchContext& context);

/// One sweep point: an x-axis label plus the metrics of every algorithm.
struct SweepPoint {
  std::string x_label;
  std::vector<RunMetrics> metrics;
};

/// Generates the instance + independent-replicate prediction for `config`,
/// derives the guide options from it, and runs the suite. The label becomes
/// the row's x-axis value.
SweepPoint RunSyntheticPoint(const std::string& x_label,
                             const SyntheticConfig& config,
                             const BenchContext& context);

/// One labelled configuration of a sweep.
struct SweepConfig {
  std::string x_label;
  SyntheticConfig config;
};

/// Runs a whole synthetic sweep. With context.num_threads > 1 the
/// *preparation* of every point — instance generation, prediction, and
/// guide construction, i.e. the offline preprocessing the paper excludes
/// from its measurements — runs on a thread pool; the measured algorithm
/// runs then execute serially in sweep order, so Time/Memory numbers are
/// identical to the serial loop (the process-wide heap tracker and the
/// wall clock both need an otherwise-quiet process).
std::vector<SweepPoint> RunSyntheticSweep(
    const std::vector<SweepConfig>& configs, const BenchContext& context);

/// Prints the three paper-style tables (MatchingSize / Time(s) / Memory(MB))
/// for a figure and optionally dumps them as CSV.
void PrintFigure(const std::string& figure_name, const std::string& x_name,
                 const std::vector<SweepPoint>& points,
                 const BenchContext& context);

}  // namespace bench
}  // namespace ftoa

#endif  // FTOA_BENCH_HARNESS_H_
