// E2 — Figure 4, column 2 (b, f, j): the five algorithm series while
// varying the number of tasks |R| in {5000, 10k, 20k, 30k, 40k}
// (times --scale). The paper notes the worker/task roles are symmetric.

#include <cmath>
#include <string>
#include <vector>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace ftoa;
  using namespace ftoa::bench;
  const BenchContext context = ParseArgs(argc, argv);

  const int paper_sizes[] = {5000, 10000, 20000, 30000, 40000};
  std::vector<SweepConfig> configs;
  for (int size : paper_sizes) {
    SyntheticConfig config = DefaultSyntheticConfig(context);
    config.num_tasks = static_cast<int>(std::lround(size * context.scale));
    configs.push_back({std::to_string(size), config});
  }
  const std::vector<SweepPoint> points = RunSyntheticSweep(configs, context);
  PrintFigure("Figure 4 col 2: varying |R|", "|R|", points, context);
  return 0;
}
