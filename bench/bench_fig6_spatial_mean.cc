// E11 — Figure 6, column 3 (c, g, k): varying the mean of the tasks'
// spatial distribution. At 0.25 the task and worker centers coincide and
// wait-in-place baselines shine (no need to dispatch anyone); as the task
// center moves away the matching drops and guided movement pays off.

#include "bench_fig6.h"

int main(int argc, char** argv) {
  return ftoa::bench::RunFig6Sweep(
      "Figure 6 col 3: varying spatial mean", "mean",
      [](ftoa::SyntheticConfig* config, double value) {
        config->tasks.spatial_mean = value;
      },
      argc, argv);
}
