// E6 — Figure 5, column 2 (b, f, j): scalability, increasing |W| = |R|
// through {200k, 400k, 600k, 800k, 1M} (times --scale; the default scale
// keeps each point tractable on a laptop — pass --scale=1 for the paper's
// sizes). As in the paper, OPT's time/memory do not scale, so OPT is only
// run below the --no-opt/op-cap threshold.

#include <cmath>
#include <string>
#include <vector>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace ftoa;
  using namespace ftoa::bench;
  BenchContext context = ParseArgs(argc, argv);
  // Scalability sweeps are an order of magnitude larger than the other
  // figures; shrink the default scale accordingly (explicit --scale wins:
  // ParseArgs already applied it, so only adjust when untouched).
  const int paper_sizes[] = {200000, 400000, 600000, 800000, 1000000};

  std::vector<SweepConfig> configs;
  for (int size : paper_sizes) {
    SyntheticConfig config = DefaultSyntheticConfig(context);
    const int n = static_cast<int>(std::lround(size * context.scale * 0.1));
    config.num_workers = n;
    config.num_tasks = n;
    configs.push_back({std::to_string(size), config});
  }
  const std::vector<SweepPoint> points = RunSyntheticSweep(configs, context);
  PrintFigure("Figure 5 col 2: scalability |W| = |R|", "|W|(|R|)", points,
              context);
  return 0;
}
