// E17 — empirical check of the paper's theory (Theorems 1-2): under the
// i.i.d. input model of Definition 5, POLAR's competitive ratio is
// (1 - 1/e)^2 ~ 0.40 and POLAR-OP's is ~ 0.47, both with high probability.
// We sample many arrival sequences from a fixed prediction's induced
// distributions, compare each algorithm to the offline optimum, and print
// the worst and mean ratios. Expected shape: POLAR-OP's worst-case ratio
// clears 0.47 comfortably (the bound is not tight on benign inputs), POLAR
// trails it, and both beat their proven bounds.

#include <functional>
#include <iostream>
#include <memory>

#include "core/algorithm_registry.h"
#include "core/guide_generator.h"
#include "gen/synthetic.h"
#include "harness.h"
#include "sim/competitive.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ftoa;
  using namespace ftoa::bench;
  const BenchContext context = ParseArgs(argc, argv);

  // A compact i.i.d. universe: the competitive-ratio experiment needs many
  // trials, so the per-trial instance stays small.
  SyntheticConfig config;
  config.num_workers = static_cast<int>(800 * context.scale);
  config.num_tasks = static_cast<int>(800 * context.scale);
  config.grid_x = 12;
  config.grid_y = 12;
  config.num_slots = 12;
  config.seed = 4242;
  auto prediction = GenerateSyntheticExpectedPrediction(config);
  if (!prediction.ok()) return 1;

  GuideOptions guide_options;
  guide_options.engine = GuideOptions::Engine::kAuto;
  guide_options.worker_duration = config.worker_duration;
  guide_options.task_duration = config.task_duration;
  auto guide_result = GuideGenerator(config.velocity, guide_options)
                          .Generate(*prediction);
  if (!guide_result.ok()) return 1;
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(guide_result).value());

  const IidInstanceSampler sampler(*prediction, config.velocity,
                                   config.worker_duration,
                                   config.task_duration);
  const int trials = 40;

  std::cout << "\n=== E17: empirical competitive ratios under the i.i.d. "
               "model ("
            << trials << " trials) ===\n";
  TablePrinter table(
      {"algorithm", "min ratio", "mean ratio", "proven bound"});

  AlgorithmDeps deps;
  deps.guide = guide;
  struct Entry {
    const char* name;  ///< Registry name; per-trial factory goes through it.
    const char* bound;
  };
  const Entry entries[] = {{"polar", "0.40 (Thm 1)"},
                           {"polar-op", "0.47 (Thm 2)"}};
  for (const Entry& entry : entries) {
    const std::string name = entry.name;
    const auto factory = [&name, &deps]() {
      return std::move(CreateAlgorithm(name, deps)).value();
    };
    const auto estimate = EstimateCompetitiveRatio(
        sampler, factory, trials, 7, context.num_threads);
    if (!estimate.ok()) {
      std::cerr << estimate.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({AlgorithmDisplayName(name),
                  TablePrinter::FormatDouble(estimate->min_ratio, 3),
                  TablePrinter::FormatDouble(estimate->mean_ratio, 3),
                  entry.bound});
  }
  table.Print(std::cout);
  std::cout << "(ratios are vs the offline OPT of each sampled arrival "
               "sequence)\n";
  return 0;
}
