// Steady-state serving cost benchmark for the warm-refresh / incremental-
// rotation PR, in three families:
//
//   BM_GuideRefresh/{cold,warm}/C   — guide re-solve cost on a sparse-delta
//       prediction sequence over a C-cluster city (each cluster its own
//       connected component of the type-pair network; each refresh dirties
//       at most two). Warm reuses the clean components' flows, cold is the
//       full re-solve — the headline is the real_time ratio (>= 2x is the
//       PR's acceptance bar).
//   BM_Rotation/{rebuild,incremental}/W — per-window serving cost as the
//       object store grows (eviction off, 1-window segments = 6 rotations
//       per day). Rebuild re-scans and re-sorts the store at every rotation
//       (O(store)); incremental maintains the sorted spine (O(carryover +
//       new)), so its cost stays flat as W (and the store) grows.
//   BM_Interference/{dedicated,shared_slice} — the soak topology (sharded
//       threaded sessions + background refresh) with the PR 6 dedicated
//       refresher thread vs the shared pool + analytical PoolSlice layout.
//       Counters expose shard decision p99 alongside refresh wall time —
//       the isolation story in both directions.
//
// The clustered workload mirrors tests/core/guide_warm_refresh_test.cc: at
// dense city scale the type-pair network is one giant component and warm
// reuse only fires on identical predictions, so the sparse-delta claim is
// exercised where it holds — clustered demand pockets out of feasibility
// reach of each other.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "core/guide_generator.h"
#include "core/prediction_matrix.h"
#include "serve/service_harness.h"
#include "spatial/spacetime.h"
#include "util/rng.h"

namespace ftoa {
namespace {

/// Aborts with the status message; benches have no caller to report to.
template <typename ResultT>
auto DieUnless(ResultT result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench_refresh: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void DieUnlessOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench_refresh: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

// ---------------------------------------------------------------------------
// Family 1: warm vs cold guide refresh on a sparse-delta sequence.
// ---------------------------------------------------------------------------

/// Cluster c occupies kClusterCells adjacent cells with kGapCells empty
/// cells before the next one. Velocity 2 with durations 3/2 gives a
/// feasibility reach of ~6 units; the 8-unit gap keeps every cluster its
/// own component, while within a cluster most cell pairs connect — each
/// component is a real min-cost solve, not a toy.
constexpr int kClusterCells = 8;
constexpr int kGapCells = 4;
constexpr int kClusterStride = kClusterCells + kGapCells;
constexpr double kCellSize = 2.0;

SpacetimeSpec ClusteredSpec(int clusters) {
  const int cells = kClusterStride * clusters;
  return SpacetimeSpec(SlotSpec(2.0, 1),
                       GridSpec(kCellSize * cells, kCellSize, cells, 1));
}

GuideOptions RefreshOptions(GuideRefreshMode mode) {
  GuideOptions options;
  options.engine = GuideOptions::Engine::kCompressedMinCost;
  options.refresh_mode = mode;
  options.worker_duration = 3.0;
  options.task_duration = 2.0;
  return options;
}

/// One cluster's demand: a (workers, tasks) pair per occupied cell.
using ClusterCounts = std::vector<std::pair<int, int>>;

PredictionMatrix MakePrediction(const SpacetimeSpec& st,
                                const std::vector<ClusterCounts>& clusters) {
  PredictionMatrix prediction(st);
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (size_t i = 0; i < clusters[c].size(); ++i) {
      const int col =
          kClusterStride * static_cast<int>(c) + static_cast<int>(i);
      const TypeId type = st.TypeAt(0, st.grid().CellAt(col, 0));
      prediction.set_workers_at(type, clusters[c][i].first);
      prediction.set_tasks_at(type, clusters[c][i].second);
    }
  }
  return prediction;
}

ClusterCounts DrawCluster(Rng* rng) {
  ClusterCounts counts;
  for (int i = 0; i < kClusterCells; ++i) {
    counts.emplace_back(static_cast<int>(10 + rng->NextBounded(50)),
                        static_cast<int>(10 + rng->NextBounded(50)));
  }
  return counts;
}

/// A cyclic sparse-delta sequence: prediction i is the base with cluster
/// (i * 3) % clusters swapped to its alternate demand. Consecutive steps —
/// including the iteration-boundary wrap — differ in at most two clusters,
/// so a warm refresh re-solves at most 2 of `clusters` components.
std::vector<PredictionMatrix> SparseDeltaSequence(int clusters, int steps) {
  Rng rng(20260808ULL);
  std::vector<ClusterCounts> base, alt;
  for (int c = 0; c < clusters; ++c) {
    base.push_back(DrawCluster(&rng));
    alt.push_back(DrawCluster(&rng));
  }
  const SpacetimeSpec st = ClusteredSpec(clusters);
  std::vector<PredictionMatrix> sequence;
  for (int i = 0; i < steps; ++i) {
    auto counts = base;
    const size_t dirty = static_cast<size_t>((i * 3) % clusters);
    counts[dirty] = alt[dirty];
    sequence.push_back(MakePrediction(st, counts));
  }
  return sequence;
}

void BM_GuideRefresh(benchmark::State& state, GuideRefreshMode mode) {
  const int clusters = static_cast<int>(state.range(0));
  constexpr int kSteps = 8;
  const auto sequence = SparseDeltaSequence(clusters, kSteps);
  // The generator persists across iterations: after the first (cold
  // bootstrap) call, every warm Generate sees the previous step's cache —
  // the refresher's steady state.
  const GuideGenerator generator(2.0, RefreshOptions(mode));
  int64_t refreshes = 0;
  for (auto _ : state) {
    for (const PredictionMatrix& prediction : sequence) {
      auto guide = DieUnless(generator.Generate(prediction));
      benchmark::DoNotOptimize(guide);
    }
    refreshes += kSteps;
  }
  state.SetItemsProcessed(refreshes);
  const GuideRefreshStats& stats = generator.last_refresh_stats();
  state.counters["components"] = static_cast<double>(stats.components_total);
  state.counters["reused"] = static_cast<double>(stats.components_reused);
  state.counters["pairs_total"] = static_cast<double>(stats.pairs_total);
  state.counters["pairs_reused"] = static_cast<double>(stats.pairs_reused);
}

// ---------------------------------------------------------------------------
// Family 2: incremental vs rebuild segment rotation as the store grows.
// ---------------------------------------------------------------------------

CityProfile RotationCity() {
  CityProfile profile;
  profile.name = "bench-rotation";
  profile.grid_x = 8;
  profile.grid_y = 6;
  profile.slots_per_day = 6;
  profile.history_days = 5;
  profile.workers_per_day = 300;
  profile.tasks_per_day = 330;
  profile.velocity = 3.0;
  profile.task_duration = 1.0;
  profile.worker_duration = 2.0;
  profile.seed = 2017;
  return profile;
}

void BM_Rotation(benchmark::State& state, bool incremental) {
  const int64_t windows = state.range(0);
  ServiceOptions options;
  options.algorithm = "simple-greedy";  // Cheap decisions: rotation shows.
  options.windows_per_segment = 1;      // Six rotations per day.
  options.evict_expired = false;        // The store keeps the history.
  options.incremental_rotation = incremental;
  int64_t processed = 0;
  ServiceTotals last;
  int64_t last_store = 0;
  for (auto _ : state) {
    auto harness = DieUnless(ServiceHarness::Create(
        RotationCity(), LoopedTraceSource::Options{}, options));
    DieUnlessOk(harness->RunWindows(windows));
    processed += windows;
    last = harness->totals();
    last_store = harness->store_size();
  }
  state.SetItemsProcessed(processed);
  state.counters["matched"] = static_cast<double>(last.matched);
  state.counters["store"] = static_cast<double>(last_store);
  state.counters["segments"] = static_cast<double>(last.segments);
}

// ---------------------------------------------------------------------------
// Family 3: background-refresh interference — dedicated vs shared slice.
// ---------------------------------------------------------------------------

CityProfile InterferenceCity() {
  CityProfile profile;
  profile.name = "bench-interference";
  profile.grid_x = 20;
  profile.grid_y = 20;
  profile.slots_per_day = 6;
  profile.history_days = 5;
  profile.workers_per_day = 12000;
  profile.tasks_per_day = 13000;
  profile.velocity = 3.0;
  profile.task_duration = 1.0;
  profile.worker_duration = 2.0;
  profile.seed = 2017;
  return profile;
}

void BM_Interference(benchmark::State& state, int analytical_slice) {
  const int64_t windows = state.range(0);
  ServiceOptions options;
  options.num_shards = 2;
  options.shard_threads = 2;
  options.background_refresh = true;
  options.refresh_period_windows = 2;
  options.refresh.timeout_ms = 30000.0;
  options.guide.engine = GuideOptions::Engine::kCompressed;
  options.guide.refresh_mode = GuideRefreshMode::kWarm;
  options.analytical_slice = analytical_slice;
  int64_t processed = 0;
  double p99 = 0.0;
  ServiceTotals last;
  for (auto _ : state) {
    auto harness = DieUnless(ServiceHarness::Create(
        InterferenceCity(), LoopedTraceSource::Options{}, options));
    DieUnlessOk(harness->RunWindows(windows));
    processed += windows;
    p99 = 0.0;
    for (const WindowMetrics& w : harness->windows()) {
      p99 = std::max(p99, w.p99_ms);
    }
    last = harness->totals();
  }
  state.SetItemsProcessed(processed);
  state.counters["shard_p99_ms"] = p99;
  state.counters["matched"] = static_cast<double>(last.matched);
  state.counters["publishes"] =
      static_cast<double>(last.warm_refreshes + last.cold_refreshes);
  state.counters["refresh_ms"] = last.refresh_ms;
}

BENCHMARK_CAPTURE(BM_GuideRefresh, cold, GuideRefreshMode::kCold)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GuideRefresh, warm, GuideRefreshMode::kWarm)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_Rotation, rebuild, false)
    ->Arg(96)
    ->Arg(288)
    ->Arg(864)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Rotation, incremental, true)
    ->Arg(96)
    ->Arg(288)
    ->Arg(864)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_Interference, dedicated, 0)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Interference, shared_slice, 1)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ftoa

BENCHMARK_MAIN();
