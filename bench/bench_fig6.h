// Shared driver of E9-E12 — Figure 6: the five algorithm series while
// varying one parameter of the tasks' temporal/spatial normal
// distributions over {0.25, 0.375, 0.5, 0.625, 0.75} (Table 4). Workers
// stay at the paper's fixed 0.25-parameters, so these sweeps move the task
// mass relative to the worker mass.

#ifndef FTOA_BENCH_BENCH_FIG6_H_
#define FTOA_BENCH_BENCH_FIG6_H_

#include <functional>
#include <string>
#include <vector>

#include "harness.h"
#include "util/table_printer.h"

namespace ftoa {
namespace bench {

/// Runs one Figure 6 column: `apply` installs the swept value into the
/// config's task-side distribution.
inline int RunFig6Sweep(
    const std::string& figure_name, const std::string& x_name,
    const std::function<void(SyntheticConfig*, double)>& apply, int argc,
    char** argv) {
  const BenchContext context = ParseArgs(argc, argv);
  const double values[] = {0.25, 0.375, 0.5, 0.625, 0.75};
  std::vector<SweepConfig> configs;
  for (double value : values) {
    SyntheticConfig config = DefaultSyntheticConfig(context);
    apply(&config, value);
    configs.push_back({TablePrinter::FormatDouble(value, 3), config});
  }
  const std::vector<SweepPoint> points = RunSyntheticSweep(configs, context);
  PrintFigure(figure_name, x_name, points, context);
  return 0;
}

}  // namespace bench
}  // namespace ftoa

#endif  // FTOA_BENCH_BENCH_FIG6_H_
