// Streaming-session microbenchmark: the per-arrival decision cost of
// driving an AssignmentSession event by event (the production dispatcher's
// serving path) and the streaming-vs-batch throughput overhead of the
// session API. Batch Run() is the same replay through one session, so the
// two must track each other closely; the per-decision latency percentiles
// come from the sim/runner streaming mode and are the numbers a live
// deployment would put an SLO on.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/algorithm_registry.h"
#include "core/guide_generator.h"
#include "gen/synthetic.h"
#include "model/arrival_stream.h"
#include "sim/runner.h"

namespace ftoa {
namespace {

SyntheticConfig ConfigForSize(int64_t objects) {
  SyntheticConfig config;
  config.num_workers = static_cast<int>(objects);
  config.num_tasks = static_cast<int>(objects);
  config.grid_x = 30;
  config.grid_y = 30;
  config.num_slots = 24;
  config.seed = 1234;
  return config;
}

struct Workload {
  std::unique_ptr<Instance> instance;
  AlgorithmDeps deps;
};

/// Aborts with the status message; benches have no caller to report to.
template <typename ResultT>
auto DieUnless(ResultT result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench_streaming: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

Workload MakeWorkload(int64_t objects) {
  const SyntheticConfig config = ConfigForSize(objects);
  auto instance = DieUnless(GenerateSyntheticInstance(config));
  auto prediction = DieUnless(GenerateSyntheticPrediction(config));
  GuideOptions options;
  options.engine = GuideOptions::Engine::kAuto;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;
  auto guide = DieUnless(
      GuideGenerator(config.velocity, options).Generate(prediction));
  Workload workload;
  workload.instance = std::make_unique<Instance>(std::move(instance));
  workload.deps.guide =
      std::make_shared<const OfflineGuide>(std::move(guide));
  return workload;
}

/// Batch replay throughput: Run() drains the whole stream per iteration
/// (including BuildArrivalStream's sort — batch replay pays it per run,
/// while a live stream arrives pre-ordered; BM_StreamRun below therefore
/// pre-builds the events once).
void RunBatch(benchmark::State& state, const std::string& algorithm_name) {
  const Workload workload = MakeWorkload(state.range(0));
  const auto algorithm =
      DieUnless(CreateAlgorithm(algorithm_name, workload.deps));
  int64_t objects = 0;
  for (auto _ : state) {
    Assignment assignment = algorithm->Run(*workload.instance);
    benchmark::DoNotOptimize(assignment.size());
    objects += static_cast<int64_t>(workload.instance->num_workers() +
                                    workload.instance->num_tasks());
  }
  state.SetItemsProcessed(objects);
}

/// Streaming throughput: the same replay, fed event by event by hand (no
/// per-decision stopwatch — this isolates the session-API overhead).
void RunStream(benchmark::State& state, const std::string& algorithm_name) {
  const Workload workload = MakeWorkload(state.range(0));
  const auto algorithm =
      DieUnless(CreateAlgorithm(algorithm_name, workload.deps));
  const std::vector<ArrivalEvent> events =
      BuildArrivalStream(*workload.instance);
  int64_t objects = 0;
  for (auto _ : state) {
    std::unique_ptr<AssignmentSession> session =
        algorithm->StartSession(*workload.instance);
    for (const ArrivalEvent& event : events) {
      if (event.kind == ObjectKind::kWorker) {
        session->OnWorker(event.index, event.time);
      } else {
        session->OnTask(event.index, event.time);
      }
    }
    const SessionResult result = session->Finish();
    benchmark::DoNotOptimize(result.assignment.size());
    objects += static_cast<int64_t>(events.size());
  }
  state.SetItemsProcessed(objects);
}

/// Per-decision latency percentiles via the runner's streaming mode (this
/// is the instrumented path a live dispatcher would report from).
void RunLatency(benchmark::State& state,
                const std::string& algorithm_name) {
  const Workload workload = MakeWorkload(state.range(0));
  const auto algorithm =
      DieUnless(CreateAlgorithm(algorithm_name, workload.deps));
  RunnerOptions options;
  options.streaming = true;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  int64_t objects = 0;
  for (auto _ : state) {
    const RunMetrics metrics = DieUnless(
        RunAlgorithm(algorithm.get(), *workload.instance, options));
    p50 = metrics.decision_latency_p50_ns;
    p99 = metrics.decision_latency_p99_ns;
    max = metrics.decision_latency_max_ns;
    objects += metrics.decisions;
  }
  state.SetItemsProcessed(objects);
  state.counters["p50_ns"] = p50;
  state.counters["p99_ns"] = p99;
  state.counters["max_ns"] = max;
}

void BM_BatchRun(benchmark::State& state, const std::string& name) {
  RunBatch(state, name);
}
void BM_StreamRun(benchmark::State& state, const std::string& name) {
  RunStream(state, name);
}
void BM_DecisionLatency(benchmark::State& state, const std::string& name) {
  RunLatency(state, name);
}

BENCHMARK_CAPTURE(BM_BatchRun, polar_op, "polar-op")
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_StreamRun, polar_op, "polar-op")
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BatchRun, simple_greedy, "simple-greedy")
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_StreamRun, simple_greedy, "simple-greedy")
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BatchRun, gr, "gr")
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_StreamRun, gr, "gr")
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BatchRun, tgoa, "tgoa")
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_StreamRun, tgoa, "tgoa")
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_DecisionLatency, polar_op, "polar-op")
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DecisionLatency, polar, "polar")
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DecisionLatency, hybrid, "polar-op-g")
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ftoa

BENCHMARK_MAIN();
