// E7 — Figure 5, column 3 (c, g, k): varying Dr on the Beijing-profile
// city trace (the proprietary Didi dataset is substituted by the city
// simulator; see DESIGN.md Section 3).

#include "bench_fig5_real.h"
#include "gen/config.h"

int main(int argc, char** argv) {
  return ftoa::bench::RunCityDeadlineSweep(
      ftoa::BeijingProfile(), "Figure 5 col 3: Beijing trace, varying Dr",
      argc, argv);
}
