// E5 — Figure 5, column 1 (a, e, i): the five algorithm series while
// varying the number of time slots t in {12, 24, 48, 96, 144}. The horizon
// is fixed; more slots mean finer temporal types, fewer objects per type,
// and a smaller matching (mirroring the grid-granularity effect).

#include <string>
#include <vector>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace ftoa;
  using namespace ftoa::bench;
  const BenchContext context = ParseArgs(argc, argv);

  const int slot_counts[] = {12, 24, 48, 96, 144};
  std::vector<SweepConfig> configs;
  for (int t : slot_counts) {
    SyntheticConfig config = DefaultSyntheticConfig(context);
    // Keep the physical horizon of the default (48 one-unit slots) while
    // repartitioning it into t slots: time-unit scale = 48 / t per slot, so
    // velocity (cells per slot) and durations (slots) rescale accordingly.
    const double slot_length = 48.0 / t;
    config.num_slots = t;
    config.velocity = 5.0 * slot_length;
    config.task_duration = 2.0 / slot_length;
    config.worker_duration = 3.0 / slot_length;
    configs.push_back({std::to_string(t), config});
  }
  const std::vector<SweepPoint> points = RunSyntheticSweep(configs, context);
  PrintFigure("Figure 5 col 1: varying time slots", "TimeSlot", points,
              context);
  return 0;
}
