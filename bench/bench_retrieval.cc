// Candidate-retrieval engine benchmark: per-decision cost of the ported
// online algorithms under --retrieval=engine vs the historical linear
// scan, as the live-object count grows over a fixed service region (the
// paper's Figure 4b axis — a city densifying through the day). The linear
// scan pays the whole waiting set per decision, so its per-decision cost
// grows linearly with N; the engine's best-first ring walk stops at the
// first ring that cannot beat the current best, so a denser index
// *shortens* the walk and its per-decision cost grows sublinearly — the
// curve BENCH_retrieval.json records (cells-visited percentiles come
// straight from the engine's own RetrievalStats). The approx-guide series
// measures the generation-time saving and the matched-utility gap of
// sampled type-pair networks against the exact guide, with the per-run
// certified loss bound alongside.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/algorithm_registry.h"
#include "core/guide_generator.h"
#include "gen/synthetic.h"

namespace ftoa {
namespace {

/// Aborts with the status message; benches have no caller to report to.
template <typename ResultT>
auto DieUnless(ResultT result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench_retrieval: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Fixed 30x30 region (the scalability benches' geometry); sweeping the
/// object count sweeps the live density every query works against.
SyntheticConfig ConfigForSize(int64_t objects) {
  SyntheticConfig config;
  config.num_workers = static_cast<int>(objects);
  config.num_tasks = static_cast<int>(objects);
  config.grid_x = 30;
  config.grid_y = 30;
  config.num_slots = 24;
  // City-trace regime: the reachable disk (velocity x service window) is a
  // small fraction of the region, so the disk query is actually selective.
  config.velocity = 1.5;
  config.seed = 4321;
  return config;
}

void RunDecisionThroughput(benchmark::State& state,
                           const std::string& algorithm_name,
                           RetrievalMode mode) {
  const int64_t objects = state.range(0);
  const auto instance =
      DieUnless(GenerateSyntheticInstance(ConfigForSize(objects)));
  AlgorithmDeps deps;
  deps.retrieval = mode;
  const auto algorithm = DieUnless(CreateAlgorithm(algorithm_name, deps));
  int64_t decisions = 0;
  RunTrace trace;
  int64_t matched = 0;
  for (auto _ : state) {
    trace = RunTrace();
    const Assignment assignment = algorithm->Run(instance, &trace);
    matched = static_cast<int64_t>(assignment.size());
    benchmark::DoNotOptimize(matched);
    decisions += static_cast<int64_t>(instance.num_workers() +
                                      instance.num_tasks());
  }
  state.SetItemsProcessed(decisions);  // items/s = decisions per second.
  state.counters["matched"] = static_cast<double>(matched);
  if (mode == RetrievalMode::kEngine && trace.retrieval.queries > 0) {
    state.counters["cells_p50"] =
        static_cast<double>(trace.retrieval.CellsVisitedPercentile(0.50));
    state.counters["cells_p99"] =
        static_cast<double>(trace.retrieval.CellsVisitedPercentile(0.99));
    state.counters["examined_per_query"] =
        static_cast<double>(trace.retrieval.candidates_examined) /
        static_cast<double>(trace.retrieval.queries);
  }
}

void BM_RetrievalEngine(benchmark::State& state, const std::string& name) {
  RunDecisionThroughput(state, name, RetrievalMode::kEngine);
}
void BM_RetrievalLinear(benchmark::State& state, const std::string& name) {
  RunDecisionThroughput(state, name, RetrievalMode::kLinear);
}

BENCHMARK_CAPTURE(BM_RetrievalEngine, simple_greedy, "simple-greedy")
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RetrievalLinear, simple_greedy, "simple-greedy")
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);
// TGOA recomputes a matching per arrival; keep its sweep short.
BENCHMARK_CAPTURE(BM_RetrievalEngine, tgoa, "tgoa")
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RetrievalLinear, tgoa, "tgoa")
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

/// Guide generation at a sampling rate, with the matched-utility gap
/// against the exact guide and the per-run certified loss bound as
/// counters. Rate 1.0 is the exact baseline series.
void BM_ApproxGuide(benchmark::State& state, double rate) {
  const SyntheticConfig config = ConfigForSize(8000);
  const auto prediction = DieUnless(GenerateSyntheticPrediction(config));
  GuideOptions options;
  options.engine = GuideOptions::Engine::kAuto;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;
  const auto exact = DieUnless(
      GuideGenerator(config.velocity, options).Generate(prediction));

  options.approx_sample_rate = rate;
  const GuideGenerator generator(config.velocity, options);
  int64_t matched = 0;
  for (auto _ : state) {
    const auto guide = DieUnless(generator.Generate(prediction));
    matched = guide.matched_pairs();
    benchmark::DoNotOptimize(matched);
  }
  const ApproxGuideReport& report = generator.last_approx_report();
  state.counters["matched"] = static_cast<double>(matched);
  state.counters["exact_matched"] =
      static_cast<double>(exact.matched_pairs());
  state.counters["utility_gap"] =
      static_cast<double>(exact.matched_pairs() - matched);
  state.counters["loss_bound"] =
      static_cast<double>(report.utility_loss_bound);
  state.counters["sampled_pairs"] =
      static_cast<double>(report.sampled_pairs);
  state.counters["feasible_pairs"] =
      static_cast<double>(report.feasible_pairs);
}

BENCHMARK_CAPTURE(BM_ApproxGuide, rate_100, 1.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ApproxGuide, rate_50, 0.5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ApproxGuide, rate_25, 0.25)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ftoa

BENCHMARK_MAIN();
