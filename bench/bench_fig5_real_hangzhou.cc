// E8 — Figure 5, column 4 (d, h, l): varying Dr on the Hangzhou-profile
// city trace (supply slightly exceeds demand, unlike Beijing — Table 3).

#include "bench_fig5_real.h"
#include "gen/config.h"

int main(int argc, char** argv) {
  return ftoa::bench::RunCityDeadlineSweep(
      ftoa::HangzhouProfile(),
      "Figure 5 col 4: Hangzhou trace, varying Dr", argc, argv);
}
