// E12 — Figure 6, column 4 (d, h, l): varying the covariance of the
// tasks' spatial distribution. A tighter task cloud far from the worker
// center reduces the overlap; a wider one restores it.

#include "bench_fig6.h"

int main(int argc, char** argv) {
  return ftoa::bench::RunFig6Sweep(
      "Figure 6 col 4: varying spatial covariance", "cov",
      [](ftoa::SyntheticConfig* config, double value) {
        config->tasks.spatial_cov = value;
      },
      argc, argv);
}
