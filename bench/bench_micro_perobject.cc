// E14 — google-benchmark microbenchmark backing the paper's O(1)
// complexity claim (Sections 5.1-5.2): per-arrival processing cost of each
// online algorithm as the instance grows. POLAR/POLAR-OP must stay flat
// (each arrival touches one guide node); SimpleGreedy's linear scan grows
// with the number of waiting objects; GR re-matches per window.

#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/gr_batch.h"
#include "baselines/simple_greedy.h"
#include "core/guide_generator.h"
#include "core/polar.h"
#include "core/polar_op.h"
#include "gen/synthetic.h"

namespace ftoa {
namespace {

SyntheticConfig ConfigForSize(int64_t objects) {
  SyntheticConfig config;
  config.num_workers = static_cast<int>(objects);
  config.num_tasks = static_cast<int>(objects);
  config.grid_x = 30;
  config.grid_y = 30;
  config.num_slots = 24;
  config.seed = 1234;
  return config;
}

struct Workload {
  std::unique_ptr<Instance> instance;
  std::shared_ptr<const OfflineGuide> guide;
};

Workload MakeWorkload(int64_t objects) {
  const SyntheticConfig config = ConfigForSize(objects);
  auto instance = GenerateSyntheticInstance(config);
  auto prediction = GenerateSyntheticPrediction(config);
  GuideOptions options;
  options.engine = GuideOptions::Engine::kAuto;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;
  auto guide = GuideGenerator(config.velocity, options)
                   .Generate(*prediction);
  Workload workload;
  workload.instance =
      std::make_unique<Instance>(std::move(instance).value());
  workload.guide = std::make_shared<const OfflineGuide>(
      std::move(guide).value());
  return workload;
}

template <typename AlgorithmT>
void RunPerObject(benchmark::State& state, AlgorithmT& algorithm,
                  const Instance& instance) {
  int64_t objects = 0;
  for (auto _ : state) {
    Assignment assignment = algorithm.Run(instance);
    benchmark::DoNotOptimize(assignment.size());
    objects += static_cast<int64_t>(instance.num_workers() +
                                    instance.num_tasks());
  }
  state.SetItemsProcessed(objects);
  // items_per_second's reciprocal is the per-arrival processing time.
}

void BM_PolarPerObject(benchmark::State& state) {
  const Workload workload = MakeWorkload(state.range(0));
  Polar polar(workload.guide);
  RunPerObject(state, polar, *workload.instance);
}
BENCHMARK(BM_PolarPerObject)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_PolarOpPerObject(benchmark::State& state) {
  const Workload workload = MakeWorkload(state.range(0));
  PolarOp polar_op(workload.guide);
  RunPerObject(state, polar_op, *workload.instance);
}
BENCHMARK(BM_PolarOpPerObject)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SimpleGreedyPerObject(benchmark::State& state) {
  const Workload workload = MakeWorkload(state.range(0));
  SimpleGreedy greedy;
  RunPerObject(state, greedy, *workload.instance);
}
BENCHMARK(BM_SimpleGreedyPerObject)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SimpleGreedyIndexedPerObject(benchmark::State& state) {
  const Workload workload = MakeWorkload(state.range(0));
  SimpleGreedy greedy(SimpleGreedyOptions{.use_spatial_index = true});
  RunPerObject(state, greedy, *workload.instance);
}
BENCHMARK(BM_SimpleGreedyIndexedPerObject)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GrPerObject(benchmark::State& state) {
  const Workload workload = MakeWorkload(state.range(0));
  GrBatch gr;
  RunPerObject(state, gr, *workload.instance);
}
BENCHMARK(BM_GrPerObject)->Arg(1000)->Arg(4000)->Arg(16000);

}  // namespace
}  // namespace ftoa

BENCHMARK_MAIN();
