// E4 — Figure 4, column 4 (d, h, l): the five algorithm series while
// varying the grid granularity g = x*y with x = y in {20, 30, 50, 100,
// 200}. Finer grids thin out each area's objects and shrink the spatial
// overlap per type, reducing matching size; the per-grid model state grows
// the memory footprint.

#include <string>
#include <vector>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace ftoa;
  using namespace ftoa::bench;
  const BenchContext context = ParseArgs(argc, argv);

  const int grids[] = {20, 30, 50, 100, 200};
  std::vector<SweepConfig> configs;
  for (int g : grids) {
    SyntheticConfig config = DefaultSyntheticConfig(context);
    // The paper divides the *same* region into more cells; our unit system
    // ties region size to the default 50x50, so scale the velocity and
    // spreads with the cell count to keep physics identical.
    const double ratio = g / 50.0;
    config.grid_x = g;
    config.grid_y = g;
    config.velocity = 5.0 * ratio;  // Same physical speed, finer cells.
    configs.push_back({std::to_string(g), config});
  }
  const std::vector<SweepPoint> points = RunSyntheticSweep(configs, context);
  PrintFigure("Figure 4 col 4: varying grid granularity", "Grid", points,
              context);
  return 0;
}
