// Shared driver of E7/E8 — Figure 5, columns 3-4: the five algorithm
// series on the (simulated) Beijing/Hangzhou taxi-calling traces while
// varying the task deadline Dr in {0.5, 0.75, 1.0, 1.25, 1.5}. The full
// two-step pipeline runs per point: multi-week history -> offline
// prediction (HP-MSI, the Table 5 winner) -> guide -> online assignment.

#ifndef FTOA_BENCH_BENCH_FIG5_REAL_H_
#define FTOA_BENCH_BENCH_FIG5_REAL_H_

#include <string>
#include <vector>

#include "gen/city_trace.h"
#include "harness.h"
#include "prediction/hp_msi.h"
#include "util/table_printer.h"

namespace ftoa {
namespace bench {

/// Builds the predicted per-type matrices for `day` from `predictor`.
inline PredictionMatrix PredictCityDay(Predictor* predictor,
                                       const CityTraceGenerator& generator,
                                       const DemandDataset& history,
                                       int train_days, int day) {
  const SpacetimeSpec st = generator.DaySpacetime();
  std::vector<double> workers(static_cast<size_t>(st.num_types()), 0.0);
  std::vector<double> tasks(workers.size(), 0.0);
  for (const DemandSide side :
       {DemandSide::kWorkers, DemandSide::kTasks}) {
    if (!predictor->Fit(history, train_days, side).ok()) {
      std::fprintf(stderr, "predictor fit failed\n");
      std::exit(1);
    }
    std::vector<double>& out =
        side == DemandSide::kWorkers ? workers : tasks;
    for (int slot = 0; slot < history.slots_per_day(); ++slot) {
      const std::vector<double> predicted =
          predictor->Predict(history, day, slot);
      for (int cell = 0; cell < history.num_cells(); ++cell) {
        out[static_cast<size_t>(st.TypeAt(slot, cell))] =
            predicted[static_cast<size_t>(cell)];
      }
    }
  }
  return PredictionMatrix::FromIntensities(st, workers, tasks);
}

/// Runs the Dr sweep for one city profile and prints the figure.
inline int RunCityDeadlineSweep(const CityProfile& base_profile,
                                const std::string& figure_name, int argc,
                                char** argv) {
  const BenchContext context = ParseArgs(argc, argv);
  // Default city scale: the full Table 3 volume is ~50k objects/day; the
  // default bench runs at ~1/8 volume with a proportionally smaller grid.
  const double city_scale = context.scale * 0.5;

  const double deadlines[] = {0.5, 0.75, 1.0, 1.25, 1.5};
  std::vector<SweepPoint> points;
  for (double dr : deadlines) {
    CityProfile profile = ScaledCityProfile(base_profile, city_scale);
    profile.task_duration = dr;
    const CityTraceGenerator generator(profile);
    const DemandDataset history = generator.GenerateHistory();
    const int train_days = profile.history_days - 7;
    const int test_day = profile.history_days - 3;

    HpMsiPredictor predictor;
    const PredictionMatrix prediction = PredictCityDay(
        &predictor, generator, history, train_days, test_day);
    auto instance = generator.GenerateInstanceForDay(test_day);
    if (!instance.ok()) {
      std::fprintf(stderr, "city instance generation failed\n");
      return 1;
    }
    GuideOptions guide_options;
    guide_options.engine = GuideOptions::Engine::kCompressed;
    guide_options.worker_duration = profile.worker_duration;
    guide_options.task_duration = profile.task_duration;
    // Coarse 2-hour slots: grant the expected intra-slot movement credit
    // the midpoint representatives would otherwise discard.
    guide_options.representative_slack =
        0.5 * generator.DaySpacetime().slots().slot_duration();
    guide_options.num_threads = context.num_threads;

    SweepPoint point;
    point.x_label = TablePrinter::FormatDouble(dr, 2);
    point.metrics = RunSuite(*instance, prediction, guide_options, context);
    points.push_back(std::move(point));
  }
  PrintFigure(figure_name, "Dr", points, context);
  return 0;
}

}  // namespace bench
}  // namespace ftoa

#endif  // FTOA_BENCH_BENCH_FIG5_REAL_H_
