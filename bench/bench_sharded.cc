// Sharded-dispatcher benchmark: throughput and per-decision latency of the
// ShardedDispatcher serving path versus the single-session streaming
// baseline, across shard counts, queue-handoff modes (per-event vs
// batched), and the three routers. The `matched` counter exposes the
// utility side of the tradeoff — shards cannot match across the partition
// boundary, so matching size degrades as the shard count grows — and the
// `reconciled` counter shows how much of that loss the post-merge
// boundary-reconciliation pass wins back per router.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/algorithm_registry.h"
#include "core/guide_generator.h"
#include "gen/synthetic.h"
#include "sim/runner.h"
#include "sim/sharded_dispatcher.h"

namespace ftoa {
namespace {

SyntheticConfig ConfigForSize(int64_t objects) {
  SyntheticConfig config;
  config.num_workers = static_cast<int>(objects);
  config.num_tasks = static_cast<int>(objects);
  config.grid_x = 30;
  config.grid_y = 30;
  config.num_slots = 24;
  config.seed = 1234;
  return config;
}

struct Workload {
  std::unique_ptr<Instance> instance;
  AlgorithmDeps deps;
};

/// Aborts with the status message; benches have no caller to report to.
template <typename ResultT>
auto DieUnless(ResultT result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench_sharded: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

Workload MakeWorkload(int64_t objects) {
  const SyntheticConfig config = ConfigForSize(objects);
  auto instance = DieUnless(GenerateSyntheticInstance(config));
  auto prediction = DieUnless(GenerateSyntheticPrediction(config));
  GuideOptions options;
  options.engine = GuideOptions::Engine::kAuto;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;
  auto guide = DieUnless(
      GuideGenerator(config.velocity, options).Generate(prediction));
  Workload workload;
  workload.instance = std::make_unique<Instance>(std::move(instance));
  workload.deps.guide =
      std::make_shared<const OfflineGuide>(std::move(guide));
  return workload;
}

/// The unsharded reference: one streaming session via the runner (the same
/// replay BM_Sharded's shard-1 case routes, minus dispatcher overhead).
void RunSingleSession(benchmark::State& state,
                      const std::string& algorithm_name, int64_t objects) {
  const Workload workload = MakeWorkload(objects);
  const auto algorithm =
      DieUnless(CreateAlgorithm(algorithm_name, workload.deps));
  RunnerOptions options;
  options.streaming = true;
  int64_t decisions = 0;
  RunMetrics last;
  for (auto _ : state) {
    last = DieUnless(
        RunAlgorithm(algorithm.get(), *workload.instance, options));
    decisions += last.decisions;
  }
  state.SetItemsProcessed(decisions);
  state.counters["matched"] = static_cast<double>(last.matching_size);
  state.counters["p50_ns"] = last.decision_latency_p50_ns;
  state.counters["p99_ns"] = last.decision_latency_p99_ns;
}

/// The sharded serving path; state.range(0) is the shard count.
/// `thread_per_shard` pins one actor thread per shard (the handoff-mode
/// comparison needs the cross-thread path even on small hosts); false is
/// the serving default, auto = min(shards, cores). handoff_batch <= 0
/// keeps the dispatcher default (batched); 1 is the per-event reference.
void RunSharded(benchmark::State& state, const std::string& algorithm_name,
                ShardRouterKind router, int64_t objects, int handoff_batch,
                bool reconcile, bool thread_per_shard = false) {
  const Workload workload = MakeWorkload(objects);
  ShardedOptions options;
  options.algorithm = algorithm_name;
  options.num_shards = static_cast<int>(state.range(0));
  options.num_threads = thread_per_shard ? options.num_shards : 0;
  options.router = router;
  if (handoff_batch > 0) options.handoff_batch = handoff_batch;
  options.reconcile = reconcile;
  const auto dispatcher =
      DieUnless(ShardedDispatcher::Create(options, workload.deps));
  int64_t decisions = 0;
  RunMetrics last;
  for (auto _ : state) {
    const ShardedRunResult result = DieUnless(
        dispatcher->Run(*workload.instance, /*collect_dispatches=*/false));
    last = result.metrics;
    decisions += last.decisions;
  }
  state.SetItemsProcessed(decisions);
  state.counters["matched"] = static_cast<double>(last.matching_size);
  state.counters["reconciled"] = static_cast<double>(last.reconciled_pairs);
  state.counters["p50_ns"] = last.decision_latency_p50_ns;
  state.counters["p99_ns"] = last.decision_latency_p99_ns;
}

void BM_SingleSession(benchmark::State& state, const std::string& name,
                      int64_t objects) {
  RunSingleSession(state, name, objects);
}
void BM_ShardedGrid(benchmark::State& state, const std::string& name,
                    int64_t objects) {
  RunSharded(state, name, ShardRouterKind::kGrid, objects,
             /*handoff_batch=*/0, /*reconcile=*/false);
}
void BM_ShardedGridPerEvent(benchmark::State& state, const std::string& name,
                            int64_t objects) {
  RunSharded(state, name, ShardRouterKind::kGrid, objects,
             /*handoff_batch=*/1, /*reconcile=*/false,
             /*thread_per_shard=*/true);
}
void BM_ShardedGridThreaded(benchmark::State& state, const std::string& name,
                            int64_t objects) {
  RunSharded(state, name, ShardRouterKind::kGrid, objects,
             /*handoff_batch=*/0, /*reconcile=*/false,
             /*thread_per_shard=*/true);
}
void BM_ShardedHash(benchmark::State& state, const std::string& name,
                    int64_t objects) {
  RunSharded(state, name, ShardRouterKind::kHash, objects,
             /*handoff_batch=*/0, /*reconcile=*/false);
}
void BM_ShardedLoad(benchmark::State& state, const std::string& name,
                    int64_t objects) {
  RunSharded(state, name, ShardRouterKind::kLoad, objects,
             /*handoff_batch=*/0, /*reconcile=*/false);
}
void BM_ShardedGridReconciled(benchmark::State& state,
                              const std::string& name, int64_t objects) {
  RunSharded(state, name, ShardRouterKind::kGrid, objects,
             /*handoff_batch=*/0, /*reconcile=*/true);
}
void BM_ShardedHashReconciled(benchmark::State& state,
                              const std::string& name, int64_t objects) {
  RunSharded(state, name, ShardRouterKind::kHash, objects,
             /*handoff_batch=*/0, /*reconcile=*/true);
}
void BM_ShardedLoadReconciled(benchmark::State& state,
                              const std::string& name, int64_t objects) {
  RunSharded(state, name, ShardRouterKind::kLoad, objects,
             /*handoff_batch=*/0, /*reconcile=*/true);
}

// Handoff-mode sweep: per-event vs batched on the latency-bound workload
// (~100ns POLAR-OP decisions, where the per-event mutex dominated).
BENCHMARK_CAPTURE(BM_SingleSession, polar_op_16k, "polar-op", 16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedGrid, polar_op_16k, "polar-op", 16000)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedGridPerEvent, polar_op_16k, "polar-op", 16000)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedGridThreaded, polar_op_16k, "polar-op", 16000)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Router sweep on the Table-4 displacement workload (supply mean 0.25 vs
// demand 0.5): matched-size per router, with and without the
// boundary-reconciliation pass.
BENCHMARK_CAPTURE(BM_ShardedHash, polar_op_16k, "polar-op", 16000)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedLoad, polar_op_16k, "polar-op", 16000)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedGridReconciled, polar_op_16k, "polar-op", 16000)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedHashReconciled, polar_op_16k, "polar-op", 16000)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedLoadReconciled, polar_op_16k, "polar-op", 16000)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_SingleSession, simple_greedy_4k, "simple-greedy", 4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedGrid, simple_greedy_4k, "simple-greedy", 4000)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_SingleSession, gr_4k, "gr", 4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedGrid, gr_4k, "gr", 4000)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ftoa

BENCHMARK_MAIN();
