#include "harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/algorithm_registry.h"
#include "sim/runner.h"
#include "util/csv.h"
#include "util/thread_pool.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace ftoa {
namespace bench {

BenchContext ParseArgs(int argc, char** argv) {
  BenchContext context;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--scale=")) {
      const auto value = ParseDouble(arg.substr(8));
      if (!value.ok() || *value <= 0.0) {
        std::fprintf(stderr, "invalid --scale value: %s\n", arg.c_str());
        std::exit(2);
      }
      context.scale = *value;
    } else if (arg == "--no-opt") {
      context.include_opt = false;
    } else if (arg == "--hybrid") {
      context.include_hybrid = true;
    } else if (arg == "--tgoa") {
      context.include_tgoa = true;
    } else if (StartsWith(arg, "--prediction=")) {
      const std::string mode = arg.substr(13);
      if (mode == "expected") {
        context.prediction_mode = PredictionMode::kExpected;
      } else if (mode == "replicate") {
        context.prediction_mode = PredictionMode::kReplicate;
      } else if (mode == "perfect") {
        context.prediction_mode = PredictionMode::kPerfect;
      } else {
        std::fprintf(stderr, "invalid --prediction value: %s\n",
                     mode.c_str());
        std::exit(2);
      }
    } else if (StartsWith(arg, "--csv=")) {
      context.csv_dir = arg.substr(6);
    } else if (StartsWith(arg, "--threads=")) {
      const auto value = ParseInt(arg.substr(10));
      if (!value.ok() || *value < 1 || *value > 1024) {
        std::fprintf(stderr, "invalid --threads value: %s\n", arg.c_str());
        std::exit(2);
      }
      context.num_threads = static_cast<int>(*value);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: %s [--scale=<f>] [--no-opt] [--hybrid] "
                   "[--csv=<dir>] [--threads=<n>]\n",
                   argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return context;
}

SyntheticConfig DefaultSyntheticConfig(const BenchContext& context) {
  SyntheticConfig config;  // Paper defaults (Table 4, bold).
  config.num_workers =
      static_cast<int>(std::lround(20000 * context.scale));
  config.num_tasks = static_cast<int>(std::lround(20000 * context.scale));
  return config;
}

CityProfile ScaledCityProfile(const CityProfile& base, double scale) {
  CityProfile profile = base;
  profile.workers_per_day = base.workers_per_day * scale;
  profile.tasks_per_day = base.tasks_per_day * scale;
  // Shrink the grid with sqrt(scale) per axis so objects per cell (and per
  // type) stay roughly constant.
  const double axis = std::sqrt(scale);
  profile.grid_x = std::max(4, static_cast<int>(std::lround(
                                   base.grid_x * axis)));
  profile.grid_y = std::max(3, static_cast<int>(std::lround(
                                   base.grid_y * axis)));
  return profile;
}

std::vector<RunMetrics> RunSuite(const Instance& instance,
                                 const PredictionMatrix& prediction,
                                 const GuideOptions& guide_options,
                                 const BenchContext& context) {
  // Offline preprocessing (guide generation), excluded from measurements.
  auto guide_result = GuideGenerator(instance.velocity(), guide_options)
                          .Generate(prediction);
  if (!guide_result.ok()) {
    std::fprintf(stderr, "guide generation failed: %s\n",
                 guide_result.status().ToString().c_str());
    std::exit(1);
  }
  return RunSuiteWithGuide(instance,
                           std::make_shared<const OfflineGuide>(
                               std::move(guide_result).value()),
                           context);
}

std::vector<RunMetrics> RunSuiteWithGuide(
    const Instance& instance,
    const std::shared_ptr<const OfflineGuide>& guide,
    const BenchContext& context) {
  std::vector<RunMetrics> results;

  // The five paper series plus the opt-in extensions, all built through the
  // algorithm registry (figure order: greedy, GR, [TGOA], POLAR family).
  std::vector<std::string> suite = {"simple-greedy", "gr", "polar",
                                    "polar-op"};
  if (context.include_tgoa) {
    suite.insert(suite.begin() + 2, "tgoa");
  }
  if (context.include_hybrid) suite.push_back("polar-op-g");
  const bool run_opt =
      context.include_opt &&
      static_cast<int64_t>(instance.num_workers()) <=
          context.opt_object_cap &&
      static_cast<int64_t>(instance.num_tasks()) <= context.opt_object_cap;
  if (run_opt) suite.push_back("opt");

  AlgorithmDeps deps;
  deps.guide = guide;
  for (const std::string& name : suite) {
    auto algorithm = CreateAlgorithm(name, deps);
    if (!algorithm.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                   algorithm.status().ToString().c_str());
      std::exit(1);
    }
    auto metrics = RunAlgorithm(algorithm->get(), instance);
    if (!metrics.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                   metrics.status().ToString().c_str());
      std::exit(1);
    }
    results.push_back(std::move(metrics).value());
  }
  return results;
}

namespace {

/// A sweep point's offline preprocessing: the realized instance plus the
/// guide built from its prediction. Everything the measured (serial) run
/// needs, with the expensive generation work already done.
struct PreparedPoint {
  std::string x_label;
  Instance instance;
  std::shared_ptr<const OfflineGuide> guide;
};

/// Generates instance + prediction + guide for one sweep point.
/// `guide_threads` shards the guide solve; the parallel sweep passes 1
/// because it already parallelizes across points. Throws std::runtime_error
/// on failure — this runs on pool workers, where std::exit is unsafe; the
/// pool's futures carry the exception back to the main thread.
PreparedPoint PreparePoint(const std::string& x_label,
                           const SyntheticConfig& config,
                           const BenchContext& context, int guide_threads) {
  auto instance = GenerateSyntheticInstance(config);
  if (!instance.ok()) {
    throw std::runtime_error("workload generation failed: " +
                             instance.status().ToString());
  }
  Result<PredictionMatrix> prediction = [&]() -> Result<PredictionMatrix> {
    switch (context.prediction_mode) {
      case PredictionMode::kReplicate:
        return GenerateSyntheticPrediction(config);
      case PredictionMode::kPerfect:
        return PredictionMatrix::FromInstance(*instance);
      case PredictionMode::kExpected:
        break;
    }
    return GenerateSyntheticExpectedPrediction(config);
  }();
  if (!prediction.ok()) {
    throw std::runtime_error("prediction generation failed: " +
                             prediction.status().ToString());
  }
  GuideOptions guide_options;
  guide_options.engine = GuideOptions::Engine::kAuto;
  guide_options.worker_duration = config.worker_duration;
  guide_options.task_duration = config.task_duration;
  guide_options.num_threads = guide_threads;
  auto guide_result = GuideGenerator(instance->velocity(), guide_options)
                          .Generate(*prediction);
  if (!guide_result.ok()) {
    throw std::runtime_error("guide generation failed: " +
                             guide_result.status().ToString());
  }
  return PreparedPoint{x_label, std::move(*instance),
                       std::make_shared<const OfflineGuide>(
                           std::move(guide_result).value())};
}

/// Exits from the calling (main) thread with the failure message.
[[noreturn]] void DiePreparing(const std::exception& e) {
  std::fprintf(stderr, "%s\n", e.what());
  std::exit(1);
}

}  // namespace

SweepPoint RunSyntheticPoint(const std::string& x_label,
                             const SyntheticConfig& config,
                             const BenchContext& context) {
  try {
    PreparedPoint prepared =
        PreparePoint(x_label, config, context, context.num_threads);
    SweepPoint point;
    point.x_label = x_label;
    point.metrics =
        RunSuiteWithGuide(prepared.instance, prepared.guide, context);
    return point;
  } catch (const std::exception& e) {
    DiePreparing(e);
  }
}

std::vector<SweepPoint> RunSyntheticSweep(
    const std::vector<SweepConfig>& configs, const BenchContext& context) {
  std::vector<std::unique_ptr<PreparedPoint>> prepared(configs.size());
  const int pool_size = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(std::max(1, context.num_threads)),
                       configs.size()));
  try {
    if (pool_size > 1) {
      ThreadPool pool(pool_size);
      std::vector<std::future<void>> done;
      done.reserve(configs.size());
      for (size_t i = 0; i < configs.size(); ++i) {
        done.push_back(pool.Submit([&prepared, &configs, &context, i]() {
          prepared[i] = std::make_unique<PreparedPoint>(
              PreparePoint(configs[i].x_label, configs[i].config, context,
                           /*guide_threads=*/1));
        }));
      }
      for (std::future<void>& f : done) f.get();
    } else {
      for (size_t i = 0; i < configs.size(); ++i) {
        prepared[i] = std::make_unique<PreparedPoint>(
            PreparePoint(configs[i].x_label, configs[i].config, context,
                         context.num_threads));
      }
    }
  } catch (const std::exception& e) {
    DiePreparing(e);  // Rethrown by future.get() on the main thread.
  }

  // Measured runs stay serial and in sweep order (see harness.h). Each
  // point is released right after its run: a scalability sweep's instances
  // are large, and holding all of them through the measured phase would
  // multiply the bench's resident set by the sweep length.
  std::vector<SweepPoint> points;
  points.reserve(prepared.size());
  for (std::unique_ptr<PreparedPoint>& p : prepared) {
    SweepPoint point;
    point.x_label = p->x_label;
    point.metrics = RunSuiteWithGuide(p->instance, p->guide, context);
    points.push_back(std::move(point));
    p.reset();
  }
  return points;
}

namespace {

void MaybeDumpCsv(const BenchContext& context,
                  const std::string& figure_name, const std::string& metric,
                  const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows) {
  if (context.csv_dir.empty()) return;
  const std::string path =
      context.csv_dir + "/" + figure_name + "_" + metric + ".csv";
  CsvWriter writer(path);
  if (!writer.Ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  writer.WriteRow(header);
  for (const auto& row : rows) writer.WriteRow(row);
  writer.Close();
}

}  // namespace

void PrintFigure(const std::string& figure_name, const std::string& x_name,
                 const std::vector<SweepPoint>& points,
                 const BenchContext& context) {
  if (points.empty()) return;

  // Column set: union of algorithm names in first row order.
  std::vector<std::string> algorithms;
  for (const SweepPoint& point : points) {
    for (const RunMetrics& metrics : point.metrics) {
      bool known = false;
      for (const std::string& name : algorithms) {
        if (name == metrics.algorithm) known = true;
      }
      if (!known) algorithms.push_back(metrics.algorithm);
    }
  }

  auto cell_for = [&](const SweepPoint& point, const std::string& algorithm,
                      int which) -> std::string {
    for (const RunMetrics& metrics : point.metrics) {
      if (metrics.algorithm != algorithm) continue;
      switch (which) {
        case 0:
          return TablePrinter::FormatInt(metrics.matching_size);
        case 1:
          return TablePrinter::FormatDouble(metrics.elapsed_seconds, 3);
        case 2:
          return TablePrinter::FormatDouble(
              static_cast<double>(metrics.peak_memory_bytes) / (1 << 20), 1);
      }
    }
    return "-";
  };

  static const char* kMetricNames[] = {"MatchingSize", "Time(secs)",
                                       "Memory(MB)"};
  std::cout << "\n=== " << figure_name << " (scale=" << context.scale
            << ") ===\n";
  for (int which = 0; which < 3; ++which) {
    std::vector<std::string> header = {x_name};
    header.insert(header.end(), algorithms.begin(), algorithms.end());
    TablePrinter table(header);
    std::vector<std::vector<std::string>> csv_rows;
    for (const SweepPoint& point : points) {
      std::vector<std::string> row = {point.x_label};
      for (const std::string& algorithm : algorithms) {
        row.push_back(cell_for(point, algorithm, which));
      }
      csv_rows.push_back(row);
      table.AddRow(std::move(row));
    }
    std::cout << "\n-- " << kMetricNames[which] << " --\n";
    table.Print(std::cout);
    MaybeDumpCsv(context, figure_name,
                 which == 0 ? "matching" : (which == 1 ? "time" : "memory"),
                 header, csv_rows);
  }
  std::cout.flush();
}

}  // namespace bench
}  // namespace ftoa
