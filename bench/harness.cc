#include "harness.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "baselines/gr_batch.h"
#include "baselines/offline_opt.h"
#include "baselines/tgoa.h"
#include "baselines/simple_greedy.h"
#include "core/hybrid_polar_op.h"
#include "core/polar.h"
#include "core/polar_op.h"
#include "sim/runner.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace ftoa {
namespace bench {

BenchContext ParseArgs(int argc, char** argv) {
  BenchContext context;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--scale=")) {
      const auto value = ParseDouble(arg.substr(8));
      if (!value.ok() || *value <= 0.0) {
        std::fprintf(stderr, "invalid --scale value: %s\n", arg.c_str());
        std::exit(2);
      }
      context.scale = *value;
    } else if (arg == "--no-opt") {
      context.include_opt = false;
    } else if (arg == "--hybrid") {
      context.include_hybrid = true;
    } else if (arg == "--tgoa") {
      context.include_tgoa = true;
    } else if (StartsWith(arg, "--prediction=")) {
      const std::string mode = arg.substr(13);
      if (mode == "expected") {
        context.prediction_mode = PredictionMode::kExpected;
      } else if (mode == "replicate") {
        context.prediction_mode = PredictionMode::kReplicate;
      } else if (mode == "perfect") {
        context.prediction_mode = PredictionMode::kPerfect;
      } else {
        std::fprintf(stderr, "invalid --prediction value: %s\n",
                     mode.c_str());
        std::exit(2);
      }
    } else if (StartsWith(arg, "--csv=")) {
      context.csv_dir = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: %s [--scale=<f>] [--no-opt] [--hybrid] "
                   "[--csv=<dir>]\n",
                   argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return context;
}

SyntheticConfig DefaultSyntheticConfig(const BenchContext& context) {
  SyntheticConfig config;  // Paper defaults (Table 4, bold).
  config.num_workers =
      static_cast<int>(std::lround(20000 * context.scale));
  config.num_tasks = static_cast<int>(std::lround(20000 * context.scale));
  return config;
}

CityProfile ScaledCityProfile(const CityProfile& base, double scale) {
  CityProfile profile = base;
  profile.workers_per_day = base.workers_per_day * scale;
  profile.tasks_per_day = base.tasks_per_day * scale;
  // Shrink the grid with sqrt(scale) per axis so objects per cell (and per
  // type) stay roughly constant.
  const double axis = std::sqrt(scale);
  profile.grid_x = std::max(4, static_cast<int>(std::lround(
                                   base.grid_x * axis)));
  profile.grid_y = std::max(3, static_cast<int>(std::lround(
                                   base.grid_y * axis)));
  return profile;
}

std::vector<RunMetrics> RunSuite(const Instance& instance,
                                 const PredictionMatrix& prediction,
                                 const GuideOptions& guide_options,
                                 const BenchContext& context) {
  std::vector<RunMetrics> results;

  // Offline preprocessing (guide generation), excluded from measurements.
  auto guide_result = GuideGenerator(instance.velocity(), guide_options)
                          .Generate(prediction);
  if (!guide_result.ok()) {
    std::fprintf(stderr, "guide generation failed: %s\n",
                 guide_result.status().ToString().c_str());
    std::exit(1);
  }
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(guide_result).value());

  SimpleGreedy simple_greedy;
  GrBatch gr;
  Tgoa tgoa;
  Polar polar(guide);
  PolarOp polar_op(guide);
  HybridPolarOp hybrid(guide);
  OfflineOpt opt;

  std::vector<OnlineAlgorithm*> algorithms = {&simple_greedy, &gr, &polar,
                                              &polar_op};
  if (context.include_tgoa) {
    algorithms.insert(algorithms.begin() + 2, &tgoa);
  }
  if (context.include_hybrid) algorithms.push_back(&hybrid);
  const bool run_opt =
      context.include_opt &&
      static_cast<int64_t>(instance.num_workers()) <=
          context.opt_object_cap &&
      static_cast<int64_t>(instance.num_tasks()) <= context.opt_object_cap;
  if (run_opt) algorithms.push_back(&opt);

  for (OnlineAlgorithm* algorithm : algorithms) {
    auto metrics = RunAlgorithm(algorithm, instance);
    if (!metrics.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", algorithm->name().c_str(),
                   metrics.status().ToString().c_str());
      std::exit(1);
    }
    results.push_back(std::move(metrics).value());
  }
  return results;
}

SweepPoint RunSyntheticPoint(const std::string& x_label,
                             const SyntheticConfig& config,
                             const BenchContext& context) {
  auto instance = GenerateSyntheticInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "workload generation failed\n");
    std::exit(1);
  }
  Result<PredictionMatrix> prediction = [&]() -> Result<PredictionMatrix> {
    switch (context.prediction_mode) {
      case PredictionMode::kReplicate:
        return GenerateSyntheticPrediction(config);
      case PredictionMode::kPerfect:
        return PredictionMatrix::FromInstance(*instance);
      case PredictionMode::kExpected:
        break;
    }
    return GenerateSyntheticExpectedPrediction(config);
  }();
  if (!prediction.ok()) {
    std::fprintf(stderr, "prediction generation failed\n");
    std::exit(1);
  }
  GuideOptions guide_options;
  guide_options.engine = GuideOptions::Engine::kAuto;
  guide_options.worker_duration = config.worker_duration;
  guide_options.task_duration = config.task_duration;
  SweepPoint point;
  point.x_label = x_label;
  point.metrics = RunSuite(*instance, *prediction, guide_options, context);
  return point;
}

namespace {

void MaybeDumpCsv(const BenchContext& context,
                  const std::string& figure_name, const std::string& metric,
                  const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows) {
  if (context.csv_dir.empty()) return;
  const std::string path =
      context.csv_dir + "/" + figure_name + "_" + metric + ".csv";
  CsvWriter writer(path);
  if (!writer.Ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  writer.WriteRow(header);
  for (const auto& row : rows) writer.WriteRow(row);
  writer.Close();
}

}  // namespace

void PrintFigure(const std::string& figure_name, const std::string& x_name,
                 const std::vector<SweepPoint>& points,
                 const BenchContext& context) {
  if (points.empty()) return;

  // Column set: union of algorithm names in first row order.
  std::vector<std::string> algorithms;
  for (const SweepPoint& point : points) {
    for (const RunMetrics& metrics : point.metrics) {
      bool known = false;
      for (const std::string& name : algorithms) {
        if (name == metrics.algorithm) known = true;
      }
      if (!known) algorithms.push_back(metrics.algorithm);
    }
  }

  auto cell_for = [&](const SweepPoint& point, const std::string& algorithm,
                      int which) -> std::string {
    for (const RunMetrics& metrics : point.metrics) {
      if (metrics.algorithm != algorithm) continue;
      switch (which) {
        case 0:
          return TablePrinter::FormatInt(metrics.matching_size);
        case 1:
          return TablePrinter::FormatDouble(metrics.elapsed_seconds, 3);
        case 2:
          return TablePrinter::FormatDouble(
              static_cast<double>(metrics.peak_memory_bytes) / (1 << 20), 1);
      }
    }
    return "-";
  };

  static const char* kMetricNames[] = {"MatchingSize", "Time(secs)",
                                       "Memory(MB)"};
  std::cout << "\n=== " << figure_name << " (scale=" << context.scale
            << ") ===\n";
  for (int which = 0; which < 3; ++which) {
    std::vector<std::string> header = {x_name};
    header.insert(header.end(), algorithms.begin(), algorithms.end());
    TablePrinter table(header);
    std::vector<std::vector<std::string>> csv_rows;
    for (const SweepPoint& point : points) {
      std::vector<std::string> row = {point.x_label};
      for (const std::string& algorithm : algorithms) {
        row.push_back(cell_for(point, algorithm, which));
      }
      csv_rows.push_back(row);
      table.AddRow(std::move(row));
    }
    std::cout << "\n-- " << kMetricNames[which] << " --\n";
    table.Print(std::cout);
    MaybeDumpCsv(context, figure_name,
                 which == 0 ? "matching" : (which == 1 ? "time" : "memory"),
                 header, csv_rows);
  }
  std::cout.flush();
}

}  // namespace bench
}  // namespace ftoa
