// E3 — Figure 4, column 3 (c, g, k): the five algorithm series while
// varying the task deadline Dr in {1.0, 1.5, 2.0, 2.5, 3.0} slots. Larger
// Dr relaxes the deadline constraint, adds bipartite edges, and grows every
// algorithm's matching.

#include <string>
#include <vector>

#include "harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ftoa;
  using namespace ftoa::bench;
  const BenchContext context = ParseArgs(argc, argv);

  const double deadlines[] = {1.0, 1.5, 2.0, 2.5, 3.0};
  std::vector<SweepConfig> configs;
  for (double dr : deadlines) {
    SyntheticConfig config = DefaultSyntheticConfig(context);
    config.task_duration = dr;
    configs.push_back({TablePrinter::FormatDouble(dr, 1), config});
  }
  const std::vector<SweepPoint> points = RunSyntheticSweep(configs, context);
  PrintFigure("Figure 4 col 3: varying Dr", "Dr", points, context);
  return 0;
}
