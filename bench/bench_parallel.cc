// Microbenchmark for the sharded/parallel execution layer (thread pool +
// connected-component guide decomposition + parallel Monte-Carlo trials):
//
//  * BM_GuideCompressed / BM_GuideCompressedMinCost — guide generation on
//    a prediction whose feasibility disks stay within one cell, so the
//    compressed type-pair network decomposes into many connected
//    components; swept over GuideOptions::num_threads. num_threads = 1 is
//    the serial baseline, and every thread count produces the identical
//    guide (asserted in tests/core/guide_generator_test.cc), so this
//    measures pure scheduling overhead vs parallel speedup.
//  * BM_GuideOneComponent — the adversarial shape: a dense prediction that
//    union-finds into one giant component, where sharding cannot help and
//    the parallel path must cost no more than a pool dispatch.
//  * BM_CompetitiveTrials — EstimateCompetitiveRatio throughput over
//    num_threads; trials fork independent RNG streams, so this scales with
//    cores regardless of the guide's component structure.
//
// tools/run_bench_smoke.sh runs this binary and records
// BENCH_parallel.json for the perf trajectory across PRs.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/guide_generator.h"
#include "core/polar_op.h"
#include "gen/synthetic.h"
#include "sim/competitive.h"
#include "util/thread_pool.h"

namespace ftoa {
namespace {

// Many-component regime: tiny durations and a slow velocity keep each
// feasibility disk inside its own cell, so type pairs only form within a
// cell and the network shatters into per-cell components.
SyntheticConfig ShardableConfig() {
  SyntheticConfig config;
  config.num_workers = 20000;
  config.num_tasks = 20000;
  config.grid_x = 24;
  config.grid_y = 24;
  config.num_slots = 24;
  config.velocity = 0.2;
  config.task_duration = 0.5;
  config.worker_duration = 1.0;
  config.seed = 9001;
  return config;
}

// One-component regime: the paper's default physics (fast workers, long
// windows) connects the whole grid transitively.
SyntheticConfig DenseConfig() {
  SyntheticConfig config;
  config.num_workers = 20000;
  config.num_tasks = 20000;
  config.grid_x = 20;
  config.grid_y = 20;
  config.num_slots = 24;
  config.seed = 9002;
  return config;
}

void RunGuideBench(benchmark::State& state, const SyntheticConfig& config,
                   GuideOptions::Engine engine) {
  const PredictionMatrix prediction =
      GenerateSyntheticExpectedPrediction(config).value();
  GuideOptions options;
  options.engine = engine;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;
  options.num_threads = static_cast<int>(state.range(0));
  const GuideGenerator generator(config.velocity, options);
  int64_t matched = 0;
  for (auto _ : state) {
    const auto guide = generator.Generate(prediction);
    matched = guide.ok() ? guide->matched_pairs() : -1;
    benchmark::DoNotOptimize(matched);
  }
  state.counters["components"] =
      static_cast<double>(generator.last_num_components());
  state.counters["matched"] = static_cast<double>(matched);
}

void BM_GuideCompressed(benchmark::State& state) {
  RunGuideBench(state, ShardableConfig(), GuideOptions::Engine::kCompressed);
}
BENCHMARK(BM_GuideCompressed)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_GuideCompressedMinCost(benchmark::State& state) {
  RunGuideBench(state, ShardableConfig(),
                GuideOptions::Engine::kCompressedMinCost);
}
BENCHMARK(BM_GuideCompressedMinCost)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_GuideOneComponent(benchmark::State& state) {
  RunGuideBench(state, DenseConfig(), GuideOptions::Engine::kCompressed);
}
BENCHMARK(BM_GuideOneComponent)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_CompetitiveTrials(benchmark::State& state) {
  SyntheticConfig config;
  config.num_workers = 400;
  config.num_tasks = 400;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.seed = 9003;
  const PredictionMatrix prediction =
      GenerateSyntheticExpectedPrediction(config).value();
  const IidInstanceSampler sampler(prediction, config.velocity,
                                   config.worker_duration,
                                   config.task_duration);
  GuideOptions options;
  options.engine = GuideOptions::Engine::kAuto;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(GuideGenerator(config.velocity, options).Generate(prediction))
          .value());
  const auto factory = [guide]() { return std::make_unique<PolarOp>(guide); };
  const int threads = static_cast<int>(state.range(0));
  const int trials = 8;
  // One pool across iterations: measure steady-state trial throughput,
  // not per-call thread spawn/join.
  ThreadPool pool(threads);
  for (auto _ : state) {
    const auto estimate = EstimateCompetitiveRatio(sampler, factory, trials,
                                                   7, threads, &pool);
    benchmark::DoNotOptimize(estimate.ok() ? estimate->mean_ratio : -1.0);
  }
  state.SetItemsProcessed(state.iterations() * trials);
}
BENCHMARK(BM_CompetitiveTrials)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ftoa

BENCHMARK_MAIN();
