// E15 — google-benchmark ablation of offline guide generation (Section 4):
// Ford-Fulkerson (Algorithm 1 verbatim) vs Dinic on the node-level network
// vs our type-compressed network, plus the min-cost variant (note (2)).
// The compressed network is what makes city-scale guides practical; all
// engines produce the same matching cardinality (tested in
// guide_generator_test).

#include <benchmark/benchmark.h>

#include "core/guide_generator.h"
#include "gen/synthetic.h"

namespace ftoa {
namespace {

PredictionMatrix MakePrediction(int64_t objects) {
  SyntheticConfig config;
  config.num_workers = static_cast<int>(objects);
  config.num_tasks = static_cast<int>(objects);
  config.grid_x = 30;
  config.grid_y = 30;
  config.num_slots = 24;
  config.seed = 99;
  auto prediction = GenerateSyntheticPrediction(config);
  return std::move(prediction).value();
}

void RunEngine(benchmark::State& state, GuideOptions::Engine engine) {
  const PredictionMatrix prediction = MakePrediction(state.range(0));
  GuideOptions options;
  options.engine = engine;
  options.worker_duration = 3.0;
  options.task_duration = 2.0;
  const GuideGenerator generator(5.0, options);
  int64_t matched = 0;
  for (auto _ : state) {
    auto guide = generator.Generate(prediction);
    if (!guide.ok()) {
      state.SkipWithError(guide.status().ToString().c_str());
      return;
    }
    matched = guide->matched_pairs();
    benchmark::DoNotOptimize(matched);
  }
  state.counters["matched"] = static_cast<double>(matched);
}

void BM_GuideFordFulkerson(benchmark::State& state) {
  RunEngine(state, GuideOptions::Engine::kFordFulkerson);
}
BENCHMARK(BM_GuideFordFulkerson)->Arg(500)->Arg(1000)->Arg(2000);

void BM_GuideDinic(benchmark::State& state) {
  RunEngine(state, GuideOptions::Engine::kDinic);
}
BENCHMARK(BM_GuideDinic)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000);

void BM_GuideCompressed(benchmark::State& state) {
  RunEngine(state, GuideOptions::Engine::kCompressed);
}
BENCHMARK(BM_GuideCompressed)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GuideCompressedMinCost(benchmark::State& state) {
  RunEngine(state, GuideOptions::Engine::kCompressedMinCost);
}
BENCHMARK(BM_GuideCompressedMinCost)->Arg(500)->Arg(1000);

}  // namespace
}  // namespace ftoa

BENCHMARK_MAIN();
