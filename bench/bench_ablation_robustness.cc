// E16 — robustness ablations around the paper's Section 5 discussion:
//  (1) Prediction-noise sensitivity: matching size of the POLAR family as
//      multiplicative noise and phantom predictions corrupt the matrices
//      (SimpleGreedy, which uses no prediction, is the flat reference).
//  (2) Guide-trust vs strict physical re-simulation: how many committed
//      pairs survive when worker trajectories and deadlines are re-checked
//      (quantifies the Section 5.1 assumption), with and without the
//      liveness-check variant.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/simple_greedy.h"
#include "core/guide_generator.h"
#include "core/hybrid_polar_op.h"
#include "core/polar.h"
#include "core/polar_op.h"
#include "gen/synthetic.h"
#include "harness.h"
#include "sim/runner.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace {

using namespace ftoa;
using namespace ftoa::bench;

std::shared_ptr<const OfflineGuide> BuildGuide(
    const SyntheticConfig& config, const PredictionMatrix& prediction) {
  GuideOptions options;
  options.engine = GuideOptions::Engine::kAuto;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;
  auto guide = GuideGenerator(config.velocity, options)
                   .Generate(prediction);
  return std::make_shared<const OfflineGuide>(std::move(guide).value());
}

void NoiseSweep(const BenchContext& context, const SyntheticConfig& config,
                const Instance& instance,
                const PredictionMatrix& clean_prediction) {
  std::cout << "\n-- Prediction-noise sensitivity (matching size) --\n";
  TablePrinter table({"noise sigma", "POLAR", "POLAR-OP", "POLAR-OP+G",
                      "SimpleGreedy"});
  SimpleGreedy greedy;
  const size_t greedy_size = greedy.Run(instance).size();
  for (double sigma : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    Rng rng(7000 + static_cast<uint64_t>(sigma * 1000));
    const PredictionMatrix noisy =
        clean_prediction.WithNoise(sigma, sigma * 0.02, &rng);
    const auto guide = BuildGuide(config, noisy);
    Polar polar(guide);
    PolarOp polar_op(guide);
    HybridPolarOp hybrid(guide);
    table.AddRow({TablePrinter::FormatDouble(sigma, 2),
                  TablePrinter::FormatInt(
                      static_cast<int64_t>(polar.Run(instance).size())),
                  TablePrinter::FormatInt(
                      static_cast<int64_t>(polar_op.Run(instance).size())),
                  TablePrinter::FormatInt(
                      static_cast<int64_t>(hybrid.Run(instance).size())),
                  TablePrinter::FormatInt(
                      static_cast<int64_t>(greedy_size))});
  }
  table.Print(std::cout);
  (void)context;
}

void StrictSweep(const SyntheticConfig& config, const Instance& instance,
                 const PredictionMatrix& prediction) {
  std::cout << "\n-- Guide-trust vs strict re-simulation --\n";
  TablePrinter table({"algorithm", "liveness", "matched", "strict-feasible",
                      "violations", "dispatched"});
  const auto guide = BuildGuide(config, prediction);
  for (const bool liveness : {false, true}) {
    Polar polar(guide, PolarOptions{.check_liveness = liveness});
    PolarOp polar_op(guide, PolarOptions{.check_liveness = liveness});
    OnlineAlgorithm* algorithms[] = {&polar, &polar_op};
    for (OnlineAlgorithm* algorithm : algorithms) {
      RunnerOptions options;
      options.strict_verification = true;
      const auto metrics = RunAlgorithm(algorithm, instance, options);
      if (!metrics.ok()) continue;
      table.AddRow({algorithm->name(), liveness ? "on" : "off",
                    TablePrinter::FormatInt(metrics->matching_size),
                    TablePrinter::FormatInt(metrics->strict_feasible_pairs),
                    TablePrinter::FormatInt(metrics->strict_violations),
                    TablePrinter::FormatInt(metrics->dispatched_workers)});
    }
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchContext context = ParseArgs(argc, argv);
  SyntheticConfig config = DefaultSyntheticConfig(context);
  auto instance = GenerateSyntheticInstance(config);
  auto prediction = GenerateSyntheticPrediction(config);
  if (!instance.ok() || !prediction.ok()) return 1;

  std::cout << "\n=== E16: robustness ablations (scale=" << context.scale
            << ") ===\n";
  NoiseSweep(context, config, *instance, *prediction);
  StrictSweep(config, *instance, *prediction);
  return 0;
}
