// E13 — Table 5: RMLSE and ER of the seven offline prediction approaches
// (HA, ARIMA, GBRT, PAQ, LR, NN, HP-MSI) for both market sides on both
// (simulated) cities. The paper picks the best model — HP-MSI — as the
// framework's offline predictor.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "gen/city_trace.h"
#include "harness.h"
#include "prediction/metrics.h"
#include "prediction/registry.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ftoa;
  using namespace ftoa::bench;
  const BenchContext context = ParseArgs(argc, argv);
  const double city_scale = context.scale * 0.5;

  struct City {
    std::string name;
    CityProfile profile;
  };
  const std::vector<City> cities = {
      {"Beijing", ScaledCityProfile(BeijingProfile(), city_scale)},
      {"Hangzhou", ScaledCityProfile(HangzhouProfile(), city_scale)},
  };

  std::cout << "\n=== Table 5: prediction evaluation (scale="
            << context.scale << ") ===\n";
  TablePrinter table({"Method", "BJ-Task RMLSE", "BJ-Task ER",
                      "HZ-Task RMLSE", "HZ-Task ER", "BJ-Worker RMLSE",
                      "BJ-Worker ER", "HZ-Worker RMLSE", "HZ-Worker ER"});

  for (const std::string& name : AllPredictorNames()) {
    std::vector<std::string> row = {name};
    // Column order: tasks (both cities) then workers (both cities), as in
    // the paper's "Customer (Task)" / "Taxi (Worker)" halves.
    for (const DemandSide side :
         {DemandSide::kTasks, DemandSide::kWorkers}) {
      for (const City& city : cities) {
        const CityTraceGenerator generator(city.profile);
        const DemandDataset history = generator.GenerateHistory();
        auto predictor = CreatePredictor(name);
        if (!predictor.ok()) {
          std::fprintf(stderr, "cannot create %s\n", name.c_str());
          return 1;
        }
        const int train_days = city.profile.history_days - 7;
        const auto score = EvaluatePredictor(predictor->get(), history,
                                             train_days, side);
        if (!score.ok()) {
          std::fprintf(stderr, "%s evaluation failed: %s\n", name.c_str(),
                       score.status().ToString().c_str());
          return 1;
        }
        row.push_back(TablePrinter::FormatDouble(score->rmsle, 3));
        row.push_back(TablePrinter::FormatDouble(score->error_rate, 3));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n(lower is better; the framework adopts the best model "
               "for offline prediction)\n";
  return 0;
}
