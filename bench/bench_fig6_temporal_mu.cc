// E9 — Figure 6, column 1 (a, e, i): varying the mean mu of the tasks'
// temporal distribution. The paper finds the matching size insensitive to
// mu because the wide default sigma keeps the temporal overlap with the
// worker mass large.

#include "bench_fig6.h"

int main(int argc, char** argv) {
  return ftoa::bench::RunFig6Sweep(
      "Figure 6 col 1: varying temporal mu", "mu",
      [](ftoa::SyntheticConfig* config, double value) {
        config->tasks.temporal_mu = value;
      },
      argc, argv);
}
