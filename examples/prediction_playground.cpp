// Prediction playground: train and compare all seven Table 5 predictors on
// a simulated city, print their RMLSE/ER, and show a sample day's forecast
// against the truth for the busiest cell.
//
//   $ ./prediction_playground [city]      (city = beijing | hangzhou)

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gen/city_trace.h"
#include "prediction/metrics.h"
#include "prediction/registry.h"
#include "util/table_printer.h"

#include <iostream>

using namespace ftoa;

int main(int argc, char** argv) {
  CityProfile profile = (argc > 1 && std::strcmp(argv[1], "hangzhou") == 0)
                            ? HangzhouProfile()
                            : BeijingProfile();
  // A compact playground-sized city.
  profile.grid_x = 10;
  profile.grid_y = 8;
  profile.workers_per_day = 6000.0;
  profile.tasks_per_day = 6500.0;
  const CityTraceGenerator city(profile);
  const DemandDataset history = city.GenerateHistory();
  const int train_days = profile.history_days - 7;

  std::printf("city '%s': %d train days, %d test days, %d slots/day, "
              "%d cells\n\n",
              profile.name.c_str(), train_days,
              history.num_days() - train_days, history.slots_per_day(),
              history.num_cells());

  // --- Score all predictors on the task side (paper Table 5 layout). -----
  TablePrinter table({"Method", "RMLSE", "ER"});
  std::string best_name;
  double best_rmsle = 1e18;
  std::vector<std::unique_ptr<Predictor>> fitted;
  for (const std::string& name : AllPredictorNames()) {
    auto predictor = CreatePredictor(name);
    if (!predictor.ok()) continue;
    const auto score = EvaluatePredictor(predictor->get(), history,
                                         train_days, DemandSide::kTasks);
    if (!score.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                   score.status().ToString().c_str());
      continue;
    }
    table.AddRow({name, TablePrinter::FormatDouble(score->rmsle, 3),
                  TablePrinter::FormatDouble(score->error_rate, 3)});
    if (score->rmsle < best_rmsle) {
      best_rmsle = score->rmsle;
      best_name = name;
    }
    fitted.push_back(std::move(*predictor));
  }
  table.Print(std::cout);
  std::printf("\nbest model by RMLSE: %s\n\n", best_name.c_str());

  // --- Show the best model's forecast for the busiest cell. --------------
  int busiest_cell = 0;
  double busiest_mean = -1.0;
  for (int cell = 0; cell < history.num_cells(); ++cell) {
    const double mean =
        history.CellMean(DemandSide::kTasks, cell, train_days);
    if (mean > busiest_mean) {
      busiest_mean = mean;
      busiest_cell = cell;
    }
  }
  auto best = CreatePredictor(best_name);
  if (!best.ok() ||
      !(*best)->Fit(history, train_days, DemandSide::kTasks).ok()) {
    return 1;
  }
  const int sample_day = history.num_days() - 2;
  std::printf("cell %d on day %d (actual vs %s forecast):\n", busiest_cell,
              sample_day, best_name.c_str());
  for (int slot = 0; slot < history.slots_per_day(); ++slot) {
    const double actual =
        history.tasks(sample_day, slot, busiest_cell);
    const double forecast = (*best)->Predict(history, sample_day,
                                             slot)[busiest_cell];
    std::printf("  slot %2d: actual %6.1f   forecast %6.1f  %s\n", slot,
                actual, forecast,
                std::string(static_cast<size_t>(forecast / 4.0), '#')
                    .c_str());
  }
  return 0;
}
