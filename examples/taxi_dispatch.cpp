// Taxi dispatch: the full production pipeline on a simulated city, the
// workload the paper's introduction motivates (Uber/Didi-style real-time
// taxi calling).
//
//   1. Generate four weeks of city history (hotspots, rush hours, weather).
//   2. Train the offline predictor (HP-MSI, the paper's Table 5 winner) and
//      forecast tomorrow's per-(slot, area) supply and demand.
//   3. Build the offline guide (type-compressed max-flow).
//   4. Serve tomorrow's arrivals through each algorithm's streaming
//      session (one decision per arrival, latency-percentile metered) and
//      strictly re-simulate worker movement to verify served requests.
//
//   $ ./taxi_dispatch [scale]       (default scale 0.15)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm_registry.h"
#include "core/guide_generator.h"
#include "gen/city_trace.h"
#include "prediction/hp_msi.h"
#include "prediction/metrics.h"
#include "sim/runner.h"

using namespace ftoa;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.15;

  // --- 1. The city. -------------------------------------------------------
  CityProfile profile = BeijingProfile();
  profile.workers_per_day *= scale;
  profile.tasks_per_day *= scale;
  profile.grid_x = 12;
  profile.grid_y = 8;
  const CityTraceGenerator city(profile);
  const DemandDataset history = city.GenerateHistory();
  const int train_days = profile.history_days - 7;
  const int tomorrow = profile.history_days - 3;
  std::printf("city '%s': %d days of history, %d slots/day, %d areas\n",
              profile.name.c_str(), history.num_days(),
              history.slots_per_day(), history.num_cells());

  // --- 2. Offline prediction. --------------------------------------------
  HpMsiPredictor predictor;
  const SpacetimeSpec st = city.DaySpacetime();
  std::vector<double> worker_forecast(
      static_cast<size_t>(st.num_types()), 0.0);
  std::vector<double> task_forecast(worker_forecast.size(), 0.0);
  for (const DemandSide side : {DemandSide::kWorkers, DemandSide::kTasks}) {
    if (!predictor.Fit(history, train_days, side).ok()) {
      std::fprintf(stderr, "prediction training failed\n");
      return 1;
    }
    auto& out = side == DemandSide::kWorkers ? worker_forecast
                                             : task_forecast;
    for (int slot = 0; slot < history.slots_per_day(); ++slot) {
      const std::vector<double> predicted =
          predictor.Predict(history, tomorrow, slot);
      for (int cell = 0; cell < history.num_cells(); ++cell) {
        out[static_cast<size_t>(st.TypeAt(slot, cell))] =
            predicted[static_cast<size_t>(cell)];
      }
    }
  }
  const PredictionMatrix prediction =
      PredictionMatrix::FromIntensities(st, worker_forecast, task_forecast);
  std::printf("forecast for day %d: %lld taxis, %lld requests\n", tomorrow,
              static_cast<long long>(prediction.TotalWorkers()),
              static_cast<long long>(prediction.TotalTasks()));

  // --- 3. Offline guide. ---------------------------------------------------
  GuideOptions guide_options;
  guide_options.engine = GuideOptions::Engine::kCompressed;
  guide_options.worker_duration = profile.worker_duration;
  guide_options.task_duration = profile.task_duration;
  auto guide_result = GuideGenerator(profile.velocity, guide_options)
                          .Generate(prediction);
  if (!guide_result.ok()) {
    std::fprintf(stderr, "guide generation failed\n");
    return 1;
  }
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(guide_result).value());
  std::printf("offline guide: %lld pre-matched pairs\n",
              static_cast<long long>(guide->matched_pairs()));

  // --- 4. The day happens. -------------------------------------------------
  auto instance = city.GenerateInstanceForDay(tomorrow);
  if (!instance.ok()) {
    std::fprintf(stderr, "instance generation failed\n");
    return 1;
  }
  std::printf("realized day: %zu taxis, %zu requests\n\n",
              instance->num_workers(), instance->num_tasks());

  AlgorithmDeps deps;
  deps.guide = guide;
  for (const char* name : {"simple-greedy", "polar-op", "opt"}) {
    auto algorithm = CreateAlgorithm(name, deps);
    if (!algorithm.ok()) continue;
    RunnerOptions options;
    options.strict_verification = true;
    // Streaming mode: the runner drives the algorithm's AssignmentSession
    // one arrival at a time — the production serving path — and meters
    // every decision.
    options.streaming = true;
    const auto metrics = RunAlgorithm(algorithm->get(), *instance, options);
    if (!metrics.ok()) continue;
    std::printf(
        "%-12s served %lld requests in %.3fs (peak heap %.1f MB)\n",
        metrics->algorithm.c_str(),
        static_cast<long long>(metrics->matching_size),
        metrics->elapsed_seconds,
        static_cast<double>(metrics->peak_memory_bytes) / (1 << 20));
    std::printf("             decision latency p50 %.0f ns, p99 %.0f ns "
                "over %lld arrivals",
                metrics->decision_latency_p50_ns,
                metrics->decision_latency_p99_ns,
                static_cast<long long>(metrics->decisions));
    if (metrics->dispatched_workers > 0) {
      std::printf("; %lld taxis relocated, %lld/%lld pairs survive strict "
                  "re-simulation",
                  static_cast<long long>(metrics->dispatched_workers),
                  static_cast<long long>(metrics->strict_feasible_pairs),
                  static_cast<long long>(metrics->matching_size));
    }
    std::printf("\n");
  }
  return 0;
}
