// Meal delivery: an on-wheel meal-ordering scenario (GrubHub-style, one of
// the paper's motivating O2O platforms). Orders burst around lunch and
// dinner from restaurant districts; couriers shift in before the peaks.
// Deadlines are tight (food gets cold), so anticipatory courier placement
// matters even more than in taxi dispatch.
//
// This example builds the workload directly from the synthetic generator's
// primitives (no city simulator), showing how to assemble a custom
// Instance, and compares POLAR-OP against wait-in-place dispatch under
// three courier-patience settings.
//
//   $ ./meal_delivery

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/offline_opt.h"
#include "baselines/simple_greedy.h"
#include "core/guide_generator.h"
#include "core/polar_op.h"
#include "model/instance.h"
#include "util/distributions.h"
#include "util/rng.h"

using namespace ftoa;

namespace {

/// One restaurant district emitting orders around a peak time.
struct District {
  Point center;
  double sigma;
  double peak_time;   ///< Slot of peak demand.
  double time_sigma;
  int orders;
};

Instance MakeMealWorkload(double courier_patience, uint64_t seed) {
  // A 20x20 town; one slot ~ 5 minutes, horizon = 36 slots (3 hours around
  // the lunch peak); couriers ride at 2 cells/slot.
  const GridSpec grid(20.0, 20.0, 20, 20);
  const SlotSpec slots(36.0, 36);
  const double dr = 3.0;  // 15-minute delivery promise.

  const std::vector<District> districts = {
      {{5.0, 5.0}, 1.5, 10.0, 3.0, 260},    // Old town, early lunch.
      {{14.0, 13.0}, 2.0, 16.0, 4.0, 340},  // Business park, late lunch.
      {{9.0, 17.0}, 1.2, 22.0, 5.0, 150},   // Riverside, long tail.
  };

  Rng rng(seed);
  std::vector<Task> tasks;
  for (const District& district : districts) {
    const TruncatedNormal2d location(district.center.x, district.center.y,
                                     district.sigma, district.sigma, 20.0,
                                     20.0);
    const TruncatedNormal time(district.peak_time, district.time_sigma, 0.0,
                               36.0);
    for (int i = 0; i < district.orders; ++i) {
      Task task;
      location.Sample(rng, &task.location.x, &task.location.y);
      task.start = time.Sample(rng);
      task.duration = dr;
      tasks.push_back(task);
    }
  }

  // Couriers clock in across town, mostly before the peaks, and give up
  // after `courier_patience` slots without an assignment.
  const TruncatedNormal2d courier_location(10.0, 10.0, 6.0, 6.0, 20.0,
                                           20.0);
  const TruncatedNormal courier_time(8.0, 6.0, 0.0, 36.0);
  std::vector<Worker> workers;
  for (int i = 0; i < 700; ++i) {
    Worker worker;
    courier_location.Sample(rng, &worker.location.x, &worker.location.y);
    worker.start = courier_time.Sample(rng);
    worker.duration = courier_patience;
    workers.push_back(worker);
  }
  return Instance(SpacetimeSpec(slots, grid), /*velocity=*/2.0,
                  std::move(workers), std::move(tasks));
}

}  // namespace

int main() {
  std::printf("meal delivery: 700 couriers, 750 orders, 15-minute "
              "promise\n\n");
  std::printf("%-10s %-14s %-14s %-6s\n", "patience", "SimpleGreedy",
              "POLAR-OP", "OPT");
  for (const double patience : {4.0, 8.0, 16.0}) {
    const Instance instance = MakeMealWorkload(patience, 99);
    // Forecast = an independent draw of the same lunch pattern (yesterday's
    // service, say).
    const Instance forecast_day = MakeMealWorkload(patience, 100);
    const PredictionMatrix prediction =
        PredictionMatrix::FromInstance(forecast_day);

    GuideOptions guide_options;
    guide_options.engine = GuideOptions::Engine::kAuto;
    guide_options.worker_duration = patience;
    guide_options.task_duration = 3.0;
    auto guide_result =
        GuideGenerator(instance.velocity(), guide_options)
            .Generate(prediction);
    if (!guide_result.ok()) {
      std::fprintf(stderr, "guide generation failed\n");
      return 1;
    }
    auto guide = std::make_shared<const OfflineGuide>(
        std::move(guide_result).value());

    SimpleGreedy greedy;
    PolarOp polar_op(guide);
    OfflineOpt opt;
    std::printf("%-10.0f %-14zu %-14zu %-6zu\n", patience,
                greedy.Run(instance).size(), polar_op.Run(instance).size(),
                opt.Run(instance).size());
  }
  std::printf(
      "\nTakeaway: the shorter the courier patience, the more the\n"
      "prediction-guided placement (POLAR-OP) gains over waiting in "
      "place.\n");
  return 0;
}
