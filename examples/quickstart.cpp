// Quickstart: the paper's Example 1 end to end in ~80 lines of API use.
//
// Seven taxis and six taxi-calling tasks appear over ten minutes on an 8x8
// city. We build the instance, derive the offline guide from a prediction
// (here: the true per-type counts), and compare the paper's algorithms.
//
//   $ ./quickstart
//
// Expected output: wait-in-place greedy serves 1 task, POLAR/POLAR-OP
// (guided by the prediction) serve all 6, matching the offline optimum.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm_registry.h"
#include "core/guide_generator.h"
#include "model/arrival_stream.h"
#include "model/instance.h"

using namespace ftoa;

int main() {
  // --- 1. Describe the scenario (Figure 1a / Table 1; minutes past 9:00).
  const double dw = 30.0;  // Workers wait up to 30 minutes.
  const double dr = 2.0;   // Tasks must be reached within 2 minutes.
  std::vector<Worker> workers = {
      {0, {1.0, 6.0}, 0.0, dw}, {1, {1.0, 8.0}, 1.0, dw},
      {2, {3.0, 7.0}, 1.0, dw}, {3, {5.0, 6.0}, 3.0, dw},
      {4, {6.0, 5.0}, 3.0, dw}, {5, {6.0, 7.0}, 3.0, dw},
      {6, {7.0, 6.0}, 4.0, dw},
  };
  std::vector<Task> tasks = {
      {0, {3.0, 6.0}, 0.0, dr}, {1, {2.0, 5.0}, 2.0, dr},
      {2, {5.0, 3.0}, 5.0, dr}, {3, {4.0, 1.0}, 6.0, dr},
      {4, {8.0, 2.0}, 7.0, dr}, {5, {6.0, 1.0}, 8.0, dr},
  };

  // Four grid areas and two 5-minute slots, as in Figure 1d.
  const SpacetimeSpec spacetime(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 2, 2));
  const Instance instance(spacetime, /*velocity=*/1.0, std::move(workers),
                          std::move(tasks));

  // --- 2. Offline step: prediction -> guide (Algorithm 1).
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(instance);  // A perfect forecast.
  GuideOptions guide_options;
  guide_options.engine = GuideOptions::Engine::kFordFulkerson;
  guide_options.worker_duration = dw;
  guide_options.task_duration = dr;
  auto guide_result = GuideGenerator(instance.velocity(), guide_options)
                          .Generate(prediction);
  if (!guide_result.ok()) {
    std::fprintf(stderr, "guide generation failed: %s\n",
                 guide_result.status().ToString().c_str());
    return 1;
  }
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(guide_result).value());
  std::printf("offline guide: %lld predicted workers, %lld predicted "
              "tasks, %lld matched pairs\n",
              static_cast<long long>(guide->num_worker_nodes()),
              static_cast<long long>(guide->num_task_nodes()),
              static_cast<long long>(guide->matched_pairs()));

  // --- 3. Online step: replay the arrival stream through each algorithm.
  // Algorithms come from the registry by name; Run() replays the whole
  // instance through one streaming session.
  AlgorithmDeps deps;
  deps.guide = guide;
  for (const char* name : {"simple-greedy", "polar", "polar-op", "opt"}) {
    auto algorithm = CreateAlgorithm(name, deps);
    if (!algorithm.ok()) {
      std::fprintf(stderr, "%s\n", algorithm.status().ToString().c_str());
      return 1;
    }
    RunTrace trace;
    const Assignment assignment = (*algorithm)->Run(instance, &trace);
    std::printf("%-12s matched %zu of 6 tasks", (*algorithm)->name().c_str(),
                assignment.size());
    if (!trace.dispatches.empty()) {
      std::printf("  (%zu workers relocated in advance)",
                  trace.dispatches.size());
    }
    std::printf("\n");
    for (const MatchedPair& pair : assignment.pairs()) {
      std::printf("    w%d -> r%d at t=%.0f\n", pair.worker + 1,
                  pair.task + 1, pair.time);
    }
  }

  // --- 4. The same thing, live: feed arrivals into a session by hand.
  // This is the API a real dispatcher uses — per-arrival OnWorker/OnTask
  // decisions, Finish() when the day ends. Batch Run() above is exactly
  // this replay, so both produce identical assignments.
  auto polar_op = CreateAlgorithm("polar-op", deps);
  if (!polar_op.ok()) {
    std::fprintf(stderr, "%s\n", polar_op.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<AssignmentSession> session =
      (*polar_op)->StartSession(instance);
  for (const ArrivalEvent& event : BuildArrivalStream(instance)) {
    if (event.kind == ObjectKind::kWorker) {
      session->OnWorker(event.index, event.time);
    } else {
      session->OnTask(event.index, event.time);
    }
  }
  const SessionResult live = session->Finish();
  std::printf("streaming session matched %zu of 6 tasks (same as Run)\n",
              live.assignment.size());
  return 0;
}
