#include "baselines/simple_greedy.h"

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

TEST(SimpleGreedyTest, Example1WaitInPlaceMatchesOnlyR1) {
  // Under literal wait-in-place semantics, only r1 is served: w1 is 2 units
  // away with Dr = 2. Every later task appears farther than Dr from all
  // waiting workers (see DESIGN.md on the paper's Example 2 narrative).
  const Instance instance = MakeExample1Instance();
  SimpleGreedy greedy;
  const Assignment assignment = greedy.Run(instance);
  EXPECT_EQ(assignment.size(), 1u);
  EXPECT_EQ(assignment.MatchOfTask(0), 0);  // w1 -> r1.
  EXPECT_TRUE(assignment
                  .Validate(instance,
                            FeasibilityPolicy::kDispatchAtAssignmentTime)
                  .ok());
}

TEST(SimpleGreedyTest, Definition4PolicyMatchesMore) {
  // With the paper's Definition 4 predicate (pre-movement credit), greedy
  // can serve the slot-1 tasks from the earlier top-right workers.
  const Instance instance = MakeExample1Instance();
  SimpleGreedy greedy(SimpleGreedyOptions{
      .use_spatial_index = false,
      .policy = FeasibilityPolicy::kDispatchAtWorkerStart});
  const Assignment assignment = greedy.Run(instance);
  EXPECT_GT(assignment.size(), 1u);
  EXPECT_TRUE(assignment
                  .Validate(instance,
                            FeasibilityPolicy::kDispatchAtWorkerStart)
                  .ok());
}

TEST(SimpleGreedyTest, PicksNearestFeasible) {
  const SpacetimeSpec st(SlotSpec(10.0, 1), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(2);
  workers[0] = {0, {0.0, 0.0}, 0.0, 10.0};
  workers[1] = {1, {3.0, 0.0}, 0.0, 10.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {4.0, 0.0}, 1.0, 5.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  SimpleGreedy greedy;
  const Assignment assignment = greedy.Run(instance);
  ASSERT_EQ(assignment.size(), 1u);
  EXPECT_EQ(assignment.MatchOfTask(0), 1);  // The closer worker.
}

TEST(SimpleGreedyTest, ExpiredWorkersNotMatched) {
  const SpacetimeSpec st(SlotSpec(10.0, 1), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(1);
  workers[0] = {0, {0.0, 0.0}, 0.0, 1.0};  // Gone by t = 1.
  std::vector<Task> tasks(1);
  tasks[0] = {0, {0.0, 0.0}, 5.0, 5.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  SimpleGreedy greedy;
  EXPECT_EQ(greedy.Run(instance).size(), 0u);
}

TEST(SimpleGreedyTest, WorkerArrivingAfterTaskCanMatch) {
  const SpacetimeSpec st(SlotSpec(10.0, 1), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(1);
  workers[0] = {0, {1.0, 0.0}, 2.0, 5.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {0.0, 0.0}, 0.0, 4.0};  // Deadline t = 4.
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  SimpleGreedy greedy;
  // Worker departs at t = 2, arrives at t = 3 <= 4.
  EXPECT_EQ(greedy.Run(instance).size(), 1u);
}

TEST(SimpleGreedyTest, NamesReflectVariant) {
  EXPECT_EQ(SimpleGreedy().name(), "SimpleGreedy");
  EXPECT_EQ(
      SimpleGreedy(SimpleGreedyOptions{.use_spatial_index = true}).name(),
      "SimpleGreedy-Idx");
}

// Property: the linear-scan and grid-index variants produce identical
// matching sizes (they implement the same rule).
class SimpleGreedyEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimpleGreedyEquivalenceTest, IndexedVariantMatchesLinearScan) {
  SyntheticConfig config;
  config.num_workers = 400;
  config.num_tasks = 400;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.seed = GetParam() * 13 + 5;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  SimpleGreedy linear;
  SimpleGreedy indexed(SimpleGreedyOptions{.use_spatial_index = true});
  const Assignment a = linear.Run(*instance);
  const Assignment b = indexed.Run(*instance);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_TRUE(a.Validate(*instance,
                         FeasibilityPolicy::kDispatchAtAssignmentTime)
                  .ok());
  EXPECT_TRUE(b.Validate(*instance,
                         FeasibilityPolicy::kDispatchAtAssignmentTime)
                  .ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimpleGreedyEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace ftoa
