#include "baselines/offline_opt.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/gr_batch.h"
#include "baselines/simple_greedy.h"
#include "core/guide_generator.h"
#include "core/polar.h"
#include "core/polar_op.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

TEST(OfflineOptTest, Example1AchievesSix) {
  // Figure 1c: with movement allowed and full knowledge, all six tasks are
  // served.
  const Instance instance = MakeExample1Instance();
  OfflineOpt opt;
  const Assignment assignment = opt.Run(instance);
  EXPECT_EQ(assignment.size(), 6u);
  EXPECT_TRUE(assignment
                  .Validate(instance,
                            FeasibilityPolicy::kDispatchAtWorkerStart)
                  .ok());
  EXPECT_EQ(opt.name(), "OPT");
}

TEST(OfflineOptTest, EmptyInstance) {
  const Instance instance(
      SpacetimeSpec(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 2, 2)), 1.0, {},
      {});
  OfflineOpt opt;
  EXPECT_EQ(opt.Run(instance).size(), 0u);
}

TEST(OfflineOptTest, InfeasiblePairsNeverMatched) {
  const SpacetimeSpec st(SlotSpec(10.0, 1), GridSpec(100.0, 100.0, 10, 10));
  std::vector<Worker> workers(1);
  workers[0] = {0, {0.0, 0.0}, 0.0, 1.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {90.0, 90.0}, 0.5, 1.0};  // Hopelessly far.
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  OfflineOpt opt;
  EXPECT_EQ(opt.Run(instance).size(), 0u);
}

TEST(OfflineOptTest, DecisionTimeIsLaterArrival) {
  const SpacetimeSpec st(SlotSpec(10.0, 1), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(1);
  workers[0] = {0, {1.0, 1.0}, 3.0, 5.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 1.0, 6.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  OfflineOpt opt;
  const Assignment assignment = opt.Run(instance);
  ASSERT_EQ(assignment.size(), 1u);
  EXPECT_DOUBLE_EQ(assignment.pairs()[0].time, 3.0);
}

// Property: OPT dominates every online algorithm on the same instance
// (it is the denominator of the competitive ratio).
class OptDominanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptDominanceTest, DominatesOnlineAlgorithms) {
  SyntheticConfig config;
  config.num_workers = 400;
  config.num_tasks = 400;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.seed = GetParam() * 101 + 3;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const auto prediction = GenerateSyntheticPrediction(config);
  ASSERT_TRUE(prediction.ok());

  GuideOptions options;
  options.engine = GuideOptions::Engine::kDinic;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;
  auto guide = std::make_shared<const OfflineGuide>(std::move(
      GuideGenerator(config.velocity, options).Generate(*prediction))
                                                        .value());

  OfflineOpt opt;
  const size_t opt_size = opt.Run(*instance).size();

  SimpleGreedy greedy;
  GrBatch gr;
  // check_liveness makes every POLAR pair an object-level feasible edge, so
  // the dominance holds exactly (guide-trust pairs could otherwise exceed
  // Definition 4 by the slot-discretization slack).
  Polar polar(guide, PolarOptions{.check_liveness = true});
  PolarOp polar_op(guide, PolarOptions{.check_liveness = true});
  EXPECT_GE(opt_size, greedy.Run(*instance).size());
  EXPECT_GE(opt_size, gr.Run(*instance).size());
  EXPECT_GE(opt_size, polar.Run(*instance).size());
  EXPECT_GE(opt_size, polar_op.Run(*instance).size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptDominanceTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace ftoa
