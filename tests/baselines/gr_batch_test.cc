#include "baselines/gr_batch.h"

#include <gtest/gtest.h>

#include "baselines/simple_greedy.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

TEST(GrBatchTest, MatchesWithinWindows) {
  // One worker and one task in the same window, co-located.
  const SpacetimeSpec st(SlotSpec(10.0, 5), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(1);
  workers[0] = {0, {1.0, 1.0}, 0.2, 10.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 0.5, 5.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  GrBatch gr(GrBatchOptions{.window = 2.0});
  const Assignment assignment = gr.Run(instance);
  ASSERT_EQ(assignment.size(), 1u);
  // The match is decided at the first window boundary (t = 2).
  EXPECT_DOUBLE_EQ(assignment.pairs()[0].time, 2.0);
}

TEST(GrBatchTest, BatchingCanLoseTightDeadlines) {
  // The task expires before the first window boundary: GR misses what an
  // immediate matcher would have served.
  const SpacetimeSpec st(SlotSpec(10.0, 2), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(1);
  workers[0] = {0, {1.0, 1.0}, 0.0, 10.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 0.1, 1.0};  // Deadline 1.1 < boundary 5.0.
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  GrBatch gr;
  EXPECT_EQ(gr.Run(instance).size(), 0u);
  SimpleGreedy greedy;
  EXPECT_EQ(greedy.Run(instance).size(), 1u);
}

TEST(GrBatchTest, BatchMatchingIsMaximumWithinWindow) {
  // Two workers, two tasks; a greedy nearest rule would match the central
  // worker to the nearest task and strand the other pair, while GR's
  // batch maximum matching serves both.
  const SpacetimeSpec st(SlotSpec(4.0, 1), GridSpec(20.0, 20.0, 5, 5));
  std::vector<Worker> workers(2);
  workers[0] = {0, {5.0, 1.0}, 0.1, 10.0};   // Can reach t0 only.
  workers[1] = {1, {5.9, 1.0}, 0.1, 10.0};   // Can reach both.
  std::vector<Task> tasks(2);
  tasks[0] = {0, {6.2, 1.0}, 0.2, 6.0};   // Deadline 6.2.
  tasks[1] = {1, {10.0, 1.0}, 0.2, 6.0};  // Deadline 6.2; only w1 in range.
  // Feasibility from the boundary t = 4: w0 reaches t0 (d = 1.2, arrive
  // 5.2) but not t1 (d = 5, arrive 9). w1 reaches t0 (d = 0.3) and t1
  // (d = 4.1, arrive 8.1 > 6.2? no — infeasible). Adjust t1 deadline.
  tasks[1].duration = 9.0;  // Deadline 9.2: w1 arrives 8.1, feasible.
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  GrBatch gr(GrBatchOptions{.window = 4.0});
  const Assignment assignment = gr.Run(instance);
  EXPECT_EQ(assignment.size(), 2u);
}

TEST(GrBatchTest, CustomWindowRespected) {
  // With a small window the decision happens earlier.
  const SpacetimeSpec st(SlotSpec(10.0, 2), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(1);
  workers[0] = {0, {1.0, 1.0}, 0.0, 10.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 0.1, 1.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  GrBatch gr(GrBatchOptions{.window = 0.5});
  const Assignment assignment = gr.Run(instance);
  ASSERT_EQ(assignment.size(), 1u);
  EXPECT_DOUBLE_EQ(assignment.pairs()[0].time, 0.5);
}

TEST(GrBatchTest, Example1ProducesValidAssignment) {
  const Instance instance = MakeExample1Instance();
  GrBatch gr;
  const Assignment assignment = gr.Run(instance);
  // Wait-in-place with 5-minute windows: tight Dr = 2 tasks mostly expire
  // before a boundary arrives.
  EXPECT_LE(assignment.size(), 2u);
}

TEST(GrBatchTest, TasksCarryAcrossWindows) {
  // A task with a long deadline is matched in a later window when a worker
  // finally appears.
  const SpacetimeSpec st(SlotSpec(10.0, 5), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(1);
  workers[0] = {0, {1.0, 1.0}, 5.5, 10.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 0.5, 9.0};  // Deadline 9.5.
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  GrBatch gr(GrBatchOptions{.window = 2.0});
  const Assignment assignment = gr.Run(instance);
  ASSERT_EQ(assignment.size(), 1u);
  EXPECT_DOUBLE_EQ(assignment.pairs()[0].time, 6.0);
}

TEST(GrBatchTest, IncrementalMatchesRebuildOnExample1) {
  const Instance instance = MakeExample1Instance();
  GrBatch incremental(GrBatchOptions{});
  GrBatch rebuild(GrBatchOptions{.incremental_matching = false});
  RunTrace inc_trace;
  RunTrace reb_trace;
  const Assignment a = incremental.Run(instance, &inc_trace);
  const Assignment b = rebuild.Run(instance, &reb_trace);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(inc_trace.matcher_rebuilds, 0);
}

TEST(GrBatchTest, IncrementalMatchesRebuildOnRandomWorkloads) {
  // Carrying the matcher across windows (inserting only the new arrivals'
  // nodes/edges and re-augmenting for them) must deliver the same total
  // utility as rebuilding a Hopcroft-Karp instance per window, while never
  // reconstructing the matcher (matcher_rebuilds == 0 vs one per matched
  // window).
  SyntheticConfig config;
  config.num_workers = 300;
  config.num_tasks = 300;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  for (uint64_t seed : {5u, 29u, 71u, 113u}) {
    config.seed = seed;
    const auto instance = GenerateSyntheticInstance(config);
    ASSERT_TRUE(instance.ok());
    GrBatch incremental(GrBatchOptions{});
    GrBatch rebuild(GrBatchOptions{.incremental_matching = false});
    RunTrace inc_trace;
    RunTrace reb_trace;
    const Assignment a = incremental.Run(*instance, &inc_trace);
    const Assignment b = rebuild.Run(*instance, &reb_trace);
    EXPECT_EQ(a.size(), b.size()) << "seed " << seed;
    EXPECT_EQ(inc_trace.matcher_rebuilds, 0) << "seed " << seed;
    EXPECT_GT(reb_trace.matcher_rebuilds, 0) << "seed " << seed;
    // Every committed pair must satisfy the boundary-departure rule in
    // both modes (mirrors AssignmentsFeasibleFromBoundary).
    for (const MatchedPair& pair : a.pairs()) {
      const Worker& w = instance->worker(pair.worker);
      const Task& r = instance->task(pair.task);
      EXPECT_LE(w.start, pair.time);
      EXPECT_LE(r.start, pair.time);
      const double arrival =
          pair.time +
          TravelTime(w.location, r.location, instance->velocity());
      EXPECT_LE(arrival, r.Deadline() + 1e-9);
      EXPECT_LT(r.start, w.Deadline());
    }
  }
}

// Property: GR's assignments always satisfy the wait-in-place arrival rule
// (decision-time departure) and never exceed min(|W|, |R|).
class GrBatchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GrBatchPropertyTest, AssignmentsFeasibleFromBoundary) {
  SyntheticConfig config;
  config.num_workers = 300;
  config.num_tasks = 300;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.seed = GetParam() * 3 + 11;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  GrBatch gr;
  const Assignment assignment = gr.Run(*instance);
  EXPECT_LE(assignment.size(),
            std::min(instance->num_workers(), instance->num_tasks()));
  for (const MatchedPair& pair : assignment.pairs()) {
    const Worker& w = instance->worker(pair.worker);
    const Task& r = instance->task(pair.task);
    // Both objects had arrived by the decision time.
    EXPECT_LE(w.start, pair.time);
    EXPECT_LE(r.start, pair.time);
    // Departing at the boundary still meets the task deadline.
    const double arrival =
        pair.time +
        TravelTime(w.location, r.location, instance->velocity());
    EXPECT_LE(arrival, r.Deadline() + 1e-9);
    // Condition (1) of Definition 4.
    EXPECT_LT(r.start, w.Deadline());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrBatchPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace ftoa
