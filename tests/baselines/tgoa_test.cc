#include "baselines/tgoa.h"

#include <gtest/gtest.h>

#include "baselines/offline_opt.h"
#include "baselines/simple_greedy.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

TEST(TgoaTest, ServesColocatedPair) {
  const SpacetimeSpec st(SlotSpec(10.0, 1), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(1);
  workers[0] = {0, {1.0, 1.0}, 0.0, 10.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 1.0, 5.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  Tgoa tgoa;
  EXPECT_EQ(tgoa.Run(instance).size(), 1u);
  EXPECT_EQ(tgoa.name(), "TGOA");
}

TEST(TgoaTest, Example1BehavesLikeWaitInPlace) {
  // TGOA cannot relocate workers either, so on Example 1 it serves at most
  // the tasks reachable from waiting workers.
  const Instance instance = MakeExample1Instance();
  Tgoa tgoa;
  const Assignment assignment = tgoa.Run(instance);
  EXPECT_LE(assignment.size(), 2u);
  EXPECT_TRUE(assignment
                  .Validate(instance,
                            FeasibilityPolicy::kDispatchAtAssignmentTime)
                  .ok());
}

TEST(TgoaTest, GreedyFractionZeroIsAllOptimalPhase) {
  const Instance instance = MakeExample1Instance();
  Tgoa all_optimal(TgoaOptions{.greedy_fraction = 0.0});
  Tgoa all_greedy(TgoaOptions{.greedy_fraction = 1.0});
  // Both run to completion and produce valid assignments.
  const Assignment a = all_optimal.Run(instance);
  const Assignment b = all_greedy.Run(instance);
  EXPECT_TRUE(a.Validate(instance,
                         FeasibilityPolicy::kDispatchAtAssignmentTime)
                  .ok());
  EXPECT_TRUE(b.Validate(instance,
                         FeasibilityPolicy::kDispatchAtAssignmentTime)
                  .ok());
}

TEST(TgoaTest, BoundedByOptOnRandomWorkloads) {
  SyntheticConfig config;
  config.num_workers = 300;
  config.num_tasks = 300;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  for (uint64_t seed : {11u, 22u, 33u}) {
    config.seed = seed;
    const auto instance = GenerateSyntheticInstance(config);
    ASSERT_TRUE(instance.ok());
    Tgoa tgoa;
    OfflineOpt opt;
    const Assignment assignment = tgoa.Run(*instance);
    EXPECT_LE(assignment.size(), opt.Run(*instance).size());
    EXPECT_TRUE(assignment
                    .Validate(*instance,
                              FeasibilityPolicy::kDispatchAtAssignmentTime)
                    .ok());
  }
}

TEST(TgoaTest, IncrementalMatchesRebuildOnExample1) {
  const Instance instance = MakeExample1Instance();
  Tgoa incremental(TgoaOptions{});
  Tgoa rebuild(TgoaOptions{.incremental_matching = false});
  RunTrace inc_trace;
  RunTrace reb_trace;
  const Assignment a = incremental.Run(instance, &inc_trace);
  const Assignment b = rebuild.Run(instance, &reb_trace);
  EXPECT_EQ(a.size(), b.size());
  // The incremental mode must not have reconstructed a matcher.
  EXPECT_EQ(inc_trace.matcher_rebuilds, 0);
}

TEST(TgoaTest, IncrementalMatchesRebuildOnRandomWorkloads) {
  // The carry-across-arrivals matcher must deliver the same total utility
  // as the historical rebuild-per-arrival trial on deterministic
  // instances, without ever rebuilding (matcher_rebuilds == 0 vs > 0).
  SyntheticConfig config;
  config.num_workers = 250;
  config.num_tasks = 250;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  for (uint64_t seed : {3u, 17u, 51u, 202u}) {
    config.seed = seed;
    const auto instance = GenerateSyntheticInstance(config);
    ASSERT_TRUE(instance.ok());
    Tgoa incremental(TgoaOptions{});
    Tgoa rebuild(TgoaOptions{.incremental_matching = false});
    RunTrace inc_trace;
    RunTrace reb_trace;
    const Assignment a = incremental.Run(*instance, &inc_trace);
    const Assignment b = rebuild.Run(*instance, &reb_trace);
    EXPECT_EQ(a.size(), b.size()) << "seed " << seed;
    EXPECT_TRUE(a.Validate(*instance,
                           FeasibilityPolicy::kDispatchAtAssignmentTime)
                    .ok())
        << "seed " << seed;
    EXPECT_EQ(inc_trace.matcher_rebuilds, 0) << "seed " << seed;
    EXPECT_GT(inc_trace.matcher_augment_searches, 0) << "seed " << seed;
    EXPECT_GT(reb_trace.matcher_rebuilds, 0) << "seed " << seed;
  }
}

TEST(TgoaTest, OptimalPhaseCanBeatPureGreedyLocally) {
  // A configuration where nearest-first greedy makes a regrettable choice:
  // the second-phase guardrail avoids it. w0 arrives first and sits
  // between two tasks; greedy would give the late worker nothing.
  const SpacetimeSpec st(SlotSpec(20.0, 1), GridSpec(20.0, 20.0, 5, 5));
  std::vector<Worker> workers(2);
  workers[0] = {0, {10.0, 1.0}, 0.0, 20.0};
  workers[1] = {1, {2.0, 1.0}, 12.0, 20.0};  // Second phase arrival.
  std::vector<Task> tasks(2);
  tasks[0] = {0, {9.0, 1.0}, 11.0, 8.0};   // Near w0.
  tasks[1] = {1, {3.0, 1.0}, 13.0, 8.0};   // Near w1.
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  Tgoa tgoa;
  EXPECT_EQ(tgoa.Run(instance).size(), 2u);
}

}  // namespace
}  // namespace ftoa
