// Unit + randomized oracle tests for the shared candidate-retrieval
// engine. The load-bearing property is canonical-output equivalence: for
// any insert/erase history and any query, TopK must return exactly the
// (distance, id)-sorted prefix a linear scan over the live entries would —
// the contract every ported algorithm's bit-identity rests on. The
// *Stress* suite re-runs under `ctest -L stress` with FTOA_STRESS_ITERS.

#include "retrieval/candidate_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "retrieval/stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace ftoa {
namespace {

using ftoa::testing::StressIterations;

GridSpec MakeGrid() { return GridSpec(100.0, 100.0, 10, 10); }

RetrievalCandidate Entry(int64_t id, double x, double y, double start,
                         double deadline) {
  return RetrievalCandidate{id, {x, y}, start, deadline};
}

/// The linear-scan oracle: every live entry, every predicate applied
/// directly, sorted canonically, truncated to k. Any divergence from this
/// is an engine bug.
template <typename FilterFn>
std::vector<ScoredCandidate> OracleTopK(const CandidateStore& store,
                                        Point origin, double max_distance,
                                        size_t k, double query_time,
                                        StartWindow window,
                                        FilterFn&& filter) {
  std::vector<ScoredCandidate> hits;
  store.ForEach([&](const RetrievalCandidate& e) {
    if (e.start < window.lo || e.start > window.hi) return;
    if (e.deadline < query_time) return;
    const double d = Distance(origin, e.location);
    if (d > max_distance) return;
    if (!filter(e, d)) return;
    hits.push_back(ScoredCandidate{d, e});
  });
  std::sort(hits.begin(), hits.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance &&
                      a.candidate.id < b.candidate.id);
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

bool AcceptAll(const RetrievalCandidate&, double) { return true; }

void ExpectSameHits(const std::vector<ScoredCandidate>& got,
                    const std::vector<ScoredCandidate>& want,
                    const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].candidate.id, want[i].candidate.id)
        << label << " hit " << i;
    EXPECT_DOUBLE_EQ(got[i].distance, want[i].distance)
        << label << " hit " << i;
  }
}

TEST(CandidateStoreTest, InsertEraseContains) {
  CandidateStore store(MakeGrid());
  EXPECT_EQ(store.size(), 0u);
  store.Insert(Entry(1, 5.0, 5.0, 0.0, 10.0));
  store.Insert(Entry(2, 50.0, 50.0, 1.0, 10.0));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(1));
  EXPECT_TRUE(store.Erase(1));
  EXPECT_FALSE(store.Contains(1));
  EXPECT_FALSE(store.Erase(1));
  EXPECT_EQ(store.size(), 1u);
}

TEST(CandidateStoreTest, InsertOverwritesSameId) {
  CandidateStore store(MakeGrid());
  store.Insert(Entry(7, 5.0, 5.0, 0.0, 10.0));
  store.Insert(Entry(7, 95.0, 95.0, 2.0, 12.0));
  EXPECT_EQ(store.size(), 1u);
  CandidateCursor cursor(&store, nullptr);
  const RetrievalCandidate hit =
      cursor.Nearest({95.0, 95.0}, 1.0, 0.0, StartWindow{}, AcceptAll);
  EXPECT_EQ(hit.id, 7);
  EXPECT_EQ(hit.start, 2.0);
}

TEST(CandidateStoreTest, OutOfOrderInsertKeepsBucketSorted) {
  // All four land in one cell with descending starts — the sorted-insert
  // slow path. The window binary search only works if the invariant held.
  CandidateStore store(MakeGrid());
  store.Insert(Entry(1, 5.0, 5.0, 8.0, 20.0));
  store.Insert(Entry(2, 6.0, 5.0, 4.0, 20.0));
  store.Insert(Entry(3, 5.0, 6.0, 2.0, 20.0));
  store.Insert(Entry(4, 6.0, 6.0, 6.0, 20.0));
  const auto& bucket = store.bucket(store.grid().CellOf({5.0, 5.0}));
  for (size_t i = 1; i < bucket.size(); ++i) {
    EXPECT_LE(bucket[i - 1].start, bucket[i].start);
  }
  CandidateCursor cursor(&store, nullptr);
  const auto& hits = cursor.TopK({5.0, 5.0}, 50.0, 4, 0.0,
                                 StartWindow{3.0, 7.0}, AcceptAll);
  ASSERT_EQ(hits.size(), 2u);  // Only starts 4 and 6 are in-window.
  EXPECT_EQ(hits[0].candidate.id, 2);
  EXPECT_EQ(hits[1].candidate.id, 4);
}

TEST(CandidateCursorTest, EmptyStoreAndZeroKReturnNothing) {
  CandidateStore store(MakeGrid());
  RetrievalStats stats;
  CandidateCursor cursor(&store, &stats);
  EXPECT_TRUE(cursor.TopK({1.0, 1.0}, 100.0, 3, 0.0, StartWindow{},
                          AcceptAll)
                  .empty());
  store.Insert(Entry(1, 5.0, 5.0, 0.0, 10.0));
  EXPECT_TRUE(cursor.TopK({1.0, 1.0}, 100.0, 0, 0.0, StartWindow{},
                          AcceptAll)
                  .empty());
  EXPECT_EQ(cursor.Nearest({1.0, 1.0}, 100.0, 99.0, StartWindow{},
                           AcceptAll)
                .id,
            -1);  // Everything expired.
  EXPECT_EQ(stats.queries, 3);
}

TEST(CandidateCursorTest, TopKOrdersByDistanceThenId) {
  CandidateStore store(MakeGrid());
  // Two entries equidistant from the origin; the lower id must win.
  store.Insert(Entry(9, 10.0, 14.0, 0.0, 10.0));
  store.Insert(Entry(4, 10.0, 6.0, 0.0, 10.0));
  store.Insert(Entry(2, 10.0, 11.0, 0.0, 10.0));
  CandidateCursor cursor(&store, nullptr);
  const auto& hits =
      cursor.TopK({10.0, 10.0}, 100.0, 2, 0.0, StartWindow{}, AcceptAll);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].candidate.id, 2);
  EXPECT_EQ(hits[1].candidate.id, 4);  // Tie at distance 4 vs id 9.
}

TEST(CandidateCursorTest, DeadlineAtQueryTimeIsStillFeasible) {
  CandidateStore store(MakeGrid());
  store.Insert(Entry(1, 5.0, 5.0, 0.0, 3.0));
  store.Insert(Entry(2, 6.0, 5.0, 0.0, 2.999));
  CandidateCursor cursor(&store, nullptr);
  const auto& hits =
      cursor.TopK({5.0, 5.0}, 100.0, 2, 3.0, StartWindow{}, AcceptAll);
  ASSERT_EQ(hits.size(), 1u);  // The strict `< query_time` prune.
  EXPECT_EQ(hits[0].candidate.id, 1);
}

TEST(CandidateCursorTest, ErasedEntriesStayInvisibleThroughCompaction) {
  CandidateStore store(MakeGrid());
  // 20 entries in one cell; erasing 16 forces CompactBucket (dead >= 8 and
  // half the bucket). Survivors must still be found, in order.
  for (int64_t id = 0; id < 20; ++id) {
    store.Insert(Entry(id, 5.0, 5.0 + 0.1 * static_cast<double>(id),
                       static_cast<double>(id), 100.0));
  }
  for (int64_t id = 0; id < 16; ++id) EXPECT_TRUE(store.Erase(id));
  EXPECT_EQ(store.size(), 4u);
  CandidateCursor cursor(&store, nullptr);
  const auto& hits =
      cursor.TopK({5.0, 5.0}, 100.0, 10, 0.0, StartWindow{}, AcceptAll);
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0].candidate.id, 16);
  EXPECT_EQ(hits[3].candidate.id, 19);
}

TEST(CandidateCursorTest, FilterRunsAfterEnginePruning) {
  CandidateStore store(MakeGrid());
  store.Insert(Entry(1, 5.0, 5.0, 0.0, 10.0));
  store.Insert(Entry(2, 6.0, 5.0, 0.0, 10.0));
  CandidateCursor cursor(&store, nullptr);
  const auto& hits =
      cursor.TopK({5.0, 5.0}, 100.0, 2, 0.0, StartWindow{},
                  [](const RetrievalCandidate& e, double) {
                    return e.id != 1;
                  });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].candidate.id, 2);
}

TEST(CandidateCursorTest, CursorIsReusableAcrossQueriesAndRebinds) {
  CandidateStore a(MakeGrid());
  CandidateStore b(MakeGrid());
  a.Insert(Entry(1, 5.0, 5.0, 0.0, 10.0));
  b.Insert(Entry(2, 5.0, 5.0, 0.0, 10.0));
  RetrievalStats stats;
  CandidateCursor cursor(&a, &stats);
  EXPECT_EQ(cursor.Nearest({5.0, 5.0}, 10.0, 0.0, StartWindow{}, AcceptAll)
                .id,
            1);
  cursor.Bind(&b);
  EXPECT_EQ(cursor.Nearest({5.0, 5.0}, 10.0, 0.0, StartWindow{}, AcceptAll)
                .id,
            2);
  EXPECT_EQ(stats.queries, 2);
}

TEST(RetrievalStatsTest, RecordQueryFeedsHistogramAndPercentiles) {
  RetrievalStats stats;
  stats.RecordQuery(/*cells=*/1, /*examined=*/3, /*pruned=*/1);
  stats.RecordQuery(/*cells=*/1, /*examined=*/2, /*pruned=*/0);
  stats.RecordQuery(/*cells=*/40, /*examined=*/100, /*pruned=*/50);
  EXPECT_EQ(stats.queries, 3);
  EXPECT_EQ(stats.cells_visited, 42);
  EXPECT_EQ(stats.candidates_examined, 105);
  EXPECT_EQ(stats.candidates_pruned, 51);
  EXPECT_EQ(stats.max_cells_visited, 40);
  // Nearest-rank percentiles over bucket upper bounds: the median query
  // visited <= 1 cell; the p99 lands in the 40-cell query's bucket, whose
  // bound (64) is clamped to the exact witness.
  EXPECT_EQ(stats.CellsVisitedPercentile(0.50), 1);
  EXPECT_EQ(stats.CellsVisitedPercentile(0.99), 40);
  EXPECT_EQ(stats.CellsVisitedPercentile(1.0), 40);

  RetrievalStats other;
  other.RecordQuery(/*cells=*/2, /*examined=*/1, /*pruned=*/0);
  other.Absorb(stats);
  EXPECT_EQ(other.queries, 4);
  EXPECT_EQ(other.cells_visited, 44);
  EXPECT_EQ(other.max_cells_visited, 40);
}

TEST(CandidateCursorTest, StatsCountOnlyVisitedCells) {
  // One far-away entry: a tight nearest query around a distant origin must
  // not touch the occupied cell (radius lower bound) once the grid walk is
  // exhausted; examined stays 0.
  CandidateStore store(MakeGrid());
  store.Insert(Entry(1, 95.0, 95.0, 0.0, 10.0));
  RetrievalStats stats;
  CandidateCursor cursor(&store, &stats);
  EXPECT_EQ(cursor.Nearest({5.0, 5.0}, 3.0, 0.0, StartWindow{}, AcceptAll)
                .id,
            -1);
  EXPECT_EQ(stats.queries, 1);
  EXPECT_EQ(stats.candidates_examined, 0);
  EXPECT_EQ(stats.cells_visited, 0);
}

TEST(CandidateCursorTest, ForEachInDiskMatchesOracleAsASet) {
  Rng rng(2024);
  CandidateStore store(MakeGrid());
  for (int64_t id = 0; id < 200; ++id) {
    store.Insert(Entry(id, rng.NextDouble(0.0, 100.0),
                       rng.NextDouble(0.0, 100.0),
                       rng.NextDouble(0.0, 10.0),
                       rng.NextDouble(5.0, 20.0)));
  }
  const Point origin{33.0, 61.0};
  const double radius = 25.0;
  const double query_time = 8.0;
  const StartWindow window{2.0, 9.0};
  CandidateCursor cursor(&store, nullptr);
  std::vector<int64_t> got;
  cursor.ForEachInDisk(origin, radius, query_time, window,
                       [&](const RetrievalCandidate& e, double) {
                         got.push_back(e.id);
                       });
  std::sort(got.begin(), got.end());
  std::vector<int64_t> want;
  store.ForEach([&](const RetrievalCandidate& e) {
    if (e.start < window.lo || e.start > window.hi) return;
    if (e.deadline < query_time) return;
    if (Distance(origin, e.location) > radius) return;
    want.push_back(e.id);
  });
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  EXPECT_FALSE(want.empty());  // The sweep actually exercised something.
}

// Randomized oracle equivalence over adversarial histories: interleaved
// inserts/erases/overwrites, boundary-sitting points, degenerate windows,
// and every k from 1 to a dozen. Runs once in the main suite and at
// FTOA_STRESS_ITERS scale under `ctest -L stress`.
TEST(CandidateEngineStress, TopKMatchesLinearOracle) {
  const int iterations = StressIterations(30);
  for (int iter = 0; iter < iterations; ++iter) {
    Rng rng(static_cast<uint64_t>(iter) * 0x9e3779b97f4a7c15ULL + 11);
    const GridSpec grid(100.0, 100.0,
                        2 + static_cast<int>(rng.NextBounded(12)),
                        2 + static_cast<int>(rng.NextBounded(12)));
    CandidateStore store(grid);
    RetrievalStats stats;
    CandidateCursor cursor(&store, &stats);
    int64_t next_id = 0;
    std::vector<int64_t> live;
    const int ops = 300 + static_cast<int>(rng.NextBounded(300));
    for (int op = 0; op < ops; ++op) {
      const double roll = rng.NextDouble();
      if (roll < 0.55 || live.empty()) {
        // Insert; a tenth of the points sit exactly on cell boundaries.
        double x = rng.NextDouble(0.0, 100.0);
        double y = rng.NextDouble(0.0, 100.0);
        if (rng.NextBool(0.1)) {
          x = grid.cell_width() * std::floor(x / grid.cell_width());
        }
        const double start = rng.NextDouble(0.0, 20.0);
        store.Insert(Entry(next_id, x, y, start,
                           start + rng.NextDouble(0.0, 10.0)));
        live.push_back(next_id);
        ++next_id;
      } else if (roll < 0.75) {
        const size_t pick = rng.NextBounded(live.size());
        store.Erase(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      } else if (roll < 0.85) {
        // Overwrite a live id at a new location/time.
        const int64_t id = live[rng.NextBounded(live.size())];
        const double start = rng.NextDouble(0.0, 20.0);
        store.Insert(Entry(id, rng.NextDouble(0.0, 100.0),
                           rng.NextDouble(0.0, 100.0), start,
                           start + rng.NextDouble(0.0, 10.0)));
      } else {
        const Point origin{rng.NextDouble(-5.0, 105.0),
                           rng.NextDouble(-5.0, 105.0)};
        const double max_distance = rng.NextDouble(0.0, 60.0);
        const size_t k = 1 + rng.NextBounded(12);
        const double query_time = rng.NextDouble(0.0, 25.0);
        StartWindow window;
        if (rng.NextBool(0.7)) {
          window.lo = rng.NextDouble(0.0, 20.0);
          window.hi = window.lo + rng.NextDouble(0.0, 10.0);
        }
        const int64_t parity = static_cast<int64_t>(rng.NextBounded(2));
        const auto filter = [parity](const RetrievalCandidate& e, double) {
          return (e.id % 2) == parity;
        };
        const auto& got = cursor.TopK(origin, max_distance, k, query_time,
                                      window, filter);
        const auto want = OracleTopK(store, origin, max_distance, k,
                                     query_time, window, filter);
        ExpectSameHits(got, want,
                       "iter " + std::to_string(iter) + " op " +
                           std::to_string(op));
      }
    }
    EXPECT_EQ(store.size(), live.size());
    EXPECT_GT(stats.queries, 0);
  }
}

}  // namespace
}  // namespace ftoa
