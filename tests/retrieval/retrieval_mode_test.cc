// The retrieval flag's contract: `--retrieval=engine` trades running time,
// never assignments. Every algorithm that scans candidates spatially must
// produce a bit-identical run (assignment, dispatches, matcher counters)
// under the engine and under its historical linear/grid scan, across the
// adversarial arrival patterns and under sharding. The *Stress* suite
// widens the sweep under `ctest -L stress`.

#include "retrieval/mode.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/algorithm_registry.h"
#include "sim/sharded_dispatcher.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::AllArrivalPatterns;
using ftoa::testing::ArrivalPattern;
using ftoa::testing::ArrivalPatternName;
using ftoa::testing::ExpectIdenticalRun;
using ftoa::testing::FuzzUniverse;
using ftoa::testing::MakeFuzzUniverse;
using ftoa::testing::StressIterations;

/// The algorithms whose candidate scans the engine backs (the registry's
/// master-switch set).
const char* const kPortedAlgorithms[] = {"simple-greedy", "tgoa",
                                         "polar-op-g"};

TEST(RetrievalModeTest, NamesParseAndRoundTrip) {
  EXPECT_EQ(AllRetrievalModeNames(),
            (std::vector<std::string>{"linear", "engine"}));
  for (const RetrievalMode mode :
       {RetrievalMode::kLinear, RetrievalMode::kEngine}) {
    const auto parsed = ParseRetrievalMode(RetrievalModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  const auto bogus = ParseRetrievalMode("quadtree");
  ASSERT_FALSE(bogus.ok());
  EXPECT_NE(bogus.status().ToString().find("linear"), std::string::npos);
  EXPECT_NE(bogus.status().ToString().find("engine"), std::string::npos);
}

TEST(RetrievalModeTest, EngineModePopulatesTraceStatsLinearDoesNot) {
  const FuzzUniverse universe =
      MakeFuzzUniverse(3, ArrivalPattern::kShuffledIds);
  for (const char* name : kPortedAlgorithms) {
    AlgorithmDeps deps = universe.deps;
    deps.retrieval = RetrievalMode::kEngine;
    auto engine = CreateAlgorithm(name, deps);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    RunTrace engine_trace;
    (*engine)->Run(universe.instance, &engine_trace);
    EXPECT_GT(engine_trace.retrieval.queries, 0) << name;

    deps.retrieval = RetrievalMode::kLinear;
    auto linear = CreateAlgorithm(name, deps);
    ASSERT_TRUE(linear.ok()) << linear.status().ToString();
    RunTrace linear_trace;
    (*linear)->Run(universe.instance, &linear_trace);
    EXPECT_EQ(linear_trace.retrieval.queries, 0) << name;
  }
}

TEST(RetrievalModeTest, MasterSwitchNeverClobbersExplicitStructSettings) {
  // kLinear at the deps level must leave a per-struct kEngine choice
  // intact — tests and embedders that configure the option structs
  // directly keep what they asked for.
  const FuzzUniverse universe =
      MakeFuzzUniverse(4, ArrivalPattern::kAlternating);
  AlgorithmDeps deps = universe.deps;
  deps.retrieval = RetrievalMode::kLinear;
  deps.tgoa_options.retrieval = RetrievalMode::kEngine;
  auto algorithm = CreateAlgorithm("tgoa", deps);
  ASSERT_TRUE(algorithm.ok());
  RunTrace trace;
  (*algorithm)->Run(universe.instance, &trace);
  EXPECT_GT(trace.retrieval.queries, 0);
}

void ExpectEngineMatchesLinear(const std::string& name,
                               const AlgorithmDeps& base_deps,
                               const Instance& instance,
                               const std::string& label) {
  AlgorithmDeps linear_deps = base_deps;
  linear_deps.retrieval = RetrievalMode::kLinear;
  AlgorithmDeps engine_deps = base_deps;
  engine_deps.retrieval = RetrievalMode::kEngine;

  auto linear = CreateAlgorithm(name, linear_deps);
  auto engine = CreateAlgorithm(name, engine_deps);
  ASSERT_TRUE(linear.ok()) << linear.status().ToString();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  RunTrace linear_trace;
  RunTrace engine_trace;
  const Assignment a = (*linear)->Run(instance, &linear_trace);
  const Assignment b = (*engine)->Run(instance, &engine_trace);
  ExpectIdenticalRun(a, linear_trace, b, engine_trace, label);
  // Object-level deadline feasibility, for the algorithms that promise it
  // (polar-op-g's guide-trust pairs are type-representative feasible only;
  // the sharded suite documents that carve-out).
  if (name != "polar-op-g") {
    EXPECT_TRUE(a.Validate(instance, (*linear)->feasibility_policy()).ok())
        << label;
  }
}

class RetrievalEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(RetrievalEquivalenceTest, EngineRunIsBitIdenticalToLinear) {
  for (const ArrivalPattern pattern : AllArrivalPatterns()) {
    for (const uint64_t seed : {1u, 2u}) {
      const FuzzUniverse universe = MakeFuzzUniverse(seed, pattern);
      ExpectEngineMatchesLinear(
          GetParam(), universe.deps, universe.instance,
          std::string(GetParam()) + " " + ArrivalPatternName(pattern) +
              " seed " + std::to_string(seed));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PortedAlgorithms, RetrievalEquivalenceTest,
                         ::testing::ValuesIn(kPortedAlgorithms));

TEST(RetrievalModeTest, TgoaRebuildModeIsAlsoBitIdentical) {
  // The rebuild-per-arrival trial enumerates its waiting sets through the
  // pool too; the canonical id-sorted enumeration must hold there as well.
  for (const uint64_t seed : {5u, 6u}) {
    FuzzUniverse universe =
        MakeFuzzUniverse(seed, ArrivalPattern::kBursty);
    universe.deps.tgoa_options.incremental_matching = false;
    ExpectEngineMatchesLinear(
        "tgoa", universe.deps, universe.instance,
        "tgoa-rebuild seed " + std::to_string(seed));
  }
}

TEST(RetrievalModeTest, ShardedRunsAgreeAcrossModes) {
  // Per-shard sessions on the engine, merged and reconciled, must still
  // equal the linear sharded run — the reconciler itself always runs on
  // the engine, so its stats show up in both traces.
  const FuzzUniverse universe =
      MakeFuzzUniverse(9, ArrivalPattern::kShuffledIds);
  for (const char* name : kPortedAlgorithms) {
    ShardedOptions options;
    options.algorithm = name;
    options.num_shards = 3;
    options.reconcile = true;
    AlgorithmDeps linear_deps = universe.deps;
    linear_deps.retrieval = RetrievalMode::kLinear;
    AlgorithmDeps engine_deps = universe.deps;
    engine_deps.retrieval = RetrievalMode::kEngine;
    auto linear = ShardedDispatcher::Create(options, linear_deps);
    auto engine = ShardedDispatcher::Create(options, engine_deps);
    ASSERT_TRUE(linear.ok()) << linear.status().ToString();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    auto a = (*linear)->Run(universe.instance);
    auto b = (*engine)->Run(universe.instance);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ExpectIdenticalRun(a->assignment, a->trace, b->assignment, b->trace,
                       std::string("sharded ") + name);
    EXPECT_GT(b->trace.retrieval.queries, 0) << name;
  }
}

// Widened engine-vs-linear sweep: every ported algorithm against every
// arrival pattern across FTOA_STRESS_ITERS seeds (tools/run_stress.sh).
TEST(RetrievalModeStress, EngineMatchesLinearAcrossFuzzUniverses) {
  const int iterations = StressIterations(2);
  for (int iter = 0; iter < iterations; ++iter) {
    const uint64_t seed = 101 + static_cast<uint64_t>(iter);
    for (const ArrivalPattern pattern : AllArrivalPatterns()) {
      const FuzzUniverse universe = MakeFuzzUniverse(seed, pattern, 90, 90);
      for (const char* name : kPortedAlgorithms) {
        ExpectEngineMatchesLinear(
            name, universe.deps, universe.instance,
            std::string(name) + " " + ArrivalPatternName(pattern) +
                " stress seed " + std::to_string(seed));
      }
    }
  }
}

}  // namespace
}  // namespace ftoa
