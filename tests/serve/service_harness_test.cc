#include "serve/service_harness.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace ftoa {
namespace {

CityProfile SmallCity() {
  CityProfile profile;
  profile.name = "test-city";
  profile.grid_x = 6;
  profile.grid_y = 4;
  profile.slots_per_day = 6;
  profile.history_days = 4;
  profile.workers_per_day = 60;
  profile.tasks_per_day = 70;
  profile.velocity = 3.0;
  profile.task_duration = 1.0;
  profile.worker_duration = 2.0;
  profile.seed = 99;
  return profile;
}

std::unique_ptr<ServiceHarness> MakeHarness(const ServiceOptions& options) {
  auto harness = ServiceHarness::Create(SmallCity(),
                                        LoopedTraceSource::Options{}, options);
  EXPECT_TRUE(harness.ok()) << harness.status();
  return std::move(harness).value();
}

TEST(ServiceHarnessTest, EveryWindowReportsMetrics) {
  auto harness = MakeHarness(ServiceOptions{});
  ASSERT_TRUE(harness->RunWindows(12).ok());

  ASSERT_EQ(harness->windows().size(), 12u);
  int64_t admitted = 0;
  for (size_t i = 0; i < harness->windows().size(); ++i) {
    const WindowMetrics& window = harness->windows()[i];
    EXPECT_EQ(window.window, static_cast<int64_t>(i));
    EXPECT_EQ(window.day, static_cast<int64_t>(i) / 6);
    EXPECT_GE(window.live_objects, 0);
    EXPECT_GE(window.guide_epoch, 1);  // Bootstrap refresh at window 0.
    admitted += window.admitted;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_EQ(admitted, harness->totals().admitted);
  EXPECT_GT(harness->totals().matched, 0);
  EXPECT_EQ(harness->totals().segments, 2);  // One per day by default.
  EXPECT_EQ(harness->totals().shed, 0);      // No caps, no faults.
}

TEST(ServiceHarnessTest, EvictionKeepsMemoryBoundedAndNeverFreesLive) {
  ServiceOptions options;
  options.evict_expired = true;
  auto harness = MakeHarness(options);
  // Step window by window so the live/evicted invariants are checked at
  // every boundary, not just at the end.
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(harness->RunWindows(1).ok());
    EXPECT_EQ(harness->totals().evicted_live, 0);
    EXPECT_LE(harness->live_objects(), harness->store_size());
  }
  EXPECT_GT(harness->totals().evictions, 0);
  // The store holds only the live tail, not the whole history.
  EXPECT_LT(harness->store_size(), harness->totals().admitted / 2);
  EXPECT_LT(harness->totals().store_peak, harness->totals().admitted);
}

TEST(ServiceHarnessTest, EvictionIsAssignmentInert) {
  // The bit-identity property: the evicting harness commits exactly the
  // pairs of the unbounded-memory reference on the same finite stream.
  ServiceOptions evicting;
  evicting.evict_expired = true;
  ServiceOptions unbounded;
  unbounded.evict_expired = false;

  auto a = MakeHarness(evicting);
  auto b = MakeHarness(unbounded);
  ASSERT_TRUE(a->RunWindows(18).ok());
  ASSERT_TRUE(b->RunWindows(18).ok());

  EXPECT_EQ(a->totals().matched, b->totals().matched);
  EXPECT_EQ(a->totals().admitted, b->totals().admitted);
  EXPECT_EQ(a->totals().evictions, b->totals().evictions);
  ASSERT_EQ(a->matched_pairs().size(), b->matched_pairs().size());
  for (size_t i = 0; i < a->matched_pairs().size(); ++i) {
    EXPECT_EQ(a->matched_pairs()[i], b->matched_pairs()[i]) << "pair " << i;
  }
  // Only the memory footprint differs: the reference keeps every record.
  EXPECT_EQ(b->store_size(), b->totals().admitted);
  EXPECT_LT(a->store_size(), b->store_size());
}

TEST(ServiceHarnessTest, ShedsOnlyUnderInjectedOverload) {
  ServiceOptions options;
  options.max_queue_depth = 80;  // Far above the base per-window load.
  options.faults = "flash@7-8:factor=6";
  auto harness = MakeHarness(options);
  ASSERT_TRUE(harness->RunWindows(12).ok());

  for (const WindowMetrics& window : harness->windows()) {
    const bool in_flash = window.window >= 7 && window.window <= 8;
    if (!in_flash) {
      EXPECT_EQ(window.shed, 0) << "window " << window.window;
      EXPECT_FALSE(window.overloaded) << "window " << window.window;
      EXPECT_EQ(window.flash_clones, 0);
    } else {
      EXPECT_GT(window.flash_clones, 0);
    }
  }
  EXPECT_GT(harness->totals().shed, 0);  // The flash crowd overflowed.
}

TEST(ServiceHarnessTest, MaxLiveObjectsCapsAdmission) {
  ServiceOptions options;
  options.max_live_objects = 25;
  auto harness = MakeHarness(options);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(harness->RunWindows(1).ok());
    EXPECT_LE(harness->live_objects(), 25);
  }
  EXPECT_GT(harness->totals().shed, 0);
}

TEST(ServiceHarnessTest, GuideHotSwapLandsMidSegment) {
  ServiceOptions options;
  options.refresh_period_windows = 3;  // Publishes inside each day segment.
  auto harness = MakeHarness(options);
  ASSERT_TRUE(harness->RunWindows(12).ok());

  // Refreshes at windows 0, 3, 6, 9: two land mid-segment and are adopted
  // by the running sessions.
  EXPECT_GE(harness->guide_epoch(), 4);
  EXPECT_GT(harness->totals().guide_swaps, 0);
  EXPECT_GT(harness->totals().matched, 0);
}

TEST(ServiceHarnessTest, DegradationLadderFallsBackToGreedyAndRecovers) {
  ServiceOptions options;
  options.faults = "guide-fail@0-0:count=1";  // Bootstrap refresh fails.
  auto harness = MakeHarness(options);
  ASSERT_TRUE(harness->RunWindows(12).ok());

  // Day 0 ran the ladder's greedy rung (no guide ever published); the
  // window-6 refresh succeeded and day 1 ran guided.
  for (const WindowMetrics& window : harness->windows()) {
    if (window.window < 6) {
      EXPECT_TRUE(window.degraded_greedy) << "window " << window.window;
      EXPECT_EQ(window.guide_age_windows, -1);
    } else {
      EXPECT_FALSE(window.degraded_greedy) << "window " << window.window;
      EXPECT_GE(window.guide_epoch, 1);
    }
  }
  EXPECT_GE(harness->windows().back().refresh_failures, 1);
  EXPECT_GT(harness->totals().matched, 0);  // Service never stopped.
}

TEST(ServiceHarnessTest, DroppedHandoffBatchesAreRedeliveredNextSegment) {
  ServiceOptions options;
  options.windows_per_segment = 3;
  options.faults = "drop-batch@1-1";  // Window 1's handoff is lost.
  auto harness = MakeHarness(options);
  ASSERT_TRUE(harness->RunWindows(6).ok());

  EXPECT_GT(harness->windows()[1].dropped_arrivals, 0);
  EXPECT_EQ(harness->windows()[0].dropped_arrivals, 0);
  EXPECT_GT(harness->fault_counters().dropped_batches, 0);

  // The same stream without the fault commits at least as many pairs; the
  // dropped objects were only delayed (redelivered via carryover), not
  // silently discarded, so the faulted run still matches.
  ServiceOptions clean = options;
  clean.faults.clear();
  auto reference = MakeHarness(clean);
  ASSERT_TRUE(reference->RunWindows(6).ok());
  EXPECT_GT(harness->totals().matched, 0);
  EXPECT_LE(harness->totals().matched, reference->totals().matched);
}

TEST(ServiceHarnessTest, ShardedServiceIsDeterministicAcrossThreadCounts) {
  ServiceOptions base;
  base.num_shards = 3;
  base.shard_threads = 1;
  ServiceOptions threaded = base;
  threaded.shard_threads = 3;

  auto a = MakeHarness(base);
  auto b = MakeHarness(threaded);
  ASSERT_TRUE(a->RunWindows(12).ok());
  ASSERT_TRUE(b->RunWindows(12).ok());
  EXPECT_EQ(a->totals().matched, b->totals().matched);
  ASSERT_EQ(a->matched_pairs().size(), b->matched_pairs().size());
  for (size_t i = 0; i < a->matched_pairs().size(); ++i) {
    EXPECT_EQ(a->matched_pairs()[i], b->matched_pairs()[i]) << "pair " << i;
  }
}

TEST(ServiceHarnessTest, BackgroundRefreshEventuallyPublishes) {
  ServiceOptions options;
  options.background_refresh = true;
  options.refresh.timeout_ms = 30000.0;
  auto harness = MakeHarness(options);
  // The solve races the window loop; keep feeding days (each boundary
  // polls) with a little wall time in between until it lands.
  for (int i = 0; i < 1000 && harness->guide_epoch() == 0; ++i) {
    ASSERT_TRUE(harness->RunWindows(6).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(harness->guide_epoch(), 1);
  EXPECT_GE(harness->refresher_stats().publishes, 1);
}

TEST(ServiceHarnessTest, RejectsUnknownAlgorithmAndBadFaultSpec) {
  ServiceOptions options;
  options.algorithm = "quantum-dispatch";
  const auto unknown = ServiceHarness::Create(
      SmallCity(), LoopedTraceSource::Options{}, options);
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.status().IsNotFound());
  EXPECT_NE(unknown.status().message().find("polar-op"), std::string::npos);

  ServiceOptions bad_faults;
  bad_faults.faults = "meteor-strike@0-1";
  const auto malformed = ServiceHarness::Create(
      SmallCity(), LoopedTraceSource::Options{}, bad_faults);
  ASSERT_FALSE(malformed.ok());
  EXPECT_TRUE(malformed.status().IsInvalidArgument());
}

TEST(ServiceHarnessTest, RetrievalStatsSurfaceOnRotationWindowsOnly) {
  // The engine's per-query stats are attributed to the window that
  // rotated the segment (like `matched`), and switching backends must not
  // change what got matched — only the counters.
  ServiceOptions engine_options;
  engine_options.algorithm = "tgoa";
  engine_options.windows_per_segment = 3;
  engine_options.retrieval = RetrievalMode::kEngine;
  auto engine = MakeHarness(engine_options);
  ASSERT_TRUE(engine->RunWindows(12).ok());

  ServiceOptions linear_options = engine_options;
  linear_options.retrieval = RetrievalMode::kLinear;
  auto linear = MakeHarness(linear_options);
  ASSERT_TRUE(linear->RunWindows(12).ok());

  EXPECT_EQ(engine->totals().matched, linear->totals().matched);
  int64_t engine_queries = 0;
  for (size_t i = 0; i < engine->windows().size(); ++i) {
    const WindowMetrics& w = engine->windows()[i];
    engine_queries += w.retrieval_queries;
    if (w.retrieval_queries > 0) {
      EXPECT_GE(w.cells_visited_p99, w.cells_visited_p50) << "window " << i;
    } else {
      // Non-rotation windows carry no retrieval activity.
      EXPECT_EQ(w.candidates_examined, 0) << "window " << i;
    }
  }
  EXPECT_GT(engine_queries, 0);
  for (const WindowMetrics& w : linear->windows()) {
    EXPECT_EQ(w.retrieval_queries, 0);
    EXPECT_EQ(w.candidates_examined, 0);
    EXPECT_EQ(w.cells_visited_p50, 0);
    EXPECT_EQ(w.cells_visited_p99, 0);
  }
}

}  // namespace
}  // namespace ftoa
