#include "serve/guide_refresher.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

GuideOptions SmallGuideOptions() {
  GuideOptions options;
  options.worker_duration = 30.0;
  options.task_duration = 2.0;
  return options;
}

TEST(GuideSlotTest, PublishAdvancesEpochAndSnapshotIsConsistent) {
  GuideSlot slot;
  EXPECT_EQ(slot.epoch(), 0);
  EXPECT_EQ(slot.Get().guide, nullptr);

  const Instance instance = MakeExample1Instance();
  auto guide = std::make_shared<const OfflineGuide>(
      OfflineGuide(instance.spacetime(), 1.0, 30.0, 2.0));
  const GuideSlot::Snapshot published = slot.Publish(guide, 4);
  EXPECT_EQ(published.epoch, 1);
  EXPECT_EQ(published.published_window, 4);
  EXPECT_EQ(slot.Get().guide.get(), guide.get());

  slot.Publish(guide, 9);
  EXPECT_EQ(slot.epoch(), 2);
  EXPECT_EQ(slot.Get().published_window, 9);
}

TEST(GuideRefresherTest, RefreshNowPublishes) {
  const Instance instance = MakeExample1Instance();
  GuideRefresher refresher(instance.velocity(), SmallGuideOptions(),
                           GuideRefresher::Options{});
  GuideSlot slot;
  const auto snapshot = refresher.RefreshNow(
      PredictionMatrix::FromInstance(instance), /*window=*/3, &slot);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(snapshot.value().epoch, 1);
  EXPECT_NE(snapshot.value().guide, nullptr);
  EXPECT_GT(snapshot.value().guide->matched_pairs(), 0);
  EXPECT_EQ(refresher.stats().publishes, 1);
  EXPECT_EQ(refresher.stats().attempts, 1);
  EXPECT_EQ(refresher.stats().failed_cycles, 0);
}

TEST(GuideRefresherTest, InjectedFailureFailsWholeCycleAndKeepsSlot) {
  const Instance instance = MakeExample1Instance();
  auto faults = FaultInjector::Parse("guide-fail@5-5:count=1").value();
  GuideRefresher::Options options;
  options.max_attempts = 3;
  GuideRefresher refresher(instance.velocity(), SmallGuideOptions(), options,
                           &faults);
  GuideSlot slot;
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(instance);

  // Window 5 is poisoned: all 3 attempts fail, slot untouched.
  const auto failed = refresher.RefreshNow(prediction, 5, &slot);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsInternal());
  EXPECT_NE(failed.status().message().find("injected"), std::string::npos);
  EXPECT_EQ(slot.epoch(), 0);
  EXPECT_EQ(refresher.stats().attempts, 3);
  EXPECT_EQ(refresher.stats().failed_cycles, 1);

  // The fault count is consumed: the next cycle succeeds (degradation
  // recovers once the injected outage ends).
  const auto recovered = refresher.RefreshNow(prediction, 6, &slot);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(slot.epoch(), 1);
}

TEST(GuideRefresherTest, BackgroundCyclePublishesThroughPoll) {
  const Instance instance = MakeExample1Instance();
  GuideRefresher::Options options;
  options.timeout_ms = 30000.0;
  GuideRefresher refresher(instance.velocity(), SmallGuideOptions(), options);
  GuideSlot slot;

  EXPECT_EQ(refresher.Poll(), GuideRefresher::PollResult::kIdle);
  ASSERT_TRUE(refresher.StartBackground(
      PredictionMatrix::FromInstance(instance), /*window=*/7, &slot));
  // A second start while in flight is refused.
  EXPECT_FALSE(refresher.StartBackground(
      PredictionMatrix::FromInstance(instance), 8, &slot));

  GuideRefresher::PollResult result = refresher.Poll();
  while (result == GuideRefresher::PollResult::kRunning) {
    std::this_thread::yield();
    result = refresher.Poll();
  }
  EXPECT_EQ(result, GuideRefresher::PollResult::kPublished);
  EXPECT_EQ(slot.epoch(), 1);
  EXPECT_EQ(slot.Get().published_window, 7);
  EXPECT_FALSE(refresher.busy());
  EXPECT_EQ(refresher.stats().publishes, 1);
  EXPECT_GE(refresher.stats().attempts, 1);
}

TEST(GuideRefresherTest, BackgroundInjectedFailureReportsFailed) {
  const Instance instance = MakeExample1Instance();
  auto faults = FaultInjector::Parse("guide-fail@0-100:count=1").value();
  GuideRefresher::Options options;
  options.timeout_ms = 30000.0;
  GuideRefresher refresher(instance.velocity(), SmallGuideOptions(), options,
                           &faults);
  GuideSlot slot;
  ASSERT_TRUE(refresher.StartBackground(
      PredictionMatrix::FromInstance(instance), 2, &slot));
  GuideRefresher::PollResult result = refresher.Poll();
  while (result == GuideRefresher::PollResult::kRunning) {
    std::this_thread::yield();
    result = refresher.Poll();
  }
  EXPECT_EQ(result, GuideRefresher::PollResult::kFailed);
  EXPECT_EQ(slot.epoch(), 0);  // Stale slot kept — the ladder's input.
  EXPECT_EQ(refresher.stats().failed_cycles, 1);

  // The refresher is reusable after a failed cycle.
  ASSERT_TRUE(refresher.StartBackground(
      PredictionMatrix::FromInstance(instance), 3, &slot));
  result = refresher.Poll();
  while (result == GuideRefresher::PollResult::kRunning) {
    std::this_thread::yield();
    result = refresher.Poll();
  }
  EXPECT_EQ(result, GuideRefresher::PollResult::kPublished);
  EXPECT_EQ(slot.epoch(), 1);
}

TEST(GuideRefresherTest, ZeroTimeoutIsReportedAsTimeoutNotPublished) {
  // With an immediate deadline the cycle can never publish: either Poll
  // observes the miss while the solve runs, or the solve finishes first
  // and Await discards it as late. Either way the slot stays stale and a
  // timeout is counted — a late guide is never installed.
  const Instance instance = MakeExample1Instance();
  GuideRefresher::Options options;
  options.timeout_ms = 0.0;
  GuideRefresher refresher(instance.velocity(), SmallGuideOptions(), options);
  GuideSlot slot;
  ASSERT_TRUE(refresher.StartBackground(
      PredictionMatrix::FromInstance(instance), 1, &slot));
  GuideRefresher::PollResult result = refresher.Poll();
  while (result == GuideRefresher::PollResult::kRunning) {
    std::this_thread::yield();
    result = refresher.Poll();
  }
  EXPECT_EQ(result, GuideRefresher::PollResult::kFailed);
  EXPECT_EQ(slot.epoch(), 0);
  EXPECT_EQ(refresher.stats().timeouts, 1);
  EXPECT_EQ(refresher.stats().publishes, 0);
  EXPECT_FALSE(refresher.busy());
}

}  // namespace
}  // namespace ftoa
