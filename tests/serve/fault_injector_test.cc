#include "serve/fault_injector.h"

#include <gtest/gtest.h>

#include <string>

namespace ftoa {
namespace {

TEST(FaultInjectorTest, EmptySpecIsBenign) {
  auto injector = FaultInjector::Parse("");
  ASSERT_TRUE(injector.ok());
  EXPECT_TRUE(injector.value().empty());
  EXPECT_DOUBLE_EQ(injector.value().SlowShardStallMs(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(injector.value().FlashCrowdFactor(5), 1.0);
  EXPECT_FALSE(injector.value().GuideRefreshShouldFail(3));
  EXPECT_FALSE(injector.value().ShouldDropHandoffBatch(3, 0));
}

TEST(FaultInjectorTest, ParsesFullPlan) {
  auto parsed = FaultInjector::Parse(
      "slow-shard@3-5:shard=1:stall-ms=40,guide-fail@4-6:count=2,"
      "flash@7-8:factor=4,drop-batch@9-9:shard=2:prob=0.5");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const FaultInjector& injector = parsed.value();
  ASSERT_EQ(injector.faults().size(), 4u);
  EXPECT_EQ(injector.faults()[0].name, "slow-shard");
  EXPECT_EQ(injector.faults()[0].begin_window, 3);
  EXPECT_EQ(injector.faults()[0].end_window, 5);
  EXPECT_EQ(injector.faults()[0].shard, 1);
  EXPECT_DOUBLE_EQ(injector.faults()[0].stall_ms, 40.0);
  EXPECT_EQ(injector.faults()[1].count, 2);
  EXPECT_DOUBLE_EQ(injector.faults()[2].factor, 4.0);
  EXPECT_DOUBLE_EQ(injector.faults()[3].prob, 0.5);
}

TEST(FaultInjectorTest, SlowShardTargetsWindowAndShard) {
  auto injector =
      FaultInjector::Parse("slow-shard@2-4:shard=1:stall-ms=10").value();
  EXPECT_DOUBLE_EQ(injector.SlowShardStallMs(1, 1), 0.0);  // Before range.
  EXPECT_DOUBLE_EQ(injector.SlowShardStallMs(2, 1), 10.0);
  EXPECT_DOUBLE_EQ(injector.SlowShardStallMs(4, 1), 10.0);  // Inclusive end.
  EXPECT_DOUBLE_EQ(injector.SlowShardStallMs(5, 1), 0.0);
  EXPECT_DOUBLE_EQ(injector.SlowShardStallMs(3, 0), 0.0);  // Other shard.

  auto all = FaultInjector::Parse("slow-shard@0-0:stall-ms=7").value();
  EXPECT_DOUBLE_EQ(all.SlowShardStallMs(0, 0), 7.0);  // shard=-1: all.
  EXPECT_DOUBLE_EQ(all.SlowShardStallMs(0, 3), 7.0);

  auto overlap = FaultInjector::Parse(
                     "slow-shard@0-2:stall-ms=5,slow-shard@1-3:stall-ms=3")
                     .value();
  EXPECT_DOUBLE_EQ(overlap.SlowShardStallMs(1, 0), 8.0);  // Additive.
}

TEST(FaultInjectorTest, GuideFailConsumesCount) {
  auto injector = FaultInjector::Parse("guide-fail@2-9:count=2").value();
  EXPECT_FALSE(injector.GuideRefreshShouldFail(1));
  EXPECT_TRUE(injector.GuideRefreshShouldFail(2));
  EXPECT_TRUE(injector.GuideRefreshShouldFail(3));
  EXPECT_FALSE(injector.GuideRefreshShouldFail(4));  // Count exhausted.
  EXPECT_EQ(injector.counters().guide_failures, 2);
}

TEST(FaultInjectorTest, FlashFactorMultipliesOverlaps) {
  auto injector =
      FaultInjector::Parse("flash@1-2:factor=3,flash@2-3:factor=2").value();
  EXPECT_DOUBLE_EQ(injector.FlashCrowdFactor(0), 1.0);
  EXPECT_DOUBLE_EQ(injector.FlashCrowdFactor(1), 3.0);
  EXPECT_DOUBLE_EQ(injector.FlashCrowdFactor(2), 6.0);
  EXPECT_DOUBLE_EQ(injector.FlashCrowdFactor(3), 2.0);
}

TEST(FaultInjectorTest, DropBatchIsDeterministicInSeed) {
  const std::string spec = "drop-batch@0-99:prob=0.5";
  auto a = FaultInjector::Parse(spec, 7).value();
  auto b = FaultInjector::Parse(spec, 7).value();
  int drops = 0;
  for (int i = 0; i < 100; ++i) {
    const bool drop = a.ShouldDropHandoffBatch(i, 0);
    EXPECT_EQ(drop, b.ShouldDropHandoffBatch(i, 0));
    drops += drop ? 1 : 0;
  }
  EXPECT_GT(drops, 20);  // ~50 expected.
  EXPECT_LT(drops, 80);
  EXPECT_EQ(a.counters().dropped_batches, drops);

  auto sure = FaultInjector::Parse("drop-batch@0-0").value();
  EXPECT_TRUE(sure.ShouldDropHandoffBatch(0, 5));  // prob default 1, any shard.
  EXPECT_FALSE(sure.ShouldDropHandoffBatch(1, 5));
}

TEST(FaultInjectorTest, UnknownFaultListsValidSet) {
  const auto status = FaultInjector::Parse("chaos-monkey@0-1").status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("chaos-monkey"), std::string::npos);
  EXPECT_NE(status.message().find("slow-shard"), std::string::npos);
  EXPECT_NE(status.message().find("drop-batch"), std::string::npos);
}

TEST(FaultInjectorTest, UnknownParameterListsValidKeys) {
  const auto status =
      FaultInjector::Parse("slow-shard@0-1:latency=5").status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("latency"), std::string::npos);
  EXPECT_NE(status.message().find("stall-ms"), std::string::npos);
}

TEST(FaultInjectorTest, MalformedSpecsAreRejected) {
  EXPECT_TRUE(FaultInjector::Parse("flash").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultInjector::Parse("flash@5").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultInjector::Parse("flash@5-2").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultInjector::Parse("flash@-3-2").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultInjector::Parse("flash@0-1:factor=x").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultInjector::Parse("flash@0-1:factor").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultInjector::Parse("flash@0-1:factor=0.5").status()
          .IsInvalidArgument());
  EXPECT_TRUE(FaultInjector::Parse("guide-fail@0-1:count=0")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FaultInjector::Parse("drop-batch@0-1:prob=1.5")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      FaultInjector::Parse("flash@0-1,").status().IsInvalidArgument());
}

}  // namespace
}  // namespace ftoa
