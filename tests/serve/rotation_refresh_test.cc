// PR tentpole equivalences at the harness level.
//
// Rotation: the incremental spine (ServiceOptions::incremental_rotation)
// must commit exactly the pairs of the PR 6 rebuild reference on the same
// stream — across algorithms, shard counts, segment lengths, eviction
// settings, fault plans, and day boundaries. The spine is an optimization
// of *how* the carryover universe is assembled, never of what it contains.
//
// Refresh: a harness serving with GuideRefreshMode::kWarm must match the
// cold-serving harness bit for bit, including mid-segment hot-swap
// publishes, while actually reusing component solves (the reuse totals
// prove the warm path engaged, not silently fell back cold).
//
// The *Stress* suite fuzzes option interleavings under the `stress` ctest
// label (re-runnable via tools/run_stress.sh).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/service_harness.h"
#include "util/rng.h"

namespace ftoa {
namespace {

CityProfile SmallCity() {
  CityProfile profile;
  profile.name = "test-city";
  profile.grid_x = 6;
  profile.grid_y = 4;
  profile.slots_per_day = 6;
  profile.history_days = 4;
  profile.workers_per_day = 60;
  profile.tasks_per_day = 70;
  profile.velocity = 3.0;
  profile.task_duration = 1.0;
  profile.worker_duration = 2.0;
  profile.seed = 99;
  return profile;
}

std::unique_ptr<ServiceHarness> MakeHarness(const ServiceOptions& options) {
  auto harness = ServiceHarness::Create(SmallCity(),
                                        LoopedTraceSource::Options{}, options);
  EXPECT_TRUE(harness.ok()) << harness.status();
  return std::move(harness).value();
}

void ExpectSamePairs(const ServiceHarness& a, const ServiceHarness& b,
                     const std::string& context) {
  EXPECT_EQ(a.totals().matched, b.totals().matched) << context;
  ASSERT_EQ(a.matched_pairs().size(), b.matched_pairs().size()) << context;
  for (size_t i = 0; i < a.matched_pairs().size(); ++i) {
    ASSERT_EQ(a.matched_pairs()[i], b.matched_pairs()[i])
        << context << " pair " << i;
  }
}

TEST(RotationEquivalenceTest, SpineMatchesRebuildAcrossAlgorithmsAndShards) {
  for (const char* algorithm : {"simple-greedy", "tgoa", "polar-op"}) {
    for (const int shards : {1, 3}) {
      for (const int wps : {2, 6}) {
        for (const bool evict : {true, false}) {
          ServiceOptions incremental;
          incremental.algorithm = algorithm;
          incremental.num_shards = shards;
          incremental.windows_per_segment = wps;
          incremental.evict_expired = evict;
          incremental.incremental_rotation = true;
          ServiceOptions rebuild = incremental;
          rebuild.incremental_rotation = false;

          auto a = MakeHarness(incremental);
          auto b = MakeHarness(rebuild);
          // 20 windows = 3+ days: multiple day-boundary re-timings.
          ASSERT_TRUE(a->RunWindows(20).ok());
          ASSERT_TRUE(b->RunWindows(20).ok());
          ExpectSamePairs(
              *a, *b,
              std::string(algorithm) + " shards=" + std::to_string(shards) +
                  " wps=" + std::to_string(wps) +
                  (evict ? " evict" : " no-evict"));
          EXPECT_GT(a->totals().matched, 0);
        }
      }
    }
  }
}

TEST(RotationEquivalenceTest, SpineMatchesRebuildUnderFaults) {
  // Dropped handoffs leave objects for redelivery, flash crowds force
  // shedding, and a failed refresh degrades a segment — all paths that
  // exercise the spine's carryover filter differently from a clean run.
  ServiceOptions incremental;
  incremental.windows_per_segment = 4;  // Shrinks to 2 at day boundaries.
  incremental.max_queue_depth = 80;
  incremental.faults =
      "drop-batch@3-4,flash@7-8:factor=6,guide-fail@6-6:count=1";
  ServiceOptions rebuild = incremental;
  rebuild.incremental_rotation = false;

  auto a = MakeHarness(incremental);
  auto b = MakeHarness(rebuild);
  ASSERT_TRUE(a->RunWindows(18).ok());
  ASSERT_TRUE(b->RunWindows(18).ok());
  ExpectSamePairs(*a, *b, "faulted");
  EXPECT_GT(a->totals().dropped_arrivals, 0);
  EXPECT_GT(a->totals().shed, 0);
}

TEST(WarmRefreshServeTest, WarmServeMatchesColdIncludingHotSwaps) {
  // refresh_period 3 on 6-window days: every second refresh publishes
  // mid-segment (hot-swap), and re-solves within one day see an unchanged
  // prediction — the warm cache's steady state. kCompressed keeps the
  // solve on the component-reusing path (kAuto would pick node-level at
  // this scale and run cold by design).
  ServiceOptions cold;
  cold.refresh_period_windows = 3;
  cold.guide.engine = GuideOptions::Engine::kCompressed;
  cold.guide.refresh_mode = GuideRefreshMode::kCold;
  ServiceOptions warm = cold;
  warm.guide.refresh_mode = GuideRefreshMode::kWarm;

  auto a = MakeHarness(warm);
  auto b = MakeHarness(cold);
  ASSERT_TRUE(a->RunWindows(18).ok());
  ASSERT_TRUE(b->RunWindows(18).ok());
  ExpectSamePairs(*a, *b, "warm vs cold serve");
  EXPECT_GT(a->totals().guide_swaps, 0);  // Hot-swaps actually landed.

  // The warm harness reused solves (within-day refreshes see the same
  // realized counts); the cold one never does.
  EXPECT_GT(a->totals().warm_refreshes, 0);
  EXPECT_GT(a->totals().refresh_components_reused, 0);
  EXPECT_EQ(b->totals().warm_refreshes, 0);
  EXPECT_EQ(b->totals().refresh_components_reused, 0);
  // Cost attribution reaches the per-window rows: every publish window
  // carries a solve time, non-publish windows carry none.
  double attributed_ms = 0.0;
  for (const WindowMetrics& w : a->windows()) {
    attributed_ms += w.refresh_ms;
    if (w.refresh_components_total > 0) {
      EXPECT_GE(w.refresh_components_total, w.refresh_components_reused);
    }
  }
  EXPECT_GT(attributed_ms, 0.0);
  EXPECT_DOUBLE_EQ(attributed_ms, a->totals().refresh_ms);
}

TEST(WarmRefreshServeTest, BackgroundWarmRefreshAttributesCycles) {
  ServiceOptions options;
  options.background_refresh = true;
  options.guide.engine = GuideOptions::Engine::kCompressed;
  options.guide.refresh_mode = GuideRefreshMode::kWarm;
  options.refresh.timeout_ms = 30000.0;
  auto harness = MakeHarness(options);
  for (int i = 0; i < 1000 && harness->totals().cold_refreshes +
                                  harness->totals().warm_refreshes < 2;
       ++i) {
    ASSERT_TRUE(harness->RunWindows(6).ok());
  }
  // Background publishes carry their cycle report across the thread
  // boundary into the totals.
  EXPECT_GE(harness->totals().cold_refreshes +
                harness->totals().warm_refreshes,
            2);
  EXPECT_GT(harness->totals().refresh_ms, 0.0);
}

TEST(AnalyticalSliceTest, SharedPoolServeMatchesDedicatedLayout) {
  // analytical_slice shares one pool between shard drains and the
  // refresher's bounded slice. Scheduling must not leak into results:
  // with inline refresh (whose publish timing is deterministic), pairs
  // are bit-identical to the PR 6 layout (dispatcher-owned pools).
  ServiceOptions dedicated;
  dedicated.num_shards = 2;
  dedicated.shard_threads = 2;
  ServiceOptions shared = dedicated;
  shared.analytical_slice = 1;

  auto a = MakeHarness(shared);
  auto b = MakeHarness(dedicated);
  ASSERT_TRUE(a->RunWindows(18).ok());
  ASSERT_TRUE(b->RunWindows(18).ok());
  ExpectSamePairs(*a, *b, "shared pool vs dedicated");
  EXPECT_GT(a->totals().matched, 0);
}

TEST(AnalyticalSliceTest, BackgroundSolvesOnTheSharedPoolStayLive) {
  // Background refresh on the slice races the window loop (publish timing
  // is scheduling-dependent, so no bit-identity claim) — but cycles must
  // keep completing and publishing while shard drains share the pool, and
  // the harness must tear down cleanly with solves possibly in flight.
  ServiceOptions options;
  options.num_shards = 2;
  options.shard_threads = 2;
  options.background_refresh = true;
  options.analytical_slice = 1;
  options.refresh.timeout_ms = 30000.0;
  auto harness = MakeHarness(options);
  for (int i = 0; i < 1000 && harness->guide_epoch() < 2; ++i) {
    ASSERT_TRUE(harness->RunWindows(6).ok());
  }
  EXPECT_GE(harness->guide_epoch(), 2);
  EXPECT_GT(harness->totals().matched, 0);
}

TEST(RefreshPredictorTest, LearnedPredictorFeedsTheRefresher) {
  ServiceOptions options;
  options.refresh_predictor = "HA";
  auto harness = MakeHarness(options);
  ASSERT_TRUE(harness->RunWindows(18).ok());
  EXPECT_GE(harness->refresher_stats().publishes, 3);
  EXPECT_GT(harness->totals().matched, 0);

  // A lagged model (LR wants > 15 training days) fits too once the
  // history is long enough — the rolling refit hands it the generator
  // history plus every completed stream day.
  CityProfile long_history = SmallCity();
  long_history.history_days = 18;
  ServiceOptions lr = options;
  lr.refresh_predictor = "LR";
  auto lr_harness = ServiceHarness::Create(
      long_history, LoopedTraceSource::Options{}, lr);
  ASSERT_TRUE(lr_harness.ok()) << lr_harness.status();
  const Status lr_run = (*lr_harness)->RunWindows(18);
  ASSERT_TRUE(lr_run.ok()) << lr_run;
  EXPECT_GT((*lr_harness)->totals().matched, 0);

  ServiceOptions unknown;
  unknown.refresh_predictor = "oracle";
  const auto bad = ServiceHarness::Create(
      SmallCity(), LoopedTraceSource::Options{}, unknown);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST(FaultLaneTest, ShardTargetedDropsFollowTheRouterNotStreamIds) {
  // A shard-targeted drop-batch hits the lane the session router actually
  // assigns (spatial bands under the grid router), so it must drop only
  // part of each window's traffic — and stay deterministic across shard
  // thread counts, since Route is a pure function of (kind, id, location).
  ServiceOptions options;
  options.num_shards = 2;
  options.windows_per_segment = 3;
  options.faults = "drop-batch@0-8:shard=0";
  auto harness = MakeHarness(options);
  ASSERT_TRUE(harness->RunWindows(9).ok());
  EXPECT_GT(harness->totals().dropped_arrivals, 0);
  // Shard 1's band was never dropped: traffic flowed and matched every
  // segment, unlike the all-lanes drop below.
  EXPECT_GT(harness->totals().matched, 0);

  // Dropping every lane loses strictly more traffic than dropping one
  // shard's band (segment-start carryover redelivery still gets through
  // in both runs — drop-batch governs per-window handoffs).
  ServiceOptions all_lanes = options;
  all_lanes.faults = "drop-batch@0-8";  // No shard filter: whole handoff.
  auto nothing = MakeHarness(all_lanes);
  ASSERT_TRUE(nothing->RunWindows(9).ok());
  EXPECT_LT(nothing->totals().matched, harness->totals().matched);
  EXPECT_GT(nothing->totals().dropped_arrivals,
            harness->totals().dropped_arrivals);

  ServiceOptions threaded = options;
  threaded.shard_threads = 2;
  auto b = MakeHarness(threaded);
  ASSERT_TRUE(b->RunWindows(9).ok());
  ExpectSamePairs(*harness, *b, "lane drops across thread counts");
  EXPECT_EQ(harness->totals().dropped_arrivals,
            b->totals().dropped_arrivals);
}

TEST(RotationRefreshStressTest, FuzzedInterleavingsStayEquivalent) {
  // Randomized option interleavings: every draw must keep the incremental
  // spine equivalent to the rebuild reference, warm equivalent to cold —
  // both at once, against the (rebuild, cold) baseline.
  Rng draw(20260808ULL);
  for (int trial = 0; trial < 12; ++trial) {
    ServiceOptions base;
    base.algorithm =
        std::vector<const char*>{"simple-greedy", "tgoa",
                                 "polar-op"}[draw.NextBounded(3)];
    base.num_shards = static_cast<int>(draw.NextInt(1, 3));
    base.windows_per_segment = static_cast<int>(draw.NextInt(1, 6));
    base.refresh_period_windows = static_cast<int>(draw.NextInt(1, 6));
    base.evict_expired = draw.NextBool();
    base.guide.engine = GuideOptions::Engine::kCompressed;
    if (draw.NextBool(0.4)) {
      base.faults = "drop-batch@2-5:prob=0.5,flash@6-7:factor=3";
      base.max_queue_depth = 100;
    }
    base.incremental_rotation = false;
    base.guide.refresh_mode = GuideRefreshMode::kCold;

    ServiceOptions tentpole = base;
    tentpole.incremental_rotation = true;
    tentpole.guide.refresh_mode = GuideRefreshMode::kWarm;

    auto reference = MakeHarness(base);
    auto subject = MakeHarness(tentpole);
    const int64_t windows = draw.NextInt(7, 20);
    ASSERT_TRUE(reference->RunWindows(windows).ok());
    ASSERT_TRUE(subject->RunWindows(windows).ok());
    ExpectSamePairs(*subject, *reference,
                    "trial " + std::to_string(trial));
  }
}

}  // namespace
}  // namespace ftoa
