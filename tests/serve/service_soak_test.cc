// The serving soak: a time-boxed ServiceHarness run under the acceptance
// fault plan — a slow shard lane, two forced guide-refresh failures, and a
// flash crowd — with sharded threaded sessions and background guide
// refresh (the configuration that exercises every cross-thread edge, which
// is what the TSan build of this suite is for).
//
// Registered as the aggregate `ftoa_service_soak` ctest entry under the
// `soak` label (excluded from per-test discovery like the *Stress*
// suites). The default duration is a short smoke so a plain ctest run
// stays fast; tools/run_service_soak.sh sets FTOA_SOAK_SECONDS=60 for the
// real soak.
//
// Health criteria checked after the time box:
//  * zero crashes / failed statuses (the run completed),
//  * every processed window reported metrics, in order,
//  * memory stayed bounded (live set + current segment, not the history),
//  * no live-deadline object was ever freed,
//  * at least one guide hot-swap was adopted by running sessions,
//  * both forced refresh failures were observed and survived,
//  * shedding happened only under the injected overload.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "serve/service_harness.h"
#include "util/stopwatch.h"

namespace ftoa {
namespace {

double SoakSeconds() {
  const char* env = std::getenv("FTOA_SOAK_SECONDS");
  if (env == nullptr || *env == '\0') return 3.0;  // Smoke duration.
  const double seconds = std::atof(env);
  return seconds > 0.0 ? seconds : 3.0;
}

CityProfile SoakCity() {
  CityProfile profile;
  profile.name = "soak-city";
  profile.grid_x = 8;
  profile.grid_y = 6;
  profile.slots_per_day = 6;
  profile.history_days = 5;
  profile.workers_per_day = 120;
  profile.tasks_per_day = 140;
  profile.velocity = 3.0;
  profile.task_duration = 1.0;
  profile.worker_duration = 2.0;
  profile.seed = 2017;
  return profile;
}

TEST(ServiceSoakTest, FaultedSoakStaysHealthy) {
  ServiceOptions options;
  options.algorithm = "polar-op";
  options.num_shards = 3;
  options.shard_threads = 3;
  options.background_refresh = true;
  options.refresh_period_windows = 3;
  options.refresh.timeout_ms = 30000.0;
  options.slo_p99_ms = 250.0;
  // Between the base rush-hour peak (85 offered) and the flash-crowd
  // windows (132/468): only the injected overload can trip it.
  options.max_queue_depth = 110;
  options.max_live_objects = 5000;
  // The acceptance plan: a slow shard lane, two forced refresh failures,
  // and a flash crowd that overflows the queue-depth cap.
  // The wide guide-fail range makes both forced failures land even when a
  // busy background refresher skips due windows (TSan-slowed runs).
  options.faults =
      "slow-shard@4-6:shard=1:stall-ms=2,guide-fail@6-600:count=2,"
      "flash@8-9:factor=6";
  options.fault_seed = 42;

  auto created =
      ServiceHarness::Create(SoakCity(), LoopedTraceSource::Options{},
                             options);
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<ServiceHarness> harness = std::move(created).value();

  const double budget = SoakSeconds();
  const Stopwatch stopwatch;
  int64_t processed = 0;
  // At least two days even when one beat overruns the budget (the flash
  // windows live in day 2) — then run the clock out.
  while (processed < 12 || stopwatch.ElapsedSeconds() < budget) {
    const Status status = harness->RunWindows(6);  // One day per beat.
    ASSERT_TRUE(status.ok()) << "window " << processed << ": " << status;
    processed += 6;
    // The eviction safety invariant must hold at every rotation, not just
    // at the end.
    ASSERT_EQ(harness->totals().evicted_live, 0);
  }

  // Every window reported, in order.
  ASSERT_EQ(static_cast<int64_t>(harness->windows().size()), processed);
  for (int64_t i = 0; i < processed; ++i) {
    EXPECT_EQ(harness->windows()[static_cast<size_t>(i)].window, i);
  }

  // The service did real work and the stream kept flowing through faults.
  EXPECT_GT(harness->totals().admitted, 0);
  EXPECT_GT(harness->totals().matched, 0);

  // Memory bounded: the store holds the live tail plus at most the
  // current segment, never the whole admitted history.
  EXPECT_GT(harness->totals().evictions, 0);
  EXPECT_LT(harness->store_size(), harness->totals().admitted / 2);
  EXPECT_LE(harness->live_objects(), options.max_live_objects);

  // Guide lifecycle: refreshes published, at least one landed mid-segment
  // and was hot-swapped into running sessions, and both injected refresh
  // failures were observed and survived.
  EXPECT_GE(harness->guide_epoch(), 1);
  EXPECT_GE(harness->totals().guide_swaps, 1);
  EXPECT_EQ(harness->fault_counters().guide_failures, 2);
  EXPECT_GE(harness->refresher_stats().failed_cycles, 2);

  // Shedding only under the injected overload: the flash windows (and the
  // windows their surviving backlog could cap) are 8-9; outside, the base
  // load never trips any cap.
  for (const WindowMetrics& window : harness->windows()) {
    if (window.window < 8 || window.window > 9) {
      EXPECT_EQ(window.shed, 0) << "window " << window.window;
    }
  }
  const WindowMetrics& flash = harness->windows()[8];
  EXPECT_GT(flash.flash_clones, 0);
  EXPECT_GT(flash.shed + harness->windows()[9].shed, 0);
}

}  // namespace
}  // namespace ftoa
