// Warm-started guide refresh (GuideRefreshMode::kWarm): the equivalence
// suite pinning the PR's core claim — a warm Generate is bit-identical to
// a cold one on the same prediction, for every compressed engine, thread
// count, and refresh sequence, while the reuse stats track exactly how
// sparse the inter-call delta was.
//
// The workload is a clustered city: several spatially separated pockets of
// demand, far enough apart (relative to velocity * durations) that each
// pocket is its own connected component of the type-pair network. A
// prediction sequence that perturbs one pocket at a time is the serving
// refresher's steady state in miniature — and lets the tests assert exact
// reused/dirty component counts.

#include "core/guide_generator.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/prediction_matrix.h"
#include "spatial/spacetime.h"

namespace ftoa {
namespace {

// 20 cells in a row, 2 units wide each; velocity 1 and durations 3/2 give
// a feasibility reach of ~3 units, so cells more than one apart never
// connect. Each cluster occupies two adjacent cells (a 2-type component
// with cross-cell pairs); clusters sit 4 empty cells apart.
constexpr int kClusterCols[] = {0, 5, 10, 15};
constexpr int kNumClusters = 4;

SpacetimeSpec ClusteredSpec() {
  return SpacetimeSpec(SlotSpec(2.0, 1), GridSpec(40.0, 2.0, 20, 1));
}

GuideOptions WarmOptions(GuideOptions::Engine engine, GuideRefreshMode mode,
                         int threads = 1) {
  GuideOptions options;
  options.engine = engine;
  options.refresh_mode = mode;
  options.num_threads = threads;
  options.worker_duration = 3.0;
  options.task_duration = 2.0;
  return options;
}

/// counts[c] = (workers, tasks) of cluster c. Workers go to the cluster's
/// left cell; tasks are split across both cells so the component holds
/// multiple type pairs.
PredictionMatrix MakePrediction(const SpacetimeSpec& st,
                                const std::vector<std::pair<int, int>>& counts) {
  PredictionMatrix prediction(st);
  for (int c = 0; c < kNumClusters; ++c) {
    const TypeId left = st.TypeAt(0, st.grid().CellAt(kClusterCols[c], 0));
    const TypeId right =
        st.TypeAt(0, st.grid().CellAt(kClusterCols[c] + 1, 0));
    const auto [workers, tasks] = counts[static_cast<size_t>(c)];
    prediction.set_workers_at(left, workers);
    prediction.set_tasks_at(left, tasks / 2);
    prediction.set_tasks_at(right, tasks - tasks / 2);
  }
  return prediction;
}

/// The refresher's steady state in miniature: repeats, single-cluster
/// perturbations, and a return to the opening prediction.
std::vector<std::vector<std::pair<int, int>>> PredictionSequence() {
  const std::vector<std::pair<int, int>> base = {
      {4, 3}, {2, 5}, {6, 6}, {3, 2}};
  std::vector<std::vector<std::pair<int, int>>> sequence;
  sequence.push_back(base);
  sequence.push_back(base);  // Identical repeat: everything reusable.
  auto perturb2 = base;
  perturb2[2] = {6, 4};  // Dirty cluster 2 only.
  sequence.push_back(perturb2);
  auto perturb0 = perturb2;
  perturb0[0] = {1, 3};  // Dirty cluster 0 only.
  sequence.push_back(perturb0);
  sequence.push_back(base);  // Two clusters revert at once.
  return sequence;
}

void ExpectGuidesIdentical(const OfflineGuide& warm, const OfflineGuide& cold,
                           const char* context) {
  ASSERT_EQ(warm.num_worker_nodes(), cold.num_worker_nodes()) << context;
  ASSERT_EQ(warm.num_task_nodes(), cold.num_task_nodes()) << context;
  EXPECT_EQ(warm.matched_pairs(), cold.matched_pairs()) << context;
  for (size_t i = 0; i < warm.worker_nodes().size(); ++i) {
    EXPECT_EQ(warm.worker_nodes()[i].type, cold.worker_nodes()[i].type)
        << context << " worker node " << i;
    EXPECT_EQ(warm.worker_nodes()[i].partner, cold.worker_nodes()[i].partner)
        << context << " worker node " << i;
  }
  for (size_t i = 0; i < warm.task_nodes().size(); ++i) {
    EXPECT_EQ(warm.task_nodes()[i].type, cold.task_nodes()[i].type)
        << context << " task node " << i;
    EXPECT_EQ(warm.task_nodes()[i].partner, cold.task_nodes()[i].partner)
        << context << " task node " << i;
  }
}

TEST(GuideWarmRefreshTest, WarmIsBitIdenticalToColdAcrossSequences) {
  const SpacetimeSpec st = ClusteredSpec();
  const auto sequence = PredictionSequence();
  for (const auto engine : {GuideOptions::Engine::kCompressed,
                            GuideOptions::Engine::kCompressedMinCost}) {
    for (const int threads : {1, 3}) {
      const GuideGenerator warm(
          1.0, WarmOptions(engine, GuideRefreshMode::kWarm, threads));
      // The cold reference runs single-threaded: reuse must be invariant
      // to both the warm generator's history and its thread count.
      const GuideGenerator cold(
          1.0, WarmOptions(engine, GuideRefreshMode::kCold));
      for (size_t step = 0; step < sequence.size(); ++step) {
        const PredictionMatrix prediction = MakePrediction(st, sequence[step]);
        const auto warm_guide = warm.Generate(prediction);
        const auto cold_guide = cold.Generate(prediction);
        ASSERT_TRUE(warm_guide.ok()) << warm_guide.status();
        ASSERT_TRUE(cold_guide.ok()) << cold_guide.status();
        const std::string context =
            "engine " + std::to_string(static_cast<int>(engine)) +
            " threads " + std::to_string(threads) + " step " +
            std::to_string(step);
        ExpectGuidesIdentical(*warm_guide, *cold_guide, context.c_str());
        EXPECT_FALSE(cold.last_refresh_stats().warm) << context;
      }
    }
  }
}

TEST(GuideWarmRefreshTest, ReuseStatsTrackTheDirtyDelta) {
  const SpacetimeSpec st = ClusteredSpec();
  const auto sequence = PredictionSequence();
  const GuideGenerator warm(
      1.0,
      WarmOptions(GuideOptions::Engine::kCompressed, GuideRefreshMode::kWarm));

  // Step 0: first call — nothing cached yet.
  ASSERT_TRUE(warm.Generate(MakePrediction(st, sequence[0])).ok());
  const GuideRefreshStats& first = warm.last_refresh_stats();
  EXPECT_EQ(first.components_total, kNumClusters);
  EXPECT_EQ(first.components_reused, 0);
  EXPECT_EQ(first.components_solved, kNumClusters);
  EXPECT_FALSE(first.warm);

  // Step 1: identical repeat — every component (and pair) reuses.
  ASSERT_TRUE(warm.Generate(MakePrediction(st, sequence[1])).ok());
  const GuideRefreshStats& repeat = warm.last_refresh_stats();
  EXPECT_TRUE(repeat.warm);
  EXPECT_EQ(repeat.components_reused, kNumClusters);
  EXPECT_EQ(repeat.components_solved, 0);
  EXPECT_GT(repeat.pairs_total, 0);
  EXPECT_EQ(repeat.pairs_reused, repeat.pairs_total);

  // Step 2: one cluster perturbed — exactly one dirty component.
  ASSERT_TRUE(warm.Generate(MakePrediction(st, sequence[2])).ok());
  const GuideRefreshStats& delta = warm.last_refresh_stats();
  EXPECT_TRUE(delta.warm);
  EXPECT_EQ(delta.components_reused, kNumClusters - 1);
  EXPECT_EQ(delta.components_solved, 1);
  EXPECT_LT(delta.pairs_reused, delta.pairs_total);

  // Step 4 semantics without step 3: reverting to the *previous* call's
  // prediction is a full re-solve of the changed cluster — the cache
  // holds exactly one generation, not a history.
  ASSERT_TRUE(warm.Generate(MakePrediction(st, sequence[1])).ok());
  EXPECT_EQ(warm.last_refresh_stats().components_solved, 1);
}

TEST(GuideWarmRefreshTest, InvalidateForcesAColdSolve) {
  const SpacetimeSpec st = ClusteredSpec();
  const auto counts = PredictionSequence()[0];
  const GuideGenerator warm(
      1.0,
      WarmOptions(GuideOptions::Engine::kCompressed, GuideRefreshMode::kWarm));
  ASSERT_TRUE(warm.Generate(MakePrediction(st, counts)).ok());
  ASSERT_TRUE(warm.Generate(MakePrediction(st, counts)).ok());
  ASSERT_TRUE(warm.last_refresh_stats().warm);

  warm.InvalidateWarmCache();
  ASSERT_TRUE(warm.Generate(MakePrediction(st, counts)).ok());
  EXPECT_FALSE(warm.last_refresh_stats().warm);
  EXPECT_EQ(warm.last_refresh_stats().components_reused, 0);
  EXPECT_EQ(warm.last_refresh_stats().components_solved, kNumClusters);
}

TEST(GuideWarmRefreshTest, GeometryChangeDropsTheCache) {
  // Same per-cluster counts on a different spacetime: identical content
  // hashes would be stale (costs derive from geometry), so the fingerprint
  // must force a cold solve — and re-arm the cache for the new geometry.
  const SpacetimeSpec st = ClusteredSpec();
  const SpacetimeSpec other(SlotSpec(2.0, 1), GridSpec(60.0, 3.0, 20, 1));
  const auto counts = PredictionSequence()[0];
  const GuideGenerator warm(
      1.0,
      WarmOptions(GuideOptions::Engine::kCompressed, GuideRefreshMode::kWarm));
  ASSERT_TRUE(warm.Generate(MakePrediction(st, counts)).ok());

  ASSERT_TRUE(warm.Generate(MakePrediction(other, counts)).ok());
  EXPECT_FALSE(warm.last_refresh_stats().warm);
  EXPECT_EQ(warm.last_refresh_stats().components_reused, 0);

  ASSERT_TRUE(warm.Generate(MakePrediction(other, counts)).ok());
  EXPECT_TRUE(warm.last_refresh_stats().warm);
}

TEST(GuideWarmRefreshTest, NodeLevelEnginesAlwaysRunCold) {
  const SpacetimeSpec st = ClusteredSpec();
  const auto counts = PredictionSequence()[0];
  for (const auto engine : {GuideOptions::Engine::kFordFulkerson,
                            GuideOptions::Engine::kDinic}) {
    const GuideGenerator warm(
        1.0, WarmOptions(engine, GuideRefreshMode::kWarm));
    const GuideGenerator cold(
        1.0, WarmOptions(engine, GuideRefreshMode::kCold));
    for (int call = 0; call < 2; ++call) {
      const auto warm_guide = warm.Generate(MakePrediction(st, counts));
      const auto cold_guide = cold.Generate(MakePrediction(st, counts));
      ASSERT_TRUE(warm_guide.ok()) << warm_guide.status();
      ASSERT_TRUE(cold_guide.ok()) << cold_guide.status();
      ExpectGuidesIdentical(*warm_guide, *cold_guide, "node-level");
      // No components to reuse: the stats report a cold, empty outcome.
      EXPECT_FALSE(warm.last_refresh_stats().warm);
      EXPECT_EQ(warm.last_refresh_stats().components_total, 0);
    }
  }
}

TEST(GuideWarmRefreshTest, ApproxSamplingComposesWithWarmReuse) {
  // The Bernoulli pair sample is deterministic in enumeration order, so an
  // identical prediction samples identically and the warm cache applies to
  // the sampled network exactly as to the exact one.
  const SpacetimeSpec st = ClusteredSpec();
  const auto sequence = PredictionSequence();
  GuideOptions options = WarmOptions(GuideOptions::Engine::kCompressed,
                                     GuideRefreshMode::kWarm);
  options.approx_sample_rate = 0.6;
  GuideOptions cold_options = options;
  cold_options.refresh_mode = GuideRefreshMode::kCold;
  const GuideGenerator warm(1.0, options);
  const GuideGenerator cold(1.0, cold_options);
  for (size_t step = 0; step < sequence.size(); ++step) {
    const PredictionMatrix prediction = MakePrediction(st, sequence[step]);
    const auto warm_guide = warm.Generate(prediction);
    const auto cold_guide = cold.Generate(prediction);
    ASSERT_TRUE(warm_guide.ok()) << warm_guide.status();
    ASSERT_TRUE(cold_guide.ok()) << cold_guide.status();
    ExpectGuidesIdentical(*warm_guide, *cold_guide,
                          ("approx step " + std::to_string(step)).c_str());
  }
  // The identical repeat at step 1 reused the sampled components.
  ASSERT_TRUE(warm.Generate(MakePrediction(st, sequence.back())).ok());
  ASSERT_TRUE(warm.Generate(MakePrediction(st, sequence.back())).ok());
  EXPECT_TRUE(warm.last_refresh_stats().warm);
}

}  // namespace
}  // namespace ftoa
