#include "core/hybrid_polar_op.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/guide_generator.h"
#include "core/polar_op.h"
#include "baselines/simple_greedy.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

std::shared_ptr<const OfflineGuide> BuildGuide(
    const Instance& instance, const PredictionMatrix& prediction, double dw,
    double dr) {
  GuideOptions options;
  options.engine = GuideOptions::Engine::kDinic;
  options.worker_duration = dw;
  options.task_duration = dr;
  auto guide = GuideGenerator(instance.velocity(), options)
                   .Generate(prediction);
  EXPECT_TRUE(guide.ok());
  return std::make_shared<const OfflineGuide>(std::move(guide).value());
}

TEST(HybridPolarOpTest, MatchesPolarOpUnderPerfectPrediction) {
  const Instance instance = MakeExample1Instance();
  const auto guide = BuildGuide(
      instance, PredictionMatrix::FromInstance(instance), 30.0, 2.0);
  PolarOp polar_op(guide);
  HybridPolarOp hybrid(guide);
  EXPECT_EQ(hybrid.Run(instance).size(), polar_op.Run(instance).size());
  EXPECT_EQ(hybrid.name(), "POLAR-OP+G");
}

TEST(HybridPolarOpTest, EmptyGuideDegradesToGreedy) {
  // With no guide at all, the hybrid is pure greedy fallback: its matching
  // matches SimpleGreedy's (same nearest-feasible rule and semantics).
  const Instance instance = MakeExample1Instance();
  const auto guide = BuildGuide(
      instance, PredictionMatrix(instance.spacetime()), 30.0, 2.0);
  HybridPolarOp hybrid(guide);
  SimpleGreedy greedy;
  EXPECT_EQ(hybrid.Run(instance).size(), greedy.Run(instance).size());
}

TEST(HybridPolarOpTest, RecoversObjectsDroppedByMisprediction) {
  SyntheticConfig config;
  config.num_workers = 400;
  config.num_tasks = 400;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.seed = 31;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  // Heavily corrupted prediction: half the mass vanishes.
  PredictionMatrix prediction = PredictionMatrix::FromInstance(*instance);
  for (TypeId t = 0; t < instance->spacetime().num_types(); ++t) {
    prediction.set_workers_at(t, prediction.workers_at(t) / 2);
    prediction.set_tasks_at(t, prediction.tasks_at(t) / 2);
  }
  const auto guide = BuildGuide(*instance, prediction,
                                config.worker_duration,
                                config.task_duration);
  PolarOp polar_op(guide);
  HybridPolarOp hybrid(guide);
  EXPECT_GE(hybrid.Run(*instance).size(), polar_op.Run(*instance).size());
}

TEST(HybridPolarOpTest, AssignmentsAreStructurallyValid) {
  SyntheticConfig config;
  config.num_workers = 300;
  config.num_tasks = 300;
  config.grid_x = 8;
  config.grid_y = 8;
  config.num_slots = 6;
  config.seed = 77;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const auto prediction = GenerateSyntheticPrediction(config);
  ASSERT_TRUE(prediction.ok());
  const auto guide = BuildGuide(*instance, *prediction,
                                config.worker_duration,
                                config.task_duration);
  HybridPolarOp hybrid(guide);
  const Assignment assignment = hybrid.Run(*instance);
  // No duplicate use of a worker or task (structural), and every fallback
  // pair is assignment-time feasible — guide pairs may rely on movement, so
  // only the weaker structural check plus size bound applies globally.
  EXPECT_LE(assignment.size(),
            std::min(instance->num_workers(), instance->num_tasks()));
}

}  // namespace
}  // namespace ftoa
