#include "core/guide.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ftoa {
namespace {

SpacetimeSpec MakeSpacetime() {
  return SpacetimeSpec(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 2, 2));
}

TEST(OfflineGuideTest, NodeCreationTracksTypes) {
  OfflineGuide guide(MakeSpacetime(), 1.0, 30.0, 2.0);
  const GuideNodeId w0 = guide.AddWorkerNode(2);
  const GuideNodeId w1 = guide.AddWorkerNode(2);
  const GuideNodeId r0 = guide.AddTaskNode(2);
  EXPECT_EQ(guide.num_worker_nodes(), 2);
  EXPECT_EQ(guide.num_task_nodes(), 1);
  EXPECT_EQ(guide.WorkerNodesOfType(2).size(), 2u);
  EXPECT_EQ(guide.WorkerNodesOfType(2)[0], w0);
  EXPECT_EQ(guide.WorkerNodesOfType(2)[1], w1);
  EXPECT_EQ(guide.TaskNodesOfType(2)[0], r0);
  EXPECT_TRUE(guide.WorkerNodesOfType(0).empty());
}

TEST(OfflineGuideTest, MatchNodesSetsPartners) {
  OfflineGuide guide(MakeSpacetime(), 1.0, 30.0, 2.0);
  const GuideNodeId w = guide.AddWorkerNode(2);
  const GuideNodeId r = guide.AddTaskNode(2);
  ASSERT_TRUE(guide.MatchNodes(w, r).ok());
  EXPECT_EQ(guide.worker_nodes()[0].partner, r);
  EXPECT_EQ(guide.task_nodes()[0].partner, w);
  EXPECT_EQ(guide.matched_pairs(), 1);
}

TEST(OfflineGuideTest, MatchNodesRejectsRematch) {
  OfflineGuide guide(MakeSpacetime(), 1.0, 30.0, 2.0);
  const GuideNodeId w = guide.AddWorkerNode(2);
  const GuideNodeId w2 = guide.AddWorkerNode(2);
  const GuideNodeId r = guide.AddTaskNode(2);
  ASSERT_TRUE(guide.MatchNodes(w, r).ok());
  EXPECT_FALSE(guide.MatchNodes(w2, r).ok());
  EXPECT_EQ(guide.matched_pairs(), 1);
}

TEST(OfflineGuideTest, MatchNodesRejectsBadIds) {
  OfflineGuide guide(MakeSpacetime(), 1.0, 30.0, 2.0);
  guide.AddWorkerNode(2);
  EXPECT_FALSE(guide.MatchNodes(0, 0).ok());   // No task nodes yet.
  EXPECT_FALSE(guide.MatchNodes(-1, 0).ok());
  EXPECT_FALSE(guide.MatchNodes(5, 0).ok());
}

TEST(OfflineGuideTest, ValidateAcceptsFeasiblePair) {
  // Same type: representative distance 0, always feasible.
  OfflineGuide guide(MakeSpacetime(), 1.0, 30.0, 2.0);
  const GuideNodeId w = guide.AddWorkerNode(2);
  const GuideNodeId r = guide.AddTaskNode(2);
  ASSERT_TRUE(guide.MatchNodes(w, r).ok());
  EXPECT_TRUE(guide.Validate().ok());
}

TEST(OfflineGuideTest, ValidateRejectsInfeasiblePair) {
  // Task slot 0 far cell with tiny Dr and worker in slot 1 -> the
  // representative pair violates the deadline constraint.
  OfflineGuide guide(MakeSpacetime(), 1.0, /*worker_duration=*/30.0,
                     /*task_duration=*/0.1);
  const GuideNodeId w = guide.AddWorkerNode(2);  // Slot 0, top-left.
  const GuideNodeId r = guide.AddTaskNode(1);    // Slot 0, bottom-right.
  ASSERT_TRUE(guide.MatchNodes(w, r).ok());
  EXPECT_FALSE(guide.Validate().ok());
}

}  // namespace
}  // namespace ftoa
