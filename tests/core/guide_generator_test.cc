#include "core/guide_generator.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "gen/synthetic.h"
#include "test_util.h"
#include "util/rng.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

GuideOptions Example1Options(GuideOptions::Engine engine) {
  GuideOptions options;
  options.engine = engine;
  options.worker_duration = 30.0;
  options.task_duration = 2.0;
  return options;
}

TEST(GuideGeneratorTest, Example1PerfectPredictionMatchesSix) {
  // With the true per-type counts of Example 1, the maximum bipartite
  // matching over predicted nodes has cardinality 6 (all tasks served):
  // two top-left slot-0 tasks from the three top-left workers, four
  // bottom-right slot-1 tasks from the four top-right workers.
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(instance);
  for (const auto engine :
       {GuideOptions::Engine::kFordFulkerson, GuideOptions::Engine::kDinic,
        GuideOptions::Engine::kCompressed,
        GuideOptions::Engine::kCompressedMinCost}) {
    const GuideGenerator generator(instance.velocity(),
                                   Example1Options(engine));
    const auto guide = generator.Generate(prediction);
    ASSERT_TRUE(guide.ok());
    EXPECT_EQ(guide->matched_pairs(), 6) << "engine " << static_cast<int>(
        engine);
    EXPECT_EQ(guide->num_worker_nodes(), 7);
    EXPECT_EQ(guide->num_task_nodes(), 6);
    EXPECT_TRUE(guide->Validate().ok());
  }
}

TEST(GuideGeneratorTest, FeasibleTypePairsRespectDeadlines) {
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(instance);
  const GuideGenerator generator(
      instance.velocity(),
      Example1Options(GuideOptions::Engine::kDinic));
  const SpacetimeSpec& st = instance.spacetime();
  int pairs = 0;
  generator.ForEachFeasibleTypePair(
      prediction, [&](TypeId wt, TypeId tt) {
        ++pairs;
        EXPECT_TRUE(CanServeAttrs(
            st.RepresentativeLocation(wt), st.RepresentativeTime(wt), 30.0,
            st.RepresentativeLocation(tt), st.RepresentativeTime(tt), 2.0,
            instance.velocity(),
            FeasibilityPolicy::kDispatchAtWorkerStart));
      });
  EXPECT_GT(pairs, 0);
}

TEST(GuideGeneratorTest, EstimateCountsNodeLevelEdges) {
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(instance);
  const GuideGenerator generator(
      instance.velocity(),
      Example1Options(GuideOptions::Engine::kDinic));
  int64_t expected = 0;
  generator.ForEachFeasibleTypePair(prediction, [&](TypeId wt, TypeId tt) {
    expected += static_cast<int64_t>(prediction.workers_at(wt)) *
                prediction.tasks_at(tt);
  });
  EXPECT_EQ(generator.EstimateNodeLevelEdges(prediction), expected);
}

TEST(GuideGeneratorTest, FeasibilityBoxIsExactForWorkersNearOrigin) {
  // Exactness guard for the disk bounding box where it is most fragile:
  // a worker in the origin cell, whose (wloc - radius) goes negative (the
  // regime where int-cast truncation and floor semantics diverge and only
  // the clamp keeps them aligned). The box scan must report exactly the
  // pairs the brute-force midpoint test admits.
  const GridSpec grid(6.0, 6.0, 6, 6);
  const SlotSpec slots(4.0, 4);
  const SpacetimeSpec st(slots, grid);
  const double velocity = 1.0;
  const double dw = 2.0;
  const double dr = 1.5;

  PredictionMatrix prediction(st);
  // One worker type in the origin cell; its feasibility disk pokes past
  // the region's lower-left corner.
  prediction.set_workers_at(st.TypeAt(1, grid.CellAt(0, 0)), 3);
  // Tasks scattered over enough cells that the box scan (not the sparse
  // fallback) is selected for the small disk.
  const int task_cells[][2] = {{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 0},
                               {0, 2}, {3, 3}, {5, 5}, {4, 1}, {1, 4}};
  for (const auto& cell : task_cells) {
    prediction.set_tasks_at(
        st.TypeAt(1, grid.CellAt(cell[0], cell[1])), 2);
  }

  GuideOptions options;
  options.engine = GuideOptions::Engine::kCompressed;
  options.worker_duration = dw;
  options.task_duration = dr;
  const GuideGenerator generator(velocity, options);

  std::set<std::pair<TypeId, TypeId>> reported;
  generator.ForEachFeasibleTypePair(
      prediction, [&](TypeId wt, TypeId tt) { reported.insert({wt, tt}); });

  // Brute force over all type pairs with the generator's own midpoint
  // predicate: sr < sw + dw, slack = dr - (sw - sr) >= 0, and travel time
  // within the slack.
  std::set<std::pair<TypeId, TypeId>> expected;
  for (TypeId wt = 0; wt < st.num_types(); ++wt) {
    if (prediction.workers_at(wt) <= 0) continue;
    const double sw = slots.SlotMidpoint(st.SlotOfType(wt));
    for (TypeId tt = 0; tt < st.num_types(); ++tt) {
      if (prediction.tasks_at(tt) <= 0) continue;
      const double sr = slots.SlotMidpoint(st.SlotOfType(tt));
      if (!(sr < sw + dw)) continue;
      const double slack = dr - (sw - sr);
      if (slack < 0.0) continue;
      const double d = Distance(st.RepresentativeLocation(wt),
                                st.RepresentativeLocation(tt));
      if (d / velocity <= slack) expected.insert({wt, tt});
    }
  }
  EXPECT_EQ(reported, expected);
  EXPECT_FALSE(expected.empty());
}

TEST(GuideGeneratorTest, EmptyPredictionYieldsEmptyGuide) {
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix empty(instance.spacetime());
  const GuideGenerator generator(
      instance.velocity(),
      Example1Options(GuideOptions::Engine::kAuto));
  const auto guide = generator.Generate(empty);
  ASSERT_TRUE(guide.ok());
  EXPECT_EQ(guide->matched_pairs(), 0);
  EXPECT_EQ(guide->num_worker_nodes(), 0);
}

TEST(GuideGeneratorTest, MinCostVariantKeepsMaxCardinality) {
  // Min-cost guide must not sacrifice matching size for cost.
  SyntheticConfig config;
  config.num_workers = 300;
  config.num_tasks = 300;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.seed = 5;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);

  GuideOptions options;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;

  options.engine = GuideOptions::Engine::kCompressed;
  const auto plain = GuideGenerator(config.velocity, options)
                         .Generate(prediction);
  options.engine = GuideOptions::Engine::kCompressedMinCost;
  const auto min_cost = GuideGenerator(config.velocity, options)
                            .Generate(prediction);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(min_cost.ok());
  EXPECT_EQ(plain->matched_pairs(), min_cost->matched_pairs());

  // The min-cost guide's total representative travel time is no larger.
  auto total_cost = [](const OfflineGuide& guide) {
    double cost = 0.0;
    const SpacetimeSpec& st = guide.spacetime();
    for (const GuideNode& node : guide.worker_nodes()) {
      if (node.partner < 0) continue;
      const GuideNode& partner =
          guide.task_nodes()[static_cast<size_t>(node.partner)];
      cost += TravelTime(st.RepresentativeLocation(node.type),
                         st.RepresentativeLocation(partner.type),
                         guide.velocity());
    }
    return cost;
  };
  EXPECT_LE(total_cost(*min_cost), total_cost(*plain) + 1e-6);
}

TEST(GuideGeneratorTest, RepresentativeSlackGrowsTheGuideMonotonically) {
  SyntheticConfig config;
  config.num_workers = 400;
  config.num_tasks = 400;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.task_duration = 1.0;  // Tight: slack has something to recover.
  config.seed = 77;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);

  GuideOptions options;
  options.engine = GuideOptions::Engine::kCompressed;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;

  int64_t previous = -1;
  for (double slack : {0.0, 0.25, 0.5, 1.0}) {
    options.representative_slack = slack;
    const auto guide = GuideGenerator(config.velocity, options)
                           .Generate(prediction);
    ASSERT_TRUE(guide.ok());
    EXPECT_DOUBLE_EQ(guide->representative_slack(), slack);
    // The guide's own validation honors the slack it was built with.
    EXPECT_TRUE(guide->Validate().ok()) << "slack " << slack;
    EXPECT_GE(guide->matched_pairs(), previous) << "slack " << slack;
    previous = guide->matched_pairs();
  }
}

// Property: every engine produces the same matching cardinality, and all
// matched node pairs satisfy type-level feasibility.
class GuideEngineEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GuideEngineEquivalenceTest, EnginesAgreeOnCardinality) {
  SyntheticConfig config;
  Rng rng(GetParam());
  config.num_workers = 100 + static_cast<int>(rng.NextBounded(300));
  config.num_tasks = 100 + static_cast<int>(rng.NextBounded(300));
  config.grid_x = 6 + static_cast<int>(rng.NextBounded(6));
  config.grid_y = 6 + static_cast<int>(rng.NextBounded(6));
  config.num_slots = 4 + static_cast<int>(rng.NextBounded(8));
  config.task_duration = 1.0 + rng.NextDouble() * 2.0;
  config.worker_duration = 1.0 + rng.NextDouble() * 3.0;
  config.seed = GetParam() * 1000 + 17;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);

  GuideOptions options;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;

  int64_t reference = -1;
  for (const auto engine :
       {GuideOptions::Engine::kFordFulkerson, GuideOptions::Engine::kDinic,
        GuideOptions::Engine::kCompressed,
        GuideOptions::Engine::kCompressedMinCost}) {
    options.engine = engine;
    const GuideGenerator generator(config.velocity, options);
    const auto guide = generator.Generate(prediction);
    ASSERT_TRUE(guide.ok());
    EXPECT_TRUE(guide->Validate().ok());
    if (reference < 0) {
      reference = guide->matched_pairs();
    } else {
      EXPECT_EQ(guide->matched_pairs(), reference)
          << "engine " << static_cast<int>(engine);
    }
  }
  EXPECT_GE(reference, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuideEngineEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 9));

// Property: the sharded parallel solve must be invisible — any
// num_threads produces the exact guide (every pairing identical) of the
// serial num_threads = 1 run, for both compressed engines.
class GuideParallelIdentityTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(GuideParallelIdentityTest, ParallelGuideIsBitIdenticalToSerial) {
  SyntheticConfig config;
  Rng rng(GetParam() * 77 + 5);
  config.num_workers = 200 + static_cast<int>(rng.NextBounded(400));
  config.num_tasks = 200 + static_cast<int>(rng.NextBounded(400));
  config.grid_x = 8 + static_cast<int>(rng.NextBounded(8));
  config.grid_y = 8 + static_cast<int>(rng.NextBounded(8));
  config.num_slots = 6 + static_cast<int>(rng.NextBounded(10));
  // Mix of regimes: some seeds get tiny feasibility disks (many
  // components), others the default physics (few components).
  config.velocity = rng.NextBool() ? 0.3 : 5.0;
  config.task_duration = 0.5 + rng.NextDouble() * 2.0;
  config.worker_duration = 0.5 + rng.NextDouble() * 3.0;
  config.seed = GetParam() * 991 + 3;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);

  for (const auto engine : {GuideOptions::Engine::kCompressed,
                            GuideOptions::Engine::kCompressedMinCost}) {
    GuideOptions options;
    options.engine = engine;
    options.worker_duration = config.worker_duration;
    options.task_duration = config.task_duration;

    options.num_threads = 1;
    const GuideGenerator serial(config.velocity, options);
    const auto serial_guide = serial.Generate(prediction);
    ASSERT_TRUE(serial_guide.ok());

    for (const int threads : {2, 3, 8}) {
      options.num_threads = threads;
      const GuideGenerator parallel(config.velocity, options);
      const auto parallel_guide = parallel.Generate(prediction);
      ASSERT_TRUE(parallel_guide.ok());
      EXPECT_EQ(parallel.last_num_components(),
                serial.last_num_components());
      EXPECT_EQ(parallel_guide->matched_pairs(),
                serial_guide->matched_pairs())
          << "engine " << static_cast<int>(engine) << " threads "
          << threads;
      ASSERT_EQ(parallel_guide->worker_nodes().size(),
                serial_guide->worker_nodes().size());
      for (size_t node = 0; node < serial_guide->worker_nodes().size();
           ++node) {
        ASSERT_EQ(parallel_guide->worker_nodes()[node].partner,
                  serial_guide->worker_nodes()[node].partner)
            << "engine " << static_cast<int>(engine) << " threads "
            << threads << " node " << node;
      }
      ASSERT_EQ(parallel_guide->task_nodes().size(),
                serial_guide->task_nodes().size());
      for (size_t node = 0; node < serial_guide->task_nodes().size();
           ++node) {
        ASSERT_EQ(parallel_guide->task_nodes()[node].partner,
                  serial_guide->task_nodes()[node].partner)
            << "engine " << static_cast<int>(engine) << " threads "
            << threads << " node " << node;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuideParallelIdentityTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(GuideGeneratorTest, ShardedSolveDecomposesDisconnectedRegimes) {
  // With a feasibility disk smaller than one cell, type pairs only form
  // within a cell, so the compressed network must shatter into many
  // components — the structure the parallel shards exploit.
  SyntheticConfig config;
  config.num_workers = 2000;
  config.num_tasks = 2000;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.velocity = 0.2;
  config.task_duration = 0.5;
  config.worker_duration = 1.0;
  config.seed = 31;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);

  GuideOptions options;
  options.engine = GuideOptions::Engine::kCompressed;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;
  options.num_threads = 4;
  const GuideGenerator generator(config.velocity, options);
  const auto guide = generator.Generate(prediction);
  ASSERT_TRUE(guide.ok());
  EXPECT_GT(generator.last_num_components(), 4);
  EXPECT_GT(guide->matched_pairs(), 0);
  EXPECT_TRUE(guide->Validate().ok());
}

TEST(GuideGeneratorTest, RepeatedGenerateReusesArenasDeterministically) {
  // One generator instance serves many predictions in a live deployment;
  // the reused solver arenas must not leak state between calls: repeated
  // Generate on the same prediction gives the identical guide.
  SyntheticConfig config;
  config.num_workers = 200;
  config.num_tasks = 200;
  config.grid_x = 8;
  config.grid_y = 8;
  config.num_slots = 6;
  config.seed = 77;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);
  for (const auto engine : {GuideOptions::Engine::kDinic,
                            GuideOptions::Engine::kCompressed,
                            GuideOptions::Engine::kCompressedMinCost}) {
    GuideOptions options;
    options.engine = engine;
    options.worker_duration = config.worker_duration;
    options.task_duration = config.task_duration;
    const GuideGenerator generator(config.velocity, options);
    const auto first = generator.Generate(prediction);
    ASSERT_TRUE(first.ok());
    for (int repeat = 0; repeat < 2; ++repeat) {
      const auto again = generator.Generate(prediction);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->matched_pairs(), first->matched_pairs())
          << "engine " << static_cast<int>(engine);
      // Pairings themselves must be identical across reuse.
      ASSERT_EQ(again->worker_nodes().size(), first->worker_nodes().size());
      for (size_t node = 0; node < first->worker_nodes().size(); ++node) {
        EXPECT_EQ(again->worker_nodes()[node].partner,
                  first->worker_nodes()[node].partner)
            << "engine " << static_cast<int>(engine) << " node " << node;
      }
    }
  }
}

// --- Approximate-guide mode (GuideOptions::approx_sample_rate) ---

PredictionMatrix ApproxTestPrediction(Instance* instance_out = nullptr) {
  SyntheticConfig config;
  config.num_workers = 300;
  config.num_tasks = 300;
  config.grid_x = 8;
  config.grid_y = 8;
  config.num_slots = 6;
  config.seed = 1234;
  auto instance = GenerateSyntheticInstance(config);
  EXPECT_TRUE(instance.ok());
  if (instance_out != nullptr) *instance_out = *instance;
  return PredictionMatrix::FromInstance(*instance);
}

GuideOptions ApproxTestOptions(double rate) {
  GuideOptions options;
  options.engine = GuideOptions::Engine::kCompressed;
  options.worker_duration = 3.0;
  options.task_duration = 2.0;
  options.approx_sample_rate = rate;
  return options;
}

TEST(GuideGeneratorTest, ApproxRateOneIsTheExactGuide) {
  const PredictionMatrix prediction = ApproxTestPrediction();
  const GuideGenerator exact(2.0, ApproxTestOptions(1.0));
  const auto exact_guide = exact.Generate(prediction);
  ASSERT_TRUE(exact_guide.ok());
  // Rate 1.0 keeps every feasible pair and reports a zero loss bound.
  EXPECT_EQ(exact.last_approx_report().sampled_pairs,
            exact.last_approx_report().feasible_pairs);
  EXPECT_GT(exact.last_approx_report().feasible_pairs, 0);
  EXPECT_EQ(exact.last_approx_report().utility_loss_bound, 0);

  GuideOptions default_options = ApproxTestOptions(1.0);
  default_options.approx_sample_rate = 1.0;
  const GuideGenerator reference(2.0, default_options);
  const auto reference_guide = reference.Generate(prediction);
  ASSERT_TRUE(reference_guide.ok());
  EXPECT_EQ(exact_guide->matched_pairs(), reference_guide->matched_pairs());
  ASSERT_EQ(exact_guide->worker_nodes().size(),
            reference_guide->worker_nodes().size());
  for (size_t node = 0; node < exact_guide->worker_nodes().size(); ++node) {
    EXPECT_EQ(exact_guide->worker_nodes()[node].partner,
              reference_guide->worker_nodes()[node].partner);
  }
}

TEST(GuideGeneratorTest, ApproxRejectsInvalidRatesAndNodeLevelEngines) {
  const PredictionMatrix prediction = ApproxTestPrediction();
  for (const double rate : {0.0, -0.5, 1.5}) {
    const GuideGenerator generator(2.0, ApproxTestOptions(rate));
    const auto guide = generator.Generate(prediction);
    EXPECT_FALSE(guide.ok()) << "rate " << rate;
  }
  // The node-level flow engines build the full bipartite graph; sampling
  // type pairs there has no capacity interpretation, so it is an error.
  for (const auto engine : {GuideOptions::Engine::kFordFulkerson,
                            GuideOptions::Engine::kDinic}) {
    GuideOptions options = ApproxTestOptions(0.5);
    options.engine = engine;
    const GuideGenerator generator(2.0, options);
    const auto guide = generator.Generate(prediction);
    EXPECT_FALSE(guide.ok()) << "engine " << static_cast<int>(engine);
  }
}

TEST(GuideGeneratorTest, ApproxCardinalityLossStaysWithinTheReportedBound) {
  // The certificate the bench reports: the approximate guide's matched
  // utility can trail the exact guide's by at most the summed capacity of
  // the dropped type pairs. Dropping edges can never *grow* a matching,
  // so the gap is also nonnegative.
  const PredictionMatrix prediction = ApproxTestPrediction();
  const GuideGenerator exact(2.0, ApproxTestOptions(1.0));
  const auto exact_guide = exact.Generate(prediction);
  ASSERT_TRUE(exact_guide.ok());
  for (const double rate : {0.25, 0.5, 0.8}) {
    const GuideGenerator approx(2.0, ApproxTestOptions(rate));
    const auto approx_guide = approx.Generate(prediction);
    ASSERT_TRUE(approx_guide.ok()) << "rate " << rate;
    const ApproxGuideReport& report = approx.last_approx_report();
    EXPECT_LT(report.sampled_pairs, report.feasible_pairs) << rate;
    EXPECT_GT(report.utility_loss_bound, 0) << rate;
    const int64_t gap =
        exact_guide->matched_pairs() - approx_guide->matched_pairs();
    EXPECT_GE(gap, 0) << "rate " << rate;
    EXPECT_LE(gap, report.utility_loss_bound) << "rate " << rate;
    EXPECT_TRUE(approx_guide->Validate().ok()) << "rate " << rate;
  }
}

TEST(GuideGeneratorTest, ApproxGuideIsThreadCountInvariant) {
  // Sampling happens in deterministic pair-enumeration order before the
  // component decomposition, so the parallel solve must stay invisible
  // under approximation too.
  const PredictionMatrix prediction = ApproxTestPrediction();
  GuideOptions options = ApproxTestOptions(0.5);
  options.num_threads = 1;
  const GuideGenerator serial(2.0, options);
  const auto serial_guide = serial.Generate(prediction);
  ASSERT_TRUE(serial_guide.ok());
  options.num_threads = 4;
  const GuideGenerator parallel(2.0, options);
  const auto parallel_guide = parallel.Generate(prediction);
  ASSERT_TRUE(parallel_guide.ok());
  EXPECT_EQ(parallel.last_approx_report().sampled_pairs,
            serial.last_approx_report().sampled_pairs);
  EXPECT_EQ(parallel.last_approx_report().utility_loss_bound,
            serial.last_approx_report().utility_loss_bound);
  EXPECT_EQ(parallel_guide->matched_pairs(), serial_guide->matched_pairs());
  ASSERT_EQ(parallel_guide->worker_nodes().size(),
            serial_guide->worker_nodes().size());
  for (size_t node = 0; node < serial_guide->worker_nodes().size();
       ++node) {
    EXPECT_EQ(parallel_guide->worker_nodes()[node].partner,
              serial_guide->worker_nodes()[node].partner)
        << "node " << node;
  }
}

// --- FlowEngine selection inside the min-cost guide ---

double TotalGuideTravel(const OfflineGuide& guide) {
  double cost = 0.0;
  const SpacetimeSpec& st = guide.spacetime();
  for (const GuideNode& node : guide.worker_nodes()) {
    if (node.partner < 0) continue;
    const GuideNode& partner =
        guide.task_nodes()[static_cast<size_t>(node.partner)];
    cost += TravelTime(st.RepresentativeLocation(node.type),
                       st.RepresentativeLocation(partner.type),
                       guide.velocity());
  }
  return cost;
}

// Property: the min-cost guide is engine-equivalent — every FlowEngine
// (and kAuto's per-component choice) yields the same matched cardinality
// and the same total representative travel. Per-edge flow patterns may
// differ between equally cheap optima, so individual pairings may too;
// the (count, cost) pair is the contract.
class GuideFlowEngineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GuideFlowEngineTest, MinCostGuideIsEngineEquivalent) {
  SyntheticConfig config;
  Rng rng(GetParam() * 131 + 7);
  config.num_workers = 150 + static_cast<int>(rng.NextBounded(300));
  config.num_tasks = 150 + static_cast<int>(rng.NextBounded(300));
  config.grid_x = 6 + static_cast<int>(rng.NextBounded(6));
  config.grid_y = 6 + static_cast<int>(rng.NextBounded(6));
  config.num_slots = 4 + static_cast<int>(rng.NextBounded(8));
  config.task_duration = 1.0 + rng.NextDouble() * 2.0;
  config.worker_duration = 1.0 + rng.NextDouble() * 3.0;
  config.seed = GetParam() * 313 + 29;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);

  GuideOptions options;
  options.engine = GuideOptions::Engine::kCompressedMinCost;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;

  int64_t reference_pairs = -1;
  double reference_travel = 0.0;
  for (const FlowEngine flow_engine :
       {FlowEngine::kSsp, FlowEngine::kBlockingSsp, FlowEngine::kCostScaling,
        FlowEngine::kAuto}) {
    options.flow_engine = flow_engine;
    const GuideGenerator generator(config.velocity, options);
    const auto guide = generator.Generate(prediction);
    ASSERT_TRUE(guide.ok()) << FlowEngineName(flow_engine);
    EXPECT_TRUE(guide->Validate().ok()) << FlowEngineName(flow_engine);
    if (reference_pairs < 0) {
      reference_pairs = guide->matched_pairs();
      reference_travel = TotalGuideTravel(*guide);
    } else {
      EXPECT_EQ(guide->matched_pairs(), reference_pairs)
          << FlowEngineName(flow_engine);
      // Edge costs are travel quantized at 1e-6, so equal integer network
      // cost pins the travel sums within matched * 1e-6.
      EXPECT_NEAR(TotalGuideTravel(*guide), reference_travel,
                  static_cast<double>(reference_pairs + 1) * 1e-6)
          << FlowEngineName(flow_engine);
    }
  }
  EXPECT_GE(reference_pairs, 0);
}

TEST_P(GuideFlowEngineTest, FixedEngineGuideIsThreadCountInvariant) {
  // Per fixed engine the guide is bit-identical at any thread count: both
  // the across-component sharding and the intra-component scans (the lent
  // pool on the chunks <= 1 path) are order-insensitive.
  SyntheticConfig config;
  Rng rng(GetParam() * 677 + 11);
  config.num_workers = 200 + static_cast<int>(rng.NextBounded(300));
  config.num_tasks = 200 + static_cast<int>(rng.NextBounded(300));
  config.grid_x = 8;
  config.grid_y = 8;
  config.num_slots = 6;
  // Alternate between the many-component regime (across-component shards)
  // and the one-giant-component regime (the lent-pool path).
  config.velocity = rng.NextBool() ? 0.3 : 5.0;
  config.task_duration = 0.5 + rng.NextDouble() * 2.0;
  config.worker_duration = 0.5 + rng.NextDouble() * 3.0;
  config.seed = GetParam() * 457 + 13;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);

  for (const FlowEngine flow_engine :
       {FlowEngine::kBlockingSsp, FlowEngine::kCostScaling}) {
    GuideOptions options;
    options.engine = GuideOptions::Engine::kCompressedMinCost;
    options.flow_engine = flow_engine;
    options.worker_duration = config.worker_duration;
    options.task_duration = config.task_duration;

    options.num_threads = 1;
    const GuideGenerator serial(config.velocity, options);
    const auto serial_guide = serial.Generate(prediction);
    ASSERT_TRUE(serial_guide.ok()) << FlowEngineName(flow_engine);

    for (const int threads : {2, 8}) {
      options.num_threads = threads;
      const GuideGenerator parallel(config.velocity, options);
      const auto parallel_guide = parallel.Generate(prediction);
      ASSERT_TRUE(parallel_guide.ok()) << FlowEngineName(flow_engine);
      EXPECT_EQ(parallel_guide->matched_pairs(),
                serial_guide->matched_pairs())
          << FlowEngineName(flow_engine) << " threads " << threads;
      ASSERT_EQ(parallel_guide->worker_nodes().size(),
                serial_guide->worker_nodes().size());
      for (size_t node = 0; node < serial_guide->worker_nodes().size();
           ++node) {
        ASSERT_EQ(parallel_guide->worker_nodes()[node].partner,
                  serial_guide->worker_nodes()[node].partner)
            << FlowEngineName(flow_engine) << " threads " << threads
            << " node " << node;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuideFlowEngineTest,
                         ::testing::Range<uint64_t>(1, 7));

TEST(GuideGeneratorTest, ApproxAutoEngineRoutesToCompressed) {
  const PredictionMatrix prediction = ApproxTestPrediction();
  GuideOptions options = ApproxTestOptions(0.5);
  options.engine = GuideOptions::Engine::kAuto;
  const GuideGenerator generator(2.0, options);
  const auto guide = generator.Generate(prediction);
  ASSERT_TRUE(guide.ok()) << guide.status().ToString();
  EXPECT_GT(generator.last_approx_report().feasible_pairs, 0);
  EXPECT_LT(generator.last_approx_report().sampled_pairs,
            generator.last_approx_report().feasible_pairs);
}

}  // namespace
}  // namespace ftoa
