#include "core/guide_generator.h"

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "test_util.h"
#include "util/rng.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

GuideOptions Example1Options(GuideOptions::Engine engine) {
  GuideOptions options;
  options.engine = engine;
  options.worker_duration = 30.0;
  options.task_duration = 2.0;
  return options;
}

TEST(GuideGeneratorTest, Example1PerfectPredictionMatchesSix) {
  // With the true per-type counts of Example 1, the maximum bipartite
  // matching over predicted nodes has cardinality 6 (all tasks served):
  // two top-left slot-0 tasks from the three top-left workers, four
  // bottom-right slot-1 tasks from the four top-right workers.
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(instance);
  for (const auto engine :
       {GuideOptions::Engine::kFordFulkerson, GuideOptions::Engine::kDinic,
        GuideOptions::Engine::kCompressed,
        GuideOptions::Engine::kCompressedMinCost}) {
    const GuideGenerator generator(instance.velocity(),
                                   Example1Options(engine));
    const auto guide = generator.Generate(prediction);
    ASSERT_TRUE(guide.ok());
    EXPECT_EQ(guide->matched_pairs(), 6) << "engine " << static_cast<int>(
        engine);
    EXPECT_EQ(guide->num_worker_nodes(), 7);
    EXPECT_EQ(guide->num_task_nodes(), 6);
    EXPECT_TRUE(guide->Validate().ok());
  }
}

TEST(GuideGeneratorTest, FeasibleTypePairsRespectDeadlines) {
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(instance);
  const GuideGenerator generator(
      instance.velocity(),
      Example1Options(GuideOptions::Engine::kDinic));
  const SpacetimeSpec& st = instance.spacetime();
  int pairs = 0;
  generator.ForEachFeasibleTypePair(
      prediction, [&](TypeId wt, TypeId tt) {
        ++pairs;
        EXPECT_TRUE(CanServeAttrs(
            st.RepresentativeLocation(wt), st.RepresentativeTime(wt), 30.0,
            st.RepresentativeLocation(tt), st.RepresentativeTime(tt), 2.0,
            instance.velocity(),
            FeasibilityPolicy::kDispatchAtWorkerStart));
      });
  EXPECT_GT(pairs, 0);
}

TEST(GuideGeneratorTest, EstimateCountsNodeLevelEdges) {
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(instance);
  const GuideGenerator generator(
      instance.velocity(),
      Example1Options(GuideOptions::Engine::kDinic));
  int64_t expected = 0;
  generator.ForEachFeasibleTypePair(prediction, [&](TypeId wt, TypeId tt) {
    expected += static_cast<int64_t>(prediction.workers_at(wt)) *
                prediction.tasks_at(tt);
  });
  EXPECT_EQ(generator.EstimateNodeLevelEdges(prediction), expected);
}

TEST(GuideGeneratorTest, EmptyPredictionYieldsEmptyGuide) {
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix empty(instance.spacetime());
  const GuideGenerator generator(
      instance.velocity(),
      Example1Options(GuideOptions::Engine::kAuto));
  const auto guide = generator.Generate(empty);
  ASSERT_TRUE(guide.ok());
  EXPECT_EQ(guide->matched_pairs(), 0);
  EXPECT_EQ(guide->num_worker_nodes(), 0);
}

TEST(GuideGeneratorTest, MinCostVariantKeepsMaxCardinality) {
  // Min-cost guide must not sacrifice matching size for cost.
  SyntheticConfig config;
  config.num_workers = 300;
  config.num_tasks = 300;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.seed = 5;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);

  GuideOptions options;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;

  options.engine = GuideOptions::Engine::kCompressed;
  const auto plain = GuideGenerator(config.velocity, options)
                         .Generate(prediction);
  options.engine = GuideOptions::Engine::kCompressedMinCost;
  const auto min_cost = GuideGenerator(config.velocity, options)
                            .Generate(prediction);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(min_cost.ok());
  EXPECT_EQ(plain->matched_pairs(), min_cost->matched_pairs());

  // The min-cost guide's total representative travel time is no larger.
  auto total_cost = [](const OfflineGuide& guide) {
    double cost = 0.0;
    const SpacetimeSpec& st = guide.spacetime();
    for (const GuideNode& node : guide.worker_nodes()) {
      if (node.partner < 0) continue;
      const GuideNode& partner =
          guide.task_nodes()[static_cast<size_t>(node.partner)];
      cost += TravelTime(st.RepresentativeLocation(node.type),
                         st.RepresentativeLocation(partner.type),
                         guide.velocity());
    }
    return cost;
  };
  EXPECT_LE(total_cost(*min_cost), total_cost(*plain) + 1e-6);
}

TEST(GuideGeneratorTest, RepresentativeSlackGrowsTheGuideMonotonically) {
  SyntheticConfig config;
  config.num_workers = 400;
  config.num_tasks = 400;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.task_duration = 1.0;  // Tight: slack has something to recover.
  config.seed = 77;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);

  GuideOptions options;
  options.engine = GuideOptions::Engine::kCompressed;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;

  int64_t previous = -1;
  for (double slack : {0.0, 0.25, 0.5, 1.0}) {
    options.representative_slack = slack;
    const auto guide = GuideGenerator(config.velocity, options)
                           .Generate(prediction);
    ASSERT_TRUE(guide.ok());
    EXPECT_DOUBLE_EQ(guide->representative_slack(), slack);
    // The guide's own validation honors the slack it was built with.
    EXPECT_TRUE(guide->Validate().ok()) << "slack " << slack;
    EXPECT_GE(guide->matched_pairs(), previous) << "slack " << slack;
    previous = guide->matched_pairs();
  }
}

// Property: every engine produces the same matching cardinality, and all
// matched node pairs satisfy type-level feasibility.
class GuideEngineEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GuideEngineEquivalenceTest, EnginesAgreeOnCardinality) {
  SyntheticConfig config;
  Rng rng(GetParam());
  config.num_workers = 100 + static_cast<int>(rng.NextBounded(300));
  config.num_tasks = 100 + static_cast<int>(rng.NextBounded(300));
  config.grid_x = 6 + static_cast<int>(rng.NextBounded(6));
  config.grid_y = 6 + static_cast<int>(rng.NextBounded(6));
  config.num_slots = 4 + static_cast<int>(rng.NextBounded(8));
  config.task_duration = 1.0 + rng.NextDouble() * 2.0;
  config.worker_duration = 1.0 + rng.NextDouble() * 3.0;
  config.seed = GetParam() * 1000 + 17;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);

  GuideOptions options;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;

  int64_t reference = -1;
  for (const auto engine :
       {GuideOptions::Engine::kFordFulkerson, GuideOptions::Engine::kDinic,
        GuideOptions::Engine::kCompressed}) {
    options.engine = engine;
    const GuideGenerator generator(config.velocity, options);
    const auto guide = generator.Generate(prediction);
    ASSERT_TRUE(guide.ok());
    EXPECT_TRUE(guide->Validate().ok());
    if (reference < 0) {
      reference = guide->matched_pairs();
    } else {
      EXPECT_EQ(guide->matched_pairs(), reference)
          << "engine " << static_cast<int>(engine);
    }
  }
  EXPECT_GE(reference, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuideEngineEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(GuideGeneratorTest, RepeatedGenerateReusesArenasDeterministically) {
  // One generator instance serves many predictions in a live deployment;
  // the reused solver arenas must not leak state between calls: repeated
  // Generate on the same prediction gives the identical guide.
  SyntheticConfig config;
  config.num_workers = 200;
  config.num_tasks = 200;
  config.grid_x = 8;
  config.grid_y = 8;
  config.num_slots = 6;
  config.seed = 77;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix prediction =
      PredictionMatrix::FromInstance(*instance);
  for (const auto engine : {GuideOptions::Engine::kDinic,
                            GuideOptions::Engine::kCompressed,
                            GuideOptions::Engine::kCompressedMinCost}) {
    GuideOptions options;
    options.engine = engine;
    options.worker_duration = config.worker_duration;
    options.task_duration = config.task_duration;
    const GuideGenerator generator(config.velocity, options);
    const auto first = generator.Generate(prediction);
    ASSERT_TRUE(first.ok());
    for (int repeat = 0; repeat < 2; ++repeat) {
      const auto again = generator.Generate(prediction);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->matched_pairs(), first->matched_pairs())
          << "engine " << static_cast<int>(engine);
      // Pairings themselves must be identical across reuse.
      ASSERT_EQ(again->worker_nodes().size(), first->worker_nodes().size());
      for (size_t node = 0; node < first->worker_nodes().size(); ++node) {
        EXPECT_EQ(again->worker_nodes()[node].partner,
                  first->worker_nodes()[node].partner)
            << "engine " << static_cast<int>(engine) << " node " << node;
      }
    }
  }
}

}  // namespace
}  // namespace ftoa
