#include "core/polar.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/guide_generator.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

std::shared_ptr<const OfflineGuide> BuildGuide(
    const Instance& instance, const PredictionMatrix& prediction,
    double dw, double dr) {
  GuideOptions options;
  options.engine = GuideOptions::Engine::kDinic;
  options.worker_duration = dw;
  options.task_duration = dr;
  const GuideGenerator generator(instance.velocity(), options);
  auto guide = generator.Generate(prediction);
  EXPECT_TRUE(guide.ok());
  return std::make_shared<const OfflineGuide>(std::move(guide).value());
}

TEST(PolarTest, Example1PerfectPredictionAchievesOptimum) {
  // With exact per-type counts, every predicted node is occupied by exactly
  // the object it anticipates, so POLAR realizes all 6 guide pairs.
  const Instance instance = MakeExample1Instance();
  const auto guide = BuildGuide(
      instance, PredictionMatrix::FromInstance(instance), 30.0, 2.0);
  Polar polar(guide);
  RunTrace trace;
  const Assignment assignment = polar.Run(instance, &trace);
  EXPECT_EQ(assignment.size(), 6u);
  EXPECT_EQ(trace.ignored_workers + trace.ignored_tasks, 0);
  EXPECT_EQ(polar.name(), "POLAR");
}

TEST(PolarTest, UnderPredictionIgnoresExtraObjects) {
  // Remove one worker and one task from the prediction of their types:
  // the corresponding extra arrivals are ignored (Algorithm 2 line 3).
  const Instance instance = MakeExample1Instance();
  PredictionMatrix prediction = PredictionMatrix::FromInstance(instance);
  const SpacetimeSpec& st = instance.spacetime();
  prediction.set_workers_at(st.TypeAt(0, 2), 2);  // 3 arrive, 2 predicted.
  prediction.set_tasks_at(st.TypeAt(1, 1), 3);    // 4 arrive, 3 predicted.
  const auto guide = BuildGuide(instance, prediction, 30.0, 2.0);
  Polar polar(guide);
  RunTrace trace;
  const Assignment assignment = polar.Run(instance, &trace);
  EXPECT_EQ(trace.ignored_workers, 1);
  EXPECT_EQ(trace.ignored_tasks, 1);
  EXPECT_LE(assignment.size(), 5u);
}

TEST(PolarTest, DispatchesWorkersTowardPartnerAreas) {
  const Instance instance = MakeExample1Instance();
  const auto guide = BuildGuide(
      instance, PredictionMatrix::FromInstance(instance), 30.0, 2.0);
  Polar polar(guide);
  RunTrace trace;
  polar.Run(instance, &trace);
  // The top-right workers are guided to the bottom-right area where the
  // slot-1 tasks will appear (the center of cell 1 is (6, 2)).
  bool dispatched_to_bottom_right = false;
  for (const DispatchRecord& record : trace.dispatches) {
    if (record.target == Point{6.0, 2.0}) dispatched_to_bottom_right = true;
  }
  EXPECT_TRUE(dispatched_to_bottom_right);
}

TEST(PolarTest, DeterministicAcrossRuns) {
  const Instance instance = MakeExample1Instance();
  const auto guide = BuildGuide(
      instance, PredictionMatrix::FromInstance(instance), 30.0, 2.0);
  Polar polar(guide);
  const Assignment a = polar.Run(instance);
  const Assignment b = polar.Run(instance);
  ASSERT_EQ(a.pairs().size(), b.pairs().size());
  for (size_t i = 0; i < a.pairs().size(); ++i) {
    EXPECT_EQ(a.pairs()[i].worker, b.pairs()[i].worker);
    EXPECT_EQ(a.pairs()[i].task, b.pairs()[i].task);
  }
}

TEST(PolarTest, EmptyGuideMatchesNothing) {
  const Instance instance = MakeExample1Instance();
  const auto guide = BuildGuide(
      instance, PredictionMatrix(instance.spacetime()), 30.0, 2.0);
  Polar polar(guide);
  RunTrace trace;
  const Assignment assignment = polar.Run(instance, &trace);
  EXPECT_EQ(assignment.size(), 0u);
  EXPECT_EQ(trace.ignored_workers, 7);
  EXPECT_EQ(trace.ignored_tasks, 6);
}

TEST(PolarTest, LivenessCheckFiltersExpiredCounterparts) {
  // Construct a worker that, under guide-trust, would be matched with a
  // task arriving long after the worker left.
  std::vector<Worker> workers(1);
  workers[0] = {0, {1.0, 1.0}, 0.0, 1.0};  // Leaves at t = 1.
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 8.0, 2.0};  // Arrives at t = 8.
  const SpacetimeSpec st(SlotSpec(10.0, 1), GridSpec(8.0, 8.0, 1, 1));
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));

  // A hand-built guide pairing the two types (same single type here).
  auto guide = std::make_shared<OfflineGuide>(st, 1.0, 10.0, 10.0);
  const GuideNodeId w = guide->AddWorkerNode(0);
  const GuideNodeId r = guide->AddTaskNode(0);
  ASSERT_TRUE(guide->MatchNodes(w, r).ok());

  Polar trusting(guide, PolarOptions{.check_liveness = false});
  EXPECT_EQ(trusting.Run(instance).size(), 1u);

  Polar strict(guide, PolarOptions{.check_liveness = true});
  EXPECT_EQ(strict.Run(instance).size(), 0u);
}

// Property: POLAR's matching size never exceeds the guide's |E*| nor
// min(|W|, |R|), and all pairs are type-compatible with the guide.
class PolarPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolarPropertyTest, MatchingBoundedByGuide) {
  SyntheticConfig config;
  config.num_workers = 500;
  config.num_tasks = 500;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.seed = GetParam();
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const auto prediction = GenerateSyntheticPrediction(config);
  ASSERT_TRUE(prediction.ok());
  const auto guide = BuildGuide(*instance, *prediction,
                                config.worker_duration,
                                config.task_duration);
  Polar polar(guide);
  const Assignment assignment = polar.Run(*instance);
  EXPECT_LE(static_cast<int64_t>(assignment.size()),
            guide->matched_pairs());
  EXPECT_LE(assignment.size(),
            std::min(instance->num_workers(), instance->num_tasks()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolarPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace ftoa
