// Mid-stream guide hot-swap (AssignmentSession::SwapGuide): the serving
// harness's refresh point. These tests pin the contract of
// core/online_algorithm.h — committed pairs stay, guide-dependent state
// restarts empty, incompatible guides are rejected leaving the session
// untouched — and the sharded broadcast ordering/counting.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "baselines/simple_greedy.h"
#include "core/guide_generator.h"
#include "core/hybrid_polar_op.h"
#include "core/polar.h"
#include "core/polar_op.h"
#include "core/prediction_matrix.h"
#include "model/arrival_stream.h"
#include "sim/sharded_dispatcher.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

std::shared_ptr<const OfflineGuide> BuildGuide(const Instance& instance) {
  GuideOptions options;
  options.worker_duration = 30.0;
  options.task_duration = 2.0;
  const GuideGenerator generator(instance.velocity(), options);
  auto guide = generator.Generate(PredictionMatrix::FromInstance(instance));
  EXPECT_TRUE(guide.ok()) << guide.status();
  return std::make_shared<const OfflineGuide>(std::move(guide).value());
}

void FeedAll(AssignmentSession& session, const Instance& instance) {
  for (const ArrivalEvent& event : BuildArrivalStream(instance)) {
    if (event.kind == ObjectKind::kWorker) {
      session.OnWorker(event.index, event.time);
    } else {
      session.OnTask(event.index, event.time);
    }
  }
}

TEST(GuideSwapTest, SwapBeforeFirstArrivalMatchesNoSwapRun) {
  const Instance instance = MakeExample1Instance();
  const auto guide = BuildGuide(instance);
  Polar polar(guide);
  const Assignment baseline = polar.Run(instance);

  // A swap to an equivalent guide before any arrival must be invisible.
  auto session = polar.StartSession(instance);
  EXPECT_TRUE(session->SwapGuide(BuildGuide(instance)));
  FeedAll(*session, instance);
  const SessionResult swapped = session->Finish();

  ASSERT_EQ(swapped.assignment.pairs().size(), baseline.pairs().size());
  for (size_t i = 0; i < baseline.pairs().size(); ++i) {
    EXPECT_EQ(swapped.assignment.pairs()[i].worker,
              baseline.pairs()[i].worker);
    EXPECT_EQ(swapped.assignment.pairs()[i].task, baseline.pairs()[i].task);
  }
}

TEST(GuideSwapTest, PolarSwapResetsNodeOccupancy) {
  // All workers occupy nodes, then the swap wipes the occupancy: the tasks
  // that follow find every partner node empty and match nothing.
  const Instance instance = MakeExample1Instance();
  Polar polar(BuildGuide(instance));
  auto session = polar.StartSession(instance);
  for (WorkerId w = 0; w < static_cast<WorkerId>(instance.num_workers());
       ++w) {
    session->OnWorker(w, instance.worker(w).start);
  }
  EXPECT_TRUE(session->SwapGuide(BuildGuide(instance)));
  for (TaskId r = 0; r < static_cast<TaskId>(instance.num_tasks());
       ++r) {
    session->OnTask(r, instance.task(r).start);
  }
  EXPECT_EQ(session->Finish().assignment.size(), 0u);
}

TEST(GuideSwapTest, PolarOpSwapReleasesWaitQueues) {
  const Instance instance = MakeExample1Instance();
  PolarOp polar_op(BuildGuide(instance));
  auto session = polar_op.StartSession(instance);
  for (WorkerId w = 0; w < static_cast<WorkerId>(instance.num_workers());
       ++w) {
    session->OnWorker(w, instance.worker(w).start);
  }
  EXPECT_TRUE(session->SwapGuide(BuildGuide(instance)));
  for (TaskId r = 0; r < static_cast<TaskId>(instance.num_tasks());
       ++r) {
    session->OnTask(r, instance.task(r).start);
  }
  // The queued workers were released by the swap; nothing is waiting.
  EXPECT_EQ(session->Finish().assignment.size(), 0u);
}

TEST(GuideSwapTest, HybridKeepsGreedyFallbackAcrossSwap) {
  // The hybrid's grid indexes are guide-independent: workers released from
  // the node queues by the swap remain reachable through the fallback, so
  // the post-swap tasks still match.
  const Instance instance = MakeExample1Instance();
  HybridPolarOp hybrid(BuildGuide(instance));
  auto session = hybrid.StartSession(instance);
  for (WorkerId w = 0; w < static_cast<WorkerId>(instance.num_workers());
       ++w) {
    session->OnWorker(w, instance.worker(w).start);
  }
  EXPECT_TRUE(session->SwapGuide(BuildGuide(instance)));
  for (TaskId r = 0; r < static_cast<TaskId>(instance.num_tasks());
       ++r) {
    session->OnTask(r, instance.task(r).start);
  }
  EXPECT_GT(session->Finish().assignment.size(), 0u);
}

TEST(GuideSwapTest, IncompatibleSpacetimeIsRejectedAndSessionContinues) {
  const Instance instance = MakeExample1Instance();
  Polar polar(BuildGuide(instance));
  const Assignment baseline = polar.Run(instance);

  // A guide over a different discretization (4x4 areas -> more types).
  const SpacetimeSpec other(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 4, 4));
  auto incompatible = std::make_shared<const OfflineGuide>(
      OfflineGuide(other, 1.0, 30.0, 2.0));

  auto session = polar.StartSession(instance);
  EXPECT_FALSE(session->SwapGuide(incompatible));
  EXPECT_FALSE(session->SwapGuide(nullptr));
  FeedAll(*session, instance);
  // The rejected swaps left the session untouched.
  EXPECT_EQ(session->Finish().assignment.size(), baseline.size());
}

TEST(GuideSwapTest, GuideFreeBaselineDeclinesSwap) {
  const Instance instance = MakeExample1Instance();
  SimpleGreedy greedy;
  auto session = greedy.StartSession(instance);
  EXPECT_FALSE(session->SwapGuide(BuildGuide(instance)));
  FeedAll(*session, instance);
  EXPECT_GT(session->Finish().assignment.size(), 0u);
}

TEST(GuideSwapTest, ShardedBroadcastCountsAdoptionsPerShard) {
  const Instance instance = MakeExample1Instance();
  const auto guide = BuildGuide(instance);
  PolarOp polar_op(guide);
  for (const int num_threads : {1, 3}) {
    ShardedOptions options;
    options.num_shards = 3;
    options.num_threads = num_threads;
    ShardedDispatcher dispatcher(&polar_op, options);
    auto session = dispatcher.StartSession(instance);
    const std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
    const size_t half = events.size() / 2;
    for (size_t i = 0; i < events.size(); ++i) {
      if (i == half) {
        session->AdvanceTo(events[i].time);
        session->SwapGuide(BuildGuide(instance));
      }
      if (events[i].kind == ObjectKind::kWorker) {
        session->OnWorker(events[i].index, events[i].time);
      } else {
        session->OnTask(events[i].index, events[i].time);
      }
    }
    auto result = session->Finish();
    ASSERT_TRUE(result.ok()) << result.status();
    // Every shard session adopted the broadcast swap exactly once.
    EXPECT_EQ(result.value().metrics.guide_swaps, 3);
  }
}

TEST(GuideSwapTest, ShardedSwapIsDeterministicAcrossThreadCounts) {
  const Instance instance = MakeExample1Instance();
  const auto guide = BuildGuide(instance);
  PolarOp polar_op(guide);
  std::vector<std::vector<MatchedPair>> runs;
  for (const int num_threads : {1, 3}) {
    ShardedOptions options;
    options.num_shards = 3;
    options.num_threads = num_threads;
    ShardedDispatcher dispatcher(&polar_op, options);
    auto session = dispatcher.StartSession(instance);
    const std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
    const size_t half = events.size() / 2;
    for (size_t i = 0; i < events.size(); ++i) {
      if (i == half) {
        session->AdvanceTo(events[i].time);
        session->SwapGuide(BuildGuide(instance));
      }
      if (events[i].kind == ObjectKind::kWorker) {
        session->OnWorker(events[i].index, events[i].time);
      } else {
        session->OnTask(events[i].index, events[i].time);
      }
    }
    auto result = session->Finish();
    ASSERT_TRUE(result.ok()) << result.status();
    runs.push_back(result.value().assignment.pairs());
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].worker, runs[1][i].worker);
    EXPECT_EQ(runs[0][i].task, runs[1][i].task);
  }
}

}  // namespace
}  // namespace ftoa
