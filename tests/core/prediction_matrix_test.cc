#include "core/prediction_matrix.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

TEST(PredictionMatrixTest, ZeroInitialized) {
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix matrix(instance.spacetime());
  EXPECT_EQ(matrix.TotalWorkers(), 0);
  EXPECT_EQ(matrix.TotalTasks(), 0);
}

TEST(PredictionMatrixTest, FromInstanceMatchesCounts) {
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix matrix = PredictionMatrix::FromInstance(instance);
  EXPECT_EQ(matrix.TotalWorkers(), 7);
  EXPECT_EQ(matrix.TotalTasks(), 6);
  const SpacetimeSpec& st = instance.spacetime();
  EXPECT_EQ(matrix.workers_at(st.TypeAt(0, 2)), 3);
  EXPECT_EQ(matrix.workers_at(st.TypeAt(0, 3)), 4);
  EXPECT_EQ(matrix.tasks_at(st.TypeAt(0, 2)), 2);
  EXPECT_EQ(matrix.tasks_at(st.TypeAt(1, 1)), 4);
}

TEST(PredictionMatrixTest, SettersAndGetters) {
  const Instance instance = MakeExample1Instance();
  PredictionMatrix matrix(instance.spacetime());
  matrix.set_workers_at(3, 5);
  matrix.set_tasks_at(3, 2);
  EXPECT_EQ(matrix.workers_at(3), 5);
  EXPECT_EQ(matrix.tasks_at(3), 2);
  EXPECT_EQ(matrix.TotalWorkers(), 5);
  EXPECT_EQ(matrix.TotalTasks(), 2);
}

TEST(PredictionMatrixTest, FromIntensitiesRoundsAndClamps) {
  const Instance instance = MakeExample1Instance();
  const int types = instance.spacetime().num_types();
  std::vector<double> workers(static_cast<size_t>(types), 0.0);
  std::vector<double> tasks(static_cast<size_t>(types), 0.0);
  workers[0] = 2.6;
  workers[1] = -3.0;  // Clamped to zero.
  tasks[2] = 0.4;     // Rounds to zero.
  tasks[3] = 1.5;     // Rounds to 2.
  const PredictionMatrix matrix = PredictionMatrix::FromIntensities(
      instance.spacetime(), workers, tasks);
  EXPECT_EQ(matrix.workers_at(0), 3);
  EXPECT_EQ(matrix.workers_at(1), 0);
  EXPECT_EQ(matrix.tasks_at(2), 0);
  EXPECT_EQ(matrix.tasks_at(3), 2);
}

TEST(PredictionMatrixTest, NoiseIsDeterministicPerSeed) {
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix base = PredictionMatrix::FromInstance(instance);
  Rng rng_a(7);
  Rng rng_b(7);
  const PredictionMatrix noisy_a = base.WithNoise(0.5, 0.01, &rng_a);
  const PredictionMatrix noisy_b = base.WithNoise(0.5, 0.01, &rng_b);
  EXPECT_EQ(noisy_a.workers(), noisy_b.workers());
  EXPECT_EQ(noisy_a.tasks(), noisy_b.tasks());
}

TEST(PredictionMatrixTest, ZeroNoiseIsIdentityWithoutPhantoms) {
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix base = PredictionMatrix::FromInstance(instance);
  Rng rng(7);
  const PredictionMatrix same = base.WithNoise(0.0, 0.0, &rng);
  EXPECT_EQ(same.workers(), base.workers());
  EXPECT_EQ(same.tasks(), base.tasks());
}

TEST(PredictionMatrixTest, PhantomRateCreatesSpuriousTypes) {
  const Instance instance = MakeExample1Instance();
  const PredictionMatrix base = PredictionMatrix::FromInstance(instance);
  Rng rng(7);
  const PredictionMatrix noisy = base.WithNoise(0.0, 1.0, &rng);
  // Every empty type received a phantom count of one.
  for (TypeId t = 0; t < instance.spacetime().num_types(); ++t) {
    if (base.workers_at(t) == 0) {
      EXPECT_EQ(noisy.workers_at(t), 1);
    }
    if (base.tasks_at(t) == 0) {
      EXPECT_EQ(noisy.tasks_at(t), 1);
    }
  }
}

}  // namespace
}  // namespace ftoa
