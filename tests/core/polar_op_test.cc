#include "core/polar_op.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/guide_generator.h"
#include "core/polar.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

std::shared_ptr<const OfflineGuide> BuildGuide(
    const Instance& instance, const PredictionMatrix& prediction, double dw,
    double dr) {
  GuideOptions options;
  options.engine = GuideOptions::Engine::kDinic;
  options.worker_duration = dw;
  options.task_duration = dr;
  auto guide = GuideGenerator(instance.velocity(), options)
                   .Generate(prediction);
  EXPECT_TRUE(guide.ok());
  return std::make_shared<const OfflineGuide>(std::move(guide).value());
}

TEST(PolarOpTest, Example1PerfectPredictionAchievesOptimum) {
  const Instance instance = MakeExample1Instance();
  const auto guide = BuildGuide(
      instance, PredictionMatrix::FromInstance(instance), 30.0, 2.0);
  PolarOp polar_op(guide);
  const Assignment assignment = polar_op.Run(instance);
  EXPECT_EQ(assignment.size(), 6u);
  EXPECT_EQ(polar_op.name(), "POLAR-OP");
}

TEST(PolarOpTest, ReusesNodesUnderUnderPrediction) {
  // Under-predict every type (the Example 5/6 situation): POLAR drops the
  // surplus arrivals, POLAR-OP re-associates them and matches more.
  const Instance instance = MakeExample1Instance();
  PredictionMatrix prediction = PredictionMatrix::FromInstance(instance);
  const SpacetimeSpec& st = instance.spacetime();
  prediction.set_workers_at(st.TypeAt(0, 2), 2);  // 3 actual.
  prediction.set_workers_at(st.TypeAt(0, 3), 3);  // 4 actual.
  prediction.set_tasks_at(st.TypeAt(0, 2), 1);    // 2 actual.
  prediction.set_tasks_at(st.TypeAt(1, 1), 3);    // 4 actual.
  const auto guide = BuildGuide(instance, prediction, 30.0, 2.0);

  Polar polar(guide);
  PolarOp polar_op(guide);
  RunTrace op_trace;
  const Assignment polar_result = polar.Run(instance);
  const Assignment op_result = polar_op.Run(instance, &op_trace);
  EXPECT_GT(op_result.size(), polar_result.size());
  // POLAR-OP only drops objects whose type has no node at all.
  EXPECT_EQ(op_trace.ignored_workers + op_trace.ignored_tasks, 0);
}

TEST(PolarOpTest, ObjectsOfUnpredictedTypesAreIgnored) {
  const Instance instance = MakeExample1Instance();
  PredictionMatrix prediction = PredictionMatrix::FromInstance(instance);
  const SpacetimeSpec& st = instance.spacetime();
  prediction.set_workers_at(st.TypeAt(0, 2), 0);  // Type disappears.
  const auto guide = BuildGuide(instance, prediction, 30.0, 2.0);
  PolarOp polar_op(guide);
  RunTrace trace;
  polar_op.Run(instance, &trace);
  EXPECT_EQ(trace.ignored_workers, 3);
}

TEST(PolarOpTest, RoundRobinSpreadsAssociations) {
  // One worker node matched to one task node, with 3 workers of the type
  // arriving before 2 tasks: FIFO matching pairs the first workers.
  const SpacetimeSpec st(SlotSpec(10.0, 1), GridSpec(8.0, 8.0, 1, 1));
  std::vector<Worker> workers(3);
  for (int i = 0; i < 3; ++i) {
    workers[static_cast<size_t>(i)] = {i, {1.0, 1.0}, 0.5 * i, 10.0};
  }
  std::vector<Task> tasks(2);
  tasks[0] = {0, {1.0, 1.0}, 5.0, 4.0};
  tasks[1] = {1, {1.0, 1.0}, 6.0, 4.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));

  auto guide = std::make_shared<OfflineGuide>(st, 1.0, 10.0, 4.0);
  const GuideNodeId w = guide->AddWorkerNode(0);
  const GuideNodeId r = guide->AddTaskNode(0);
  ASSERT_TRUE(guide->MatchNodes(w, r).ok());

  PolarOp polar_op(guide);
  const Assignment assignment = polar_op.Run(instance);
  ASSERT_EQ(assignment.size(), 2u);
  // FIFO: tasks match the earliest waiting workers w0 then w1.
  EXPECT_EQ(assignment.MatchOfTask(0), 0);
  EXPECT_EQ(assignment.MatchOfTask(1), 1);
}

TEST(PolarOpTest, LivenessCheckSkipsExpiredWaiters) {
  const SpacetimeSpec st(SlotSpec(10.0, 1), GridSpec(8.0, 8.0, 1, 1));
  std::vector<Worker> workers(2);
  workers[0] = {0, {1.0, 1.0}, 0.0, 1.0};   // Expires at t = 1.
  workers[1] = {1, {1.0, 1.0}, 4.0, 10.0};  // Alive at t = 8.
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 8.0, 2.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));

  auto guide = std::make_shared<OfflineGuide>(st, 1.0, 10.0, 10.0);
  ASSERT_TRUE(
      guide->MatchNodes(guide->AddWorkerNode(0), guide->AddTaskNode(0)).ok());

  PolarOp strict(guide, PolarOptions{.check_liveness = true});
  const Assignment assignment = strict.Run(instance);
  ASSERT_EQ(assignment.size(), 1u);
  // The expired w0 is skipped; the alive w1 serves the task.
  EXPECT_EQ(assignment.MatchOfTask(0), 1);
}

// Property: POLAR-OP dominates POLAR on identical inputs (node reuse can
// only add matches given the same guide and arrival order) — checked
// empirically over random workloads; also bounded by the guide edges.
class PolarOpPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolarOpPropertyTest, DominatesPolarEmpirically) {
  SyntheticConfig config;
  config.num_workers = 600;
  config.num_tasks = 600;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.seed = GetParam() * 7 + 1;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const auto prediction = GenerateSyntheticPrediction(config);
  ASSERT_TRUE(prediction.ok());
  const auto guide = BuildGuide(*instance, *prediction,
                                config.worker_duration,
                                config.task_duration);
  Polar polar(guide);
  PolarOp polar_op(guide);
  const size_t polar_size = polar.Run(*instance).size();
  const size_t op_size = polar_op.Run(*instance).size();
  EXPECT_GE(op_size, polar_size);
  // Unlike POLAR, POLAR-OP may reuse a guide edge for several real pairs
  // (paper Example 6), so it is only bounded by the instance itself.
  EXPECT_LE(op_size,
            std::min(instance->num_workers(), instance->num_tasks()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolarOpPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace ftoa
