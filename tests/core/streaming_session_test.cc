// Batch/stream equivalence suite for the AssignmentSession API: for every
// algorithm in the registry, feeding the arrival stream through a session
// by hand must produce an Assignment and RunTrace bit-identical to the
// batch Run() driver (which is the same replay by construction); sessions
// of one algorithm object must be independent; and the registry must round
// trip every name.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/algorithm_registry.h"
#include "core/guide_generator.h"
#include "core/prediction_matrix.h"
#include "gen/synthetic.h"
#include "model/arrival_stream.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ::ftoa::testing::AllArrivalPatterns;
using ::ftoa::testing::ArrivalPattern;
using ::ftoa::testing::ArrivalPatternName;
using ::ftoa::testing::ExpectIdenticalRun;
using ::ftoa::testing::MakeFuzzUniverse;

SyntheticConfig SmallConfig(uint64_t seed) {
  SyntheticConfig config;
  config.num_workers = 400;
  config.num_tasks = 400;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.seed = seed;
  return config;
}

/// Instance plus the guide its POLAR-family algorithms run against (built
/// from an independent replicate prediction, the realistic regime).
struct Universe {
  Instance instance;
  AlgorithmDeps deps;
};

Universe MakeUniverse(uint64_t seed) {
  const SyntheticConfig config = SmallConfig(seed);
  auto instance = GenerateSyntheticInstance(config);
  EXPECT_TRUE(instance.ok());
  auto prediction = GenerateSyntheticPrediction(config);
  EXPECT_TRUE(prediction.ok());
  GuideOptions options;
  options.engine = GuideOptions::Engine::kAuto;
  options.worker_duration = config.worker_duration;
  options.task_duration = config.task_duration;
  auto guide = GuideGenerator(config.velocity, options).Generate(*prediction);
  EXPECT_TRUE(guide.ok());
  Universe universe{std::move(*instance), {}};
  universe.deps.guide =
      std::make_shared<const OfflineGuide>(std::move(*guide));
  return universe;
}

/// Drives the instance's arrival stream through a fresh session by hand.
/// With `advance` set, every arrival is preceded by (redundant, repeated)
/// AdvanceTo calls and the stream ends with an explicit Flush — none of
/// which may change the result.
SessionResult DriveByHand(OnlineAlgorithm* algorithm,
                          const Instance& instance, bool advance) {
  std::unique_ptr<AssignmentSession> session =
      algorithm->StartSession(instance);
  for (const ArrivalEvent& event : BuildArrivalStream(instance)) {
    if (advance) {
      session->AdvanceTo(event.time);
      session->AdvanceTo(event.time);  // AdvanceTo must be idempotent.
    }
    if (event.kind == ObjectKind::kWorker) {
      session->OnWorker(event.index, event.time);
    } else {
      session->OnTask(event.index, event.time);
    }
  }
  if (advance) session->Flush();  // Finish() implies Flush(); also explicit.
  return session->Finish();
}

class SessionEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SessionEquivalenceTest, StreamMatchesBatchBitForBit) {
  const Universe universe = MakeUniverse(311);
  auto algorithm = CreateAlgorithm(GetParam(), universe.deps);
  ASSERT_TRUE(algorithm.ok()) << algorithm.status().ToString();

  RunTrace batch_trace;
  const Assignment batch = (*algorithm)->Run(universe.instance, &batch_trace);
  EXPECT_GT(batch.size(), 0u);  // A degenerate universe would prove nothing.

  // The no-trace fast path (dispatch collection off) must not change a
  // single decision.
  const Assignment traceless = (*algorithm)->Run(universe.instance);
  ASSERT_EQ(traceless.size(), batch.size());
  for (size_t i = 0; i < batch.pairs().size(); ++i) {
    EXPECT_EQ(traceless.pairs()[i].worker, batch.pairs()[i].worker);
    EXPECT_EQ(traceless.pairs()[i].task, batch.pairs()[i].task);
  }

  const SessionResult streamed =
      DriveByHand(algorithm->get(), universe.instance, /*advance=*/false);
  ExpectIdenticalRun(batch, batch_trace, streamed.assignment, streamed.trace,
                  std::string(GetParam()) + " plain");

  const SessionResult advanced =
      DriveByHand(algorithm->get(), universe.instance, /*advance=*/true);
  ExpectIdenticalRun(batch, batch_trace, advanced.assignment, advanced.trace,
                  std::string(GetParam()) + " with AdvanceTo/Flush");
}

TEST_P(SessionEquivalenceTest, AdversarialArrivalPatternsStreamIdentically) {
  // The synthetic universes above exercise only well-mixed arrival orders
  // (BuildArrivalStream over Table 4 temporal normals); the fuzz patterns
  // force the adversarial ones — all workers before any task (and the
  // reverse), strict alternation, equal-timestamp bursts that stress batch
  // windows and tie-breaks, and ids uncorrelated with arrival order.
  for (const ArrivalPattern pattern : AllArrivalPatterns()) {
    const auto universe = MakeFuzzUniverse(97, pattern, 80, 80);
    auto algorithm = CreateAlgorithm(GetParam(), universe.deps);
    ASSERT_TRUE(algorithm.ok()) << algorithm.status().ToString();

    RunTrace batch_trace;
    const Assignment batch =
        (*algorithm)->Run(universe.instance, &batch_trace);
    const SessionResult streamed =
        DriveByHand(algorithm->get(), universe.instance, /*advance=*/true);
    ExpectIdenticalRun(batch, batch_trace, streamed.assignment,
                       streamed.trace,
                       std::string(GetParam()) + " pattern " +
                           ArrivalPatternName(pattern));
  }
}

TEST_P(SessionEquivalenceTest, InterleavedSessionsAreIndependent) {
  // Two concurrent sessions of ONE algorithm object, fed alternately from
  // two different universes, must each reproduce their solo run — the
  // substrate for a sharded dispatcher running many live sessions off one
  // configured algorithm.
  const Universe first = MakeUniverse(311);
  const Universe second = MakeUniverse(1229);
  auto algorithm = CreateAlgorithm(GetParam(), first.deps);
  ASSERT_TRUE(algorithm.ok());
  // The second universe's POLAR family needs its own guide.
  auto second_algorithm = CreateAlgorithm(GetParam(), second.deps);
  ASSERT_TRUE(second_algorithm.ok());

  RunTrace solo_first_trace;
  const Assignment solo_first =
      (*algorithm)->Run(first.instance, &solo_first_trace);
  RunTrace solo_second_trace;
  const Assignment solo_second =
      (*second_algorithm)->Run(second.instance, &solo_second_trace);

  std::unique_ptr<AssignmentSession> session_a =
      (*algorithm)->StartSession(first.instance);
  std::unique_ptr<AssignmentSession> session_b =
      (*second_algorithm)->StartSession(second.instance);
  const std::vector<ArrivalEvent> events_a =
      BuildArrivalStream(first.instance);
  const std::vector<ArrivalEvent> events_b =
      BuildArrivalStream(second.instance);
  const size_t steps = std::max(events_a.size(), events_b.size());
  for (size_t i = 0; i < steps; ++i) {
    for (const auto& [events, session] :
         {std::make_pair(&events_a, session_a.get()),
          std::make_pair(&events_b, session_b.get())}) {
      if (i >= events->size()) continue;
      const ArrivalEvent& event = (*events)[i];
      if (event.kind == ObjectKind::kWorker) {
        session->OnWorker(event.index, event.time);
      } else {
        session->OnTask(event.index, event.time);
      }
    }
  }
  const SessionResult result_a = session_a->Finish();
  const SessionResult result_b = session_b->Finish();
  ExpectIdenticalRun(solo_first, solo_first_trace, result_a.assignment,
                  result_a.trace,
                  std::string(GetParam()) + " interleaved A");
  ExpectIdenticalRun(solo_second, solo_second_trace, result_b.assignment,
                  result_b.trace,
                  std::string(GetParam()) + " interleaved B");
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SessionEquivalenceTest,
                         ::testing::Values("simple-greedy", "gr", "tgoa",
                                           "polar", "polar-op", "polar-op-g",
                                           "opt"),
                         [](const auto& tpi) {
                           std::string name = tpi.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(SessionEquivalenceTest, ParameterListCoversTheWholeRegistry) {
  // If a new algorithm joins the registry, the INSTANTIATE list above must
  // grow with it.
  EXPECT_EQ(AllAlgorithmNames(),
            (std::vector<std::string>{"simple-greedy", "gr", "tgoa", "polar",
                                      "polar-op", "polar-op-g", "opt"}));
}

TEST(SessionEquivalenceTest, RebuildModesStreamIdentically) {
  // The reference (non-incremental) modes of TGOA and GR go through the
  // same session machinery; cover them too.
  const Universe universe = MakeUniverse(47);
  AlgorithmDeps deps = universe.deps;
  deps.tgoa_options.incremental_matching = false;
  deps.gr_options.incremental_matching = false;
  for (const char* name : {"tgoa", "gr"}) {
    auto algorithm = CreateAlgorithm(name, deps);
    ASSERT_TRUE(algorithm.ok());
    RunTrace batch_trace;
    const Assignment batch =
        (*algorithm)->Run(universe.instance, &batch_trace);
    EXPECT_GT(batch_trace.matcher_rebuilds, 0) << name;
    const SessionResult streamed =
        DriveByHand(algorithm->get(), universe.instance, /*advance=*/true);
    ExpectIdenticalRun(batch, batch_trace, streamed.assignment, streamed.trace,
                    std::string(name) + " rebuild mode");
  }
}

TEST(AlgorithmRegistryTest, RoundTripsEveryName) {
  const Universe universe = MakeUniverse(7);
  for (const std::string& name : AllAlgorithmNames()) {
    auto algorithm = CreateAlgorithm(name, universe.deps);
    ASSERT_TRUE(algorithm.ok()) << name;
    // The constructed default configuration reports the display name the
    // registry advertises without construction.
    EXPECT_EQ((*algorithm)->name(), AlgorithmDisplayName(name)) << name;
    // Every registry algorithm can open a session immediately, and a
    // session fed no arrivals matches nothing — including OPT, whose
    // buffering session solves over the *fed* sub-universe (the contract
    // the sharded dispatcher relies on to keep per-shard OPT solves
    // disjoint).
    std::unique_ptr<AssignmentSession> session =
        (*algorithm)->StartSession(universe.instance);
    const SessionResult result = session->Finish();
    EXPECT_EQ(result.assignment.size(), 0u)
        << name << " (no arrivals fed)";
  }
}

TEST(AlgorithmRegistryTest, UnknownNameListsTheValidSet) {
  const auto result = CreateAlgorithm("no-such-algorithm");
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("unknown algorithm"), std::string::npos) << message;
  for (const std::string& name : AllAlgorithmNames()) {
    EXPECT_NE(message.find(name), std::string::npos) << message;
  }
}

TEST(AlgorithmRegistryTest, GuideRequirementIsEnforced) {
  for (const std::string& name : AllAlgorithmNames()) {
    const auto without_guide = CreateAlgorithm(name);
    EXPECT_EQ(without_guide.ok(), !AlgorithmNeedsGuide(name)) << name;
  }
  EXPECT_TRUE(AlgorithmNeedsGuide("polar"));
  EXPECT_TRUE(AlgorithmNeedsGuide("polar-op"));
  EXPECT_TRUE(AlgorithmNeedsGuide("polar-op-g"));
  EXPECT_FALSE(AlgorithmNeedsGuide("simple-greedy"));
  EXPECT_FALSE(AlgorithmNeedsGuide("no-such-algorithm"));
  EXPECT_EQ(AlgorithmDisplayName("no-such-algorithm"), "");
}

TEST(AlgorithmRegistryTest, DepsOptionsReachTheAlgorithms) {
  AlgorithmDeps deps;
  deps.simple_greedy_options.use_spatial_index = true;
  auto greedy = CreateAlgorithm("simple-greedy", deps);
  ASSERT_TRUE(greedy.ok());
  EXPECT_EQ((*greedy)->name(), "SimpleGreedy-Idx");
}

}  // namespace
}  // namespace ftoa
