// Edge-case behaviour of the POLAR family beyond the happy paths: cross-
// slot guide edges, task-before-worker arrivals, degenerate guides, and
// occupancy-order effects that the algorithms' O(1) bookkeeping must get
// right.

#include <gtest/gtest.h>

#include <memory>

#include "core/polar.h"
#include "core/polar_op.h"
#include "model/instance.h"

namespace ftoa {
namespace {

/// One-cell, two-slot world for hand-built guides.
SpacetimeSpec TwoSlotWorld() {
  return SpacetimeSpec(SlotSpec(10.0, 2), GridSpec(4.0, 4.0, 1, 1));
}

TEST(PolarEdgeCaseTest, TaskArrivingBeforeWorkerStillMatches) {
  // The guide pairs a slot-0 task with a slot-1 worker: the task occupies
  // first and waits; the worker's arrival completes the pair.
  const SpacetimeSpec st = TwoSlotWorld();
  std::vector<Worker> workers(1);
  workers[0] = {0, {1.0, 1.0}, 6.0, 4.0};  // Slot 1.
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 2.0, 8.0};  // Slot 0, generous deadline.
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));

  auto guide = std::make_shared<OfflineGuide>(st, 1.0, 4.0, 8.0);
  const GuideNodeId w = guide->AddWorkerNode(st.TypeAt(1, 0));
  const GuideNodeId r = guide->AddTaskNode(st.TypeAt(0, 0));
  ASSERT_TRUE(guide->MatchNodes(w, r).ok());

  Polar polar(guide);
  const Assignment a = polar.Run(instance);
  ASSERT_EQ(a.size(), 1u);
  // Matched at the worker's (later) arrival.
  EXPECT_DOUBLE_EQ(a.pairs()[0].time, 6.0);

  PolarOp polar_op(guide);
  EXPECT_EQ(polar_op.Run(instance).size(), 1u);
}

TEST(PolarEdgeCaseTest, GuideWithOnlyUnmatchedNodesMatchesNothing) {
  const SpacetimeSpec st = TwoSlotWorld();
  std::vector<Worker> workers(2);
  workers[0] = {0, {1.0, 1.0}, 1.0, 5.0};
  workers[1] = {1, {1.0, 1.0}, 2.0, 5.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 1.5, 5.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));

  // Nodes exist but Ĝf matched none of them.
  auto guide = std::make_shared<OfflineGuide>(st, 1.0, 5.0, 5.0);
  guide->AddWorkerNode(st.TypeAt(0, 0));
  guide->AddTaskNode(st.TypeAt(0, 0));

  Polar polar(guide);
  PolarOp polar_op(guide);
  EXPECT_EQ(polar.Run(instance).size(), 0u);
  EXPECT_EQ(polar_op.Run(instance).size(), 0u);
}

TEST(PolarEdgeCaseTest, PolarOccupancyIsFirstComeFirstServed) {
  // Two guide nodes of the worker type, only the first matched in Ĝf.
  // POLAR hands nodes out in creation order, so the *first* arriving
  // worker gets the matched node.
  const SpacetimeSpec st = TwoSlotWorld();
  std::vector<Worker> workers(2);
  workers[0] = {0, {1.0, 1.0}, 1.0, 8.0};
  workers[1] = {1, {1.0, 1.0}, 2.0, 8.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 3.0, 6.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));

  auto guide = std::make_shared<OfflineGuide>(st, 1.0, 8.0, 6.0);
  const GuideNodeId w0 = guide->AddWorkerNode(st.TypeAt(0, 0));
  guide->AddWorkerNode(st.TypeAt(0, 0));  // Unmatched second node.
  const GuideNodeId r = guide->AddTaskNode(st.TypeAt(0, 0));
  ASSERT_TRUE(guide->MatchNodes(w0, r).ok());

  Polar polar(guide);
  const Assignment a = polar.Run(instance);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.MatchOfTask(0), 0);  // The first worker, not the second.
}

TEST(PolarEdgeCaseTest, PolarOpRoundRobinAlternatesNodes) {
  // Two matched edges of the same worker/task types: round-robin must
  // spread four workers over both nodes so both edges realize.
  const SpacetimeSpec st = TwoSlotWorld();
  std::vector<Worker> workers(2);
  workers[0] = {0, {1.0, 1.0}, 1.0, 8.0};
  workers[1] = {1, {1.0, 1.0}, 2.0, 8.0};
  std::vector<Task> tasks(2);
  tasks[0] = {0, {1.0, 1.0}, 3.0, 6.0};
  tasks[1] = {1, {1.0, 1.0}, 4.0, 6.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));

  auto guide = std::make_shared<OfflineGuide>(st, 1.0, 8.0, 6.0);
  const GuideNodeId w0 = guide->AddWorkerNode(st.TypeAt(0, 0));
  const GuideNodeId w1 = guide->AddWorkerNode(st.TypeAt(0, 0));
  const GuideNodeId r0 = guide->AddTaskNode(st.TypeAt(0, 0));
  const GuideNodeId r1 = guide->AddTaskNode(st.TypeAt(0, 0));
  ASSERT_TRUE(guide->MatchNodes(w0, r0).ok());
  ASSERT_TRUE(guide->MatchNodes(w1, r1).ok());

  PolarOp polar_op(guide);
  const Assignment a = polar_op.Run(instance);
  EXPECT_EQ(a.size(), 2u);
  // Round-robin: worker 0 -> node 0 -> task node 0's queue; task 0 ->
  // node r0 -> matches worker 0. Worker 1 -> node 1; task 1 -> r1 ->
  // worker 1.
  EXPECT_EQ(a.MatchOfTask(0), 0);
  EXPECT_EQ(a.MatchOfTask(1), 1);
}

TEST(PolarEdgeCaseTest, EmptyInstanceAgainstNonEmptyGuide) {
  const SpacetimeSpec st = TwoSlotWorld();
  const Instance instance(st, 1.0, {}, {});
  auto guide = std::make_shared<OfflineGuide>(st, 1.0, 5.0, 5.0);
  ASSERT_TRUE(guide
                  ->MatchNodes(guide->AddWorkerNode(st.TypeAt(0, 0)),
                               guide->AddTaskNode(st.TypeAt(0, 0)))
                  .ok());
  Polar polar(guide);
  PolarOp polar_op(guide);
  EXPECT_EQ(polar.Run(instance).size(), 0u);
  EXPECT_EQ(polar_op.Run(instance).size(), 0u);
}

TEST(PolarEdgeCaseTest, ManyObjectsOneNodePolarOpChains) {
  // 5 workers and 5 tasks alternate on a single matched edge: POLAR-OP
  // reuses the edge five times, POLAR once.
  const SpacetimeSpec st = TwoSlotWorld();
  std::vector<Worker> workers(5);
  std::vector<Task> tasks(5);
  for (int i = 0; i < 5; ++i) {
    workers[static_cast<size_t>(i)] = {i, {1.0, 1.0}, 0.2 + i, 9.0};
    tasks[static_cast<size_t>(i)] = {i, {1.0, 1.0}, 0.5 + i, 9.0};
  }
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));

  auto guide = std::make_shared<OfflineGuide>(st, 1.0, 9.0, 9.0);
  ASSERT_TRUE(guide
                  ->MatchNodes(guide->AddWorkerNode(st.TypeAt(0, 0)),
                               guide->AddTaskNode(st.TypeAt(0, 0)))
                  .ok());
  Polar polar(guide);
  PolarOp polar_op(guide);
  EXPECT_EQ(polar.Run(instance).size(), 1u);
  EXPECT_EQ(polar_op.Run(instance).size(), 5u);
}

}  // namespace
}  // namespace ftoa
