#include "model/arrival_stream.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ftoa {
namespace {

TEST(ArrivalStreamTest, SortedByTime) {
  const Instance instance = ftoa::testing::MakeExample1Instance();
  const auto events = BuildArrivalStream(instance);
  ASSERT_EQ(events.size(), 13u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
}

TEST(ArrivalStreamTest, WorkersPrecedeTasksOnTies) {
  // w1 and r1 both arrive at t = 0 (paper Table 1: 9:00); the worker is
  // processed first.
  const Instance instance = ftoa::testing::MakeExample1Instance();
  const auto events = BuildArrivalStream(instance);
  EXPECT_EQ(events[0].kind, ObjectKind::kWorker);
  EXPECT_EQ(events[0].index, 0);
  EXPECT_EQ(events[1].kind, ObjectKind::kTask);
  EXPECT_EQ(events[1].index, 0);
}

TEST(ArrivalStreamTest, TieBreakByIndexWithinKind) {
  // w2 and w3 both arrive at t = 1.
  const Instance instance = ftoa::testing::MakeExample1Instance();
  const auto events = BuildArrivalStream(instance);
  EXPECT_EQ(events[2].index, 1);
  EXPECT_EQ(events[3].index, 2);
}

TEST(ArrivalStreamTest, MatchesTable1Order) {
  const Instance instance = ftoa::testing::MakeExample1Instance();
  const auto events = BuildArrivalStream(instance);
  // Table 1: w1 r1 w2 w3 r2 w4 w5 w6 w7 r3 r4 r5 r6.
  const std::vector<std::pair<ObjectKind, int32_t>> expected = {
      {ObjectKind::kWorker, 0}, {ObjectKind::kTask, 0},
      {ObjectKind::kWorker, 1}, {ObjectKind::kWorker, 2},
      {ObjectKind::kTask, 1},   {ObjectKind::kWorker, 3},
      {ObjectKind::kWorker, 4}, {ObjectKind::kWorker, 5},
      {ObjectKind::kWorker, 6}, {ObjectKind::kTask, 2},
      {ObjectKind::kTask, 3},   {ObjectKind::kTask, 4},
      {ObjectKind::kTask, 5}};
  ASSERT_EQ(events.size(), expected.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, expected[i].first) << "at " << i;
    EXPECT_EQ(events[i].index, expected[i].second) << "at " << i;
  }
}

TEST(ArrivalStreamTest, EmptyInstance) {
  const Instance instance(
      SpacetimeSpec(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 2, 2)), 1.0, {},
      {});
  EXPECT_TRUE(BuildArrivalStream(instance).empty());
}

}  // namespace
}  // namespace ftoa
