#include "model/feasibility.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ftoa {
namespace {

Worker MakeWorker(Point loc, double start, double duration) {
  return Worker{0, loc, start, duration};
}

Task MakeTask(Point loc, double start, double duration) {
  return Task{0, loc, start, duration};
}

TEST(TravelTimeTest, ScalesWithVelocity) {
  EXPECT_DOUBLE_EQ(TravelTime({0.0, 0.0}, {3.0, 4.0}, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(TravelTime({0.0, 0.0}, {3.0, 4.0}, 2.5), 2.0);
}

TEST(FeasibilityTest, Condition1TaskMustAppearBeforeWorkerLeaves) {
  const Worker w = MakeWorker({0.0, 0.0}, 0.0, 5.0);
  // Task released exactly at the worker deadline: Sr < Sw + Dw is strict.
  const Task late = MakeTask({0.0, 0.0}, 5.0, 10.0);
  EXPECT_FALSE(CanServe(w, late, 1.0,
                        FeasibilityPolicy::kDispatchAtWorkerStart));
  const Task ok = MakeTask({0.0, 0.0}, 4.999, 10.0);
  EXPECT_TRUE(CanServe(w, ok, 1.0,
                       FeasibilityPolicy::kDispatchAtWorkerStart));
}

TEST(FeasibilityTest, PaperFormulaWorkerAfterTask) {
  // Sw > Sr: Dr - (Sw - Sr) - d >= 0.
  const Task r = MakeTask({0.0, 0.0}, 0.0, 5.0);
  const Worker near = MakeWorker({3.0, 0.0}, 1.0, 10.0);
  // 5 - 1 - 3 = 1 >= 0.
  EXPECT_TRUE(CanServe(near, r, 1.0,
                       FeasibilityPolicy::kDispatchAtWorkerStart));
  const Worker far = MakeWorker({5.0, 0.0}, 1.0, 10.0);
  // 5 - 1 - 5 = -1 < 0.
  EXPECT_FALSE(CanServe(far, r, 1.0,
                        FeasibilityPolicy::kDispatchAtWorkerStart));
}

TEST(FeasibilityTest, WorkerStartPolicyCreditsPreMovement) {
  // Worker appears before the task; Definition 4 credits travel from Sw.
  const Worker w = MakeWorker({0.0, 0.0}, 0.0, 10.0);
  const Task r = MakeTask({4.0, 0.0}, 3.0, 2.0);
  // Dr - (Sw - Sr) - d = 2 + 3 - 4 = 1 >= 0.
  EXPECT_TRUE(CanServe(w, r, 1.0,
                       FeasibilityPolicy::kDispatchAtWorkerStart));
  // Wait-in-place: departs at Sr = 3, arrives 7 > deadline 5.
  EXPECT_FALSE(CanServe(w, r, 1.0,
                        FeasibilityPolicy::kDispatchAtAssignmentTime));
}

TEST(FeasibilityTest, PoliciesAgreeWhenWorkerArrivesSecond) {
  // Sw >= Sr: departure time is Sw under both policies.
  const Task r = MakeTask({0.0, 0.0}, 0.0, 6.0);
  const Worker w = MakeWorker({4.0, 0.0}, 2.0, 10.0);
  EXPECT_TRUE(CanServe(w, r, 1.0,
                       FeasibilityPolicy::kDispatchAtWorkerStart));
  EXPECT_TRUE(CanServe(w, r, 1.0,
                       FeasibilityPolicy::kDispatchAtAssignmentTime));
  const Worker too_far = MakeWorker({5.0, 0.0}, 2.0, 10.0);
  EXPECT_FALSE(CanServe(too_far, r, 1.0,
                        FeasibilityPolicy::kDispatchAtWorkerStart));
  EXPECT_FALSE(CanServe(too_far, r, 1.0,
                        FeasibilityPolicy::kDispatchAtAssignmentTime));
}

TEST(FeasibilityTest, WorkerStartNeverStricterThanAssignmentTime) {
  // Property on a small grid of parameter combinations: the worker-start
  // policy dominates (any assignment-time-feasible pair is worker-start
  // feasible).
  for (double sw : {0.0, 1.0, 3.0}) {
    for (double sr : {0.0, 2.0, 4.0}) {
      for (double d : {0.5, 2.0, 5.0}) {
        for (double dr : {1.0, 3.0}) {
          const Worker w = MakeWorker({0.0, 0.0}, sw, 6.0);
          const Task r = MakeTask({d, 0.0}, sr, dr);
          const bool at_assignment = CanServe(
              w, r, 1.0, FeasibilityPolicy::kDispatchAtAssignmentTime);
          const bool at_start = CanServe(
              w, r, 1.0, FeasibilityPolicy::kDispatchAtWorkerStart);
          if (at_assignment) {
            EXPECT_TRUE(at_start);
          }
        }
      }
    }
  }
}

TEST(FeasibilityTest, VelocityScalesReach) {
  const Task r = MakeTask({10.0, 0.0}, 0.0, 2.0);
  const Worker w = MakeWorker({0.0, 0.0}, 0.0, 5.0);
  EXPECT_FALSE(
      CanServe(w, r, 1.0, FeasibilityPolicy::kDispatchAtWorkerStart));
  EXPECT_TRUE(
      CanServe(w, r, 5.0, FeasibilityPolicy::kDispatchAtWorkerStart));
}

TEST(FeasibilityTest, Example1Pairs) {
  // Checks Definition 4 on the paper's running example (see DESIGN.md):
  // the offline-optimal matching of Figure 1c is feasible.
  const Instance instance = ftoa::testing::MakeExample1Instance();
  const auto policy = FeasibilityPolicy::kDispatchAtWorkerStart;
  const double v = instance.velocity();
  // w1 -> r1, w3 -> r2, w4 -> r3, w5 -> r4, w6 -> r5, w7 -> r6.
  EXPECT_TRUE(CanServe(instance.worker(0), instance.task(0), v, policy));
  EXPECT_TRUE(CanServe(instance.worker(2), instance.task(1), v, policy));
  EXPECT_TRUE(CanServe(instance.worker(3), instance.task(2), v, policy));
  EXPECT_TRUE(CanServe(instance.worker(4), instance.task(3), v, policy));
  EXPECT_TRUE(CanServe(instance.worker(5), instance.task(4), v, policy));
  EXPECT_TRUE(CanServe(instance.worker(6), instance.task(5), v, policy));
  // w2 cannot serve r2 (5 - (1-2) - sqrt(10) < 0 is false: check).
  EXPECT_FALSE(CanServe(instance.worker(1), instance.task(1), v, policy));
}

TEST(FeasibilityTest, MaxFeasibleDistanceBound) {
  // No feasible pair may be farther apart than the bound.
  const double bound = MaxFeasibleDistance(2.0, 3.0, 1.5);
  EXPECT_DOUBLE_EQ(bound, 7.5);
  const Worker w = MakeWorker({0.0, 0.0}, 0.0, 3.0);
  const Task r = MakeTask({bound + 0.1, 0.0}, 2.9, 2.0);
  EXPECT_FALSE(
      CanServe(w, r, 1.5, FeasibilityPolicy::kDispatchAtWorkerStart));
}

}  // namespace
}  // namespace ftoa
