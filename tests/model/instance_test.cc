#include "model/instance.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

TEST(InstanceTest, IdsAssignedFromIndices) {
  const Instance instance = MakeExample1Instance();
  for (size_t i = 0; i < instance.num_workers(); ++i) {
    EXPECT_EQ(instance.workers()[i].id, static_cast<WorkerId>(i));
  }
  for (size_t i = 0; i < instance.num_tasks(); ++i) {
    EXPECT_EQ(instance.tasks()[i].id, static_cast<TaskId>(i));
  }
}

TEST(InstanceTest, ValidatesCleanInstance) {
  const Instance instance = MakeExample1Instance();
  EXPECT_TRUE(instance.Validate().ok());
}

TEST(InstanceTest, RejectsNegativeTimes) {
  std::vector<Worker> workers(1);
  workers[0] = {0, {1.0, 1.0}, -1.0, 2.0};
  const Instance instance(
      SpacetimeSpec(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 2, 2)), 1.0,
      std::move(workers), {});
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(InstanceTest, RejectsStartBeyondHorizon) {
  std::vector<Task> tasks(1);
  tasks[0] = {0, {1.0, 1.0}, 100.0, 2.0};
  const Instance instance(
      SpacetimeSpec(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 2, 2)), 1.0, {},
      std::move(tasks));
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(InstanceTest, RejectsNonPositiveVelocity) {
  const Instance instance(
      SpacetimeSpec(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 2, 2)), 0.0, {},
      {});
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(InstanceTest, MaxDurations) {
  const Instance instance = MakeExample1Instance();
  EXPECT_DOUBLE_EQ(instance.MaxTaskDuration(), 2.0);
  EXPECT_DOUBLE_EQ(instance.MaxWorkerDuration(), 30.0);
}

TEST(InstanceTest, CountsPerTypeMatchExample1) {
  const Instance instance = MakeExample1Instance();
  const auto [workers, tasks] = instance.CountsPerType();
  const SpacetimeSpec& st = instance.spacetime();
  // Cell ids on the 2x2 grid: 0 = bottom-left, 1 = bottom-right,
  // 2 = top-left, 3 = top-right. All workers arrive in slot 0:
  // w1, w2, w3 top-left; w4..w7 top-right.
  EXPECT_EQ(workers[static_cast<size_t>(st.TypeAt(0, 2))], 3);
  EXPECT_EQ(workers[static_cast<size_t>(st.TypeAt(0, 3))], 4);
  // Tasks: r1, r2 in slot 0 top-left; r3..r6 in slot 1 bottom-right.
  EXPECT_EQ(tasks[static_cast<size_t>(st.TypeAt(0, 2))], 2);
  EXPECT_EQ(tasks[static_cast<size_t>(st.TypeAt(1, 1))], 4);
  // Totals add up.
  int worker_total = 0;
  int task_total = 0;
  for (int c : workers) worker_total += c;
  for (int c : tasks) task_total += c;
  EXPECT_EQ(worker_total, 7);
  EXPECT_EQ(task_total, 6);
}

}  // namespace
}  // namespace ftoa
