#include "model/assignment.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

TEST(AssignmentTest, AddAndQuery) {
  Assignment assignment(3, 3);
  EXPECT_TRUE(assignment.Add(0, 1, 5.0).ok());
  EXPECT_EQ(assignment.size(), 1u);
  EXPECT_TRUE(assignment.IsWorkerMatched(0));
  EXPECT_TRUE(assignment.IsTaskMatched(1));
  EXPECT_FALSE(assignment.IsWorkerMatched(1));
  EXPECT_EQ(assignment.MatchOfWorker(0), 1);
  EXPECT_EQ(assignment.MatchOfTask(1), 0);
  EXPECT_EQ(assignment.MatchOfWorker(2), -1);
}

TEST(AssignmentTest, InvariableConstraintRejectsRematch) {
  Assignment assignment(3, 3);
  ASSERT_TRUE(assignment.Add(0, 1, 0.0).ok());
  EXPECT_TRUE(assignment.Add(0, 2, 1.0).IsFailedPrecondition());
  EXPECT_FALSE(assignment.Add(1, 1, 1.0).ok());
  EXPECT_EQ(assignment.size(), 1u);
}

TEST(AssignmentTest, RejectsOutOfRangeIds) {
  Assignment assignment(2, 2);
  EXPECT_FALSE(assignment.Add(-1, 0, 0.0).ok());
  EXPECT_FALSE(assignment.Add(0, 5, 0.0).ok());
  EXPECT_FALSE(assignment.Add(2, 0, 0.0).ok());
}

TEST(AssignmentTest, PairsRecordDecisionTime) {
  Assignment assignment(2, 2);
  ASSERT_TRUE(assignment.Add(1, 0, 7.25).ok());
  ASSERT_EQ(assignment.pairs().size(), 1u);
  EXPECT_EQ(assignment.pairs()[0].worker, 1);
  EXPECT_EQ(assignment.pairs()[0].task, 0);
  EXPECT_DOUBLE_EQ(assignment.pairs()[0].time, 7.25);
}

TEST(AssignmentTest, ValidateAcceptsFeasiblePairs) {
  const Instance instance = MakeExample1Instance();
  Assignment assignment(instance.num_workers(), instance.num_tasks());
  ASSERT_TRUE(assignment.Add(0, 0, 0.0).ok());  // w1 -> r1, d = 2 = Dr.
  EXPECT_TRUE(assignment
                  .Validate(instance,
                            FeasibilityPolicy::kDispatchAtWorkerStart)
                  .ok());
}

TEST(AssignmentTest, ValidateRejectsInfeasiblePair) {
  const Instance instance = MakeExample1Instance();
  Assignment assignment(instance.num_workers(), instance.num_tasks());
  // w2 (1,8) appears at t = 1 and cannot reach r1 (3,6) by its deadline:
  // 2 - (1 - 0) - sqrt(8) < 0.
  ASSERT_TRUE(assignment.Add(1, 0, 1.0).ok());
  EXPECT_FALSE(assignment
                   .Validate(instance,
                             FeasibilityPolicy::kDispatchAtWorkerStart)
                   .ok());
}

TEST(AssignmentTest, ValidateChecksSizeCoherence) {
  const Instance instance = MakeExample1Instance();
  Assignment assignment(2, 2);  // Wrong dimensions.
  EXPECT_FALSE(assignment
                   .Validate(instance,
                             FeasibilityPolicy::kDispatchAtWorkerStart)
                   .ok());
}

}  // namespace
}  // namespace ftoa
