#include "model/io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "gen/synthetic.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(InstanceIoTest, RoundTripExample1) {
  const Instance original = MakeExample1Instance();
  const std::string path = TempPath("ftoa_io_example1.csv");
  ASSERT_TRUE(SaveInstanceCsv(original, path).ok());
  const auto loaded = LoadInstanceCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->num_workers(), original.num_workers());
  ASSERT_EQ(loaded->num_tasks(), original.num_tasks());
  EXPECT_DOUBLE_EQ(loaded->velocity(), original.velocity());
  for (size_t i = 0; i < original.num_workers(); ++i) {
    EXPECT_EQ(loaded->workers()[i].location,
              original.workers()[i].location);
    EXPECT_DOUBLE_EQ(loaded->workers()[i].start,
                     original.workers()[i].start);
    EXPECT_DOUBLE_EQ(loaded->workers()[i].duration,
                     original.workers()[i].duration);
  }
  for (size_t i = 0; i < original.num_tasks(); ++i) {
    EXPECT_EQ(loaded->tasks()[i].location, original.tasks()[i].location);
    EXPECT_DOUBLE_EQ(loaded->tasks()[i].start, original.tasks()[i].start);
  }
  const GridSpec& grid = loaded->spacetime().grid();
  EXPECT_EQ(grid.cells_x(), 2);
  EXPECT_EQ(grid.cells_y(), 2);
  EXPECT_DOUBLE_EQ(grid.width(), 8.0);
  EXPECT_EQ(loaded->spacetime().slots().num_slots(), 2);
  std::remove(path.c_str());
}

TEST(InstanceIoTest, RoundTripSyntheticPreservesBitExactDoubles) {
  SyntheticConfig config;
  config.num_workers = 200;
  config.num_tasks = 200;
  config.grid_x = 10;
  config.grid_y = 10;
  config.num_slots = 8;
  config.seed = 321;
  const auto original = GenerateSyntheticInstance(config);
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("ftoa_io_synth.csv");
  ASSERT_TRUE(SaveInstanceCsv(*original, path).ok());
  const auto loaded = LoadInstanceCsv(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < original->num_workers(); ++i) {
    // %.17g round-trips IEEE doubles exactly.
    EXPECT_EQ(loaded->workers()[i].location.x,
              original->workers()[i].location.x);
    EXPECT_EQ(loaded->workers()[i].start, original->workers()[i].start);
  }
  std::remove(path.c_str());
}

TEST(InstanceIoTest, RejectsMissingFile) {
  EXPECT_FALSE(LoadInstanceCsv("/nonexistent/instance.csv").ok());
}

TEST(InstanceIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("ftoa_io_magic.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not-an-instance,1\nspec,1,1,1,1,1,1,1\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadInstanceCsv(path).ok());
  std::remove(path.c_str());
}

TEST(InstanceIoTest, RejectsUnsupportedVersion) {
  const std::string path = TempPath("ftoa_io_version.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("ftoa-instance,99\nspec,1,1,1,1,1,1,1\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadInstanceCsv(path).ok());
  std::remove(path.c_str());
}

TEST(InstanceIoTest, RejectsMalformedRecord) {
  const std::string path = TempPath("ftoa_io_malformed.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs(
      "ftoa-instance,1\n"
      "spec,8,8,2,2,10,2,1\n"
      "worker,1.0,2.0,0.5\n",  // Missing the duration column.
      f);
  std::fclose(f);
  EXPECT_FALSE(LoadInstanceCsv(path).ok());
  std::remove(path.c_str());
}

TEST(InstanceIoTest, RejectsInvalidSpec) {
  const std::string path = TempPath("ftoa_io_badspec.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("ftoa-instance,1\nspec,-8,8,2,2,10,2,1\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadInstanceCsv(path).ok());
  std::remove(path.c_str());
}

TEST(InstanceIoTest, EmptyInstanceRoundTrips) {
  const Instance empty(
      SpacetimeSpec(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 2, 2)), 1.5, {},
      {});
  const std::string path = TempPath("ftoa_io_empty.csv");
  ASSERT_TRUE(SaveInstanceCsv(empty, path).ok());
  const auto loaded = LoadInstanceCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_workers(), 0u);
  EXPECT_EQ(loaded->num_tasks(), 0u);
  EXPECT_DOUBLE_EQ(loaded->velocity(), 1.5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ftoa
