// Property suite for post-merge boundary reconciliation
// (sim/boundary_reconciler) through the sharded dispatcher: reconciled
// runs only *add* pairs (the base merge is a strict prefix), every added
// pair joins previously-unmatched objects from different shards and
// satisfies the algorithm's object-level deadline policy (guide-capacity-
// aware for the POLAR family), the pass is bit-identical across thread
// counts and reruns, and it degenerates to a no-op at one shard. The
// *Stress* sweep crosses MakeFuzzInstance arrival patterns x routers x
// handoff batch sizes (FTOA_STRESS_ITERS widens it).

#include "sim/boundary_reconciler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/algorithm_registry.h"
#include "sim/runner.h"
#include "sim/sharded_dispatcher.h"
#include "test_util.h"
#include "util/rng.h"

namespace ftoa {
namespace {

using ::ftoa::testing::AllArrivalPatterns;
using ::ftoa::testing::ArrivalPattern;
using ::ftoa::testing::ArrivalPatternName;
using ::ftoa::testing::ExpectIdenticalRun;
using ::ftoa::testing::FuzzUniverse;
using ::ftoa::testing::MakeFuzzUniverse;
using ::ftoa::testing::StressIterations;

using Universe = FuzzUniverse;

/// Runs the same sharded configuration twice — reconciliation off and on —
/// and checks the full reconciliation contract against the base run.
void ExpectReconcileContract(const Universe& universe,
                             const std::string& algorithm_name,
                             ShardedOptions options,
                             const std::string& label) {
  options.algorithm = algorithm_name;
  options.reconcile = false;
  auto base_dispatcher = ShardedDispatcher::Create(options, universe.deps);
  ASSERT_TRUE(base_dispatcher.ok()) << base_dispatcher.status().ToString();
  auto base = (*base_dispatcher)->Run(universe.instance);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ(base->metrics.reconciled_pairs, 0) << label;

  options.reconcile = true;
  auto dispatcher = ShardedDispatcher::Create(options, universe.deps);
  ASSERT_TRUE(dispatcher.ok()) << dispatcher.status().ToString();
  auto reconciled = (*dispatcher)->Run(universe.instance);
  ASSERT_TRUE(reconciled.ok()) << reconciled.status().ToString();

  // Never unmatch: the base merge is a literal prefix of the reconciled
  // pair list, and the traces agree (reconciliation decides nothing
  // through the sessions).
  ASSERT_GE(reconciled->assignment.size(), base->assignment.size()) << label;
  for (size_t i = 0; i < base->assignment.pairs().size(); ++i) {
    const MatchedPair& expected = base->assignment.pairs()[i];
    const MatchedPair& got = reconciled->assignment.pairs()[i];
    ASSERT_EQ(expected.worker, got.worker) << label << " pair " << i;
    ASSERT_EQ(expected.task, got.task) << label << " pair " << i;
    ASSERT_EQ(expected.time, got.time) << label << " pair " << i;
  }

  // The algorithm's own policy, guide, and the run's router decide what an
  // added pair must satisfy.
  auto algorithm = CreateAlgorithm(algorithm_name, universe.deps);
  ASSERT_TRUE(algorithm.ok()) << algorithm.status().ToString();
  const FeasibilityPolicy policy = (*algorithm)->feasibility_policy();
  const OfflineGuide* guide = (*algorithm)->guide();
  const std::unique_ptr<ShardRouter> router = MakeShardRouter(
      options.router, universe.instance, options.num_shards);

  std::unordered_map<int64_t, int32_t> capacity;
  if (guide != nullptr) capacity = guide->MatchedPairCountsByTypePair();

  const size_t added =
      reconciled->assignment.size() - base->assignment.size();
  EXPECT_EQ(reconciled->reconcile.recovered_pairs,
            static_cast<int64_t>(added))
      << label;
  EXPECT_EQ(reconciled->metrics.reconciled_pairs,
            static_cast<int64_t>(added))
      << label;
  EXPECT_EQ(reconciled->metrics.matching_size,
            static_cast<int64_t>(reconciled->assignment.size()))
      << label;

  for (size_t i = base->assignment.pairs().size();
       i < reconciled->assignment.pairs().size(); ++i) {
    const MatchedPair& pair = reconciled->assignment.pairs()[i];
    const Worker& w = universe.instance.worker(pair.worker);
    const Task& r = universe.instance.task(pair.task);
    // Both endpoints were left unmatched by the base run ...
    EXPECT_FALSE(base->assignment.IsWorkerMatched(pair.worker))
        << label << " pair " << i;
    EXPECT_FALSE(base->assignment.IsTaskMatched(pair.task))
        << label << " pair " << i;
    // ... live in *different* shards (same-shard leftovers are the
    // per-shard algorithm's own decisions and stay untouched) ...
    EXPECT_NE(router->Route(ObjectKind::kWorker, w.id, w.location),
              router->Route(ObjectKind::kTask, r.id, r.location))
        << label << " pair " << i;
    // ... and satisfy the algorithm's object-level deadline policy.
    EXPECT_TRUE(CanServe(w, r, universe.instance.velocity(), policy))
        << label << " pair " << i;
    // Guide-capacity awareness: consume the matched-pair multiplicity of
    // the pair's (worker type, task type); running dry would mean the
    // reconciler over-spent the guide.
    if (guide != nullptr) {
      const SpacetimeSpec& st = guide->spacetime();
      const int64_t key =
          guide->TypePairKey(st.TypeOf(w.location, w.start),
                             st.TypeOf(r.location, r.start));
      ASSERT_GT(capacity[key], 0) << label << " pair " << i;
      --capacity[key];
    }
  }
}

class BoundaryReconcilerTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(BoundaryReconcilerTest, OnlyAddsValidCrossShardPairs) {
  for (const ArrivalPattern pattern :
       {ArrivalPattern::kBursty, ArrivalPattern::kShuffledIds}) {
    const Universe universe = MakeFuzzUniverse(101, pattern);
    for (const int num_shards : {2, 4}) {
      for (const ShardRouterKind router :
           {ShardRouterKind::kGrid, ShardRouterKind::kHash,
            ShardRouterKind::kLoad}) {
        ShardedOptions options;
        options.num_shards = num_shards;
        options.num_threads = num_shards;
        options.router = router;
        ExpectReconcileContract(
            universe, GetParam(), options,
            std::string(GetParam()) + " " + ArrivalPatternName(pattern) +
                " shards=" + std::to_string(num_shards) + " " +
                ShardRouterKindName(router));
      }
    }
  }
}

TEST_P(BoundaryReconcilerTest, NoOpAtOneShard) {
  // A single shard has no border: the reconciled run must stay
  // bit-identical to the unsharded session path, recovered count zero.
  const Universe universe = MakeFuzzUniverse(7, ArrivalPattern::kShuffledIds);
  auto algorithm = CreateAlgorithm(GetParam(), universe.deps);
  ASSERT_TRUE(algorithm.ok()) << algorithm.status().ToString();
  RunTrace solo_trace;
  const Assignment solo = (*algorithm)->Run(universe.instance, &solo_trace);

  ShardedOptions options;
  options.algorithm = GetParam();
  options.num_shards = 1;
  options.reconcile = true;
  auto dispatcher = ShardedDispatcher::Create(options, universe.deps);
  ASSERT_TRUE(dispatcher.ok()) << dispatcher.status().ToString();
  auto result = (*dispatcher)->Run(universe.instance);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectIdenticalRun(solo, solo_trace, result->assignment, result->trace,
                  std::string(GetParam()) + " 1-shard reconcile");
  EXPECT_EQ(result->reconcile.recovered_pairs, 0);
  EXPECT_EQ(result->reconcile.boundary_workers, 0);
  EXPECT_EQ(result->metrics.reconciled_pairs, 0);
}

TEST_P(BoundaryReconcilerTest, ThreadCountDoesNotChangeTheReconciledOutput) {
  const Universe universe = MakeFuzzUniverse(409, ArrivalPattern::kBursty);
  std::unique_ptr<ShardedRunResult> reference;
  for (const int num_threads : {1, 2, 4}) {
    ShardedOptions options;
    options.algorithm = GetParam();
    options.num_shards = 4;
    options.num_threads = num_threads;
    options.reconcile = true;
    auto dispatcher = ShardedDispatcher::Create(options, universe.deps);
    ASSERT_TRUE(dispatcher.ok()) << dispatcher.status().ToString();
    auto result = (*dispatcher)->Run(universe.instance);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (reference == nullptr) {
      reference = std::make_unique<ShardedRunResult>(std::move(*result));
      continue;
    }
    ExpectIdenticalRun(reference->assignment, reference->trace,
                    result->assignment, result->trace,
                    std::string(GetParam()) + " threads=" +
                        std::to_string(num_threads));
    EXPECT_EQ(reference->reconcile.recovered_pairs,
              result->reconcile.recovered_pairs);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BoundaryReconcilerTest,
                         ::testing::Values("simple-greedy", "gr", "tgoa",
                                           "polar", "polar-op", "polar-op-g",
                                           "opt"),
                         [](const auto& tpi) {
                           std::string name = tpi.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(BoundaryReconcilerSuiteTest, RecoversTheForfeitedCrossBoundaryMatch) {
  // One worker below the band cut, one feasible task above it: the 2-shard
  // grid partition forfeits the only possible match, and reconciliation
  // must win exactly it back.
  std::vector<Worker> workers(1);
  workers[0] = {0, {5.0, 2.5}, 0.0, 10.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {5.0, 7.5}, 0.0, 10.0};
  const Instance instance(
      SpacetimeSpec(SlotSpec(10.0, 2), GridSpec(10.0, 10.0, 4, 4)),
      /*velocity=*/2.0, std::move(workers), std::move(tasks));

  ShardedOptions options;
  options.algorithm = "simple-greedy";
  options.num_shards = 2;
  auto base_dispatcher = ShardedDispatcher::Create(options);
  ASSERT_TRUE(base_dispatcher.ok());
  auto base = (*base_dispatcher)->Run(instance);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ(base->assignment.size(), 0u);

  options.reconcile = true;
  auto dispatcher = ShardedDispatcher::Create(options);
  ASSERT_TRUE(dispatcher.ok());
  auto result = (*dispatcher)->Run(instance);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->assignment.size(), 1u);
  EXPECT_EQ(result->assignment.pairs()[0].worker, 0);
  EXPECT_EQ(result->assignment.pairs()[0].task, 0);
  // Decision time: the earliest moment a platform seeing both shards
  // could have committed the pair.
  EXPECT_EQ(result->assignment.pairs()[0].time, 0.0);
  EXPECT_EQ(result->reconcile.recovered_pairs, 1);
  EXPECT_EQ(result->reconcile.boundary_workers, 1);
  EXPECT_EQ(result->reconcile.boundary_tasks, 1);

  // The unsharded algorithm agrees this match exists.
  auto algorithm = CreateAlgorithm("simple-greedy");
  ASSERT_TRUE(algorithm.ok());
  EXPECT_EQ((*algorithm)->Run(instance).size(), 1u);
}

TEST(BoundaryReconcilerSuiteTest, RunnerPlumbsHandoffAndReconcile) {
  const Universe universe = MakeFuzzUniverse(3, ArrivalPattern::kAlternating);
  auto algorithm = CreateAlgorithm("simple-greedy", universe.deps);
  ASSERT_TRUE(algorithm.ok());

  RunnerOptions options;
  options.num_shards = 4;
  options.shard_threads = 2;
  options.shard_handoff_batch = 3;
  options.shard_reconcile = true;
  const auto metrics =
      RunAlgorithm(algorithm->get(), universe.instance, options);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  ShardedOptions sharded;
  sharded.num_shards = 4;
  sharded.num_threads = 2;
  sharded.handoff_batch = 3;
  sharded.reconcile = true;
  ShardedDispatcher dispatcher(algorithm->get(), sharded);
  auto direct = dispatcher.Run(universe.instance);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(metrics->matching_size,
            static_cast<int64_t>(direct->assignment.size()));
  EXPECT_EQ(metrics->reconciled_pairs, direct->reconcile.recovered_pairs);
  EXPECT_GT(metrics->busy_seconds, 0.0);
}

TEST(BoundaryReconcilerSuiteTest, DirectCallRejectsBadOptions) {
  const Universe universe = MakeFuzzUniverse(3, ArrivalPattern::kBursty);
  const std::unique_ptr<ShardRouter> router =
      MakeShardRouter(ShardRouterKind::kGrid, universe.instance, 2);
  Assignment assignment(universe.instance.num_workers(),
                        universe.instance.num_tasks());
  ReconcileOptions options;
  options.max_candidates_per_worker = 0;
  const auto stats = ReconcileShardBoundary(universe.instance, *router,
                                            options, &assignment);
  EXPECT_FALSE(stats.ok());
}

// ------------------------------------------------------------- stress suite --

/// Randomized sweep of the full reconciliation contract: arrival pattern x
/// router x handoff batch size x algorithm, plus rerun determinism.
TEST(BoundaryReconcilerStressTest, RandomizedReconcileSweep) {
  const int iterations = StressIterations(2);
  const std::vector<std::string> algorithms = AllAlgorithmNames();
  const std::vector<ArrivalPattern> patterns = AllArrivalPatterns();
  const std::vector<ShardRouterKind> routers = {ShardRouterKind::kGrid,
                                                ShardRouterKind::kHash,
                                                ShardRouterKind::kLoad};
  Rng rng(20260731);
  for (int iter = 0; iter < iterations; ++iter) {
    const ArrivalPattern pattern =
        patterns[rng.NextBounded(patterns.size())];
    const uint64_t seed = rng.Next();
    const Universe universe = MakeFuzzUniverse(
        seed, pattern, 40 + static_cast<int>(rng.NextBounded(41)),
        40 + static_cast<int>(rng.NextBounded(41)));
    for (const std::string& name : algorithms) {
      ShardedOptions options;
      options.num_shards = 2 + static_cast<int>(rng.NextBounded(7));
      options.num_threads = 1 + static_cast<int>(rng.NextBounded(4));
      options.router = routers[rng.NextBounded(routers.size())];
      options.handoff_batch =
          1 + static_cast<int>(rng.NextBounded(300));
      const std::string label =
          "iter " + std::to_string(iter) + " " + name + " " +
          ArrivalPatternName(pattern) + " " +
          ShardRouterKindName(options.router) +
          " shards=" + std::to_string(options.num_shards) +
          " threads=" + std::to_string(options.num_threads) +
          " handoff=" + std::to_string(options.handoff_batch);
      ExpectReconcileContract(universe, name, options, label);

      // Rerun determinism of the reconciled path.
      options.algorithm = name;
      options.reconcile = true;
      auto dispatcher = ShardedDispatcher::Create(options, universe.deps);
      ASSERT_TRUE(dispatcher.ok()) << dispatcher.status().ToString();
      auto first = (*dispatcher)->Run(universe.instance);
      ASSERT_TRUE(first.ok()) << first.status().ToString();
      auto second = (*dispatcher)->Run(universe.instance);
      ASSERT_TRUE(second.ok()) << second.status().ToString();
      ExpectIdenticalRun(first->assignment, first->trace,
                      second->assignment, second->trace, label + " rerun");
      EXPECT_EQ(first->reconcile.recovered_pairs,
                second->reconcile.recovered_pairs)
          << label;
    }
  }
}

}  // namespace
}  // namespace ftoa
