#include "sim/competitive.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/offline_opt.h"
#include "core/guide_generator.h"
#include "core/polar.h"
#include "core/polar_op.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace ftoa {
namespace {

PredictionMatrix SmallPrediction() {
  SyntheticConfig config;
  config.num_workers = 300;
  config.num_tasks = 300;
  config.grid_x = 8;
  config.grid_y = 8;
  config.num_slots = 6;
  config.seed = 515;
  return GenerateSyntheticExpectedPrediction(config).value();
}

TEST(IidInstanceSamplerTest, SampleRespectsTotalsAndTypes) {
  const PredictionMatrix prediction = SmallPrediction();
  const IidInstanceSampler sampler(prediction, 5.0, 3.0, 2.0);
  Rng rng(1);
  const Instance instance = sampler.Sample(&rng);
  EXPECT_EQ(static_cast<int64_t>(instance.num_workers()),
            prediction.TotalWorkers());
  EXPECT_EQ(static_cast<int64_t>(instance.num_tasks()),
            prediction.TotalTasks());
  EXPECT_TRUE(instance.Validate().ok());
  // Objects only land in types with positive predicted mass.
  const auto [workers, tasks] = instance.CountsPerType();
  for (TypeId t = 0; t < prediction.spacetime().num_types(); ++t) {
    if (prediction.workers_at(t) == 0) {
      EXPECT_EQ(workers[static_cast<size_t>(t)], 0) << "type " << t;
    }
    if (prediction.tasks_at(t) == 0) {
      EXPECT_EQ(tasks[static_cast<size_t>(t)], 0) << "type " << t;
    }
  }
}

TEST(IidInstanceSamplerTest, SamplesAreDeterministicPerRngState) {
  const PredictionMatrix prediction = SmallPrediction();
  const IidInstanceSampler sampler(prediction, 5.0, 3.0, 2.0);
  Rng rng_a(9);
  Rng rng_b(9);
  const Instance a = sampler.Sample(&rng_a);
  const Instance b = sampler.Sample(&rng_b);
  ASSERT_EQ(a.num_workers(), b.num_workers());
  for (size_t i = 0; i < a.num_workers(); ++i) {
    EXPECT_EQ(a.workers()[i].location, b.workers()[i].location);
  }
}

TEST(EstimateCompetitiveRatioTest, OptScoresOne) {
  const PredictionMatrix prediction = SmallPrediction();
  const IidInstanceSampler sampler(prediction, 5.0, 3.0, 2.0);
  OfflineOpt opt;
  const auto estimate = EstimateCompetitiveRatio(
      sampler, [&]() { return &opt; }, 5, 3);
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(estimate->min_ratio, 1.0);
  EXPECT_DOUBLE_EQ(estimate->mean_ratio, 1.0);
  EXPECT_EQ(estimate->trials, 5);
}

TEST(EstimateCompetitiveRatioTest, PolarOpBeatsItsBoundHere) {
  const PredictionMatrix prediction = SmallPrediction();
  const IidInstanceSampler sampler(prediction, 5.0, 3.0, 2.0);
  GuideOptions options;
  options.engine = GuideOptions::Engine::kAuto;
  options.worker_duration = 3.0;
  options.task_duration = 2.0;
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(GuideGenerator(5.0, options).Generate(prediction)).value());
  PolarOp polar_op(guide);
  const auto estimate = EstimateCompetitiveRatio(
      sampler, [&]() { return &polar_op; }, 10, 17);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate->min_ratio, 0.0);
  EXPECT_LE(estimate->min_ratio, 1.0);
  // Theorem 2's bound is 0.47 with high probability; on benign synthetic
  // inputs the empirical worst case clears a looser 0.3 sanity floor.
  EXPECT_GE(estimate->min_ratio, 0.3);
  EXPECT_GE(estimate->mean_ratio, estimate->min_ratio);
}

TEST(EstimateCompetitiveRatioTest, RejectsBadArguments) {
  const PredictionMatrix prediction = SmallPrediction();
  const IidInstanceSampler sampler(prediction, 5.0, 3.0, 2.0);
  OfflineOpt opt;
  EXPECT_FALSE(EstimateCompetitiveRatio(
                   sampler, [&]() { return &opt; }, 0, 1)
                   .ok());

  const PredictionMatrix empty(prediction.spacetime());
  const IidInstanceSampler empty_sampler(empty, 5.0, 3.0, 2.0);
  EXPECT_FALSE(EstimateCompetitiveRatio(
                   empty_sampler, [&]() { return &opt; }, 3, 1)
                   .ok());
}

}  // namespace
}  // namespace ftoa
