#include "sim/competitive.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/offline_opt.h"
#include "core/guide_generator.h"
#include "core/polar.h"
#include "core/polar_op.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace ftoa {
namespace {

PredictionMatrix SmallPrediction() {
  SyntheticConfig config;
  config.num_workers = 300;
  config.num_tasks = 300;
  config.grid_x = 8;
  config.grid_y = 8;
  config.num_slots = 6;
  config.seed = 515;
  return GenerateSyntheticExpectedPrediction(config).value();
}

TEST(IidInstanceSamplerTest, SampleRespectsTotalsAndTypes) {
  const PredictionMatrix prediction = SmallPrediction();
  const IidInstanceSampler sampler(prediction, 5.0, 3.0, 2.0);
  Rng rng(1);
  const Instance instance = sampler.Sample(&rng);
  EXPECT_EQ(static_cast<int64_t>(instance.num_workers()),
            prediction.TotalWorkers());
  EXPECT_EQ(static_cast<int64_t>(instance.num_tasks()),
            prediction.TotalTasks());
  EXPECT_TRUE(instance.Validate().ok());
  // Objects only land in types with positive predicted mass.
  const auto [workers, tasks] = instance.CountsPerType();
  for (TypeId t = 0; t < prediction.spacetime().num_types(); ++t) {
    if (prediction.workers_at(t) == 0) {
      EXPECT_EQ(workers[static_cast<size_t>(t)], 0) << "type " << t;
    }
    if (prediction.tasks_at(t) == 0) {
      EXPECT_EQ(tasks[static_cast<size_t>(t)], 0) << "type " << t;
    }
  }
}

TEST(IidInstanceSamplerTest, SamplesAreDeterministicPerRngState) {
  const PredictionMatrix prediction = SmallPrediction();
  const IidInstanceSampler sampler(prediction, 5.0, 3.0, 2.0);
  Rng rng_a(9);
  Rng rng_b(9);
  const Instance a = sampler.Sample(&rng_a);
  const Instance b = sampler.Sample(&rng_b);
  ASSERT_EQ(a.num_workers(), b.num_workers());
  for (size_t i = 0; i < a.num_workers(); ++i) {
    EXPECT_EQ(a.workers()[i].location, b.workers()[i].location);
  }
}

TEST(EstimateCompetitiveRatioTest, OptScoresOne) {
  const PredictionMatrix prediction = SmallPrediction();
  const IidInstanceSampler sampler(prediction, 5.0, 3.0, 2.0);
  const auto estimate = EstimateCompetitiveRatio(
      sampler, []() { return std::make_unique<OfflineOpt>(); }, 5, 3);
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(estimate->min_ratio, 1.0);
  EXPECT_DOUBLE_EQ(estimate->mean_ratio, 1.0);
  EXPECT_EQ(estimate->trials, 5);
}

TEST(EstimateCompetitiveRatioTest, PolarOpBeatsItsBoundHere) {
  const PredictionMatrix prediction = SmallPrediction();
  const IidInstanceSampler sampler(prediction, 5.0, 3.0, 2.0);
  GuideOptions options;
  options.engine = GuideOptions::Engine::kAuto;
  options.worker_duration = 3.0;
  options.task_duration = 2.0;
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(GuideGenerator(5.0, options).Generate(prediction)).value());
  const auto estimate = EstimateCompetitiveRatio(
      sampler, [guide]() { return std::make_unique<PolarOp>(guide); }, 10,
      17);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate->min_ratio, 0.0);
  EXPECT_LE(estimate->min_ratio, 1.0);
  // Theorem 2's bound is 0.47 with high probability; on benign synthetic
  // inputs the empirical worst case clears a looser 0.3 sanity floor.
  EXPECT_GE(estimate->min_ratio, 0.3);
  EXPECT_GE(estimate->mean_ratio, estimate->min_ratio);
}

TEST(EstimateCompetitiveRatioTest, ParallelTrialsMatchSerialBitExactly) {
  // The trial partition must never change the estimate: every trial forks
  // its own RNG stream and the aggregation runs in trial order, so any
  // thread count yields the serial result bit for bit.
  const PredictionMatrix prediction = SmallPrediction();
  const IidInstanceSampler sampler(prediction, 5.0, 3.0, 2.0);
  GuideOptions options;
  options.engine = GuideOptions::Engine::kAuto;
  options.worker_duration = 3.0;
  options.task_duration = 2.0;
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(GuideGenerator(5.0, options).Generate(prediction)).value());
  const auto factory = [guide]() { return std::make_unique<PolarOp>(guide); };
  const auto serial =
      EstimateCompetitiveRatio(sampler, factory, 12, 99, /*num_threads=*/1);
  ASSERT_TRUE(serial.ok());
  ThreadPool shared_pool(4);
  for (const int threads : {2, 3, 8}) {
    // Both execution vehicles — a per-call pool and a caller-supplied
    // one — must reproduce the serial estimate exactly.
    for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr),
                             &shared_pool}) {
      const auto parallel =
          EstimateCompetitiveRatio(sampler, factory, 12, 99, threads, pool);
      ASSERT_TRUE(parallel.ok()) << "threads " << threads;
      EXPECT_EQ(parallel->trials, serial->trials) << "threads " << threads;
      EXPECT_EQ(parallel->degenerate_trials, serial->degenerate_trials);
      EXPECT_DOUBLE_EQ(parallel->min_ratio, serial->min_ratio)
          << "threads " << threads;
      EXPECT_DOUBLE_EQ(parallel->mean_ratio, serial->mean_ratio)
          << "threads " << threads;
    }
  }
}

TEST(EstimateCompetitiveRatioTest, RejectsBadArguments) {
  const PredictionMatrix prediction = SmallPrediction();
  const IidInstanceSampler sampler(prediction, 5.0, 3.0, 2.0);
  const auto factory = []() { return std::make_unique<OfflineOpt>(); };
  EXPECT_FALSE(EstimateCompetitiveRatio(sampler, factory, 0, 1).ok());

  const PredictionMatrix empty(prediction.spacetime());
  const IidInstanceSampler empty_sampler(empty, 5.0, 3.0, 2.0);
  EXPECT_FALSE(EstimateCompetitiveRatio(empty_sampler, factory, 3, 1).ok());
}

}  // namespace
}  // namespace ftoa
