#include "sim/runner.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/offline_opt.h"
#include "baselines/simple_greedy.h"
#include "core/guide_generator.h"
#include "core/polar_op.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

TEST(RunnerTest, CollectsBasicMetrics) {
  const Instance instance = MakeExample1Instance();
  OfflineOpt opt;
  const auto metrics = RunAlgorithm(&opt, instance);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->algorithm, "OPT");
  EXPECT_EQ(metrics->matching_size, 6);
  EXPECT_GE(metrics->elapsed_seconds, 0.0);
}

TEST(RunnerTest, ValidationPassesForOpt) {
  const Instance instance = MakeExample1Instance();
  OfflineOpt opt;
  RunnerOptions options;
  options.validate = true;
  options.validation_policy = FeasibilityPolicy::kDispatchAtWorkerStart;
  EXPECT_TRUE(RunAlgorithm(&opt, instance, options).ok());
}

TEST(RunnerTest, ValidationUsesRequestedPolicy) {
  const Instance instance = MakeExample1Instance();
  SimpleGreedy greedy;
  RunnerOptions options;
  options.validate = true;
  options.validation_policy = FeasibilityPolicy::kDispatchAtAssignmentTime;
  EXPECT_TRUE(RunAlgorithm(&greedy, instance, options).ok());
}

TEST(RunnerTest, StreamingModeMatchesBatchAndRecordsLatencies) {
  const Instance instance = MakeExample1Instance();
  SimpleGreedy greedy;
  const auto batch = RunAlgorithm(&greedy, instance);
  ASSERT_TRUE(batch.ok());

  RunnerOptions options;
  options.streaming = true;
  options.validate = true;
  options.validation_policy = FeasibilityPolicy::kDispatchAtAssignmentTime;
  const auto streamed = RunAlgorithm(&greedy, instance, options);
  ASSERT_TRUE(streamed.ok());
  // Same decisions, only the measurement differs.
  EXPECT_EQ(streamed->matching_size, batch->matching_size);
  // One decision per arrival of the Example 1 universe (7 workers + 6
  // tasks), with ordered latency percentiles.
  EXPECT_EQ(streamed->decisions, 13);
  EXPECT_GT(streamed->decision_latency_p50_ns, 0.0);
  EXPECT_LE(streamed->decision_latency_p50_ns,
            streamed->decision_latency_p99_ns);
  EXPECT_LE(streamed->decision_latency_p99_ns,
            streamed->decision_latency_max_ns);
}

TEST(RunnerTest, BatchModeLeavesStreamingExtrasZero) {
  const Instance instance = MakeExample1Instance();
  SimpleGreedy greedy;
  const auto metrics = RunAlgorithm(&greedy, instance);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->decisions, 0);
  EXPECT_EQ(metrics->decision_latency_p50_ns, 0.0);
  EXPECT_EQ(metrics->decision_latency_max_ns, 0.0);
}

TEST(RunnerTest, StreamingStrictVerificationMatchesBatch) {
  const Instance instance = MakeExample1Instance();
  GuideOptions guide_options;
  guide_options.engine = GuideOptions::Engine::kDinic;
  guide_options.worker_duration = 30.0;
  guide_options.task_duration = 2.0;
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(GuideGenerator(instance.velocity(), guide_options)
                    .Generate(PredictionMatrix::FromInstance(instance)))
          .value());
  PolarOp polar_op(guide);
  RunnerOptions options;
  options.strict_verification = true;
  const auto batch = RunAlgorithm(&polar_op, instance, options);
  ASSERT_TRUE(batch.ok());
  options.streaming = true;
  const auto streamed = RunAlgorithm(&polar_op, instance, options);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed->matching_size, batch->matching_size);
  EXPECT_EQ(streamed->strict_feasible_pairs, batch->strict_feasible_pairs);
  EXPECT_EQ(streamed->strict_violations, batch->strict_violations);
  EXPECT_EQ(streamed->dispatched_workers, batch->dispatched_workers);
  EXPECT_EQ(streamed->ignored_objects, batch->ignored_objects);
}

TEST(RunnerTest, StrictVerificationPopulatesExtras) {
  const Instance instance = MakeExample1Instance();
  GuideOptions guide_options;
  guide_options.engine = GuideOptions::Engine::kDinic;
  guide_options.worker_duration = 30.0;
  guide_options.task_duration = 2.0;
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(GuideGenerator(instance.velocity(), guide_options)
                    .Generate(PredictionMatrix::FromInstance(instance)))
          .value());
  PolarOp polar_op(guide);
  RunnerOptions options;
  options.strict_verification = true;
  const auto metrics = RunAlgorithm(&polar_op, instance, options);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->strict_feasible_pairs + metrics->strict_violations,
            metrics->matching_size);
  EXPECT_GT(metrics->dispatched_workers, 0);
}

}  // namespace
}  // namespace ftoa
