#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace ftoa {
namespace {

RunMetrics ShardMetrics(double busy, int64_t decisions, int64_t matches) {
  RunMetrics m;
  m.algorithm = "polar";
  m.busy_seconds = busy;
  m.elapsed_seconds = busy;  // A shard's elapsed is its busy time.
  m.decisions = decisions;
  m.matching_size = matches;
  return m;
}

TEST(MergeShardRunMetricsTest, CriticalPathIsMaxShardTime) {
  const std::vector<RunMetrics> shards = {
      ShardMetrics(0.5, 100, 10), ShardMetrics(2.0, 400, 40),
      ShardMetrics(1.25, 250, 25)};
  const RunMetrics merged = MergeShardRunMetrics(shards);
  EXPECT_DOUBLE_EQ(merged.elapsed_seconds, 2.0);
  EXPECT_DOUBLE_EQ(merged.critical_path_seconds, 2.0);
  EXPECT_DOUBLE_EQ(merged.busy_seconds, 3.75);
  EXPECT_EQ(merged.decisions, 750);
  EXPECT_EQ(merged.matching_size, 75);
}

TEST(MergeShardRunMetricsTest, GuideSwapsSumAcrossShards) {
  std::vector<RunMetrics> shards = {ShardMetrics(0.1, 1, 1),
                                    ShardMetrics(0.1, 1, 1)};
  shards[0].guide_swaps = 2;
  shards[1].guide_swaps = 3;
  EXPECT_EQ(MergeShardRunMetrics(shards).guide_swaps, 5);
}

// The PR-5 regression: dispatcher Run / sim runner re-measure the wall clock
// of the whole sharded replay and used to assign it straight into
// elapsed_seconds, destroying the merged critical-path max. SetWallClock
// must preserve that bound (and never touch busy_seconds).
TEST(MergeShardRunMetricsTest, WallClockOverwriteKeepsMergedMax) {
  const std::vector<RunMetrics> shards = {ShardMetrics(0.5, 100, 10),
                                          ShardMetrics(2.0, 400, 40)};
  RunMetrics merged = MergeShardRunMetrics(shards);
  ASSERT_DOUBLE_EQ(merged.elapsed_seconds, 2.0);

  merged.SetWallClock(2.75);  // Measured wall clock of the whole replay.
  EXPECT_DOUBLE_EQ(merged.elapsed_seconds, 2.75);
  EXPECT_DOUBLE_EQ(merged.critical_path_seconds, 2.0);
  EXPECT_DOUBLE_EQ(merged.busy_seconds, 2.5);

  // A second overwrite (e.g. runner re-timing around dispatcher Run) still
  // keeps the original critical path, not the intermediate wall clock.
  merged.SetWallClock(3.5);
  EXPECT_DOUBLE_EQ(merged.elapsed_seconds, 3.5);
  EXPECT_DOUBLE_EQ(merged.critical_path_seconds, 2.0);
}

TEST(MergeShardRunMetricsTest, UnshardedWallClockLeavesCriticalPathZero) {
  RunMetrics metrics;  // Fresh unsharded run: elapsed starts at 0.
  metrics.SetWallClock(1.5);
  EXPECT_DOUBLE_EQ(metrics.elapsed_seconds, 1.5);
  EXPECT_DOUBLE_EQ(metrics.critical_path_seconds, 0.0);
}

TEST(MergeShardRunMetricsTest, NestedMergePropagatesCriticalPath) {
  // A merged result whose elapsed was overwritten by a wall clock can be
  // merged again (multi-segment serving); the critical path must survive.
  std::vector<RunMetrics> shards = {ShardMetrics(0.5, 100, 10),
                                    ShardMetrics(2.0, 400, 40)};
  RunMetrics segment = MergeShardRunMetrics(shards);
  segment.SetWallClock(0.1);  // Wall clock smaller than the shard max.
  const RunMetrics total = MergeShardRunMetrics({segment});
  EXPECT_DOUBLE_EQ(total.critical_path_seconds, 2.0);
}

TEST(MergeShardRunMetricsTest, LatencyPercentilesMergeByMax) {
  std::vector<RunMetrics> shards = {ShardMetrics(0.5, 100, 10),
                                    ShardMetrics(1.0, 100, 10)};
  shards[0].decision_latency_p50_ns = 100.0;
  shards[0].decision_latency_p99_ns = 900.0;
  shards[1].decision_latency_p50_ns = 300.0;
  shards[1].decision_latency_p99_ns = 500.0;
  const RunMetrics merged = MergeShardRunMetrics(shards);
  EXPECT_DOUBLE_EQ(merged.decision_latency_p50_ns, 300.0);
  EXPECT_DOUBLE_EQ(merged.decision_latency_p99_ns, 900.0);
}

}  // namespace
}  // namespace ftoa
