#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ftoa {
namespace {

Instance MakeSimpleInstance() {
  const SpacetimeSpec st(SlotSpec(10.0, 2), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(1);
  workers[0] = {0, {0.0, 0.0}, 0.0, 8.0};
  std::vector<Task> tasks(1);
  tasks[0] = {0, {4.0, 0.0}, 2.0, 3.0};  // Deadline t = 5.
  return Instance(st, 1.0, std::move(workers), std::move(tasks));
}

TEST(VerifyStrictTest, AcceptsReachablePair) {
  const Instance instance = MakeSimpleInstance();
  Assignment assignment(1, 1);
  // Decided at t = 2; travel 4 units at v = 1 -> arrival 6 > 5: infeasible
  // without pre-movement...
  ASSERT_TRUE(assignment.Add(0, 0, 2.0).ok());
  RunTrace no_movement;
  const StrictVerification without =
      VerifyStrict(instance, assignment, no_movement);
  EXPECT_EQ(without.total_pairs, 1);
  EXPECT_EQ(without.violations, 1);
  EXPECT_EQ(without.late_arrival, 1);

  // ...but a dispatch toward the task area at t = 0 puts the worker at
  // (2, 0) by t = 2, making the arrival (t = 4) feasible.
  RunTrace with_movement;
  with_movement.dispatches.push_back(DispatchRecord{0, {4.0, 0.0}, 0.0});
  const StrictVerification with =
      VerifyStrict(instance, assignment, with_movement);
  EXPECT_EQ(with.feasible_pairs, 1);
  EXPECT_EQ(with.violations, 0);
}

TEST(VerifyStrictTest, FlagsPairDecidedBeforeTaskRelease) {
  const Instance instance = MakeSimpleInstance();
  Assignment assignment(1, 1);
  ASSERT_TRUE(assignment.Add(0, 0, 1.0).ok());  // Task appears at t = 2.
  RunTrace trace;
  const StrictVerification result =
      VerifyStrict(instance, assignment, trace);
  EXPECT_EQ(result.task_not_released, 1);
  EXPECT_EQ(result.violations, 1);
}

TEST(VerifyStrictTest, FlagsExpiredWorker) {
  const SpacetimeSpec st(SlotSpec(10.0, 2), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(1);
  workers[0] = {0, {0.0, 0.0}, 0.0, 1.0};  // Leaves at t = 1.
  std::vector<Task> tasks(1);
  tasks[0] = {0, {0.0, 0.0}, 2.0, 5.0};
  const Instance instance(st, 1.0, std::move(workers), std::move(tasks));
  Assignment assignment(1, 1);
  ASSERT_TRUE(assignment.Add(0, 0, 2.0).ok());
  const StrictVerification result =
      VerifyStrict(instance, assignment, RunTrace{});
  EXPECT_EQ(result.worker_expired, 1);
  EXPECT_EQ(result.violations, 1);
}

TEST(VerifyStrictTest, EmptyAssignmentIsClean) {
  const Instance instance = MakeSimpleInstance();
  const Assignment assignment(1, 1);
  const StrictVerification result =
      VerifyStrict(instance, assignment, RunTrace{});
  EXPECT_EQ(result.total_pairs, 0);
  EXPECT_EQ(result.violations, 0);
}

}  // namespace
}  // namespace ftoa
