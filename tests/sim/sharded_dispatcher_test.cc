// Property/stress suite for the sharded streaming dispatcher
// (sim/sharded_dispatcher): merged-assignment validity invariants across
// randomized instances x shard counts x every registry algorithm, 1-shard
// bit-identity with the unsharded session path, thread-count invariance
// under concurrent shard execution, the matcher_rebuilds regression on the
// incremental matching path, router unit properties, and the documented
// RunMetrics merge semantics. The *Stress* suites honor FTOA_STRESS_ITERS
// (tools/run_stress.sh) for a higher iteration count.

#include "sim/sharded_dispatcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/algorithm_registry.h"
#include "model/arrival_stream.h"
#include "sim/runner.h"
#include "test_util.h"
#include "util/rng.h"

namespace ftoa {
namespace {

using ::ftoa::testing::AllArrivalPatterns;
using ::ftoa::testing::ArrivalPattern;
using ::ftoa::testing::ArrivalPatternName;
using ::ftoa::testing::ExpectIdenticalRun;
using ::ftoa::testing::FuzzUniverse;
using ::ftoa::testing::MakeFuzzUniverse;
using ::ftoa::testing::StressIterations;

using Universe = FuzzUniverse;

/// Object-level deadline policy an algorithm's pairs must satisfy, or
/// nullopt for the POLAR family, whose guide-trust pairs are feasible at
/// the type-representative level only (the strict-verification axis) —
/// those get the structural checks but no object-level Validate.
std::optional<FeasibilityPolicy> PolicyFor(const std::string& name) {
  if (name == "simple-greedy" || name == "gr" || name == "tgoa") {
    return FeasibilityPolicy::kDispatchAtAssignmentTime;
  }
  if (name == "opt") return FeasibilityPolicy::kDispatchAtWorkerStart;
  return std::nullopt;
}

/// The full validity contract of a merged sharded assignment.
void ExpectMergedValid(const Universe& universe, const std::string& name,
                       const ShardedOptions& options,
                       const ShardedRunResult& result,
                       const std::string& label) {
  // Structural: ids in range, each object matched at most once, pair maps
  // coherent (Assignment::Add enforces the capacity side — a cross-shard
  // duplicate would have failed the merge).
  EXPECT_LE(result.assignment.size(),
            std::min(universe.instance.num_workers(),
                     universe.instance.num_tasks()))
      << label;
  for (const MatchedPair& pair : result.assignment.pairs()) {
    ASSERT_GE(pair.worker, 0) << label;
    ASSERT_LT(static_cast<size_t>(pair.worker),
              universe.instance.num_workers())
        << label;
    ASSERT_GE(pair.task, 0) << label;
    ASSERT_LT(static_cast<size_t>(pair.task), universe.instance.num_tasks())
        << label;
    EXPECT_EQ(result.assignment.MatchOfWorker(pair.worker), pair.task)
        << label;
    EXPECT_EQ(result.assignment.MatchOfTask(pair.task), pair.worker)
        << label;
  }

  // Object-level deadline feasibility for the algorithms that promise it
  // (the POLAR family trusts the guide; see PolicyFor).
  if (const std::optional<FeasibilityPolicy> policy = PolicyFor(name)) {
    const Status valid = result.assignment.Validate(universe.instance,
                                                    *policy);
    EXPECT_TRUE(valid.ok()) << label << ": " << valid.ToString();
  }

  // Every matched pair lives inside one shard: the router must agree on
  // both endpoints (per-shard sessions can only see their own objects).
  const std::unique_ptr<ShardRouter> router = MakeShardRouter(
      options.router, universe.instance, options.num_shards);
  for (const MatchedPair& pair : result.assignment.pairs()) {
    const Worker& w = universe.instance.worker(pair.worker);
    const Task& r = universe.instance.task(pair.task);
    EXPECT_EQ(router->Route(ObjectKind::kWorker, w.id, w.location),
              router->Route(ObjectKind::kTask, r.id, r.location))
        << label << " pair (" << pair.worker << ", " << pair.task << ")";
  }

  // Per-shard metrics add up to the merged view.
  int64_t shard_matches = 0;
  int64_t shard_decisions = 0;
  for (const RunMetrics& shard : result.shard_metrics) {
    shard_matches += shard.matching_size;
    shard_decisions += shard.decisions;
  }
  EXPECT_EQ(shard_matches,
            static_cast<int64_t>(result.assignment.size()))
      << label;
  EXPECT_EQ(shard_decisions,
            static_cast<int64_t>(universe.instance.num_workers() +
                                 universe.instance.num_tasks()))
      << label;
  EXPECT_EQ(result.metrics.decisions, shard_decisions) << label;
  EXPECT_EQ(result.metrics.matching_size, shard_matches) << label;
}

class ShardedDispatcherTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardedDispatcherTest, SingleShardBitIdenticalToUnshardedSession) {
  for (const ShardRouterKind router :
       {ShardRouterKind::kGrid, ShardRouterKind::kHash}) {
    const Universe universe = MakeFuzzUniverse(7, ArrivalPattern::kShuffledIds);
    auto algorithm = CreateAlgorithm(GetParam(), universe.deps);
    ASSERT_TRUE(algorithm.ok()) << algorithm.status().ToString();

    RunTrace solo_trace;
    const Assignment solo = (*algorithm)->Run(universe.instance, &solo_trace);

    ShardedOptions options;
    options.num_shards = 1;
    options.router = router;
    ShardedDispatcher dispatcher(algorithm->get(), options);
    auto sharded = dispatcher.Run(universe.instance);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

    const std::string label = std::string(GetParam()) + " router " +
                              (router == ShardRouterKind::kGrid ? "grid"
                                                                : "hash");
    ExpectIdenticalRun(solo, solo_trace, sharded->assignment, sharded->trace,
                    label);
    EXPECT_EQ(sharded->shard_metrics.size(), 1u) << label;
  }
}

TEST_P(ShardedDispatcherTest, MergedAssignmentValidAcrossShardCounts) {
  for (const ArrivalPattern pattern :
       {ArrivalPattern::kBursty, ArrivalPattern::kShuffledIds}) {
    const Universe universe = MakeFuzzUniverse(31, pattern);
    for (const int num_shards : {2, 3, 8}) {
      for (const ShardRouterKind router :
           {ShardRouterKind::kGrid, ShardRouterKind::kHash}) {
        ShardedOptions options;
        options.algorithm = GetParam();
        options.num_shards = num_shards;
        options.num_threads = num_shards;  // Concurrent shard execution.
        options.router = router;
        auto dispatcher = ShardedDispatcher::Create(options, universe.deps);
        ASSERT_TRUE(dispatcher.ok()) << dispatcher.status().ToString();
        auto result = (*dispatcher)->Run(universe.instance);
        ASSERT_TRUE(result.ok()) << result.status().ToString();

        const std::string label =
            std::string(GetParam()) + " " + ArrivalPatternName(pattern) +
            " shards=" + std::to_string(num_shards) +
            (router == ShardRouterKind::kGrid ? " grid" : " hash");
        ExpectMergedValid(universe, GetParam(), options, *result, label);
      }
    }
  }
}

TEST_P(ShardedDispatcherTest, ThreadCountDoesNotChangeTheMergedOutput) {
  // Interleaving-independence: with 8 shards live, the merged assignment
  // and trace must be identical whether shards run inline, on 2 threads,
  // or one thread per shard.
  const Universe universe = MakeFuzzUniverse(1229, ArrivalPattern::kBursty);
  std::unique_ptr<ShardedRunResult> reference;
  for (const int num_threads : {1, 2, 8}) {
    ShardedOptions options;
    options.algorithm = GetParam();
    options.num_shards = 8;
    options.num_threads = num_threads;
    auto dispatcher = ShardedDispatcher::Create(options, universe.deps);
    ASSERT_TRUE(dispatcher.ok()) << dispatcher.status().ToString();
    auto result = (*dispatcher)->Run(universe.instance);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (reference == nullptr) {
      reference = std::make_unique<ShardedRunResult>(std::move(*result));
      continue;
    }
    ExpectIdenticalRun(reference->assignment, reference->trace,
                    result->assignment, result->trace,
                    std::string(GetParam()) + " threads=" +
                        std::to_string(num_threads));
  }
}

TEST_P(ShardedDispatcherTest, HandoffBatchSizeDoesNotChangeTheMergedOutput) {
  // Batching only changes *when* events cross the thread boundary, never
  // their per-shard order: every batch size — per-event (1), tiny, odd,
  // larger than the whole stream — must reproduce the inline reference.
  const Universe universe = MakeFuzzUniverse(733, ArrivalPattern::kBursty);
  ShardedOptions options;
  options.algorithm = GetParam();
  options.num_shards = 4;
  options.num_threads = 1;  // Inline reference: staging is bypassed.
  auto reference_dispatcher =
      ShardedDispatcher::Create(options, universe.deps);
  ASSERT_TRUE(reference_dispatcher.ok())
      << reference_dispatcher.status().ToString();
  auto reference = (*reference_dispatcher)->Run(universe.instance);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (const int handoff_batch : {1, 2, 7, 1 << 20}) {
    options.num_threads = 4;
    options.handoff_batch = handoff_batch;
    auto dispatcher = ShardedDispatcher::Create(options, universe.deps);
    ASSERT_TRUE(dispatcher.ok()) << dispatcher.status().ToString();
    auto result = (*dispatcher)->Run(universe.instance);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectIdenticalRun(reference->assignment, reference->trace,
                    result->assignment, result->trace,
                    std::string(GetParam()) + " handoff_batch=" +
                        std::to_string(handoff_batch));
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ShardedDispatcherTest,
                         ::testing::Values("simple-greedy", "gr", "tgoa",
                                           "polar", "polar-op", "polar-op-g",
                                           "opt"),
                         [](const auto& tpi) {
                           std::string name = tpi.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ShardedDispatcherSuiteTest, ParameterListCoversTheWholeRegistry) {
  EXPECT_EQ(AllAlgorithmNames(),
            (std::vector<std::string>{"simple-greedy", "gr", "tgoa", "polar",
                                      "polar-op", "polar-op-g", "opt"}));
}

TEST(ShardedDispatcherSuiteTest, MatcherRebuildsStayZeroOnIncrementalPath) {
  // Regression: the per-shard TGOA/GR sessions must keep carrying one
  // incremental matcher each — a nonzero rebuild count would mean sharding
  // silently fell back to rebuild-per-batch.
  const Universe universe = MakeFuzzUniverse(47, ArrivalPattern::kBursty);
  for (const char* name : {"tgoa", "gr"}) {
    for (const int num_shards : {1, 4}) {
      ShardedOptions options;
      options.algorithm = name;
      options.num_shards = num_shards;
      options.num_threads = num_shards;
      auto dispatcher = ShardedDispatcher::Create(options, universe.deps);
      ASSERT_TRUE(dispatcher.ok());
      auto result = (*dispatcher)->Run(universe.instance);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->trace.matcher_rebuilds, 0)
          << name << " shards=" << num_shards;
      // TGOA's sample-and-price threshold derives from the *full* universe
      // size, so a shard seeing only a fraction of arrivals can stay in
      // its greedy phase and never engage the matcher (documented in
      // docs/sharded_dispatch.md) — require engagement only where it is
      // guaranteed: GR's windows always fire, and unsharded TGOA reaches
      // its second phase.
      const bool matcher_must_engage =
          std::string(name) == "gr" || num_shards == 1;
      if (matcher_must_engage) {
        EXPECT_GT(result->trace.matcher_augment_searches, 0)
            << name << " shards=" << num_shards;
      }

      // The rebuild reference mode, sharded, must still report rebuilds.
      AlgorithmDeps rebuild_deps = universe.deps;
      rebuild_deps.tgoa_options.incremental_matching = false;
      rebuild_deps.gr_options.incremental_matching = false;
      auto rebuild =
          ShardedDispatcher::Create(options, rebuild_deps);
      ASSERT_TRUE(rebuild.ok());
      auto rebuild_result = (*rebuild)->Run(universe.instance);
      ASSERT_TRUE(rebuild_result.ok());
      if (matcher_must_engage) {
        EXPECT_GT(rebuild_result->trace.matcher_rebuilds, 0)
            << name << " shards=" << num_shards;
      }
      // Both modes produce per-shard-identical utility (the incremental
      // matcher preserves the rebuild mode's arrival-order augmentation).
      EXPECT_EQ(rebuild_result->assignment.size(),
                result->assignment.size())
          << name << " shards=" << num_shards;
    }
  }
}

TEST(ShardedDispatcherSuiteTest, OptShardsSolveDisjointSubUniverses) {
  // Per-shard OPT solves exactly its routed sub-instance; the shard
  // optima merge conflict-free and cannot beat the global optimum.
  const Universe universe = MakeFuzzUniverse(5, ArrivalPattern::kShuffledIds);
  auto opt = CreateAlgorithm("opt");
  ASSERT_TRUE(opt.ok());
  const Assignment global = (*opt)->Run(universe.instance);

  ShardedOptions options;
  options.algorithm = "opt";
  options.num_shards = 4;
  options.num_threads = 4;
  auto dispatcher = ShardedDispatcher::Create(options);
  ASSERT_TRUE(dispatcher.ok());
  auto result = (*dispatcher)->Run(universe.instance);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->assignment.size(), 0u);
  EXPECT_LE(result->assignment.size(), global.size());
  ExpectMergedValid(universe, "opt", options, *result, "opt shards=4");
}

TEST(ShardedDispatcherSuiteTest, RunnerRoutesThroughTheShardedPath) {
  const Universe universe = MakeFuzzUniverse(3, ArrivalPattern::kAlternating);
  auto algorithm = CreateAlgorithm("polar-op", universe.deps);
  ASSERT_TRUE(algorithm.ok());

  RunnerOptions options;
  options.num_shards = 2;
  options.shard_threads = 2;
  options.strict_verification = true;  // POLAR is guide-trust: re-verify
                                       // movement instead of Validate.
  const auto metrics =
      RunAlgorithm(algorithm->get(), universe.instance, options);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->decisions,
            static_cast<int64_t>(universe.instance.num_workers() +
                                 universe.instance.num_tasks()));
  EXPECT_EQ(metrics->strict_feasible_pairs + metrics->strict_violations,
            metrics->matching_size);

  // The runner's sharded result must match the dispatcher driven directly.
  ShardedOptions sharded;
  sharded.num_shards = 2;
  sharded.num_threads = 2;
  ShardedDispatcher dispatcher(algorithm->get(), sharded);
  auto direct = dispatcher.Run(universe.instance);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(metrics->matching_size,
            static_cast<int64_t>(direct->assignment.size()));
}

TEST(GridShardRouterTest, CutsCellsIntoContiguousBands) {
  const GridSpec grid(10.0, 10.0, 4, 4);
  const GridShardRouter router(grid, 3);
  EXPECT_EQ(router.num_shards(), 3);
  int previous = 0;
  for (CellId cell = 0; cell < grid.num_cells(); ++cell) {
    const int shard = router.ShardOfCell(cell);
    EXPECT_GE(shard, previous) << "bands must be contiguous in cell order";
    EXPECT_LT(shard, 3);
    previous = shard;
  }
  EXPECT_EQ(router.ShardOfCell(0), 0);
  EXPECT_EQ(router.ShardOfCell(grid.num_cells() - 1), 2);
  // More shards than cells clamps (the excess could never be routed to).
  const GridShardRouter clamped(grid, 64);
  EXPECT_EQ(clamped.num_shards(), grid.num_cells());
}

TEST(ShardRouterRegistryTest, NamesParseAndRoundTrip) {
  EXPECT_EQ(AllShardRouterNames(),
            (std::vector<std::string>{"grid", "hash", "load"}));
  for (const ShardRouterKind kind :
       {ShardRouterKind::kGrid, ShardRouterKind::kHash,
        ShardRouterKind::kLoad}) {
    const std::string name = ShardRouterKindName(kind);
    const auto parsed = ParseShardRouterKind(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, kind) << name;

    // The built router reports the same canonical name.
    const Universe universe = MakeFuzzUniverse(3, ArrivalPattern::kBursty);
    EXPECT_EQ(MakeShardRouter(kind, universe.instance, 3)->name(), name);
  }
  // The algos-style unknown-name error carries the whole valid set.
  const auto unknown = ParseShardRouterKind("bogus");
  ASSERT_FALSE(unknown.ok());
  for (const std::string& name : AllShardRouterNames()) {
    EXPECT_NE(unknown.status().ToString().find(name), std::string::npos)
        << name;
  }
}

TEST(LoadShardRouterTest, BandsBalanceWeightNotArea) {
  // All weight in the last row: the load router gives the final shard just
  // that row's weighted cells, where the area split would hand it a
  // quarter of the region regardless.
  const GridSpec grid(10.0, 10.0, 4, 4);
  std::vector<int64_t> weights(static_cast<size_t>(grid.num_cells()), 0);
  for (CellId c = 12; c < 16; ++c) weights[static_cast<size_t>(c)] = 10;
  const LoadShardRouter router(grid, weights, 2);
  EXPECT_EQ(router.num_shards(), 2);
  int previous = 0;
  for (CellId cell = 0; cell < grid.num_cells(); ++cell) {
    const int shard = router.ShardOfCell(cell);
    EXPECT_GE(shard, previous) << "bands must be contiguous in cell order";
    previous = shard;
  }
  // The weighted cells split 2/2 across the shards (20 weight each); all
  // zero-weight cells land in the first band.
  EXPECT_EQ(router.ShardOfCell(11), 0);
  EXPECT_EQ(router.ShardOfCell(12), 0);
  EXPECT_EQ(router.ShardOfCell(13), 0);
  EXPECT_EQ(router.ShardOfCell(14), 1);
  EXPECT_EQ(router.ShardOfCell(15), 1);

  int64_t per_shard[2] = {0, 0};
  for (CellId c = 0; c < grid.num_cells(); ++c) {
    per_shard[router.ShardOfCell(c)] += weights[static_cast<size_t>(c)];
  }
  EXPECT_EQ(per_shard[0], per_shard[1]);
}

TEST(LoadShardRouterTest, ZeroWeightsFallBackToTheAreaSplit) {
  const GridSpec grid(10.0, 10.0, 4, 4);
  const std::vector<int64_t> zeros(static_cast<size_t>(grid.num_cells()), 0);
  const LoadShardRouter load(grid, zeros, 3);
  const GridShardRouter area(grid, 3);
  for (CellId c = 0; c < grid.num_cells(); ++c) {
    EXPECT_EQ(load.ShardOfCell(c), area.ShardOfCell(c)) << "cell " << c;
  }
  // More shards than cells clamps, like the area router.
  const LoadShardRouter clamped(grid, zeros, 64);
  EXPECT_EQ(clamped.num_shards(), grid.num_cells());
}

TEST(LoadShardRouterTest, InstanceAndPerfectPredictionWeightsAgree) {
  // FromInstance counts realized objects per cell; FromPrediction sums the
  // per-type matrix over slots. On a perfect prediction these are the same
  // weights, so the two routers must route identically.
  const Universe universe = MakeFuzzUniverse(17, ArrivalPattern::kShuffledIds);
  const auto from_instance =
      LoadShardRouter::FromInstance(universe.instance, 3);
  const auto from_prediction = LoadShardRouter::FromPrediction(
      PredictionMatrix::FromInstance(universe.instance), 3);
  for (CellId c = 0;
       c < universe.instance.spacetime().grid().num_cells(); ++c) {
    EXPECT_EQ(from_instance->ShardOfCell(c), from_prediction->ShardOfCell(c))
        << "cell " << c;
  }
  // MakeShardRouter's kLoad path is the instance-weight router.
  const auto made =
      MakeShardRouter(ShardRouterKind::kLoad, universe.instance, 3);
  for (const Worker& w : universe.instance.workers()) {
    EXPECT_EQ(made->Route(ObjectKind::kWorker, w.id, w.location),
              from_instance->Route(ObjectKind::kWorker, w.id, w.location));
  }
}

TEST(BandShardRouterTest, NearShardBoundaryMatchesTheBandGeometry) {
  // 4x4 cells over 10x10: with 2 shards the cut is at y = 5. A point's
  // boundary band is exactly its distance to the foreign half.
  const GridSpec grid(10.0, 10.0, 4, 4);
  const GridShardRouter router(grid, 2);
  EXPECT_FALSE(router.NearShardBoundary({5.0, 0.5}, 4.4));
  EXPECT_TRUE(router.NearShardBoundary({5.0, 0.5}, 4.6));
  EXPECT_TRUE(router.NearShardBoundary({5.0, 4.9}, 0.2));
  EXPECT_TRUE(router.NearShardBoundary({5.0, 5.1}, 0.2));  // Other side.
  EXPECT_FALSE(router.NearShardBoundary({5.0, 9.5}, 4.4));

  // With 3 shards on 16 cells the cuts land mid-row (cells 0-5 | 6-10 |
  // 11-15): from cell 4's center the nearest foreign cell is the row
  // above (distance 1.25), not the suffix of its own row (3.75).
  const GridShardRouter thirds(grid, 3);
  ASSERT_EQ(thirds.ShardOfCell(4), 0);
  ASSERT_EQ(thirds.ShardOfCell(5), 0);
  ASSERT_EQ(thirds.ShardOfCell(6), 1);
  EXPECT_FALSE(thirds.NearShardBoundary({1.25, 3.75}, 1.0));
  EXPECT_TRUE(thirds.NearShardBoundary({1.25, 3.75}, 1.3));

  // One shard: no border exists anywhere.
  const GridShardRouter single(grid, 1);
  EXPECT_FALSE(single.NearShardBoundary({5.0, 5.0}, 100.0));

  // The hash router has no spatial structure: every point is
  // border-adjacent once a second shard exists.
  EXPECT_TRUE(HashShardRouter(2).NearShardBoundary({5.0, 5.0}, 0.0));
  EXPECT_FALSE(HashShardRouter(1).NearShardBoundary({5.0, 5.0}, 100.0));
}

TEST(HashShardRouterTest, DeterministicInRangeAndKindSensitive) {
  const HashShardRouter router(5);
  bool worker_task_differ_somewhere = false;
  for (int32_t id = 0; id < 200; ++id) {
    const int worker_shard = router.Route(ObjectKind::kWorker, id, {});
    EXPECT_GE(worker_shard, 0);
    EXPECT_LT(worker_shard, 5);
    EXPECT_EQ(worker_shard, router.Route(ObjectKind::kWorker, id, {}));
    if (worker_shard != router.Route(ObjectKind::kTask, id, {})) {
      worker_task_differ_somewhere = true;
    }
  }
  // Workers and tasks hash independently (same id, different kind).
  EXPECT_TRUE(worker_task_differ_somewhere);
}

TEST(MergeShardRunMetricsTest, DocumentedFieldSemantics) {
  RunMetrics a;
  a.algorithm = "POLAR-OP";
  a.matching_size = 10;
  a.elapsed_seconds = 0.5;
  a.busy_seconds = 0.4;
  a.peak_memory_bytes = 100;
  a.decisions = 40;
  a.dispatched_workers = 4;
  a.ignored_objects = 1;
  a.reconciled_pairs = 2;
  a.decision_latency_p50_ns = 100.0;
  a.decision_latency_p99_ns = 900.0;
  a.decision_latency_max_ns = 1500.0;
  RunMetrics b = a;
  b.matching_size = 5;
  b.elapsed_seconds = 0.75;
  b.busy_seconds = 0.7;
  b.peak_memory_bytes = 50;
  b.decisions = 25;
  b.reconciled_pairs = 3;
  b.decision_latency_p50_ns = 200.0;
  b.decision_latency_p99_ns = 400.0;
  b.decision_latency_max_ns = 2500.0;

  const RunMetrics merged = MergeShardRunMetrics({a, b});
  EXPECT_EQ(merged.algorithm, "POLAR-OP");
  // Counters sum.
  EXPECT_EQ(merged.matching_size, 15);
  EXPECT_EQ(merged.decisions, 65);
  EXPECT_EQ(merged.peak_memory_bytes, 150u);
  EXPECT_EQ(merged.dispatched_workers, 8);
  EXPECT_EQ(merged.ignored_objects, 2);
  EXPECT_EQ(merged.reconciled_pairs, 5);
  // Wall clock is the critical path: max. Busy time is work: sum.
  EXPECT_DOUBLE_EQ(merged.elapsed_seconds, 0.75);
  EXPECT_DOUBLE_EQ(merged.busy_seconds, 1.1);
  // Percentiles merge by max — the conservative pooled upper bound; a
  // weighted average would report p50 < a's p50, hiding the slow shard.
  EXPECT_DOUBLE_EQ(merged.decision_latency_p50_ns, 200.0);
  EXPECT_DOUBLE_EQ(merged.decision_latency_p99_ns, 900.0);
  EXPECT_DOUBLE_EQ(merged.decision_latency_max_ns, 2500.0);

  EXPECT_EQ(MergeShardRunMetrics({}).decisions, 0);
}

TEST(MergeShardRunMetricsTest, BusyTimeIsSummedWorkNotWallClock) {
  // FillDecisionLatencies derives busy time from the raw sample ...
  std::vector<int64_t> latencies = {100, 200, 300};
  RunMetrics filled;
  FillDecisionLatencies(latencies, &filled);
  EXPECT_DOUBLE_EQ(filled.busy_seconds, 600.0 * 1e-9);

  // ... and a real sharded run reports per-shard elapsed == busy (a shard
  // has no wall clock of its own) with the merged busy being their sum.
  const Universe universe = MakeFuzzUniverse(5, ArrivalPattern::kBursty);
  ShardedOptions options;
  options.algorithm = "polar-op";
  options.num_shards = 3;
  auto dispatcher = ShardedDispatcher::Create(options, universe.deps);
  ASSERT_TRUE(dispatcher.ok()) << dispatcher.status().ToString();
  auto result = (*dispatcher)->Run(universe.instance);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  double busy_sum = 0.0;
  for (const RunMetrics& shard : result->shard_metrics) {
    EXPECT_DOUBLE_EQ(shard.elapsed_seconds, shard.busy_seconds);
    EXPECT_GT(shard.busy_seconds, 0.0);
    busy_sum += shard.busy_seconds;
  }
  EXPECT_DOUBLE_EQ(result->metrics.busy_seconds, busy_sum);
  // Run() measures the replay's wall clock, which covers the busy time of
  // the critical-path shard at least.
  EXPECT_GT(result->metrics.elapsed_seconds, 0.0);
}

TEST(MergeShardRunMetricsTest, MaxMergeUpperBoundsThePooledPercentile) {
  // The documented guarantee, checked on raw samples: pooled p99 never
  // exceeds the max of per-shard p99s (up to nearest-rank discretization).
  Rng rng(91);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::vector<int64_t>> shards(
        2 + static_cast<size_t>(rng.NextBounded(4)));
    std::vector<int64_t> pooled;
    for (auto& shard : shards) {
      const size_t n = 50 + rng.NextBounded(200);
      shard.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        shard.push_back(static_cast<int64_t>(rng.NextBounded(100000)));
      }
      pooled.insert(pooled.end(), shard.begin(), shard.end());
    }
    std::vector<RunMetrics> shard_metrics(shards.size());
    for (size_t s = 0; s < shards.size(); ++s) {
      FillDecisionLatencies(shards[s], &shard_metrics[s]);
    }
    const RunMetrics merged = MergeShardRunMetrics(shard_metrics);
    // The provable form of the bound: strictly fewer than 1% of pooled
    // samples exceed the max of the per-shard p99s (each shard contributes
    // < 0.01 * n_s such samples by the nearest-rank definition).
    int64_t above = 0;
    for (const int64_t sample : pooled) {
      if (static_cast<double>(sample) > merged.decision_latency_p99_ns) {
        ++above;
      }
    }
    EXPECT_LT(static_cast<double>(above),
              0.01 * static_cast<double>(pooled.size()))
        << "round " << round;
    RunMetrics exact;
    FillDecisionLatencies(pooled, &exact);
    EXPECT_GE(merged.decision_latency_max_ns, exact.decision_latency_max_ns);
  }
}

// ------------------------------------------------------------- stress suite --

/// Randomized sweep: pattern x seed x algorithm x shard count x thread
/// count x router, asserting the full validity contract plus re-run
/// determinism. Default iterations keep plain ctest fast; FTOA_STRESS_ITERS
/// (tools/run_stress.sh) widens the sweep.
TEST(ShardedDispatcherStressTest, RandomizedShardSessionEquivalence) {
  const int iterations = StressIterations(2);
  const std::vector<std::string> algorithms = AllAlgorithmNames();
  const std::vector<ArrivalPattern> patterns = AllArrivalPatterns();
  Rng rng(20260730);
  for (int iter = 0; iter < iterations; ++iter) {
    const ArrivalPattern pattern =
        patterns[rng.NextBounded(patterns.size())];
    const uint64_t seed = rng.Next();
    const Universe universe =
        MakeFuzzUniverse(seed, pattern, 40 + static_cast<int>(rng.NextBounded(41)),
                     40 + static_cast<int>(rng.NextBounded(41)));
    for (const std::string& name : algorithms) {
      ShardedOptions options;
      options.algorithm = name;
      options.num_shards = 1 + static_cast<int>(rng.NextBounded(8));
      options.num_threads = 1 + static_cast<int>(rng.NextBounded(4));
      options.router = rng.NextBool() ? ShardRouterKind::kGrid
                                      : ShardRouterKind::kHash;
      auto dispatcher = ShardedDispatcher::Create(options, universe.deps);
      ASSERT_TRUE(dispatcher.ok()) << dispatcher.status().ToString();
      auto first = (*dispatcher)->Run(universe.instance);
      ASSERT_TRUE(first.ok()) << first.status().ToString();

      const std::string label =
          "iter " + std::to_string(iter) + " " + name + " " +
          ArrivalPatternName(pattern) +
          " shards=" + std::to_string(options.num_shards) +
          " threads=" + std::to_string(options.num_threads);
      ExpectMergedValid(universe, name, options, *first, label);

      // Determinism: the same dispatcher re-runs bit-identically (fresh
      // sessions, same routing).
      auto second = (*dispatcher)->Run(universe.instance);
      ASSERT_TRUE(second.ok());
      ExpectIdenticalRun(first->assignment, first->trace, second->assignment,
                      second->trace, label + " rerun");
    }
  }
}

}  // namespace
}  // namespace ftoa
