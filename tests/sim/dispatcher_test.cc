#include "sim/dispatcher.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ftoa {
namespace {

Instance MakeSingleWorkerInstance() {
  const SpacetimeSpec st(SlotSpec(10.0, 2), GridSpec(10.0, 10.0, 5, 5));
  std::vector<Worker> workers(1);
  workers[0] = {0, {0.0, 0.0}, 1.0, 8.0};
  return Instance(st, 2.0, std::move(workers), {});
}

TEST(DispatcherTest, UndispatchedWorkerStaysAtOrigin) {
  const Instance instance = MakeSingleWorkerInstance();
  RunTrace trace;
  const Dispatcher dispatcher(instance, trace);
  EXPECT_FALSE(dispatcher.WasDispatched(0));
  EXPECT_EQ(dispatcher.PositionAt(0, 0.0), (Point{0.0, 0.0}));
  EXPECT_EQ(dispatcher.PositionAt(0, 9.0), (Point{0.0, 0.0}));
}

TEST(DispatcherTest, EnRoutePositionInterpolates) {
  const Instance instance = MakeSingleWorkerInstance();
  RunTrace trace;
  // Dispatched at t = 1 toward (8, 0); velocity 2 -> arrives at t = 5.
  trace.dispatches.push_back(DispatchRecord{0, {8.0, 0.0}, 1.0});
  const Dispatcher dispatcher(instance, trace);
  EXPECT_TRUE(dispatcher.WasDispatched(0));
  EXPECT_EQ(dispatcher.PositionAt(0, 1.0), (Point{0.0, 0.0}));
  EXPECT_EQ(dispatcher.PositionAt(0, 2.0), (Point{2.0, 0.0}));
  EXPECT_EQ(dispatcher.PositionAt(0, 3.0), (Point{4.0, 0.0}));
  // After arrival the worker parks at the target.
  EXPECT_EQ(dispatcher.PositionAt(0, 5.0), (Point{8.0, 0.0}));
  EXPECT_EQ(dispatcher.PositionAt(0, 100.0), (Point{8.0, 0.0}));
}

TEST(DispatcherTest, BeforeDepartureStaysAtOrigin) {
  const Instance instance = MakeSingleWorkerInstance();
  RunTrace trace;
  trace.dispatches.push_back(DispatchRecord{0, {8.0, 0.0}, 3.0});
  const Dispatcher dispatcher(instance, trace);
  EXPECT_EQ(dispatcher.PositionAt(0, 0.0), (Point{0.0, 0.0}));
  EXPECT_EQ(dispatcher.PositionAt(0, 2.9), (Point{0.0, 0.0}));
}

TEST(DispatcherTest, ZeroLengthDispatchParksImmediately) {
  const Instance instance = MakeSingleWorkerInstance();
  RunTrace trace;
  trace.dispatches.push_back(DispatchRecord{0, {0.0, 0.0}, 1.0});
  const Dispatcher dispatcher(instance, trace);
  EXPECT_EQ(dispatcher.PositionAt(0, 5.0), (Point{0.0, 0.0}));
}

TEST(DispatcherDeathTest, PositionAtRejectsOutOfRangeWorker) {
  const Instance instance = MakeSingleWorkerInstance();
  RunTrace trace;
  const Dispatcher dispatcher(instance, trace);
  EXPECT_DEATH(dispatcher.PositionAt(1, 0.0), "out of range");
  EXPECT_DEATH(dispatcher.PositionAt(-1, 0.0), "out of range");
}

TEST(DispatcherDeathTest, WasDispatchedRejectsOutOfRangeWorker) {
  const Instance instance = MakeSingleWorkerInstance();
  RunTrace trace;
  const Dispatcher dispatcher(instance, trace);
  EXPECT_DEATH(dispatcher.WasDispatched(7), "out of range");
}

TEST(DispatcherDeathTest, RejectsTraceForUnknownWorker) {
  const Instance instance = MakeSingleWorkerInstance();
  RunTrace trace;
  // A dispatch record for a worker the instance does not contain means the
  // trace and instance disagree; building the dispatcher must abort rather
  // than index out of bounds.
  trace.dispatches.push_back(DispatchRecord{3, {1.0, 1.0}, 0.5});
  EXPECT_DEATH(Dispatcher(instance, trace), "outside the instance");
}

}  // namespace
}  // namespace ftoa
