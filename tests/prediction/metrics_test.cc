#include "prediction/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ftoa {
namespace {

TEST(PredictionScorerTest, PerfectPredictionScoresZero) {
  PredictionScorer scorer;
  scorer.AddSlot({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0});
  const PredictionScore score = scorer.Score();
  EXPECT_DOUBLE_EQ(score.error_rate, 0.0);
  EXPECT_DOUBLE_EQ(score.rmsle, 0.0);
  EXPECT_EQ(score.evaluated_slots, 1);
}

TEST(PredictionScorerTest, ErrorRateMatchesPaperFormula) {
  // ER for one slot: sum|a - ã| / sum a = (1 + 1) / (4 + 6) = 0.2.
  PredictionScorer scorer;
  scorer.AddSlot({4.0, 6.0}, {5.0, 5.0});
  EXPECT_NEAR(scorer.Score().error_rate, 0.2, 1e-12);
}

TEST(PredictionScorerTest, RmsleMatchesPaperFormula) {
  PredictionScorer scorer;
  scorer.AddSlot({1.0, 3.0}, {0.0, 7.0});
  const double d0 = std::log(2.0) - std::log(1.0);
  const double d1 = std::log(4.0) - std::log(8.0);
  const double expected = std::sqrt((d0 * d0 + d1 * d1) / 2.0);
  EXPECT_NEAR(scorer.Score().rmsle, expected, 1e-12);
}

TEST(PredictionScorerTest, AveragesOverSlots) {
  PredictionScorer scorer;
  scorer.AddSlot({10.0}, {10.0});  // ER 0.
  scorer.AddSlot({10.0}, {5.0});   // ER 0.5.
  EXPECT_NEAR(scorer.Score().error_rate, 0.25, 1e-12);
  EXPECT_EQ(scorer.Score().evaluated_slots, 2);
}

TEST(PredictionScorerTest, ZeroActualGuardedAgainstDivZero) {
  PredictionScorer scorer;
  scorer.AddSlot({0.0, 0.0}, {1.0, 0.0});
  EXPECT_NEAR(scorer.Score().error_rate, 1.0, 1e-12);
}

TEST(PredictionScorerTest, NegativePredictionsClampedInLog) {
  PredictionScorer scorer;
  scorer.AddSlot({0.0}, {-3.0});
  // log(0 + 1) - log(max(0,-3) + 1) = 0.
  EXPECT_DOUBLE_EQ(scorer.Score().rmsle, 0.0);
}

TEST(EvaluatePredictorTest, RejectsBadSplit) {
  class ZeroPredictor : public Predictor {
   public:
    std::string name() const override { return "zero"; }
    Status Fit(const DemandDataset&, int, DemandSide) override {
      return Status::OK();
    }
    std::vector<double> Predict(const DemandDataset& data, int,
                                int) const override {
      return std::vector<double>(static_cast<size_t>(data.num_cells()), 0.0);
    }
  };
  const DemandDataset data(5, 2, 2);
  ZeroPredictor predictor;
  EXPECT_FALSE(EvaluatePredictor(&predictor, data, 0, DemandSide::kTasks)
                   .ok());
  EXPECT_FALSE(EvaluatePredictor(&predictor, data, 5, DemandSide::kTasks)
                   .ok());
  EXPECT_TRUE(EvaluatePredictor(&predictor, data, 3, DemandSide::kTasks)
                  .ok());
}

TEST(EvaluatePredictorTest, ScoresZeroPredictorOnZeroData) {
  class ZeroPredictor : public Predictor {
   public:
    std::string name() const override { return "zero"; }
    Status Fit(const DemandDataset&, int, DemandSide) override {
      return Status::OK();
    }
    std::vector<double> Predict(const DemandDataset& data, int,
                                int) const override {
      return std::vector<double>(static_cast<size_t>(data.num_cells()), 0.0);
    }
  };
  const DemandDataset data(4, 2, 3);  // All-zero demand.
  ZeroPredictor predictor;
  const auto score = EvaluatePredictor(&predictor, data, 2,
                                       DemandSide::kWorkers);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(score->error_rate, 0.0);
  EXPECT_DOUBLE_EQ(score->rmsle, 0.0);
  EXPECT_EQ(score->evaluated_slots, 4);
}

}  // namespace
}  // namespace ftoa
