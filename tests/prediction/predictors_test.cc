#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "prediction/arima.h"
#include "prediction/gbrt.h"
#include "prediction/historical_average.h"
#include "prediction/hp_msi.h"
#include "prediction/linear_regression.h"
#include "prediction/metrics.h"
#include "prediction/neural_network.h"
#include "prediction/paq.h"
#include "prediction/registry.h"
#include "util/rng.h"

namespace ftoa {
namespace {

/// A small periodic city: per-cell demand is a deterministic function of
/// (dow, slot, cell) plus optional noise, with weekends damped.
DemandDataset MakePeriodicDataset(int days, int slots, int cells,
                                  double noise_sigma, uint64_t seed) {
  DemandDataset data(days, slots, cells);
  Rng rng(seed);
  for (int day = 0; day < days; ++day) {
    const bool weekend = day % 7 >= 5;
    for (int slot = 0; slot < slots; ++slot) {
      const WeatherSample weather{
          18.0 + 4.0 * std::sin(2.0 * M_PI * slot / slots),
          (day % 5 == 3) ? 2.0 : 0.0};
      data.set_weather(day, slot, weather);
      for (int cell = 0; cell < cells; ++cell) {
        double base = 5.0 + 3.0 * std::sin(2.0 * M_PI * slot / slots +
                                           cell * 0.7) +
                      0.5 * cell;
        if (weekend) base *= 0.6;
        if (weather.precipitation > 0.1) base *= 1.2;
        const double noisy =
            std::max(0.0, base + rng.NextGaussian(0.0, noise_sigma));
        data.set_tasks(day, slot, cell, noisy);
        data.set_workers(day, slot, cell, std::max(0.0, noisy * 0.9));
      }
    }
  }
  return data;
}

constexpr int kDays = 28;
constexpr int kSlots = 12;
constexpr int kCells = 16;
constexpr int kTrainDays = 21;

class PredictorSanityTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PredictorSanityTest, FitsAndPredictsReasonably) {
  const DemandDataset data =
      MakePeriodicDataset(kDays, kSlots, kCells, 0.5, 11);
  auto predictor = CreatePredictor(GetParam());
  ASSERT_TRUE(predictor.ok()) << GetParam();
  const auto score = EvaluatePredictor(predictor->get(), data, kTrainDays,
                                       DemandSide::kTasks);
  ASSERT_TRUE(score.ok()) << score.status().ToString();
  // On a nearly-deterministic periodic signal every model must beat the
  // trivial "always zero" predictor by a wide margin.
  EXPECT_LT(score->error_rate, 0.6) << GetParam();
  EXPECT_GT(score->evaluated_slots, 0);
}

TEST_P(PredictorSanityTest, PredictionsAreNonNegativeAndSized) {
  const DemandDataset data =
      MakePeriodicDataset(kDays, kSlots, kCells, 0.5, 12);
  auto predictor = CreatePredictor(GetParam());
  ASSERT_TRUE(predictor.ok());
  ASSERT_TRUE(
      (*predictor)->Fit(data, kTrainDays, DemandSide::kWorkers).ok());
  const std::vector<double> out =
      (*predictor)->Predict(data, kTrainDays, kSlots / 2);
  ASSERT_EQ(out.size(), static_cast<size_t>(kCells));
  for (double v : out) EXPECT_GE(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, PredictorSanityTest,
                         ::testing::Values("HA", "ARIMA", "GBRT", "PAQ",
                                           "LR", "NN", "HP-MSI"));

TEST(HistoricalAverageTest, ExactOnNoiselessPeriodicData) {
  // With zero noise and day-of-week periodicity, HA is an exact predictor
  // once every weekday was observed (the weather day-pattern repeats every
  // 35 days; disable rain to keep the signal purely dow-periodic).
  DemandDataset data = MakePeriodicDataset(22, kSlots, kCells, 0.0, 13);
  for (int day = 0; day < 22; ++day) {
    for (int slot = 0; slot < kSlots; ++slot) {
      const WeatherSample dry{20.0, 0.0};
      data.set_weather(day, slot, dry);
    }
  }
  // Rebuild counts without rain effect: regenerate deterministically.
  for (int day = 0; day < 22; ++day) {
    const bool weekend = day % 7 >= 5;
    for (int slot = 0; slot < kSlots; ++slot) {
      for (int cell = 0; cell < kCells; ++cell) {
        double base = 5.0 + 3.0 * std::sin(2.0 * M_PI * slot / kSlots +
                                           cell * 0.7) +
                      0.5 * cell;
        if (weekend) base *= 0.6;
        data.set_tasks(day, slot, cell, std::max(0.0, base));
      }
    }
  }
  HistoricalAverage ha;
  ASSERT_TRUE(ha.Fit(data, 21, DemandSide::kTasks).ok());
  const std::vector<double> out = ha.Predict(data, 21, 3);
  for (int cell = 0; cell < kCells; ++cell) {
    EXPECT_NEAR(out[static_cast<size_t>(cell)], data.tasks(21, 3, cell),
                1e-9);
  }
}

TEST(LinearRegressionTest, RecoversPersistentSignal) {
  // Constant-per-cell demand: LR on day lags predicts it exactly.
  DemandDataset data(25, 4, 6);
  for (int day = 0; day < 25; ++day) {
    for (int slot = 0; slot < 4; ++slot) {
      for (int cell = 0; cell < 6; ++cell) {
        data.set_tasks(day, slot, cell, 2.0 + cell);
        data.set_workers(day, slot, cell, 1.0 + cell);
      }
    }
  }
  LinearRegressionPredictor lr;
  ASSERT_TRUE(lr.Fit(data, 20, DemandSide::kTasks).ok());
  const std::vector<double> out = lr.Predict(data, 22, 1);
  for (int cell = 0; cell < 6; ++cell) {
    EXPECT_NEAR(out[static_cast<size_t>(cell)], 2.0 + cell, 0.05);
  }
}

TEST(LinearRegressionTest, RejectsTooFewTrainingDays) {
  const DemandDataset data(10, 2, 2);
  LinearRegressionPredictor lr(15);
  EXPECT_FALSE(lr.Fit(data, 10, DemandSide::kTasks).ok());
}

TEST(ArimaTest, TracksSmoothTrend) {
  // Slow global trend: one-step ARIMA should stay close.
  DemandDataset data(20, 8, 4);
  for (int day = 0; day < 20; ++day) {
    for (int slot = 0; slot < 8; ++slot) {
      const double t = day * 8.0 + slot;
      for (int cell = 0; cell < 4; ++cell) {
        data.set_tasks(day, slot, cell, 10.0 + 0.05 * t);
      }
    }
  }
  ArimaPredictor arima;
  ASSERT_TRUE(arima.Fit(data, 15, DemandSide::kTasks).ok());
  const std::vector<double> out = arima.Predict(data, 16, 4);
  const double actual = data.tasks(16, 4, 0);
  for (int cell = 0; cell < 4; ++cell) {
    EXPECT_NEAR(out[static_cast<size_t>(cell)], actual, 1.0);
  }
}

TEST(GbrtModelTest, LearnsPiecewiseFunction) {
  // y = 10 for x < 0.5 else 2; a single tree split should capture it.
  std::vector<double> rows;
  std::vector<double> targets;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble();
    rows.push_back(x);
    targets.push_back(x < 0.5 ? 10.0 : 2.0);
  }
  GbrtModel model;
  ASSERT_TRUE(model.Train(rows, 1, targets).ok());
  const double lo = 0.2;
  const double hi = 0.8;
  EXPECT_NEAR(model.Predict(&lo), 10.0, 0.5);
  EXPECT_NEAR(model.Predict(&hi), 2.0, 0.5);
}

TEST(GbrtModelTest, RejectsDegenerateInputs) {
  GbrtModel model;
  EXPECT_FALSE(model.Train({}, 0, {}).ok());
  EXPECT_FALSE(model.Train({1.0}, 1, {1.0}).ok());  // Too few rows.
  EXPECT_FALSE(model.Train({1.0, 2.0}, 1, {1.0}).ok());  // Size mismatch.
}

TEST(GbrtModelTest, TrainingCellStrideSurvivesCityScaleRowCounts) {
  // Regression for a -Wconversion finding that was a real latent bug: the
  // stride was computed in int64 but stored in int, so a city-scale
  // full_rows (> max_rows * INT_MAX) truncated — potentially to a
  // *negative* stride, and `cell += stride` in Fit's assembly scan would
  // never terminate. The stride is now computed, clamped, and carried in
  // 64-bit.
  const int64_t huge_rows = 3000000000LL * 200000;  // raw stride = 3e9.
  const int64_t stride = TrainingCellStride(huge_rows, 200000, 1000000);
  EXPECT_GT(stride, 0);
  EXPECT_EQ(stride, 1000000);  // Clamped to num_cells: one cell per slot.

  // The pre-fix behavior, reproduced arithmetically: the same stride
  // narrowed to int is negative — the loop increment that used to hang.
  EXPECT_LT(static_cast<int32_t>(huge_rows / 200000), 0);

  // Ordinary scales keep their exact historical stride.
  EXPECT_EQ(TrainingCellStride(100, 200000, 50), 1);
  EXPECT_EQ(TrainingCellStride(400000, 200000, 50), 2);
  EXPECT_EQ(TrainingCellStride(0, 0, 0), 1);  // Degenerate floors.
}

TEST(GbrtPredictorTest, BeatsHistoricalAverageWithWeatherSignal) {
  // Rain multiplies demand: HA (which ignores weather) must do worse than
  // GBRT (which sees precipitation as a feature) on the rainy test days.
  //
  // History: until the DemandFeatures::dim() off-by-one was fixed, the
  // precipitation write overflowed every caller's feature buffer and the
  // value never reached the training matrix, so this test used to compare
  // a weather-blind GBRT on *overall* rmsle. The dry-day handicap that
  // remained (~1.9x HA) was then attributed to rain-inflated day-lagged
  // count features; measurement showed it was mostly the linear-space
  // squared loss misaligned with the rmsle metric — training on log1p
  // targets (where rain lift and weekend damping are additive offsets,
  // correctable via the day-lagged weather covariates) brought the
  // dry-day ratio down to ~1.6x on this seed. The tightened bound below
  // locks that in.
  const DemandDataset data =
      MakePeriodicDataset(35, kSlots, kCells, 0.3, 17);
  GbrtPredictor gbrt;
  HistoricalAverage ha;
  ASSERT_TRUE(gbrt.Fit(data, 28, DemandSide::kTasks).ok());
  ASSERT_TRUE(ha.Fit(data, 28, DemandSide::kTasks).ok());

  auto rmsle_over = [&](Predictor& predictor, bool rainy) {
    PredictionScorer scorer;
    std::vector<double> actual(static_cast<size_t>(kCells));
    for (int day = 28; day < data.num_days(); ++day) {
      if ((data.weather(day, 0).precipitation > 0.1) != rainy) continue;
      for (int slot = 0; slot < data.slots_per_day(); ++slot) {
        const std::vector<double> predicted =
            predictor.Predict(data, day, slot);
        for (int cell = 0; cell < kCells; ++cell) {
          actual[static_cast<size_t>(cell)] =
              data.count(DemandSide::kTasks, day, slot, cell);
        }
        scorer.AddSlot(actual, predicted);
      }
    }
    return scorer.Score().rmsle;
  };
  // Weather signal: strictly better than HA on every-rainy-day aggregate.
  EXPECT_LT(rmsle_over(gbrt, /*rainy=*/true),
            rmsle_over(ha, /*rainy=*/true));
  // Dry-day guardrail, re-tightened from the pre-log-space 2.2x: measured
  // ~1.61x on this seed; the bound catches regressions of either the
  // log-space objective or the lagged-weather features.
  EXPECT_LT(rmsle_over(gbrt, /*rainy=*/false),
            rmsle_over(ha, /*rainy=*/false) * 1.8);
}

TEST(PaqTest, FollowsRecentLevelShift) {
  // Demand jumps mid-test-day; PAQ's recent-window aggregate follows it
  // while the purely day-lagged models cannot.
  DemandDataset data(10, 24, 2);
  for (int day = 0; day < 10; ++day) {
    for (int slot = 0; slot < 24; ++slot) {
      const double level = (day == 9 && slot >= 12) ? 30.0 : 5.0;
      for (int cell = 0; cell < 2; ++cell) {
        data.set_tasks(day, slot, cell, level);
      }
    }
  }
  PaqPredictor paq;
  ASSERT_TRUE(paq.Fit(data, 9, DemandSide::kTasks).ok());
  // Predicting slot 18 of day 9: the 6-hour window covers the shift.
  const std::vector<double> out = paq.Predict(data, 9, 18);
  EXPECT_GT(out[0], 15.0);
}

TEST(NeuralNetworkTest, FitsConstantSignal) {
  DemandDataset data(25, 4, 4);
  for (int day = 0; day < 25; ++day) {
    for (int slot = 0; slot < 4; ++slot) {
      for (int cell = 0; cell < 4; ++cell) {
        data.set_tasks(day, slot, cell, 6.0);
        data.set_workers(day, slot, cell, 6.0);
      }
    }
  }
  NeuralNetworkPredictor nn;
  ASSERT_TRUE(nn.Fit(data, 20, DemandSide::kTasks).ok());
  const std::vector<double> out = nn.Predict(data, 22, 2);
  for (double v : out) EXPECT_NEAR(v, 6.0, 1.0);
}

TEST(HpMsiTest, ClustersCellsAndPredicts) {
  const DemandDataset data =
      MakePeriodicDataset(kDays, kSlots, kCells, 0.3, 23);
  HpMsiParams hp_params;
  hp_params.num_clusters = 4;
  HpMsiPredictor hp(hp_params);
  ASSERT_TRUE(hp.Fit(data, kTrainDays, DemandSide::kTasks).ok());
  EXPECT_EQ(hp.num_clusters(), 4);
  ASSERT_EQ(hp.cluster_of_cell().size(), static_cast<size_t>(kCells));
  for (int c : hp.cluster_of_cell()) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 4);
  }
  const std::vector<double> out = hp.Predict(data, kTrainDays + 1, 3);
  EXPECT_EQ(out.size(), static_cast<size_t>(kCells));
}

TEST(RegistryTest, CreatesAllTableFivePredictors) {
  for (const std::string& name : AllPredictorNames()) {
    auto predictor = CreatePredictor(name);
    ASSERT_TRUE(predictor.ok()) << name;
    EXPECT_EQ((*predictor)->name(), name);
  }
  EXPECT_FALSE(CreatePredictor("nonsense").ok());
}

TEST(RegistryTest, TableFiveOrder) {
  const auto names = AllPredictorNames();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names.front(), "HA");
  EXPECT_EQ(names.back(), "HP-MSI");
}

}  // namespace
}  // namespace ftoa
