#include "prediction/dataset.h"

#include <gtest/gtest.h>

namespace ftoa {
namespace {

TEST(DemandDatasetTest, DimensionsAndDefaults) {
  const DemandDataset data(7, 4, 9);
  EXPECT_EQ(data.num_days(), 7);
  EXPECT_EQ(data.slots_per_day(), 4);
  EXPECT_EQ(data.num_cells(), 9);
  EXPECT_DOUBLE_EQ(data.workers(3, 2, 5), 0.0);
  EXPECT_DOUBLE_EQ(data.tasks(6, 3, 8), 0.0);
  // Day-of-week defaults to day % 7.
  EXPECT_EQ(data.day_of_week(0), 0);
  EXPECT_EQ(data.day_of_week(6), 6);
}

TEST(DemandDatasetTest, SetAndGetCounts) {
  DemandDataset data(2, 3, 4);
  data.set_workers(1, 2, 3, 7.0);
  data.set_tasks(0, 0, 0, 2.5);
  EXPECT_DOUBLE_EQ(data.workers(1, 2, 3), 7.0);
  EXPECT_DOUBLE_EQ(data.tasks(0, 0, 0), 2.5);
  EXPECT_DOUBLE_EQ(data.count(DemandSide::kWorkers, 1, 2, 3), 7.0);
  EXPECT_DOUBLE_EQ(data.count(DemandSide::kTasks, 0, 0, 0), 2.5);
  // Neighbors untouched.
  EXPECT_DOUBLE_EQ(data.workers(1, 2, 2), 0.0);
}

TEST(DemandDatasetTest, WeatherStorage) {
  DemandDataset data(2, 3, 4);
  data.set_weather(1, 2, WeatherSample{25.0, 1.5});
  EXPECT_DOUBLE_EQ(data.weather(1, 2).temperature, 25.0);
  EXPECT_DOUBLE_EQ(data.weather(1, 2).precipitation, 1.5);
  EXPECT_DOUBLE_EQ(data.weather(0, 0).temperature, 20.0);  // Default.
}

TEST(DemandDatasetTest, CellMean) {
  DemandDataset data(3, 2, 2);
  // Cell 1 gets 4.0 in every (day, slot) of the first two days.
  for (int day = 0; day < 2; ++day) {
    for (int slot = 0; slot < 2; ++slot) {
      data.set_tasks(day, slot, 1, 4.0);
    }
  }
  EXPECT_DOUBLE_EQ(data.CellMean(DemandSide::kTasks, 1, 2), 4.0);
  EXPECT_DOUBLE_EQ(data.CellMean(DemandSide::kTasks, 0, 2), 0.0);
  EXPECT_DOUBLE_EQ(data.CellMean(DemandSide::kTasks, 1, 0), 0.0);
}

TEST(DemandDatasetTest, ValidateAcceptsCleanData) {
  DemandDataset data(2, 2, 2);
  EXPECT_TRUE(data.Validate().ok());
  data.set_workers(0, 0, 0, -1.0);
  EXPECT_FALSE(data.Validate().ok());
}

}  // namespace
}  // namespace ftoa
