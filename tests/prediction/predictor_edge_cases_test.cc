// Degenerate-input behaviour of the predictors: constant and all-zero
// series, missing lag windows at the start of the evaluation period, and
// determinism of the stochastic learners.

#include <gtest/gtest.h>

#include "prediction/arima.h"
#include "prediction/gbrt.h"
#include "prediction/historical_average.h"
#include "prediction/hp_msi.h"
#include "prediction/neural_network.h"
#include "prediction/paq.h"
#include "prediction/registry.h"

namespace ftoa {
namespace {

DemandDataset ConstantDataset(int days, int slots, int cells, double value) {
  DemandDataset data(days, slots, cells);
  for (int day = 0; day < days; ++day) {
    for (int slot = 0; slot < slots; ++slot) {
      for (int cell = 0; cell < cells; ++cell) {
        data.set_tasks(day, slot, cell, value);
        data.set_workers(day, slot, cell, value);
      }
    }
  }
  return data;
}

TEST(PredictorEdgeCaseTest, AllZeroHistoryPredictsNearZero) {
  const DemandDataset data = ConstantDataset(20, 6, 4, 0.0);
  for (const std::string& name : AllPredictorNames()) {
    auto predictor = CreatePredictor(name);
    ASSERT_TRUE(predictor.ok());
    const Status fitted = (*predictor)->Fit(data, 15, DemandSide::kTasks);
    if (!fitted.ok()) continue;  // Some models reject degenerate input.
    const std::vector<double> out = (*predictor)->Predict(data, 16, 2);
    for (double v : out) {
      EXPECT_GE(v, 0.0) << name;
      EXPECT_LT(v, 1.0) << name;
    }
  }
}

TEST(PredictorEdgeCaseTest, ConstantHistoryPredictsTheConstant) {
  const DemandDataset data = ConstantDataset(20, 6, 4, 7.0);
  // The structured models must nail an exactly constant signal.
  for (const char* name : {"HA", "PAQ", "ARIMA"}) {
    auto predictor = CreatePredictor(name);
    ASSERT_TRUE(predictor.ok());
    ASSERT_TRUE((*predictor)->Fit(data, 15, DemandSide::kTasks).ok())
        << name;
    const std::vector<double> out = (*predictor)->Predict(data, 16, 3);
    for (double v : out) {
      EXPECT_NEAR(v, 7.0, 0.5) << name;
    }
  }
}

TEST(PredictorEdgeCaseTest, ArimaFallsBackOnConstantSeries) {
  // A constant series has zero-variance differences; the per-cell fit may
  // be singular, and the documented fallback is "last observation".
  const DemandDataset data = ConstantDataset(15, 8, 2, 3.0);
  ArimaPredictor arima;
  ASSERT_TRUE(arima.Fit(data, 12, DemandSide::kWorkers).ok());
  const std::vector<double> out = arima.Predict(data, 13, 4);
  for (double v : out) EXPECT_NEAR(v, 3.0, 1e-6);
}

TEST(PredictorEdgeCaseTest, StochasticLearnersAreDeterministic) {
  DemandDataset data = ConstantDataset(25, 6, 6, 4.0);
  // Break the symmetry a little so the models have something to fit.
  for (int day = 0; day < 25; ++day) {
    for (int slot = 0; slot < 6; ++slot) {
      data.set_tasks(day, slot, 2, 4.0 + slot);
    }
  }
  for (const char* name : {"GBRT", "NN", "HP-MSI"}) {
    auto a = CreatePredictor(name);
    auto b = CreatePredictor(name);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE((*a)->Fit(data, 20, DemandSide::kTasks).ok()) << name;
    ASSERT_TRUE((*b)->Fit(data, 20, DemandSide::kTasks).ok()) << name;
    const std::vector<double> out_a = (*a)->Predict(data, 22, 3);
    const std::vector<double> out_b = (*b)->Predict(data, 22, 3);
    ASSERT_EQ(out_a.size(), out_b.size()) << name;
    for (size_t i = 0; i < out_a.size(); ++i) {
      EXPECT_DOUBLE_EQ(out_a[i], out_b[i]) << name << " cell " << i;
    }
  }
}

TEST(PredictorEdgeCaseTest, HaRejectsInvalidTrainDays) {
  const DemandDataset data = ConstantDataset(10, 4, 2, 1.0);
  HistoricalAverage ha;
  EXPECT_FALSE(ha.Fit(data, 0, DemandSide::kTasks).ok());
  EXPECT_FALSE(ha.Fit(data, 11, DemandSide::kTasks).ok());
  EXPECT_TRUE(ha.Fit(data, 10, DemandSide::kTasks).ok());
}

TEST(PredictorEdgeCaseTest, ArimaRejectsTooShortSeries) {
  const DemandDataset data = ConstantDataset(2, 2, 2, 1.0);
  ArimaPredictor arima;
  EXPECT_FALSE(arima.Fit(data, 2, DemandSide::kTasks).ok());
}

TEST(PredictorEdgeCaseTest, SingleCellCityWorks) {
  DemandDataset data(20, 4, 1);
  for (int day = 0; day < 20; ++day) {
    for (int slot = 0; slot < 4; ++slot) {
      data.set_tasks(day, slot, 0, 2.0 + slot);
      data.set_workers(day, slot, 0, 2.0);
    }
  }
  for (const std::string& name : AllPredictorNames()) {
    auto predictor = CreatePredictor(name);
    ASSERT_TRUE(predictor.ok());
    const Status fitted = (*predictor)->Fit(data, 15, DemandSide::kTasks);
    if (!fitted.ok()) continue;
    const std::vector<double> out = (*predictor)->Predict(data, 16, 2);
    ASSERT_EQ(out.size(), 1u) << name;
    EXPECT_GE(out[0], 0.0) << name;
  }
}

}  // namespace
}  // namespace ftoa
