#include "gen/city_trace.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ftoa {
namespace {

CityProfile TinyProfile() {
  CityProfile profile = BeijingProfile();
  profile.grid_x = 8;
  profile.grid_y = 6;
  profile.slots_per_day = 24;
  profile.history_days = 14;
  profile.workers_per_day = 600.0;
  profile.tasks_per_day = 650.0;
  return profile;
}

TEST(CityTraceTest, IntensityMassMatchesDailyTotals) {
  const CityTraceGenerator generator(TinyProfile());
  // Dry weekday: total intensity approximates the configured daily volume.
  const std::vector<double> intensity =
      generator.Intensity(DemandSide::kTasks, /*day=*/1);
  double total = 0.0;
  for (double v : intensity) total += v;
  EXPECT_NEAR(total, 650.0, 650.0 * 0.35);  // Weather may perturb.
}

TEST(CityTraceTest, WeekendsDifferFromWeekdays) {
  const CityTraceGenerator generator(TinyProfile());
  const std::vector<double> weekday =
      generator.Intensity(DemandSide::kTasks, 1);
  const std::vector<double> weekend =
      generator.Intensity(DemandSide::kTasks, 5);
  double weekday_total = 0.0;
  double weekend_total = 0.0;
  for (double v : weekday) weekday_total += v;
  for (double v : weekend) weekend_total += v;
  EXPECT_NE(std::lround(weekday_total), std::lround(weekend_total));
}

TEST(CityTraceTest, SampleCountsAreDeterministic) {
  const CityTraceGenerator a(TinyProfile());
  const CityTraceGenerator b(TinyProfile());
  EXPECT_EQ(a.SampleDayCounts(DemandSide::kWorkers, 3),
            b.SampleDayCounts(DemandSide::kWorkers, 3));
}

TEST(CityTraceTest, HistoryMatchesSampledCounts) {
  const CityTraceGenerator generator(TinyProfile());
  const DemandDataset history = generator.GenerateHistory();
  EXPECT_EQ(history.num_days(), 14);
  EXPECT_EQ(history.slots_per_day(), 24);
  EXPECT_EQ(history.num_cells(), 48);
  const std::vector<int> day3 =
      generator.SampleDayCounts(DemandSide::kTasks, 3);
  for (int slot = 0; slot < history.slots_per_day(); ++slot) {
    for (int cell = 0; cell < history.num_cells(); ++cell) {
      EXPECT_DOUBLE_EQ(
          history.tasks(3, slot, cell),
          day3[static_cast<size_t>(slot) * history.num_cells() + cell]);
    }
  }
}

TEST(CityTraceTest, InstanceConsistentWithHistory) {
  const CityTraceGenerator generator(TinyProfile());
  const auto instance = generator.GenerateInstanceForDay(5);
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(instance->Validate().ok());
  // Realized per-type counts equal the sampled counts of the day.
  const auto [workers, tasks] = instance->CountsPerType();
  const std::vector<int> expected_workers =
      generator.SampleDayCounts(DemandSide::kWorkers, 5);
  const std::vector<int> expected_tasks =
      generator.SampleDayCounts(DemandSide::kTasks, 5);
  ASSERT_EQ(workers.size(), expected_workers.size());
  for (size_t k = 0; k < workers.size(); ++k) {
    EXPECT_EQ(workers[k], expected_workers[k]) << "type " << k;
    EXPECT_EQ(tasks[k], expected_tasks[k]) << "type " << k;
  }
}

TEST(CityTraceTest, RejectsDayOutsideHistory) {
  const CityTraceGenerator generator(TinyProfile());
  EXPECT_FALSE(generator.GenerateInstanceForDay(-1).ok());
  EXPECT_FALSE(generator.GenerateInstanceForDay(14).ok());
}

TEST(CityTraceTest, BuiltInProfilesDiffer) {
  const CityProfile beijing = BeijingProfile();
  const CityProfile hangzhou = HangzhouProfile();
  EXPECT_NE(beijing.seed, hangzhou.seed);
  EXPECT_NE(beijing.tasks_per_day, hangzhou.tasks_per_day);
  // Beijing: more tasks than workers; Hangzhou: the reverse (Table 3).
  EXPECT_GT(beijing.tasks_per_day, beijing.workers_per_day);
  EXPECT_LT(hangzhou.tasks_per_day, hangzhou.workers_per_day);
}

TEST(CityTraceTest, WeatherIsBoundedAndVaried) {
  const CityTraceGenerator generator(TinyProfile());
  bool saw_rain = false;
  bool saw_dry = false;
  for (int day = 0; day < 14; ++day) {
    for (int slot = 0; slot < 24; ++slot) {
      const WeatherSample& w = generator.WeatherAt(day, slot);
      EXPECT_GT(w.temperature, -20.0);
      EXPECT_LT(w.temperature, 50.0);
      EXPECT_GE(w.precipitation, 0.0);
      (w.precipitation > 0.1 ? saw_rain : saw_dry) = true;
    }
  }
  EXPECT_TRUE(saw_rain);
  EXPECT_TRUE(saw_dry);
}

TEST(CityTraceTest, RushHoursArePeaked) {
  const CityTraceGenerator generator(TinyProfile());
  const std::vector<double> intensity =
      generator.Intensity(DemandSide::kTasks, 1);
  const int cells = 48;
  auto slot_total = [&](int slot) {
    double total = 0.0;
    for (int cell = 0; cell < cells; ++cell) {
      total += intensity[static_cast<size_t>(slot) * cells + cell];
    }
    return total;
  };
  // 24 slots/day: slot 8 = 8am, slot 3 = 3am.
  EXPECT_GT(slot_total(8), 2.0 * slot_total(3));
}

}  // namespace
}  // namespace ftoa
