#include "gen/looped_trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ftoa {
namespace {

CityProfile SmallProfile() {
  CityProfile profile;
  profile.name = "test-city";
  profile.grid_x = 6;
  profile.grid_y = 4;
  profile.slots_per_day = 6;
  profile.history_days = 4;
  profile.workers_per_day = 120.0;
  profile.tasks_per_day = 130.0;
  profile.seed = 77;
  return profile;
}

TEST(LoopedTraceTest, DayArrivalsAreOnTheAbsoluteAxisAndOrdered) {
  const LoopedTraceSource source(SmallProfile());
  for (const int64_t day : {0, 1, 5}) {
    auto arrivals = source.ArrivalsForDay(day);
    ASSERT_TRUE(arrivals.ok()) << arrivals.status();
    ASSERT_FALSE(arrivals.value().empty());
    const double lo = static_cast<double>(day) * source.day_horizon();
    const double hi = lo + source.day_horizon();
    double prev = lo;
    for (const StreamArrival& a : arrivals.value()) {
      EXPECT_GE(a.time, lo);
      EXPECT_LT(a.time, hi);
      EXPECT_GE(a.time, prev);  // Nondecreasing.
      EXPECT_EQ(a.day, day);
      prev = a.time;
    }
  }
}

TEST(LoopedTraceTest, LoopRepeatsSourceDaysShiftedInTime) {
  LoopedTraceSource::Options options;
  options.loop_days = 2;
  const LoopedTraceSource source(SmallProfile(), options);
  const auto day0 = source.ArrivalsForDay(0);
  const auto day2 = source.ArrivalsForDay(2);  // Same source day as 0.
  ASSERT_TRUE(day0.ok() && day2.ok());
  ASSERT_EQ(day0.value().size(), day2.value().size());
  const double shift = 2.0 * source.day_horizon();
  for (size_t i = 0; i < day0.value().size(); ++i) {
    const StreamArrival& a = day0.value()[i];
    const StreamArrival& b = day2.value()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.source_id, b.source_id);
    EXPECT_DOUBLE_EQ(a.time + shift, b.time);
    EXPECT_DOUBLE_EQ(a.location.x, b.location.x);
    EXPECT_DOUBLE_EQ(a.location.y, b.location.y);
  }
}

TEST(LoopedTraceTest, DeterministicAcrossSources) {
  const LoopedTraceSource a(SmallProfile());
  const LoopedTraceSource b(SmallProfile());
  const auto lhs = a.ArrivalsForDay(3);
  const auto rhs = b.ArrivalsForDay(3);
  ASSERT_TRUE(lhs.ok() && rhs.ok());
  ASSERT_EQ(lhs.value().size(), rhs.value().size());
  for (size_t i = 0; i < lhs.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(lhs.value()[i].time, rhs.value()[i].time);
    EXPECT_EQ(lhs.value()[i].source_id, rhs.value()[i].source_id);
  }
}

TEST(LoopedTraceTest, ScaleGrowsArrivalVolume) {
  LoopedTraceSource::Options big;
  big.scale = 3.0;
  const LoopedTraceSource base(SmallProfile());
  const LoopedTraceSource scaled(SmallProfile(), big);
  const auto small = base.ArrivalsForDay(0);
  const auto large = scaled.ArrivalsForDay(0);
  ASSERT_TRUE(small.ok() && large.ok());
  // Poisson draws: ~3x in expectation; 2x is a safe lower bound at this n.
  EXPECT_GT(large.value().size(), 2 * small.value().size());
}

TEST(LoopedTraceTest, FiniteInstanceConcatenatesDaysAndValidates) {
  const LoopedTraceSource source(SmallProfile());
  auto instance = source.FiniteInstance(3);
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_TRUE(instance.value().Validate().ok());
  EXPECT_EQ(instance.value().spacetime().num_slots(), 18);
  EXPECT_DOUBLE_EQ(instance.value().spacetime().slots().horizon(), 18.0);

  // Same objects as the per-day stream, in the same per-side order.
  size_t expected = 0;
  double max_start = 0.0;
  for (int day = 0; day < 3; ++day) {
    const auto arrivals = source.ArrivalsForDay(day);
    ASSERT_TRUE(arrivals.ok());
    expected += arrivals.value().size();
    for (const StreamArrival& a : arrivals.value()) {
      max_start = std::max(max_start, a.time);
    }
  }
  EXPECT_EQ(instance.value().num_workers() + instance.value().num_tasks(),
            expected);
  EXPECT_LT(max_start, 18.0);

  EXPECT_TRUE(source.FiniteInstance(0).status().IsInvalidArgument());
}

TEST(LoopedTraceTest, RejectsNegativeDay) {
  const LoopedTraceSource source(SmallProfile());
  EXPECT_TRUE(source.ArrivalsForDay(-1).status().IsOutOfRange());
}

}  // namespace
}  // namespace ftoa
