#include "gen/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ftoa {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig config;
  config.num_workers = 2000;
  config.num_tasks = 2000;
  config.grid_x = 20;
  config.grid_y = 20;
  config.num_slots = 16;
  config.seed = 99;
  return config;
}

TEST(SyntheticTest, GeneratesRequestedCounts) {
  const auto instance = GenerateSyntheticInstance(SmallConfig());
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_workers(), 2000u);
  EXPECT_EQ(instance->num_tasks(), 2000u);
  EXPECT_TRUE(instance->Validate().ok());
}

TEST(SyntheticTest, DeterministicInSeed) {
  const auto a = GenerateSyntheticInstance(SmallConfig());
  const auto b = GenerateSyntheticInstance(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->num_workers(); ++i) {
    EXPECT_EQ(a->workers()[i].location, b->workers()[i].location);
    EXPECT_DOUBLE_EQ(a->workers()[i].start, b->workers()[i].start);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig other = SmallConfig();
  other.seed = 100;
  const auto a = GenerateSyntheticInstance(SmallConfig());
  const auto b = GenerateSyntheticInstance(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->workers()[0].location, b->workers()[0].location);
}

TEST(SyntheticTest, ObjectsWithinRegionAndHorizon) {
  const auto instance = GenerateSyntheticInstance(SmallConfig());
  ASSERT_TRUE(instance.ok());
  for (const Worker& w : instance->workers()) {
    EXPECT_GE(w.location.x, 0.0);
    EXPECT_LE(w.location.x, 20.0);
    EXPECT_GE(w.start, 0.0);
    EXPECT_LE(w.start, 16.0);
    EXPECT_DOUBLE_EQ(w.duration, 3.0);
  }
  for (const Task& r : instance->tasks()) {
    EXPECT_DOUBLE_EQ(r.duration, 2.0);
  }
}

TEST(SyntheticTest, TemporalMeansFollowTable4Parameters) {
  // Workers center at 0.25 * horizon, tasks at 0.5 * horizon (defaults).
  SyntheticConfig config = SmallConfig();
  config.num_workers = 20000;
  config.num_tasks = 20000;
  config.workers.temporal_sigma = 0.1;  // Tighten for a sharp check.
  config.tasks.temporal_sigma = 0.1;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  double worker_mean = 0.0;
  double task_mean = 0.0;
  for (const Worker& w : instance->workers()) worker_mean += w.start;
  for (const Task& r : instance->tasks()) task_mean += r.start;
  worker_mean /= static_cast<double>(instance->num_workers());
  task_mean /= static_cast<double>(instance->num_tasks());
  EXPECT_NEAR(worker_mean, 0.25 * 16.0, 0.2);
  EXPECT_NEAR(task_mean, 0.5 * 16.0, 0.2);
}

TEST(SyntheticTest, SpatialMeansFollowTable4Parameters) {
  SyntheticConfig config = SmallConfig();
  config.num_workers = 20000;
  config.workers.spatial_cov = 0.05;
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (const Worker& w : instance->workers()) {
    mean_x += w.location.x;
    mean_y += w.location.y;
  }
  mean_x /= static_cast<double>(instance->num_workers());
  mean_y /= static_cast<double>(instance->num_workers());
  EXPECT_NEAR(mean_x, 0.25 * 20.0, 0.3);
  EXPECT_NEAR(mean_y, 0.25 * 20.0, 0.3);
}

TEST(SyntheticTest, RejectsInvalidConfig) {
  SyntheticConfig config = SmallConfig();
  config.grid_x = 0;
  EXPECT_FALSE(GenerateSyntheticInstance(config).ok());
  config = SmallConfig();
  config.velocity = -1.0;
  EXPECT_FALSE(GenerateSyntheticInstance(config).ok());
  config = SmallConfig();
  config.num_workers = -5;
  EXPECT_FALSE(GenerateSyntheticInstance(config).ok());
}

TEST(SyntheticTest, PredictionIsIndependentReplicateWithSimilarMass) {
  const SyntheticConfig config = SmallConfig();
  const auto prediction = GenerateSyntheticPrediction(config);
  ASSERT_TRUE(prediction.ok());
  EXPECT_EQ(prediction->TotalWorkers(), config.num_workers);
  EXPECT_EQ(prediction->TotalTasks(), config.num_tasks);
  // It must differ from the realized instance's counts (different draw).
  const auto instance = GenerateSyntheticInstance(config);
  ASSERT_TRUE(instance.ok());
  const PredictionMatrix truth = PredictionMatrix::FromInstance(*instance);
  EXPECT_NE(truth.workers(), prediction->workers());
}

}  // namespace
}  // namespace ftoa
