// The supply-displacement mechanics of the city generator: at rush hours
// the worker (supply) and task (demand) spatial distributions must be
// visibly offset — this displacement is what anticipatory dispatching
// exploits on real platforms (DESIGN.md §3) — while off-peak they align.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/city_trace.h"

namespace ftoa {
namespace {

CityProfile SmallCity() {
  CityProfile profile = BeijingProfile();
  profile.grid_x = 10;
  profile.grid_y = 8;
  profile.slots_per_day = 24;
  profile.history_days = 7;
  profile.workers_per_day = 2000.0;
  profile.tasks_per_day = 2000.0;
  return profile;
}

/// L1 distance between two normalized spatial distributions.
double TotalVariation(const std::vector<double>& intensity_a,
                      const std::vector<double>& intensity_b, int slot,
                      int cells) {
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (int cell = 0; cell < cells; ++cell) {
    sum_a += intensity_a[static_cast<size_t>(slot) * cells + cell];
    sum_b += intensity_b[static_cast<size_t>(slot) * cells + cell];
  }
  if (sum_a <= 0.0 || sum_b <= 0.0) return 0.0;
  double tv = 0.0;
  for (int cell = 0; cell < cells; ++cell) {
    tv += std::fabs(
        intensity_a[static_cast<size_t>(slot) * cells + cell] / sum_a -
        intensity_b[static_cast<size_t>(slot) * cells + cell] / sum_b);
  }
  return tv / 2.0;
}

TEST(CityDisplacementTest, SupplyAndDemandAreOffsetAtRushHour) {
  const CityTraceGenerator generator(SmallCity());
  const int cells = 80;
  const auto workers = generator.Intensity(DemandSide::kWorkers, 1);
  const auto tasks = generator.Intensity(DemandSide::kTasks, 1);
  // 24 slots/day: slot 8 = 8am (morning rush), slot 3 = 3am (off-peak).
  const double rush_tv = TotalVariation(workers, tasks, 8, cells);
  const double night_tv = TotalVariation(workers, tasks, 3, cells);
  EXPECT_GT(rush_tv, night_tv);
  EXPECT_GT(rush_tv, 0.15);  // A substantial fraction of supply misplaced.
}

TEST(CityDisplacementTest, DemandPeaksAtResidentialInTheMorning) {
  // The task intensity at 8am concentrates away from where the worker
  // intensity concentrates (swapped phase weights): their argmax cells
  // differ at rush hour.
  const CityTraceGenerator generator(SmallCity());
  const int cells = 80;
  const auto workers = generator.Intensity(DemandSide::kWorkers, 1);
  const auto tasks = generator.Intensity(DemandSide::kTasks, 1);
  auto argmax = [&](const std::vector<double>& intensity, int slot) {
    int best = 0;
    for (int cell = 1; cell < cells; ++cell) {
      if (intensity[static_cast<size_t>(slot) * cells + cell] >
          intensity[static_cast<size_t>(slot) * cells + best]) {
        best = cell;
      }
    }
    return best;
  };
  EXPECT_NE(argmax(tasks, 8), argmax(workers, 8));
}

TEST(CityDisplacementTest, DispatchGainExistsAtRushHour) {
  // Quantifies the exploitable gap: the overlap min(supply, demand) per
  // cell at 8am is substantially below total demand — wait-in-place cannot
  // serve the difference, relocation can.
  const CityTraceGenerator generator(SmallCity());
  const int cells = 80;
  const auto workers = generator.Intensity(DemandSide::kWorkers, 1);
  const auto tasks = generator.Intensity(DemandSide::kTasks, 1);
  const int slot = 8;
  double overlap = 0.0;
  double demand = 0.0;
  for (int cell = 0; cell < cells; ++cell) {
    const double w = workers[static_cast<size_t>(slot) * cells + cell];
    const double r = tasks[static_cast<size_t>(slot) * cells + cell];
    overlap += std::min(w, r);
    demand += r;
  }
  ASSERT_GT(demand, 0.0);
  EXPECT_LT(overlap / demand, 0.9);
}

}  // namespace
}  // namespace ftoa
