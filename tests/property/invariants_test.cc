// Cross-algorithm invariants swept over randomized workload configurations
// (TEST_P property style): structural validity, dominance relations, and
// determinism that must hold for any input.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "baselines/gr_batch.h"
#include "baselines/offline_opt.h"
#include "baselines/simple_greedy.h"
#include "baselines/tgoa.h"
#include "core/guide_generator.h"
#include "core/hybrid_polar_op.h"
#include "core/polar.h"
#include "core/polar_op.h"
#include "gen/synthetic.h"
#include "util/rng.h"

namespace ftoa {
namespace {

struct SweepCase {
  uint64_t seed;
  int objects;
  double task_duration;
  int grid;
  int slots;
};

class InvariantsTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    const SweepCase& param = GetParam();
    config_.num_workers = param.objects;
    config_.num_tasks = param.objects;
    config_.grid_x = param.grid;
    config_.grid_y = param.grid;
    config_.num_slots = param.slots;
    config_.task_duration = param.task_duration;
    config_.seed = param.seed;
    auto instance = GenerateSyntheticInstance(config_);
    ASSERT_TRUE(instance.ok());
    instance_ = std::make_unique<Instance>(std::move(instance).value());
    auto prediction = GenerateSyntheticPrediction(config_);
    ASSERT_TRUE(prediction.ok());
    GuideOptions options;
    options.engine = GuideOptions::Engine::kAuto;
    options.worker_duration = config_.worker_duration;
    options.task_duration = config_.task_duration;
    auto guide = GuideGenerator(config_.velocity, options)
                     .Generate(*prediction);
    ASSERT_TRUE(guide.ok());
    guide_ = std::make_shared<const OfflineGuide>(std::move(guide).value());
  }

  SyntheticConfig config_;
  std::unique_ptr<Instance> instance_;
  std::shared_ptr<const OfflineGuide> guide_;
};

TEST_P(InvariantsTest, AllAssignmentsStructurallySound) {
  SimpleGreedy greedy;
  GrBatch gr;
  Tgoa tgoa;
  Polar polar(guide_);
  PolarOp polar_op(guide_);
  HybridPolarOp hybrid(guide_);
  OfflineOpt opt;
  OnlineAlgorithm* algorithms[] = {&greedy, &gr, &tgoa, &polar, &polar_op,
                                   &hybrid, &opt};
  for (OnlineAlgorithm* algorithm : algorithms) {
    const Assignment assignment = algorithm->Run(*instance_);
    EXPECT_LE(assignment.size(),
              std::min(instance_->num_workers(), instance_->num_tasks()))
        << algorithm->name();
    // Every reported pair is unique per side (structural) and within range;
    // Assignment::Add enforces this, so re-walk the pairs for coherence.
    for (const MatchedPair& pair : assignment.pairs()) {
      EXPECT_EQ(assignment.MatchOfWorker(pair.worker), pair.task);
      EXPECT_EQ(assignment.MatchOfTask(pair.task), pair.worker);
    }
  }
}

TEST_P(InvariantsTest, WaitInPlaceAssignmentsAreDeadlineFeasible) {
  SimpleGreedy greedy;
  const Assignment assignment = greedy.Run(*instance_);
  EXPECT_TRUE(assignment
                  .Validate(*instance_,
                            FeasibilityPolicy::kDispatchAtAssignmentTime)
                  .ok());
}

TEST_P(InvariantsTest, OptDominatesLivenessCheckedOnlineAlgorithms) {
  OfflineOpt opt;
  const size_t opt_size = opt.Run(*instance_).size();
  SimpleGreedy greedy;
  GrBatch gr;
  Tgoa tgoa;
  EXPECT_GE(opt_size, tgoa.Run(*instance_).size());
  Polar polar(guide_, PolarOptions{.check_liveness = true});
  PolarOp polar_op(guide_, PolarOptions{.check_liveness = true});
  EXPECT_GE(opt_size, greedy.Run(*instance_).size());
  EXPECT_GE(opt_size, gr.Run(*instance_).size());
  EXPECT_GE(opt_size, polar.Run(*instance_).size());
  EXPECT_GE(opt_size, polar_op.Run(*instance_).size());
}

TEST_P(InvariantsTest, AlgorithmsAreDeterministic) {
  PolarOp polar_op(guide_);
  const Assignment a = polar_op.Run(*instance_);
  const Assignment b = polar_op.Run(*instance_);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.pairs().size(); ++i) {
    EXPECT_EQ(a.pairs()[i].worker, b.pairs()[i].worker);
    EXPECT_EQ(a.pairs()[i].task, b.pairs()[i].task);
  }
}

TEST_P(InvariantsTest, HybridDominatesPolarOp) {
  PolarOp polar_op(guide_);
  HybridPolarOp hybrid(guide_);
  EXPECT_GE(hybrid.Run(*instance_).size(), polar_op.Run(*instance_).size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvariantsTest,
    ::testing::Values(SweepCase{1, 300, 1.0, 8, 6},
                      SweepCase{2, 300, 2.0, 8, 6},
                      SweepCase{3, 500, 2.0, 12, 8},
                      SweepCase{4, 500, 3.0, 12, 8},
                      SweepCase{5, 800, 2.0, 16, 12},
                      SweepCase{6, 800, 1.5, 16, 12},
                      SweepCase{7, 200, 2.5, 6, 4},
                      SweepCase{8, 1000, 2.0, 20, 16}),
    [](const ::testing::TestParamInfo<SweepCase>& tpi) {
      return "seed" + std::to_string(tpi.param.seed) + "_n" +
             std::to_string(tpi.param.objects);
    });

}  // namespace
}  // namespace ftoa
