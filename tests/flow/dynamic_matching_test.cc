#include "flow/dynamic_matching.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "flow/hopcroft_karp.h"
#include "test_util.h"
#include "util/rng.h"

namespace ftoa {
namespace {

TEST(DynamicMatchingTest, MatchesSimplePairs) {
  DynamicBipartiteMatcher m;
  const int32_t l0 = m.AddLeft();
  const int32_t l1 = m.AddLeft();
  const int32_t r0 = m.AddRight();
  const int32_t r1 = m.AddRight();
  m.AddEdge(l0, r0);
  m.AddEdge(l1, r0);
  m.AddEdge(l1, r1);
  EXPECT_TRUE(m.TryAugmentLeft(l0));
  EXPECT_TRUE(m.TryAugmentLeft(l1));
  EXPECT_EQ(m.matching_size(), 2);
  EXPECT_EQ(m.MatchOfLeft(l0), r0);
  EXPECT_EQ(m.MatchOfLeft(l1), r1);
}

TEST(DynamicMatchingTest, AugmentReroutesExistingMatches) {
  // l1 can only take r0; l0 must be re-routed to r1 through the
  // alternating path.
  DynamicBipartiteMatcher m;
  const int32_t l0 = m.AddLeft();
  const int32_t l1 = m.AddLeft();
  const int32_t r0 = m.AddRight();
  const int32_t r1 = m.AddRight();
  m.AddEdge(l0, r0);
  m.AddEdge(l0, r1);
  m.AddEdge(l1, r0);
  EXPECT_TRUE(m.TryAugmentLeft(l0));
  EXPECT_EQ(m.MatchOfLeft(l0), r0);
  EXPECT_TRUE(m.TryAugmentLeft(l1));
  EXPECT_EQ(m.MatchOfLeft(l1), r0);
  EXPECT_EQ(m.MatchOfLeft(l0), r1);
  EXPECT_EQ(m.matching_size(), 2);
}

TEST(DynamicMatchingTest, RemoveRepairsMaximality) {
  // Removing a matched node releases its partner, and the repair
  // augmentation re-matches the partner when possible.
  DynamicBipartiteMatcher m;
  const int32_t l0 = m.AddLeft();
  const int32_t l1 = m.AddLeft();
  const int32_t r0 = m.AddRight();
  m.AddEdge(l0, r0);
  m.AddEdge(l1, r0);
  EXPECT_TRUE(m.TryAugmentLeft(l0));
  EXPECT_FALSE(m.TryAugmentLeft(l1));  // r0 taken, no augmenting path.
  m.RemoveLeft(l0);
  // The repair from r0 must have re-matched it to l1.
  EXPECT_EQ(m.matching_size(), 1);
  EXPECT_EQ(m.MatchOfRight(r0), l1);
}

TEST(DynamicMatchingTest, RemovePairCommitsBothSides) {
  DynamicBipartiteMatcher m;
  const int32_t l0 = m.AddLeft();
  const int32_t r0 = m.AddRight();
  m.AddEdge(l0, r0);
  EXPECT_TRUE(m.TryAugmentLeft(l0));
  m.RemovePair(l0, r0);
  EXPECT_EQ(m.matching_size(), 0);
  EXPECT_FALSE(m.LeftActive(l0));
  EXPECT_FALSE(m.RightActive(r0));
}

TEST(DynamicMatchingTest, TryAugmentRightMirrorsLeft) {
  DynamicBipartiteMatcher m;
  const int32_t l0 = m.AddLeft();
  const int32_t r0 = m.AddRight();
  const int32_t r1 = m.AddRight();
  m.AddEdge(l0, r0);
  m.AddEdge(l0, r1);
  EXPECT_TRUE(m.TryAugmentRight(r0));
  EXPECT_EQ(m.MatchOfRight(r0), l0);
  EXPECT_FALSE(m.TryAugmentRight(r1));  // l0 taken, no alternative.
}

TEST(DynamicMatchingTest, ResetClearsState) {
  DynamicBipartiteMatcher m;
  m.AddLeft();
  m.AddRight();
  m.AddEdge(0, 0);
  EXPECT_TRUE(m.TryAugmentLeft(0));
  m.Reset();
  EXPECT_EQ(m.matching_size(), 0);
  EXPECT_EQ(m.num_left(), 0);
  EXPECT_EQ(m.num_right(), 0);
  EXPECT_EQ(m.num_edges(), 0u);
}

// Property: incrementally inserting all nodes/edges and augmenting from
// each left reaches the same maximum cardinality as Hopcroft-Karp on the
// same bipartite graph.
class DynamicMatchingPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicMatchingPropertyTest, CardinalityMatchesHopcroftKarp) {
  Rng rng(GetParam() * 2654435761u + 17);
  const int32_t num_left = 5 + static_cast<int32_t>(rng.NextBounded(25));
  const int32_t num_right = 5 + static_cast<int32_t>(rng.NextBounded(25));

  DynamicBipartiteMatcher dynamic;
  HopcroftKarp hk(num_left, num_right);
  for (int32_t l = 0; l < num_left; ++l) dynamic.AddLeft();
  for (int32_t r = 0; r < num_right; ++r) dynamic.AddRight();
  for (int32_t l = 0; l < num_left; ++l) {
    for (int32_t r = 0; r < num_right; ++r) {
      if (rng.NextBool(0.15)) {
        dynamic.AddEdge(l, r);
        hk.AddEdge(l, r);
      }
    }
  }
  for (int32_t l = 0; l < num_left; ++l) dynamic.TryAugmentLeft(l);
  EXPECT_EQ(dynamic.matching_size(), hk.Solve());
}

TEST_P(DynamicMatchingPropertyTest, RemovalKeepsMaximality) {
  // After random node removals, the maintained matching must still equal
  // a from-scratch maximum matching over the surviving subgraph.
  Rng rng(GetParam() * 40503 + 3);
  const int32_t num_left = 5 + static_cast<int32_t>(rng.NextBounded(20));
  const int32_t num_right = 5 + static_cast<int32_t>(rng.NextBounded(20));
  DynamicBipartiteMatcher dynamic;
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t l = 0; l < num_left; ++l) dynamic.AddLeft();
  for (int32_t r = 0; r < num_right; ++r) dynamic.AddRight();
  for (int32_t l = 0; l < num_left; ++l) {
    for (int32_t r = 0; r < num_right; ++r) {
      if (rng.NextBool(0.2)) {
        dynamic.AddEdge(l, r);
        edges.emplace_back(l, r);
      }
    }
  }
  for (int32_t l = 0; l < num_left; ++l) dynamic.TryAugmentLeft(l);

  for (int32_t l = 0; l < num_left; ++l) {
    if (rng.NextBool(0.3)) dynamic.RemoveLeft(l);
  }
  for (int32_t r = 0; r < num_right; ++r) {
    if (rng.NextBool(0.3)) dynamic.RemoveRight(r);
  }

  // From-scratch reference over the survivors.
  HopcroftKarp hk(num_left, num_right);
  for (const auto& [l, r] : edges) {
    if (dynamic.LeftActive(l) && dynamic.RightActive(r)) hk.AddEdge(l, r);
  }
  EXPECT_EQ(dynamic.matching_size(), hk.Solve());

  // The maintained matching itself must be consistent and edge-valid.
  int64_t matched = 0;
  for (int32_t l = 0; l < num_left; ++l) {
    const int32_t r = dynamic.LeftActive(l) ? dynamic.MatchOfLeft(l) : -1;
    if (r < 0) continue;
    ++matched;
    EXPECT_TRUE(dynamic.RightActive(r));
    EXPECT_EQ(dynamic.MatchOfRight(r), l);
    EXPECT_TRUE(std::count(edges.begin(), edges.end(),
                           std::make_pair(l, r)) > 0);
  }
  EXPECT_EQ(matched, dynamic.matching_size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicMatchingPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

// Shard-routed usage, as the sharded dispatcher's per-shard batched
// baselines exercise it: each shard owns one long-lived incremental
// matcher arena, arrivals are routed to a shard and inserted with one
// augmenting search, departures are removed with one repair search — and
// after every batch each shard must agree with a from-scratch
// Hopcroft-Karp rebuild over its live subgraph. Runs at a small default
// iteration count; tools/run_stress.sh widens it via FTOA_STRESS_ITERS.
TEST(DynamicMatchingShardStressTest,
     PerShardIncrementalMatchesRebuildPerBatchReference) {
  const int iterations = ::ftoa::testing::StressIterations(5);
  Rng seeds(0xfeed5eedULL);
  for (int iter = 0; iter < iterations; ++iter) {
    Rng rng(seeds.Next());
    const int num_shards = 2 + static_cast<int>(rng.NextBounded(3));
    const int num_batches = 4 + static_cast<int>(rng.NextBounded(5));
    const double edge_prob = 0.1 + rng.NextDouble() * 0.2;

    struct Shard {
      DynamicBipartiteMatcher incremental;
      std::vector<std::pair<int32_t, int32_t>> edges;  // Shard-local ids.
    };
    std::vector<std::unique_ptr<Shard>> shards;
    for (int s = 0; s < num_shards; ++s) {
      shards.push_back(std::make_unique<Shard>());
    }

    for (int batch = 0; batch < num_batches; ++batch) {
      // Routed arrivals: every new node lands on one shard and matches
      // only within it (per-shard sessions never see foreign objects).
      const int arrivals = 2 + static_cast<int>(rng.NextBounded(9));
      for (int i = 0; i < arrivals; ++i) {
        Shard& shard = *shards[rng.NextBounded(shards.size())];
        DynamicBipartiteMatcher& m = shard.incremental;
        if (rng.NextBool()) {
          const int32_t l = m.AddLeft();
          for (int32_t r = 0; r < m.num_right(); ++r) {
            if (m.RightActive(r) && rng.NextBool(edge_prob)) {
              m.AddEdge(l, r);
              shard.edges.emplace_back(l, r);
            }
          }
          m.TryAugmentLeft(l);
        } else {
          const int32_t r = m.AddRight();
          for (int32_t l = 0; l < m.num_left(); ++l) {
            if (m.LeftActive(l) && rng.NextBool(edge_prob)) {
              m.AddEdge(l, r);
              shard.edges.emplace_back(l, r);
            }
          }
          m.TryAugmentRight(r);
        }
      }
      // Deadline expiry: random actives depart, one repair search each.
      for (auto& shard_ptr : shards) {
        DynamicBipartiteMatcher& m = shard_ptr->incremental;
        for (int32_t l = 0; l < m.num_left(); ++l) {
          if (m.LeftActive(l) && rng.NextBool(0.1)) m.RemoveLeft(l);
        }
        for (int32_t r = 0; r < m.num_right(); ++r) {
          if (m.RightActive(r) && rng.NextBool(0.1)) m.RemoveRight(r);
        }
      }
      // Rebuild-per-batch reference, per shard, over the live subgraph.
      for (size_t s = 0; s < shards.size(); ++s) {
        const Shard& shard = *shards[s];
        const DynamicBipartiteMatcher& m = shard.incremental;
        HopcroftKarp reference(m.num_left(), m.num_right());
        for (const auto& [l, r] : shard.edges) {
          if (m.LeftActive(l) && m.RightActive(r)) {
            reference.AddEdge(l, r);
          }
        }
        EXPECT_EQ(m.matching_size(), reference.Solve())
            << "iter " << iter << " batch " << batch << " shard " << s;
      }
    }
    // The incremental path must have worked augmentation-wise, not by
    // accident of empty shards.
    int64_t searches = 0;
    for (const auto& shard : shards) {
      searches += shard->incremental.augment_searches();
    }
    EXPECT_GT(searches, 0) << "iter " << iter;
  }
}

}  // namespace
}  // namespace ftoa
