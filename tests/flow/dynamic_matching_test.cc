#include "flow/dynamic_matching.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flow/hopcroft_karp.h"
#include "util/rng.h"

namespace ftoa {
namespace {

TEST(DynamicMatchingTest, MatchesSimplePairs) {
  DynamicBipartiteMatcher m;
  const int32_t l0 = m.AddLeft();
  const int32_t l1 = m.AddLeft();
  const int32_t r0 = m.AddRight();
  const int32_t r1 = m.AddRight();
  m.AddEdge(l0, r0);
  m.AddEdge(l1, r0);
  m.AddEdge(l1, r1);
  EXPECT_TRUE(m.TryAugmentLeft(l0));
  EXPECT_TRUE(m.TryAugmentLeft(l1));
  EXPECT_EQ(m.matching_size(), 2);
  EXPECT_EQ(m.MatchOfLeft(l0), r0);
  EXPECT_EQ(m.MatchOfLeft(l1), r1);
}

TEST(DynamicMatchingTest, AugmentReroutesExistingMatches) {
  // l1 can only take r0; l0 must be re-routed to r1 through the
  // alternating path.
  DynamicBipartiteMatcher m;
  const int32_t l0 = m.AddLeft();
  const int32_t l1 = m.AddLeft();
  const int32_t r0 = m.AddRight();
  const int32_t r1 = m.AddRight();
  m.AddEdge(l0, r0);
  m.AddEdge(l0, r1);
  m.AddEdge(l1, r0);
  EXPECT_TRUE(m.TryAugmentLeft(l0));
  EXPECT_EQ(m.MatchOfLeft(l0), r0);
  EXPECT_TRUE(m.TryAugmentLeft(l1));
  EXPECT_EQ(m.MatchOfLeft(l1), r0);
  EXPECT_EQ(m.MatchOfLeft(l0), r1);
  EXPECT_EQ(m.matching_size(), 2);
}

TEST(DynamicMatchingTest, RemoveRepairsMaximality) {
  // Removing a matched node releases its partner, and the repair
  // augmentation re-matches the partner when possible.
  DynamicBipartiteMatcher m;
  const int32_t l0 = m.AddLeft();
  const int32_t l1 = m.AddLeft();
  const int32_t r0 = m.AddRight();
  m.AddEdge(l0, r0);
  m.AddEdge(l1, r0);
  EXPECT_TRUE(m.TryAugmentLeft(l0));
  EXPECT_FALSE(m.TryAugmentLeft(l1));  // r0 taken, no augmenting path.
  m.RemoveLeft(l0);
  // The repair from r0 must have re-matched it to l1.
  EXPECT_EQ(m.matching_size(), 1);
  EXPECT_EQ(m.MatchOfRight(r0), l1);
}

TEST(DynamicMatchingTest, RemovePairCommitsBothSides) {
  DynamicBipartiteMatcher m;
  const int32_t l0 = m.AddLeft();
  const int32_t r0 = m.AddRight();
  m.AddEdge(l0, r0);
  EXPECT_TRUE(m.TryAugmentLeft(l0));
  m.RemovePair(l0, r0);
  EXPECT_EQ(m.matching_size(), 0);
  EXPECT_FALSE(m.LeftActive(l0));
  EXPECT_FALSE(m.RightActive(r0));
}

TEST(DynamicMatchingTest, TryAugmentRightMirrorsLeft) {
  DynamicBipartiteMatcher m;
  const int32_t l0 = m.AddLeft();
  const int32_t r0 = m.AddRight();
  const int32_t r1 = m.AddRight();
  m.AddEdge(l0, r0);
  m.AddEdge(l0, r1);
  EXPECT_TRUE(m.TryAugmentRight(r0));
  EXPECT_EQ(m.MatchOfRight(r0), l0);
  EXPECT_FALSE(m.TryAugmentRight(r1));  // l0 taken, no alternative.
}

TEST(DynamicMatchingTest, ResetClearsState) {
  DynamicBipartiteMatcher m;
  m.AddLeft();
  m.AddRight();
  m.AddEdge(0, 0);
  EXPECT_TRUE(m.TryAugmentLeft(0));
  m.Reset();
  EXPECT_EQ(m.matching_size(), 0);
  EXPECT_EQ(m.num_left(), 0);
  EXPECT_EQ(m.num_right(), 0);
  EXPECT_EQ(m.num_edges(), 0u);
}

// Property: incrementally inserting all nodes/edges and augmenting from
// each left reaches the same maximum cardinality as Hopcroft-Karp on the
// same bipartite graph.
class DynamicMatchingPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicMatchingPropertyTest, CardinalityMatchesHopcroftKarp) {
  Rng rng(GetParam() * 2654435761u + 17);
  const int32_t num_left = 5 + static_cast<int32_t>(rng.NextBounded(25));
  const int32_t num_right = 5 + static_cast<int32_t>(rng.NextBounded(25));

  DynamicBipartiteMatcher dynamic;
  HopcroftKarp hk(num_left, num_right);
  for (int32_t l = 0; l < num_left; ++l) dynamic.AddLeft();
  for (int32_t r = 0; r < num_right; ++r) dynamic.AddRight();
  for (int32_t l = 0; l < num_left; ++l) {
    for (int32_t r = 0; r < num_right; ++r) {
      if (rng.NextBool(0.15)) {
        dynamic.AddEdge(l, r);
        hk.AddEdge(l, r);
      }
    }
  }
  for (int32_t l = 0; l < num_left; ++l) dynamic.TryAugmentLeft(l);
  EXPECT_EQ(dynamic.matching_size(), hk.Solve());
}

TEST_P(DynamicMatchingPropertyTest, RemovalKeepsMaximality) {
  // After random node removals, the maintained matching must still equal
  // a from-scratch maximum matching over the surviving subgraph.
  Rng rng(GetParam() * 40503 + 3);
  const int32_t num_left = 5 + static_cast<int32_t>(rng.NextBounded(20));
  const int32_t num_right = 5 + static_cast<int32_t>(rng.NextBounded(20));
  DynamicBipartiteMatcher dynamic;
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t l = 0; l < num_left; ++l) dynamic.AddLeft();
  for (int32_t r = 0; r < num_right; ++r) dynamic.AddRight();
  for (int32_t l = 0; l < num_left; ++l) {
    for (int32_t r = 0; r < num_right; ++r) {
      if (rng.NextBool(0.2)) {
        dynamic.AddEdge(l, r);
        edges.emplace_back(l, r);
      }
    }
  }
  for (int32_t l = 0; l < num_left; ++l) dynamic.TryAugmentLeft(l);

  for (int32_t l = 0; l < num_left; ++l) {
    if (rng.NextBool(0.3)) dynamic.RemoveLeft(l);
  }
  for (int32_t r = 0; r < num_right; ++r) {
    if (rng.NextBool(0.3)) dynamic.RemoveRight(r);
  }

  // From-scratch reference over the survivors.
  HopcroftKarp hk(num_left, num_right);
  for (const auto& [l, r] : edges) {
    if (dynamic.LeftActive(l) && dynamic.RightActive(r)) hk.AddEdge(l, r);
  }
  EXPECT_EQ(dynamic.matching_size(), hk.Solve());

  // The maintained matching itself must be consistent and edge-valid.
  int64_t matched = 0;
  for (int32_t l = 0; l < num_left; ++l) {
    const int32_t r = dynamic.LeftActive(l) ? dynamic.MatchOfLeft(l) : -1;
    if (r < 0) continue;
    ++matched;
    EXPECT_TRUE(dynamic.RightActive(r));
    EXPECT_EQ(dynamic.MatchOfRight(r), l);
    EXPECT_TRUE(std::count(edges.begin(), edges.end(),
                           std::make_pair(l, r)) > 0);
  }
  EXPECT_EQ(matched, dynamic.matching_size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicMatchingPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace ftoa
