#include <gtest/gtest.h>

#include <vector>

#include "flow/dinic.h"
#include "flow/ford_fulkerson.h"
#include "flow/graph.h"
#include "util/rng.h"

namespace ftoa {
namespace {

TEST(FlowGraphTest, EdgeBookkeeping) {
  FlowGraph g(3);
  const EdgeId e = g.AddEdge(0, 1, 5);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.To(e), 1);
  EXPECT_EQ(g.Capacity(e), 5);
  EXPECT_EQ(g.Flow(e), 0);
}

TEST(MaxFlowTest, SingleEdge) {
  for (bool use_dinic : {false, true}) {
    FlowGraph g(2);
    g.AddEdge(0, 1, 7);
    const int64_t flow = use_dinic ? DinicMaxFlow(&g, 0, 1)
                                   : FordFulkersonMaxFlow(&g, 0, 1);
    EXPECT_EQ(flow, 7);
  }
}

TEST(MaxFlowTest, ClassicDiamond) {
  // s=0 -> {1, 2} -> t=3 with a cross edge; max flow = 2 with unit caps.
  for (bool use_dinic : {false, true}) {
    FlowGraph g(4);
    g.AddEdge(0, 1, 1);
    g.AddEdge(0, 2, 1);
    g.AddEdge(1, 3, 1);
    g.AddEdge(2, 3, 1);
    g.AddEdge(1, 2, 1);
    const int64_t flow = use_dinic ? DinicMaxFlow(&g, 0, 3)
                                   : FordFulkersonMaxFlow(&g, 0, 3);
    EXPECT_EQ(flow, 2);
  }
}

TEST(MaxFlowTest, RequiresResidualPushBack) {
  // The classic example where a greedy path must be undone via the
  // residual edge: s->a->b->t with a crossing s->b, a->t.
  for (bool use_dinic : {false, true}) {
    FlowGraph g(4);
    g.AddEdge(0, 1, 1);  // s->a
    g.AddEdge(1, 2, 1);  // a->b
    g.AddEdge(2, 3, 1);  // b->t
    g.AddEdge(0, 2, 1);  // s->b
    g.AddEdge(1, 3, 1);  // a->t
    const int64_t flow = use_dinic ? DinicMaxFlow(&g, 0, 3)
                                   : FordFulkersonMaxFlow(&g, 0, 3);
    EXPECT_EQ(flow, 2);
  }
}

TEST(MaxFlowTest, DisconnectedSinkGivesZero) {
  FlowGraph g(4);
  g.AddEdge(0, 1, 3);
  g.AddEdge(2, 3, 3);
  EXPECT_EQ(DinicMaxFlow(&g, 0, 3), 0);
}

TEST(MaxFlowTest, PerEdgeFlowConservation) {
  FlowGraph g(5);
  std::vector<EdgeId> edges;
  edges.push_back(g.AddEdge(0, 1, 4));
  edges.push_back(g.AddEdge(0, 2, 2));
  edges.push_back(g.AddEdge(1, 3, 3));
  edges.push_back(g.AddEdge(2, 3, 3));
  edges.push_back(g.AddEdge(3, 4, 5));
  const int64_t flow = DinicMaxFlow(&g, 0, 4);
  EXPECT_EQ(flow, 5);
  // Conservation at node 3: inflow == outflow.
  EXPECT_EQ(g.Flow(edges[2]) + g.Flow(edges[3]), g.Flow(edges[4]));
  // Source outflow equals total flow.
  EXPECT_EQ(g.Flow(edges[0]) + g.Flow(edges[1]), flow);
}

TEST(MaxFlowTest, ResidualReachabilityGivesMinCut) {
  FlowGraph g(4);
  const EdgeId bottleneck = g.AddEdge(1, 2, 1);
  g.AddEdge(0, 1, 10);
  g.AddEdge(2, 3, 10);
  EXPECT_EQ(DinicMaxFlow(&g, 0, 3), 1);
  const std::vector<bool> reachable = ResidualReachable(g, 0);
  EXPECT_TRUE(reachable[0]);
  EXPECT_TRUE(reachable[1]);
  EXPECT_FALSE(reachable[2]);
  EXPECT_FALSE(reachable[3]);
  EXPECT_EQ(g.Flow(bottleneck), 1);
}

// Property: Ford-Fulkerson and Dinic agree on random bipartite-ish graphs,
// and the flow value equals the min cut crossing capacity.
class MaxFlowPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxFlowPropertyTest, EnginesAgreeAndMatchMinCut) {
  Rng rng(GetParam());
  const int left = 2 + static_cast<int>(rng.NextBounded(10));
  const int right = 2 + static_cast<int>(rng.NextBounded(10));
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(1 + left + right);

  FlowGraph g1(t + 1);
  FlowGraph g2(t + 1);
  for (int i = 0; i < left; ++i) {
    const int64_t cap = 1 + static_cast<int64_t>(rng.NextBounded(3));
    g1.AddEdge(s, 1 + i, cap);
    g2.AddEdge(s, 1 + i, cap);
  }
  for (int j = 0; j < right; ++j) {
    const int64_t cap = 1 + static_cast<int64_t>(rng.NextBounded(3));
    g1.AddEdge(1 + left + j, t, cap);
    g2.AddEdge(1 + left + j, t, cap);
  }
  for (int i = 0; i < left; ++i) {
    for (int j = 0; j < right; ++j) {
      if (rng.NextBool(0.4)) {
        const int64_t cap = 1 + static_cast<int64_t>(rng.NextBounded(2));
        g1.AddEdge(1 + i, 1 + left + j, cap);
        g2.AddEdge(1 + i, 1 + left + j, cap);
      }
    }
  }
  const int64_t ff = FordFulkersonMaxFlow(&g1, s, t);
  const int64_t dinic = DinicMaxFlow(&g2, s, t);
  EXPECT_EQ(ff, dinic);

  // Max-flow equals min-cut: sum the capacities of saturated edges that
  // cross the residual-reachability cut.
  const std::vector<bool> reachable = ResidualReachable(g2, s);
  int64_t cut = 0;
  for (size_t e = 0; e < g2.to().size(); e += 2) {
    // Forward edges sit at even indices; original capacity is cap + flow.
    const NodeId u = g2.to()[e + 1];  // Residual partner points back at u.
    const NodeId v = g2.to()[e];
    if (reachable[static_cast<size_t>(u)] &&
        !reachable[static_cast<size_t>(v)]) {
      cut += g2.Capacity(static_cast<EdgeId>(e)) +
             g2.Flow(static_cast<EdgeId>(e));
    }
  }
  EXPECT_EQ(cut, dinic);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace ftoa
