// FlowEngine registry + engine equivalence suites.
//
// Contract pinned here (see docs/flow_engines.md):
//  * every engine returns the same (flow, cost) Outcome as the SolveSpfa
//    oracle on the same instance — per-edge flow patterns may differ
//    between equally cheap solutions, the (flow, cost) pair pins them;
//  * per engine, the solved per-edge flows are bit-identical at any thread
//    count (SetParallelism only shards order-insensitive scans);
//  * kAuto is a pure function of the instance shape;
//  * near-limit costs saturate instead of wrapping (the kInf audit).

#include "flow/flow_engine.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "flow/min_cost_flow.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftoa {
namespace {

constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;

const FlowEngine kConcreteEngines[] = {
    FlowEngine::kSsp, FlowEngine::kBlockingSsp, FlowEngine::kCostScaling};

// ---------------------------------------------------------------------------
// Registry.

TEST(FlowEngineRegistryTest, NamesRoundTripThroughParse) {
  for (const std::string& name : AllFlowEngineNames()) {
    const auto parsed = ParseFlowEngine(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(FlowEngineName(*parsed), name);
  }
}

TEST(FlowEngineRegistryTest, ParseRejectsUnknownListingValidSet) {
  const auto parsed = ParseFlowEngine("simplex");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("blocking-ssp"), std::string::npos);
}

TEST(FlowEngineRegistryTest, AutoSelectionIsAPureShapeFunction) {
  FlowInstanceShape shape;
  shape.num_nodes = 4098;
  shape.num_edges = 100'000;
  shape.supply = 2048;
  shape.max_capacity = 1;
  shape.unit_capacity_edges = 100'000;
  shape.cost_classes = 4;
  const FlowEngine first = ChooseFlowEngine(shape);
  EXPECT_EQ(ChooseFlowEngine(shape), first);
}

TEST(FlowEngineRegistryTest, AutoMatchesMeasuredCrossoverRegimes) {
  // Tiny remaining flow: per-unit SSP wins regardless of the network.
  FlowInstanceShape small;
  small.num_nodes = 4098;
  small.num_edges = 100'000;
  small.supply = 8;
  small.max_capacity = 1;
  small.unit_capacity_edges = 100'000;
  small.cost_classes = 4;
  EXPECT_EQ(ChooseFlowEngine(small), FlowEngine::kSsp);

  // The guide generator's node-level regime: unit-capacity bipartite,
  // large supply, heavy cost ties (quantized travel times repeat across
  // every node pair of a type pair) — the blocking engine's territory
  // (the `ties` rows of the BENCH_flow sweep).
  FlowInstanceShape unit = small;
  unit.supply = 2048;
  EXPECT_EQ(ChooseFlowEngine(unit), FlowEngine::kBlockingSsp);

  // Same layout with all-distinct costs (the `dense` sweep rows): each
  // blocking phase would admit ~one path, so the settle overhead loses —
  // measured winner is cost-scaling.
  FlowInstanceShape distinct = unit;
  distinct.cost_classes = 90'000;
  EXPECT_EQ(ChooseFlowEngine(distinct), FlowEngine::kCostScaling);

  // Compressed type-pair regime: high capacities, augmenting paths pay per
  // unit — cost-scaling territory.
  FlowInstanceShape heavy = unit;
  heavy.max_capacity = 10'000;
  heavy.unit_capacity_edges = 0;
  EXPECT_EQ(ChooseFlowEngine(heavy), FlowEngine::kCostScaling);

  // Degenerate shapes never crash the rule.
  FlowInstanceShape empty;
  EXPECT_EQ(ChooseFlowEngine(empty), FlowEngine::kSsp);
}

TEST(FlowEngineRegistryTest, ComputeShapeMeasuresTheResidualNetwork) {
  MinCostFlowGraph g(4);
  const int32_t e0 = g.AddEdge(0, 1, 5, 1);
  g.AddEdge(0, 2, 1, 1);
  g.AddEdge(1, 3, 1, 1);
  g.AddEdge(2, 3, 7, 1);
  FlowInstanceShape shape = g.ComputeShape(0);
  EXPECT_EQ(shape.num_nodes, 4);
  EXPECT_EQ(shape.num_edges, 4);
  EXPECT_EQ(shape.supply, 6);
  EXPECT_EQ(shape.max_capacity, 7);
  EXPECT_EQ(shape.unit_capacity_edges, 2);
  EXPECT_EQ(shape.cost_classes, 1);  // All four edges share cost 1.

  // Supply is residual (remaining headroom out of s); the capacity profile
  // keeps describing the *original* network under any routed flow.
  g.PushFlow(e0, 5);
  shape = g.ComputeShape(0);
  EXPECT_EQ(shape.supply, 1);
  EXPECT_EQ(shape.max_capacity, 7);
  EXPECT_EQ(shape.unit_capacity_edges, 2);
}

// ---------------------------------------------------------------------------
// Oracle equivalence: every engine vs SolveSpfa.

using EdgeSpec = std::vector<std::array<int64_t, 4>>;  // u, v, cap, cost

MinCostFlowGraph BuildGraph(int32_t n, const EdgeSpec& edges) {
  MinCostFlowGraph g(n);
  g.ReserveEdges(edges.size());
  for (const auto& e : edges) {
    g.AddEdge(static_cast<int32_t>(e[0]), static_cast<int32_t>(e[1]), e[2],
              e[3]);
  }
  return g;
}

void ExpectAllEnginesMatchOracle(int32_t n, const EdgeSpec& edges, int32_t s,
                                 int32_t t) {
  MinCostFlowGraph oracle = BuildGraph(n, edges);
  const auto expected = oracle.SolveSpfa(s, t);
  for (const FlowEngine engine : kConcreteEngines) {
    MinCostFlowGraph g = BuildGraph(n, edges);
    const auto outcome = g.Solve(s, t, engine);
    EXPECT_EQ(outcome.flow, expected.flow) << FlowEngineName(engine);
    EXPECT_EQ(outcome.cost, expected.cost) << FlowEngineName(engine);
    // The routed network must itself carry a min-cost flow, not just
    // report one.
    EXPECT_EQ(g.TotalRoutedCost(), expected.cost) << FlowEngineName(engine);
  }
  // kAuto resolves to one of the above, so it inherits the equivalence.
  MinCostFlowGraph g = BuildGraph(n, edges);
  const auto outcome = g.Solve(s, t, FlowEngine::kAuto);
  EXPECT_EQ(outcome.flow, expected.flow);
  EXPECT_EQ(outcome.cost, expected.cost);
}

class EngineOracleStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineOracleStressTest, DenseRandomDigraph) {
  Rng rng(GetParam() * 7919 + 3);
  const int32_t n = 6 + static_cast<int32_t>(rng.NextBounded(8));
  EdgeSpec edges;
  for (int32_t u = 0; u < n; ++u) {
    for (int32_t v = 0; v < n; ++v) {
      if (u != v && rng.NextBool(0.45)) {
        edges.push_back({u, v, 1 + static_cast<int64_t>(rng.NextBounded(9)),
                         static_cast<int64_t>(rng.NextBounded(50))});
      }
    }
  }
  ExpectAllEnginesMatchOracle(n, edges, 0, n - 1);
}

TEST_P(EngineOracleStressTest, SparseRandomDigraph) {
  Rng rng(GetParam() * 104729 + 11);
  const int32_t n = 20 + static_cast<int32_t>(rng.NextBounded(30));
  EdgeSpec edges;
  for (int32_t u = 0; u < n; ++u) {
    for (int32_t v = 0; v < n; ++v) {
      if (u != v && rng.NextBool(0.08)) {
        edges.push_back({u, v, 1 + static_cast<int64_t>(rng.NextBounded(4)),
                         static_cast<int64_t>(rng.NextBounded(1000))});
      }
    }
  }
  ExpectAllEnginesMatchOracle(n, edges, 0, n - 1);
}

TEST_P(EngineOracleStressTest, UnitCapacityBipartiteAssignment) {
  Rng rng(GetParam() * 65537 + 29);
  const int32_t side = 8 + static_cast<int32_t>(rng.NextBounded(17));
  const int32_t source = 0;
  const int32_t sink = 1 + 2 * side;
  EdgeSpec edges;
  for (int32_t w = 0; w < side; ++w) edges.push_back({source, 1 + w, 1, 0});
  for (int32_t r = 0; r < side; ++r) {
    edges.push_back({1 + side + r, sink, 1, 0});
  }
  for (int32_t w = 0; w < side; ++w) {
    for (int32_t r = 0; r < side; ++r) {
      if (rng.NextBool(0.4)) {
        edges.push_back({1 + w, 1 + side + r, 1,
                         1 + static_cast<int64_t>(rng.NextBounded(1000))});
      }
    }
  }
  ExpectAllEnginesMatchOracle(sink + 1, edges, source, sink);
}

TEST_P(EngineOracleStressTest, HighCapacityCompressedStyleNetwork) {
  // The compressed type-pair regime: few nodes, capacities in the
  // thousands — where per-unit augmentation is the enemy.
  Rng rng(GetParam() * 31337 + 5);
  const int32_t side = 4 + static_cast<int32_t>(rng.NextBounded(6));
  const int32_t source = 0;
  const int32_t sink = 1 + 2 * side;
  EdgeSpec edges;
  for (int32_t w = 0; w < side; ++w) {
    edges.push_back({source, 1 + w,
                     1 + static_cast<int64_t>(rng.NextBounded(5000)), 0});
  }
  for (int32_t r = 0; r < side; ++r) {
    edges.push_back({1 + side + r, sink,
                     1 + static_cast<int64_t>(rng.NextBounded(5000)), 0});
  }
  for (int32_t w = 0; w < side; ++w) {
    for (int32_t r = 0; r < side; ++r) {
      if (rng.NextBool(0.6)) {
        edges.push_back({1 + w, 1 + side + r,
                         1 + static_cast<int64_t>(rng.NextBounded(5000)),
                         static_cast<int64_t>(rng.NextBounded(100000))});
      }
    }
  }
  ExpectAllEnginesMatchOracle(sink + 1, edges, source, sink);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOracleStressTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(EngineDegenerateTest, ZeroSupplyAndDisconnectedInstances) {
  // Zero supply: s exists but exports nothing.
  ExpectAllEnginesMatchOracle(4, {{0, 1, 0, 5}, {1, 3, 3, 1}, {2, 3, 2, 1}},
                              0, 3);
  // Disconnected: t's component is unreachable from s.
  ExpectAllEnginesMatchOracle(6, {{0, 1, 4, 2}, {1, 2, 4, 2}, {3, 4, 4, 2},
                                  {4, 5, 4, 2}},
                              0, 5);
  // No edges at all.
  ExpectAllEnginesMatchOracle(3, {}, 0, 2);
  // Direct s-t edges only (shortest possible augmenting structure).
  ExpectAllEnginesMatchOracle(2, {{0, 1, 3, 7}, {0, 1, 2, 4}}, 0, 1);
}

// ---------------------------------------------------------------------------
// Warm starts and resumable solving.

class EngineWarmStartStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineWarmStartStressTest, PushFlowThenSolveReachesTheOptimum) {
  Rng rng(GetParam() * 2654435761 + 17);
  const int32_t side = 6 + static_cast<int32_t>(rng.NextBounded(8));
  const int32_t source = 0;
  const int32_t sink = 1 + 2 * side;
  EdgeSpec edges;
  for (int32_t w = 0; w < side; ++w) edges.push_back({source, 1 + w, 1, 0});
  for (int32_t r = 0; r < side; ++r) {
    edges.push_back({1 + side + r, sink, 1, 0});
  }
  // A complete middle layer so every warm-start injection below is part of
  // some feasible flow; expensive first pair edge to make naive warm
  // starts suboptimal.
  for (int32_t w = 0; w < side; ++w) {
    for (int32_t r = 0; r < side; ++r) {
      edges.push_back({1 + w, 1 + side + r, 1,
                       1 + static_cast<int64_t>(rng.NextBounded(500)) +
                           (w == 0 && r == 0 ? 100000 : 0)});
    }
  }

  MinCostFlowGraph oracle = BuildGraph(sink + 1, edges);
  const auto expected = oracle.SolveSpfa(source, sink);

  for (const FlowEngine engine : kConcreteEngines) {
    MinCostFlowGraph g = BuildGraph(sink + 1, edges);
    // Inject one unit along source -> w0 -> r0 -> sink, deliberately via
    // the overpriced pair edge (edge ids: supply edges are added first in
    // order, the (0, 0) pair edge right after the demand edges).
    const int32_t supply0 = 0;           // Forward ids advance by 2.
    const int32_t demand0 = 2 * side;    // First demand edge (index side).
    const int32_t pair00 = 4 * side;     // First pair edge (index 2 * side).
    g.PushFlow(supply0, 1);
    g.PushFlow(pair00, 1);
    g.PushFlow(demand0, 1);
    const auto resumed = g.Solve(source, sink, engine);
    // The resumed Outcome counts only this call's contribution, so the
    // authoritative claims are about the network: maximum flow value and a
    // network-wide min cost, regardless of the (suboptimal) injection.
    EXPECT_EQ(resumed.flow + 1, expected.flow) << FlowEngineName(engine);
    EXPECT_EQ(g.TotalRoutedCost(), expected.cost) << FlowEngineName(engine);
  }
}

TEST_P(EngineWarmStartStressTest, AddEdgeThenResumeReachesTheOptimum) {
  Rng rng(GetParam() * 40503 + 23);
  const int32_t n = 8 + static_cast<int32_t>(rng.NextBounded(8));
  EdgeSpec first, second;
  for (int32_t u = 0; u < n; ++u) {
    for (int32_t v = 0; v < n; ++v) {
      if (u == v || !rng.NextBool(0.35)) continue;
      const std::array<int64_t, 4> e = {
          u, v, 1 + static_cast<int64_t>(rng.NextBounded(5)),
          static_cast<int64_t>(rng.NextBounded(200))};
      // Later edges are cheaper on average, so resuming must re-route.
      if (rng.NextBool(0.5)) {
        first.push_back(e);
      } else {
        second.push_back({e[0], e[1], e[2], e[3] / 4});
      }
    }
  }
  EdgeSpec all = first;
  all.insert(all.end(), second.begin(), second.end());
  MinCostFlowGraph oracle = BuildGraph(n, all);
  const auto expected = oracle.SolveSpfa(0, n - 1);

  for (const FlowEngine engine : kConcreteEngines) {
    MinCostFlowGraph g = BuildGraph(n, first);
    const auto partial = g.Solve(0, n - 1, engine);
    for (const auto& e : second) {
      g.AddEdge(static_cast<int32_t>(e[0]), static_cast<int32_t>(e[1]), e[2],
                e[3]);
    }
    const auto resumed = g.Solve(0, n - 1, engine);
    EXPECT_EQ(partial.flow + resumed.flow, expected.flow)
        << FlowEngineName(engine);
    EXPECT_EQ(g.TotalRoutedCost(), expected.cost) << FlowEngineName(engine);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineWarmStartStressTest,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Thread-count invariance: per engine, per-edge flows are bit-identical
// with and without the lent pool (min_parallel_items = 1 forces the
// parallel scans even on these small instances).

class EngineThreadInvarianceStressTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineThreadInvarianceStressTest, ParallelScansAreBitIdentical) {
  Rng rng(GetParam() * 9176 + 41);
  const int32_t side = 24;
  const int32_t source = 0;
  const int32_t sink = 1 + 2 * side;
  EdgeSpec edges;
  for (int32_t w = 0; w < side; ++w) {
    edges.push_back({source, 1 + w,
                     1 + static_cast<int64_t>(rng.NextBounded(3)), 0});
  }
  for (int32_t r = 0; r < side; ++r) {
    edges.push_back({1 + side + r, sink,
                     1 + static_cast<int64_t>(rng.NextBounded(3)), 0});
  }
  for (int32_t w = 0; w < side; ++w) {
    for (int32_t r = 0; r < side; ++r) {
      if (rng.NextBool(0.5)) {
        edges.push_back({1 + w, 1 + side + r,
                         1 + static_cast<int64_t>(rng.NextBounded(2)),
                         static_cast<int64_t>(rng.NextBounded(900))});
      }
    }
  }

  ThreadPool pool(3);
  for (const FlowEngine engine :
       {FlowEngine::kBlockingSsp, FlowEngine::kCostScaling}) {
    MinCostFlowGraph serial = BuildGraph(sink + 1, edges);
    const auto serial_outcome = serial.Solve(source, sink, engine);

    for (const int threads : {2, 3}) {
      MinCostFlowGraph parallel = BuildGraph(sink + 1, edges);
      parallel.SetParallelism(&pool, threads, /*min_parallel_items=*/1);
      const auto parallel_outcome = parallel.Solve(source, sink, engine);
      EXPECT_EQ(parallel_outcome.flow, serial_outcome.flow)
          << FlowEngineName(engine) << " threads=" << threads;
      EXPECT_EQ(parallel_outcome.cost, serial_outcome.cost)
          << FlowEngineName(engine) << " threads=" << threads;
      for (size_t e = 0; e < serial.num_edges(); ++e) {
        ASSERT_EQ(parallel.Flow(static_cast<int32_t>(2 * e)),
                  serial.Flow(static_cast<int32_t>(2 * e)))
            << FlowEngineName(engine) << " threads=" << threads
            << " edge=" << e;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineThreadInvarianceStressTest,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Engine-specific behavior.

TEST(EngineBehaviorTest, BlockingEngineCollapsesSearchesOnDenseAssignment) {
  // Tie-heavy small-integer travel costs — the guide generator's regime.
  // Each shortest-path cost class then admits many vertex-disjoint paths,
  // which is exactly what one blocking phase exploits; with all-distinct
  // costs the engine (correctly) degrades to one augmentation per phase.
  Rng rng(99);
  const int32_t side = 64;
  const int32_t source = 0;
  const int32_t sink = 1 + 2 * side;
  EdgeSpec edges;
  for (int32_t w = 0; w < side; ++w) edges.push_back({source, 1 + w, 1, 0});
  for (int32_t r = 0; r < side; ++r) {
    edges.push_back({1 + side + r, sink, 1, 0});
  }
  for (int32_t w = 0; w < side; ++w) {
    for (int32_t r = 0; r < side; ++r) {
      edges.push_back({1 + w, 1 + side + r, 1,
                       1 + static_cast<int64_t>(rng.NextBounded(4))});
    }
  }
  MinCostFlowGraph ssp = BuildGraph(sink + 1, edges);
  const auto ssp_outcome = ssp.Solve(source, sink, FlowEngine::kSsp);
  MinCostFlowGraph blocking = BuildGraph(sink + 1, edges);
  const auto blocking_outcome =
      blocking.Solve(source, sink, FlowEngine::kBlockingSsp);
  EXPECT_EQ(blocking_outcome.flow, ssp_outcome.flow);
  EXPECT_EQ(blocking_outcome.cost, ssp_outcome.cost);
  EXPECT_EQ(blocking_outcome.flow, side);
  // The whole point: far fewer shortest-path searches than flow units.
  EXPECT_GT(blocking.blocking_phases(), 0);
  EXPECT_LT(blocking.path_searches(), ssp.path_searches() / 2);
}

TEST(EngineBehaviorTest, CostScalingOverflowGuardFallsBackToBlocking) {
  // max_cost far above the scaled-cost budget: kCostScaling must detect it
  // and delegate to the (saturating) blocking engine rather than overflow.
  const int64_t huge = kInf / 8;
  EdgeSpec edges = {{0, 1, 2, huge}, {1, 3, 1, huge / 2}, {0, 2, 1, 3},
                    {2, 3, 2, huge / 3}, {1, 2, 1, 0}};
  MinCostFlowGraph oracle = BuildGraph(4, edges);
  const auto expected = oracle.SolveSpfa(0, 3);
  MinCostFlowGraph g = BuildGraph(4, edges);
  EXPECT_EQ(g.cost_scaling_fallbacks(), 0);
  const auto outcome = g.Solve(0, 3, FlowEngine::kCostScaling);
  EXPECT_EQ(g.cost_scaling_fallbacks(), 1);
  EXPECT_EQ(outcome.flow, expected.flow);
  EXPECT_EQ(outcome.cost, expected.cost);
}

// ---------------------------------------------------------------------------
// The kInf saturation audit (near-limit cost regression).

TEST(SaturatingArithmeticTest, SpfaSaturatesInsteadOfWrapping) {
  // s -> a -> b -> t stacks ~0.225 * int64_max onto ~0.9 * int64_max: the
  // pre-audit `dist + cost` relaxation wrapped negative here and corrupted
  // the search. Saturation pins the label at kInf, which the oracle's
  // cost-bounded reachability check then (correctly, by its own contract)
  // reports as unreachable — the cheap direct path is all it routes.
  const int64_t max64 = std::numeric_limits<int64_t>::max();
  const int64_t big = max64 - max64 / 10;  // ~0.9 * int64_max, legal input.
  MinCostFlowGraph g(4);
  g.AddEdge(0, 1, 1, kInf - kInf / 10);
  g.AddEdge(1, 2, 1, big);
  g.AddEdge(2, 3, 1, 0);
  g.AddEdge(0, 3, 1, 7);
  const auto outcome = g.SolveSpfa(0, 3);
  EXPECT_EQ(outcome.flow, 1);
  EXPECT_EQ(outcome.cost, 7);
}

TEST(SaturatingArithmeticTest, DijkstraSaturatesAndStillTerminates) {
  // The potential-based path has no cost-bounded unreachability contract:
  // it must route both units without wrapping (labels clamp at the kInf
  // rail; exact cost accounting is documented to degrade out there).
  const int64_t max64 = std::numeric_limits<int64_t>::max();
  const int64_t big = max64 - max64 / 10;
  MinCostFlowGraph g(4);
  g.AddEdge(0, 1, 1, kInf - kInf / 10);
  g.AddEdge(1, 2, 1, big);
  g.AddEdge(2, 3, 1, 0);
  g.AddEdge(0, 3, 1, 7);
  const auto outcome = g.Solve(0, 3);
  EXPECT_EQ(outcome.flow, 2);
  EXPECT_GE(outcome.cost, 7);
}

TEST(SaturatingArithmeticTest, LargeSaneCostsStayExactAcrossEngines) {
  // Costs near kInf / 8 keep every label exact (path sums < kInf), so all
  // engines must still agree with the oracle to the unit. kCostScaling's
  // overflow guard trips here, which is part of the contract under test.
  Rng rng(7);
  const int32_t n = 6;
  EdgeSpec edges;
  for (int32_t u = 0; u < n; ++u) {
    for (int32_t v = 0; v < n; ++v) {
      if (u != v && rng.NextBool(0.5)) {
        edges.push_back({u, v, 1 + static_cast<int64_t>(rng.NextBounded(3)),
                         kInf / 8 - static_cast<int64_t>(
                                        rng.NextBounded(1'000'000))});
      }
    }
  }
  ExpectAllEnginesMatchOracle(n, edges, 0, n - 1);
}

TEST(SaturatingArithmeticTest, WarmStartRepairSurvivesNearLimitCosts) {
  // PushFlow onto the expensive chain leaves a reduced-cost-negative
  // reverse arc with near-limit magnitude; the repair path (cycle
  // cancellation + label-correcting potentials) must saturate, not wrap,
  // and still land on the network-wide optimum.
  const int64_t big = kInf / 8;
  EdgeSpec edges = {
      {0, 1, 1, big}, {1, 3, 1, big}, {0, 2, 1, 5}, {2, 3, 1, 5}};
  MinCostFlowGraph oracle = BuildGraph(4, edges);
  const auto expected = oracle.SolveSpfa(0, 3);
  MinCostFlowGraph g = BuildGraph(4, edges);
  g.PushFlow(0, 1);  // s -> 1 (the big chain).
  g.PushFlow(2, 1);  // 1 -> t.
  const auto resumed = g.Solve(0, 3);
  EXPECT_EQ(resumed.flow + 1, expected.flow);
  EXPECT_EQ(g.TotalRoutedCost(), expected.cost);
}

}  // namespace
}  // namespace ftoa
