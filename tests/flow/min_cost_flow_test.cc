#include "flow/min_cost_flow.h"

#include <gtest/gtest.h>

#include <vector>

#include "flow/dinic.h"
#include "flow/graph.h"
#include "util/rng.h"

namespace ftoa {
namespace {

TEST(MinCostFlowTest, PrefersCheaperPath) {
  // Two parallel s->t paths; max flow 2, the cheaper path carries flow
  // first but both are needed for maximality.
  MinCostFlowGraph g(4);
  g.AddEdge(0, 1, 1, 1);
  g.AddEdge(1, 3, 1, 1);
  g.AddEdge(0, 2, 1, 5);
  g.AddEdge(2, 3, 1, 5);
  const auto outcome = g.Solve(0, 3);
  EXPECT_EQ(outcome.flow, 2);
  EXPECT_EQ(outcome.cost, 12);
}

TEST(MinCostFlowTest, ChoosesMinCostAmongMaxFlows) {
  // Bipartite assignment: two workers, two tasks, both can serve both.
  // Costs: w0-t0 = 1, w0-t1 = 10, w1-t0 = 10, w1-t1 = 1.
  // Max flow = 2; min cost = 2 (diagonal), not 20.
  MinCostFlowGraph g(6);
  g.AddEdge(0, 1, 1, 0);  // s -> w0
  g.AddEdge(0, 2, 1, 0);  // s -> w1
  g.AddEdge(3, 5, 1, 0);  // t0 -> t
  g.AddEdge(4, 5, 1, 0);  // t1 -> t
  g.AddEdge(1, 3, 1, 1);
  g.AddEdge(1, 4, 1, 10);
  g.AddEdge(2, 3, 1, 10);
  g.AddEdge(2, 4, 1, 1);
  const auto outcome = g.Solve(0, 5);
  EXPECT_EQ(outcome.flow, 2);
  EXPECT_EQ(outcome.cost, 2);
}

TEST(MinCostFlowTest, MaximizesFlowEvenWhenCostly) {
  // The only way to get flow 2 uses an expensive edge; flow must still
  // be maximal.
  MinCostFlowGraph g(4);
  g.AddEdge(0, 1, 2, 0);
  g.AddEdge(1, 2, 1, 1);
  g.AddEdge(1, 3, 1, 100);
  g.AddEdge(2, 3, 1, 1);
  const auto outcome = g.Solve(0, 3);
  EXPECT_EQ(outcome.flow, 2);
  EXPECT_EQ(outcome.cost, 102);
}

TEST(MinCostFlowTest, ZeroFlowWhenDisconnected) {
  MinCostFlowGraph g(3);
  g.AddEdge(0, 1, 1, 1);
  const auto outcome = g.Solve(0, 2);
  EXPECT_EQ(outcome.flow, 0);
  EXPECT_EQ(outcome.cost, 0);
}

TEST(MinCostFlowTest, PerEdgeFlowQuery) {
  MinCostFlowGraph g(3);
  const int32_t cheap = g.AddEdge(0, 1, 2, 1);
  const int32_t hop = g.AddEdge(1, 2, 2, 1);
  const auto outcome = g.Solve(0, 2);
  EXPECT_EQ(outcome.flow, 2);
  EXPECT_EQ(g.Flow(cheap), 2);
  EXPECT_EQ(g.Flow(hop), 2);
}

// Property: the flow value of min-cost max-flow equals plain max flow on
// the same random network.
class McmfPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(McmfPropertyTest, FlowValueMatchesDinic) {
  Rng rng(GetParam());
  const int n = 6 + static_cast<int>(rng.NextBounded(6));
  MinCostFlowGraph mcmf(n);
  FlowGraph plain(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && rng.NextBool(0.3)) {
        const int64_t cap = 1 + static_cast<int64_t>(rng.NextBounded(4));
        const int64_t cost = static_cast<int64_t>(rng.NextBounded(10));
        mcmf.AddEdge(u, v, cap, cost);
        plain.AddEdge(u, v, cap);
      }
    }
  }
  const auto outcome = mcmf.Solve(0, n - 1);
  const int64_t reference = DinicMaxFlow(&plain, 0, n - 1);
  EXPECT_EQ(outcome.flow, reference);
  EXPECT_GE(outcome.cost, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McmfPropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace ftoa
