#include "flow/min_cost_flow.h"

#include <gtest/gtest.h>

#include <vector>

#include "flow/dinic.h"
#include "flow/graph.h"
#include "util/rng.h"

namespace ftoa {
namespace {

TEST(MinCostFlowTest, PrefersCheaperPath) {
  // Two parallel s->t paths; max flow 2, the cheaper path carries flow
  // first but both are needed for maximality.
  MinCostFlowGraph g(4);
  g.AddEdge(0, 1, 1, 1);
  g.AddEdge(1, 3, 1, 1);
  g.AddEdge(0, 2, 1, 5);
  g.AddEdge(2, 3, 1, 5);
  const auto outcome = g.Solve(0, 3);
  EXPECT_EQ(outcome.flow, 2);
  EXPECT_EQ(outcome.cost, 12);
}

TEST(MinCostFlowTest, ChoosesMinCostAmongMaxFlows) {
  // Bipartite assignment: two workers, two tasks, both can serve both.
  // Costs: w0-t0 = 1, w0-t1 = 10, w1-t0 = 10, w1-t1 = 1.
  // Max flow = 2; min cost = 2 (diagonal), not 20.
  MinCostFlowGraph g(6);
  g.AddEdge(0, 1, 1, 0);  // s -> w0
  g.AddEdge(0, 2, 1, 0);  // s -> w1
  g.AddEdge(3, 5, 1, 0);  // t0 -> t
  g.AddEdge(4, 5, 1, 0);  // t1 -> t
  g.AddEdge(1, 3, 1, 1);
  g.AddEdge(1, 4, 1, 10);
  g.AddEdge(2, 3, 1, 10);
  g.AddEdge(2, 4, 1, 1);
  const auto outcome = g.Solve(0, 5);
  EXPECT_EQ(outcome.flow, 2);
  EXPECT_EQ(outcome.cost, 2);
}

TEST(MinCostFlowTest, MaximizesFlowEvenWhenCostly) {
  // The only way to get flow 2 uses an expensive edge; flow must still
  // be maximal.
  MinCostFlowGraph g(4);
  g.AddEdge(0, 1, 2, 0);
  g.AddEdge(1, 2, 1, 1);
  g.AddEdge(1, 3, 1, 100);
  g.AddEdge(2, 3, 1, 1);
  const auto outcome = g.Solve(0, 3);
  EXPECT_EQ(outcome.flow, 2);
  EXPECT_EQ(outcome.cost, 102);
}

TEST(MinCostFlowTest, ZeroFlowWhenDisconnected) {
  MinCostFlowGraph g(3);
  g.AddEdge(0, 1, 1, 1);
  const auto outcome = g.Solve(0, 2);
  EXPECT_EQ(outcome.flow, 0);
  EXPECT_EQ(outcome.cost, 0);
}

TEST(MinCostFlowTest, PerEdgeFlowQuery) {
  MinCostFlowGraph g(3);
  const int32_t cheap = g.AddEdge(0, 1, 2, 1);
  const int32_t hop = g.AddEdge(1, 2, 2, 1);
  const auto outcome = g.Solve(0, 2);
  EXPECT_EQ(outcome.flow, 2);
  EXPECT_EQ(g.Flow(cheap), 2);
  EXPECT_EQ(g.Flow(hop), 2);
}

TEST(MinCostFlowTest, ResetReusesInstance) {
  MinCostFlowGraph g(4);
  g.AddEdge(0, 1, 1, 1);
  g.AddEdge(1, 3, 1, 1);
  EXPECT_EQ(g.Solve(0, 3).flow, 1);
  // Rewind and build a different network in the same object.
  g.Reset(3);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 0u);
  const int32_t e = g.AddEdge(0, 1, 2, 3);
  g.AddEdge(1, 2, 2, 4);
  const auto outcome = g.Solve(0, 2);
  EXPECT_EQ(outcome.flow, 2);
  EXPECT_EQ(outcome.cost, 14);
  EXPECT_EQ(g.Flow(e), 2);
}

TEST(MinCostFlowTest, SolveIsResumableAfterAddingEdges) {
  // Solve, then append a strictly cheaper parallel route and re-solve: the
  // carried flow is no longer min-cost for its value (the residual network
  // gains a negative cycle), so the resumed Solve must cancel it — the
  // final routed flow has to match a cold solve of the full graph exactly.
  MinCostFlowGraph incremental(4);
  incremental.AddEdge(0, 1, 1, 2);
  incremental.AddEdge(1, 3, 1, 2);
  const auto first = incremental.Solve(0, 3);
  EXPECT_EQ(first.flow, 1);
  EXPECT_EQ(first.cost, 4);
  incremental.AddEdge(0, 2, 1, 1);
  incremental.AddEdge(2, 3, 1, 1);
  const auto second = incremental.Solve(0, 3);
  EXPECT_EQ(second.flow, 1);

  MinCostFlowGraph cold(4);
  cold.AddEdge(0, 1, 1, 2);
  cold.AddEdge(1, 3, 1, 2);
  cold.AddEdge(0, 2, 1, 1);
  cold.AddEdge(2, 3, 1, 1);
  const auto reference = cold.Solve(0, 3);
  EXPECT_EQ(first.flow + second.flow, reference.flow);
  EXPECT_EQ(incremental.TotalRoutedCost(), reference.cost);
  EXPECT_EQ(incremental.TotalRoutedCost(), cold.TotalRoutedCost());
}

TEST(MinCostFlowTest, WarmStartFromInjectedFlow) {
  // Inject the min-cost unit of flow along s -> a -> t, then Solve: the
  // remaining max flow and the final per-edge flows match a cold solve.
  auto build = [](MinCostFlowGraph& g, std::vector<int32_t>& edges) {
    g.Reset(4);
    edges.clear();
    edges.push_back(g.AddEdge(0, 1, 1, 1));  // s -> a
    edges.push_back(g.AddEdge(1, 3, 1, 1));  // a -> t
    edges.push_back(g.AddEdge(0, 2, 1, 5));  // s -> b
    edges.push_back(g.AddEdge(2, 3, 1, 5));  // b -> t
  };
  MinCostFlowGraph warm;
  std::vector<int32_t> warm_edges;
  build(warm, warm_edges);
  warm.PushFlow(warm_edges[0], 1);
  warm.PushFlow(warm_edges[1], 1);
  const auto warm_outcome = warm.Solve(0, 3);
  EXPECT_EQ(warm_outcome.flow, 1);   // Only the remaining unit.
  EXPECT_EQ(warm_outcome.cost, 10);  // The expensive path.

  MinCostFlowGraph cold;
  std::vector<int32_t> cold_edges;
  build(cold, cold_edges);
  const auto cold_outcome = cold.Solve(0, 3);
  EXPECT_EQ(cold_outcome.flow, 2);
  for (size_t i = 0; i < warm_edges.size(); ++i) {
    EXPECT_EQ(warm.Flow(warm_edges[i]), cold.Flow(cold_edges[i]));
  }
}

TEST(MinCostFlowTest, SolveAfterSpfaRepairsPotentials) {
  // A SolveSpfa run leaves no potentials behind; a subsequent Dijkstra
  // Solve on the grown graph must still deliver the exact min-cost max
  // flow (here via cycle cancellation: the appended route undercuts the
  // one SPFA used).
  MinCostFlowGraph g(5);
  g.AddEdge(0, 1, 2, 3);
  g.AddEdge(1, 4, 1, 3);
  const auto spfa = g.SolveSpfa(0, 4);
  EXPECT_EQ(spfa.flow, 1);
  g.AddEdge(1, 2, 1, 0);
  g.AddEdge(2, 4, 1, 1);
  const auto rest = g.Solve(0, 4);
  EXPECT_EQ(rest.flow, 1);
  // Optimal routing of both units: 2x(0->1), then 1->2->4 and 1->4.
  EXPECT_EQ(g.TotalRoutedCost(), 3 + 3 + 0 + 1 + 3);
}

TEST(MinCostFlowTest, AddNodeGrowsGraph) {
  MinCostFlowGraph g(2);
  g.AddEdge(0, 1, 1, 1);
  const int32_t mid = g.AddNode();
  EXPECT_EQ(mid, 2);
  g.AddEdge(1, mid, 1, 1);
  const auto outcome = g.Solve(0, mid);
  EXPECT_EQ(outcome.flow, 1);
  EXPECT_EQ(outcome.cost, 2);
}

// Property: the flow value of min-cost max-flow equals plain max flow on
// the same random network.
class McmfPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(McmfPropertyTest, FlowValueMatchesDinic) {
  Rng rng(GetParam());
  const int n = 6 + static_cast<int>(rng.NextBounded(6));
  MinCostFlowGraph mcmf(n);
  FlowGraph plain(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && rng.NextBool(0.3)) {
        const int64_t cap = 1 + static_cast<int64_t>(rng.NextBounded(4));
        const int64_t cost = static_cast<int64_t>(rng.NextBounded(10));
        mcmf.AddEdge(u, v, cap, cost);
        plain.AddEdge(u, v, cap);
      }
    }
  }
  const auto outcome = mcmf.Solve(0, n - 1);
  const int64_t reference = DinicMaxFlow(&plain, 0, n - 1);
  EXPECT_EQ(outcome.flow, reference);
  EXPECT_GE(outcome.cost, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McmfPropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

// Property: the Dijkstra-with-potentials solver and the SPFA reference
// oracle agree on both flow value and total cost, on random sparse digraphs
// and on random bipartite assignment networks.
class DijkstraVsSpfaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraVsSpfaTest, RandomDigraphMatchesOracle) {
  Rng rng(GetParam() * 7919 + 13);
  const int n = 6 + static_cast<int>(rng.NextBounded(10));
  MinCostFlowGraph dijkstra(n);
  MinCostFlowGraph spfa(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && rng.NextBool(0.35)) {
        const int64_t cap = 1 + static_cast<int64_t>(rng.NextBounded(5));
        const int64_t cost = static_cast<int64_t>(rng.NextBounded(20));
        dijkstra.AddEdge(u, v, cap, cost);
        spfa.AddEdge(u, v, cap, cost);
      }
    }
  }
  const auto fast = dijkstra.Solve(0, n - 1);
  const auto oracle = spfa.SolveSpfa(0, n - 1);
  EXPECT_EQ(fast.flow, oracle.flow);
  EXPECT_EQ(fast.cost, oracle.cost);
  // Per-edge flows may differ between equally cheap solutions, but both
  // must be maximum and min-cost; the (flow, cost) pair pins that down.
}

TEST_P(DijkstraVsSpfaTest, RandomBipartiteMatchesOracle) {
  Rng rng(GetParam() * 104729 + 7);
  const int side = 8 + static_cast<int>(rng.NextBounded(17));
  const int32_t source = 0;
  const int32_t sink = 1 + 2 * side;
  MinCostFlowGraph dijkstra(sink + 1);
  MinCostFlowGraph spfa(sink + 1);
  auto both = [&](int32_t u, int32_t v, int64_t cap, int64_t cost) {
    dijkstra.AddEdge(u, v, cap, cost);
    spfa.AddEdge(u, v, cap, cost);
  };
  for (int w = 0; w < side; ++w) both(source, 1 + w, 1, 0);
  for (int r = 0; r < side; ++r) both(1 + side + r, sink, 1, 0);
  for (int w = 0; w < side; ++w) {
    for (int r = 0; r < side; ++r) {
      if (rng.NextBool(0.4)) {
        both(1 + w, 1 + side + r,
             1, static_cast<int64_t>(rng.NextBounded(1000)));
      }
    }
  }
  const auto fast = dijkstra.Solve(source, sink);
  const auto oracle = spfa.SolveSpfa(source, sink);
  EXPECT_EQ(fast.flow, oracle.flow);
  EXPECT_EQ(fast.cost, oracle.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraVsSpfaTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace ftoa
