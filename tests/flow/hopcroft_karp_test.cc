#include "flow/hopcroft_karp.h"

#include <gtest/gtest.h>

#include <vector>

#include "flow/dinic.h"
#include "flow/graph.h"
#include "util/rng.h"

namespace ftoa {
namespace {

TEST(HopcroftKarpTest, PerfectMatchingOnCompleteBipartite) {
  HopcroftKarp hk(3, 3);
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) hk.AddEdge(u, v);
  }
  EXPECT_EQ(hk.Solve(), 3);
  for (int u = 0; u < 3; ++u) {
    const int v = hk.MatchOfLeft(u);
    ASSERT_GE(v, 0);
    EXPECT_EQ(hk.MatchOfRight(v), u);
  }
}

TEST(HopcroftKarpTest, NoEdgesNoMatching) {
  HopcroftKarp hk(4, 4);
  EXPECT_EQ(hk.Solve(), 0);
  EXPECT_EQ(hk.MatchOfLeft(0), -1);
}

TEST(HopcroftKarpTest, AugmentingPathRequired) {
  // Greedy left-to-right would match 0-0 and block 1; HK must augment.
  HopcroftKarp hk(2, 2);
  hk.AddEdge(0, 0);
  hk.AddEdge(0, 1);
  hk.AddEdge(1, 0);
  EXPECT_EQ(hk.Solve(), 2);
}

TEST(HopcroftKarpTest, UnbalancedSides) {
  HopcroftKarp hk(5, 2);
  for (int u = 0; u < 5; ++u) {
    hk.AddEdge(u, 0);
    hk.AddEdge(u, 1);
  }
  EXPECT_EQ(hk.Solve(), 2);
}

TEST(HopcroftKarpTest, SolveIsIdempotent) {
  HopcroftKarp hk(3, 3);
  hk.AddEdge(0, 1);
  hk.AddEdge(1, 1);
  hk.AddEdge(2, 2);
  const int64_t first = hk.Solve();
  EXPECT_EQ(first, 2);
  EXPECT_EQ(hk.Solve(), first);
}

TEST(HopcroftKarpTest, ChainGraph) {
  // Path structure: maximal matching is unique-size 3.
  HopcroftKarp hk(3, 3);
  hk.AddEdge(0, 0);
  hk.AddEdge(1, 0);
  hk.AddEdge(1, 1);
  hk.AddEdge(2, 1);
  hk.AddEdge(2, 2);
  EXPECT_EQ(hk.Solve(), 3);
}

// Property: matching size equals unit-capacity max flow on random graphs,
// and the matching is consistent (mutual, edges exist).
class HkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HkPropertyTest, MatchesUnitCapacityMaxFlow) {
  Rng rng(GetParam());
  const int left = 1 + static_cast<int>(rng.NextBounded(15));
  const int right = 1 + static_cast<int>(rng.NextBounded(15));
  HopcroftKarp hk(left, right);
  std::vector<std::vector<bool>> adjacent(
      static_cast<size_t>(left), std::vector<bool>(right, false));

  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(1 + left + right);
  FlowGraph g(t + 1);
  for (int u = 0; u < left; ++u) g.AddEdge(s, 1 + u, 1);
  for (int v = 0; v < right; ++v) g.AddEdge(1 + left + v, t, 1);
  for (int u = 0; u < left; ++u) {
    for (int v = 0; v < right; ++v) {
      if (rng.NextBool(0.3)) {
        hk.AddEdge(u, v);
        g.AddEdge(1 + u, 1 + left + v, 1);
        adjacent[static_cast<size_t>(u)][static_cast<size_t>(v)] = true;
      }
    }
  }
  const int64_t matching = hk.Solve();
  const int64_t flow = DinicMaxFlow(&g, s, t);
  EXPECT_EQ(matching, flow);

  // Consistency of the reported matching.
  int64_t counted = 0;
  for (int u = 0; u < left; ++u) {
    const int v = hk.MatchOfLeft(u);
    if (v < 0) continue;
    ++counted;
    EXPECT_TRUE(adjacent[static_cast<size_t>(u)][static_cast<size_t>(v)]);
    EXPECT_EQ(hk.MatchOfRight(v), u);
  }
  EXPECT_EQ(counted, matching);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HkPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

TEST(HopcroftKarpTest, ResetReusesInstance) {
  HopcroftKarp hk(2, 2);
  hk.AddEdge(0, 0);
  hk.AddEdge(1, 1);
  EXPECT_EQ(hk.Solve(), 2);
  hk.Reset(3, 1);
  EXPECT_EQ(hk.num_edges(), 0u);
  hk.AddEdge(2, 0);
  EXPECT_EQ(hk.Solve(), 1);
  EXPECT_EQ(hk.MatchOfLeft(2), 0);
  EXPECT_EQ(hk.MatchOfLeft(0), -1);
}

TEST(HopcroftKarpTest, WarmStartFromSeededMatching) {
  // Seeding a partial matching with SetMatch leaves Solve with only the
  // remaining augmentations; the result is still maximum.
  HopcroftKarp hk(3, 3);
  hk.AddEdge(0, 0);
  hk.AddEdge(0, 1);
  hk.AddEdge(1, 0);
  hk.AddEdge(2, 2);
  hk.SetMatch(0, 0);
  EXPECT_EQ(hk.Solve(), 3);
  // l1 only likes r0: the warm-started pair must have been re-routed.
  EXPECT_EQ(hk.MatchOfRight(0), 1);
  EXPECT_EQ(hk.MatchOfLeft(0), 1);
  EXPECT_EQ(hk.MatchOfLeft(2), 2);
}

TEST(HopcroftKarpTest, SolveIsIncrementalAcrossEdgeInsertions) {
  HopcroftKarp hk(2, 2);
  hk.AddEdge(0, 0);
  EXPECT_EQ(hk.Solve(), 1);
  hk.AddEdge(1, 1);
  EXPECT_EQ(hk.Solve(), 2);  // Prior matching kept, one augmentation.
  EXPECT_EQ(hk.MatchOfLeft(0), 0);
  EXPECT_EQ(hk.MatchOfLeft(1), 1);
}

}  // namespace
}  // namespace ftoa
