#include "flow/hopcroft_karp.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "flow/dinic.h"
#include "flow/graph.h"
#include "util/rng.h"

namespace ftoa {
namespace {

TEST(HopcroftKarpTest, PerfectMatchingOnCompleteBipartite) {
  HopcroftKarp hk(3, 3);
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) hk.AddEdge(u, v);
  }
  EXPECT_EQ(hk.Solve(), 3);
  for (int u = 0; u < 3; ++u) {
    const int v = hk.MatchOfLeft(u);
    ASSERT_GE(v, 0);
    EXPECT_EQ(hk.MatchOfRight(v), u);
  }
}

TEST(HopcroftKarpTest, NoEdgesNoMatching) {
  HopcroftKarp hk(4, 4);
  EXPECT_EQ(hk.Solve(), 0);
  EXPECT_EQ(hk.MatchOfLeft(0), -1);
}

TEST(HopcroftKarpTest, AugmentingPathRequired) {
  // Greedy left-to-right would match 0-0 and block 1; HK must augment.
  HopcroftKarp hk(2, 2);
  hk.AddEdge(0, 0);
  hk.AddEdge(0, 1);
  hk.AddEdge(1, 0);
  EXPECT_EQ(hk.Solve(), 2);
}

TEST(HopcroftKarpTest, UnbalancedSides) {
  HopcroftKarp hk(5, 2);
  for (int u = 0; u < 5; ++u) {
    hk.AddEdge(u, 0);
    hk.AddEdge(u, 1);
  }
  EXPECT_EQ(hk.Solve(), 2);
}

TEST(HopcroftKarpTest, SolveIsIdempotent) {
  HopcroftKarp hk(3, 3);
  hk.AddEdge(0, 1);
  hk.AddEdge(1, 1);
  hk.AddEdge(2, 2);
  const int64_t first = hk.Solve();
  EXPECT_EQ(first, 2);
  EXPECT_EQ(hk.Solve(), first);
}

TEST(HopcroftKarpTest, ChainGraph) {
  // Path structure: maximal matching is unique-size 3.
  HopcroftKarp hk(3, 3);
  hk.AddEdge(0, 0);
  hk.AddEdge(1, 0);
  hk.AddEdge(1, 1);
  hk.AddEdge(2, 1);
  hk.AddEdge(2, 2);
  EXPECT_EQ(hk.Solve(), 3);
}

// Property: matching size equals unit-capacity max flow on random graphs,
// and the matching is consistent (mutual, edges exist).
class HkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HkPropertyTest, MatchesUnitCapacityMaxFlow) {
  Rng rng(GetParam());
  const int left = 1 + static_cast<int>(rng.NextBounded(15));
  const int right = 1 + static_cast<int>(rng.NextBounded(15));
  HopcroftKarp hk(left, right);
  std::vector<std::vector<bool>> adjacent(
      static_cast<size_t>(left), std::vector<bool>(right, false));

  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(1 + left + right);
  FlowGraph g(t + 1);
  for (int u = 0; u < left; ++u) g.AddEdge(s, 1 + u, 1);
  for (int v = 0; v < right; ++v) g.AddEdge(1 + left + v, t, 1);
  for (int u = 0; u < left; ++u) {
    for (int v = 0; v < right; ++v) {
      if (rng.NextBool(0.3)) {
        hk.AddEdge(u, v);
        g.AddEdge(1 + u, 1 + left + v, 1);
        adjacent[static_cast<size_t>(u)][static_cast<size_t>(v)] = true;
      }
    }
  }
  const int64_t matching = hk.Solve();
  const int64_t flow = DinicMaxFlow(&g, s, t);
  EXPECT_EQ(matching, flow);

  // Consistency of the reported matching.
  int64_t counted = 0;
  for (int u = 0; u < left; ++u) {
    const int v = hk.MatchOfLeft(u);
    if (v < 0) continue;
    ++counted;
    EXPECT_TRUE(adjacent[static_cast<size_t>(u)][static_cast<size_t>(v)]);
    EXPECT_EQ(hk.MatchOfRight(v), u);
  }
  EXPECT_EQ(counted, matching);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HkPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

TEST(HopcroftKarpTest, ResetReusesInstance) {
  HopcroftKarp hk(2, 2);
  hk.AddEdge(0, 0);
  hk.AddEdge(1, 1);
  EXPECT_EQ(hk.Solve(), 2);
  hk.Reset(3, 1);
  EXPECT_EQ(hk.num_edges(), 0u);
  hk.AddEdge(2, 0);
  EXPECT_EQ(hk.Solve(), 1);
  EXPECT_EQ(hk.MatchOfLeft(2), 0);
  EXPECT_EQ(hk.MatchOfLeft(0), -1);
}

TEST(HopcroftKarpTest, WarmStartFromSeededMatching) {
  // Seeding a partial matching with SetMatch leaves Solve with only the
  // remaining augmentations; the result is still maximum.
  HopcroftKarp hk(3, 3);
  hk.AddEdge(0, 0);
  hk.AddEdge(0, 1);
  hk.AddEdge(1, 0);
  hk.AddEdge(2, 2);
  hk.SetMatch(0, 0);
  EXPECT_EQ(hk.Solve(), 3);
  // l1 only likes r0: the warm-started pair must have been re-routed.
  EXPECT_EQ(hk.MatchOfRight(0), 1);
  EXPECT_EQ(hk.MatchOfLeft(0), 1);
  EXPECT_EQ(hk.MatchOfLeft(2), 2);
}

TEST(HopcroftKarpTest, SolveIsIncrementalAcrossEdgeInsertions) {
  HopcroftKarp hk(2, 2);
  hk.AddEdge(0, 0);
  EXPECT_EQ(hk.Solve(), 1);
  hk.AddEdge(1, 1);
  EXPECT_EQ(hk.Solve(), 2);  // Prior matching kept, one augmentation.
  EXPECT_EQ(hk.MatchOfLeft(0), 0);
  EXPECT_EQ(hk.MatchOfLeft(1), 1);
}

// --- int32/int64 boundary hardening ---
//
// Matcher callers size their graphs from int64 counts, so an id that
// narrowed on the way in must die loudly at the API boundary instead of
// indexing out of bounds or wrapping a CSR offset (the PR 7
// stride-truncation bug class).

TEST(HopcroftKarpDeathTest, AddEdgeOutOfRangeAborts) {
  HopcroftKarp hk(3, 4);
  EXPECT_DEATH(hk.AddEdge(3, 0), "out of range");
  EXPECT_DEATH(hk.AddEdge(-1, 0), "out of range");
  EXPECT_DEATH(hk.AddEdge(0, 4), "out of range");
  EXPECT_DEATH(hk.AddEdge(0, -1), "out of range");
  // The canonical narrowing artifact: an int64 id truncated to a negative
  // or huge int32 lands far outside either side.
  EXPECT_DEATH(hk.AddEdge(std::numeric_limits<int32_t>::min(), 0),
               "out of range");
  EXPECT_DEATH(hk.AddEdge(0, std::numeric_limits<int32_t>::max()),
               "out of range");
}

TEST(HopcroftKarpDeathTest, SetMatchOutOfRangeAborts) {
  HopcroftKarp hk(3, 4);
  hk.AddEdge(0, 0);
  EXPECT_DEATH(hk.SetMatch(3, 0), "out of range");
  EXPECT_DEATH(hk.SetMatch(0, 4), "out of range");
  EXPECT_DEATH(hk.SetMatch(-1, -1), "out of range");
}

TEST(HopcroftKarpDeathTest, NegativeSideSizeAborts) {
  EXPECT_DEATH(HopcroftKarp(-1, 2), "negative side size");
  EXPECT_DEATH(HopcroftKarp(2, -1), "negative side size");
  HopcroftKarp hk(2, 2);
  EXPECT_DEATH(hk.Reset(-5, 1), "negative side size");
}

TEST(HopcroftKarpTest, BoundaryIdsAtSideLimitsStayValid) {
  // Regression companion to the death tests: the largest valid ids on each
  // side must keep working — the guard is off-by-one-free.
  HopcroftKarp hk(3, 4);
  hk.AddEdge(2, 3);
  hk.AddEdge(0, 0);
  EXPECT_EQ(hk.Solve(), 2);
  EXPECT_EQ(hk.MatchOfLeft(2), 3);
  hk.Reset(1, 1);
  hk.AddEdge(0, 0);
  hk.SetMatch(0, 0);
  EXPECT_EQ(hk.Solve(), 1);
}

}  // namespace
}  // namespace ftoa
