#include "spatial/spacetime.h"

#include <gtest/gtest.h>

namespace ftoa {
namespace {

TEST(SlotSpecTest, SlotMapping) {
  const SlotSpec slots(48.0, 48);
  EXPECT_DOUBLE_EQ(slots.slot_duration(), 1.0);
  EXPECT_EQ(slots.SlotOf(0.0), 0);
  EXPECT_EQ(slots.SlotOf(0.999), 0);
  EXPECT_EQ(slots.SlotOf(1.0), 1);
  EXPECT_EQ(slots.SlotOf(47.5), 47);
}

TEST(SlotSpecTest, TimesOutsideHorizonClamped) {
  const SlotSpec slots(10.0, 5);
  EXPECT_EQ(slots.SlotOf(-1.0), 0);
  EXPECT_EQ(slots.SlotOf(100.0), 4);
  EXPECT_EQ(slots.SlotOf(10.0), 4);
}

TEST(SlotSpecTest, Representatives) {
  const SlotSpec slots(10.0, 2);
  EXPECT_DOUBLE_EQ(slots.SlotStart(1), 5.0);
  EXPECT_DOUBLE_EQ(slots.SlotMidpoint(0), 2.5);
  EXPECT_DOUBLE_EQ(slots.SlotMidpoint(1), 7.5);
}

TEST(SpacetimeSpecTest, TypeRoundTrip) {
  const SpacetimeSpec st(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 2, 2));
  EXPECT_EQ(st.num_types(), 8);
  for (int slot = 0; slot < 2; ++slot) {
    for (CellId cell = 0; cell < 4; ++cell) {
      const TypeId type = st.TypeAt(slot, cell);
      EXPECT_EQ(st.SlotOfType(type), slot);
      EXPECT_EQ(st.AreaOfType(type), cell);
    }
  }
}

TEST(SpacetimeSpecTest, TypeOfObject) {
  const SpacetimeSpec st(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 2, 2));
  // (1, 6): left half (x < 4), top half (y >= 4) -> cell (0, 1) = id 2.
  EXPECT_EQ(st.TypeOf({1.0, 6.0}, 0.0), st.TypeAt(0, 2));
  // Second slot.
  EXPECT_EQ(st.TypeOf({5.0, 3.0}, 7.0), st.TypeAt(1, 1));
}

TEST(SpacetimeSpecTest, Representatives) {
  const SpacetimeSpec st(SlotSpec(10.0, 2), GridSpec(8.0, 8.0, 2, 2));
  const TypeId type = st.TypeAt(1, 3);
  EXPECT_EQ(st.RepresentativeLocation(type), (Point{6.0, 6.0}));
  EXPECT_DOUBLE_EQ(st.RepresentativeTime(type), 7.5);
}

}  // namespace
}  // namespace ftoa
