#include "spatial/grid.h"

#include <gtest/gtest.h>

#include "spatial/point.h"

namespace ftoa {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Point{2.0, 4.0}));
}

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0.0, 0.0}, {3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(PointTest, LerpClampsFraction) {
  const Point a{0.0, 0.0};
  const Point b{10.0, 0.0};
  EXPECT_EQ(Lerp(a, b, 0.5), (Point{5.0, 0.0}));
  EXPECT_EQ(Lerp(a, b, -1.0), a);
  EXPECT_EQ(Lerp(a, b, 2.0), b);
}

TEST(GridSpecTest, CellMapping) {
  const GridSpec grid(10.0, 10.0, 5, 5);  // 2x2-unit cells.
  EXPECT_EQ(grid.num_cells(), 25);
  EXPECT_EQ(grid.CellOf({0.5, 0.5}), 0);
  EXPECT_EQ(grid.CellOf({2.5, 0.5}), 1);
  EXPECT_EQ(grid.CellOf({0.5, 2.5}), 5);
  EXPECT_EQ(grid.CellOf({9.9, 9.9}), 24);
}

TEST(GridSpecTest, OutOfRegionPointsClamped) {
  const GridSpec grid(10.0, 10.0, 5, 5);
  EXPECT_EQ(grid.CellOf({-1.0, -1.0}), 0);
  EXPECT_EQ(grid.CellOf({100.0, 100.0}), 24);
  EXPECT_EQ(grid.CellOf({10.0, 0.0}), 4);  // Exactly on the open edge.
}

TEST(GridSpecTest, CellCoordinatesRoundTrip) {
  const GridSpec grid(12.0, 8.0, 4, 2);
  for (CellId id = 0; id < grid.num_cells(); ++id) {
    EXPECT_EQ(grid.CellAt(grid.CellX(id), grid.CellY(id)), id);
    EXPECT_EQ(grid.CellOf(grid.CellCenter(id)), id);
  }
}

TEST(GridSpecTest, CellCenter) {
  const GridSpec grid(10.0, 10.0, 5, 5);
  EXPECT_EQ(grid.CellCenter(0), (Point{1.0, 1.0}));
  EXPECT_EQ(grid.CellCenter(24), (Point{9.0, 9.0}));
}

TEST(GridSpecTest, ContainsRespectsOpenUpperEdge) {
  const GridSpec grid(10.0, 10.0, 5, 5);
  EXPECT_TRUE(grid.Contains({0.0, 0.0}));
  EXPECT_TRUE(grid.Contains({9.999, 9.999}));
  EXPECT_FALSE(grid.Contains({10.0, 5.0}));
  EXPECT_FALSE(grid.Contains({-0.001, 5.0}));
}

TEST(GridSpecTest, DistanceToCell) {
  const GridSpec grid(10.0, 10.0, 5, 5);
  // Point inside the cell: distance 0.
  EXPECT_DOUBLE_EQ(grid.DistanceToCell({1.0, 1.0}, 0), 0.0);
  // Point directly left of cell 1 ([2,4) x [0,2)).
  EXPECT_DOUBLE_EQ(grid.DistanceToCell({1.0, 1.0}, 1), 1.0);
  // Diagonal distance to cell 6 ([2,4) x [2,4)) from the origin corner.
  EXPECT_DOUBLE_EQ(grid.DistanceToCell({0.0, 0.0}, 6),
                   Distance({0.0, 0.0}, {2.0, 2.0}));
}

TEST(GridSpecTest, NonSquareCells) {
  const GridSpec grid(30.0, 10.0, 3, 2);  // 10x5 cells.
  EXPECT_DOUBLE_EQ(grid.cell_width(), 10.0);
  EXPECT_DOUBLE_EQ(grid.cell_height(), 5.0);
  EXPECT_EQ(grid.CellOf({15.0, 7.0}), grid.CellAt(1, 1));
}

}  // namespace
}  // namespace ftoa
