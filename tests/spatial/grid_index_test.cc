#include "spatial/grid_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace ftoa {
namespace {

GridSpec MakeGrid() { return GridSpec(100.0, 100.0, 10, 10); }

TEST(GridIndexTest, InsertEraseContains) {
  GridIndex index(MakeGrid());
  EXPECT_EQ(index.size(), 0u);
  index.Insert(1, {5.0, 5.0});
  index.Insert(2, {50.0, 50.0});
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.Contains(1));
  EXPECT_TRUE(index.Erase(1));
  EXPECT_FALSE(index.Contains(1));
  EXPECT_FALSE(index.Erase(1));
  EXPECT_EQ(index.size(), 1u);
}

TEST(GridIndexTest, ReinsertMovesPoint) {
  GridIndex index(MakeGrid());
  index.Insert(1, {5.0, 5.0});
  index.Insert(1, {95.0, 95.0});
  EXPECT_EQ(index.size(), 1u);
  const IndexedPoint hit = index.FindNearest({95.0, 95.0}, 1.0);
  EXPECT_EQ(hit.id, 1);
}

TEST(GridIndexTest, FindNearestBasic) {
  GridIndex index(MakeGrid());
  index.Insert(1, {10.0, 10.0});
  index.Insert(2, {20.0, 10.0});
  index.Insert(3, {90.0, 90.0});
  const IndexedPoint hit = index.FindNearest({12.0, 10.0}, 100.0);
  EXPECT_EQ(hit.id, 1);
}

TEST(GridIndexTest, FindNearestRespectsMaxDistance) {
  GridIndex index(MakeGrid());
  index.Insert(1, {10.0, 10.0});
  EXPECT_EQ(index.FindNearest({50.0, 50.0}, 5.0).id, -1);
  EXPECT_EQ(index.FindNearest({50.0, 50.0}, 100.0).id, 1);
}

TEST(GridIndexTest, FindNearestAppliesFilter) {
  GridIndex index(MakeGrid());
  index.Insert(1, {10.0, 10.0});
  index.Insert(2, {12.0, 10.0});
  const IndexedPoint hit = index.FindNearest(
      {10.0, 10.0}, 50.0,
      [](const IndexedPoint& entry, double) { return entry.id != 1; });
  EXPECT_EQ(hit.id, 2);
}

TEST(GridIndexTest, EmptyIndexReturnsMiss) {
  GridIndex index(MakeGrid());
  EXPECT_EQ(index.FindNearest({50.0, 50.0}, 100.0).id, -1);
}

TEST(GridIndexTest, ForEachInDiskFindsAllWithinRadius) {
  GridIndex index(MakeGrid());
  index.Insert(1, {50.0, 50.0});
  index.Insert(2, {53.0, 50.0});
  index.Insert(3, {50.0, 56.0});
  index.Insert(4, {90.0, 90.0});
  std::vector<int64_t> found;
  index.ForEachInDisk({50.0, 50.0}, 5.0,
                      [&](const IndexedPoint& entry, double) {
                        found.push_back(entry.id);
                      });
  std::sort(found.begin(), found.end());
  EXPECT_EQ(found, (std::vector<int64_t>{1, 2}));
}

TEST(GridIndexTest, InfiniteRadiusScansEverything) {
  GridIndex index(MakeGrid());
  index.Insert(1, {5.0, 5.0});
  index.Insert(2, {95.0, 95.0});
  int count = 0;
  index.ForEachInDisk({0.0, 0.0}, std::numeric_limits<double>::max(),
                      [&](const IndexedPoint&, double) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(GridIndexTest, ForEachInCell) {
  const GridSpec grid = MakeGrid();
  GridIndex index(grid);
  index.Insert(1, {5.0, 5.0});
  index.Insert(2, {6.0, 6.0});
  index.Insert(3, {55.0, 55.0});
  int count = 0;
  index.ForEachInCell(grid.CellOf({5.0, 5.0}),
                      [&](const IndexedPoint&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(GridIndexTest, EmptyIndexDiskQueryVisitsNothing) {
  GridIndex index(MakeGrid());
  int count = 0;
  index.ForEachInDisk({50.0, 50.0}, 100.0,
                      [&](const IndexedPoint&, double) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(GridIndexTest, ZeroRadiusDiskHitsOnlyExactlyCoincidentPoints) {
  GridIndex index(MakeGrid());
  index.Insert(1, {50.0, 50.0});
  index.Insert(2, {50.0, 50.0 + 1e-9});
  std::vector<int64_t> found;
  index.ForEachInDisk({50.0, 50.0}, 0.0,
                      [&](const IndexedPoint& entry, double d) {
                        EXPECT_EQ(d, 0.0);
                        found.push_back(entry.id);
                      });
  EXPECT_EQ(found, (std::vector<int64_t>{1}));
  // Nearest with max_distance 0 behaves the same way.
  EXPECT_EQ(index.FindNearest({50.0, 50.0}, 0.0).id, 1);
  EXPECT_EQ(index.FindNearest({51.0, 50.0}, 0.0).id, -1);
}

TEST(GridIndexTest, RingBoundaryPointsAreNeverDropped) {
  // Points sitting exactly on cell edges and corners (the 10-unit grid
  // lines) must be found both as nearest neighbors and by disk queries
  // whose radius lands exactly on the point — no strict-inequality slip
  // at either the CellOf bucketing or the DistanceToCell lower bound.
  GridIndex index(MakeGrid());
  index.Insert(1, {10.0, 10.0});  // Four-cell corner.
  index.Insert(2, {20.0, 15.0});  // Vertical edge.
  index.Insert(3, {15.0, 30.0});  // Horizontal edge.
  EXPECT_EQ(index.FindNearest({10.0, 10.0}, 0.0).id, 1);
  EXPECT_EQ(index.FindNearest({9.999, 10.0}, 1.0).id, 1);
  EXPECT_EQ(index.FindNearest({20.5, 15.0}, 1.0).id, 2);
  std::vector<int64_t> found;
  index.ForEachInDisk({10.0, 15.0}, 5.0,
                      [&](const IndexedPoint& entry, double) {
                        found.push_back(entry.id);
                      });
  std::sort(found.begin(), found.end());
  EXPECT_EQ(found, (std::vector<int64_t>{1}));  // Distance exactly 5.0.
}

TEST(GridIndexTest, NearestCrossesCellBoundaryWhenNeighborIsCloser) {
  // Origin sits near a cell edge: the same-cell candidate is farther than
  // one just across the boundary. A walk that stopped after the origin
  // cell (or applied the ring cutoff one ring too early) would return the
  // wrong point.
  GridIndex index(MakeGrid());
  index.Insert(1, {11.0, 15.0});   // Same cell as origin, distance 8.
  index.Insert(2, {20.5, 15.0});   // Next cell over, distance 1.5.
  const IndexedPoint hit = index.FindNearest({19.0, 15.0}, 50.0);
  EXPECT_EQ(hit.id, 2);
}

TEST(GridIndexTest, RingCutoffStopsExactlyAtTheProvableBound) {
  // Pins FindNearest's `(ring - 1) * cell_min > best` early-exit: with a
  // best candidate at distance d, every ring r with (r - 1) * cell_min <=
  // d must still be scanned (a closer point may hide there). The ring-1
  // candidate is found first at distance ~17.7; since (2 - 1) * 10 <=
  // 17.7, ring 2 must still be walked, where the true nearest sits at
  // distance 16.1 — a cutoff firing one ring early would return id 1.
  GridIndex index(MakeGrid());
  const Point origin{5.0, 36.0};              // Cell (0, 3).
  index.Insert(1, {15.9, 49.9});              // Ring 1, distance ~17.7.
  index.Insert(2, {5.0, 19.9});               // Ring 2, distance 16.1.
  const IndexedPoint hit = index.FindNearest(origin, 50.0);
  EXPECT_EQ(hit.id, 2);
  EXPECT_NEAR(Distance(origin, hit.location), 16.1, 1e-9);
}

// Property: FindNearest agrees with brute force over random point sets.
class GridIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridIndexPropertyTest, NearestMatchesBruteForce) {
  Rng rng(GetParam());
  const GridSpec grid = MakeGrid();
  GridIndex index(grid);
  std::vector<IndexedPoint> points;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const Point p{rng.NextDouble(0.0, 100.0), rng.NextDouble(0.0, 100.0)};
    points.push_back({i, p});
    index.Insert(i, p);
  }
  for (int q = 0; q < 50; ++q) {
    const Point query{rng.NextDouble(0.0, 100.0),
                      rng.NextDouble(0.0, 100.0)};
    const double max_distance = rng.NextDouble(1.0, 60.0);
    // Brute force reference.
    int64_t best = -1;
    double best_d = max_distance;
    for (const auto& entry : points) {
      const double d = Distance(query, entry.location);
      if (d < best_d || (d == best_d && best >= 0 && entry.id < best)) {
        best_d = d;
        best = entry.id;
      }
    }
    const IndexedPoint hit = index.FindNearest(query, max_distance);
    if (best == -1) {
      EXPECT_EQ(hit.id, -1);
    } else {
      ASSERT_NE(hit.id, -1);
      EXPECT_NEAR(Distance(query, hit.location), best_d, 1e-9);
    }
  }
}

TEST_P(GridIndexPropertyTest, DiskQueryMatchesBruteForce) {
  Rng rng(GetParam() ^ 0xabcdef);
  const GridSpec grid = MakeGrid();
  GridIndex index(grid);
  std::vector<IndexedPoint> points;
  for (int i = 0; i < 150; ++i) {
    const Point p{rng.NextDouble(0.0, 100.0), rng.NextDouble(0.0, 100.0)};
    points.push_back({i, p});
    index.Insert(i, p);
  }
  for (int q = 0; q < 20; ++q) {
    const Point query{rng.NextDouble(0.0, 100.0),
                      rng.NextDouble(0.0, 100.0)};
    const double radius = rng.NextDouble(0.0, 50.0);
    size_t expected = 0;
    for (const auto& entry : points) {
      if (Distance(query, entry.location) <= radius) ++expected;
    }
    size_t got = 0;
    index.ForEachInDisk(query, radius,
                        [&](const IndexedPoint&, double) { ++got; });
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ftoa
