#include "util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ftoa {
namespace {

TEST(TruncatedNormalTest, SamplesWithinBounds) {
  Rng rng(1);
  const TruncatedNormal dist(5.0, 10.0, 0.0, 10.0);
  for (int i = 0; i < 5000; ++i) {
    const double v = dist.Sample(rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(TruncatedNormalTest, ZeroStddevReturnsClampedMean) {
  Rng rng(2);
  const TruncatedNormal inside(5.0, 0.0, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(inside.Sample(rng), 5.0);
  const TruncatedNormal above(20.0, 0.0, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(above.Sample(rng), 10.0);
  const TruncatedNormal below(-3.0, 0.0, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(below.Sample(rng), 0.0);
}

TEST(TruncatedNormalTest, MeanApproximatelyPreservedWhenInterior) {
  Rng rng(3);
  const TruncatedNormal dist(50.0, 5.0, 0.0, 100.0);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += dist.Sample(rng);
  EXPECT_NEAR(sum / n, 50.0, 0.2);
}

TEST(TruncatedNormalTest, FarTailStillBounded) {
  Rng rng(4);
  // Mean far outside the interval: rejection gives up and clamps.
  const TruncatedNormal dist(1000.0, 1.0, 0.0, 10.0);
  for (int i = 0; i < 100; ++i) {
    const double v = dist.Sample(rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(TruncatedNormal2dTest, SamplesInsideRectangle) {
  Rng rng(5);
  const TruncatedNormal2d dist(25.0, 25.0, 8.0, 8.0, 50.0, 50.0);
  for (int i = 0; i < 5000; ++i) {
    double x = -1.0;
    double y = -1.0;
    dist.Sample(rng, &x, &y);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 50.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 50.0);
  }
}

TEST(DiscreteDistributionTest, RespectsWeights) {
  Rng rng(6);
  const DiscreteDistribution dist({1.0, 3.0, 6.0});
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[dist.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(DiscreteDistributionTest, ZeroWeightNeverSampled) {
  Rng rng(7);
  const DiscreteDistribution dist({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dist.Sample(rng), 1u);
  }
}

TEST(DiscreteDistributionTest, AllZeroWeightsFallBackToUniform) {
  Rng rng(8);
  const DiscreteDistribution dist({0.0, 0.0, 0.0, 0.0});
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[dist.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 1000);
}

TEST(DiscreteDistributionTest, NegativeWeightsTreatedAsZero) {
  Rng rng(9);
  const DiscreteDistribution dist({-5.0, 1.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(dist.Sample(rng), 1u);
}

TEST(DiscreteDistributionTest, NormalizedProbabilities) {
  const DiscreteDistribution dist({2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(dist.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(dist.probability(1), 0.25);
  EXPECT_DOUBLE_EQ(dist.probability(2), 0.5);
}

TEST(SampleStatsTest, ComputesMoments) {
  const SampleStats stats = ComputeSampleStats({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(stats.variance, 1.25);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_EQ(stats.count, 4u);
}

TEST(SampleStatsTest, EmptyInput) {
  const SampleStats stats = ComputeSampleStats({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

}  // namespace
}  // namespace ftoa
