#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/stopwatch.h"

namespace ftoa {
namespace {

/// Fails the test when streamed: proves suppressed messages never format.
struct Expensive {};
std::ostream& operator<<(std::ostream& os, const Expensive&) {
  ADD_FAILURE() << "formatted a suppressed log message";
  return os;
}

/// Counts how often it is streamed.
struct Counter {
  int* count;
};
std::ostream& operator<<(std::ostream& os, const Counter& c) {
  ++*c.count;
  return os << "counted";
}

/// Opaque sink preventing the optimizer from deleting busy loops.
void benchmark_guard(const double* value) {
  asm volatile("" : : "g"(value) : "memory");
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = logging::GetLevel(); }
  void TearDown() override { logging::SetLevel(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  logging::SetLevel(LogLevel::kError);
  EXPECT_EQ(logging::GetLevel(), LogLevel::kError);
  logging::SetLevel(LogLevel::kDebug);
  EXPECT_EQ(logging::GetLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning),
            static_cast<int>(LogLevel::kError));
}

TEST_F(LoggingTest, DisabledMessagesDoNotFormat) {
  logging::SetLevel(LogLevel::kError);
  // The macro must skip streaming entirely when the level is filtered out.
  FTOA_LOG_DEBUG << Expensive{};
  FTOA_LOG_INFO << Expensive{};
  FTOA_LOG_WARNING << Expensive{};
}

TEST_F(LoggingTest, EnabledMessagesFormat) {
  logging::SetLevel(LogLevel::kDebug);
  int evaluations = 0;
  FTOA_LOG_DEBUG << Counter{&evaluations};
  EXPECT_EQ(evaluations, 1);
}

TEST(StopwatchTest, MeasuresElapsedTimeMonotonically) {
  Stopwatch stopwatch;
  const int64_t first = stopwatch.ElapsedNanos();
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  benchmark_guard(&sink);
  const int64_t second = stopwatch.ElapsedNanos();
  EXPECT_GE(first, 0);
  EXPECT_GE(second, first);
  EXPECT_GT(sink, 0.0);
}

TEST(StopwatchTest, UnitConversionsAgree) {
  Stopwatch stopwatch;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmark_guard(&sink);
  // Each accessor re-reads the clock, so the readings must be explicitly
  // sequenced oldest-unit-first; passing two accessor calls to one
  // EXPECT_* leaves their order unspecified and the comparison racy (it
  // flaked under ASan's slowdown).
  const int64_t micros = stopwatch.ElapsedMicros();
  const int64_t nanos = stopwatch.ElapsedNanos();  // Read after micros.
  const double seconds = stopwatch.ElapsedSeconds();  // Read after nanos.
  EXPECT_LE(micros * 1000, nanos);
  EXPECT_GE(seconds, static_cast<double>(nanos) * 1e-9 - 1e-12);
  EXPECT_NEAR(seconds, static_cast<double>(nanos) * 1e-9, 0.5);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch stopwatch;
  double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink += i;
  benchmark_guard(&sink);
  const int64_t before = stopwatch.ElapsedNanos();
  stopwatch.Restart();
  EXPECT_LT(stopwatch.ElapsedNanos(), before + 1000000);
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace ftoa
