#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ftoa {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "10000"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("10000"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, HandlesShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter table({"x"});
  EXPECT_EQ(table.row_count(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::FormatDouble(-0.5, 1), "-0.5");
}

TEST(TablePrinterTest, FormatInt) {
  EXPECT_EQ(TablePrinter::FormatInt(12345), "12345");
  EXPECT_EQ(TablePrinter::FormatInt(-7), "-7");
}

}  // namespace
}  // namespace ftoa
