#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace ftoa {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  uint64_t acc = 0;
  for (int i = 0; i < 10; ++i) acc |= rng.Next();
  EXPECT_NE(acc, 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(99);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(5);
  const uint64_t bound = 10;
  std::vector<int> histogram(bound, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++histogram[rng.NextBounded(bound)];
  }
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(histogram[b], draws / static_cast<int>(bound),
                draws / static_cast<int>(bound) / 10);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, PoissonMeanMatchesSmall) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextPoisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonMeanMatchesLarge) {
  Rng rng(14);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextPoisson(200.0));
  }
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(15);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
  EXPECT_EQ(rng.NextPoisson(-1.0), 0u);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(16);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(17);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(21);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a.Next() == child_b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng p1(21);
  Rng p2(21);
  Rng c1 = p1.Fork(9);
  Rng c2 = p2.Fork(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.Next(), c2.Next());
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(33);
  std::vector<uint64_t> first;
  for (int i = 0; i < 8; ++i) first.push_back(rng.Next());
  rng.Seed(33);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rng.Next(), first[i]);
}

}  // namespace
}  // namespace ftoa
