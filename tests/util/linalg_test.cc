#include "util/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace ftoa {
namespace {

TEST(MatrixTest, IdentityMultiplication) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  const Matrix product = a.Multiply(Matrix::Identity(2));
  EXPECT_DOUBLE_EQ(product(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(product(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(product(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(product(1, 1), 4.0);
}

TEST(MatrixTest, TransposeSwapsIndices) {
  Matrix a(2, 3);
  a(0, 2) = 7.0;
  a(1, 0) = -2.0;
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -2.0);
}

TEST(MatrixTest, ApplyMatchesManualProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(0, 2) = 3.0;
  a(1, 0) = 4.0;
  a(1, 1) = 5.0;
  a(1, 2) = 6.0;
  const std::vector<double> v = {1.0, 0.0, -1.0};
  const std::vector<double> out = a.Apply(v);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(SolveLinearSystemTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const auto x = SolveLinearSystem(a, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveLinearSystemTest, RequiresPivoting) {
  // Zero on the initial pivot position forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const auto x = SolveLinearSystem(a, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveLinearSystemTest, DetectsSingularity) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  const auto x = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_TRUE(x.status().IsFailedPrecondition());
}

TEST(SolveLinearSystemTest, RejectsShapeMismatch) {
  EXPECT_FALSE(SolveLinearSystem(Matrix(2, 3), {1.0, 2.0}).ok());
  EXPECT_FALSE(SolveLinearSystem(Matrix(2, 2), {1.0}).ok());
}

TEST(SolveLinearSystemTest, RandomRoundTrip) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.NextBounded(8);
    Matrix a(n, n);
    std::vector<double> x_true(n);
    for (size_t i = 0; i < n; ++i) {
      x_true[i] = rng.NextDouble(-5.0, 5.0);
      for (size_t j = 0; j < n; ++j) a(i, j) = rng.NextDouble(-1.0, 1.0);
      a(i, i) += static_cast<double>(n);  // Diagonally dominant: invertible.
    }
    const std::vector<double> b = a.Apply(x_true);
    const auto solved = SolveLinearSystem(a, b);
    ASSERT_TRUE(solved.ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR((*solved)[i], x_true[i], 1e-8);
    }
  }
}

TEST(SolveLeastSquaresTest, RecoversExactLinearModel) {
  // y = 3 + 2 * x, noiseless.
  const int n = 20;
  Matrix design(n, 2);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    design(static_cast<size_t>(i), 0) = 1.0;
    design(static_cast<size_t>(i), 1) = i;
    y[static_cast<size_t>(i)] = 3.0 + 2.0 * i;
  }
  const auto coef = SolveLeastSquares(design, y, 0.0);
  ASSERT_TRUE(coef.ok());
  EXPECT_NEAR((*coef)[0], 3.0, 1e-9);
  EXPECT_NEAR((*coef)[1], 2.0, 1e-9);
}

TEST(SolveLeastSquaresTest, RidgeHandlesCollinearFeatures) {
  // Two identical columns: plain OLS normal equations are singular, ridge
  // splits the weight evenly.
  const int n = 10;
  Matrix design(n, 2);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    design(static_cast<size_t>(i), 0) = i;
    design(static_cast<size_t>(i), 1) = i;
    y[static_cast<size_t>(i)] = 4.0 * i;
  }
  EXPECT_FALSE(SolveLeastSquares(design, y, 0.0).ok());
  const auto coef = SolveLeastSquares(design, y, 1e-6);
  ASSERT_TRUE(coef.ok());
  EXPECT_NEAR((*coef)[0] + (*coef)[1], 4.0, 1e-3);
}

TEST(SolveLeastSquaresTest, RejectsNegativeLambda) {
  EXPECT_FALSE(SolveLeastSquares(Matrix(2, 1), {1.0, 2.0}, -1.0).ok());
}

TEST(DotTest, ComputesInnerProduct) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0, 3.0}, {4.0, -5.0, 6.0}), 12.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

}  // namespace
}  // namespace ftoa
