#include "util/memory_tracker.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace ftoa {
namespace {

TEST(MemoryTrackerTest, CountersMoveWithAllocations) {
  const MemoryStats before = memory_tracker::Snapshot();
  auto block = std::make_unique<std::vector<char>>(1 << 20);
  const MemoryStats during = memory_tracker::Snapshot();
  EXPECT_GE(during.live_bytes, before.live_bytes + (1 << 20));
  EXPECT_GT(during.total_allocs, before.total_allocs);
  block.reset();
  const MemoryStats after = memory_tracker::Snapshot();
  EXPECT_LT(after.live_bytes, during.live_bytes);
  EXPECT_GT(after.total_frees, during.total_frees - 1);
}

TEST(MemoryTrackerTest, PeakCapturesTransientAllocation) {
  memory_tracker::ResetPeak();
  const uint64_t baseline = memory_tracker::PeakBytes();
  {
    std::vector<char> transient(8 << 20);
    // Touch so the optimizer cannot remove the allocation.
    transient[0] = 1;
    transient[transient.size() - 1] = 2;
    EXPECT_GT(transient[0] + transient[transient.size() - 1], 0);
  }
  EXPECT_GE(memory_tracker::PeakBytes(), baseline + (8 << 20));
}

TEST(MemoryScopeTest, PeakDeltaSeesScopedGrowth) {
  MemoryScope scope;
  {
    std::vector<char> data(4 << 20);
    data[0] = 1;
    EXPECT_GE(scope.PeakDelta(), static_cast<uint64_t>(4 << 20));
  }
  // After the vector dies, the peak delta persists but live delta drops.
  EXPECT_GE(scope.PeakDelta(), static_cast<uint64_t>(4 << 20));
  EXPECT_LT(scope.LiveDelta(), static_cast<uint64_t>(4 << 20));
}

TEST(MemoryTrackerTest, AlignedAllocationsTracked) {
  memory_tracker::ResetPeak();
  struct alignas(64) Wide {
    char payload[256];
  };
  const uint64_t before = memory_tracker::LiveBytes();
  auto wide = std::make_unique<Wide>();
  wide->payload[0] = 1;
  EXPECT_GE(memory_tracker::LiveBytes(), before + sizeof(Wide));
  wide.reset();
}

}  // namespace
}  // namespace ftoa
