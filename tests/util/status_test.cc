#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace ftoa {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailingFunction() { return Status::Internal("boom"); }

Status PropagatingFunction() {
  FTOA_RETURN_NOT_OK(FailingFunction());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(PropagatingFunction(), Status::Internal("boom"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  FTOA_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterEven(6).ok());
  EXPECT_FALSE(QuarterEven(3).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace ftoa
