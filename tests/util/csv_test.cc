#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace ftoa {
namespace {

TEST(CsvEscapeTest, PlainCellUnchanged) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesCellsWithSpecials) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvParseLineTest, SplitsSimpleCells) {
  const auto cells = CsvParseLine("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[1], "b");
  EXPECT_EQ(cells[2], "c");
}

TEST(CsvParseLineTest, HandlesQuotedCells) {
  const auto cells = CsvParseLine("\"a,b\",c,\"say \"\"hi\"\"\"");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a,b");
  EXPECT_EQ(cells[1], "c");
  EXPECT_EQ(cells[2], "say \"hi\"");
}

TEST(CsvParseLineTest, EmptyCellsPreserved) {
  const auto cells = CsvParseLine("a,,c,");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[1], "");
  EXPECT_EQ(cells[3], "");
}

TEST(CsvRoundTripTest, EscapeThenParse) {
  const std::vector<std::string> original = {"plain", "with,comma",
                                             "with \"quote\"", ""};
  std::string line;
  for (size_t i = 0; i < original.size(); ++i) {
    if (i > 0) line += ',';
    line += CsvEscape(original[i]);
  }
  const auto parsed = CsvParseLine(line);
  EXPECT_EQ(parsed, original);
}

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/ftoa_csv_test.csv";
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.Ok());
    ASSERT_TRUE(writer.WriteRow({"name", "value"}).ok());
    ASSERT_TRUE(writer.WriteRow({"alpha", "1,5"}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  const auto rows = CsvReadFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0], "name");
  EXPECT_EQ((*rows)[1][1], "1,5");
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileErrors) {
  const auto rows = CsvReadFile("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(rows.ok());
}

TEST(CsvFileTest, DoubleCloseFails) {
  const std::string path = ::testing::TempDir() + "/ftoa_csv_close.csv";
  CsvWriter writer(path);
  ASSERT_TRUE(writer.Ok());
  EXPECT_TRUE(writer.Close().ok());
  EXPECT_FALSE(writer.Close().ok());
  EXPECT_FALSE(writer.WriteRow({"x"}).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ftoa
