#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ftoa {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto tokens = Split("a,b,c", ',');
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[2], "c");
}

TEST(SplitTest, KeepsEmptyTokens) {
  const auto tokens = Split(",x,", ',');
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "");
  EXPECT_EQ(tokens[1], "x");
  EXPECT_EQ(tokens[2], "");
}

TEST(TrimTest, RemovesWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--scale=2", "--scale"));
  EXPECT_FALSE(StartsWith("-scale", "--scale"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("HeLLo123"), "hello123");
}

TEST(ParseIntTest, ValidInputs) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_EQ(*ParseInt("  13  "), 13);
}

TEST(ParseIntTest, InvalidInputs) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12abc").ok());
  EXPECT_FALSE(ParseInt("abc").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 0.125 "), 0.125);
}

TEST(ParseDoubleTest, InvalidInputs) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("nope").ok());
}

TEST(FormatBytesTest, PicksUnits) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MB");
}

}  // namespace
}  // namespace ftoa
