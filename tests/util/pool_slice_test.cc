// PoolSlice: token-bucket lending of a shared ThreadPool. The contract
// under test: at most max_concurrent slice tasks ever occupy pool workers,
// excess submissions run FIFO as tokens free up, deadlines count queue
// time, and the destructor drains every submitted task — the properties
// the serving harness's analytical isolation (ServiceOptions::
// analytical_slice) is built on.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

namespace ftoa {
namespace {

TEST(PoolSliceTest, ClampsTokensToPoolSize) {
  ThreadPool pool(2);
  PoolSlice wide(&pool, 99);
  EXPECT_EQ(wide.max_concurrent(), 2);
  PoolSlice narrow(&pool, 0);
  EXPECT_EQ(narrow.max_concurrent(), 1);
}

TEST(PoolSliceTest, ConcurrencyNeverExceedsTheBucket) {
  ThreadPool pool(4);
  PoolSlice slice(&pool, 2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(slice.Submit([&]() {
      const int now = running.fetch_add(1, std::memory_order_acq_rel) + 1;
      int seen = peak.load(std::memory_order_relaxed);
      while (now > seen &&
             !peak.compare_exchange_weak(seen, now,
                                         std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      running.fetch_sub(1, std::memory_order_acq_rel);
      done.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(done.load(), 24);
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
  // The token returns *after* the future is satisfied (the wrapper's
  // OnTaskDone runs last), so give the last wrapper a moment to retire.
  for (int i = 0; i < 5000 && slice.InFlight() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(slice.InFlight(), 0);
}

TEST(PoolSliceTest, QueuedTasksRunInSubmissionOrder) {
  // One token: every task queues behind its predecessor, so completion
  // order is exactly submission order.
  ThreadPool pool(3);
  PoolSlice slice(&pool, 1);
  std::vector<int> order;
  std::mutex order_mutex;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(slice.Submit([&, i]() {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(i);
    }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(PoolSliceTest, PoolKeepsServingDirectWorkWhileSliceIsSaturated) {
  // The isolation property itself: with the slice pinned to 1 of 2
  // workers, a direct pool submission completes even while slice tasks
  // hold their token and more wait in the slice queue.
  ThreadPool pool(2);
  PoolSlice slice(&pool, 1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::vector<std::future<void>> blocked;
  for (int i = 0; i < 4; ++i) {
    blocked.push_back(slice.Submit([gate]() { gate.wait(); }));
  }
  // One slice task occupies a worker; three sit in the slice queue — the
  // second pool worker stays free for direct work.
  auto direct = pool.Submit([]() { return 41 + 1; });
  EXPECT_EQ(direct.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(direct.get(), 42);
  EXPECT_GE(slice.InFlight(), 3);  // Still blocked behind the gate.
  release.set_value();
  for (auto& future : blocked) future.get();
  for (int i = 0; i < 5000 && slice.InFlight() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(slice.InFlight(), 0);
}

TEST(PoolSliceTest, DeadlineCountsTimeSpentQueuedInTheSlice) {
  // A task stuck behind a gated predecessor misses a deadline measured
  // from submission — starvation surfaces as DeadlineExceeded, never as
  // a silently late success.
  ThreadPool pool(2);
  PoolSlice slice(&pool, 1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  auto blocker = slice.Submit([gate]() { gate.wait(); });
  auto task = slice.SubmitWithDeadline(
      [](const CancellationToken&) { return 7; },
      std::chrono::milliseconds(30));
  // Sleep past the deadline before releasing the blocker: the queued task
  // then runs (the destructor contract: everything submitted finishes) but
  // its result is reported late.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  release.set_value();
  blocker.get();
  const Result<int> outcome = task.Await();
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsDeadlineExceeded());
}

TEST(PoolSliceTest, ExceptionsSurfaceAsStatusThroughTheSlice) {
  ThreadPool pool(2);
  PoolSlice slice(&pool, 1);
  auto task = slice.SubmitWithDeadline(
      [](const CancellationToken&) -> int {
        throw std::runtime_error("solver exploded");
      },
      std::chrono::seconds(10));
  const Result<int> outcome = task.Await();
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().message().find("solver exploded"),
            std::string::npos);
}

TEST(PoolSliceTest, DestructorDrainsQueuedTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  {
    PoolSlice slice(&pool, 1);
    for (int i = 0; i < 8; ++i) {
      slice.Submit([&]() {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Futures discarded: the slice destructor alone must guarantee the
    // drain (the refresher discards late-cycle futures the same way).
  }
  EXPECT_EQ(done.load(), 8);
}

}  // namespace
}  // namespace ftoa
