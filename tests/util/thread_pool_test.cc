#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ftoa {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> results;
  for (int i = 0; i < 64; ++i) {
    results.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([]() { return 1; });
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("shard failed"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must survive for later tasks.
  EXPECT_EQ(pool.Submit([]() { return 2; }).get(), 2);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 128; ++i) {
      pool.Submit([&executed]() {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // Destructor joins after every queued task ran.
  EXPECT_EQ(executed.load(), 128);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // The first task blocks until the second one runs; it can only finish if
  // the pool really runs tasks on distinct threads.
  ThreadPool pool(2);
  std::atomic<bool> second_ran{false};
  auto a = pool.Submit([&second_ran]() {
    while (!second_ran.load()) std::this_thread::yield();
  });
  auto b = pool.Submit([&second_ran]() { second_ran.store(true); });
  a.get();
  b.get();
  EXPECT_TRUE(second_ran.load());
}

TEST(ThreadPoolTest, ManySubmittersOneQueue) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  std::vector<std::future<void>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.push_back(std::async(std::launch::async, [&pool, &sum, i]() {
      std::vector<std::future<void>> inner;
      for (int k = 0; k < 32; ++k) {
        inner.push_back(pool.Submit([&sum, i, k]() {
          sum.fetch_add(i * 100 + k, std::memory_order_relaxed);
        }));
      }
      for (auto& f : inner) f.get();
    }));
  }
  for (auto& f : outer) f.get();
  int64_t expected = 0;
  for (int i = 0; i < 8; ++i) {
    for (int k = 0; k < 32; ++k) expected += i * 100 + k;
  }
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace ftoa
