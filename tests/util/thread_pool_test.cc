#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ftoa {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> results;
  for (int i = 0; i < 64; ++i) {
    results.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([]() { return 1; });
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("shard failed"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must survive for later tasks.
  EXPECT_EQ(pool.Submit([]() { return 2; }).get(), 2);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 128; ++i) {
      pool.Submit([&executed]() {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // Destructor joins after every queued task ran.
  EXPECT_EQ(executed.load(), 128);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // The first task blocks until the second one runs; it can only finish if
  // the pool really runs tasks on distinct threads.
  ThreadPool pool(2);
  std::atomic<bool> second_ran{false};
  auto a = pool.Submit([&second_ran]() {
    while (!second_ran.load()) std::this_thread::yield();
  });
  auto b = pool.Submit([&second_ran]() { second_ran.store(true); });
  a.get();
  b.get();
  EXPECT_TRUE(second_ran.load());
}

TEST(ThreadPoolTest, ManySubmittersOneQueue) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  std::vector<std::future<void>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.push_back(std::async(std::launch::async, [&pool, &sum, i]() {
      std::vector<std::future<void>> inner;
      for (int k = 0; k < 32; ++k) {
        inner.push_back(pool.Submit([&sum, i, k]() {
          sum.fetch_add(i * 100 + k, std::memory_order_relaxed);
        }));
      }
      for (auto& f : inner) f.get();
    }));
  }
  for (auto& f : outer) f.get();
  int64_t expected = 0;
  for (int i = 0; i < 8; ++i) {
    for (int k = 0; k < 32; ++k) expected += i * 100 + k;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolDeadlineTest, CompletesWithinDeadline) {
  ThreadPool pool(2);
  auto task = pool.SubmitWithDeadline(
      [](const CancellationToken& token) {
        EXPECT_FALSE(token.IsCancelled());
        return 41 + 1;
      },
      std::chrono::seconds(30));
  const Result<int> result = task.Await();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value(), 42);
}

TEST(ThreadPoolDeadlineTest, TimeoutCancelsAndReportsDeadlineExceeded) {
  ThreadPool pool(1);
  std::atomic<bool> saw_cancel{false};
  auto task = pool.SubmitWithDeadline(
      [&saw_cancel](const CancellationToken& token) {
        // A cooperative long-running task: spins until cancelled.
        while (!token.IsCancelled()) std::this_thread::yield();
        saw_cancel.store(true);
        return 7;
      },
      std::chrono::milliseconds(20));
  const Result<int> result = task.Await();
  // Await joined the task after cancelling it: its late result is reported
  // as DeadlineExceeded, never silently dropped mid-flight.
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
  EXPECT_TRUE(saw_cancel.load());
}

TEST(ThreadPoolDeadlineTest, TimedOutTaskExceptionIsSurfacedNotLost) {
  // The satellite regression: a task that times out and *then* dies must
  // surface its exception through Await — no std::terminate (death-free),
  // no exception marooned in an abandoned future.
  ThreadPool pool(1);
  auto task = pool.SubmitWithDeadline(
      [](const CancellationToken& token) -> int {
        while (!token.IsCancelled()) std::this_thread::yield();
        throw std::runtime_error("refresh solver blew up");
      },
      std::chrono::milliseconds(20));
  const Result<int> result = task.Await();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal()) << result.status();
  EXPECT_NE(result.status().message().find("refresh solver blew up"),
            std::string::npos)
      << result.status();
  // The worker that ran the throwing task survives for later submissions.
  EXPECT_EQ(pool.Submit([]() { return 3; }).get(), 3);
}

TEST(ThreadPoolDeadlineTest, ExceptionBeforeDeadlineIsInternal) {
  ThreadPool pool(1);
  auto task = pool.SubmitWithDeadline(
      [](const CancellationToken&) -> int {
        throw std::runtime_error("immediate failure");
      },
      std::chrono::seconds(30));
  const Result<int> result = task.Await();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_NE(result.status().message().find("immediate failure"),
            std::string::npos);
}

TEST(ThreadPoolDeadlineTest, PollObservesCompletionAndCancelsPastDeadline) {
  ThreadPool pool(1);
  auto quick = pool.SubmitWithDeadline(
      [](const CancellationToken&) { return 5; }, std::chrono::seconds(30));
  while (!quick.Poll()) std::this_thread::yield();
  const Result<int> got = quick.Await();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 5);

  auto slow = pool.SubmitWithDeadline(
      [](const CancellationToken& token) {
        while (!token.IsCancelled()) std::this_thread::yield();
        return 0;
      },
      std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Poll past the deadline requests cancellation; the task then finishes
  // and a later Poll reports readiness.
  while (!slow.Poll()) std::this_thread::yield();
  EXPECT_TRUE(slow.token().IsCancelled());
  EXPECT_TRUE(slow.Await().status().IsDeadlineExceeded());
}

}  // namespace
}  // namespace ftoa
