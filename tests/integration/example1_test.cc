// End-to-end reproduction of the paper's running example (Example 1,
// Table 1, Figures 1-3): the same toy instance flows through every
// algorithm, and the qualitative results of the paper hold — wait-in-place
// baselines serve almost nothing, guide-based algorithms with a good
// prediction serve everything, and OPT serves all six tasks.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/gr_batch.h"
#include "baselines/offline_opt.h"
#include "baselines/simple_greedy.h"
#include "core/guide_generator.h"
#include "core/hybrid_polar_op.h"
#include "core/polar.h"
#include "core/polar_op.h"
#include "sim/runner.h"
#include "test_util.h"

namespace ftoa {
namespace {

using ftoa::testing::MakeExample1Instance;

class Example1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = MakeExample1Instance();
    GuideOptions options;
    options.engine = GuideOptions::Engine::kFordFulkerson;  // Algorithm 1.
    options.worker_duration = 30.0;
    options.task_duration = 2.0;
    auto guide = GuideGenerator(instance_.velocity(), options)
                     .Generate(PredictionMatrix::FromInstance(instance_));
    ASSERT_TRUE(guide.ok());
    guide_ = std::make_shared<const OfflineGuide>(std::move(guide).value());
  }

  Instance instance_;
  std::shared_ptr<const OfflineGuide> guide_;
};

TEST_F(Example1Test, OptServesAllSixTasks) {
  OfflineOpt opt;
  EXPECT_EQ(opt.Run(instance_).size(), 6u);
}

TEST_F(Example1Test, WaitInPlaceBaselinesServeAtMostTwo) {
  SimpleGreedy greedy;
  GrBatch gr;
  EXPECT_LE(greedy.Run(instance_).size(), 2u);
  EXPECT_LE(gr.Run(instance_).size(), 2u);
}

TEST_F(Example1Test, GuideBasedAlgorithmsReachOptimum) {
  Polar polar(guide_);
  PolarOp polar_op(guide_);
  HybridPolarOp hybrid(guide_);
  EXPECT_EQ(polar.Run(instance_).size(), 6u);
  EXPECT_EQ(polar_op.Run(instance_).size(), 6u);
  EXPECT_EQ(hybrid.Run(instance_).size(), 6u);
}

TEST_F(Example1Test, OrderingMatchesPaperNarrative) {
  // POLAR-OP >= POLAR >= SimpleGreedy on this instance.
  Polar polar(guide_);
  PolarOp polar_op(guide_);
  SimpleGreedy greedy;
  const size_t polar_size = polar.Run(instance_).size();
  const size_t op_size = polar_op.Run(instance_).size();
  const size_t greedy_size = greedy.Run(instance_).size();
  EXPECT_GE(op_size, polar_size);
  EXPECT_GE(polar_size, greedy_size);
}

TEST_F(Example1Test, StrictSimulationQuantifiesGuideTrustAssumption) {
  // The paper assumes guide-matched pairs always realize (Section 5.1).
  // Strict re-simulation with actual worker trajectories shows the
  // assumption is mostly — but not perfectly — true on this instance: the
  // dispatched workers head for cell centers while the real tasks sit
  // elsewhere in the cell, so a subset of pairs misses the 2-minute
  // deadline. The accounting must be complete and the majority feasible.
  PolarOp polar_op(guide_);
  RunnerOptions options;
  options.strict_verification = true;
  const auto metrics = RunAlgorithm(&polar_op, instance_, options);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->matching_size, 6);
  EXPECT_EQ(metrics->strict_feasible_pairs + metrics->strict_violations, 6);
  EXPECT_GE(metrics->strict_feasible_pairs, 3);
  EXPECT_GT(metrics->dispatched_workers, 0);
}

TEST_F(Example1Test, UnderPredictionReproducesExample5And6Behavior) {
  // Example 5/6's situation: the prediction under-counts the top-left
  // types (one worker and one task predicted where three workers and two
  // tasks arrive). POLAR's occupy-once rule drops the surplus arrivals;
  // POLAR-OP re-associates them with the same guide node and reuses the
  // matched edge, serving one more task.
  PredictionMatrix prediction = PredictionMatrix::FromInstance(instance_);
  const SpacetimeSpec& st = instance_.spacetime();
  prediction.set_workers_at(st.TypeAt(0, 2), 1);
  prediction.set_tasks_at(st.TypeAt(0, 2), 1);
  GuideOptions options;
  options.engine = GuideOptions::Engine::kFordFulkerson;
  options.worker_duration = 30.0;
  // A tight representative Dr keeps the top-left worker node paired with
  // the top-left task node (it cannot reach the bottom-right area), which
  // pins down the guide matching regardless of max-flow tie-breaking.
  options.task_duration = 0.5;
  auto guide = GuideGenerator(instance_.velocity(), options)
                   .Generate(prediction);
  ASSERT_TRUE(guide.ok());
  EXPECT_EQ(guide->matched_pairs(), 5);
  auto shared =
      std::make_shared<const OfflineGuide>(std::move(guide).value());

  Polar polar(shared);
  PolarOp polar_op(shared);
  RunTrace polar_trace;
  const size_t polar_size = polar.Run(instance_, &polar_trace).size();
  const size_t op_size = polar_op.Run(instance_).size();
  // POLAR ignores the two surplus top-left arrivals and matches 5.
  EXPECT_EQ(polar_size, 5u);
  EXPECT_GT(polar_trace.ignored_workers + polar_trace.ignored_tasks, 0);
  // POLAR-OP reuses the top-left edge for (w3, r2) and reaches 6.
  EXPECT_EQ(op_size, 6u);
}

}  // namespace
}  // namespace ftoa
