// End-to-end pipeline tests: city history -> offline prediction -> guide
// generation -> online assignment -> strict verification, exactly the flow
// of the paper's two-step framework on the real-data experiments.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/offline_opt.h"
#include "baselines/simple_greedy.h"
#include "core/guide_generator.h"
#include "core/polar_op.h"
#include "gen/city_trace.h"
#include "prediction/hp_msi.h"
#include "prediction/historical_average.h"
#include "sim/runner.h"

namespace ftoa {
namespace {

CityProfile TestProfile() {
  CityProfile profile = BeijingProfile();
  profile.grid_x = 8;
  profile.grid_y = 6;
  profile.slots_per_day = 12;  // Dense types: ~10 objects per (slot, cell).
  profile.history_days = 21;
  profile.workers_per_day = 6000.0;
  profile.tasks_per_day = 6300.0;
  // Limited wait-in-place reach (radius Dr * v = 1 cell on an 8x6 grid):
  // serving the displaced rush-hour hotspots requires anticipatory
  // relocation, the regime of the paper's real-data experiments.
  profile.velocity = 1.0;
  profile.task_duration = 1.0;
  profile.worker_duration = 2.0;
  return profile;
}

/// Builds the predicted matrices for `day` with a fitted predictor.
PredictionMatrix PredictDay(Predictor* predictor,
                            const CityTraceGenerator& generator,
                            const DemandDataset& history, int train_days,
                            int day) {
  const SpacetimeSpec st = generator.DaySpacetime();
  std::vector<double> workers(static_cast<size_t>(st.num_types()), 0.0);
  std::vector<double> tasks(workers.size(), 0.0);
  EXPECT_TRUE(predictor->Fit(history, train_days, DemandSide::kWorkers).ok());
  for (int slot = 0; slot < history.slots_per_day(); ++slot) {
    const std::vector<double> predicted =
        predictor->Predict(history, day, slot);
    for (int cell = 0; cell < history.num_cells(); ++cell) {
      workers[static_cast<size_t>(st.TypeAt(slot, cell))] =
          predicted[static_cast<size_t>(cell)];
    }
  }
  EXPECT_TRUE(predictor->Fit(history, train_days, DemandSide::kTasks).ok());
  for (int slot = 0; slot < history.slots_per_day(); ++slot) {
    const std::vector<double> predicted =
        predictor->Predict(history, day, slot);
    for (int cell = 0; cell < history.num_cells(); ++cell) {
      tasks[static_cast<size_t>(st.TypeAt(slot, cell))] =
          predicted[static_cast<size_t>(cell)];
    }
  }
  return PredictionMatrix::FromIntensities(st, workers, tasks);
}

TEST(PipelineTest, FullTwoStepFrameworkOnCityTrace) {
  const CityTraceGenerator generator(TestProfile());
  const DemandDataset history = generator.GenerateHistory();
  const int train_days = 14;
  const int test_day = 18;

  HistoricalAverage predictor;
  const PredictionMatrix prediction =
      PredictDay(&predictor, generator, history, train_days, test_day);
  EXPECT_GT(prediction.TotalWorkers(), 0);
  EXPECT_GT(prediction.TotalTasks(), 0);

  const auto instance = generator.GenerateInstanceForDay(test_day);
  ASSERT_TRUE(instance.ok());

  GuideOptions options;
  options.engine = GuideOptions::Engine::kCompressed;
  options.worker_duration = generator.profile().worker_duration;
  options.task_duration = generator.profile().task_duration;
  auto guide_result = GuideGenerator(generator.profile().velocity, options)
                          .Generate(prediction);
  ASSERT_TRUE(guide_result.ok());
  ASSERT_TRUE(guide_result->Validate().ok());
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(guide_result).value());
  EXPECT_GT(guide->matched_pairs(), 0);

  PolarOp polar_op(guide);
  SimpleGreedy greedy;
  OfflineOpt opt;
  const size_t op_size = polar_op.Run(*instance).size();
  const size_t greedy_size = greedy.Run(*instance).size();
  const size_t opt_size = opt.Run(*instance).size();
  EXPECT_GT(op_size, 0u);
  EXPECT_GT(greedy_size, 0u);
  EXPECT_GE(opt_size, greedy_size);
  // The headline claim of the paper: prediction-guided assignment serves
  // more pairs than the wait-in-place greedy baseline on city workloads.
  EXPECT_GT(op_size, greedy_size);
}

TEST(PipelineTest, StrictVerificationHoldsUpWithLivenessChecks) {
  const CityTraceGenerator generator(TestProfile());
  const DemandDataset history = generator.GenerateHistory();
  const int test_day = 18;
  HistoricalAverage predictor;
  const PredictionMatrix prediction =
      PredictDay(&predictor, generator, history, 14, test_day);
  const auto instance = generator.GenerateInstanceForDay(test_day);
  ASSERT_TRUE(instance.ok());

  GuideOptions options;
  options.engine = GuideOptions::Engine::kCompressed;
  options.worker_duration = generator.profile().worker_duration;
  options.task_duration = generator.profile().task_duration;
  auto guide = std::make_shared<const OfflineGuide>(
      std::move(GuideGenerator(generator.profile().velocity, options)
                    .Generate(prediction))
          .value());

  PolarOp polar_op(guide, PolarOptions{.check_liveness = true});
  RunnerOptions runner_options;
  runner_options.strict_verification = true;
  const auto metrics = RunAlgorithm(&polar_op, *instance, runner_options);
  ASSERT_TRUE(metrics.ok());
  ASSERT_GT(metrics->matching_size, 0);
  // With liveness checks on, the vast majority of matches must survive the
  // strict physical re-simulation (residual violations stem only from the
  // cell-center vs actual-location discretization).
  EXPECT_GE(metrics->strict_feasible_pairs,
            metrics->matching_size * 8 / 10);
}

TEST(PipelineTest, BetterPredictionsDoNotHurtMuch) {
  // HP-MSI (best of Table 5) vs a deliberately poor predictor (all-ones):
  // the guide from the better prediction should enable at least as many
  // POLAR-OP matches, modulo a small tolerance.
  const CityTraceGenerator generator(TestProfile());
  const DemandDataset history = generator.GenerateHistory();
  const int test_day = 18;
  const auto instance = generator.GenerateInstanceForDay(test_day);
  ASSERT_TRUE(instance.ok());
  const SpacetimeSpec st = generator.DaySpacetime();

  HpMsiParams hp_params;
  hp_params.num_clusters = 6;
  HpMsiPredictor good_predictor(hp_params);
  const PredictionMatrix good =
      PredictDay(&good_predictor, generator, history, 14, test_day);

  PredictionMatrix poor(st);
  for (TypeId t = 0; t < st.num_types(); ++t) {
    poor.set_workers_at(t, 1);
    poor.set_tasks_at(t, 1);
  }

  GuideOptions options;
  options.engine = GuideOptions::Engine::kCompressed;
  options.worker_duration = generator.profile().worker_duration;
  options.task_duration = generator.profile().task_duration;
  const GuideGenerator gen(generator.profile().velocity, options);
  auto good_guide = std::make_shared<const OfflineGuide>(
      std::move(gen.Generate(good)).value());
  auto poor_guide = std::make_shared<const OfflineGuide>(
      std::move(gen.Generate(poor)).value());

  PolarOp with_good(good_guide);
  PolarOp with_poor(poor_guide);
  const size_t good_size = with_good.Run(*instance).size();
  const size_t poor_size = with_poor.Run(*instance).size();
  EXPECT_GE(good_size + good_size / 4, poor_size);
}

}  // namespace
}  // namespace ftoa
