// Shared fixtures for the ftoa test suite, most importantly the paper's
// running example (Example 1 / Table 1 / Figure 1), which several unit and
// integration tests reproduce end to end.

#ifndef FTOA_TESTS_TEST_UTIL_H_
#define FTOA_TESTS_TEST_UTIL_H_

#include <vector>

#include "model/instance.h"
#include "spatial/spacetime.h"

namespace ftoa {
namespace testing {

/// Builds the paper's Example 1: seven taxis (workers) and six
/// taxi-calling tasks on an 8x8 region, times in minutes after 9:00,
/// Dr = 2 minutes, Dw = 30 minutes, velocity 1 unit/minute. The type space
/// is 2 slots x 2x2 areas as in Figure 1d.
inline Instance MakeExample1Instance() {
  std::vector<Worker> workers(7);
  const double dw = 30.0;
  workers[0] = {0, {1.0, 6.0}, 0.0, dw};  // w1, 9:00
  workers[1] = {1, {1.0, 8.0}, 1.0, dw};  // w2, 9:01
  workers[2] = {2, {3.0, 7.0}, 1.0, dw};  // w3, 9:01
  workers[3] = {3, {5.0, 6.0}, 3.0, dw};  // w4, 9:03
  workers[4] = {4, {6.0, 5.0}, 3.0, dw};  // w5, 9:03
  workers[5] = {5, {6.0, 7.0}, 3.0, dw};  // w6, 9:03
  workers[6] = {6, {7.0, 6.0}, 4.0, dw};  // w7, 9:04

  std::vector<Task> tasks(6);
  const double dr = 2.0;
  tasks[0] = {0, {3.0, 6.0}, 0.0, dr};  // r1, 9:00
  tasks[1] = {1, {2.0, 5.0}, 2.0, dr};  // r2, 9:02
  tasks[2] = {2, {5.0, 3.0}, 5.0, dr};  // r3, 9:05
  tasks[3] = {3, {4.0, 1.0}, 6.0, dr};  // r4, 9:06
  tasks[4] = {4, {8.0, 2.0}, 7.0, dr};  // r5, 9:07
  tasks[5] = {5, {6.0, 1.0}, 8.0, dr};  // r6, 9:08

  const GridSpec grid(8.0, 8.0, 2, 2);       // Four areas as in Figure 1d.
  const SlotSpec slots(10.0, 2);             // Two 5-minute slots.
  return Instance(SpacetimeSpec(slots, grid), /*velocity=*/1.0,
                  std::move(workers), std::move(tasks));
}

}  // namespace testing
}  // namespace ftoa

#endif  // FTOA_TESTS_TEST_UTIL_H_
