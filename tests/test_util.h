// Shared fixtures for the ftoa test suite: the paper's running example
// (Example 1 / Table 1 / Figure 1), which several unit and integration
// tests reproduce end to end, and a seeded fuzz-style instance generator
// producing adversarial arrival orderings for the streaming/sharding
// equivalence suites.

#ifndef FTOA_TESTS_TEST_UTIL_H_
#define FTOA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/algorithm_registry.h"
#include "core/guide_generator.h"
#include "core/online_algorithm.h"
#include "core/prediction_matrix.h"
#include "model/instance.h"
#include "spatial/spacetime.h"
#include "util/rng.h"

namespace ftoa {
namespace testing {

/// Builds the paper's Example 1: seven taxis (workers) and six
/// taxi-calling tasks on an 8x8 region, times in minutes after 9:00,
/// Dr = 2 minutes, Dw = 30 minutes, velocity 1 unit/minute. The type space
/// is 2 slots x 2x2 areas as in Figure 1d.
inline Instance MakeExample1Instance() {
  std::vector<Worker> workers(7);
  const double dw = 30.0;
  workers[0] = {0, {1.0, 6.0}, 0.0, dw};  // w1, 9:00
  workers[1] = {1, {1.0, 8.0}, 1.0, dw};  // w2, 9:01
  workers[2] = {2, {3.0, 7.0}, 1.0, dw};  // w3, 9:01
  workers[3] = {3, {5.0, 6.0}, 3.0, dw};  // w4, 9:03
  workers[4] = {4, {6.0, 5.0}, 3.0, dw};  // w5, 9:03
  workers[5] = {5, {6.0, 7.0}, 3.0, dw};  // w6, 9:03
  workers[6] = {6, {7.0, 6.0}, 4.0, dw};  // w7, 9:04

  std::vector<Task> tasks(6);
  const double dr = 2.0;
  tasks[0] = {0, {3.0, 6.0}, 0.0, dr};  // r1, 9:00
  tasks[1] = {1, {2.0, 5.0}, 2.0, dr};  // r2, 9:02
  tasks[2] = {2, {5.0, 3.0}, 5.0, dr};  // r3, 9:05
  tasks[3] = {3, {4.0, 1.0}, 6.0, dr};  // r4, 9:06
  tasks[4] = {4, {8.0, 2.0}, 7.0, dr};  // r5, 9:07
  tasks[5] = {5, {6.0, 1.0}, 8.0, dr};  // r6, 9:08

  const GridSpec grid(8.0, 8.0, 2, 2);       // Four areas as in Figure 1d.
  const SlotSpec slots(10.0, 2);             // Two 5-minute slots.
  return Instance(SpacetimeSpec(slots, grid), /*velocity=*/1.0,
                  std::move(workers), std::move(tasks));
}

/// Iteration count for the randomized stress suites: the FTOA_STRESS_ITERS
/// environment variable when set (tools/run_stress.sh exports it), else
/// `fallback` — kept small so the plain ctest run stays fast.
inline int StressIterations(int fallback) {
  const char* env = std::getenv("FTOA_STRESS_ITERS");
  if (env == nullptr) return fallback;
  const int value = std::atoi(env);
  return value > 0 ? value : fallback;
}

/// Temporal shape of a fuzz instance's arrival stream. The streaming
/// equivalence tests historically replayed only well-mixed synthetic
/// orders; these patterns force the adversarial ones.
enum class ArrivalPattern {
  kWorkersFirst,  ///< Every worker arrives before the first task.
  kTasksFirst,    ///< Every task arrives before the first worker.
  kAlternating,   ///< Strict worker/task interleaving, one per tick.
  kBursty,        ///< Arrivals collapse onto a few identical timestamps
                  ///< (stresses equal-time tie-breaks + batch windows).
  kShuffledIds,   ///< Uniform times, ids uncorrelated with arrival order.
};

/// All patterns, for parameterized sweeps.
inline std::vector<ArrivalPattern> AllArrivalPatterns() {
  return {ArrivalPattern::kWorkersFirst, ArrivalPattern::kTasksFirst,
          ArrivalPattern::kAlternating, ArrivalPattern::kBursty,
          ArrivalPattern::kShuffledIds};
}

inline const char* ArrivalPatternName(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kWorkersFirst: return "workers-first";
    case ArrivalPattern::kTasksFirst: return "tasks-first";
    case ArrivalPattern::kAlternating: return "alternating";
    case ArrivalPattern::kBursty: return "bursty";
    case ArrivalPattern::kShuffledIds: return "shuffled-ids";
  }
  return "unknown";
}

/// Fisher-Yates with the repo Rng (std::shuffle's draw order is
/// implementation-defined; this stays bit-identical across toolchains).
template <typename T>
void DeterministicShuffle(std::vector<T>& items, Rng& rng) {
  for (size_t i = items.size(); i > 1; --i) {
    std::swap(items[i - 1], items[rng.NextBounded(i)]);
  }
}

/// Builds a randomized instance whose arrival stream follows `pattern`,
/// deterministic in (seed, pattern). Region 10x10 over a 4x4 grid, horizon
/// 10 over 5 slots, velocity 2; durations and locations are drawn wide
/// enough that a healthy fraction of pairs is feasible.
inline Instance MakeFuzzInstance(uint64_t seed, ArrivalPattern pattern,
                                 int num_workers = 60, int num_tasks = 60) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL +
          static_cast<uint64_t>(pattern) * 0x100000001b3ULL + 1);
  const double width = 10.0;
  const double height = 10.0;
  const double horizon = 10.0;

  std::vector<double> worker_times(static_cast<size_t>(num_workers));
  std::vector<double> task_times(static_cast<size_t>(num_tasks));
  switch (pattern) {
    case ArrivalPattern::kWorkersFirst:
      for (double& t : worker_times) t = rng.NextDouble(0.0, horizon / 3.0);
      for (double& t : task_times) {
        t = rng.NextDouble(horizon / 3.0, horizon);
      }
      break;
    case ArrivalPattern::kTasksFirst:
      for (double& t : task_times) t = rng.NextDouble(0.0, horizon / 3.0);
      for (double& t : worker_times) {
        t = rng.NextDouble(horizon / 3.0, horizon);
      }
      break;
    case ArrivalPattern::kAlternating: {
      // w0 r0 w1 r1 ... one object per tick, workers on even ticks.
      const int ticks = 2 * (num_workers > num_tasks ? num_workers
                                                     : num_tasks);
      const double delta = horizon / (ticks + 1);
      for (int i = 0; i < num_workers; ++i) {
        worker_times[static_cast<size_t>(i)] = (2 * i) * delta;
      }
      for (int i = 0; i < num_tasks; ++i) {
        task_times[static_cast<size_t>(i)] = (2 * i + 1) * delta;
      }
      break;
    }
    case ArrivalPattern::kBursty: {
      // Every arrival lands on one of a handful of *identical* timestamps.
      const int num_bursts = 3 + static_cast<int>(rng.NextBounded(4));
      std::vector<double> bursts(static_cast<size_t>(num_bursts));
      for (double& b : bursts) b = rng.NextDouble(0.0, horizon);
      for (double& t : worker_times) {
        t = bursts[rng.NextBounded(bursts.size())];
      }
      for (double& t : task_times) {
        t = bursts[rng.NextBounded(bursts.size())];
      }
      break;
    }
    case ArrivalPattern::kShuffledIds:
      for (double& t : worker_times) t = rng.NextDouble(0.0, horizon);
      for (double& t : task_times) t = rng.NextDouble(0.0, horizon);
      break;
  }

  std::vector<Worker> workers(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    Worker& w = workers[static_cast<size_t>(i)];
    w.location = {rng.NextDouble(0.0, width), rng.NextDouble(0.0, height)};
    w.start = worker_times[static_cast<size_t>(i)];
    w.duration = 1.0 + rng.NextDouble() * 5.0;
  }
  std::vector<Task> tasks(static_cast<size_t>(num_tasks));
  for (int i = 0; i < num_tasks; ++i) {
    Task& r = tasks[static_cast<size_t>(i)];
    r.location = {rng.NextDouble(0.0, width), rng.NextDouble(0.0, height)};
    r.start = task_times[static_cast<size_t>(i)];
    r.duration = 0.5 + rng.NextDouble() * 2.5;
  }
  if (pattern == ArrivalPattern::kShuffledIds) {
    // Ids are reassigned to vector order by the Instance constructor, so
    // shuffling here makes id order uncorrelated with arrival order.
    DeterministicShuffle(workers, rng);
    DeterministicShuffle(tasks, rng);
  }

  const GridSpec grid(width, height, 4, 4);
  const SlotSpec slots(horizon, 5);
  return Instance(SpacetimeSpec(slots, grid), /*velocity=*/2.0,
                  std::move(workers), std::move(tasks));
}

/// Instance plus the deps its POLAR-family algorithms need — the guide is
/// built from the instance's own realized counts (a perfect prediction),
/// which keeps small fuzz universes from starving the guide.
struct FuzzUniverse {
  Instance instance;
  AlgorithmDeps deps;
};

/// MakeFuzzInstance plus a matching guide, the unit the streaming and
/// sharding equivalence suites sweep over.
inline FuzzUniverse MakeFuzzUniverse(uint64_t seed, ArrivalPattern pattern,
                                     int num_workers = 60,
                                     int num_tasks = 60) {
  FuzzUniverse universe{
      MakeFuzzInstance(seed, pattern, num_workers, num_tasks), {}};
  GuideOptions options;
  options.engine = GuideOptions::Engine::kAuto;
  options.worker_duration = universe.instance.MaxWorkerDuration();
  options.task_duration = universe.instance.MaxTaskDuration();
  auto guide =
      GuideGenerator(universe.instance.velocity(), options)
          .Generate(PredictionMatrix::FromInstance(universe.instance));
  EXPECT_TRUE(guide.ok()) << guide.status().ToString();
  universe.deps.guide =
      std::make_shared<const OfflineGuide>(std::move(*guide));
  return universe;
}

/// Asserts that two runs produced bit-identical assignments and traces —
/// the equality the batch/stream/sharded equivalence suites are built on.
inline void ExpectIdenticalRun(const Assignment& a, const RunTrace& ta,
                               const Assignment& b, const RunTrace& tb,
                               const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.pairs().size(); ++i) {
    const MatchedPair& pa = a.pairs()[i];
    const MatchedPair& pb = b.pairs()[i];
    EXPECT_EQ(pa.worker, pb.worker) << label << " pair " << i;
    EXPECT_EQ(pa.task, pb.task) << label << " pair " << i;
    EXPECT_EQ(pa.time, pb.time) << label << " pair " << i;
  }
  ASSERT_EQ(ta.dispatches.size(), tb.dispatches.size()) << label;
  for (size_t i = 0; i < ta.dispatches.size(); ++i) {
    EXPECT_EQ(ta.dispatches[i].worker, tb.dispatches[i].worker)
        << label << " dispatch " << i;
    EXPECT_EQ(ta.dispatches[i].target, tb.dispatches[i].target)
        << label << " dispatch " << i;
    EXPECT_EQ(ta.dispatches[i].time, tb.dispatches[i].time)
        << label << " dispatch " << i;
  }
  EXPECT_EQ(ta.ignored_workers, tb.ignored_workers) << label;
  EXPECT_EQ(ta.ignored_tasks, tb.ignored_tasks) << label;
  EXPECT_EQ(ta.matcher_rebuilds, tb.matcher_rebuilds) << label;
  EXPECT_EQ(ta.matcher_augment_searches, tb.matcher_augment_searches)
      << label;
}

}  // namespace testing
}  // namespace ftoa

#endif  // FTOA_TESTS_TEST_UTIL_H_
