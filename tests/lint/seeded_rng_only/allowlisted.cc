// lint-fixture: path=src/serve/fixture_allow.cc
#include <random>

namespace ftoa {

unsigned HardwareSeed() {
  // ftoa-lint: ok(seeded-rng-only): operator-requested nondeterministic seed, logged so the run can be replayed
  std::random_device rd;
  return rd();
}

}  // namespace ftoa
