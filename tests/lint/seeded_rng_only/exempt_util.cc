// lint-fixture: path=src/util/fixture_exempt.cc
// src/util is the sanctioned wrapper layer: clocks are allowed here.
#include <chrono>

namespace ftoa {

long NowNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace ftoa
