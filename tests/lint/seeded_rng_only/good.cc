// lint-fixture: path=src/core/fixture_good.cc
// The sanctioned route: explicit seeds through util/rng, timing through
// util/stopwatch. Identifiers that merely contain banned substrings
// (operand, brand) must not trip the word-boundary matchers.
namespace ftoa {

class Rng;

double Draw(Rng& rng, double operand);

double Sample(Rng& rng) {
  double brand = 1.0;
  return Draw(rng, brand);
}

}  // namespace ftoa
