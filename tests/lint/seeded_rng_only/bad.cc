// lint-fixture: path=src/core/fixture_bad.cc
// Every banned randomness / wall-clock source the check must catch.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace ftoa {

unsigned Entropy() {
  std::random_device rd;  // lint-expect: seeded-rng-only
  unsigned x = rd();
  x += static_cast<unsigned>(rand());  // lint-expect: seeded-rng-only
  std::mt19937 gen(x);  // lint-expect: seeded-rng-only
  x += static_cast<unsigned>(gen());
  x += static_cast<unsigned>(std::time(nullptr));  // lint-expect: seeded-rng-only
  auto t = std::chrono::steady_clock::now();  // lint-expect: seeded-rng-only
  (void)t;
  return x;
}

}  // namespace ftoa
