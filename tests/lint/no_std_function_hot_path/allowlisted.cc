// lint-fixture: path=src/spatial/fixture_allow.cc
#include <functional>

namespace ftoa {

// ftoa-lint: ok(no-std-function-hot-path): one-shot setup callback, not called per candidate
void Configure(const std::function<void()>& once) { once(); }

}  // namespace ftoa
