// lint-fixture: path=src/sim/fixture_scope.cc
// std::function outside src/flow and src/spatial is allowed (e.g. the
// competitive-ratio trial factory): scope must not leak.
#include <functional>

namespace ftoa {

void RunTrials(int n, const std::function<void(int)>& factory) {
  for (int i = 0; i < n; ++i) factory(i);
}

}  // namespace ftoa
