// lint-fixture: path=src/flow/fixture_bad.cc
// A type-erased per-edge callback in a hot path.
#include <functional>

namespace ftoa {

void ForEachEdge(int n, const std::function<void(int)>& fn) {  // lint-expect: no-std-function-hot-path
  for (int i = 0; i < n; ++i) fn(i);
}

}  // namespace ftoa
