// lint-fixture: path=src/flow/fixture_good.cc
// The required shape: a templated callback, inlined per edge.
namespace ftoa {

template <typename Fn>
void ForEachEdge(int n, Fn&& fn) {
  for (int i = 0; i < n; ++i) fn(i);
}

}  // namespace ftoa
