// lint-fixture: path=src/retrieval/fixture_bad.cc
// A type-erased per-candidate filter in the retrieval engine's scope.
#include <functional>

namespace ftoa {

int CountMatching(int n, const std::function<bool(int)>& filter) {  // lint-expect: no-std-function-hot-path
  int count = 0;
  for (int i = 0; i < n; ++i) {
    if (filter(i)) ++count;
  }
  return count;
}

}  // namespace ftoa
