// lint-fixture: path=src/retrieval/fixture_allow.cc
#include <functional>

namespace ftoa {

// ftoa-lint: ok(no-std-function-hot-path): store-rebuild hook, invoked once per epoch
void OnRebuild(const std::function<void()>& hook) { hook(); }

}  // namespace ftoa
