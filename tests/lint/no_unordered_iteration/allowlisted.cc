// lint-fixture: path=src/serve/fixture_allow.cc
// The annotation (with a mandatory reason) silences the check for the
// following line only.
#include <unordered_map>
#include <vector>

namespace ftoa {

std::vector<long> Keys(const std::unordered_map<long, int>& store) {
  std::vector<long> keys;
  // ftoa-lint: ok(no-unordered-iteration): keys are sorted by the caller before reaching output
  for (const auto& kv : store) {
    keys.push_back(kv.first);
  }
  return keys;
}

}  // namespace ftoa
