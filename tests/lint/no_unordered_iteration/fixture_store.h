// lint-fixture: path=src/sim/fixture_store.h
// Clean on its own: declaring an unordered member is fine; iterating it
// (see bad_cross_file.cc, which includes this header) is not.
#ifndef FTOA_SIM_FIXTURE_STORE_H_
#define FTOA_SIM_FIXTURE_STORE_H_

#include <unordered_map>

namespace ftoa {

struct FixtureStore {
  std::unordered_map<long, int> live_;
  int Lookup(long id) const {
    auto it = live_.find(id);
    return it == live_.end() ? 0 : it->second;
  }
};

}  // namespace ftoa

#endif  // FTOA_SIM_FIXTURE_STORE_H_
