// lint-fixture: path=src/prediction/fixture_scope.cc
// src/prediction is outside the determinism-contract paths: identical
// code to bad.cc must stay quiet here.
#include <unordered_map>

namespace ftoa {

int Sum(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& kv : counts) total += kv.second;
  return total;
}

}  // namespace ftoa
