// lint-fixture: path=src/sim/fixture_bad.cc
// Every lexical form of unordered iteration the check must catch.
#include <unordered_map>
#include <unordered_set>

namespace ftoa {

std::unordered_map<int, int> MakeCounts();

struct Holder {
  std::unordered_set<long> ids_;
  std::unordered_map<int, double> weights_;
};

int Sum(const Holder& h) {
  int total = 0;
  for (long id : h.ids_) {  // lint-expect: no-unordered-iteration
    total += static_cast<int>(id);
  }
  for (const auto& kv : h.weights_) {  // lint-expect: no-unordered-iteration
    total += kv.first;
  }
  for (const auto& kv : MakeCounts()) {  // lint-expect: no-unordered-iteration
    total += kv.second;
  }
  auto it = h.weights_.begin();  // lint-expect: no-unordered-iteration
  (void)it;
  return total;
}

}  // namespace ftoa
