// lint-fixture: path=src/core/fixture_good.cc
// Lookups into unordered containers and iteration over ordered ones are
// both fine; so is iterating a sorted snapshot of the keys.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace ftoa {

int Fine(const std::unordered_map<int, int>& counts,
         const std::map<int, int>& ordered) {
  int total = 0;
  auto it = counts.find(3);
  if (it != counts.end()) total += it->second;
  for (const auto& kv : ordered) total += kv.second;
  std::vector<int> keys;
  keys.reserve(counts.size());
  total += static_cast<int>(counts.count(7));
  std::sort(keys.begin(), keys.end());
  for (int k : keys) total += k;
  return total;
}

}  // namespace ftoa
