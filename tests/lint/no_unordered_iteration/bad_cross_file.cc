// lint-fixture: path=src/sim/fixture_cross.cc
// The iterated member is declared in the included header, not in this
// file: the check must resolve project includes to know live_'s type
// (this is how the real serve/service_harness.cc store_ case is caught).
#include "fixture_store.h"

namespace ftoa {

long SumLive(const FixtureStore& store) {
  long total = 0;
  for (const auto& kv : store.live_) {  // lint-expect: no-unordered-iteration
    total += kv.first;
  }
  return total;
}

}  // namespace ftoa
