// lint-fixture: path=src/util/fixture_allow.cc
// <chrono> is consumed by a macro body the token map cannot see.
// ftoa-lint: ok(include-hygiene): consumed inside FIXTURE_TIMED macro expansion
#include <chrono>
#include <vector>

#define FIXTURE_TIMED(x) (x)

namespace ftoa {
std::vector<int> V() { return {FIXTURE_TIMED(1)}; }
}  // namespace ftoa
