// lint-fixture: path=src/core/fixture_bad_guard.h  lint-expect: include-hygiene
// The guard exists but is not the canonical FTOA_CORE_FIXTURE_BAD_GUARD_H_
// (guard findings anchor to line 1; the expect marker there pins that).
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

namespace ftoa {
struct Empty {};
}  // namespace ftoa

#endif  // WRONG_GUARD_H
