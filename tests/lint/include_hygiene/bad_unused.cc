// lint-fixture: path=src/util/fixture_bad_unused.cc
#include <unordered_set>  // lint-expect: include-hygiene
#include <vector>

namespace ftoa {
std::vector<int> V() { return {1, 2, 3}; }
}  // namespace ftoa
