// lint-fixture: path=src/core/fixture_bad_dup.cc
#include <vector>
#include <vector>  // lint-expect: include-hygiene

namespace ftoa {
std::vector<int> V() { return {}; }
}  // namespace ftoa
