// lint-fixture: path=src/core/fixture_good.h
#ifndef FTOA_CORE_FIXTURE_GOOD_H_
#define FTOA_CORE_FIXTURE_GOOD_H_

#include <vector>

namespace ftoa {
std::vector<int> Values();
}  // namespace ftoa

#endif  // FTOA_CORE_FIXTURE_GOOD_H_
