// lint-fixture: path=src/core/fixture_bad_annot.cc
// Unknown check names and reason-less annotations are findings
// themselves: a silenced check must say which check and why.
namespace ftoa {

// ftoa-lint: ok(no-such-check): whatever  // lint-expect: bad-annotation
int A() { return 1; }

// ftoa-lint: ok(seeded-rng-only)  // lint-expect: bad-annotation
int B() { return 2; }

}  // namespace ftoa
