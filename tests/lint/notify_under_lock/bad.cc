// lint-fixture: path=src/util/fixture_bad.cc
// The three unlocked-notify shapes: after the guard's scope closed (the
// exact PR 6 TSan bug), with no lock at all, and after an explicit
// unlock().
#include <condition_variable>
#include <mutex>

namespace ftoa {

struct Chan {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;

  void SignalAfterScope() {
    {
      std::lock_guard<std::mutex> lock(mu);
      ready = true;
    }
    cv.notify_all();  // lint-expect: notify-under-lock
  }

  void SignalNoLock() {
    cv.notify_one();  // lint-expect: notify-under-lock
  }

  void SignalAfterUnlock() {
    std::unique_lock<std::mutex> lk(mu);
    ready = true;
    lk.unlock();
    cv.notify_one();  // lint-expect: notify-under-lock
  }
};

}  // namespace ftoa
