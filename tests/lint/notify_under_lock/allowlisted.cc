// lint-fixture: path=src/util/fixture_allow.cc
#include <condition_variable>
#include <mutex>

namespace ftoa {

struct Chan {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;

  void Signal() {
    {
      std::lock_guard<std::mutex> lock(mu);
      ready = true;
    }
    // ftoa-lint: ok(notify-under-lock): cv outlives all signalers by contract; unlocked notify avoids wakeup contention
    cv.notify_all();
  }
};

}  // namespace ftoa
