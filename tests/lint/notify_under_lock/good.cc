// lint-fixture: path=src/util/fixture_good.cc
// Notifies lexically inside the guarding lock's scope, including from a
// nested block and under a unique_lock that was never unlocked.
#include <condition_variable>
#include <mutex>

namespace ftoa {

struct Chan {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;

  void Signal() {
    std::lock_guard<std::mutex> lock(mu);
    ready = true;
    cv.notify_all();
  }

  void SignalNested(bool flag) {
    std::unique_lock<std::mutex> lk(mu);
    if (flag) {
      ready = true;
      cv.notify_one();
    }
  }
};

}  // namespace ftoa
