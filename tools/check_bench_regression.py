#!/usr/bin/env python3
"""Bench regression gate: diff a fresh google-benchmark JSON against a
committed baseline and fail on steady-state regressions.

Two checks, both over benchmarks present in *both* files:

  1. Per-benchmark regression: fresh real_time > --max-regression x the
     baseline's (default 2.0 -- lenient on purpose: baselines are recorded
     on whatever machine cut the PR, and the gate must not flake on
     hardware differences; a genuine O(store)-per-window regression on the
     serving path blows past 2x on any machine).
  2. Warm-refresh invariant (BENCH_refresh.json only): in the *fresh* run,
     BM_GuideRefresh/warm/C must beat BM_GuideRefresh/cold/C by at least
     --min-warm-speedup (default 2.0) -- the PR's acceptance bar, measured
     on one machine so it cannot flake on hardware.

Usage:
  tools/check_bench_regression.py BASELINE.json FRESH.json \
      [--max-regression=2.0] [--min-warm-speedup=2.0]

Exits 0 when every check passes, 1 otherwise. Benchmarks present in only
one file are reported but never fail the gate (series come and go).
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """name -> real_time for every non-aggregate benchmark entry."""
    with open(path) as handle:
        data = json.load(handle)
    runs = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        runs[bench["name"]] = float(bench["real_time"])
    return runs


def check_regressions(baseline, fresh, max_regression):
    failures = []
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("bench-regression: no shared benchmarks; nothing to compare")
        return failures
    for name in shared:
        ratio = fresh[name] / baseline[name] if baseline[name] > 0 else 1.0
        marker = "FAIL" if ratio > max_regression else "ok"
        print(f"  {marker:4s} {name}: baseline {baseline[name]:.2f} "
              f"fresh {fresh[name]:.2f} ({ratio:.2f}x)")
        if ratio > max_regression:
            failures.append(f"{name} regressed {ratio:.2f}x "
                            f"(limit {max_regression:.2f}x)")
    for name in sorted(set(baseline) - set(fresh)):
        print(f"  note {name}: in baseline only (series removed?)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  note {name}: new series (no baseline)")
    return failures


def check_warm_speedup(fresh, min_speedup):
    """The sparse-delta refresh bar, on the fresh run alone."""
    failures = []
    pairs = []
    for name, cold_time in fresh.items():
        if "/cold/" not in name:
            continue
        warm_name = name.replace("/cold/", "/warm/")
        if warm_name in fresh:
            pairs.append((name, warm_name, cold_time, fresh[warm_name]))
    for cold_name, warm_name, cold_time, warm_time in sorted(pairs):
        speedup = cold_time / warm_time if warm_time > 0 else float("inf")
        marker = "ok" if speedup >= min_speedup else "FAIL"
        print(f"  {marker:4s} {warm_name}: {speedup:.2f}x vs {cold_name} "
              f"(bar {min_speedup:.2f}x)")
        if speedup < min_speedup:
            failures.append(f"{warm_name} only {speedup:.2f}x faster than "
                            f"{cold_name} (bar {min_speedup:.2f}x)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument("--min-warm-speedup", type=float, default=2.0)
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.fresh)

    print(f"bench-regression: {args.fresh} vs baseline {args.baseline}")
    failures = check_regressions(baseline, fresh, args.max_regression)
    print("bench-regression: warm-refresh speedup bar")
    failures += check_warm_speedup(fresh, args.min_warm_speedup)

    if failures:
        print("bench-regression: FAILED")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench-regression: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
