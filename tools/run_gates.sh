#!/usr/bin/env bash
# The documented pre-PR gate: every standing check, in dependency order,
# fail-fast. This is the one command to run before pushing:
#
#   format-check   -> tools/run_format.sh --check        (.clang-format)
#   static analysis-> tools/run_static_analysis.sh       (clang-tidy when
#                     installed + ftoa-lint selftest + tree; always gates)
#   build          -> warnings-as-errors (-DFTOA_WERROR=ON) in a dedicated
#                     tree so the default build dir keeps its cache
#   ctest          -> the full suite (unit + property + stress + soak
#                     smoke + lint labels)
#
# The sanitizer gate (tools/run_sanitizers.sh: ASan/UBSan + TSan) is not
# chained here because it rebuilds two more trees; run it separately for
# concurrency-touching changes.
#
# Optional bench gate (FTOA_BENCH_GATE=1): reruns the bench smoke and
# diffs the fresh BENCH_refresh.json against the committed baseline with
# tools/check_bench_regression.py — fails on a >2x steady-state serving
# regression or a warm-refresh speedup below the 2x bar. Off by default:
# it rebuilds the Release tree and takes minutes.
#
# Usage: tools/run_gates.sh [gate-build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-gate}"

echo "==== gate 1/4: format check"
"$ROOT/tools/run_format.sh" --check

echo "==== gate 2/4: static analysis (clang-tidy + ftoa-lint)"
"$ROOT/tools/run_static_analysis.sh" "$BUILD"

echo "==== gate 3/4: build, warnings as errors"
cmake -B "$BUILD" -S "$ROOT" -DFTOA_WERROR=ON >/dev/null
cmake --build "$BUILD" -j "$(nproc)"

echo "==== gate 4/4: ctest"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

if [[ "${FTOA_BENCH_GATE:-0}" != "0" ]]; then
  echo "==== optional gate: bench smoke + steady-state regression diff"
  baseline="$(mktemp)"
  trap 'rm -f "$baseline"' EXIT
  git -C "$ROOT" show HEAD:BENCH_refresh.json > "$baseline"
  "$ROOT/tools/run_bench_smoke.sh"
  python3 "$ROOT/tools/check_bench_regression.py" \
      "$baseline" "$ROOT/BENCH_refresh.json"
fi

echo "all gates passed"
