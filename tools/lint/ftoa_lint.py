#!/usr/bin/env python3
"""ftoa-lint: project-specific determinism & concurrency checks.

The repo's verification story (bit-identical guides at any thread count,
batch-vs-stream equality, shard-merge invariance) rests on a determinism
contract that runtime tests can only spot-check: a violation hides until an
input happens to trigger it.  Every concurrency bug this project has shipped
and later caught at runtime belongs to a statically detectable class; this
tool encodes those classes as named checks and runs without a compiler
(pure-lexical "AST-lite" analysis: comments and string literals are blanked,
brace depth and declaration scopes are tracked, no clang needed).

Checks (see docs/static_analysis.md for the full catalog):

  no-unordered-iteration   Range-for / `.begin()` iteration over
                           `std::unordered_{map,set,...}` in the
                           determinism-contract paths (src/core, src/sim,
                           src/serve, src/flow).  Hash-order iteration
                           feeding output is exactly the class of bug the
                           shard-merge suites exist to catch at runtime.
  seeded-rng-only          `rand`, `srand`, `std::random_device`, and
                           wall-clock `now()` outside src/util (the
                           sanctioned wrappers: util/rng, util/stopwatch,
                           the thread pool's deadline clock).
  notify-under-lock        `notify_one`/`notify_all` lexically outside the
                           guarding lock scope — notifying after the lock
                           is released races the condition variable's
                           destruction (the exact TSan bug PR 6 fixed in
                           the shard drain path).
  no-std-function-hot-path `std::function` in src/flow, src/spatial,
                           and src/retrieval — per-candidate/per-edge
                           callbacks there must be templated parameters (a
                           type-erased call per inner-loop item is a
                           measured regression).
  include-hygiene          Headers must carry the canonical
                           `FTOA_<PATH>_H_` include guard; duplicate
                           includes; unused std includes (curated,
                           conservative token map).

Allowlist grammar (a reason is mandatory; the annotation covers its own
line and the immediately following line):

    // ftoa-lint: ok(<check-name>): <reason>

Usage:
    tools/lint/ftoa_lint.py [--root DIR] [paths...]   lint tree or files
    tools/lint/ftoa_lint.py --selftest [DIR]          run fixture corpus
    tools/lint/ftoa_lint.py --list-checks             print check catalog

Exit codes: 0 clean, 1 findings (or selftest mismatch), 2 usage error.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Check catalog and path scopes (relative, '/'-separated).

DETERMINISM_PATHS = ("src/core/", "src/sim/", "src/serve/", "src/flow/")
HOT_PATHS = ("src/flow/", "src/spatial/", "src/retrieval/")
RNG_SCOPE = ("src/", "tools/")
RNG_EXEMPT = ("src/util/", "tools/lint/")

CHECKS = {
    "no-unordered-iteration":
        "iteration over an unordered container in a determinism-contract "
        "path (%s): hash order is not part of the contract; iterate a "
        "sorted snapshot or annotate why the order cannot reach output"
        % ", ".join(DETERMINISM_PATHS),
    "seeded-rng-only":
        "unseeded randomness or wall-clock time outside src/util: all "
        "randomness must come from util/rng seeds and all timing from the "
        "util/stopwatch / thread-pool clocks",
    "notify-under-lock":
        "condition-variable notify outside the guarding lock scope: an "
        "unlocked notify races the cv's destruction once the waiter "
        "observes the predicate and returns",
    "no-std-function-hot-path":
        "std::function in a hot path (%s): per-item callbacks must be "
        "templated parameters, not type-erased" % ", ".join(HOT_PATHS),
    "include-hygiene":
        "include guard missing or non-canonical (FTOA_<PATH>_H_), "
        "duplicate include, or unused std include",
    "bad-annotation":
        "malformed ftoa-lint annotation (unknown check name or missing "
        "reason): the grammar is `// ftoa-lint: ok(<check>): <reason>`",
}

SOURCE_EXTS = (".cc", ".h", ".cpp")

# Directories scanned by a bare `ftoa_lint.py` run.
DEFAULT_SCAN_DIRS = ("src", "tests", "bench", "tools", "examples")
SKIP_DIR_NAMES = {"build", "lint"}  # tools/lint fixtures & build trees


class Finding:
    def __init__(self, rel, line, check, message):
        self.rel = rel
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.rel, self.line, self.check,
                                   self.message)


# --------------------------------------------------------------------------
# Lexical front end: blank comments/strings, collect annotations.

_ANNOT_RE = re.compile(r"ftoa-lint:\s*ok\(([A-Za-z0-9_-]+)\)\s*(?::\s*(\S.*))?")
_ANNOT_ANY_RE = re.compile(r"ftoa-lint\s*:")
_FIXTURE_RE = re.compile(r"lint-fixture:\s*path=(\S+)")
_EXPECT_RE = re.compile(r"lint-expect:\s*([A-Za-z0-9_-]+)")


class SourceFile:
    """One parsed file: cleaned text (comments and literals blanked to
    spaces, newlines kept so offsets map to the same lines), per-line
    allowlist annotations, and fixture metadata for the self-test."""

    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel.replace(os.sep, "/")
        self.text = text
        self.allow = {}        # line -> set(check names)
        self.expects = []      # [(line, check)] from lint-expect markers
        self.fixture_path = None
        self.findings = []
        self.clean = self._scan(text)
        self.line_starts = self._line_starts(self.clean)

    def _scan(self, text):
        out = []
        i, n = 0, len(text)
        line = 1
        while i < n:
            c = text[i]
            if c == "\n":
                out.append(c)
                line += 1
                i += 1
            elif c == "/" and i + 1 < n and text[i + 1] == "/":
                j = text.find("\n", i)
                if j == -1:
                    j = n
                self._comment(text[i:j], line)
                out.append(" " * (j - i))
                i = j
            elif c == "/" and i + 1 < n and text[i + 1] == "*":
                j = text.find("*/", i + 2)
                j = n if j == -1 else j + 2
                body = text[i:j]
                self._comment(body, line)
                out.append(re.sub(r"[^\n]", " ", body))
                line += body.count("\n")
                i = j
            elif c == '"' or c == "'":
                # Keep `#include "path"` literals intact: the include
                # checks and header resolution read them from clean text.
                ls = text.rfind("\n", 0, i) + 1
                if c == '"' and re.match(r"[ \t]*#[ \t]*include[ \t]*$",
                                         text[ls:i]):
                    j = text.find('"', i + 1)
                    j = n if j == -1 else j + 1
                    out.append(text[i:j])
                    i = j
                    continue
                # Raw strings: the prefix R was consumed as an identifier
                # char already; detect it by looking back.
                if c == '"' and i > 0 and text[i - 1] == "R":
                    j = text.find(")\"", i)
                    j = n if j == -1 else j + 2
                else:
                    j = i + 1
                    while j < n and text[j] != c:
                        j += 2 if text[j] == "\\" else 1
                    j = min(j + 1, n)
                body = text[i:j]
                out.append(c + re.sub(r"[^\n]", " ", body[1:-1]) + c
                           if len(body) >= 2 else body)
                line += body.count("\n")
                i = j
            else:
                out.append(c)
                i += 1
        return "".join(out)

    def _comment(self, body, line):
        m = _ANNOT_RE.search(body)
        if m:
            check, reason = m.group(1), m.group(2)
            if check not in CHECKS or check == "bad-annotation" or not reason:
                self.findings.append(Finding(
                    self.rel, line, "bad-annotation",
                    CHECKS["bad-annotation"]))
            else:
                for covered in (line, line + 1):
                    self.allow.setdefault(covered, set()).add(check)
        elif _ANNOT_ANY_RE.search(body) and "lint-expect" not in body \
                and "lint-fixture" not in body and "ftoa-lint: ok" not in body:
            self.findings.append(Finding(self.rel, line, "bad-annotation",
                                         CHECKS["bad-annotation"]))
        fm = _FIXTURE_RE.search(body)
        if fm:
            self.fixture_path = fm.group(1)
        em = _EXPECT_RE.search(body)
        if em:
            self.expects.append((line, em.group(1)))

    @staticmethod
    def _line_starts(clean):
        starts = [0]
        for i, ch in enumerate(clean):
            if ch == "\n":
                starts.append(i + 1)
        return starts

    def line_of(self, pos):
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def report(self, pos_or_line, check, message, by_pos=True):
        line = self.line_of(pos_or_line) if by_pos else pos_or_line
        if check in self.allow.get(line, ()):
            return
        self.findings.append(Finding(self.rel, line, check, message))


# --------------------------------------------------------------------------
# Helpers shared by checks.

_TMPL_OPEN = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")


def _match_angle(clean, open_pos):
    """Return position just past the `>` matching the `<` at open_pos,
    or -1.  Treats >> as two closers; ignores comparison operators by
    bailing out on `;`/`{`."""
    depth = 0
    i = open_pos
    n = len(clean)
    while i < n:
        c = clean[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            return -1
        i += 1
    return -1


_IDENT = r"[A-Za-z_]\w*"
_DECL_AFTER = re.compile(
    r"\s*(?:&|\*|&&)?\s*(" + _IDENT + r")\s*([;,=({\[)])")


def collect_unordered_names(clean):
    """Names of variables/members declared with an unordered container
    type, and names of functions returning one, in this cleaned text."""
    var_names = set()
    fn_names = set()
    for m in _TMPL_OPEN.finditer(clean):
        close = _match_angle(clean, m.end() - 1)
        if close == -1:
            continue
        dm = _DECL_AFTER.match(clean, close)
        if not dm:
            continue
        name, sep = dm.group(1), dm.group(2)
        if sep == "(":
            fn_names.add(name)
        elif sep != ")":  # `)` = cast/param-less context, not a decl
            var_names.add(name)
    return var_names, fn_names


_LAST_IDENT_RE = re.compile(r"(" + _IDENT + r")\s*(\(\s*\))?\s*$")


def _root_of_expr(expr):
    """(`name`, is_call) for the last member-chain segment of an
    iterated expression: `a.b.c_` -> (c_, False); `g->F()` -> (F, True)."""
    expr = expr.strip()
    m = _LAST_IDENT_RE.search(expr)
    if not m:
        return None, False
    return m.group(1), m.group(2) is not None


# --------------------------------------------------------------------------
# Checks.  Each takes (sf, ctx) and appends to sf.findings via sf.report.


def check_no_unordered_iteration(sf, ctx):
    if not sf.rel.startswith(DETERMINISM_PATHS):
        return
    var_names, fn_names = collect_unordered_names(sf.clean)
    for dep in ctx.resolve_includes(sf):
        v, f = collect_unordered_names(dep.clean)
        var_names |= v
        fn_names |= f
    if not var_names and not fn_names:
        return
    clean = sf.clean
    # Range-for: `for (<decl> : <expr>)`.
    for m in re.finditer(r"\bfor\s*\(", clean):
        close = _match_paren(clean, m.end() - 1)
        if close == -1:
            continue
        inner = clean[m.end():close - 1]
        colon = _split_range_for(inner)
        if colon == -1:
            continue
        name, is_call = _root_of_expr(inner[colon + 1:])
        if name is None:
            continue
        if (is_call and name in fn_names) or \
           (not is_call and name in var_names):
            sf.report(m.start(), "no-unordered-iteration",
                      "range-for over unordered container `%s`; %s" %
                      (name, CHECKS["no-unordered-iteration"]))
    # Iterator / algorithm entry: `<expr>.begin()` or `.cbegin()`.
    for m in re.finditer(
            r"(" + _IDENT + r")\s*(?:\.|->)\s*c?begin\s*\(", clean):
        if m.group(1) in var_names:
            sf.report(m.start(), "no-unordered-iteration",
                      "`%s.begin()` on an unordered container; %s" %
                      (m.group(1), CHECKS["no-unordered-iteration"]))


def _match_paren(clean, open_pos):
    depth = 0
    for i in range(open_pos, len(clean)):
        c = clean[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c == ";":
            return -1
    return -1


def _split_range_for(inner):
    """Index of the range-for `:` in a for-parenthesis body, or -1 for a
    classic three-clause for.  Skips `::` and template/paren nesting."""
    depth = 0
    i = 0
    n = len(inner)
    while i < n:
        c = inner[i]
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        elif c == ";":
            return -1
        elif c == ":" and depth == 0:
            if i + 1 < n and inner[i + 1] == ":":
                i += 2
                continue
            if i > 0 and inner[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return -1


_RNG_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd\s*::\s*time\s*\(|(?<![\w:.])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time()"),
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::"
                r"\s*now\s*\("), "wall-clock now()"),
    (re.compile(r"\bgettimeofday\s*\(|\bclock_gettime\s*\("), "gettimeofday"),
    (re.compile(r"\bstd\s*::\s*mt19937(?:_64)?\b"),
     "std::mt19937 (use util/rng xoshiro streams)"),
)


def check_seeded_rng_only(sf, ctx):
    del ctx
    if not sf.rel.startswith(RNG_SCOPE) or sf.rel.startswith(RNG_EXEMPT):
        return
    for pat, what in _RNG_PATTERNS:
        for m in pat.finditer(sf.clean):
            sf.report(m.start(), "seeded-rng-only",
                      "%s; %s" % (what, CHECKS["seeded-rng-only"]))


_LOCK_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:lock_guard|unique_lock|scoped_lock)\s*"
    r"(?:<[^;{}()]*>)?\s+(" + _IDENT + r")\s*[({]")
_NOTIFY_RE = re.compile(r"(?:\.|->)\s*notify_(?:one|all)\s*\(")


def check_notify_under_lock(sf, ctx):
    del ctx
    if not sf.rel.startswith("src/"):
        return
    clean = sf.clean
    notifies = [m.start() for m in _NOTIFY_RE.finditer(clean)]
    if not notifies:
        return
    locks = [(m.start(), m.group(1)) for m in _LOCK_DECL_RE.finditer(clean)]
    # Prefix-min of brace depth lets us test "scope still open" in O(1):
    # a lock at depth d is live at p iff depth never dips below d in (q,p].
    depth = 0
    depth_at = [0] * (len(clean) + 1)
    for i, c in enumerate(clean):
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
        depth_at[i + 1] = depth
    for p in notifies:
        held = False
        for q, name in locks:
            if q >= p:
                break
            dq = depth_at[q + 1]
            if dq <= 0:
                continue
            if min(depth_at[q + 1:p + 1]) < dq:
                continue  # the lock's scope closed before the notify
            unlocked = re.search(
                r"\b" + re.escape(name) + r"\s*\.\s*unlock\s*\(", clean[q:p])
            if unlocked:
                continue
            held = True
            break
        if not held:
            sf.report(p, "notify-under-lock", CHECKS["notify-under-lock"])


def check_no_std_function_hot_path(sf, ctx):
    del ctx
    if not sf.rel.startswith(HOT_PATHS):
        return
    for m in re.finditer(r"\bstd\s*::\s*function\s*<", sf.clean):
        sf.report(m.start(), "no-std-function-hot-path",
                  CHECKS["no-std-function-hot-path"])


# Conservative unused-include token map: a std header is flagged only when
# none of its distinctive tokens appear in the cleaned text.  Headers whose
# use is hard to fingerprint (<utility>, <cstddef>, <new>, ...) are not
# listed and never flagged.
_STD_HEADER_TOKENS = {
    "vector": r"\bvector\s*<",
    "deque": r"\bdeque\s*<",
    "list": r"\bstd\s*::\s*list\s*<",
    "map": r"(?<!unordered_)\bmap\s*<|(?<!unordered_)\bmultimap\s*<",
    "set": r"(?<!unordered_)(?<!_)\bset\s*<|(?<!unordered_)\bmultiset\s*<",
    "unordered_map": r"\bunordered_(?:multi)?map\s*<",
    "unordered_set": r"\bunordered_(?:multi)?set\s*<",
    "queue": r"\bqueue\s*<|\bpriority_queue\s*<",
    "stack": r"\bstack\s*<",
    "array": r"\bstd\s*::\s*array\s*<",
    "bitset": r"\bbitset\s*<",
    "regex": r"\bstd\s*::\s*w?regex\b|\bregex_(?:match|search|replace)\b",
    "random": r"\bstd\s*::\s*(?:mt19937|random_device|uniform_|normal_"
              r"|bernoulli_|discrete_d)",
    "thread": r"\bstd\s*::\s*thread\b|\bthis_thread\b",
    "mutex": r"\bmutex\b|\block_guard\b|\bunique_lock\b|\bscoped_lock\b"
             r"|\bcall_once\b|\bonce_flag\b",
    "condition_variable": r"\bcondition_variable\b|\bcv_status\b",
    "future": r"\bfuture\s*<|\bpromise\s*<|\bpackaged_task\s*<|\basync\s*\(",
    "atomic": r"\batomic\b",
    "optional": r"\boptional\s*<|\bnullopt\b|\bmake_optional\b",
    "variant": r"\bvariant\s*<|\bholds_alternative\b|\bstd\s*::\s*get\s*<"
               r"|\bmonostate\b|\bstd\s*::\s*visit\b",
    "tuple": r"\btuple\s*<|\bmake_tuple\b|\btie\s*\(|\bstd\s*::\s*get\s*<"
             r"|\bapply\s*\(",
    "functional": r"\bstd\s*::\s*function\s*<|\bstd\s*::\s*bind\b"
                  r"|\bstd\s*::\s*ref\b|\bstd\s*::\s*cref\b"
                  r"|\bstd\s*::\s*hash\s*<|\bmem_fn\b|\bstd\s*::\s*greater\b"
                  r"|\bstd\s*::\s*less\b|\bstd\s*::\s*plus\b|\binvoke\b",
    "fstream": r"\bifstream\b|\bofstream\b|\bfstream\b",
    "sstream": r"\bstringstream\b|\bistringstream\b|\bostringstream\b",
    "iostream": r"\bstd\s*::\s*(?:cout|cerr|cin|clog)\b",
    "iomanip": r"\bsetw\b|\bsetprecision\b|\bsetfill\b|\bfixed\b"
               r"|\bscientific\b|\bhex\b",
    "chrono": r"\bchrono\b|\bduration\s*<|\bmilliseconds\b|\bnanoseconds\b"
              r"|\bmicroseconds\b|\bseconds\b",
    "cmath": r"\bstd\s*::\s*(?:abs|fabs|sqrt|pow|exp|log|log1p|expm1|floor"
             r"|ceil|round|lround|llround|hypot|fmod|isnan|isinf|isfinite"
             r"|sin|cos|tan|atan2?|asin|acos|erf|lgamma|tgamma|cbrt|trunc"
             r"|copysign|nextafter|fmax|fmin|nan)\b"
             r"|\bM_PI\b|\bNAN\b|\bINFINITY\b|\bHUGE_VAL\b",
    "cstring": r"\bmemcpy\b|\bmemset\b|\bmemmove\b|\bstrlen\b|\bstrcmp\b"
               r"|\bstrncmp\b|\bstrcpy\b|\bstrerror\b",
    "cstdio": r"\bprintf\b|\bfprintf\b|\bsnprintf\b|\bsscanf\b|\bfopen\b"
              r"|\bFILE\b|\bstderr\b|\bstdout\b|\bfgets\b|\bputs\b"
              r"|\bperror\b|\bremove\s*\(",
    "cassert": r"\bassert\s*\(",
}
_INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]*([<"])([^>"]+)[>"]',
                         re.MULTILINE)


def expected_guard(rel):
    body = rel[4:] if rel.startswith("src/") else rel
    return "FTOA_" + re.sub(r"[/.]", "_", body).upper() + "_"


def check_include_hygiene(sf, ctx):
    del ctx
    clean = sf.clean
    if sf.rel.endswith(".h"):
        guard = expected_guard(sf.rel)
        has_ifndef = re.search(
            r"^[ \t]*#[ \t]*ifndef[ \t]+" + re.escape(guard), clean,
            re.MULTILINE)
        has_define = re.search(
            r"^[ \t]*#[ \t]*define[ \t]+" + re.escape(guard), clean,
            re.MULTILINE)
        if not (has_ifndef and has_define):
            sf.report(1, "include-hygiene",
                      "missing or non-canonical include guard (expected "
                      "`#ifndef %s`)" % guard, by_pos=False)
    seen = {}
    for m in _INCLUDE_RE.finditer(clean):
        key = (m.group(1), m.group(2))
        if key in seen:
            sf.report(m.start(2), "include-hygiene",
                      "duplicate include of %s%s%s" %
                      (m.group(1), m.group(2),
                       ">" if m.group(1) == "<" else '"'))
        seen[key] = m.start(2)
    if sf.rel.startswith("src/"):
        for (kind, name), pos in seen.items():
            if kind != "<":
                continue
            pat = _STD_HEADER_TOKENS.get(name)
            if pat is None:
                continue
            if not re.search(pat, clean):
                sf.report(pos, "include-hygiene",
                          "unused include <%s> (no %s usage found; remove "
                          "it or annotate why it is needed)" % (name, name))


ALL_CHECKS = (
    check_no_unordered_iteration,
    check_seeded_rng_only,
    check_notify_under_lock,
    check_no_std_function_hot_path,
    check_include_hygiene,
)


# --------------------------------------------------------------------------
# Driver.

class LintContext:
    """Resolves a file's direct project includes so member/function names
    declared in headers (e.g. an unordered_map member in serve/x.h) are
    known when linting the .cc that iterates them."""

    def __init__(self, root):
        self.root = root
        self._cache = {}

    def load(self, path, rel):
        key = os.path.normpath(path)
        if key not in self._cache:
            try:
                with open(path, "r", encoding="utf-8",
                          errors="replace") as f:
                    text = f.read()
            except OSError:
                self._cache[key] = None
                return None
            self._cache[key] = SourceFile(path, rel, text)
        return self._cache[key]

    def resolve_includes(self, sf):
        deps = []
        for m in _INCLUDE_RE.finditer(sf.clean):
            if m.group(1) != '"':
                continue
            inc = m.group(2)
            candidates = [
                (os.path.join(self.root, "src", inc), "src/" + inc),
                (os.path.join(os.path.dirname(sf.path), inc),
                 os.path.dirname(sf.rel) + "/" + inc),
            ]
            for path, rel in candidates:
                if os.path.isfile(path):
                    dep = self.load(path, rel)
                    if dep is not None:
                        deps.append(dep)
                    break
        return deps


def lint_file(ctx, path, rel):
    sf = ctx.load(path, rel)
    if sf is None:
        return []
    # A cached header may have been loaded (as a dependency) before its
    # own lint pass; findings accumulate on the shared object, so run
    # checks only once per file.
    if getattr(sf, "_checked", False):
        return sf.findings
    sf._checked = True
    for check in ALL_CHECKS:
        check(sf, ctx)
    sf.findings.sort(key=lambda f: (f.line, f.check))
    return sf.findings


def iter_tree(root):
    for top in DEFAULT_SCAN_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in SKIP_DIR_NAMES)
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    path = os.path.join(dirpath, name)
                    yield path, os.path.relpath(path, root)


def run_selftest(root, fixture_dir):
    """Each fixture names its pretend tree path (`// lint-fixture:
    path=...`) and marks every line expected to fire (`// lint-expect:
    <check>`).  The corpus proves each check both fires on its seeded
    violation and stays quiet on clean/allowlisted code."""
    failures = 0
    total = 0
    checks_fired = set()
    for dirpath, dirnames, filenames in os.walk(fixture_dir):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTS):
                continue
            total += 1
            path = os.path.join(dirpath, name)
            ctx = LintContext(root)
            with open(path, "r", encoding="utf-8") as f:
                probe = SourceFile(path, name, f.read())
            rel = probe.fixture_path
            if rel is None:
                print("SELFTEST FAIL %s: no `// lint-fixture: path=...` "
                      "directive" % path)
                failures += 1
                continue
            # Sibling fixture headers resolve against the fixture dir.
            ctx._cache[os.path.normpath(path)] = SourceFile(
                path, rel, probe.text)
            findings = lint_file(ctx, path, rel)
            got = sorted((f.line, f.check) for f in findings)
            want = sorted(probe.expects)
            checks_fired.update(c for _, c in got)
            if got != want:
                failures += 1
                print("SELFTEST FAIL %s (as %s):" % (path, rel))
                for item in sorted(set(want) - set(got)):
                    print("  missing expected finding  line %d [%s]" % item)
                for item in sorted(set(got) - set(want)):
                    print("  unexpected finding        line %d [%s]" % item)
    missing_checks = set(CHECKS) - {"bad-annotation"} - checks_fired
    if missing_checks:
        failures += 1
        print("SELFTEST FAIL: no fixture exercises: %s" %
              ", ".join(sorted(missing_checks)))
    print("ftoa-lint selftest: %d fixtures, %d failures" % (total, failures))
    return 1 if failures else 0


def main(argv):
    ap = argparse.ArgumentParser(
        prog="ftoa_lint.py",
        description="project-specific determinism & concurrency lint")
    ap.add_argument("paths", nargs="*",
                    help="files to lint (default: whole tree)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--selftest", nargs="?", const="", metavar="DIR",
                    help="run the fixture corpus (default tests/lint)")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root) if args.root else os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", ".."))

    if args.list_checks:
        for name in sorted(CHECKS):
            print("%-26s %s" % (name, CHECKS[name]))
        return 0

    if args.selftest is not None:
        fixture_dir = args.selftest or os.path.join(root, "tests", "lint")
        if not os.path.isdir(fixture_dir):
            print("no fixture dir: %s" % fixture_dir, file=sys.stderr)
            return 2
        return run_selftest(root, fixture_dir)

    ctx = LintContext(root)
    findings = []
    if args.paths:
        for p in args.paths:
            path = os.path.abspath(p)
            findings.extend(lint_file(ctx, path,
                                      os.path.relpath(path, root)))
    else:
        for path, rel in iter_tree(root):
            findings.extend(lint_file(ctx, path, rel))
    for f in findings:
        print(f)
    if findings:
        print("ftoa-lint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
