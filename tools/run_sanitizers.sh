#!/usr/bin/env bash
# Sanitizer build-and-test, two phases in two dedicated build trees:
#
#  1. ASan + UBSan (-DFTOA_SANITIZE=ON): AddressSanitizer with leak
#     detection + UBSan with -fno-sanitize-recover=all. Memory leaks —
#     like the per-trial OnlineAlgorithm leak this guard was introduced
#     for — and UB abort the run loudly.
#  2. TSan (-DFTOA_TSAN=ON): ThreadSanitizer over the same suite — the
#     threaded shard actors, the background guide refresher, and the
#     serving soak are the races this phase exists for. The two
#     instrumentations cannot share a binary, hence the separate tree.
#
# Both phases run via the `sanitizer` ctest label the instrumented
# configurations attach to every test.
#
# Usage: tools/run_sanitizers.sh [asan-build-dir] [tsan-build-dir]
# FTOA_SKIP_TSAN=1 runs only the ASan/UBSan phase.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-asan}"
TSAN_BUILD="${2:-$ROOT/build-tsan}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTOA_SANITIZE=ON -DFTOA_BUILD_BENCHES=OFF \
      -DFTOA_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD" -j "$(nproc)"

echo "== ctest -L sanitizer (ASan leak checking on, UBSan fatal)"
ASAN_OPTIONS="detect_leaks=1:abort_on_error=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir "$BUILD" -L sanitizer --output-on-failure \
          -j "$(nproc)"
echo "ASan/UBSan suite passed"

if [[ "${FTOA_SKIP_TSAN:-0}" == "1" ]]; then
  echo "FTOA_SKIP_TSAN=1: skipping the TSan phase"
  exit 0
fi

cmake -B "$TSAN_BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTOA_TSAN=ON -DFTOA_BUILD_BENCHES=OFF \
      -DFTOA_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$TSAN_BUILD" -j "$(nproc)"

echo "== ctest -L sanitizer (TSan, races fatal)"
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
    ctest --test-dir "$TSAN_BUILD" -L sanitizer --output-on-failure \
          -j "$(nproc)"
echo "TSan suite passed"
