#!/usr/bin/env bash
# ASan + UBSan build-and-test: configures a dedicated build tree with
# -DFTOA_SANITIZE=ON (AddressSanitizer with leak detection + UBSan with
# -fno-sanitize-recover=all), builds the full test suite, and runs it via
# the `sanitizer` ctest label the sanitize configuration attaches to every
# test. Memory leaks — like the per-trial OnlineAlgorithm leak this guard
# was introduced for — and UB abort the run loudly.
#
# Usage: tools/run_sanitizers.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-asan}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTOA_SANITIZE=ON -DFTOA_BUILD_BENCHES=OFF \
      -DFTOA_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD" -j "$(nproc)"

echo "== ctest -L sanitizer (ASan leak checking on, UBSan fatal)"
ASAN_OPTIONS="detect_leaks=1:abort_on_error=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir "$BUILD" -L sanitizer --output-on-failure \
          -j "$(nproc)"
echo "sanitizer suite passed"
