#!/usr/bin/env bash
# Perf-trajectory smoke: builds Release, runs the flow microbench, the
# per-object online-algorithm microbench, the parallel/sharding
# microbench, the streaming-session microbench, the sharded-dispatcher
# bench, the candidate-retrieval bench, and the steady-state refresh/
# rotation bench, and records their JSON next to the repo root
# (BENCH_flow.json, BENCH_perobject.json, BENCH_parallel.json,
# BENCH_streaming.json, BENCH_sharded.json, BENCH_retrieval.json,
# BENCH_refresh.json) so future PRs can diff solver performance against
# this one (tools/check_bench_regression.py automates the diff).
#
# Usage: tools/run_bench_smoke.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-release}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
      -DFTOA_BUILD_TESTS=OFF >/dev/null
cmake --build "$BUILD" \
      --target bench_micro_flow bench_micro_perobject bench_parallel \
               bench_streaming bench_sharded bench_retrieval bench_refresh \
      -j "$(nproc)"

echo "== bench_micro_flow (Dijkstra+potentials vs SPFA, arenas, matcher)"
"$BUILD/bench_micro_flow" \
    --benchmark_min_time=0.05 \
    --benchmark_out="$ROOT/BENCH_flow.json" \
    --benchmark_out_format=json

echo "== bench_micro_perobject (per-arrival cost of the online algorithms)"
"$BUILD/bench_micro_perobject" \
    --benchmark_min_time=0.05 \
    --benchmark_filter='.*/1000$|.*/4000$' \
    --benchmark_out="$ROOT/BENCH_perobject.json" \
    --benchmark_out_format=json

echo "== bench_parallel (sharded guide solve + parallel MC trials)"
"$BUILD/bench_parallel" \
    --benchmark_min_time=0.05 \
    --benchmark_out="$ROOT/BENCH_parallel.json" \
    --benchmark_out_format=json

echo "== bench_streaming (session vs batch throughput, decision latency)"
"$BUILD/bench_streaming" \
    --benchmark_min_time=0.05 \
    --benchmark_out="$ROOT/BENCH_streaming.json" \
    --benchmark_out_format=json

echo "== bench_sharded (sharded dispatcher vs single session)"
"$BUILD/bench_sharded" \
    --benchmark_min_time=0.05 \
    --benchmark_out="$ROOT/BENCH_sharded.json" \
    --benchmark_out_format=json

echo "== bench_retrieval (engine vs linear candidate scan, approx guides)"
"$BUILD/bench_retrieval" \
    --benchmark_min_time=0.05 \
    --benchmark_out="$ROOT/BENCH_retrieval.json" \
    --benchmark_out_format=json

echo "== bench_refresh (warm guide refresh, incremental rotation, slice)"
"$BUILD/bench_refresh" \
    --benchmark_min_time=0.05 \
    --benchmark_out="$ROOT/BENCH_refresh.json" \
    --benchmark_out_format=json

# Headline number: min-cost flow speedup on the dense 2048x2048 instance.
python3 - "$ROOT/BENCH_flow.json" <<'EOF'
import json, sys
runs = {b["name"]: b["real_time"]
        for b in json.load(open(sys.argv[1]))["benchmarks"]}
dij = runs.get("BM_MinCostFlowDijkstra/2048/48")
spfa = runs.get("BM_MinCostFlowSpfa/2048/48")
if dij and spfa:
    print(f"min-cost flow 2048x2048: dijkstra {dij:.0f}ms, "
          f"spfa {spfa:.0f}ms, speedup {spfa / dij:.2f}x")
EOF

# The FlowEngine crossover table: per shape, each engine's time, the
# winner, and whether kAuto landed on (or near) it — the measurements
# ChooseFlowEngine's thresholds are calibrated from (docs/flow_engines.md).
python3 - "$ROOT/BENCH_flow.json" <<'EOF'
import json, sys
runs = {b["name"]: b["real_time"]
        for b in json.load(open(sys.argv[1]))["benchmarks"]}
shapes = [("dense", "512/16"), ("dense", "2048/48"),
          ("ties", "512/16"), ("ties", "2048/48"),
          ("heavy", "128/32"), ("heavy", "256/32")]
engines = ("ssp", "blocking", "cost_scaling")
for shape, size in shapes:
    times = {e: runs.get(f"BM_MinCostFlowEngine/{shape}_{e}/{size}")
             for e in engines}
    auto = runs.get(f"BM_MinCostFlowEngine/{shape}_auto/{size}")
    if None in times.values() or auto is None:
        continue
    winner = min(times, key=times.get)
    cells = ", ".join(f"{e} {times[e]:.1f}ms" for e in engines)
    print(f"engine sweep {shape:5s} {size:7s}: {cells} | winner {winner}, "
          f"auto {auto:.1f}ms ({auto / times[winner]:.2f}x of winner)")
EOF

# Headline numbers: serial vs parallel guide generation and trial
# throughput (ratios near 1.0 are expected on single-core machines).
python3 - "$ROOT/BENCH_parallel.json" <<'EOF'
import json, sys
runs = {b["name"]: b["real_time"]
        for b in json.load(open(sys.argv[1]))["benchmarks"]}
for base, label in [("BM_GuideCompressed", "guide (sharded)"),
                    ("BM_GuideCompressedMinCost", "guide min-cost"),
                    ("BM_CompetitiveTrials", "MC trials")]:
    serial = runs.get(f"{base}/1")
    parallel = runs.get(f"{base}/4")
    if serial and parallel:
        print(f"{label}: serial {serial:.1f}ms, 4 threads "
              f"{parallel:.1f}ms, speedup {serial / parallel:.2f}x")
EOF

# Headline numbers: streaming-session overhead vs batch replay, and the
# POLAR-OP per-decision latency percentiles a live dispatcher would report.
python3 - "$ROOT/BENCH_streaming.json" <<'EOF'
import json, sys
benches = json.load(open(sys.argv[1]))["benchmarks"]
runs = {b["name"]: b for b in benches}
batch = runs.get("BM_BatchRun/polar_op/16000")
stream = runs.get("BM_StreamRun/polar_op/16000")
if batch and stream:
    print(f"polar-op 16k+16k: batch {batch['real_time']:.2f}ms, "
          f"stream {stream['real_time']:.2f}ms "
          f"(overhead {stream['real_time'] / batch['real_time'] - 1:+.1%})")
lat = runs.get("BM_DecisionLatency/polar_op/16000")
if lat:
    print(f"polar-op decision latency: p50 {lat.get('p50_ns', 0):.0f}ns, "
          f"p99 {lat.get('p99_ns', 0):.0f}ns, "
          f"max {lat.get('max_ns', 0):.0f}ns")
EOF

# Headline numbers: sharded-dispatcher throughput (per-event vs batched
# queue handoff) and the utility cost of partitioning per router (matched
# + reconciled counters) vs the single-session baseline.
python3 - "$ROOT/BENCH_sharded.json" <<'EOF'
import json, sys
benches = json.load(open(sys.argv[1]))["benchmarks"]
runs = {b["name"]: b for b in benches}
single = runs.get("BM_SingleSession/polar_op_16k")
for shards in (1, 4, 8):
    sharded = runs.get(f"BM_ShardedGrid/polar_op_16k/{shards}")
    if single and sharded:
        print(f"polar-op 16k+16k, {shards} grid shard(s), batched handoff: "
              f"{sharded['real_time']:.2f}ms vs single "
              f"{single['real_time']:.2f}ms "
              f"(speedup {single['real_time'] / sharded['real_time']:.2f}x), "
              f"matched {sharded['matched']:.0f} vs "
              f"{single['matched']:.0f}, "
              f"p99 {sharded.get('p99_ns', 0):.0f}ns (1-in-8 sampled) vs "
              f"{single.get('p99_ns', 0):.0f}ns (exact)")
per_event = runs.get("BM_ShardedGridPerEvent/polar_op_16k/4")
threaded = runs.get("BM_ShardedGridThreaded/polar_op_16k/4")
if per_event and threaded:
    print(f"handoff mode, 4 grid shards x 4 threads: per-event "
          f"{per_event['real_time']:.2f}ms, batched "
          f"{threaded['real_time']:.2f}ms "
          f"(batching {per_event['real_time'] / threaded['real_time']:.2f}x)")
for router in ("Grid", "Hash", "Load"):
    plain = runs.get(f"BM_Sharded{router}/polar_op_16k/4")
    rec = runs.get(f"BM_Sharded{router}Reconciled/polar_op_16k/4")
    if plain and rec:
        print(f"router {router.lower():4s}, 4 shards: matched "
              f"{plain['matched']:.0f} -> {rec['matched']:.0f} reconciled "
              f"(+{rec['reconciled']:.0f} recovered, pass "
              f"{rec['real_time'] - plain['real_time']:.0f}ms)")
EOF

# Headline numbers: per-decision cost growth of the retrieval engine vs
# the linear candidate scan across the density sweep (the sublinearity
# claim), and the approx-guide time saving against its certified
# matched-utility loss bound.
python3 - "$ROOT/BENCH_retrieval.json" <<'EOF'
import json, sys
benches = json.load(open(sys.argv[1]))["benchmarks"]
runs = {b["name"]: b for b in benches}
sizes = (2000, 8000, 32000)
for mode in ("Engine", "Linear"):
    points = [runs.get(f"BM_Retrieval{mode}/simple_greedy/{n}")
              for n in sizes]
    if not all(points):
        continue
    # items_per_second counts decisions; invert for per-decision cost.
    us = [1e6 / p["items_per_second"] for p in points]
    growth = us[-1] / us[0]
    cells = (f", cells p50 {points[-1]['cells_p50']:.0f} "
             f"p99 {points[-1]['cells_p99']:.0f}"
             if "cells_p50" in points[-1] else "")
    print(f"retrieval {mode.lower():6s} simple-greedy: per-decision "
          f"{us[0]:.1f}us -> {us[-1]:.1f}us over {sizes[0]}->{sizes[-1]} "
          f"objects ({growth:.1f}x for {sizes[-1] // sizes[0]}x load)"
          f"{cells}")
exact = runs.get("BM_ApproxGuide/rate_100")
for pct in (50, 25):
    approx = runs.get(f"BM_ApproxGuide/rate_{pct}")
    if exact and approx:
        print(f"approx guide rate {pct / 100:.2f}: "
              f"{approx['real_time']:.1f}ms vs exact "
              f"{exact['real_time']:.1f}ms "
              f"({exact['real_time'] / approx['real_time']:.1f}x faster), "
              f"matched {approx['matched']:.0f} vs {exact['matched']:.0f} "
              f"(gap {approx['utility_gap']:.0f} <= certified bound "
              f"{approx['loss_bound']:.0f})")
EOF

# Headline numbers: the serving steady state — warm-refresh speedup on the
# sparse-delta sequence (the >= 2x acceptance bar), per-window rotation
# cost growth as the store grows (incremental must stay flat while the
# rebuild reference degrades), and shard p99 under background refresh for
# the dedicated vs shared-slice pool layouts.
python3 - "$ROOT/BENCH_refresh.json" <<'EOF'
import json, sys
benches = json.load(open(sys.argv[1]))["benchmarks"]
runs = {b["name"]: b for b in benches}
for clusters in (16, 64):
    cold = runs.get(f"BM_GuideRefresh/cold/{clusters}")
    warm = runs.get(f"BM_GuideRefresh/warm/{clusters}")
    if cold and warm:
        print(f"warm refresh, {clusters} components, 1-2 dirty per step: "
              f"cold {cold['real_time']:.2f}ms, warm "
              f"{warm['real_time']:.2f}ms "
              f"(speedup {cold['real_time'] / warm['real_time']:.2f}x, "
              f"{warm['reused']:.0f}/{warm['components']:.0f} components "
              f"reused)")
for mode in ("rebuild", "incremental"):
    points = [runs.get(f"BM_Rotation/{mode}/{w}") for w in (96, 864)]
    if all(points):
        wps = [p["items_per_second"] for p in points]
        print(f"rotation {mode:11s}: {wps[0]:.0f} -> {wps[1]:.0f} windows/s "
              f"as the store grows {points[0]['store']:.0f} -> "
              f"{points[-1]['store']:.0f} objects "
              f"({wps[0] / wps[1]:.2f}x slowdown)")
for layout in ("dedicated", "shared_slice"):
    run = runs.get(f"BM_Interference/{layout}/24")
    if run:
        print(f"interference {layout:12s}: {run['real_time']:.0f}ms for 24 "
              f"windows, shard p99 {run['shard_p99_ms']:.3f}ms, "
              f"{run['publishes']:.0f} background publishes "
              f"({run['refresh_ms']:.0f}ms solve)")
EOF
