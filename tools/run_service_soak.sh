#!/usr/bin/env bash
# The real serving soak: builds the test suite and runs exactly the `soak`
# ctest label (the time-boxed ServiceSoakTest aggregate) with a full time
# box — the default ctest run executes the same test as a short smoke.
#
# The time box is FTOA_SOAK_SECONDS (default 60). To soak the sanitizer
# builds instead, point the build dir at a tree configured with
# -DFTOA_SANITIZE=ON or -DFTOA_TSAN=ON (tools/run_sanitizers.sh creates
# build-asan/ and build-tsan/) — the soak acceptance bar is a clean run
# under both.
#
# Usage: tools/run_service_soak.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
SOAK_SECONDS="${FTOA_SOAK_SECONDS:-60}"

cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" --target ftoa_tests -j "$(nproc)"

echo "== ctest -L soak (FTOA_SOAK_SECONDS=${SOAK_SECONDS})"
FTOA_SOAK_SECONDS="$SOAK_SECONDS" \
    ctest --test-dir "$BUILD" -L soak --output-on-failure
echo "service soak passed"
