#!/usr/bin/env bash
# clang-format wrapper over the repo's .clang-format profile.
#
#   tools/run_format.sh           reformat the tree in place
#   tools/run_format.sh --check   fail (exit 1) if anything would change
#                                 (the mode tools/run_gates.sh runs)
#
# Like the clang-tidy phase of run_static_analysis.sh, this degrades
# loudly when clang-format is not installed (the reference container is
# gcc-only): check mode reports SKIPPED and exits 0 so the chained gate
# stays runnable; fix mode refuses, since it can do nothing.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${1:-fix}"

if ! command -v clang-format >/dev/null 2>&1; then
  if [[ "$MODE" == "--check" ]]; then
    echo "format check: SKIPPED (clang-format not installed on this host)"
    exit 0
  fi
  echo "clang-format is not installed; cannot reformat" >&2
  exit 1
fi

mapfile -t FILES < <(cd "$ROOT" && ls \
  src/*/*.cc src/*/*.h tests/*/*.cc tests/test_util.h \
  bench/*.cc bench/*.h tools/ftoa_cli.cc examples/*.cpp)

cd "$ROOT"
if [[ "$MODE" == "--check" ]]; then
  clang-format --dry-run --Werror "${FILES[@]}"
  echo "format check: clean"
else
  clang-format -i "${FILES[@]}"
  echo "formatted ${#FILES[@]} files"
fi
