#!/usr/bin/env bash
# Stress gate: builds the test suite and runs the randomized property/
# stress suites (ctest label `stress` — the *Stress* gtest suites: sharded
# dispatcher shard-session equivalence, per-shard dynamic-matching vs
# rebuild reference) at a much higher iteration count than the default
# ctest run. The iteration knob is the FTOA_STRESS_ITERS environment
# variable, read by tests/test_util.h's StressIterations().
#
# Usage: [FTOA_STRESS_ITERS=N] tools/run_stress.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
ITERS="${FTOA_STRESS_ITERS:-40}"

cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" --target ftoa_tests -j "$(nproc)"

echo "== ctest -L stress (FTOA_STRESS_ITERS=$ITERS)"
FTOA_STRESS_ITERS="$ITERS" \
    ctest --test-dir "$BUILD" -L stress --output-on-failure
echo "stress suites passed at $ITERS iterations"
