#!/usr/bin/env bash
# Static-analysis gate, two phases, mirroring tools/run_sanitizers.sh:
#
#  1. clang-tidy over the curated .clang-tidy profile (bugprone-*,
#     concurrency-*, performance-*, selected modernize) against the
#     compilation database CMake exports by default
#     (build/compile_commands.json). WarningsAsErrors: '*' — any finding
#     fails the phase. If clang-tidy is not installed (this repo's
#     reference container ships a gcc-only toolchain), the phase is
#     SKIPPED loudly, not silently passed; ftoa-lint below still gates.
#  2. ftoa-lint (tools/lint/ftoa_lint.py): the project's own invariant
#     classes as named checks — no-unordered-iteration, seeded-rng-only,
#     notify-under-lock, no-std-function-hot-path, include-hygiene.
#     Zero findings outside `// ftoa-lint: ok(<check>): <reason>`
#     allowlists required. Pure Python, no clang needed, always runs.
#
# Usage: tools/run_static_analysis.sh [build-dir]
# FTOA_TIDY_JOBS=N parallelizes the clang-tidy phase (default: nproc).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

# -- phase 1: clang-tidy ----------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD/compile_commands.json" ]]; then
    cmake -B "$BUILD" -S "$ROOT" >/dev/null
  fi
  echo "== clang-tidy ($(clang-tidy --version | head -n1))"
  mapfile -t FILES < <(cd "$ROOT" && ls src/*/*.cc tools/ftoa_cli.cc)
  JOBS="${FTOA_TIDY_JOBS:-$(nproc)}"
  printf '%s\n' "${FILES[@]}" |
    (cd "$ROOT" && xargs -P "$JOBS" -n 8 \
       clang-tidy -p "$BUILD" --quiet)
  echo "clang-tidy: zero findings"
else
  echo "== clang-tidy: SKIPPED (binary not installed on this host)"
  echo "   The .clang-tidy profile still gates on hosts that have it;"
  echo "   install clang-tidy >= 14 to run this phase locally."
fi

# -- phase 2: ftoa-lint -----------------------------------------------------
echo "== ftoa-lint (tools/lint/ftoa_lint.py)"
python3 "$ROOT/tools/lint/ftoa_lint.py" --root "$ROOT" --selftest
python3 "$ROOT/tools/lint/ftoa_lint.py" --root "$ROOT"
echo "ftoa-lint: zero findings"

echo "static analysis passed"
