// ftoa — command-line front end for the library, the entry point a
// downstream user scripts against.
//
//   ftoa generate synthetic --workers=5000 --tasks=5000 --out=day.csv
//   ftoa generate city --city=beijing --day=20 --scale=0.1 --out=day.csv
//   ftoa run --instance=day.csv --algorithm=polar-op [--strict] [--stream]
//   ftoa run --instance=day.csv --algorithm=polar-op --shards=4
//   ftoa serve --city=beijing --scale=0.05 --windows=36
//        ... --faults=flash@8-9:factor=4 --slo-p99-ms=5
//   ftoa algos
//   ftoa inspect --instance=day.csv
//
// `run` executes one algorithm over a saved instance and prints matching
// size, wall time, peak heap, and (with --strict) the physical
// re-verification breakdown; --stream drives the algorithm's streaming
// session arrival by arrival and reports per-decision latency percentiles;
// --shards=K routes arrivals through the sharded dispatcher (K per-shard
// sessions, merged assignment — see docs/sharded_dispatch.md) with
// --shard-threads (default auto: min(K, cores)), --router=NAME (the registered shard
// routers: grid | hash | load), --handoff-batch=N (events staged per
// batched queue handoff; 1 = per-event), and --reconcile (post-merge
// boundary reconciliation recovering cross-shard matches).
// --flow-engine=NAME fixes the min-cost-flow solver core used for guide
// generation (flow/flow_engine.h registry; auto picks by instance shape).
// `serve` runs the long-running serving harness (serve/service_harness)
// over the looped city trace: rolling eviction, live guide refresh with
// hot-swap and a degradation ladder, fault injection (--faults, the
// serve/fault_injector spec grammar), and SLO-driven admission control —
// printing one metrics line per window plus lifetime totals. Unknown
// serve flags are rejected listing the valid set.
// `algos` lists every algorithm the registry knows. The guide for
// POLAR-family algorithms is derived from the instance's own realized
// counts unless --prediction points at a second instance file whose counts
// act as the forecast.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm_registry.h"
#include "core/guide_generator.h"
#include "flow/flow_engine.h"
#include "gen/city_trace.h"
#include "gen/synthetic.h"
#include "model/io.h"
#include "prediction/registry.h"
#include "retrieval/mode.h"
#include "serve/service_harness.h"
#include "sim/runner.h"
#include "sim/sharded_dispatcher.h"
#include "util/string_util.h"

namespace ftoa {
namespace {

/// Simple --key=value argument map.
class ArgMap {
 public:
  ArgMap(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (!StartsWith(arg, "--")) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const auto parsed = ParseDouble(it->second);
    if (!parsed.ok()) {
      std::fprintf(stderr, "invalid number for --%s\n", key.c_str());
      std::exit(2);
    }
    return *parsed;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const auto parsed = ParseInt(it->second);
    if (!parsed.ok()) {
      std::fprintf(stderr, "invalid integer for --%s\n", key.c_str());
      std::exit(2);
    }
    return *parsed;
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::vector<std::string> Keys() const {
    std::vector<std::string> keys;
    for (const auto& entry : values_) keys.push_back(entry.first);
    return keys;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ftoa generate synthetic [--workers=N] [--tasks=N] [--grid=N]\n"
      "       [--slots=N] [--dr=F] [--dw=F] [--seed=N] --out=FILE\n"
      "  ftoa generate city [--city=beijing|hangzhou] [--day=N]\n"
      "       [--scale=F] --out=FILE\n"
      "  ftoa run --instance=FILE --algorithm=NAME [--prediction=FILE]\n"
      "       [--strict] [--stream] [--dr=F] [--dw=F]\n"
      "       [--shards=K] [--shard-threads=N] [--router=%s]\n"
      "       [--handoff-batch=N] [--reconcile]\n"
      "       [--retrieval=%s] [--approx-guide[=RATE]]\n"
      "       [--flow-engine=%s]\n"
      "       (NAME: %s)\n"
      "  ftoa serve [--city=beijing|hangzhou] [--scale=F] [--windows=N]\n"
      "       [--algorithm=NAME] [--shards=K] [--shard-threads=N]\n"
      "       [--windows-per-segment=N] [--refresh-period=N]\n"
      "       [--background-refresh] [--slo-p99-ms=F]\n"
      "       [--max-queue-depth=N] [--max-live-objects=N]\n"
      "       [--max-guide-age=N] [--faults=SPEC] [--fault-seed=N]\n"
      "       [--loop-days=N] [--no-evict] [--reconcile]\n"
      "       [--retrieval=%s (default: auto by workload)]\n"
      "       [--refresh-mode=%s] [--refresh-predictor=%s]\n"
      "       [--rotation=incremental|rebuild] [--analytical-slice=N]\n"
      "  ftoa algos\n"
      "  ftoa inspect --instance=FILE\n",
      Join(AllShardRouterNames(), "|").c_str(),
      Join(AllRetrievalModeNames(), "|").c_str(),
      Join(AllFlowEngineNames(), "|").c_str(),
      Join(AllAlgorithmNames(), " | ").c_str(),
      Join(AllRetrievalModeNames(), "|").c_str(),
      Join(AllGuideRefreshModeNames(), "|").c_str(),
      Join(AllPredictorNames(), "|").c_str());
  return 2;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string kind = argv[2];
  const ArgMap args(argc, argv, 3);
  const std::string out = args.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }

  Result<Instance> instance = Status::Unimplemented("unknown kind");
  if (kind == "synthetic") {
    SyntheticConfig config;
    config.num_workers = static_cast<int>(args.GetInt("workers", 20000));
    config.num_tasks = static_cast<int>(args.GetInt("tasks", 20000));
    config.grid_x = static_cast<int>(args.GetInt("grid", 50));
    config.grid_y = config.grid_x;
    config.num_slots = static_cast<int>(args.GetInt("slots", 48));
    config.task_duration = args.GetDouble("dr", 2.0);
    config.worker_duration = args.GetDouble("dw", 3.0);
    config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
    instance = GenerateSyntheticInstance(config);
  } else if (kind == "city") {
    CityProfile profile = args.Get("city", "beijing") == "hangzhou"
                              ? HangzhouProfile()
                              : BeijingProfile();
    const double scale = args.GetDouble("scale", 0.1);
    profile.workers_per_day *= scale;
    profile.tasks_per_day *= scale;
    const CityTraceGenerator generator(profile);
    instance = generator.GenerateInstanceForDay(
        static_cast<int>(args.GetInt("day", profile.history_days - 3)));
  } else {
    return Usage();
  }
  if (!instance.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  const Status saved = SaveInstanceCsv(*instance, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu workers and %zu tasks to %s\n",
              instance->num_workers(), instance->num_tasks(), out.c_str());
  return 0;
}

int CmdRun(int argc, char** argv) {
  const ArgMap args(argc, argv, 2);
  const std::string path = args.Get("instance");
  const std::string algorithm_name = args.Get("algorithm", "polar-op");
  if (path.empty()) {
    std::fprintf(stderr, "run: --instance is required\n");
    return 2;
  }
  auto instance = LoadInstanceCsv(path);
  if (!instance.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  // Guide-based algorithms need a prediction.
  AlgorithmDeps deps;
  {
    const auto retrieval = ParseRetrievalMode(args.Get("retrieval", "linear"));
    if (!retrieval.ok()) {
      // NotFound carries the valid-name set (AllRetrievalModeNames).
      std::fprintf(stderr, "run: %s\n",
                   retrieval.status().ToString().c_str());
      return 2;
    }
    deps.retrieval = *retrieval;
  }
  if (AlgorithmNeedsGuide(algorithm_name)) {
    PredictionMatrix prediction = PredictionMatrix::FromInstance(*instance);
    const std::string prediction_path = args.Get("prediction");
    if (!prediction_path.empty()) {
      auto forecast_instance = LoadInstanceCsv(prediction_path);
      if (!forecast_instance.ok()) {
        std::fprintf(stderr, "prediction load failed: %s\n",
                     forecast_instance.status().ToString().c_str());
        return 1;
      }
      prediction = PredictionMatrix::FromInstance(*forecast_instance);
    }
    GuideOptions options;
    options.engine = GuideOptions::Engine::kAuto;
    options.worker_duration =
        args.GetDouble("dw", instance->MaxWorkerDuration());
    options.task_duration =
        args.GetDouble("dr", instance->MaxTaskDuration());
    {
      const auto flow_engine =
          ParseFlowEngine(args.Get("flow-engine", "auto"));
      if (!flow_engine.ok()) {
        // NotFound carries the valid-name set (AllFlowEngineNames).
        std::fprintf(stderr, "run: %s\n",
                     flow_engine.status().ToString().c_str());
        return 2;
      }
      options.flow_engine = *flow_engine;
    }
    if (args.Has("approx-guide")) {
      // Bare --approx-guide takes the default half-rate sample; an
      // explicit =RATE must be numeric (Generate validates the (0, 1]
      // range and the engine restriction).
      options.approx_sample_rate =
          args.Get("approx-guide") == "true"
              ? 0.5
              : args.GetDouble("approx-guide", 0.5);
    }
    const GuideGenerator generator(instance->velocity(), options);
    auto generated = generator.Generate(prediction);
    if (!generated.ok()) {
      std::fprintf(stderr, "guide generation failed: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    if (options.approx_sample_rate < 1.0) {
      const ApproxGuideReport& report = generator.last_approx_report();
      std::printf("approx guide   %lld of %lld type pairs kept "
                  "(rate %.3f); matched-utility loss <= %lld\n",
                  static_cast<long long>(report.sampled_pairs),
                  static_cast<long long>(report.feasible_pairs),
                  options.approx_sample_rate,
                  static_cast<long long>(report.utility_loss_bound));
    }
    deps.guide = std::make_shared<const OfflineGuide>(
        std::move(generated).value());
  }

  auto algorithm = CreateAlgorithm(algorithm_name, deps);
  if (!algorithm.ok()) {
    // NotFound carries the valid-name set (AllAlgorithmNames).
    std::fprintf(stderr, "%s\n", algorithm.status().ToString().c_str());
    return 2;
  }

  RunnerOptions options;
  options.strict_verification = args.Has("strict");
  options.streaming = args.Has("stream");
  options.num_shards = static_cast<int>(args.GetInt("shards", 0));
  // Resolve 0 = auto exactly like the dispatcher will, so the summary
  // below reports the thread count actually used.
  options.shard_threads = ShardedDispatcher::ResolveNumThreads(
      static_cast<int>(args.GetInt("shard-threads", 0)),
      options.num_shards);
  const std::string router = args.Get("router", "grid");
  const auto router_kind = ParseShardRouterKind(router);
  if (!router_kind.ok()) {
    // NotFound carries the valid-name set (AllShardRouterNames).
    std::fprintf(stderr, "run: %s\n",
                 router_kind.status().ToString().c_str());
    return 2;
  }
  options.shard_router = *router_kind;
  options.shard_handoff_batch =
      static_cast<int>(args.GetInt("handoff-batch", 0));
  options.shard_reconcile = args.Has("reconcile");
  const auto metrics = RunAlgorithm(algorithm->get(), *instance, options);
  if (!metrics.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }
  std::printf("algorithm      %s\n", metrics->algorithm.c_str());
  std::printf("matching size  %lld  (of %zu workers / %zu tasks)\n",
              static_cast<long long>(metrics->matching_size),
              instance->num_workers(), instance->num_tasks());
  std::printf("time           %.4f s\n", metrics->elapsed_seconds);
  std::printf("peak heap      %s\n",
              FormatBytes(metrics->peak_memory_bytes).c_str());
  if (options.strict_verification) {
    std::printf("strict check   %lld feasible / %lld violations; %lld "
                "workers relocated\n",
                static_cast<long long>(metrics->strict_feasible_pairs),
                static_cast<long long>(metrics->strict_violations),
                static_cast<long long>(metrics->dispatched_workers));
  }
  if (options.num_shards >= 1) {
    std::printf("shards         %d (%s router, %d threads, handoff batch "
                "%s)\n",
                options.num_shards, router.c_str(), options.shard_threads,
                options.shard_handoff_batch > 0
                    ? std::to_string(options.shard_handoff_batch).c_str()
                    : "default");
    if (options.shard_reconcile) {
      std::printf("reconciled     %lld cross-shard pairs recovered\n",
                  static_cast<long long>(metrics->reconciled_pairs));
    }
  }
  if (options.streaming || options.num_shards >= 1) {
    std::printf("busy time      %.4f s in session decisions\n",
                metrics->busy_seconds);
    std::printf("decisions      %lld (streaming session)\n",
                static_cast<long long>(metrics->decisions));
    std::printf("latency        p50 %.0f ns / p99 %.0f ns / max %.0f ns "
                "per decision\n",
                metrics->decision_latency_p50_ns,
                metrics->decision_latency_p99_ns,
                metrics->decision_latency_max_ns);
  }
  return 0;
}

int CmdServe(int argc, char** argv) {
  const ArgMap args(argc, argv, 2);
  // Serve is the long-running mode: a typo'd SLO flag silently ignored
  // would change production behavior, so unknown flags are hard errors.
  static const std::vector<std::string> kServeFlags = {
      "city",       "scale",          "loop-days",
      "windows",    "algorithm",      "shards",
      "shard-threads", "windows-per-segment", "refresh-period",
      "background-refresh", "slo-p99-ms", "max-queue-depth",
      "max-live-objects", "max-guide-age", "faults",
      "fault-seed", "no-evict",       "reconcile",
      "retrieval",  "refresh-mode",   "refresh-predictor",
      "rotation",   "analytical-slice"};
  for (const std::string& key : args.Keys()) {
    if (std::find(kServeFlags.begin(), kServeFlags.end(), key) ==
        kServeFlags.end()) {
      std::string valid;
      for (const std::string& flag : kServeFlags) {
        if (!valid.empty()) valid += ", ";
        valid += "--" + flag;
      }
      std::fprintf(stderr, "serve: unknown flag --%s (valid: %s)\n",
                   key.c_str(), valid.c_str());
      return 2;
    }
  }

  CityProfile profile = args.Get("city", "beijing") == "hangzhou"
                            ? HangzhouProfile()
                            : BeijingProfile();
  LoopedTraceSource::Options trace;
  trace.scale = args.GetDouble("scale", 0.05);
  trace.loop_days = static_cast<int>(args.GetInt("loop-days", 0));

  ServiceOptions options;
  options.algorithm = args.Get("algorithm", "polar-op");
  options.num_shards = static_cast<int>(args.GetInt("shards", 1));
  options.shard_threads =
      static_cast<int>(args.GetInt("shard-threads", 1));
  options.windows_per_segment =
      static_cast<int>(args.GetInt("windows-per-segment", 0));
  options.refresh_period_windows =
      static_cast<int>(args.GetInt("refresh-period", 0));
  options.background_refresh = args.Has("background-refresh");
  options.slo_p99_ms = args.GetDouble("slo-p99-ms", 0.0);
  options.max_queue_depth = args.GetInt("max-queue-depth", 0);
  options.max_live_objects = args.GetInt("max-live-objects", 0);
  options.max_guide_age_windows = args.GetInt("max-guide-age", 0);
  options.faults = args.Get("faults");
  options.fault_seed = static_cast<uint64_t>(args.GetInt("fault-seed", 1));
  options.evict_expired = !args.Has("no-evict");
  options.reconcile = args.Has("reconcile");
  {
    const auto mode =
        ParseGuideRefreshMode(args.Get("refresh-mode", "cold"));
    if (!mode.ok()) {
      std::fprintf(stderr, "serve: %s\n", mode.status().ToString().c_str());
      return 2;
    }
    options.guide.refresh_mode = *mode;
  }
  options.refresh_predictor = args.Get("refresh-predictor");
  {
    const std::string rotation = args.Get("rotation", "incremental");
    if (rotation != "incremental" && rotation != "rebuild") {
      std::fprintf(stderr,
                   "serve: unknown --rotation=%s (valid: incremental, "
                   "rebuild)\n",
                   rotation.c_str());
      return 2;
    }
    options.incremental_rotation = rotation == "incremental";
  }
  options.analytical_slice =
      static_cast<int>(args.GetInt("analytical-slice", 0));
  std::string retrieval_note;
  if (args.Has("retrieval")) {
    const auto retrieval = ParseRetrievalMode(args.Get("retrieval"));
    if (!retrieval.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   retrieval.status().ToString().c_str());
      return 2;
    }
    options.retrieval = *retrieval;
  } else {
    // No --retrieval: pick the backend from the measured workload. By
    // Little's law the steady-state live population is sum(durations) /
    // day_horizon over one source day; the engine's expanding-ring search
    // beats the linear scans once the live set is dense enough per grid
    // cell (crossover fitted from BENCH_retrieval.json: on its 30x30
    // grid linear wins at 2000 live objects, the engine from ~4000, so
    // ~4.5 live objects per cell).
    constexpr double kEngineCrossoverPerCell = 4.5;
    const LoopedTraceSource probe(profile, trace);
    auto day0 = probe.ArrivalsForDay(0);
    if (!day0.ok()) {
      std::fprintf(stderr, "serve: %s\n", day0.status().ToString().c_str());
      return 2;
    }
    double duration_sum = 0.0;
    for (const StreamArrival& arrival : *day0) {
      duration_sum += arrival.duration;
    }
    const SpacetimeSpec day_spec = probe.DaySpacetime();
    const double cells = static_cast<double>(day_spec.grid().cells_x()) *
                         static_cast<double>(day_spec.grid().cells_y());
    const double live_per_cell =
        duration_sum / std::max(1.0, probe.day_horizon()) /
        std::max(1.0, cells);
    options.retrieval = live_per_cell >= kEngineCrossoverPerCell
                            ? RetrievalMode::kEngine
                            : RetrievalMode::kLinear;
    char note[160];
    std::snprintf(note, sizeof(note),
                  "auto: %s (est %.1f live objects/cell, engine crossover "
                  "%.1f; see BENCH_retrieval.json)",
                  RetrievalModeName(options.retrieval).c_str(),
                  live_per_cell, kEngineCrossoverPerCell);
    retrieval_note = note;
  }

  auto harness = ServiceHarness::Create(profile, trace, options);
  if (!harness.ok()) {
    // NotFound/InvalidArgument carry the valid algorithm / fault sets.
    std::fprintf(stderr, "serve: %s\n",
                 harness.status().ToString().c_str());
    return 2;
  }
  if (!retrieval_note.empty()) {
    std::printf("retrieval      %s\n", retrieval_note.c_str());
  }
  const int64_t windows =
      args.GetInt("windows", 3 * profile.slots_per_day);
  const Status run = (*harness)->RunWindows(windows);
  if (!run.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", run.ToString().c_str());
    return 1;
  }

  // rq/exam/c50/c99: retrieval-engine queries, candidates examined, and
  // per-query cells-visited percentiles of the segment rotated at that
  // window (all zero under --retrieval=linear and between rotations).
  // rfr ms/WC/reuse: solve wall time of the refresh cycle whose publish
  // landed at that window, warm (W) or cold (C), and reused/total
  // components ("-" between publishes).
  std::printf(
      "window day  offered admitted shed drop match  p99 ms   live "
      "evict epoch age      rq    exam c50  c99   rfr ms WC   reuse "
      "flags\n");
  for (const WindowMetrics& w : (*harness)->windows()) {
    const bool published = w.refresh_ms > 0.0;
    char reuse[24] = "      -";
    if (published) {
      std::snprintf(reuse, sizeof(reuse), "%3lld/%-3lld",
                    static_cast<long long>(w.refresh_components_reused),
                    static_cast<long long>(w.refresh_components_total));
    }
    std::printf(
        "%6lld %3lld  %7lld %8lld %4lld %4lld %5lld %7.3f %6lld %5lld "
        "%5lld %3lld %7lld %7lld %3lld %4lld %8.2f %2s %7s %s%s\n",
        static_cast<long long>(w.window), static_cast<long long>(w.day),
        static_cast<long long>(w.offered),
        static_cast<long long>(w.admitted), static_cast<long long>(w.shed),
        static_cast<long long>(w.dropped_arrivals),
        static_cast<long long>(w.matched), w.p99_ms,
        static_cast<long long>(w.live_objects),
        static_cast<long long>(w.evicted),
        static_cast<long long>(w.guide_epoch),
        static_cast<long long>(w.guide_age_windows),
        static_cast<long long>(w.retrieval_queries),
        static_cast<long long>(w.candidates_examined),
        static_cast<long long>(w.cells_visited_p50),
        static_cast<long long>(w.cells_visited_p99), w.refresh_ms,
        published ? (w.refresh_warm ? "W" : "C") : "-", reuse,
        w.degraded_greedy ? "D" : "", w.overloaded ? "O" : "");
  }
  const ServiceTotals& totals = (*harness)->totals();
  std::printf("served         %lld windows (%lld segments)\n",
              static_cast<long long>(totals.windows),
              static_cast<long long>(totals.segments));
  std::printf("admitted       %lld of %lld offered (%lld shed, %lld "
              "dropped in handoff)\n",
              static_cast<long long>(totals.admitted),
              static_cast<long long>(totals.offered),
              static_cast<long long>(totals.shed),
              static_cast<long long>(totals.dropped_arrivals));
  std::printf("matched        %lld pairs\n",
              static_cast<long long>(totals.matched));
  std::printf("evicted        %lld expired (store peak %lld, now %lld; "
              "%lld live)\n",
              static_cast<long long>(totals.evictions),
              static_cast<long long>(totals.store_peak),
              static_cast<long long>((*harness)->store_size()),
              static_cast<long long>((*harness)->live_objects()));
  const GuideRefresher::Stats& refresher = (*harness)->refresher_stats();
  std::printf("guide          epoch %lld, %lld publishes, %lld failed "
              "cycles, %lld hot-swaps adopted\n",
              static_cast<long long>((*harness)->guide_epoch()),
              static_cast<long long>(refresher.publishes),
              static_cast<long long>(refresher.failed_cycles),
              static_cast<long long>(totals.guide_swaps));
  std::printf("refresh        %lld warm / %lld cold publishes, %lld of "
              "%lld components reused, %.2f ms total solve\n",
              static_cast<long long>(totals.warm_refreshes),
              static_cast<long long>(totals.cold_refreshes),
              static_cast<long long>(totals.refresh_components_reused),
              static_cast<long long>(totals.refresh_components_reused +
                                     totals.refresh_components_solved),
              totals.refresh_ms);
  return 0;
}

int CmdAlgos() {
  // One canonical name per line plus the display name benches print.
  for (const std::string& name : AllAlgorithmNames()) {
    std::printf("%-14s %s\n", name.c_str(),
                AlgorithmDisplayName(name).c_str());
  }
  return 0;
}

int CmdInspect(int argc, char** argv) {
  const ArgMap args(argc, argv, 2);
  const std::string path = args.Get("instance");
  if (path.empty()) {
    std::fprintf(stderr, "inspect: --instance is required\n");
    return 2;
  }
  auto instance = LoadInstanceCsv(path);
  if (!instance.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  const GridSpec& grid = instance->spacetime().grid();
  const SlotSpec& slots = instance->spacetime().slots();
  std::printf("region     %.1f x %.1f, %d x %d cells\n", grid.width(),
              grid.height(), grid.cells_x(), grid.cells_y());
  std::printf("horizon    %.1f over %d slots\n", slots.horizon(),
              slots.num_slots());
  std::printf("velocity   %.2f\n", instance->velocity());
  std::printf("workers    %zu (max Dw %.2f)\n", instance->num_workers(),
              instance->MaxWorkerDuration());
  std::printf("tasks      %zu (max Dr %.2f)\n", instance->num_tasks(),
              instance->MaxTaskDuration());
  const auto [workers, tasks] = instance->CountsPerType();
  int nonempty = 0;
  int peak = 0;
  for (size_t t = 0; t < workers.size(); ++t) {
    const int total = workers[t] + tasks[t];
    if (total > 0) ++nonempty;
    peak = std::max(peak, total);
  }
  std::printf("types      %d of %d occupied, busiest holds %d objects\n",
              nonempty, instance->spacetime().num_types(), peak);
  return 0;
}

}  // namespace
}  // namespace ftoa

int main(int argc, char** argv) {
  if (argc < 2) return ftoa::Usage();
  const std::string command = argv[1];
  if (command == "generate") return ftoa::CmdGenerate(argc, argv);
  if (command == "run") return ftoa::CmdRun(argc, argv);
  if (command == "serve") return ftoa::CmdServe(argc, argv);
  if (command == "algos") return ftoa::CmdAlgos();
  if (command == "inspect") return ftoa::CmdInspect(argc, argv);
  return ftoa::Usage();
}
