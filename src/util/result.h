// Result<T>: value-or-Status, the companion of Status for functions that
// produce a value on success.

#ifndef FTOA_UTIL_RESULT_H_
#define FTOA_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace ftoa {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent. Accessing the value of an errored Result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Constructs from an error status (implicit, enables `return status;`).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is set.
};

}  // namespace ftoa

/// Propagates the error of a Result expression, or assigns its value.
/// Usage: FTOA_ASSIGN_OR_RETURN(auto x, ComputeX());
/// Each expansion gets a unique temporary so the macro can be used several
/// times in one scope.
#define FTOA_ASSIGN_OR_RETURN(decl, expr) \
  FTOA_ASSIGN_OR_RETURN_IMPL_(            \
      FTOA_RESULT_CONCAT_(_ftoa_result_tmp, __LINE__), decl, expr)

#define FTOA_RESULT_CONCAT_INNER_(a, b) a##b
#define FTOA_RESULT_CONCAT_(a, b) FTOA_RESULT_CONCAT_INNER_(a, b)
#define FTOA_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  decl = std::move(tmp).value()

#endif  // FTOA_UTIL_RESULT_H_
