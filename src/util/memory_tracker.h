// Heap instrumentation backing the paper's "Memory(MB)" measurements.
//
// A translation unit in this library replaces the global operator new/delete
// with counting wrappers (glibc's malloc_usable_size supplies sizes, so no
// per-allocation header is required). Counters are process-wide relaxed
// atomics; the overhead is a few nanoseconds per allocation, negligible next
// to the allocations themselves.
//
// Typical use:
//   MemoryScope scope;                 // resets the peak baseline
//   RunAlgorithm();
//   uint64_t bytes = scope.PeakDelta();  // peak heap growth during the run

#ifndef FTOA_UTIL_MEMORY_TRACKER_H_
#define FTOA_UTIL_MEMORY_TRACKER_H_

#include <cstdint>

namespace ftoa {

/// Process-wide heap counters maintained by the replaced operator new/delete.
struct MemoryStats {
  uint64_t live_bytes = 0;   ///< Currently allocated, not yet freed.
  uint64_t peak_bytes = 0;   ///< High-water mark since last ResetPeak().
  uint64_t total_allocs = 0; ///< Cumulative allocation count.
  uint64_t total_frees = 0;  ///< Cumulative deallocation count.
};

namespace memory_tracker {

/// Snapshot of the current counters.
MemoryStats Snapshot();

/// Resets the peak high-water mark to the current live size.
void ResetPeak();

/// Currently live heap bytes (cheap accessor).
uint64_t LiveBytes();

/// Peak heap bytes since the last ResetPeak().
uint64_t PeakBytes();

}  // namespace memory_tracker

/// RAII scope that measures the peak heap growth within its lifetime.
class MemoryScope {
 public:
  MemoryScope() {
    memory_tracker::ResetPeak();
    baseline_ = memory_tracker::LiveBytes();
  }

  /// Peak bytes allocated above the live size at construction.
  uint64_t PeakDelta() const {
    const uint64_t peak = memory_tracker::PeakBytes();
    return peak > baseline_ ? peak - baseline_ : 0;
  }

  /// Live bytes allocated above the live size at construction (may be 0).
  uint64_t LiveDelta() const {
    const uint64_t live = memory_tracker::LiveBytes();
    return live > baseline_ ? live - baseline_ : 0;
  }

 private:
  uint64_t baseline_ = 0;
};

}  // namespace ftoa

#endif  // FTOA_UTIL_MEMORY_TRACKER_H_
