#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ftoa {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> tokens;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      tokens.emplace_back(input.substr(start));
      break;
    }
    tokens.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return tokens;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string joined;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) joined.append(separator);
    joined.append(parts[i]);
  }
  return joined;
}

std::string Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return std::string(input.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

Result<int64_t> ParseInt(std::string_view text) {
  const std::string s = Trim(text);
  if (s.empty()) return Status::InvalidArgument("ParseInt: empty input");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("ParseInt: out of range");
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("ParseInt: trailing characters in '" + s +
                                   "'");
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  const std::string s = Trim(text);
  if (s.empty()) return Status::InvalidArgument("ParseDouble: empty input");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("ParseDouble: out of range");
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("ParseDouble: trailing characters in '" +
                                   s + "'");
  }
  return value;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f %s", value, kUnits[unit]);
  return buffer;
}

}  // namespace ftoa
