#include "util/rng.h"

#include <cmath>

namespace ftoa {

namespace {

inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
  // xoshiro must not be seeded with all zeros; SplitMix64 of any seed cannot
  // produce four zero outputs in a row, so no further check is needed.
  has_cached_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  const auto span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is bounded away from zero to keep log() finite.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double product = NextDouble();
    while (product > limit) {
      ++k;
      product *= NextDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction is adequate for the
  // workload-synthesis use cases (mean >= 30).
  const double sample = NextGaussian(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<uint64_t>(sample + 0.5);
}

double Rng::NextExponential(double lambda) {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the parent state with the stream id through SplitMix64 so child
  // streams are independent of each other and of the parent's future output.
  uint64_t mix = s_[0] ^ Rotl(s_[1], 13) ^ Rotl(s_[2], 29) ^ Rotl(s_[3], 47);
  mix ^= 0x6a09e667f3bcc909ULL + stream_id * 0x3c6ef372fe94f82bULL;
  return Rng(SplitMix64(mix));
}

}  // namespace ftoa
