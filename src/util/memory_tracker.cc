#include "util/memory_tracker.h"

#include <malloc.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace ftoa {
namespace memory_tracker {
namespace {

std::atomic<uint64_t> g_live_bytes{0};
std::atomic<uint64_t> g_peak_bytes{0};
std::atomic<uint64_t> g_total_allocs{0};
std::atomic<uint64_t> g_total_frees{0};

inline void RecordAlloc(void* ptr) {
  if (ptr == nullptr) return;
  const uint64_t size = malloc_usable_size(ptr);
  const uint64_t live =
      g_live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  g_total_allocs.fetch_add(1, std::memory_order_relaxed);
  uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

inline void RecordFree(void* ptr) {
  if (ptr == nullptr) return;
  const uint64_t size = malloc_usable_size(ptr);
  g_live_bytes.fetch_sub(size, std::memory_order_relaxed);
  g_total_frees.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MemoryStats Snapshot() {
  MemoryStats stats;
  stats.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  stats.peak_bytes = g_peak_bytes.load(std::memory_order_relaxed);
  stats.total_allocs = g_total_allocs.load(std::memory_order_relaxed);
  stats.total_frees = g_total_frees.load(std::memory_order_relaxed);
  return stats;
}

void ResetPeak() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

uint64_t LiveBytes() { return g_live_bytes.load(std::memory_order_relaxed); }

uint64_t PeakBytes() { return g_peak_bytes.load(std::memory_order_relaxed); }

}  // namespace memory_tracker
}  // namespace ftoa

// ---------------------------------------------------------------------------
// Global operator new/delete replacements. These must live in exactly one
// translation unit linked into each binary; src/util is linked everywhere.
// ---------------------------------------------------------------------------

namespace {

void* TrackedAlloc(std::size_t size) {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  ftoa::memory_tracker::RecordAlloc(ptr);
  return ptr;
}

void* TrackedAlignedAlloc(std::size_t size, std::size_t alignment) {
  void* ptr = nullptr;
  if (posix_memalign(&ptr, alignment, size == 0 ? alignment : size) != 0) {
    ptr = nullptr;
  }
  ftoa::memory_tracker::RecordAlloc(ptr);
  return ptr;
}

void TrackedFree(void* ptr) noexcept {
  ftoa::memory_tracker::RecordFree(ptr);
  std::free(ptr);
}

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr = TrackedAlignedAlloc(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void operator delete(void* ptr) noexcept { TrackedFree(ptr); }
void operator delete[](void* ptr) noexcept { TrackedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { TrackedFree(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { TrackedFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { TrackedFree(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  TrackedFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  TrackedFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  TrackedFree(ptr);
}
