// Fixed-width console table rendering for the benchmark harnesses: each
// bench binary prints the rows/series of the paper table or figure it
// reproduces in an aligned, grep-friendly layout.

#ifndef FTOA_UTIL_TABLE_PRINTER_H_
#define FTOA_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace ftoa {

/// Collects rows of string cells and renders them with column alignment.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; missing cells render empty, extra cells widen the
  /// table.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string FormatDouble(double value, int precision = 2);

  /// Convenience: groups of thousands are not separated (plain int).
  static std::string FormatInt(int64_t value);

  /// Renders the header, a separator, and all rows to `os`.
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftoa

#endif  // FTOA_UTIL_TABLE_PRINTER_H_
