// Small string helpers shared by config parsing and the bench harnesses.

#ifndef FTOA_UTIL_STRING_UTIL_H_
#define FTOA_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace ftoa {

/// Splits `input` on `delimiter`; keeps empty tokens.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins `parts` with `separator` ("a, b, c" for separator ", ").
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Strips ASCII whitespace from both ends.
std::string Trim(std::string_view input);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII.
std::string ToLower(std::string_view input);

/// Strict integer parse of the whole string.
Result<int64_t> ParseInt(std::string_view text);

/// Strict floating-point parse of the whole string.
Result<double> ParseDouble(std::string_view text);

/// Formats `bytes` as a human-readable size ("12.3 MB").
std::string FormatBytes(uint64_t bytes);

}  // namespace ftoa

#endif  // FTOA_UTIL_STRING_UTIL_H_
