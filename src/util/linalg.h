// Small dense linear algebra used by the prediction library: a row-major
// Matrix, Gaussian elimination with partial pivoting, Cholesky, and
// ridge-regularized ordinary least squares. The matrices here are tiny
// (tens of columns), so simple O(n^3) routines are the right tool.

#ifndef FTOA_UTIL_LINALG_H_
#define FTOA_UTIL_LINALG_H_

#include <cstddef>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace ftoa {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Identity matrix of order n.
  static Matrix Identity(size_t n);

  /// Matrix product; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Transpose.
  Matrix Transposed() const;

  /// Matrix-vector product; requires v.size() == cols().
  std::vector<double> Apply(const std::vector<double>& v) const;

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Fails with InvalidArgument on shape mismatch and FailedPrecondition when A
/// is (numerically) singular.
Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b);

/// Solves the ridge-regularized least-squares problem
///   min_x ||A x - b||^2 + lambda ||x||^2
/// via the normal equations (A^T A + lambda I) x = A^T b.
/// lambda = 0 gives plain OLS; a small lambda keeps the system well-posed
/// when features are collinear (the lag features of the predictors often
/// are). Requires a.rows() == b.size().
Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b,
                                              double lambda = 0.0);

/// Dot product; requires equal sizes.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace ftoa

#endif  // FTOA_UTIL_LINALG_H_
