// Wall-clock stopwatch used by the benchmark harnesses and the simulator's
// running-time metric (the paper's "Time(secs)" axis).

#ifndef FTOA_UTIL_STOPWATCH_H_
#define FTOA_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace ftoa {

/// Monotonic stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  /// Starts running immediately.
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }

  /// Elapsed time in milliseconds.
  int64_t ElapsedMillis() const { return ElapsedNanos() / 1000000; }

  /// Elapsed time in seconds as a double.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ftoa

#endif  // FTOA_UTIL_STOPWATCH_H_
