// A fixed-size worker-thread pool for sharded batch solves.
//
// The pool owns `num_threads` long-lived workers draining a single FIFO task
// queue. `Submit` returns a std::future for the task's result; an exception
// thrown by the task is captured into the future (std::packaged_task
// semantics) and rethrown at `future.get()`, so parallel shards fail loudly
// at the join point instead of crashing a worker thread.
//
// Intended use in this codebase: guide generation shards its per-component
// flow networks across the pool (core/guide_generator), competitive-ratio
// estimation shards its Monte-Carlo trials (sim/competitive), and the bench
// harness shards sweep-point preparation (bench/harness). All of those
// partition work into one contiguous chunk per thread and give each chunk
// its own solver arena, so tasks never share mutable state and determinism
// is preserved by merging results in a fixed order after the join.

#ifndef FTOA_UTIL_THREAD_POOL_H_
#define FTOA_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/result.h"

namespace ftoa {

/// Cooperative cancellation signal shared between a task and its submitter.
/// Copies alias one flag; RequestCancel is sticky. A task that may outlive
/// its caller's patience polls IsCancelled at its natural checkpoints and
/// returns (or throws) promptly — the pool never kills a thread.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool IsCancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Handle of a task submitted with ThreadPool::SubmitWithDeadline. The task
/// runs on the pool like any other; the handle adds a wall-clock deadline
/// and the cancellation token the task was given.
///
/// The contract that makes timeouts loss-free: a timed-out task is
/// *cancelled*, never abandoned. Await() (and a Poll() that observed the
/// deadline pass) requests cancellation and still joins the task, so an
/// exception the task throws — before or after it noticed the cancellation
/// — is surfaced in the returned status instead of dying silently with a
/// discarded future.
template <typename R>
class DeadlineTask {
 public:
  DeadlineTask() = default;
  /// The future carries a Result, not a bare value: an exception the task
  /// throws is converted to a Status *on the worker thread* (see
  /// SubmitWithDeadline), so no live exception object — whose message
  /// buffer the worker's shared-state teardown would free concurrently
  /// with the caller reading what() — ever crosses threads.
  DeadlineTask(std::future<Result<R>> future, CancellationToken token,
               std::chrono::steady_clock::time_point deadline)
      : future_(std::move(future)),
        token_(std::move(token)),
        deadline_(deadline) {}

  const CancellationToken& token() const { return token_; }
  bool valid() const { return future_.valid(); }

  /// True once the task has finished (normally or by exception). Past the
  /// deadline a still-running task is asked to cancel, but Poll never
  /// blocks — keep polling (or Await) to collect the result.
  bool Poll() {
    if (!future_.valid()) return false;
    if (future_.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline_) {
      timed_out_ = true;
      token_.RequestCancel();
    }
    return false;
  }

  /// Blocks until the deadline, then — if the task is still running —
  /// requests cancellation and keeps waiting for it to acknowledge (tasks
  /// honoring the token exit promptly; one that cannot check simply runs to
  /// completion). Returns the task's value when it finished in time,
  /// DeadlineExceeded when it did not, and Internal carrying the exception
  /// message when it threw — in every case the task has fully finished when
  /// Await returns, so no outcome is ever lost. Call at most once.
  Result<R> Await() {
    // The clock check matters: wait_until on an already-ready future
    // returns ready even when the deadline has long passed, and a result
    // only observed after the deadline must be reported late.
    const bool in_time =
        !timed_out_ &&
        future_.wait_until(deadline_) == std::future_status::ready &&
        std::chrono::steady_clock::now() <= deadline_;
    if (!in_time) {
      timed_out_ = true;
      token_.RequestCancel();
      future_.wait();
    }
    Result<R> result = future_.get();
    if (!result.ok()) {
      return Status(result.status().code(),
                    std::string(in_time ? "task failed: "
                                        : "task failed after deadline: ")
                        .append(result.status().message()));
    }
    if (!in_time) {
      return Status::DeadlineExceeded(
          "task missed its deadline (completed after cancellation)");
    }
    return result;
  }

 private:
  std::future<Result<R>> future_;
  CancellationToken token_;
  std::chrono::steady_clock::time_point deadline_;
  bool timed_out_ = false;  ///< Sticky: a Poll observed the deadline pass.
};

/// Fixed set of worker threads draining a FIFO task queue. Thread-safe:
/// any thread may Submit. Destruction drains the queue (all submitted
/// tasks run) before joining the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every queued task, then joins the workers.
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` surface at future.get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

  /// Enqueues `fn(token)` with a wall-clock completion deadline measured
  /// from now. `fn` receives a CancellationToken it should poll at its
  /// checkpoints; the returned handle cancels the token when the deadline
  /// passes and — unlike a discarded future — always joins the task, so its
  /// exception or result is surfaced by DeadlineTask::Await/Poll instead of
  /// being lost (the guide-refresh timeout of serve/guide_refresher).
  template <typename F>
  auto SubmitWithDeadline(F&& fn, std::chrono::nanoseconds deadline)
      -> DeadlineTask<
          std::invoke_result_t<std::decay_t<F>, const CancellationToken&>> {
    using R = std::invoke_result_t<std::decay_t<F>, const CancellationToken&>;
    CancellationToken token;
    // The exception-to-Status conversion happens here, on the worker: the
    // Status's message is a fresh string, and the future's value handoff
    // orders it before the caller's read. Rethrowing the exception object
    // itself in Await would share its (CoW) message buffer across threads
    // and race the worker's shared-state teardown.
    auto task = std::make_shared<std::packaged_task<Result<R>()>>(
        [fn = std::forward<F>(fn), token]() mutable -> Result<R> {
          try {
            return fn(token);
          } catch (const std::exception& e) {
            return Status::Internal(e.what());
          } catch (...) {
            return Status::Internal("unknown exception");
          }
        });
    std::future<Result<R>> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return DeadlineTask<R>(std::move(result), std::move(token),
                           std::chrono::steady_clock::now() + deadline);
  }

 private:
  friend class PoolSlice;

  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::function<void()>> queue_;  // FIFO via next_ cursor.
  size_t next_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// A bounded slice of a shared ThreadPool — token-bucket lending. At most
/// `max_concurrent` tasks submitted through the slice occupy pool workers
/// at any moment; excess submissions queue inside the slice (FIFO) and are
/// handed to the pool only as slots free up. The pool itself never learns
/// about queued slice tasks, so tasks submitted directly to the pool (shard
/// actors) compete with at most `max_concurrent` slice tasks for workers —
/// this is how the serving harness stops a background analytical solve from
/// starving its latency-critical shards (serve/guide_refresher).
///
/// Thread-safe: any thread may Submit. The slice borrows the pool and MUST
/// be destroyed before it; destruction blocks until every task submitted
/// through the slice (queued or running) has finished.
///
/// Deadlock note: a slice task that blocks waiting for *another* slice task
/// to start can deadlock once the bucket is exhausted (the classic nested-
/// fork-join hazard). Slice users submit independent leaf tasks only — the
/// guide generator's chunk solves never wait on each other.
class PoolSlice {
 public:
  /// `pool` is borrowed. `max_concurrent` is clamped to [1, pool size].
  PoolSlice(ThreadPool* pool, int max_concurrent);

  PoolSlice(const PoolSlice&) = delete;
  PoolSlice& operator=(const PoolSlice&) = delete;

  /// Blocks until all tasks submitted through the slice have finished.
  ~PoolSlice();

  int max_concurrent() const { return max_concurrent_; }

  /// Tasks currently occupying pool workers plus tasks queued in the slice
  /// (instrumentation for tests; racy by nature, exact under quiescence).
  int64_t InFlight() const;

  /// Mirrors ThreadPool::Submit, but bounded by the slice's token bucket.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    EnqueueBounded([task]() { (*task)(); });
    return result;
  }

  /// Mirrors ThreadPool::SubmitWithDeadline (same exception-to-Status
  /// contract), bounded by the token bucket. The deadline is wall-clock
  /// from *submission*, so time spent queued in the slice counts against
  /// it — a starved slice surfaces as DeadlineExceeded, not as silence.
  template <typename F>
  auto SubmitWithDeadline(F&& fn, std::chrono::nanoseconds deadline)
      -> DeadlineTask<
          std::invoke_result_t<std::decay_t<F>, const CancellationToken&>> {
    using R = std::invoke_result_t<std::decay_t<F>, const CancellationToken&>;
    CancellationToken token;
    auto task = std::make_shared<std::packaged_task<Result<R>()>>(
        [fn = std::forward<F>(fn), token]() mutable -> Result<R> {
          try {
            return fn(token);
          } catch (const std::exception& e) {
            return Status::Internal(e.what());
          } catch (...) {
            return Status::Internal("unknown exception");
          }
        });
    std::future<Result<R>> result = task->get_future();
    EnqueueBounded([task]() { (*task)(); });
    return DeadlineTask<R>(std::move(result), std::move(token),
                           std::chrono::steady_clock::now() + deadline);
  }

 private:
  /// Runs `fn` on the pool now if a token is free, else queues it.
  void EnqueueBounded(std::function<void()> fn);
  /// Hands `fn` to the pool wrapped so completion advances the queue.
  void Dispatch(std::function<void()> fn);
  /// Called on the worker after a slice task finishes: starts the next
  /// queued task on the freed token, or returns the token.
  void OnTaskDone();

  ThreadPool* pool_;
  int max_concurrent_;

  mutable std::mutex mutex_;
  std::condition_variable drained_;  ///< Signaled when in_flight_ hits 0.
  std::vector<std::function<void()>> pending_;  // FIFO via next_ cursor.
  size_t next_ = 0;
  int in_flight_ = 0;  ///< Tasks currently holding a token.
};

}  // namespace ftoa

#endif  // FTOA_UTIL_THREAD_POOL_H_
