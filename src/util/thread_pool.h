// A fixed-size worker-thread pool for sharded batch solves.
//
// The pool owns `num_threads` long-lived workers draining a single FIFO task
// queue. `Submit` returns a std::future for the task's result; an exception
// thrown by the task is captured into the future (std::packaged_task
// semantics) and rethrown at `future.get()`, so parallel shards fail loudly
// at the join point instead of crashing a worker thread.
//
// Intended use in this codebase: guide generation shards its per-component
// flow networks across the pool (core/guide_generator), competitive-ratio
// estimation shards its Monte-Carlo trials (sim/competitive), and the bench
// harness shards sweep-point preparation (bench/harness). All of those
// partition work into one contiguous chunk per thread and give each chunk
// its own solver arena, so tasks never share mutable state and determinism
// is preserved by merging results in a fixed order after the join.

#ifndef FTOA_UTIL_THREAD_POOL_H_
#define FTOA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ftoa {

/// Fixed set of worker threads draining a FIFO task queue. Thread-safe:
/// any thread may Submit. Destruction drains the queue (all submitted
/// tasks run) before joining the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every queued task, then joins the workers.
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` surface at future.get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::function<void()>> queue_;  // FIFO via next_ cursor.
  size_t next_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ftoa

#endif  // FTOA_UTIL_THREAD_POOL_H_
