// Status: lightweight error-handling type used across the ftoa library.
//
// Library code does not throw exceptions across public API boundaries
// (RocksDB/Arrow idiom); fallible operations return Status or Result<T>.

#ifndef FTOA_UTIL_STATUS_H_
#define FTOA_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ftoa {

/// Error category for a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
  kDeadlineExceeded = 9,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
inline const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeToString(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }
  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    return os << s.ToString();
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace ftoa

/// Propagates a non-OK Status to the caller (Arrow's ARROW_RETURN_NOT_OK).
#define FTOA_RETURN_NOT_OK(expr)                   \
  do {                                             \
    ::ftoa::Status _status = (expr);               \
    if (!_status.ok()) return _status;             \
  } while (false)

#endif  // FTOA_UTIL_STATUS_H_
