#include "util/csv.h"

#include <cstdio>
#include <fstream>

namespace ftoa {

CsvWriter::CsvWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
  }
}

Status CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (file_ == nullptr) {
    return Status::IoError("CsvWriter: file is not open");
  }
  auto* f = static_cast<std::FILE*>(file_);
  for (size_t i = 0; i < cells.size(); ++i) {
    const std::string escaped = CsvEscape(cells[i]);
    if (i > 0 && std::fputc(',', f) == EOF) {
      return Status::IoError("CsvWriter: write failed");
    }
    if (std::fputs(escaped.c_str(), f) == EOF) {
      return Status::IoError("CsvWriter: write failed");
    }
  }
  if (std::fputc('\n', f) == EOF) {
    return Status::IoError("CsvWriter: write failed");
  }
  return Status::OK();
}

Status CsvWriter::Close() {
  if (file_ == nullptr) {
    return Status::IoError("CsvWriter: file is not open");
  }
  const int rc = std::fclose(static_cast<std::FILE*>(file_));
  file_ = nullptr;
  if (rc != 0) return Status::IoError("CsvWriter: close failed");
  return Status::OK();
}

std::string CsvEscape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> CsvParseLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  cells.push_back(std::move(current));
  return cells;
}

Result<std::vector<std::vector<std::string>>> CsvReadFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("CsvReadFile: cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(CsvParseLine(line));
  }
  return rows;
}

}  // namespace ftoa
