// Deterministic pseudo-random number generation for workload synthesis and
// algorithm tie-breaking.
//
// We implement xoshiro256++ (Blackman & Vigna) rather than relying on
// std::mt19937 so that streams are reproducible across standard libraries and
// cheap to split per-component: every generator in the repository is seeded
// explicitly and benchmark runs are bit-identical across machines.

#ifndef FTOA_UTIL_RNG_H_
#define FTOA_UTIL_RNG_H_

#include <cstdint>
#include <limits>

namespace ftoa {

/// xoshiro256++ engine. Satisfies the C++ UniformRandomBitGenerator
/// requirements so it can also be used with <random> distributions.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the engine via SplitMix64 expansion of `seed` (never all-zero).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the engine deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64 random bits.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Standard normal via Box-Muller with caching of the second variate.
  double NextGaussian();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double NextGaussian(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// PTRS-style transformed rejection for large means).
  uint64_t NextPoisson(double mean);

  /// Exponential with the given rate lambda > 0.
  double NextExponential(double lambda);

  /// Forks an independent child stream; deterministic in (parent state,
  /// stream_id). Used to give each component its own sequence.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace ftoa

#endif  // FTOA_UTIL_RNG_H_
