#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace ftoa {
namespace logging {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace logging
}  // namespace ftoa
