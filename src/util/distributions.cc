#include "util/distributions.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ftoa {

TruncatedNormal::TruncatedNormal(double mean, double stddev, double lo,
                                 double hi)
    : mean_(mean), stddev_(stddev), lo_(lo), hi_(hi) {
  assert(lo < hi);
  assert(stddev >= 0.0);
}

double TruncatedNormal::Sample(Rng& rng) const {
  if (stddev_ <= 0.0) return std::clamp(mean_, lo_, hi_);
  // Rejection sampling; falls back to clamping if the acceptance region is
  // in the far tail (keeps sampling O(1) amortized for all parameters the
  // generators use).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = rng.NextGaussian(mean_, stddev_);
    if (v >= lo_ && v <= hi_) return v;
  }
  return std::clamp(rng.NextGaussian(mean_, stddev_), lo_, hi_);
}

TruncatedNormal2d::TruncatedNormal2d(double mean_x, double mean_y,
                                     double stddev_x, double stddev_y,
                                     double width, double height)
    : x_(mean_x, stddev_x, 0.0, width), y_(mean_y, stddev_y, 0.0, height) {}

void TruncatedNormal2d::Sample(Rng& rng, double* x, double* y) const {
  *x = x_.Sample(rng);
  *y = y_.Sample(rng);
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  const size_t n = weights.empty() ? 1 : weights.size();
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);

  normalized_.assign(n, 0.0);
  if (total <= 0.0) {
    // Degenerate input: uniform.
    std::fill(normalized_.begin(), normalized_.end(),
              1.0 / static_cast<double>(n));
  } else {
    for (size_t i = 0; i < weights.size(); ++i) {
      normalized_[i] = std::max(0.0, weights[i]) / total;
    }
  }

  // Walker's alias method construction.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<size_t> small;
  std::vector<size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;  // Numerical leftovers.
}

size_t DiscreteDistribution::Sample(Rng& rng) const {
  const size_t column = rng.NextBounded(prob_.size());
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

SampleStats ComputeSampleStats(const std::vector<double>& values) {
  SampleStats stats;
  stats.count = values.size();
  if (values.empty()) return stats;
  stats.min = std::numeric_limits<double>::infinity();
  stats.max = -std::numeric_limits<double>::infinity();
  double mean = 0.0;
  double m2 = 0.0;
  size_t n = 0;
  for (double v : values) {
    ++n;
    const double delta = v - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (v - mean);
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = mean;
  stats.variance = m2 / static_cast<double>(n);
  return stats;
}

}  // namespace ftoa
