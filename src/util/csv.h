// Minimal CSV read/write support, used to export benchmark series for
// external plotting and to persist generated workloads.

#ifndef FTOA_UTIL_CSV_H_
#define FTOA_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace ftoa {

/// Writes rows of cells as RFC-4180-ish CSV (quotes cells containing comma,
/// quote, or newline).
class CsvWriter {
 public:
  /// Opens `path` for writing; check Ok() before use.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Whether the file was opened successfully.
  bool Ok() const { return file_ != nullptr; }

  /// Appends one row.
  Status WriteRow(const std::vector<std::string>& cells);

  /// Flushes and closes; further writes fail.
  Status Close();

 private:
  void* file_ = nullptr;  // FILE*, kept opaque in the header.
};

/// Escapes one CSV cell (exposed for tests).
std::string CsvEscape(const std::string& cell);

/// Parses one CSV line into cells, honoring quoted cells with embedded
/// commas and doubled quotes.
std::vector<std::string> CsvParseLine(const std::string& line);

/// Reads an entire CSV file into rows of cells.
Result<std::vector<std::vector<std::string>>> CsvReadFile(
    const std::string& path);

}  // namespace ftoa

#endif  // FTOA_UTIL_CSV_H_
