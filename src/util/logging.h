// Minimal leveled logging with a process-wide level switch. Benchmarks run
// with kWarning to keep stdout clean for the harness tables; tests may dial
// up to kDebug.

#ifndef FTOA_UTIL_LOGGING_H_
#define FTOA_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ftoa {

/// Severity levels, ordered.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

namespace logging {

/// Sets the minimum severity that is emitted.
void SetLevel(LogLevel level);

/// Current minimum severity.
LogLevel GetLevel();

/// Emits `message` at `level` to stderr if enabled.
void Emit(LogLevel level, const std::string& message);

}  // namespace logging

/// Stream-style log statement helper; builds the message only when enabled.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {
    enabled_ = level >= logging::GetLevel();
  }
  ~LogMessage() {
    if (enabled_) logging::Emit(level_, stream_.str());
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace ftoa

#define FTOA_LOG_DEBUG ::ftoa::LogMessage(::ftoa::LogLevel::kDebug)
#define FTOA_LOG_INFO ::ftoa::LogMessage(::ftoa::LogLevel::kInfo)
#define FTOA_LOG_WARNING ::ftoa::LogMessage(::ftoa::LogLevel::kWarning)
#define FTOA_LOG_ERROR ::ftoa::LogMessage(::ftoa::LogLevel::kError)

#endif  // FTOA_UTIL_LOGGING_H_
