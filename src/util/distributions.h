// Sampling helpers for the paper's workload models (Table 4): truncated
// normal temporal distributions and truncated multivariate (axis-aligned)
// normal spatial distributions, plus discrete distributions over
// (slot, area) types used by the i.i.d. arrival model of Definition 5.

#ifndef FTOA_UTIL_DISTRIBUTIONS_H_
#define FTOA_UTIL_DISTRIBUTIONS_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace ftoa {

/// 1-D normal distribution truncated (by resampling) to [lo, hi].
/// Used for the temporal distribution of arrivals: the paper draws start
/// times from N(mu, sigma^2) over the experiment horizon.
class TruncatedNormal {
 public:
  /// Requires lo < hi and stddev >= 0. A zero stddev degenerates to the
  /// (clamped) mean.
  TruncatedNormal(double mean, double stddev, double lo, double hi);

  double Sample(Rng& rng) const;

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

 private:
  double mean_;
  double stddev_;
  double lo_;
  double hi_;
};

/// Axis-aligned bivariate normal truncated to the rectangle
/// [0, width) x [0, height). The paper's spatial model uses a diagonal
/// covariance (no x-y correlation), Section 6.1.
class TruncatedNormal2d {
 public:
  TruncatedNormal2d(double mean_x, double mean_y, double stddev_x,
                    double stddev_y, double width, double height);

  /// Samples a point; writes the coordinates through the out-parameters
  /// (Google style: pointers for outputs).
  void Sample(Rng& rng, double* x, double* y) const;

 private:
  TruncatedNormal x_;
  TruncatedNormal y_;
};

/// Discrete distribution over {0, ..., n-1} built from non-negative weights.
/// Sampling is O(1) via Walker's alias method; construction is O(n).
/// This is the sampler behind the i.i.d. input model: Pr[i][j] =
/// a_ij / sum(a) over (slot, area) types.
class DiscreteDistribution {
 public:
  /// Builds from weights; all-zero weights yield a uniform distribution.
  explicit DiscreteDistribution(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

  /// Normalized probability of index i.
  double probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;     // Alias-method acceptance probabilities.
  std::vector<size_t> alias_;    // Alias targets.
  std::vector<double> normalized_;
};

/// Summary statistics over a sample (used by tests and predictor metrics).
struct SampleStats {
  double mean = 0.0;
  double variance = 0.0;  // Population variance.
  double min = 0.0;
  double max = 0.0;
  size_t count = 0;
};

/// Computes mean/variance/min/max of `values` in one pass (Welford).
SampleStats ComputeSampleStats(const std::vector<double>& values);

}  // namespace ftoa

#endif  // FTOA_UTIL_DISTRIBUTIONS_H_
