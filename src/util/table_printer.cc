#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace ftoa {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TablePrinter::FormatInt(int64_t value) {
  return std::to_string(value);
}

void TablePrinter::Print(std::ostream& os) const {
  size_t columns = headers_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());

  std::vector<size_t> widths(columns, 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "  ";
      os << cell;
      for (size_t pad = cell.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ftoa
