#include "util/linalg.h"

#include <cassert>
#include <cmath>

namespace ftoa {

Matrix Matrix::Identity(size_t n) {
  Matrix id(n, n);
  for (size_t i = 0; i < n; ++i) id(i, i) = 1.0;
  return id;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

std::vector<double> Matrix::Apply(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinearSystem: matrix must be square");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLinearSystem: size mismatch");
  }
  const size_t n = a.rows();
  // Augmented working copy.
  Matrix work(n, n + 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) work(i, j) = a(i, j);
    work(i, n) = b[i];
  }

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::fabs(work(col, col));
    for (size_t row = col + 1; row < n; ++row) {
      const double candidate = std::fabs(work(row, col));
      if (candidate > best) {
        best = candidate;
        pivot = row;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition(
          "SolveLinearSystem: matrix is singular");
    }
    if (pivot != col) {
      for (size_t j = col; j <= n; ++j) std::swap(work(col, j), work(pivot, j));
    }
    const double inv = 1.0 / work(col, col);
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = work(row, col) * inv;
      if (factor == 0.0) continue;
      for (size_t j = col; j <= n; ++j) work(row, j) -= factor * work(col, j);
    }
  }

  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = work(i, n);
    for (size_t j = i + 1; j < n; ++j) sum -= work(i, j) * x[j];
    x[i] = sum / work(i, i);
  }
  return x;
}

Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b,
                                              double lambda) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLeastSquares: size mismatch");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("SolveLeastSquares: negative lambda");
  }
  const Matrix at = a.Transposed();
  Matrix normal = at.Multiply(a);
  for (size_t i = 0; i < normal.rows(); ++i) normal(i, i) += lambda;
  const std::vector<double> rhs = at.Apply(b);
  return SolveLinearSystem(normal, rhs);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace ftoa
