#include "util/thread_pool.h"

#include <algorithm>

namespace ftoa {

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Notify while still holding the lock: this is the destructor, so an
    // unlocked notify would be the exact cv-destruction race TSan caught
    // in the shard drain path (a worker could observe stopping_, return,
    // and let join + member destruction run before notify_all touches
    // the cv's internals).
    wake_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Compact the drained prefix once it dominates the queue, so a
    // long-lived pool does not grow its task vector without bound.
    if (next_ > 64 && next_ > queue_.size() / 2) {
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<ptrdiff_t>(next_));
      next_ = 0;
    }
    queue_.push_back(std::move(fn));
  }
  // The cv cannot be destroyed concurrently with Enqueue (the destructor
  // joins the workers, and calling Enqueue while destroying the pool is a
  // caller bug by contract); notifying unlocked spares the woken worker an
  // immediate block on mutex_.
  // ftoa-lint: ok(notify-under-lock): pool outlives Enqueue by contract; unlocked notify avoids wakeup contention
  wake_.notify_one();
}

PoolSlice::PoolSlice(ThreadPool* pool, int max_concurrent)
    : pool_(pool),
      max_concurrent_(
          std::max(1, std::min(max_concurrent, pool->num_threads()))) {}

PoolSlice::~PoolSlice() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this]() { return in_flight_ == 0; });
}

int64_t PoolSlice::InFlight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_ + static_cast<int64_t>(pending_.size() - next_);
}

void PoolSlice::EnqueueBounded(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (in_flight_ >= max_concurrent_) {
      if (next_ > 64 && next_ > pending_.size() / 2) {
        pending_.erase(pending_.begin(),
                       pending_.begin() + static_cast<ptrdiff_t>(next_));
        next_ = 0;
      }
      pending_.push_back(std::move(fn));
      return;
    }
    ++in_flight_;  // Token acquired; released in OnTaskDone.
  }
  Dispatch(std::move(fn));
}

void PoolSlice::Dispatch(std::function<void()> fn) {
  // The wrapper runs on a pool worker; `this` stays valid because the
  // destructor blocks until in_flight_ drains, and the token this task
  // holds keeps in_flight_ > 0 until OnTaskDone returns it.
  pool_->Enqueue([this, fn = std::move(fn)]() mutable {
    fn();  // packaged_task wrapper — never throws.
    OnTaskDone();
  });
}

void PoolSlice::OnTaskDone() {
  std::function<void()> follow_up;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (next_ < pending_.size()) {
      // Hand the freed token straight to the next queued task (in_flight_
      // is unchanged — the token transfers).
      follow_up = std::move(pending_[next_++]);
    } else {
      --in_flight_;
      if (in_flight_ == 0) drained_.notify_all();
    }
  }
  if (follow_up) Dispatch(std::move(follow_up));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock,
                 [this]() { return stopping_ || next_ < queue_.size(); });
      if (next_ >= queue_.size()) return;  // stopping_ and queue drained.
      task = std::move(queue_[next_++]);
    }
    // packaged_task captures any exception into the future; a raw closure
    // that throws would std::terminate here, which is the documented
    // contract (Submit is the exception-safe entry point).
    task();
  }
}

}  // namespace ftoa
