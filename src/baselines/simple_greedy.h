// SimpleGreedy (paper Section 2.2): for every arriving object, pick the
// feasible counterpart currently waiting on the platform with the shortest
// distance; otherwise the object waits in place until its deadline. Workers
// never relocate (wait-in-place semantics).
//
// Faithful to the paper's cost model, the default implementation linearly
// scans all waiting counterparts per arrival ("it has to retrieve all the
// objects when starting to process a new object", Section 6.2) — this is
// what makes SimpleGreedy the slowest online baseline in Figures 4-6. An
// indexed variant using the grid index is provided as an engineering
// ablation (same output, different running time).

#ifndef FTOA_BASELINES_SIMPLE_GREEDY_H_
#define FTOA_BASELINES_SIMPLE_GREEDY_H_

#include "core/online_algorithm.h"
#include "retrieval/mode.h"

namespace ftoa {

/// Options for SimpleGreedy.
struct SimpleGreedyOptions {
  /// When true, candidate search uses the grid index (ring expansion)
  /// instead of the paper's linear scan. Output is identical; only the
  /// running time differs.
  bool use_spatial_index = false;

  /// kEngine routes candidate search through the shared retrieval engine
  /// (retrieval/candidate_engine.h: deadline/time-window pruning plus
  /// per-query stats in the RunTrace), overriding use_spatial_index.
  /// Output is identical across all three paths — only running time and
  /// instrumentation differ.
  RetrievalMode retrieval = RetrievalMode::kLinear;

  /// Pair feasibility. The default models wait-in-place literally (workers
  /// start moving only when assigned); kDispatchAtWorkerStart applies
  /// Definition 4's formula verbatim, crediting movement the baseline
  /// cannot actually perform (ablation knob).
  FeasibilityPolicy policy = FeasibilityPolicy::kDispatchAtAssignmentTime;
};

/// The SimpleGreedy baseline.
class SimpleGreedy : public OnlineAlgorithm {
 public:
  explicit SimpleGreedy(SimpleGreedyOptions options = {});

  std::string name() const override {
    if (options_.retrieval == RetrievalMode::kEngine) {
      return "SimpleGreedy-Eng";
    }
    return options_.use_spatial_index ? "SimpleGreedy-Idx" : "SimpleGreedy";
  }
  FeasibilityPolicy feasibility_policy() const override {
    return options_.policy;
  }

  std::unique_ptr<AssignmentSession> StartSession(
      const Instance& instance) override;

 private:
  SimpleGreedyOptions options_;
};

}  // namespace ftoa

#endif  // FTOA_BASELINES_SIMPLE_GREEDY_H_
