#include "baselines/simple_greedy.h"

#include <limits>
#include <vector>

#include "retrieval/waiting_pool.h"

namespace ftoa {

namespace {

/// Pool-backed variant: candidate search through a waiting-pool backend
/// (GridWaitingPool = historical grid-index ring expansion;
/// EngineWaitingPool = the shared retrieval engine with deadline/window
/// pruning and per-query stats). Nearest answers are canonical
/// (distance, id) under both backends, so the assignment is bit-identical
/// to the linear reference either way.
template <typename Pool>
class PooledGreedySession final : public AssignmentSessionBase {
 public:
  PooledGreedySession(const Instance& instance, SimpleGreedyOptions options)
      : AssignmentSessionBase(instance),
        options_(options),
        waiting_workers_(instance.spacetime().grid(), &trace_.retrieval),
        waiting_tasks_(instance.spacetime().grid(), &trace_.retrieval),
        max_radius_(MaxFeasibleDistance(instance.MaxTaskDuration(),
                                        instance.MaxWorkerDuration(),
                                        instance.velocity())),
        max_task_duration_(instance.MaxTaskDuration()),
        max_worker_duration_(instance.MaxWorkerDuration()) {}

  void OnWorker(WorkerId worker, double time) override {
    const double velocity = instance().velocity();
    const Worker& w = instance().worker(worker);
    // Feasible tasks must have started within MaxTaskDuration of now
    // (their deadline constraint cannot reach further back); a superset
    // window — CanServe stays the authority.
    const int64_t hit = waiting_tasks_.Nearest(
        w.location, max_radius_, time,
        StartWindow{time - max_task_duration_, time},
        [&](int64_t id, double) {
          const Task& r = instance().task(static_cast<TaskId>(id));
          return CanServe(w, r, velocity, options_.policy);
        });
    if (hit >= 0) {
      assignment_.Add(w.id, static_cast<TaskId>(hit), time);
      waiting_tasks_.Erase(hit);
    } else {
      waiting_workers_.Insert(w.id, w.location, w.start, w.Deadline());
    }
  }

  void OnTask(TaskId task, double time) override {
    const double velocity = instance().velocity();
    const Task& r = instance().task(task);
    // Sr < Sw + Dw forces Sw > Sr - Dw >= Sr - MaxWorkerDuration.
    const int64_t hit = waiting_workers_.Nearest(
        r.location, max_radius_, time,
        StartWindow{time - max_worker_duration_, time},
        [&](int64_t id, double) {
          const Worker& w = instance().worker(static_cast<WorkerId>(id));
          return CanServe(w, r, velocity, options_.policy);
        });
    if (hit >= 0) {
      assignment_.Add(static_cast<WorkerId>(hit), r.id, time);
      waiting_workers_.Erase(hit);
    } else {
      waiting_tasks_.Insert(r.id, r.location, r.start, r.Deadline());
    }
  }

 private:
  SimpleGreedyOptions options_;
  Pool waiting_workers_;
  Pool waiting_tasks_;
  double max_radius_;
  double max_task_duration_;
  double max_worker_duration_;
};

/// Faithful variant: linear scan over all waiting counterparts. Expired or
/// matched entries are compacted away lazily during the scans.
class LinearGreedySession final : public AssignmentSessionBase {
 public:
  LinearGreedySession(const Instance& instance, SimpleGreedyOptions options)
      : AssignmentSessionBase(instance), options_(options) {}

  void OnWorker(WorkerId worker, double time) override {
    const double velocity = instance().velocity();
    const Worker& w = instance().worker(worker);
    double best_distance = std::numeric_limits<double>::infinity();
    int32_t best = -1;
    size_t write = 0;
    for (size_t i = 0; i < waiting_tasks_.size(); ++i) {
      const int32_t id = waiting_tasks_[i];
      const Task& r = instance().task(id);
      if (r.Deadline() < time) continue;  // Expired: drop.
      waiting_tasks_[write++] = id;
      if (!CanServe(w, r, velocity, options_.policy)) continue;
      const double d = Distance(w.location, r.location);
      if (d < best_distance || (d == best_distance && id < best)) {
        best_distance = d;
        best = id;
      }
    }
    waiting_tasks_.resize(write);
    if (best >= 0) {
      assignment_.Add(w.id, best, time);
      // Remove the matched task from the waiting list.
      for (size_t i = 0; i < waiting_tasks_.size(); ++i) {
        if (waiting_tasks_[i] == best) {
          waiting_tasks_[i] = waiting_tasks_.back();
          waiting_tasks_.pop_back();
          break;
        }
      }
    } else {
      waiting_workers_.push_back(w.id);
    }
  }

  void OnTask(TaskId task, double time) override {
    const double velocity = instance().velocity();
    const Task& r = instance().task(task);
    double best_distance = std::numeric_limits<double>::infinity();
    int32_t best = -1;
    size_t write = 0;
    for (size_t i = 0; i < waiting_workers_.size(); ++i) {
      const int32_t id = waiting_workers_[i];
      const Worker& w = instance().worker(id);
      if (w.Deadline() < time) continue;  // Left the platform.
      waiting_workers_[write++] = id;
      if (!CanServe(w, r, velocity, options_.policy)) continue;
      const double d = Distance(w.location, r.location);
      if (d < best_distance || (d == best_distance && id < best)) {
        best_distance = d;
        best = id;
      }
    }
    waiting_workers_.resize(write);
    if (best >= 0) {
      assignment_.Add(best, r.id, time);
      for (size_t i = 0; i < waiting_workers_.size(); ++i) {
        if (waiting_workers_[i] == best) {
          waiting_workers_[i] = waiting_workers_.back();
          waiting_workers_.pop_back();
          break;
        }
      }
    } else {
      waiting_tasks_.push_back(r.id);
    }
  }

 private:
  SimpleGreedyOptions options_;
  std::vector<int32_t> waiting_workers_;
  std::vector<int32_t> waiting_tasks_;
};

}  // namespace

SimpleGreedy::SimpleGreedy(SimpleGreedyOptions options) : options_(options) {}

std::unique_ptr<AssignmentSession> SimpleGreedy::StartSession(
    const Instance& instance) {
  if (options_.retrieval == RetrievalMode::kEngine) {
    return std::make_unique<PooledGreedySession<EngineWaitingPool>>(
        instance, options_);
  }
  if (options_.use_spatial_index) {
    return std::make_unique<PooledGreedySession<GridWaitingPool>>(instance,
                                                                  options_);
  }
  return std::make_unique<LinearGreedySession>(instance, options_);
}

}  // namespace ftoa
