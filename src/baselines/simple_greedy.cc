#include "baselines/simple_greedy.h"

#include <limits>
#include <vector>

#include "model/arrival_stream.h"
#include "spatial/grid_index.h"

namespace ftoa {

SimpleGreedy::SimpleGreedy(SimpleGreedyOptions options) : options_(options) {}

Assignment SimpleGreedy::DoRun(const Instance& instance, RunTrace* trace) {
  (void)trace;  // SimpleGreedy never relocates workers.
  const double velocity = instance.velocity();
  Assignment assignment(instance.num_workers(), instance.num_tasks());

  const FeasibilityPolicy kPolicy = options_.policy;

  if (options_.use_spatial_index) {
    GridIndex waiting_workers(instance.spacetime().grid());
    GridIndex waiting_tasks(instance.spacetime().grid());
    const double max_radius =
        MaxFeasibleDistance(instance.MaxTaskDuration(),
                            instance.MaxWorkerDuration(), velocity);
    for (const ArrivalEvent& event : BuildArrivalStream(instance)) {
      if (event.kind == ObjectKind::kWorker) {
        const Worker& w = instance.worker(event.index);
        const IndexedPoint hit = waiting_tasks.FindNearest(
            w.location, max_radius,
            [&](const IndexedPoint& entry, double) {
              const Task& r = instance.task(static_cast<TaskId>(entry.id));
              return CanServe(w, r, velocity, kPolicy);
            });
        if (hit.id >= 0) {
          assignment.Add(w.id, static_cast<TaskId>(hit.id), event.time);
          waiting_tasks.Erase(hit.id);
        } else {
          waiting_workers.Insert(w.id, w.location);
        }
      } else {
        const Task& r = instance.task(event.index);
        const IndexedPoint hit = waiting_workers.FindNearest(
            r.location, max_radius,
            [&](const IndexedPoint& entry, double) {
              const Worker& w =
                  instance.worker(static_cast<WorkerId>(entry.id));
              return CanServe(w, r, velocity, kPolicy);
            });
        if (hit.id >= 0) {
          assignment.Add(static_cast<WorkerId>(hit.id), r.id, event.time);
          waiting_workers.Erase(hit.id);
        } else {
          waiting_tasks.Insert(r.id, r.location);
        }
      }
    }
    return assignment;
  }

  // Faithful variant: linear scan over all waiting counterparts. Expired or
  // matched entries are compacted away lazily during the scans.
  std::vector<int32_t> waiting_workers;
  std::vector<int32_t> waiting_tasks;
  for (const ArrivalEvent& event : BuildArrivalStream(instance)) {
    if (event.kind == ObjectKind::kWorker) {
      const Worker& w = instance.worker(event.index);
      double best_distance = std::numeric_limits<double>::infinity();
      int32_t best = -1;
      size_t write = 0;
      for (size_t i = 0; i < waiting_tasks.size(); ++i) {
        const int32_t id = waiting_tasks[i];
        const Task& r = instance.task(id);
        if (r.Deadline() < event.time) continue;  // Expired: drop.
        waiting_tasks[write++] = id;
        if (!CanServe(w, r, velocity, kPolicy)) continue;
        const double d = Distance(w.location, r.location);
        if (d < best_distance || (d == best_distance && id < best)) {
          best_distance = d;
          best = id;
        }
      }
      waiting_tasks.resize(write);
      if (best >= 0) {
        assignment.Add(w.id, best, event.time);
        // Remove the matched task from the waiting list.
        for (size_t i = 0; i < waiting_tasks.size(); ++i) {
          if (waiting_tasks[i] == best) {
            waiting_tasks[i] = waiting_tasks.back();
            waiting_tasks.pop_back();
            break;
          }
        }
      } else {
        waiting_workers.push_back(w.id);
      }
    } else {
      const Task& r = instance.task(event.index);
      double best_distance = std::numeric_limits<double>::infinity();
      int32_t best = -1;
      size_t write = 0;
      for (size_t i = 0; i < waiting_workers.size(); ++i) {
        const int32_t id = waiting_workers[i];
        const Worker& w = instance.worker(id);
        if (w.Deadline() < event.time) continue;  // Left the platform.
        waiting_workers[write++] = id;
        if (!CanServe(w, r, velocity, kPolicy)) continue;
        const double d = Distance(w.location, r.location);
        if (d < best_distance || (d == best_distance && id < best)) {
          best_distance = d;
          best = id;
        }
      }
      waiting_workers.resize(write);
      if (best >= 0) {
        assignment.Add(best, r.id, event.time);
        for (size_t i = 0; i < waiting_workers.size(); ++i) {
          if (waiting_workers[i] == best) {
            waiting_workers[i] = waiting_workers.back();
            waiting_workers.pop_back();
            break;
          }
        }
      } else {
        waiting_tasks.push_back(r.id);
      }
    }
  }
  return assignment;
}

}  // namespace ftoa
