#include "baselines/simple_greedy.h"

#include <limits>
#include <vector>

#include "spatial/grid_index.h"

namespace ftoa {

namespace {

/// Indexed variant: candidate search via grid-index ring expansion.
class IndexedGreedySession final : public AssignmentSessionBase {
 public:
  IndexedGreedySession(const Instance& instance, SimpleGreedyOptions options)
      : AssignmentSessionBase(instance),
        options_(options),
        waiting_workers_(instance.spacetime().grid()),
        waiting_tasks_(instance.spacetime().grid()),
        max_radius_(MaxFeasibleDistance(instance.MaxTaskDuration(),
                                        instance.MaxWorkerDuration(),
                                        instance.velocity())) {}

  void OnWorker(WorkerId worker, double time) override {
    const double velocity = instance().velocity();
    const Worker& w = instance().worker(worker);
    const IndexedPoint hit = waiting_tasks_.FindNearest(
        w.location, max_radius_, [&](const IndexedPoint& entry, double) {
          const Task& r = instance().task(static_cast<TaskId>(entry.id));
          return CanServe(w, r, velocity, options_.policy);
        });
    if (hit.id >= 0) {
      assignment_.Add(w.id, static_cast<TaskId>(hit.id), time);
      waiting_tasks_.Erase(hit.id);
    } else {
      waiting_workers_.Insert(w.id, w.location);
    }
  }

  void OnTask(TaskId task, double time) override {
    const double velocity = instance().velocity();
    const Task& r = instance().task(task);
    const IndexedPoint hit = waiting_workers_.FindNearest(
        r.location, max_radius_, [&](const IndexedPoint& entry, double) {
          const Worker& w =
              instance().worker(static_cast<WorkerId>(entry.id));
          return CanServe(w, r, velocity, options_.policy);
        });
    if (hit.id >= 0) {
      assignment_.Add(static_cast<WorkerId>(hit.id), r.id, time);
      waiting_workers_.Erase(hit.id);
    } else {
      waiting_tasks_.Insert(r.id, r.location);
    }
  }

 private:
  SimpleGreedyOptions options_;
  GridIndex waiting_workers_;
  GridIndex waiting_tasks_;
  double max_radius_;
};

/// Faithful variant: linear scan over all waiting counterparts. Expired or
/// matched entries are compacted away lazily during the scans.
class LinearGreedySession final : public AssignmentSessionBase {
 public:
  LinearGreedySession(const Instance& instance, SimpleGreedyOptions options)
      : AssignmentSessionBase(instance), options_(options) {}

  void OnWorker(WorkerId worker, double time) override {
    const double velocity = instance().velocity();
    const Worker& w = instance().worker(worker);
    double best_distance = std::numeric_limits<double>::infinity();
    int32_t best = -1;
    size_t write = 0;
    for (size_t i = 0; i < waiting_tasks_.size(); ++i) {
      const int32_t id = waiting_tasks_[i];
      const Task& r = instance().task(id);
      if (r.Deadline() < time) continue;  // Expired: drop.
      waiting_tasks_[write++] = id;
      if (!CanServe(w, r, velocity, options_.policy)) continue;
      const double d = Distance(w.location, r.location);
      if (d < best_distance || (d == best_distance && id < best)) {
        best_distance = d;
        best = id;
      }
    }
    waiting_tasks_.resize(write);
    if (best >= 0) {
      assignment_.Add(w.id, best, time);
      // Remove the matched task from the waiting list.
      for (size_t i = 0; i < waiting_tasks_.size(); ++i) {
        if (waiting_tasks_[i] == best) {
          waiting_tasks_[i] = waiting_tasks_.back();
          waiting_tasks_.pop_back();
          break;
        }
      }
    } else {
      waiting_workers_.push_back(w.id);
    }
  }

  void OnTask(TaskId task, double time) override {
    const double velocity = instance().velocity();
    const Task& r = instance().task(task);
    double best_distance = std::numeric_limits<double>::infinity();
    int32_t best = -1;
    size_t write = 0;
    for (size_t i = 0; i < waiting_workers_.size(); ++i) {
      const int32_t id = waiting_workers_[i];
      const Worker& w = instance().worker(id);
      if (w.Deadline() < time) continue;  // Left the platform.
      waiting_workers_[write++] = id;
      if (!CanServe(w, r, velocity, options_.policy)) continue;
      const double d = Distance(w.location, r.location);
      if (d < best_distance || (d == best_distance && id < best)) {
        best_distance = d;
        best = id;
      }
    }
    waiting_workers_.resize(write);
    if (best >= 0) {
      assignment_.Add(best, r.id, time);
      for (size_t i = 0; i < waiting_workers_.size(); ++i) {
        if (waiting_workers_[i] == best) {
          waiting_workers_[i] = waiting_workers_.back();
          waiting_workers_.pop_back();
          break;
        }
      }
    } else {
      waiting_tasks_.push_back(r.id);
    }
  }

 private:
  SimpleGreedyOptions options_;
  std::vector<int32_t> waiting_workers_;
  std::vector<int32_t> waiting_tasks_;
};

}  // namespace

SimpleGreedy::SimpleGreedy(SimpleGreedyOptions options) : options_(options) {}

std::unique_ptr<AssignmentSession> SimpleGreedy::StartSession(
    const Instance& instance) {
  if (options_.use_spatial_index) {
    return std::make_unique<IndexedGreedySession>(instance, options_);
  }
  return std::make_unique<LinearGreedySession>(instance, options_);
}

}  // namespace ftoa
