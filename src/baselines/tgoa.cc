#include "baselines/tgoa.h"

#include <limits>
#include <unordered_map>
#include <vector>

#include "flow/dynamic_matching.h"
#include "flow/hopcroft_karp.h"
#include "model/arrival_stream.h"
#include "spatial/grid_index.h"

namespace ftoa {

namespace {

/// Erases every index entry whose deadline (per `deadline_of`) precedes
/// `now`, reporting each removed id through `on_erase`. One whole-region
/// disk query stands in for "iterate everything"; `scratch` is reused
/// across sweeps to avoid per-sweep allocations.
template <typename DeadlineFn, typename OnEraseFn>
void SweepExpired(GridIndex& index, const GridSpec& grid, double now,
                  DeadlineFn&& deadline_of, OnEraseFn&& on_erase,
                  std::vector<int64_t>& scratch) {
  scratch.clear();
  index.ForEachInDisk({grid.width() / 2, grid.height() / 2},
                      std::numeric_limits<double>::max(),
                      [&](const IndexedPoint& entry, double) {
                        if (deadline_of(entry.id) < now) {
                          scratch.push_back(entry.id);
                        }
                      });
  for (const int64_t id : scratch) {
    index.Erase(id);
    on_erase(id);
  }
}

}  // namespace

Tgoa::Tgoa(TgoaOptions options) : options_(options) {}

Assignment Tgoa::DoRun(const Instance& instance, RunTrace* trace) {
  return options_.incremental_matching ? RunIncremental(instance, trace)
                                       : RunRebuild(instance, trace);
}

// Incremental mode: one DynamicBipartiteMatcher holds a maximum matching
// over the waiting (unmatched, alive) pool for the entire run. Every object
// adds its candidate edges exactly once, at insertion time (pair
// feasibility here is time-invariant, so the later endpoint of a pair
// discovers the edge); a second-phase arrival then costs one
// augmenting-path search — the guardrail "is the newcomer matched in a
// maximum matching of the revealed pool?" answered without rebuilding
// anything. Committed pairs and expired objects are deactivated in place,
// with the one-path repair restoring maximality.
Assignment Tgoa::RunIncremental(const Instance& instance, RunTrace* trace) {
  const double velocity = instance.velocity();
  Assignment assignment(instance.num_workers(), instance.num_tasks());

  const std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
  const size_t greedy_phase = static_cast<size_t>(
      static_cast<double>(events.size()) * options_.greedy_fraction);

  GridIndex waiting_workers(instance.spacetime().grid());
  GridIndex waiting_tasks(instance.spacetime().grid());
  const double max_radius = MaxFeasibleDistance(
      instance.MaxTaskDuration(), instance.MaxWorkerDuration(), velocity);

  auto greedy_feasible = [&](const Worker& w, const Task& r) {
    return CanServe(w, r, velocity, options_.policy);
  };

  DynamicBipartiteMatcher matcher;  // Left = workers, right = tasks.
  matcher.ReserveNodes(static_cast<size_t>(instance.num_workers()),
                       static_cast<size_t>(instance.num_tasks()));
  // Edge volume is data dependent; seed the arena with a few candidates
  // per object so steady-state growth is amortized away.
  matcher.ReserveEdges(4 * static_cast<size_t>(instance.num_workers() +
                                               instance.num_tasks()));
  std::vector<int32_t> worker_slot(
      static_cast<size_t>(instance.num_workers()), -1);
  std::vector<int32_t> task_slot(static_cast<size_t>(instance.num_tasks()),
                                 -1);
  std::vector<WorkerId> slot_worker;
  std::vector<TaskId> slot_task;
  slot_worker.reserve(static_cast<size_t>(instance.num_workers()));
  slot_task.reserve(static_cast<size_t>(instance.num_tasks()));
  std::vector<int64_t> expiry_scratch;

  // Joins the waiting pool: node slot plus candidate edges against the
  // opposite waiting side (computed once; feasibility never changes).
  auto enter_worker = [&](const Worker& w) {
    const int32_t lslot = matcher.AddLeft();
    worker_slot[static_cast<size_t>(w.id)] = lslot;
    slot_worker.push_back(w.id);
    waiting_tasks.ForEachInDisk(
        w.location, max_radius, [&](const IndexedPoint& entry, double) {
          const Task& r = instance.task(static_cast<TaskId>(entry.id));
          if (greedy_feasible(w, r)) {
            matcher.AddEdge(lslot, task_slot[static_cast<size_t>(r.id)]);
          }
        });
    return lslot;
  };
  auto enter_task = [&](const Task& r) {
    const int32_t rslot = matcher.AddRight();
    task_slot[static_cast<size_t>(r.id)] = rslot;
    slot_task.push_back(r.id);
    waiting_workers.ForEachInDisk(
        r.location, max_radius, [&](const IndexedPoint& entry, double) {
          const Worker& w = instance.worker(static_cast<WorkerId>(entry.id));
          if (greedy_feasible(w, r)) {
            matcher.AddEdge(worker_slot[static_cast<size_t>(w.id)], rslot);
          }
        });
    return rslot;
  };

  for (size_t k = 0; k < events.size(); ++k) {
    const ArrivalEvent& event = events[k];
    const bool in_greedy_phase = k < greedy_phase;
    if (event.kind == ObjectKind::kWorker) {
      const Worker& w = instance.worker(event.index);
      if (in_greedy_phase) {
        const IndexedPoint hit = waiting_tasks.FindNearest(
            w.location, max_radius,
            [&](const IndexedPoint& entry, double) {
              const Task& r = instance.task(static_cast<TaskId>(entry.id));
              return greedy_feasible(w, r) && r.Deadline() >= event.time;
            });
        if (hit.id >= 0) {
          assignment.Add(w.id, static_cast<TaskId>(hit.id), event.time);
          waiting_tasks.Erase(hit.id);
          matcher.RemoveRight(task_slot[static_cast<size_t>(hit.id)]);
        } else {
          enter_worker(w);
          waiting_workers.Insert(w.id, w.location);
        }
      } else {
        const int32_t lslot = enter_worker(w);
        if (matcher.TryAugmentLeft(lslot)) {
          const int32_t rslot = matcher.MatchOfLeft(lslot);
          const TaskId partner = slot_task[static_cast<size_t>(rslot)];
          assignment.Add(w.id, partner, event.time);
          matcher.RemovePair(lslot, rslot);
          waiting_tasks.Erase(partner);
        } else {
          waiting_workers.Insert(w.id, w.location);
        }
      }
    } else {
      const Task& r = instance.task(event.index);
      if (in_greedy_phase) {
        const IndexedPoint hit = waiting_workers.FindNearest(
            r.location, max_radius,
            [&](const IndexedPoint& entry, double) {
              const Worker& w =
                  instance.worker(static_cast<WorkerId>(entry.id));
              return greedy_feasible(w, r) && w.Deadline() >= event.time;
            });
        if (hit.id >= 0) {
          assignment.Add(static_cast<WorkerId>(hit.id), r.id, event.time);
          waiting_workers.Erase(hit.id);
          matcher.RemoveLeft(worker_slot[static_cast<size_t>(hit.id)]);
        } else {
          enter_task(r);
          waiting_tasks.Insert(r.id, r.location);
        }
      } else {
        const int32_t rslot = enter_task(r);
        if (matcher.TryAugmentRight(rslot)) {
          const int32_t lslot = matcher.MatchOfRight(rslot);
          const WorkerId partner = slot_worker[static_cast<size_t>(lslot)];
          assignment.Add(partner, r.id, event.time);
          matcher.RemovePair(lslot, rslot);
          waiting_workers.Erase(partner);
        } else {
          waiting_tasks.Insert(r.id, r.location);
        }
      }
    }
    // Periodic lazy expiry keeps the indexes and the live part of the
    // matcher's pool small.
    if ((k & 1023u) == 0u) {
      SweepExpired(
          waiting_workers, instance.spacetime().grid(), event.time,
          [&](int64_t id) {
            return instance.worker(static_cast<WorkerId>(id)).Deadline();
          },
          [&](int64_t id) {
            matcher.RemoveLeft(worker_slot[static_cast<size_t>(id)]);
          },
          expiry_scratch);
      SweepExpired(
          waiting_tasks, instance.spacetime().grid(), event.time,
          [&](int64_t id) {
            return instance.task(static_cast<TaskId>(id)).Deadline();
          },
          [&](int64_t id) {
            matcher.RemoveRight(task_slot[static_cast<size_t>(id)]);
          },
          expiry_scratch);
    }
  }
  if (trace != nullptr) {
    trace->matcher_augment_searches += matcher.augment_searches();
    // No per-arrival reconstruction happened: matcher_rebuilds untouched.
  }
  return assignment;
}

// Rebuild-per-arrival reference mode: the historical implementation, which
// reconstructs a Hopcroft-Karp instance (and re-enumerates the candidate
// edges of the whole waiting pool) for every second-phase arrival — the
// O(E sqrt(V))-per-arrival scalability weakness of [26] that POLAR's O(1)
// removes. Kept for the incremental-equivalence tests and as the baseline
// leg of the flow microbenches.
Assignment Tgoa::RunRebuild(const Instance& instance, RunTrace* trace) {
  const double velocity = instance.velocity();
  Assignment assignment(instance.num_workers(), instance.num_tasks());

  const std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
  const size_t greedy_phase = static_cast<size_t>(
      static_cast<double>(events.size()) * options_.greedy_fraction);

  // Unmatched alive objects, spatially indexed for candidate pruning.
  GridIndex waiting_workers(instance.spacetime().grid());
  GridIndex waiting_tasks(instance.spacetime().grid());
  const double max_radius = MaxFeasibleDistance(
      instance.MaxTaskDuration(), instance.MaxWorkerDuration(), velocity);

  auto greedy_feasible = [&](const Worker& w, const Task& r) {
    return CanServe(w, r, velocity, options_.policy);
  };
  std::vector<int64_t> expiry_scratch;

  // Optimal-matching guardrail for the second phase: the new object is
  // committed only when it is matched in a maximum matching of all
  // currently waiting (unmatched, alive) objects plus itself.
  auto optimal_partner_for_worker = [&](const Worker& w) -> TaskId {
    // Collect alive waiting workers + the new one, and waiting tasks.
    std::vector<WorkerId> left;
    std::unordered_map<int64_t, int32_t> left_slot;
    std::vector<TaskId> right;
    std::unordered_map<int64_t, int32_t> right_slot;
    std::vector<std::pair<int32_t, int32_t>> edges;

    auto right_index = [&](TaskId id) {
      const auto it = right_slot.find(id);
      if (it != right_slot.end()) return it->second;
      const int32_t slot = static_cast<int32_t>(right.size());
      right_slot[id] = slot;
      right.push_back(id);
      return slot;
    };
    // Edges from every waiting worker (including w) to feasible tasks.
    auto add_worker = [&](const Worker& candidate) {
      const int32_t lid = static_cast<int32_t>(left.size());
      left.push_back(candidate.id);
      left_slot[candidate.id] = lid;
      waiting_tasks.ForEachInDisk(
          candidate.location, max_radius,
          [&](const IndexedPoint& entry, double) {
            const Task& r = instance.task(static_cast<TaskId>(entry.id));
            if (greedy_feasible(candidate, r)) {
              edges.emplace_back(lid, right_index(r.id));
            }
          });
    };
    add_worker(w);
    std::vector<WorkerId> other_workers;
    waiting_workers.ForEachInDisk(
        w.location, std::numeric_limits<double>::max(),
        [&](const IndexedPoint& entry, double) {
          other_workers.push_back(static_cast<WorkerId>(entry.id));
        });
    for (WorkerId id : other_workers) add_worker(instance.worker(id));

    if (edges.empty()) return -1;
    if (trace != nullptr) ++trace->matcher_rebuilds;
    HopcroftKarp matcher(static_cast<int32_t>(left.size()),
                         static_cast<int32_t>(right.size()));
    matcher.ReserveEdges(edges.size());
    for (const auto& [l, r] : edges) matcher.AddEdge(l, r);
    matcher.Solve();
    const int32_t partner = matcher.MatchOfLeft(0);  // w is left node 0.
    return partner < 0 ? -1 : right[static_cast<size_t>(partner)];
  };

  auto optimal_partner_for_task = [&](const Task& r) -> WorkerId {
    std::vector<TaskId> left;
    std::vector<WorkerId> right;
    std::unordered_map<int64_t, int32_t> right_slot;
    std::vector<std::pair<int32_t, int32_t>> edges;
    auto right_index = [&](WorkerId id) {
      const auto it = right_slot.find(id);
      if (it != right_slot.end()) return it->second;
      const int32_t slot = static_cast<int32_t>(right.size());
      right_slot[id] = slot;
      right.push_back(id);
      return slot;
    };
    auto add_task = [&](const Task& candidate) {
      const int32_t lid = static_cast<int32_t>(left.size());
      left.push_back(candidate.id);
      waiting_workers.ForEachInDisk(
          candidate.location, max_radius,
          [&](const IndexedPoint& entry, double) {
            const Worker& w =
                instance.worker(static_cast<WorkerId>(entry.id));
            if (greedy_feasible(w, candidate)) {
              edges.emplace_back(lid, right_index(w.id));
            }
          });
    };
    add_task(r);
    std::vector<TaskId> other_tasks;
    waiting_tasks.ForEachInDisk(
        r.location, std::numeric_limits<double>::max(),
        [&](const IndexedPoint& entry, double) {
          other_tasks.push_back(static_cast<TaskId>(entry.id));
        });
    for (TaskId id : other_tasks) add_task(instance.task(id));

    if (edges.empty()) return -1;
    if (trace != nullptr) ++trace->matcher_rebuilds;
    HopcroftKarp matcher(static_cast<int32_t>(left.size()),
                         static_cast<int32_t>(right.size()));
    matcher.ReserveEdges(edges.size());
    for (const auto& [l, w] : edges) matcher.AddEdge(l, w);
    matcher.Solve();
    const int32_t partner = matcher.MatchOfLeft(0);
    return partner < 0 ? -1 : right[static_cast<size_t>(partner)];
  };

  for (size_t k = 0; k < events.size(); ++k) {
    const ArrivalEvent& event = events[k];
    const bool in_greedy_phase = k < greedy_phase;
    if (event.kind == ObjectKind::kWorker) {
      const Worker& w = instance.worker(event.index);
      TaskId partner = -1;
      if (in_greedy_phase) {
        const IndexedPoint hit = waiting_tasks.FindNearest(
            w.location, max_radius,
            [&](const IndexedPoint& entry, double) {
              const Task& r = instance.task(static_cast<TaskId>(entry.id));
              return greedy_feasible(w, r) && r.Deadline() >= event.time;
            });
        partner = hit.id >= 0 ? static_cast<TaskId>(hit.id) : -1;
      } else {
        partner = optimal_partner_for_worker(w);
      }
      if (partner >= 0) {
        assignment.Add(w.id, partner, event.time);
        waiting_tasks.Erase(partner);
      } else {
        waiting_workers.Insert(w.id, w.location);
      }
    } else {
      const Task& r = instance.task(event.index);
      WorkerId partner = -1;
      if (in_greedy_phase) {
        const IndexedPoint hit = waiting_workers.FindNearest(
            r.location, max_radius,
            [&](const IndexedPoint& entry, double) {
              const Worker& w =
                  instance.worker(static_cast<WorkerId>(entry.id));
              return greedy_feasible(w, r) && w.Deadline() >= event.time;
            });
        partner = hit.id >= 0 ? static_cast<WorkerId>(hit.id) : -1;
      } else {
        partner = optimal_partner_for_task(r);
      }
      if (partner >= 0) {
        assignment.Add(partner, r.id, event.time);
        waiting_workers.Erase(partner);
      } else {
        waiting_tasks.Insert(r.id, r.location);
      }
    }
    // Periodic lazy expiry keeps the indexes (and the per-arrival matching
    // graphs) small.
    if ((k & 1023u) == 0u) {
      SweepExpired(
          waiting_workers, instance.spacetime().grid(), event.time,
          [&](int64_t id) {
            return instance.worker(static_cast<WorkerId>(id)).Deadline();
          },
          [](int64_t) {}, expiry_scratch);
      SweepExpired(
          waiting_tasks, instance.spacetime().grid(), event.time,
          [&](int64_t id) {
            return instance.task(static_cast<TaskId>(id)).Deadline();
          },
          [](int64_t) {}, expiry_scratch);
    }
  }
  return assignment;
}

}  // namespace ftoa
