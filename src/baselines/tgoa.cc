#include "baselines/tgoa.h"

#include <limits>
#include <unordered_map>
#include <vector>

#include "flow/hopcroft_karp.h"
#include "model/arrival_stream.h"
#include "spatial/grid_index.h"

namespace ftoa {

Tgoa::Tgoa(TgoaOptions options) : options_(options) {}

Assignment Tgoa::DoRun(const Instance& instance, RunTrace* trace) {
  (void)trace;  // TGOA never relocates workers.
  const double velocity = instance.velocity();
  Assignment assignment(instance.num_workers(), instance.num_tasks());

  const std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
  const size_t greedy_phase = static_cast<size_t>(
      static_cast<double>(events.size()) * options_.greedy_fraction);

  // Unmatched alive objects, spatially indexed for candidate pruning.
  GridIndex waiting_workers(instance.spacetime().grid());
  GridIndex waiting_tasks(instance.spacetime().grid());
  const double max_radius = MaxFeasibleDistance(
      instance.MaxTaskDuration(), instance.MaxWorkerDuration(), velocity);

  auto greedy_feasible = [&](const Worker& w, const Task& r) {
    return CanServe(w, r, velocity, options_.policy);
  };

  // Optimal-matching guardrail for the second phase: the new object is
  // committed only when it is matched in a maximum matching of all
  // currently waiting (unmatched, alive) objects plus itself. We re-run
  // Hopcroft-Karp over the pruned candidate edges — O(E sqrt(V)) per
  // arrival, the scalability weakness of [26] that POLAR's O(1) removes.
  auto optimal_partner_for_worker = [&](const Worker& w) -> TaskId {
    // Collect alive waiting workers + the new one, and waiting tasks.
    std::vector<WorkerId> left;
    std::unordered_map<int64_t, int32_t> left_slot;
    std::vector<TaskId> right;
    std::unordered_map<int64_t, int32_t> right_slot;
    std::vector<std::pair<int32_t, int32_t>> edges;

    auto right_index = [&](TaskId id) {
      const auto it = right_slot.find(id);
      if (it != right_slot.end()) return it->second;
      const int32_t slot = static_cast<int32_t>(right.size());
      right_slot[id] = slot;
      right.push_back(id);
      return slot;
    };
    // Edges from every waiting worker (including w) to feasible tasks.
    auto add_worker = [&](const Worker& candidate) {
      const int32_t lid = static_cast<int32_t>(left.size());
      left.push_back(candidate.id);
      left_slot[candidate.id] = lid;
      waiting_tasks.ForEachInDisk(
          candidate.location, max_radius,
          [&](const IndexedPoint& entry, double) {
            const Task& r = instance.task(static_cast<TaskId>(entry.id));
            if (greedy_feasible(candidate, r)) {
              edges.emplace_back(lid, right_index(r.id));
            }
          });
    };
    add_worker(w);
    std::vector<WorkerId> other_workers;
    waiting_workers.ForEachInDisk(
        w.location, std::numeric_limits<double>::max(),
        [&](const IndexedPoint& entry, double) {
          other_workers.push_back(static_cast<WorkerId>(entry.id));
        });
    for (WorkerId id : other_workers) add_worker(instance.worker(id));

    if (edges.empty()) return -1;
    HopcroftKarp matcher(static_cast<int32_t>(left.size()),
                         static_cast<int32_t>(right.size()));
    matcher.ReserveEdges(edges.size());
    for (const auto& [l, r] : edges) matcher.AddEdge(l, r);
    matcher.Solve();
    const int32_t partner = matcher.MatchOfLeft(0);  // w is left node 0.
    return partner < 0 ? -1 : right[static_cast<size_t>(partner)];
  };

  auto optimal_partner_for_task = [&](const Task& r) -> WorkerId {
    std::vector<TaskId> left;
    std::vector<WorkerId> right;
    std::unordered_map<int64_t, int32_t> right_slot;
    std::vector<std::pair<int32_t, int32_t>> edges;
    auto right_index = [&](WorkerId id) {
      const auto it = right_slot.find(id);
      if (it != right_slot.end()) return it->second;
      const int32_t slot = static_cast<int32_t>(right.size());
      right_slot[id] = slot;
      right.push_back(id);
      return slot;
    };
    auto add_task = [&](const Task& candidate) {
      const int32_t lid = static_cast<int32_t>(left.size());
      left.push_back(candidate.id);
      waiting_workers.ForEachInDisk(
          candidate.location, max_radius,
          [&](const IndexedPoint& entry, double) {
            const Worker& w =
                instance.worker(static_cast<WorkerId>(entry.id));
            if (greedy_feasible(w, candidate)) {
              edges.emplace_back(lid, right_index(w.id));
            }
          });
    };
    add_task(r);
    std::vector<TaskId> other_tasks;
    waiting_tasks.ForEachInDisk(
        r.location, std::numeric_limits<double>::max(),
        [&](const IndexedPoint& entry, double) {
          other_tasks.push_back(static_cast<TaskId>(entry.id));
        });
    for (TaskId id : other_tasks) add_task(instance.task(id));

    if (edges.empty()) return -1;
    HopcroftKarp matcher(static_cast<int32_t>(left.size()),
                         static_cast<int32_t>(right.size()));
    matcher.ReserveEdges(edges.size());
    for (const auto& [l, w] : edges) matcher.AddEdge(l, w);
    matcher.Solve();
    const int32_t partner = matcher.MatchOfLeft(0);
    return partner < 0 ? -1 : right[static_cast<size_t>(partner)];
  };

  for (size_t k = 0; k < events.size(); ++k) {
    const ArrivalEvent& event = events[k];
    const bool in_greedy_phase = k < greedy_phase;
    if (event.kind == ObjectKind::kWorker) {
      const Worker& w = instance.worker(event.index);
      TaskId partner = -1;
      if (in_greedy_phase) {
        const IndexedPoint hit = waiting_tasks.FindNearest(
            w.location, max_radius,
            [&](const IndexedPoint& entry, double) {
              const Task& r = instance.task(static_cast<TaskId>(entry.id));
              return greedy_feasible(w, r) && r.Deadline() >= event.time;
            });
        partner = hit.id >= 0 ? static_cast<TaskId>(hit.id) : -1;
      } else {
        partner = optimal_partner_for_worker(w);
      }
      if (partner >= 0) {
        assignment.Add(w.id, partner, event.time);
        waiting_tasks.Erase(partner);
      } else {
        waiting_workers.Insert(w.id, w.location);
      }
    } else {
      const Task& r = instance.task(event.index);
      WorkerId partner = -1;
      if (in_greedy_phase) {
        const IndexedPoint hit = waiting_workers.FindNearest(
            r.location, max_radius,
            [&](const IndexedPoint& entry, double) {
              const Worker& w =
                  instance.worker(static_cast<WorkerId>(entry.id));
              return greedy_feasible(w, r) && w.Deadline() >= event.time;
            });
        partner = hit.id >= 0 ? static_cast<WorkerId>(hit.id) : -1;
      } else {
        partner = optimal_partner_for_task(r);
      }
      if (partner >= 0) {
        assignment.Add(partner, r.id, event.time);
        waiting_workers.Erase(partner);
      } else {
        waiting_tasks.Insert(r.id, r.location);
      }
    }
    // Periodic lazy expiry keeps the indexes (and the per-arrival matching
    // graphs) small.
    if ((k & 1023u) == 0u) {
      std::vector<int64_t> expired;
      waiting_workers.ForEachInDisk(
          {instance.spacetime().grid().width() / 2,
           instance.spacetime().grid().height() / 2},
          std::numeric_limits<double>::max(),
          [&](const IndexedPoint& entry, double) {
            if (instance.worker(static_cast<WorkerId>(entry.id)).Deadline() <
                event.time) {
              expired.push_back(entry.id);
            }
          });
      for (int64_t id : expired) waiting_workers.Erase(id);
      expired.clear();
      waiting_tasks.ForEachInDisk(
          {instance.spacetime().grid().width() / 2,
           instance.spacetime().grid().height() / 2},
          std::numeric_limits<double>::max(),
          [&](const IndexedPoint& entry, double) {
            if (instance.task(static_cast<TaskId>(entry.id)).Deadline() <
                event.time) {
              expired.push_back(entry.id);
            }
          });
      for (int64_t id : expired) waiting_tasks.Erase(id);
    }
  }
  return assignment;
}

}  // namespace ftoa
