#include "baselines/tgoa.h"

#include <limits>
#include <unordered_map>
#include <vector>

#include "flow/dynamic_matching.h"
#include "flow/hopcroft_karp.h"
#include "spatial/grid_index.h"

namespace ftoa {

namespace {

/// Erases every index entry whose deadline (per `deadline_of`) precedes
/// `now`, reporting each removed id through `on_erase`. One whole-region
/// disk query stands in for "iterate everything"; `scratch` is reused
/// across sweeps to avoid per-sweep allocations.
template <typename DeadlineFn, typename OnEraseFn>
void SweepExpired(GridIndex& index, const GridSpec& grid, double now,
                  DeadlineFn&& deadline_of, OnEraseFn&& on_erase,
                  std::vector<int64_t>& scratch) {
  scratch.clear();
  index.ForEachInDisk({grid.width() / 2, grid.height() / 2},
                      std::numeric_limits<double>::max(),
                      [&](const IndexedPoint& entry, double) {
                        if (deadline_of(entry.id) < now) {
                          scratch.push_back(entry.id);
                        }
                      });
  for (const int64_t id : scratch) {
    index.Erase(id);
    on_erase(id);
  }
}

/// Shared per-run state of both TGOA modes: the greedy-phase split (fixed
/// by the instance's total object count — the arrival stream is exactly
/// every object once), the waiting-pool indexes, and the event counter that
/// paces the lazy expiry sweeps.
class TgoaSessionBase : public AssignmentSessionBase {
 public:
  TgoaSessionBase(const Instance& instance, const TgoaOptions& options)
      : AssignmentSessionBase(instance),
        options_(options),
        greedy_phase_(static_cast<size_t>(
            static_cast<double>(instance.num_workers() +
                                instance.num_tasks()) *
            options.greedy_fraction)),
        waiting_workers_(instance.spacetime().grid()),
        waiting_tasks_(instance.spacetime().grid()),
        max_radius_(MaxFeasibleDistance(instance.MaxTaskDuration(),
                                        instance.MaxWorkerDuration(),
                                        instance.velocity())) {}

 protected:
  bool GreedyFeasible(const Worker& w, const Task& r) const {
    return CanServe(w, r, instance().velocity(), options_.policy);
  }
  bool InGreedyPhase() const { return event_index_ < greedy_phase_; }

  /// Call after each arrival: runs the periodic lazy expiry that keeps the
  /// indexes (and the matching pools) small, then advances the counter.
  template <typename OnWorkerGone, typename OnTaskGone>
  void FinishEvent(double now, OnWorkerGone&& worker_gone,
                   OnTaskGone&& task_gone) {
    if ((event_index_ & 1023u) == 0u) {
      SweepExpired(
          waiting_workers_, instance().spacetime().grid(), now,
          [&](int64_t id) {
            return instance().worker(static_cast<WorkerId>(id)).Deadline();
          },
          worker_gone, expiry_scratch_);
      SweepExpired(
          waiting_tasks_, instance().spacetime().grid(), now,
          [&](int64_t id) {
            return instance().task(static_cast<TaskId>(id)).Deadline();
          },
          task_gone, expiry_scratch_);
    }
    ++event_index_;
  }

  TgoaOptions options_;
  size_t greedy_phase_;
  size_t event_index_ = 0;
  GridIndex waiting_workers_;
  GridIndex waiting_tasks_;
  double max_radius_;
  std::vector<int64_t> expiry_scratch_;
};

// Incremental mode: one DynamicBipartiteMatcher holds a maximum matching
// over the waiting (unmatched, alive) pool for the entire run. Every object
// adds its candidate edges exactly once, at insertion time (pair
// feasibility here is time-invariant, so the later endpoint of a pair
// discovers the edge); a second-phase arrival then costs one
// augmenting-path search — the guardrail "is the newcomer matched in a
// maximum matching of the revealed pool?" answered without rebuilding
// anything. Committed pairs and expired objects are deactivated in place,
// with the one-path repair restoring maximality.
class TgoaIncrementalSession final : public TgoaSessionBase {
 public:
  TgoaIncrementalSession(const Instance& instance, const TgoaOptions& options)
      : TgoaSessionBase(instance, options),
        worker_slot_(static_cast<size_t>(instance.num_workers()), -1),
        task_slot_(static_cast<size_t>(instance.num_tasks()), -1) {
    matcher_.ReserveNodes(static_cast<size_t>(instance.num_workers()),
                          static_cast<size_t>(instance.num_tasks()));
    // Edge volume is data dependent; seed the arena with a few candidates
    // per object so steady-state growth is amortized away.
    matcher_.ReserveEdges(4 * static_cast<size_t>(instance.num_workers() +
                                                  instance.num_tasks()));
    slot_worker_.reserve(static_cast<size_t>(instance.num_workers()));
    slot_task_.reserve(static_cast<size_t>(instance.num_tasks()));
  }

  void OnWorker(WorkerId worker, double time) override {
    const Worker& w = instance().worker(worker);
    if (InGreedyPhase()) {
      const IndexedPoint hit = waiting_tasks_.FindNearest(
          w.location, max_radius_, [&](const IndexedPoint& entry, double) {
            const Task& r = instance().task(static_cast<TaskId>(entry.id));
            return GreedyFeasible(w, r) && r.Deadline() >= time;
          });
      if (hit.id >= 0) {
        assignment_.Add(w.id, static_cast<TaskId>(hit.id), time);
        waiting_tasks_.Erase(hit.id);
        matcher_.RemoveRight(task_slot_[static_cast<size_t>(hit.id)]);
      } else {
        EnterWorker(w);
        waiting_workers_.Insert(w.id, w.location);
      }
    } else {
      const int32_t lslot = EnterWorker(w);
      if (matcher_.TryAugmentLeft(lslot)) {
        const int32_t rslot = matcher_.MatchOfLeft(lslot);
        const TaskId partner = slot_task_[static_cast<size_t>(rslot)];
        assignment_.Add(w.id, partner, time);
        matcher_.RemovePair(lslot, rslot);
        waiting_tasks_.Erase(partner);
      } else {
        waiting_workers_.Insert(w.id, w.location);
      }
    }
    SweepAndCount(time);
  }

  void OnTask(TaskId task, double time) override {
    const Task& r = instance().task(task);
    if (InGreedyPhase()) {
      const IndexedPoint hit = waiting_workers_.FindNearest(
          r.location, max_radius_, [&](const IndexedPoint& entry, double) {
            const Worker& w =
                instance().worker(static_cast<WorkerId>(entry.id));
            return GreedyFeasible(w, r) && w.Deadline() >= time;
          });
      if (hit.id >= 0) {
        assignment_.Add(static_cast<WorkerId>(hit.id), r.id, time);
        waiting_workers_.Erase(hit.id);
        matcher_.RemoveLeft(worker_slot_[static_cast<size_t>(hit.id)]);
      } else {
        EnterTask(r);
        waiting_tasks_.Insert(r.id, r.location);
      }
    } else {
      const int32_t rslot = EnterTask(r);
      if (matcher_.TryAugmentRight(rslot)) {
        const int32_t lslot = matcher_.MatchOfRight(rslot);
        const WorkerId partner = slot_worker_[static_cast<size_t>(lslot)];
        assignment_.Add(partner, r.id, time);
        matcher_.RemovePair(lslot, rslot);
        waiting_workers_.Erase(partner);
      } else {
        waiting_tasks_.Insert(r.id, r.location);
      }
    }
    SweepAndCount(time);
  }

  void Flush() override {
    // Fold the matcher instrumentation into the trace (delta-based, so
    // repeated Flush calls stay correct). No per-arrival reconstruction
    // happened: matcher_rebuilds untouched.
    trace_.matcher_augment_searches +=
        matcher_.augment_searches() - recorded_augment_searches_;
    recorded_augment_searches_ = matcher_.augment_searches();
  }

 private:
  /// Joins the waiting pool: node slot plus candidate edges against the
  /// opposite waiting side (computed once; feasibility never changes).
  int32_t EnterWorker(const Worker& w) {
    const int32_t lslot = matcher_.AddLeft();
    worker_slot_[static_cast<size_t>(w.id)] = lslot;
    slot_worker_.push_back(w.id);
    waiting_tasks_.ForEachInDisk(
        w.location, max_radius_, [&](const IndexedPoint& entry, double) {
          const Task& r = instance().task(static_cast<TaskId>(entry.id));
          if (GreedyFeasible(w, r)) {
            matcher_.AddEdge(lslot, task_slot_[static_cast<size_t>(r.id)]);
          }
        });
    return lslot;
  }
  int32_t EnterTask(const Task& r) {
    const int32_t rslot = matcher_.AddRight();
    task_slot_[static_cast<size_t>(r.id)] = rslot;
    slot_task_.push_back(r.id);
    waiting_workers_.ForEachInDisk(
        r.location, max_radius_, [&](const IndexedPoint& entry, double) {
          const Worker& w =
              instance().worker(static_cast<WorkerId>(entry.id));
          if (GreedyFeasible(w, r)) {
            matcher_.AddEdge(worker_slot_[static_cast<size_t>(w.id)], rslot);
          }
        });
    return rslot;
  }

  void SweepAndCount(double now) {
    FinishEvent(
        now,
        [&](int64_t id) {
          matcher_.RemoveLeft(worker_slot_[static_cast<size_t>(id)]);
        },
        [&](int64_t id) {
          matcher_.RemoveRight(task_slot_[static_cast<size_t>(id)]);
        });
  }

  DynamicBipartiteMatcher matcher_;  // Left = workers, right = tasks.
  std::vector<int32_t> worker_slot_;
  std::vector<int32_t> task_slot_;
  std::vector<WorkerId> slot_worker_;
  std::vector<TaskId> slot_task_;
  int64_t recorded_augment_searches_ = 0;
};

// Rebuild-per-arrival reference mode: the historical implementation, which
// reconstructs a Hopcroft-Karp instance (and re-enumerates the candidate
// edges of the whole waiting pool) for every second-phase arrival — the
// O(E sqrt(V))-per-arrival scalability weakness of [26] that POLAR's O(1)
// removes. Kept for the incremental-equivalence tests and as the baseline
// leg of the flow microbenches.
class TgoaRebuildSession final : public TgoaSessionBase {
 public:
  using TgoaSessionBase::TgoaSessionBase;

  void OnWorker(WorkerId worker, double time) override {
    const Worker& w = instance().worker(worker);
    TaskId partner = -1;
    if (InGreedyPhase()) {
      const IndexedPoint hit = waiting_tasks_.FindNearest(
          w.location, max_radius_, [&](const IndexedPoint& entry, double) {
            const Task& r = instance().task(static_cast<TaskId>(entry.id));
            return GreedyFeasible(w, r) && r.Deadline() >= time;
          });
      partner = hit.id >= 0 ? static_cast<TaskId>(hit.id) : -1;
    } else {
      partner = OptimalPartnerForWorker(w);
    }
    if (partner >= 0) {
      assignment_.Add(w.id, partner, time);
      waiting_tasks_.Erase(partner);
    } else {
      waiting_workers_.Insert(w.id, w.location);
    }
    FinishEvent(time, [](int64_t) {}, [](int64_t) {});
  }

  void OnTask(TaskId task, double time) override {
    const Task& r = instance().task(task);
    WorkerId partner = -1;
    if (InGreedyPhase()) {
      const IndexedPoint hit = waiting_workers_.FindNearest(
          r.location, max_radius_, [&](const IndexedPoint& entry, double) {
            const Worker& w =
                instance().worker(static_cast<WorkerId>(entry.id));
            return GreedyFeasible(w, r) && w.Deadline() >= time;
          });
      partner = hit.id >= 0 ? static_cast<WorkerId>(hit.id) : -1;
    } else {
      partner = OptimalPartnerForTask(r);
    }
    if (partner >= 0) {
      assignment_.Add(partner, r.id, time);
      waiting_workers_.Erase(partner);
    } else {
      waiting_tasks_.Insert(r.id, r.location);
    }
    FinishEvent(time, [](int64_t) {}, [](int64_t) {});
  }

 private:
  // Optimal-matching guardrail for the second phase: the new object is
  // committed only when it is matched in a maximum matching of all
  // currently waiting (unmatched, alive) objects plus itself.
  TaskId OptimalPartnerForWorker(const Worker& w) {
    // Collect alive waiting workers + the new one, and waiting tasks.
    std::vector<WorkerId> left;
    std::unordered_map<int64_t, int32_t> left_slot;
    std::vector<TaskId> right;
    std::unordered_map<int64_t, int32_t> right_slot;
    std::vector<std::pair<int32_t, int32_t>> edges;

    auto right_index = [&](TaskId id) {
      const auto it = right_slot.find(id);
      if (it != right_slot.end()) return it->second;
      const int32_t slot = static_cast<int32_t>(right.size());
      right_slot[id] = slot;
      right.push_back(id);
      return slot;
    };
    // Edges from every waiting worker (including w) to feasible tasks.
    auto add_worker = [&](const Worker& candidate) {
      const int32_t lid = static_cast<int32_t>(left.size());
      left.push_back(candidate.id);
      left_slot[candidate.id] = lid;
      waiting_tasks_.ForEachInDisk(
          candidate.location, max_radius_,
          [&](const IndexedPoint& entry, double) {
            const Task& r = instance().task(static_cast<TaskId>(entry.id));
            if (GreedyFeasible(candidate, r)) {
              edges.emplace_back(lid, right_index(r.id));
            }
          });
    };
    add_worker(w);
    std::vector<WorkerId> other_workers;
    waiting_workers_.ForEachInDisk(
        w.location, std::numeric_limits<double>::max(),
        [&](const IndexedPoint& entry, double) {
          other_workers.push_back(static_cast<WorkerId>(entry.id));
        });
    for (WorkerId id : other_workers) add_worker(instance().worker(id));

    if (edges.empty()) return -1;
    ++trace_.matcher_rebuilds;
    HopcroftKarp matcher(static_cast<int32_t>(left.size()),
                         static_cast<int32_t>(right.size()));
    matcher.ReserveEdges(edges.size());
    for (const auto& [l, r] : edges) matcher.AddEdge(l, r);
    matcher.Solve();
    const int32_t partner = matcher.MatchOfLeft(0);  // w is left node 0.
    return partner < 0 ? -1 : right[static_cast<size_t>(partner)];
  }

  WorkerId OptimalPartnerForTask(const Task& r) {
    std::vector<TaskId> left;
    std::vector<WorkerId> right;
    std::unordered_map<int64_t, int32_t> right_slot;
    std::vector<std::pair<int32_t, int32_t>> edges;
    auto right_index = [&](WorkerId id) {
      const auto it = right_slot.find(id);
      if (it != right_slot.end()) return it->second;
      const int32_t slot = static_cast<int32_t>(right.size());
      right_slot[id] = slot;
      right.push_back(id);
      return slot;
    };
    auto add_task = [&](const Task& candidate) {
      const int32_t lid = static_cast<int32_t>(left.size());
      left.push_back(candidate.id);
      waiting_workers_.ForEachInDisk(
          candidate.location, max_radius_,
          [&](const IndexedPoint& entry, double) {
            const Worker& w =
                instance().worker(static_cast<WorkerId>(entry.id));
            if (GreedyFeasible(w, candidate)) {
              edges.emplace_back(lid, right_index(w.id));
            }
          });
    };
    add_task(r);
    std::vector<TaskId> other_tasks;
    waiting_tasks_.ForEachInDisk(
        r.location, std::numeric_limits<double>::max(),
        [&](const IndexedPoint& entry, double) {
          other_tasks.push_back(static_cast<TaskId>(entry.id));
        });
    for (TaskId id : other_tasks) add_task(instance().task(id));

    if (edges.empty()) return -1;
    ++trace_.matcher_rebuilds;
    HopcroftKarp matcher(static_cast<int32_t>(left.size()),
                         static_cast<int32_t>(right.size()));
    matcher.ReserveEdges(edges.size());
    for (const auto& [l, w] : edges) matcher.AddEdge(l, w);
    matcher.Solve();
    const int32_t partner = matcher.MatchOfLeft(0);
    return partner < 0 ? -1 : right[static_cast<size_t>(partner)];
  }
};

}  // namespace

Tgoa::Tgoa(TgoaOptions options) : options_(options) {}

std::unique_ptr<AssignmentSession> Tgoa::StartSession(
    const Instance& instance) {
  if (options_.incremental_matching) {
    return std::make_unique<TgoaIncrementalSession>(instance, options_);
  }
  return std::make_unique<TgoaRebuildSession>(instance, options_);
}

}  // namespace ftoa
