#include "baselines/tgoa.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "flow/dynamic_matching.h"
#include "flow/hopcroft_karp.h"
#include "retrieval/waiting_pool.h"

namespace ftoa {

namespace {

/// Shared per-run state of both TGOA modes: the greedy-phase split (fixed
/// by the instance's total object count — the arrival stream is exactly
/// every object once), the waiting-pool backends, and the event counter
/// that paces the lazy expiry sweeps.
///
/// Everything order-sensitive is canonicalized (candidate ids sorted
/// before matcher edges are added, expiry sweeps erase in id order), so
/// the run is bit-identical across waiting-pool backends — the
/// engine-vs-reference contract of tests/retrieval/retrieval_mode_test.cc.
template <typename Pool>
class TgoaSessionBase : public AssignmentSessionBase {
 public:
  TgoaSessionBase(const Instance& instance, const TgoaOptions& options)
      : AssignmentSessionBase(instance),
        options_(options),
        greedy_phase_(static_cast<size_t>(
            static_cast<double>(instance.num_workers() +
                                instance.num_tasks()) *
            options.greedy_fraction)),
        waiting_workers_(instance.spacetime().grid(), &trace_.retrieval),
        waiting_tasks_(instance.spacetime().grid(), &trace_.retrieval),
        max_radius_(MaxFeasibleDistance(instance.MaxTaskDuration(),
                                        instance.MaxWorkerDuration(),
                                        instance.velocity())),
        max_task_duration_(instance.MaxTaskDuration()),
        max_worker_duration_(instance.MaxWorkerDuration()) {}

 protected:
  bool GreedyFeasible(const Worker& w, const Task& r) const {
    return CanServe(w, r, instance().velocity(), options_.policy);
  }
  bool InGreedyPhase() const { return event_index_ < greedy_phase_; }

  /// Superset arrival-time window of any task feasible for a query at
  /// `time` (CanServe stays the authority; see simple_greedy.cc).
  StartWindow TaskWindow(double time) const {
    return StartWindow{time - max_task_duration_, time};
  }
  StartWindow WorkerWindow(double time) const {
    return StartWindow{time - max_worker_duration_, time};
  }

  /// Call after each arrival: runs the periodic lazy expiry that keeps the
  /// pools (and the matching pools) small, then advances the counter.
  /// Expired ids are erased in ascending id order — canonical across
  /// backends.
  template <typename OnWorkerGone, typename OnTaskGone>
  void FinishEvent(double now, OnWorkerGone&& worker_gone,
                   OnTaskGone&& task_gone) {
    if ((event_index_ & 1023u) == 0u) {
      SweepExpired(
          waiting_workers_, now,
          [&](int64_t id) {
            return instance().worker(static_cast<WorkerId>(id)).Deadline();
          },
          worker_gone);
      SweepExpired(
          waiting_tasks_, now,
          [&](int64_t id) {
            return instance().task(static_cast<TaskId>(id)).Deadline();
          },
          task_gone);
    }
    ++event_index_;
  }

  TgoaOptions options_;
  size_t greedy_phase_;
  size_t event_index_ = 0;
  Pool waiting_workers_;
  Pool waiting_tasks_;
  double max_radius_;
  double max_task_duration_;
  double max_worker_duration_;
  std::vector<int64_t> scratch_ids_;

 private:
  template <typename DeadlineFn, typename OnEraseFn>
  void SweepExpired(Pool& pool, double now, DeadlineFn&& deadline_of,
                    OnEraseFn&& on_erase) {
    scratch_ids_.clear();
    pool.ForEachId([&](int64_t id) {
      if (deadline_of(id) < now) scratch_ids_.push_back(id);
    });
    std::sort(scratch_ids_.begin(), scratch_ids_.end());
    for (const int64_t id : scratch_ids_) {
      pool.Erase(id);
      on_erase(id);
    }
  }
};

// Incremental mode: one DynamicBipartiteMatcher holds a maximum matching
// over the waiting (unmatched, alive) pool for the entire run. Every object
// adds its candidate edges exactly once, at insertion time (pair
// feasibility here is time-invariant, so the later endpoint of a pair
// discovers the edge); a second-phase arrival then costs one
// augmenting-path search — the guardrail "is the newcomer matched in a
// maximum matching of the revealed pool?" answered without rebuilding
// anything. Committed pairs and expired objects are deactivated in place,
// with the one-path repair restoring maximality.
template <typename Pool>
class TgoaIncrementalSession final : public TgoaSessionBase<Pool> {
  using Base = TgoaSessionBase<Pool>;
  using Base::assignment_;
  using Base::instance;
  using Base::max_radius_;
  using Base::scratch_ids_;
  using Base::trace_;
  using Base::waiting_tasks_;
  using Base::waiting_workers_;

 public:
  TgoaIncrementalSession(const Instance& inst, const TgoaOptions& options)
      : Base(inst, options),
        worker_slot_(static_cast<size_t>(inst.num_workers()), -1),
        task_slot_(static_cast<size_t>(inst.num_tasks()), -1) {
    matcher_.ReserveNodes(static_cast<size_t>(inst.num_workers()),
                          static_cast<size_t>(inst.num_tasks()));
    // Edge volume is data dependent; seed the arena with a few candidates
    // per object so steady-state growth is amortized away.
    matcher_.ReserveEdges(4 * static_cast<size_t>(inst.num_workers() +
                                                  inst.num_tasks()));
    slot_worker_.reserve(static_cast<size_t>(inst.num_workers()));
    slot_task_.reserve(static_cast<size_t>(inst.num_tasks()));
  }

  void OnWorker(WorkerId worker, double time) override {
    const Worker& w = instance().worker(worker);
    if (this->InGreedyPhase()) {
      const int64_t hit = waiting_tasks_.Nearest(
          w.location, max_radius_, time, this->TaskWindow(time),
          [&](int64_t id, double) {
            const Task& r = instance().task(static_cast<TaskId>(id));
            return this->GreedyFeasible(w, r) && r.Deadline() >= time;
          });
      if (hit >= 0) {
        assignment_.Add(w.id, static_cast<TaskId>(hit), time);
        waiting_tasks_.Erase(hit);
        matcher_.RemoveRight(task_slot_[static_cast<size_t>(hit)]);
      } else {
        EnterWorker(w);
        waiting_workers_.Insert(w.id, w.location, w.start, w.Deadline());
      }
    } else {
      const int32_t lslot = EnterWorker(w);
      if (matcher_.TryAugmentLeft(lslot)) {
        const int32_t rslot = matcher_.MatchOfLeft(lslot);
        const TaskId partner = slot_task_[static_cast<size_t>(rslot)];
        assignment_.Add(w.id, partner, time);
        matcher_.RemovePair(lslot, rslot);
        waiting_tasks_.Erase(partner);
      } else {
        waiting_workers_.Insert(w.id, w.location, w.start, w.Deadline());
      }
    }
    SweepAndCount(time);
  }

  void OnTask(TaskId task, double time) override {
    const Task& r = instance().task(task);
    if (this->InGreedyPhase()) {
      const int64_t hit = waiting_workers_.Nearest(
          r.location, max_radius_, time, this->WorkerWindow(time),
          [&](int64_t id, double) {
            const Worker& w = instance().worker(static_cast<WorkerId>(id));
            return this->GreedyFeasible(w, r) && w.Deadline() >= time;
          });
      if (hit >= 0) {
        assignment_.Add(static_cast<WorkerId>(hit), r.id, time);
        waiting_workers_.Erase(hit);
        matcher_.RemoveLeft(worker_slot_[static_cast<size_t>(hit)]);
      } else {
        EnterTask(r);
        waiting_tasks_.Insert(r.id, r.location, r.start, r.Deadline());
      }
    } else {
      const int32_t rslot = EnterTask(r);
      if (matcher_.TryAugmentRight(rslot)) {
        const int32_t lslot = matcher_.MatchOfRight(rslot);
        const WorkerId partner = slot_worker_[static_cast<size_t>(lslot)];
        assignment_.Add(partner, r.id, time);
        matcher_.RemovePair(lslot, rslot);
        waiting_workers_.Erase(partner);
      } else {
        waiting_tasks_.Insert(r.id, r.location, r.start, r.Deadline());
      }
    }
    SweepAndCount(time);
  }

  void Flush() override {
    // Fold the matcher instrumentation into the trace (delta-based, so
    // repeated Flush calls stay correct). No per-arrival reconstruction
    // happened: matcher_rebuilds untouched.
    trace_.matcher_augment_searches +=
        matcher_.augment_searches() - recorded_augment_searches_;
    recorded_augment_searches_ = matcher_.augment_searches();
  }

 private:
  /// Joins the waiting pool: node slot plus candidate edges against the
  /// opposite waiting side (computed once; feasibility never changes).
  /// Edges are added in ascending counterpart id — a canonical order,
  /// independent of the pool backend's enumeration.
  int32_t EnterWorker(const Worker& w) {
    const int32_t lslot = matcher_.AddLeft();
    worker_slot_[static_cast<size_t>(w.id)] = lslot;
    slot_worker_.push_back(w.id);
    scratch_ids_.clear();
    waiting_tasks_.ForEachInDisk(
        w.location, max_radius_, w.start, this->TaskWindow(w.start),
        [&](int64_t id, double) {
          const Task& r = instance().task(static_cast<TaskId>(id));
          if (this->GreedyFeasible(w, r)) scratch_ids_.push_back(id);
        });
    std::sort(scratch_ids_.begin(), scratch_ids_.end());
    for (const int64_t id : scratch_ids_) {
      matcher_.AddEdge(lslot, task_slot_[static_cast<size_t>(id)]);
    }
    return lslot;
  }
  int32_t EnterTask(const Task& r) {
    const int32_t rslot = matcher_.AddRight();
    task_slot_[static_cast<size_t>(r.id)] = rslot;
    slot_task_.push_back(r.id);
    scratch_ids_.clear();
    waiting_workers_.ForEachInDisk(
        r.location, max_radius_, r.start, this->WorkerWindow(r.start),
        [&](int64_t id, double) {
          const Worker& w = instance().worker(static_cast<WorkerId>(id));
          if (this->GreedyFeasible(w, r)) scratch_ids_.push_back(id);
        });
    std::sort(scratch_ids_.begin(), scratch_ids_.end());
    for (const int64_t id : scratch_ids_) {
      matcher_.AddEdge(worker_slot_[static_cast<size_t>(id)], rslot);
    }
    return rslot;
  }

  void SweepAndCount(double now) {
    this->FinishEvent(
        now,
        [&](int64_t id) {
          matcher_.RemoveLeft(worker_slot_[static_cast<size_t>(id)]);
        },
        [&](int64_t id) {
          matcher_.RemoveRight(task_slot_[static_cast<size_t>(id)]);
        });
  }

  DynamicBipartiteMatcher matcher_;  // Left = workers, right = tasks.
  std::vector<int32_t> worker_slot_;
  std::vector<int32_t> task_slot_;
  std::vector<WorkerId> slot_worker_;
  std::vector<TaskId> slot_task_;
  int64_t recorded_augment_searches_ = 0;
};

// Rebuild-per-arrival reference mode: the historical implementation, which
// reconstructs a Hopcroft-Karp instance (and re-enumerates the candidate
// edges of the whole waiting pool) for every second-phase arrival — the
// O(E sqrt(V))-per-arrival scalability weakness of [26] that POLAR's O(1)
// removes. Kept for the incremental-equivalence tests and as the baseline
// leg of the flow microbenches.
template <typename Pool>
class TgoaRebuildSession final : public TgoaSessionBase<Pool> {
  using Base = TgoaSessionBase<Pool>;
  using Base::assignment_;
  using Base::instance;
  using Base::max_radius_;
  using Base::trace_;
  using Base::waiting_tasks_;
  using Base::waiting_workers_;

 public:
  using Base::Base;

  void OnWorker(WorkerId worker, double time) override {
    const Worker& w = instance().worker(worker);
    TaskId partner = -1;
    if (this->InGreedyPhase()) {
      const int64_t hit = waiting_tasks_.Nearest(
          w.location, max_radius_, time, this->TaskWindow(time),
          [&](int64_t id, double) {
            const Task& r = instance().task(static_cast<TaskId>(id));
            return this->GreedyFeasible(w, r) && r.Deadline() >= time;
          });
      partner = hit >= 0 ? static_cast<TaskId>(hit) : -1;
    } else {
      partner = OptimalPartnerForWorker(w);
    }
    if (partner >= 0) {
      assignment_.Add(w.id, partner, time);
      waiting_tasks_.Erase(partner);
    } else {
      waiting_workers_.Insert(w.id, w.location, w.start, w.Deadline());
    }
    this->FinishEvent(time, [](int64_t) {}, [](int64_t) {});
  }

  void OnTask(TaskId task, double time) override {
    const Task& r = instance().task(task);
    WorkerId partner = -1;
    if (this->InGreedyPhase()) {
      const int64_t hit = waiting_workers_.Nearest(
          r.location, max_radius_, time, this->WorkerWindow(time),
          [&](int64_t id, double) {
            const Worker& w = instance().worker(static_cast<WorkerId>(id));
            return this->GreedyFeasible(w, r) && w.Deadline() >= time;
          });
      partner = hit >= 0 ? static_cast<WorkerId>(hit) : -1;
    } else {
      partner = OptimalPartnerForTask(r);
    }
    if (partner >= 0) {
      assignment_.Add(partner, r.id, time);
      waiting_workers_.Erase(partner);
    } else {
      waiting_tasks_.Insert(r.id, r.location, r.start, r.Deadline());
    }
    this->FinishEvent(time, [](int64_t) {}, [](int64_t) {});
  }

 private:
  /// Feasible counterpart ids of `origin` in the given pool, ascending —
  /// the canonical edge enumeration shared by both pool backends.
  template <typename OtherPool, typename FeasibleFn>
  std::vector<int64_t> SortedCandidates(OtherPool& pool, Point origin,
                                        double query_time,
                                        StartWindow window,
                                        FeasibleFn&& feasible) {
    std::vector<int64_t> ids;
    pool.ForEachInDisk(origin, max_radius_, query_time, window,
                       [&](int64_t id, double) {
                         if (feasible(id)) ids.push_back(id);
                       });
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  // Optimal-matching guardrail for the second phase: the new object is
  // committed only when it is matched in a maximum matching of all
  // currently waiting (unmatched, alive) objects plus itself. All
  // enumerations are id-sorted, so slot numbering — and hence the solved
  // matching — is canonical across pool backends.
  TaskId OptimalPartnerForWorker(const Worker& w) {
    std::vector<TaskId> right;
    std::unordered_map<int64_t, int32_t> right_slot;
    std::vector<std::pair<int32_t, int32_t>> edges;
    int32_t num_left = 0;

    auto right_index = [&](TaskId id) {
      const auto it = right_slot.find(id);
      if (it != right_slot.end()) return it->second;
      const int32_t slot = static_cast<int32_t>(right.size());
      right_slot[id] = slot;
      right.push_back(id);
      return slot;
    };
    // Edges from every waiting worker (including w) to feasible tasks.
    auto add_worker = [&](const Worker& candidate) {
      const int32_t lid = num_left++;
      for (const int64_t id : SortedCandidates(
               waiting_tasks_, candidate.location, candidate.start,
               this->TaskWindow(candidate.start), [&](int64_t task_id) {
                 return this->GreedyFeasible(
                     candidate,
                     instance().task(static_cast<TaskId>(task_id)));
               })) {
        edges.emplace_back(lid, right_index(static_cast<TaskId>(id)));
      }
    };
    add_worker(w);
    std::vector<int64_t> other_workers;
    waiting_workers_.ForEachId(
        [&](int64_t id) { other_workers.push_back(id); });
    std::sort(other_workers.begin(), other_workers.end());
    for (const int64_t id : other_workers) {
      add_worker(instance().worker(static_cast<WorkerId>(id)));
    }

    if (edges.empty()) return -1;
    ++trace_.matcher_rebuilds;
    HopcroftKarp matcher(num_left, static_cast<int32_t>(right.size()));
    matcher.ReserveEdges(edges.size());
    for (const auto& [l, r] : edges) matcher.AddEdge(l, r);
    matcher.Solve();
    const int32_t partner = matcher.MatchOfLeft(0);  // w is left node 0.
    return partner < 0 ? -1 : right[static_cast<size_t>(partner)];
  }

  WorkerId OptimalPartnerForTask(const Task& r) {
    std::vector<WorkerId> right;
    std::unordered_map<int64_t, int32_t> right_slot;
    std::vector<std::pair<int32_t, int32_t>> edges;
    int32_t num_left = 0;

    auto right_index = [&](WorkerId id) {
      const auto it = right_slot.find(id);
      if (it != right_slot.end()) return it->second;
      const int32_t slot = static_cast<int32_t>(right.size());
      right_slot[id] = slot;
      right.push_back(id);
      return slot;
    };
    auto add_task = [&](const Task& candidate) {
      const int32_t lid = num_left++;
      for (const int64_t id : SortedCandidates(
               waiting_workers_, candidate.location, candidate.start,
               this->WorkerWindow(candidate.start), [&](int64_t worker_id) {
                 return this->GreedyFeasible(
                     instance().worker(static_cast<WorkerId>(worker_id)),
                     candidate);
               })) {
        edges.emplace_back(lid, right_index(static_cast<WorkerId>(id)));
      }
    };
    add_task(r);
    std::vector<int64_t> other_tasks;
    waiting_tasks_.ForEachId(
        [&](int64_t id) { other_tasks.push_back(id); });
    std::sort(other_tasks.begin(), other_tasks.end());
    for (const int64_t id : other_tasks) {
      add_task(instance().task(static_cast<TaskId>(id)));
    }

    if (edges.empty()) return -1;
    ++trace_.matcher_rebuilds;
    HopcroftKarp matcher(num_left, static_cast<int32_t>(right.size()));
    matcher.ReserveEdges(edges.size());
    for (const auto& [l, wkr] : edges) matcher.AddEdge(l, wkr);
    matcher.Solve();
    const int32_t partner = matcher.MatchOfLeft(0);
    return partner < 0 ? -1 : right[static_cast<size_t>(partner)];
  }
};

}  // namespace

Tgoa::Tgoa(TgoaOptions options) : options_(options) {}

std::unique_ptr<AssignmentSession> Tgoa::StartSession(
    const Instance& instance) {
  if (options_.incremental_matching) {
    if (options_.retrieval == RetrievalMode::kEngine) {
      return std::make_unique<TgoaIncrementalSession<EngineWaitingPool>>(
          instance, options_);
    }
    return std::make_unique<TgoaIncrementalSession<GridWaitingPool>>(
        instance, options_);
  }
  if (options_.retrieval == RetrievalMode::kEngine) {
    return std::make_unique<TgoaRebuildSession<EngineWaitingPool>>(instance,
                                                                   options_);
  }
  return std::make_unique<TgoaRebuildSession<GridWaitingPool>>(instance,
                                                               options_);
}

}  // namespace ftoa
