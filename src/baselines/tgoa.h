// TGOA (Tong et al., "Online mobile micro-task allocation in spatial
// crowdsourcing", ICDE 2016 — reference [26], the state of the art the
// paper improves upon): a two-sided online algorithm with a 1/4 competitive
// ratio under the random-order model. The first half of arrivals is served
// greedily (nearest feasible counterpart); every later arrival is matched
// only if it participates in an optimal matching of all currently revealed
// unmatched objects — the classical "sample-and-price" guardrail.
//
// Implemented here as an *extension* baseline (the paper compares against
// SimpleGreedy and GR only): it contextualizes the POLAR family against its
// direct predecessor, including the predecessor's main practical weakness —
// recomputing a maximum matching per arrival in the second phase.

#ifndef FTOA_BASELINES_TGOA_H_
#define FTOA_BASELINES_TGOA_H_

#include "core/online_algorithm.h"
#include "retrieval/mode.h"

namespace ftoa {

/// Options for TGOA.
struct TgoaOptions {
  /// Fraction of the total arrival count treated as the greedy phase.
  double greedy_fraction = 0.5;

  /// Pair feasibility; wait-in-place semantics by default, matching the
  /// model of [26] (workers do not relocate).
  FeasibilityPolicy policy = FeasibilityPolicy::kDispatchAtAssignmentTime;

  /// Default: carry one incremental matcher across the whole run — each
  /// second-phase arrival costs one augmenting-path search over the waiting
  /// pool instead of a from-scratch Hopcroft-Karp per arrival (the [26]
  /// weakness this baseline previously reproduced *too* faithfully).
  /// Disable to get the historical rebuild-per-arrival reference, used by
  /// the incremental-equivalence tests; RunTrace::matcher_rebuilds tells
  /// the two apart.
  bool incremental_matching = true;

  /// kEngine backs both waiting pools with the shared retrieval engine
  /// (deadline/time-window pruning, per-query stats in the RunTrace)
  /// instead of the raw grid index. Candidate enumeration is canonicalized
  /// (id-sorted) before any matcher sees it, so the assignment is
  /// bit-identical across modes.
  RetrievalMode retrieval = RetrievalMode::kLinear;
};

/// The TGOA baseline.
class Tgoa : public OnlineAlgorithm {
 public:
  explicit Tgoa(TgoaOptions options = {});

  std::string name() const override { return "TGOA"; }
  FeasibilityPolicy feasibility_policy() const override {
    return options_.policy;
  }

  std::unique_ptr<AssignmentSession> StartSession(
      const Instance& instance) override;

 private:
  TgoaOptions options_;
};

}  // namespace ftoa

#endif  // FTOA_BASELINES_TGOA_H_
