// GR (To et al., "A server-assigned spatial crowdsourcing framework", ACM
// TSAS 2015 — reference [24] of the paper): the platform gathers the objects
// arriving within a time window and, at each window boundary, computes a
// maximum-cardinality matching among all currently-alive unmatched workers
// and tasks (wait-in-place semantics). Matched pairs are committed; the
// rest carry over to later windows until their deadlines pass.

#ifndef FTOA_BASELINES_GR_BATCH_H_
#define FTOA_BASELINES_GR_BATCH_H_

#include "core/online_algorithm.h"

namespace ftoa {

/// Options for the GR baseline.
struct GrBatchOptions {
  /// Window length in time units; <= 0 means "a quarter of a time slot",
  /// which keeps the batching benefit (maximum matching per window) ahead
  /// of the expiry cost for the paper's deadline ranges.
  double window = 0.0;

  /// Pair feasibility. The default models wait-in-place literally: a
  /// matched worker departs at the window boundary where the batch match is
  /// decided. kDispatchAtWorkerStart applies Definition 4's formula
  /// verbatim instead (ablation knob).
  FeasibilityPolicy policy = FeasibilityPolicy::kDispatchAtAssignmentTime;

  /// Default: carry one incremental matcher across windows — each window
  /// only inserts the new arrivals' nodes/edges and re-augments for them,
  /// instead of re-enumerating every pooled worker's candidates and
  /// rebuilding a Hopcroft-Karp instance per window. Sound because matched
  /// pairs leave the pool at once: leftovers are pairwise infeasible, so
  /// every edge of the next window's graph touches a new arrival. Disable
  /// for the rebuild-per-window reference used by the equivalence tests;
  /// RunTrace::matcher_rebuilds tells the two apart.
  bool incremental_matching = true;
};

/// The GR batched-matching baseline.
class GrBatch : public OnlineAlgorithm {
 public:
  explicit GrBatch(GrBatchOptions options = {});

  std::string name() const override { return "GR"; }
  FeasibilityPolicy feasibility_policy() const override {
    return options_.policy;
  }

  std::unique_ptr<AssignmentSession> StartSession(
      const Instance& instance) override;

 private:
  GrBatchOptions options_;
};

}  // namespace ftoa

#endif  // FTOA_BASELINES_GR_BATCH_H_
