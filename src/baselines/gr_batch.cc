#include "baselines/gr_batch.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "flow/dynamic_matching.h"
#include "flow/hopcroft_karp.h"
#include "model/arrival_stream.h"
#include "spatial/grid_index.h"

namespace ftoa {

GrBatch::GrBatch(GrBatchOptions options) : options_(options) {}

Assignment GrBatch::DoRun(const Instance& instance, RunTrace* trace) {
  return options_.incremental_matching ? RunIncremental(instance, trace)
                                       : RunRebuild(instance, trace);
}

// Incremental mode: one DynamicBipartiteMatcher carries the pool across
// window boundaries. Key structural fact making this sound: GR commits
// every matched pair at the boundary where it was matched, so the objects
// carried over are exactly the exposed nodes of a maximum matching — which
// are pairwise non-adjacent (an edge between two exposed nodes would have
// been a length-1 augmenting path). Feasibility only tightens as the
// boundary advances, so no edge between two carried-over objects can ever
// (re)appear: every edge of a window's bipartite graph touches an object
// that arrived in that window. Hence inserting the new arrivals' nodes and
// edges and augmenting from the workers those edges touch reproduces a
// maximum matching of the full window graph, at a per-window cost
// proportional to the new arrivals' edges.
Assignment GrBatch::RunIncremental(const Instance& instance,
                                   RunTrace* trace) {
  const double velocity = instance.velocity();
  Assignment assignment(instance.num_workers(), instance.num_tasks());

  const double window =
      options_.window > 0.0
          ? options_.window
          : 0.25 * instance.spacetime().slots().slot_duration();
  const double horizon = instance.spacetime().slots().horizon();
  const double max_dr = instance.MaxTaskDuration();
  const double radius = max_dr * velocity;

  std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
  size_t next_event = 0;

  // Unmatched objects alive on the platform, carried across windows. Both
  // sides are spatially indexed: tasks for the new-worker edge queries,
  // workers for the new-task edge queries.
  std::vector<WorkerId> pool_workers;
  std::vector<TaskId> pool_tasks;
  GridIndex task_index(instance.spacetime().grid());
  GridIndex worker_index(instance.spacetime().grid());

  DynamicBipartiteMatcher matcher;  // Left = workers, right = tasks.
  matcher.ReserveNodes(static_cast<size_t>(instance.num_workers()),
                       static_cast<size_t>(instance.num_tasks()));
  // Edge volume is data dependent; seed the arena with a few candidates
  // per object so steady-state growth is amortized away.
  matcher.ReserveEdges(4 * static_cast<size_t>(instance.num_workers() +
                                               instance.num_tasks()));
  std::vector<int32_t> worker_slot(
      static_cast<size_t>(instance.num_workers()), -1);
  std::vector<int32_t> task_slot(static_cast<size_t>(instance.num_tasks()),
                                 -1);
  std::vector<WorkerId> slot_worker;
  std::vector<TaskId> slot_task;
  // Workers whose candidate set changed this window (new arrivals plus
  // carried-over workers adjacent to a new task); matched by window number.
  std::vector<int32_t> dirty_slots;
  std::vector<int32_t> dirty_window;

  std::vector<WorkerId> new_workers;
  std::vector<TaskId> new_tasks;

  const int num_windows =
      static_cast<int>(std::ceil((horizon + max_dr) / window)) + 1;

  for (int k = 1; k <= num_windows; ++k) {
    const double boundary = k * window;
    // Absorb every arrival up to this boundary.
    new_workers.clear();
    new_tasks.clear();
    while (next_event < events.size() &&
           events[next_event].time <= boundary) {
      const ArrivalEvent& event = events[next_event++];
      if (event.kind == ObjectKind::kWorker) {
        new_workers.push_back(event.index);
      } else {
        new_tasks.push_back(event.index);
      }
    }

    // Evict expired carried-over objects.
    auto worker_dead = [&](WorkerId id) {
      return instance.worker(id).Deadline() <= boundary;
    };
    auto task_dead = [&](TaskId id) {
      // A task is hopeless once even a co-located worker departing now
      // would miss its deadline.
      return instance.task(id).Deadline() < boundary;
    };
    pool_workers.erase(
        std::remove_if(pool_workers.begin(), pool_workers.end(),
                       [&](WorkerId id) {
                         if (!worker_dead(id)) return false;
                         worker_index.Erase(id);
                         matcher.RemoveLeft(
                             worker_slot[static_cast<size_t>(id)]);
                         return true;
                       }),
        pool_workers.end());
    for (size_t i = 0; i < pool_tasks.size();) {
      if (task_dead(pool_tasks[i])) {
        task_index.Erase(pool_tasks[i]);
        matcher.RemoveRight(
            task_slot[static_cast<size_t>(pool_tasks[i])]);
        pool_tasks[i] = pool_tasks.back();
        pool_tasks.pop_back();
      } else {
        ++i;
      }
    }

    // Edge feasibility at this boundary. Workers depart at the boundary,
    // so an edge requires boundary + d <= Sr + Dr and Sr < Sw + Dw.
    auto edge_ok = [&](const Worker& w, const Task& r, double d) {
      if (!(r.start < w.Deadline())) return false;
      if (options_.policy == FeasibilityPolicy::kDispatchAtAssignmentTime) {
        // The batch decision is made at the boundary; the worker departs
        // then.
        return boundary + d / velocity <= r.Deadline();
      }
      return CanServe(w, r, velocity, options_.policy);
    };
    auto mark_dirty = [&](int32_t lslot) {
      if (dirty_window[static_cast<size_t>(lslot)] == k) return;
      dirty_window[static_cast<size_t>(lslot)] = k;
      dirty_slots.push_back(lslot);
    };
    dirty_slots.clear();

    // New tasks first: their edges to carried-over workers (the worker
    // index does not hold this window's workers yet, so no duplicates with
    // the new-worker pass below).
    for (TaskId id : new_tasks) {
      if (task_dead(id)) continue;  // Expired within its arrival window.
      const Task& r = instance.task(id);
      const int32_t rslot = matcher.AddRight();
      task_slot[static_cast<size_t>(id)] = rslot;
      if (static_cast<size_t>(rslot) >= slot_task.size()) {
        slot_task.resize(static_cast<size_t>(rslot) + 1);
      }
      slot_task[static_cast<size_t>(rslot)] = id;
      pool_tasks.push_back(id);
      task_index.Insert(id, r.location);
      worker_index.ForEachInDisk(
          r.location, radius, [&](const IndexedPoint& entry, double d) {
            const Worker& w =
                instance.worker(static_cast<WorkerId>(entry.id));
            if (edge_ok(w, r, d)) {
              const int32_t lslot = worker_slot[static_cast<size_t>(w.id)];
              matcher.AddEdge(lslot, rslot);
              if (dirty_window.size() <= static_cast<size_t>(lslot)) {
                dirty_window.resize(static_cast<size_t>(lslot) + 1, 0);
              }
              mark_dirty(lslot);
            }
          });
    }
    // Then new workers, against the full task pool (old + this window's).
    for (WorkerId id : new_workers) {
      if (worker_dead(id)) continue;
      const Worker& w = instance.worker(id);
      const int32_t lslot = matcher.AddLeft();
      worker_slot[static_cast<size_t>(id)] = lslot;
      if (static_cast<size_t>(lslot) >= slot_worker.size()) {
        slot_worker.resize(static_cast<size_t>(lslot) + 1);
      }
      slot_worker[static_cast<size_t>(lslot)] = id;
      if (dirty_window.size() <= static_cast<size_t>(lslot)) {
        dirty_window.resize(static_cast<size_t>(lslot) + 1, 0);
      }
      pool_workers.push_back(id);
      worker_index.Insert(id, w.location);
      task_index.ForEachInDisk(
          w.location, radius, [&](const IndexedPoint& entry, double d) {
            const Task& r = instance.task(static_cast<TaskId>(entry.id));
            if (edge_ok(w, r, d)) {
              matcher.AddEdge(lslot, task_slot[static_cast<size_t>(r.id)]);
              mark_dirty(lslot);
            }
          });
      mark_dirty(lslot);  // New workers always get an augmentation try.
    }

    // Re-augment only for the workers the new edges touch. The pool
    // matching is empty at this point (matched pairs were committed and
    // removed), so Kuhn attempts over the dirty workers produce a maximum
    // matching of the window graph. Augment in slot (= arrival) order:
    // sequential Kuhn never un-matches an earlier root, so ties between
    // equal-cardinality matchings break toward the longest-waiting
    // workers — the same bias the rebuild mode gets from Hopcroft-Karp's
    // pool-order processing. Without it, fresh workers win the tasks and
    // the older ones expire unmatched, which measurably lowers the total
    // matched count over a full trace.
    std::sort(dirty_slots.begin(), dirty_slots.end());
    for (const int32_t lslot : dirty_slots) {
      if (matcher.LeftActive(lslot) && matcher.MatchOfLeft(lslot) < 0) {
        matcher.TryAugmentLeft(lslot);
      }
    }

    // Commit the matched pairs and shrink the pools. Every matched worker
    // is dirty (augmentation started and re-routed only within this
    // window's edge set).
    bool committed = false;
    for (const int32_t lslot : dirty_slots) {
      if (!matcher.LeftActive(lslot)) continue;
      const int32_t rslot = matcher.MatchOfLeft(lslot);
      if (rslot < 0) continue;
      const WorkerId wid = slot_worker[static_cast<size_t>(lslot)];
      const TaskId tid = slot_task[static_cast<size_t>(rslot)];
      assignment.Add(wid, tid, boundary);
      matcher.RemovePair(lslot, rslot);
      worker_index.Erase(wid);
      task_index.Erase(tid);
      committed = true;
    }
    if (committed) {
      pool_workers.erase(
          std::remove_if(pool_workers.begin(), pool_workers.end(),
                         [&](WorkerId id) {
                           return !matcher.LeftActive(
                               worker_slot[static_cast<size_t>(id)]);
                         }),
          pool_workers.end());
      pool_tasks.erase(
          std::remove_if(pool_tasks.begin(), pool_tasks.end(),
                         [&](TaskId id) {
                           return !matcher.RightActive(
                               task_slot[static_cast<size_t>(id)]);
                         }),
          pool_tasks.end());
    }
  }
  if (trace != nullptr) {
    trace->matcher_augment_searches += matcher.augment_searches();
    // No per-window reconstruction happened: matcher_rebuilds untouched.
  }
  return assignment;
}

// Rebuild-per-window reference mode: the historical implementation, which
// re-enumerates every pooled worker's candidates and constructs a fresh
// Hopcroft-Karp instance at each window boundary. Kept for the
// incremental-equivalence tests.
Assignment GrBatch::RunRebuild(const Instance& instance, RunTrace* trace) {
  const double velocity = instance.velocity();
  Assignment assignment(instance.num_workers(), instance.num_tasks());

  const double window =
      options_.window > 0.0
          ? options_.window
          : 0.25 * instance.spacetime().slots().slot_duration();
  const double horizon = instance.spacetime().slots().horizon();
  const double max_dr = instance.MaxTaskDuration();

  std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
  size_t next_event = 0;

  // Unmatched objects alive on the platform, carried across windows.
  std::vector<WorkerId> pool_workers;
  std::vector<TaskId> pool_tasks;
  // Tasks are indexed spatially so per-worker candidate enumeration in a
  // batch is a disk query instead of a full cross product.
  GridIndex task_index(instance.spacetime().grid());

  const int num_windows =
      static_cast<int>(std::ceil((horizon + max_dr) / window)) + 1;

  for (int k = 1; k <= num_windows; ++k) {
    const double boundary = k * window;
    // Absorb every arrival up to this boundary.
    while (next_event < events.size() &&
           events[next_event].time <= boundary) {
      const ArrivalEvent& event = events[next_event++];
      if (event.kind == ObjectKind::kWorker) {
        pool_workers.push_back(event.index);
      } else {
        pool_tasks.push_back(event.index);
        task_index.Insert(event.index,
                          instance.task(event.index).location);
      }
    }

    // Evict expired objects.
    auto worker_dead = [&](WorkerId id) {
      return instance.worker(id).Deadline() <= boundary;
    };
    auto task_dead = [&](TaskId id) {
      // A task is hopeless once even a co-located worker departing now
      // would miss its deadline.
      return instance.task(id).Deadline() < boundary;
    };
    pool_workers.erase(
        std::remove_if(pool_workers.begin(), pool_workers.end(), worker_dead),
        pool_workers.end());
    for (size_t i = 0; i < pool_tasks.size();) {
      if (task_dead(pool_tasks[i])) {
        task_index.Erase(pool_tasks[i]);
        pool_tasks[i] = pool_tasks.back();
        pool_tasks.pop_back();
      } else {
        ++i;
      }
    }
    if (pool_workers.empty() || pool_tasks.empty()) continue;

    // Build the batch bipartite graph. Workers depart at the boundary, so
    // an edge requires boundary + d <= Sr + Dr and Sr < Sw + Dw.
    std::unordered_map<int64_t, int32_t> task_slot;  // TaskId -> right index.
    std::vector<TaskId> right_tasks;
    // Hopcroft-Karp needs right-side cardinality up front; build edges first.
    struct PendingEdge {
      int32_t left;
      TaskId task;
    };
    std::vector<PendingEdge> pending;
    pending.reserve(4 * pool_workers.size());
    for (size_t wi = 0; wi < pool_workers.size(); ++wi) {
      const Worker& w = instance.worker(pool_workers[wi]);
      // Pool tasks arrived at or before the boundary, so the arrival
      // condition boundary + d/v <= Sr + Dr implies d <= max_dr * v.
      task_index.ForEachInDisk(
          w.location, max_dr * velocity,
          [&](const IndexedPoint& entry, double d) {
            const Task& r = instance.task(static_cast<TaskId>(entry.id));
            if (!(r.start < w.Deadline())) return;
            if (options_.policy ==
                FeasibilityPolicy::kDispatchAtAssignmentTime) {
              // The batch decision is made at the boundary; the worker
              // departs then.
              if (boundary + d / velocity > r.Deadline()) return;
            } else if (!CanServe(w, r, velocity, options_.policy)) {
              return;
            }
            pending.push_back(
                PendingEdge{static_cast<int32_t>(wi),
                            static_cast<TaskId>(entry.id)});
          });
    }
    if (pending.empty()) continue;
    for (const PendingEdge& edge : pending) {
      if (task_slot.find(edge.task) == task_slot.end()) {
        task_slot[edge.task] = static_cast<int32_t>(right_tasks.size());
        right_tasks.push_back(edge.task);
      }
    }
    if (trace != nullptr) ++trace->matcher_rebuilds;
    HopcroftKarp hk(static_cast<int32_t>(pool_workers.size()),
                    static_cast<int32_t>(right_tasks.size()));
    hk.ReserveEdges(pending.size());
    for (const PendingEdge& edge : pending) {
      hk.AddEdge(edge.left, task_slot[edge.task]);
    }
    hk.Solve();

    // Commit the matched pairs and shrink the pools.
    std::vector<WorkerId> next_workers;
    next_workers.reserve(pool_workers.size());
    for (size_t wi = 0; wi < pool_workers.size(); ++wi) {
      const int32_t right = hk.MatchOfLeft(static_cast<int32_t>(wi));
      if (right >= 0) {
        const TaskId task = right_tasks[static_cast<size_t>(right)];
        assignment.Add(pool_workers[wi], task, boundary);
        task_index.Erase(task);
      } else {
        next_workers.push_back(pool_workers[wi]);
      }
    }
    pool_workers.swap(next_workers);
    pool_tasks.erase(
        std::remove_if(pool_tasks.begin(), pool_tasks.end(),
                       [&](TaskId id) { return assignment.IsTaskMatched(id); }),
        pool_tasks.end());
  }
  return assignment;
}

}  // namespace ftoa
