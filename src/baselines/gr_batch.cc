#include "baselines/gr_batch.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "flow/hopcroft_karp.h"
#include "model/arrival_stream.h"
#include "spatial/grid_index.h"

namespace ftoa {

GrBatch::GrBatch(GrBatchOptions options) : options_(options) {}

Assignment GrBatch::DoRun(const Instance& instance, RunTrace* trace) {
  (void)trace;  // GR never relocates workers.
  const double velocity = instance.velocity();
  Assignment assignment(instance.num_workers(), instance.num_tasks());

  const double window =
      options_.window > 0.0
          ? options_.window
          : 0.25 * instance.spacetime().slots().slot_duration();
  const double horizon = instance.spacetime().slots().horizon();
  const double max_dr = instance.MaxTaskDuration();

  std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
  size_t next_event = 0;

  // Unmatched objects alive on the platform, carried across windows.
  std::vector<WorkerId> pool_workers;
  std::vector<TaskId> pool_tasks;
  // Tasks are indexed spatially so per-worker candidate enumeration in a
  // batch is a disk query instead of a full cross product.
  GridIndex task_index(instance.spacetime().grid());

  const int num_windows =
      static_cast<int>(std::ceil((horizon + max_dr) / window)) + 1;

  for (int k = 1; k <= num_windows; ++k) {
    const double boundary = k * window;
    // Absorb every arrival up to this boundary.
    while (next_event < events.size() &&
           events[next_event].time <= boundary) {
      const ArrivalEvent& event = events[next_event++];
      if (event.kind == ObjectKind::kWorker) {
        pool_workers.push_back(event.index);
      } else {
        pool_tasks.push_back(event.index);
        task_index.Insert(event.index,
                          instance.task(event.index).location);
      }
    }

    // Evict expired objects.
    auto worker_dead = [&](WorkerId id) {
      return instance.worker(id).Deadline() <= boundary;
    };
    auto task_dead = [&](TaskId id) {
      // A task is hopeless once even a co-located worker departing now
      // would miss its deadline.
      return instance.task(id).Deadline() < boundary;
    };
    pool_workers.erase(
        std::remove_if(pool_workers.begin(), pool_workers.end(), worker_dead),
        pool_workers.end());
    for (size_t i = 0; i < pool_tasks.size();) {
      if (task_dead(pool_tasks[i])) {
        task_index.Erase(pool_tasks[i]);
        pool_tasks[i] = pool_tasks.back();
        pool_tasks.pop_back();
      } else {
        ++i;
      }
    }
    if (pool_workers.empty() || pool_tasks.empty()) continue;

    // Build the batch bipartite graph. Workers depart at the boundary, so
    // an edge requires boundary + d <= Sr + Dr and Sr < Sw + Dw.
    std::unordered_map<int64_t, int32_t> task_slot;  // TaskId -> right index.
    std::vector<TaskId> right_tasks;
    // Hopcroft-Karp needs right-side cardinality up front; build edges first.
    struct PendingEdge {
      int32_t left;
      TaskId task;
    };
    std::vector<PendingEdge> pending;
    for (size_t wi = 0; wi < pool_workers.size(); ++wi) {
      const Worker& w = instance.worker(pool_workers[wi]);
      // Pool tasks arrived at or before the boundary, so the arrival
      // condition boundary + d/v <= Sr + Dr implies d <= max_dr * v.
      task_index.ForEachInDisk(
          w.location, max_dr * velocity,
          [&](const IndexedPoint& entry, double d) {
            const Task& r = instance.task(static_cast<TaskId>(entry.id));
            if (!(r.start < w.Deadline())) return;
            if (options_.policy ==
                FeasibilityPolicy::kDispatchAtAssignmentTime) {
              // The batch decision is made at the boundary; the worker
              // departs then.
              if (boundary + d / velocity > r.Deadline()) return;
            } else if (!CanServe(w, r, velocity, options_.policy)) {
              return;
            }
            pending.push_back(
                PendingEdge{static_cast<int32_t>(wi),
                            static_cast<TaskId>(entry.id)});
          });
    }
    if (pending.empty()) continue;
    for (const PendingEdge& edge : pending) {
      if (task_slot.find(edge.task) == task_slot.end()) {
        task_slot[edge.task] = static_cast<int32_t>(right_tasks.size());
        right_tasks.push_back(edge.task);
      }
    }
    HopcroftKarp hk(static_cast<int32_t>(pool_workers.size()),
                    static_cast<int32_t>(right_tasks.size()));
    hk.ReserveEdges(pending.size());
    for (const PendingEdge& edge : pending) {
      hk.AddEdge(edge.left, task_slot[edge.task]);
    }
    hk.Solve();

    // Commit the matched pairs and shrink the pools.
    std::vector<WorkerId> next_workers;
    next_workers.reserve(pool_workers.size());
    for (size_t wi = 0; wi < pool_workers.size(); ++wi) {
      const int32_t right = hk.MatchOfLeft(static_cast<int32_t>(wi));
      if (right >= 0) {
        const TaskId task = right_tasks[static_cast<size_t>(right)];
        assignment.Add(pool_workers[wi], task, boundary);
        task_index.Erase(task);
      } else {
        next_workers.push_back(pool_workers[wi]);
      }
    }
    pool_workers.swap(next_workers);
    pool_tasks.erase(
        std::remove_if(pool_tasks.begin(), pool_tasks.end(),
                       [&](TaskId id) { return assignment.IsTaskMatched(id); }),
        pool_tasks.end());
  }
  return assignment;
}

}  // namespace ftoa
