#include "baselines/gr_batch.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <vector>

#include "flow/dynamic_matching.h"
#include "flow/hopcroft_karp.h"
#include "spatial/grid_index.h"

namespace ftoa {

namespace {

/// An arrival buffered until its window's boundary passes.
struct PendingArrival {
  double time = 0.0;
  bool is_worker = false;
  int32_t id = -1;
};

/// Shared windowing skeleton of both GR modes. Arrivals are buffered in
/// stream order; a window k (boundary = k * window) is processed once the
/// caller proves no earlier arrival can follow — by feeding an arrival
/// later than the boundary, calling AdvanceTo past it, or flushing. A
/// window absorbs every buffered arrival with time <= its boundary, so the
/// assignment is bit-identical to the batch replay that drained the whole
/// stream window by window.
class GrSessionBase : public AssignmentSessionBase {
 public:
  GrSessionBase(const Instance& instance, const GrBatchOptions& options)
      : AssignmentSessionBase(instance),
        options_(options),
        window_(options.window > 0.0
                    ? options.window
                    : 0.25 *
                          instance.spacetime().slots().slot_duration()),
        num_windows_(static_cast<int>(std::ceil(
                         (instance.spacetime().slots().horizon() +
                          instance.MaxTaskDuration()) /
                         window_)) +
                     1) {}

  void OnWorker(WorkerId worker, double time) override {
    CatchUpTo(time);
    pending_.push_back(PendingArrival{time, true, worker});
  }

  void OnTask(TaskId task, double time) override {
    CatchUpTo(time);
    pending_.push_back(PendingArrival{time, false, task});
  }

  void AdvanceTo(double time) override { CatchUpTo(time); }

  void Flush() override {
    while (next_window_ <= num_windows_) ProcessWindow(next_window_++);
    OnFlushed();
  }

 protected:
  virtual void ProcessWindow(int k) = 0;
  /// Post-flush hook (instrumentation fold-in); may run more than once.
  virtual void OnFlushed() {}

  /// Pops every buffered arrival with time <= `boundary`, in stream order.
  template <typename WorkerFn, typename TaskFn>
  void AbsorbUpTo(double boundary, WorkerFn&& on_worker, TaskFn&& on_task) {
    while (!pending_.empty() && pending_.front().time <= boundary) {
      const PendingArrival& arrival = pending_.front();
      if (arrival.is_worker) {
        on_worker(static_cast<WorkerId>(arrival.id));
      } else {
        on_task(static_cast<TaskId>(arrival.id));
      }
      pending_.pop_front();
    }
  }

  double boundary_of(int k) const { return k * window_; }

  GrBatchOptions options_;
  double window_;
  int num_windows_;
  int next_window_ = 1;

 private:
  /// Processes every window whose boundary lies strictly before `time`: an
  /// arrival at exactly a boundary still belongs to that window, so the
  /// window stays open until a strictly later timestamp is seen.
  void CatchUpTo(double time) {
    while (next_window_ <= num_windows_ &&
           boundary_of(next_window_) < time) {
      ProcessWindow(next_window_++);
    }
  }

  std::deque<PendingArrival> pending_;
};

// Incremental mode: one DynamicBipartiteMatcher carries the pool across
// window boundaries. Key structural fact making this sound: GR commits
// every matched pair at the boundary where it was matched, so the objects
// carried over are exactly the exposed nodes of a maximum matching — which
// are pairwise non-adjacent (an edge between two exposed nodes would have
// been a length-1 augmenting path). Feasibility only tightens as the
// boundary advances, so no edge between two carried-over objects can ever
// (re)appear: every edge of a window's bipartite graph touches an object
// that arrived in that window. Hence inserting the new arrivals' nodes and
// edges and augmenting from the workers those edges touch reproduces a
// maximum matching of the full window graph, at a per-window cost
// proportional to the new arrivals' edges.
class GrIncrementalSession final : public GrSessionBase {
 public:
  GrIncrementalSession(const Instance& instance,
                       const GrBatchOptions& options)
      : GrSessionBase(instance, options),
        radius_(instance.MaxTaskDuration() * instance.velocity()),
        task_index_(instance.spacetime().grid()),
        worker_index_(instance.spacetime().grid()),
        worker_slot_(static_cast<size_t>(instance.num_workers()), -1),
        task_slot_(static_cast<size_t>(instance.num_tasks()), -1) {
    matcher_.ReserveNodes(static_cast<size_t>(instance.num_workers()),
                          static_cast<size_t>(instance.num_tasks()));
    // Edge volume is data dependent; seed the arena with a few candidates
    // per object so steady-state growth is amortized away.
    matcher_.ReserveEdges(4 * static_cast<size_t>(instance.num_workers() +
                                                  instance.num_tasks()));
  }

 protected:
  void ProcessWindow(int k) override {
    const double boundary = boundary_of(k);
    const double velocity = instance().velocity();

    // Absorb every arrival up to this boundary.
    new_workers_.clear();
    new_tasks_.clear();
    AbsorbUpTo(
        boundary, [&](WorkerId id) { new_workers_.push_back(id); },
        [&](TaskId id) { new_tasks_.push_back(id); });

    // Evict expired carried-over objects.
    auto worker_dead = [&](WorkerId id) {
      return instance().worker(id).Deadline() <= boundary;
    };
    auto task_dead = [&](TaskId id) {
      // A task is hopeless once even a co-located worker departing now
      // would miss its deadline.
      return instance().task(id).Deadline() < boundary;
    };
    pool_workers_.erase(
        std::remove_if(pool_workers_.begin(), pool_workers_.end(),
                       [&](WorkerId id) {
                         if (!worker_dead(id)) return false;
                         worker_index_.Erase(id);
                         matcher_.RemoveLeft(
                             worker_slot_[static_cast<size_t>(id)]);
                         return true;
                       }),
        pool_workers_.end());
    for (size_t i = 0; i < pool_tasks_.size();) {
      if (task_dead(pool_tasks_[i])) {
        task_index_.Erase(pool_tasks_[i]);
        matcher_.RemoveRight(
            task_slot_[static_cast<size_t>(pool_tasks_[i])]);
        pool_tasks_[i] = pool_tasks_.back();
        pool_tasks_.pop_back();
      } else {
        ++i;
      }
    }

    // Edge feasibility at this boundary. Workers depart at the boundary,
    // so an edge requires boundary + d <= Sr + Dr and Sr < Sw + Dw.
    auto edge_ok = [&](const Worker& w, const Task& r, double d) {
      if (!(r.start < w.Deadline())) return false;
      if (options_.policy == FeasibilityPolicy::kDispatchAtAssignmentTime) {
        // The batch decision is made at the boundary; the worker departs
        // then.
        return boundary + d / velocity <= r.Deadline();
      }
      return CanServe(w, r, velocity, options_.policy);
    };
    auto mark_dirty = [&](int32_t lslot) {
      if (dirty_window_[static_cast<size_t>(lslot)] == k) return;
      dirty_window_[static_cast<size_t>(lslot)] = k;
      dirty_slots_.push_back(lslot);
    };
    dirty_slots_.clear();

    // New tasks first: their edges to carried-over workers (the worker
    // index does not hold this window's workers yet, so no duplicates with
    // the new-worker pass below).
    for (TaskId id : new_tasks_) {
      if (task_dead(id)) continue;  // Expired within its arrival window.
      const Task& r = instance().task(id);
      const int32_t rslot = matcher_.AddRight();
      task_slot_[static_cast<size_t>(id)] = rslot;
      if (static_cast<size_t>(rslot) >= slot_task_.size()) {
        slot_task_.resize(static_cast<size_t>(rslot) + 1);
      }
      slot_task_[static_cast<size_t>(rslot)] = id;
      pool_tasks_.push_back(id);
      task_index_.Insert(id, r.location);
      worker_index_.ForEachInDisk(
          r.location, radius_, [&](const IndexedPoint& entry, double d) {
            const Worker& w =
                instance().worker(static_cast<WorkerId>(entry.id));
            if (edge_ok(w, r, d)) {
              const int32_t lslot = worker_slot_[static_cast<size_t>(w.id)];
              matcher_.AddEdge(lslot, rslot);
              if (dirty_window_.size() <= static_cast<size_t>(lslot)) {
                dirty_window_.resize(static_cast<size_t>(lslot) + 1, 0);
              }
              mark_dirty(lslot);
            }
          });
    }
    // Then new workers, against the full task pool (old + this window's).
    for (WorkerId id : new_workers_) {
      if (worker_dead(id)) continue;
      const Worker& w = instance().worker(id);
      const int32_t lslot = matcher_.AddLeft();
      worker_slot_[static_cast<size_t>(id)] = lslot;
      if (static_cast<size_t>(lslot) >= slot_worker_.size()) {
        slot_worker_.resize(static_cast<size_t>(lslot) + 1);
      }
      slot_worker_[static_cast<size_t>(lslot)] = id;
      if (dirty_window_.size() <= static_cast<size_t>(lslot)) {
        dirty_window_.resize(static_cast<size_t>(lslot) + 1, 0);
      }
      pool_workers_.push_back(id);
      worker_index_.Insert(id, w.location);
      task_index_.ForEachInDisk(
          w.location, radius_, [&](const IndexedPoint& entry, double d) {
            const Task& r = instance().task(static_cast<TaskId>(entry.id));
            if (edge_ok(w, r, d)) {
              matcher_.AddEdge(lslot,
                               task_slot_[static_cast<size_t>(r.id)]);
              mark_dirty(lslot);
            }
          });
      mark_dirty(lslot);  // New workers always get an augmentation try.
    }

    // Re-augment only for the workers the new edges touch. The pool
    // matching is empty at this point (matched pairs were committed and
    // removed), so Kuhn attempts over the dirty workers produce a maximum
    // matching of the window graph. Augment in slot (= arrival) order:
    // sequential Kuhn never un-matches an earlier root, so ties between
    // equal-cardinality matchings break toward the longest-waiting
    // workers — the same bias the rebuild mode gets from Hopcroft-Karp's
    // pool-order processing. Without it, fresh workers win the tasks and
    // the older ones expire unmatched, which measurably lowers the total
    // matched count over a full trace.
    std::sort(dirty_slots_.begin(), dirty_slots_.end());
    for (const int32_t lslot : dirty_slots_) {
      if (matcher_.LeftActive(lslot) && matcher_.MatchOfLeft(lslot) < 0) {
        matcher_.TryAugmentLeft(lslot);
      }
    }

    // Commit the matched pairs and shrink the pools. Every matched worker
    // is dirty (augmentation started and re-routed only within this
    // window's edge set).
    bool committed = false;
    for (const int32_t lslot : dirty_slots_) {
      if (!matcher_.LeftActive(lslot)) continue;
      const int32_t rslot = matcher_.MatchOfLeft(lslot);
      if (rslot < 0) continue;
      const WorkerId wid = slot_worker_[static_cast<size_t>(lslot)];
      const TaskId tid = slot_task_[static_cast<size_t>(rslot)];
      assignment_.Add(wid, tid, boundary);
      matcher_.RemovePair(lslot, rslot);
      worker_index_.Erase(wid);
      task_index_.Erase(tid);
      committed = true;
    }
    if (committed) {
      pool_workers_.erase(
          std::remove_if(pool_workers_.begin(), pool_workers_.end(),
                         [&](WorkerId id) {
                           return !matcher_.LeftActive(
                               worker_slot_[static_cast<size_t>(id)]);
                         }),
          pool_workers_.end());
      pool_tasks_.erase(
          std::remove_if(pool_tasks_.begin(), pool_tasks_.end(),
                         [&](TaskId id) {
                           return !matcher_.RightActive(
                               task_slot_[static_cast<size_t>(id)]);
                         }),
          pool_tasks_.end());
    }
  }

  void OnFlushed() override {
    // Fold the matcher instrumentation into the trace (delta-based, so
    // repeated Flush calls stay correct). No per-window reconstruction
    // happened: matcher_rebuilds untouched.
    trace_.matcher_augment_searches +=
        matcher_.augment_searches() - recorded_augment_searches_;
    recorded_augment_searches_ = matcher_.augment_searches();
  }

 private:
  double radius_;
  // Unmatched objects alive on the platform, carried across windows. Both
  // sides are spatially indexed: tasks for the new-worker edge queries,
  // workers for the new-task edge queries.
  std::vector<WorkerId> pool_workers_;
  std::vector<TaskId> pool_tasks_;
  GridIndex task_index_;
  GridIndex worker_index_;
  DynamicBipartiteMatcher matcher_;  // Left = workers, right = tasks.
  std::vector<int32_t> worker_slot_;
  std::vector<int32_t> task_slot_;
  std::vector<WorkerId> slot_worker_;
  std::vector<TaskId> slot_task_;
  // Workers whose candidate set changed this window (new arrivals plus
  // carried-over workers adjacent to a new task); matched by window number.
  std::vector<int32_t> dirty_slots_;
  std::vector<int32_t> dirty_window_;
  std::vector<WorkerId> new_workers_;
  std::vector<TaskId> new_tasks_;
  int64_t recorded_augment_searches_ = 0;
};

// Rebuild-per-window reference mode: the historical implementation, which
// re-enumerates every pooled worker's candidates and constructs a fresh
// Hopcroft-Karp instance at each window boundary. Kept for the
// incremental-equivalence tests.
class GrRebuildSession final : public GrSessionBase {
 public:
  GrRebuildSession(const Instance& instance, const GrBatchOptions& options)
      : GrSessionBase(instance, options),
        max_dr_(instance.MaxTaskDuration()),
        task_index_(instance.spacetime().grid()) {}

 protected:
  void ProcessWindow(int k) override {
    const double boundary = boundary_of(k);
    const double velocity = instance().velocity();

    // Absorb every arrival up to this boundary.
    AbsorbUpTo(
        boundary, [&](WorkerId id) { pool_workers_.push_back(id); },
        [&](TaskId id) {
          pool_tasks_.push_back(id);
          task_index_.Insert(id, instance().task(id).location);
        });

    // Evict expired objects.
    auto worker_dead = [&](WorkerId id) {
      return instance().worker(id).Deadline() <= boundary;
    };
    auto task_dead = [&](TaskId id) {
      // A task is hopeless once even a co-located worker departing now
      // would miss its deadline.
      return instance().task(id).Deadline() < boundary;
    };
    pool_workers_.erase(
        std::remove_if(pool_workers_.begin(), pool_workers_.end(),
                       worker_dead),
        pool_workers_.end());
    for (size_t i = 0; i < pool_tasks_.size();) {
      if (task_dead(pool_tasks_[i])) {
        task_index_.Erase(pool_tasks_[i]);
        pool_tasks_[i] = pool_tasks_.back();
        pool_tasks_.pop_back();
      } else {
        ++i;
      }
    }
    if (pool_workers_.empty() || pool_tasks_.empty()) return;

    // Build the batch bipartite graph. Workers depart at the boundary, so
    // an edge requires boundary + d <= Sr + Dr and Sr < Sw + Dw.
    std::unordered_map<int64_t, int32_t> task_slot;  // TaskId -> right index.
    std::vector<TaskId> right_tasks;
    // Hopcroft-Karp needs right-side cardinality up front; build edges
    // first.
    struct PendingEdge {
      int32_t left;
      TaskId task;
    };
    std::vector<PendingEdge> pending_edges;
    pending_edges.reserve(4 * pool_workers_.size());
    for (size_t wi = 0; wi < pool_workers_.size(); ++wi) {
      const Worker& w = instance().worker(pool_workers_[wi]);
      // Pool tasks arrived at or before the boundary, so the arrival
      // condition boundary + d/v <= Sr + Dr implies d <= max_dr * v.
      task_index_.ForEachInDisk(
          w.location, max_dr_ * velocity,
          [&](const IndexedPoint& entry, double d) {
            const Task& r = instance().task(static_cast<TaskId>(entry.id));
            if (!(r.start < w.Deadline())) return;
            if (options_.policy ==
                FeasibilityPolicy::kDispatchAtAssignmentTime) {
              // The batch decision is made at the boundary; the worker
              // departs then.
              if (boundary + d / velocity > r.Deadline()) return;
            } else if (!CanServe(w, r, velocity, options_.policy)) {
              return;
            }
            pending_edges.push_back(
                PendingEdge{static_cast<int32_t>(wi),
                            static_cast<TaskId>(entry.id)});
          });
    }
    if (pending_edges.empty()) return;
    for (const PendingEdge& edge : pending_edges) {
      if (task_slot.find(edge.task) == task_slot.end()) {
        task_slot[edge.task] = static_cast<int32_t>(right_tasks.size());
        right_tasks.push_back(edge.task);
      }
    }
    ++trace_.matcher_rebuilds;
    HopcroftKarp hk(static_cast<int32_t>(pool_workers_.size()),
                    static_cast<int32_t>(right_tasks.size()));
    hk.ReserveEdges(pending_edges.size());
    for (const PendingEdge& edge : pending_edges) {
      hk.AddEdge(edge.left, task_slot[edge.task]);
    }
    hk.Solve();

    // Commit the matched pairs and shrink the pools.
    std::vector<WorkerId> next_workers;
    next_workers.reserve(pool_workers_.size());
    for (size_t wi = 0; wi < pool_workers_.size(); ++wi) {
      const int32_t right = hk.MatchOfLeft(static_cast<int32_t>(wi));
      if (right >= 0) {
        const TaskId task = right_tasks[static_cast<size_t>(right)];
        assignment_.Add(pool_workers_[wi], task, boundary);
        task_index_.Erase(task);
      } else {
        next_workers.push_back(pool_workers_[wi]);
      }
    }
    pool_workers_.swap(next_workers);
    pool_tasks_.erase(
        std::remove_if(pool_tasks_.begin(), pool_tasks_.end(),
                       [&](TaskId id) {
                         return assignment_.IsTaskMatched(id);
                       }),
        pool_tasks_.end());
  }

 private:
  double max_dr_;
  // Unmatched objects alive on the platform, carried across windows. Tasks
  // are indexed spatially so per-worker candidate enumeration in a batch is
  // a disk query instead of a full cross product.
  std::vector<WorkerId> pool_workers_;
  std::vector<TaskId> pool_tasks_;
  GridIndex task_index_;
};

}  // namespace

GrBatch::GrBatch(GrBatchOptions options) : options_(options) {}

std::unique_ptr<AssignmentSession> GrBatch::StartSession(
    const Instance& instance) {
  if (options_.incremental_matching) {
    return std::make_unique<GrIncrementalSession>(instance, options_);
  }
  return std::make_unique<GrRebuildSession>(instance, options_);
}

}  // namespace ftoa
