#include "baselines/offline_opt.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "flow/hopcroft_karp.h"
#include "spatial/grid_index.h"

namespace ftoa {

namespace {

/// Maximum-cardinality matching over all feasible pairs among the *fed*
/// objects (the paper's OPT when the whole stream was fed). Membership is
/// tested while iterating in instance order, so feeding the full universe
/// yields exactly the classic full-instance solve, edge order included.
void SolveOffline(const Instance& instance,
                  const std::vector<uint8_t>& worker_fed,
                  const std::vector<uint8_t>& task_fed,
                  Assignment* assignment) {
  const double velocity = instance.velocity();
  if (instance.num_workers() == 0 || instance.num_tasks() == 0) return;

  // Index tasks by location; for worker w the deadline constraint bounds
  // candidate tasks to d <= (Dr + Sr - Sw) * v with Sr - Sw < Dw, i.e. a
  // disk of radius (max_dr + Dw) * v.
  GridIndex task_index(instance.spacetime().grid());
  for (const Task& r : instance.tasks()) {
    if (task_fed[static_cast<size_t>(r.id)]) {
      task_index.Insert(r.id, r.location);
    }
  }
  const double max_dr = instance.MaxTaskDuration();

  // Enumerate the pruned feasible edges once (the spatial query plus
  // CanServe dominates construction), then hand the matcher an
  // exactly-sized edge arena.
  std::vector<std::pair<WorkerId, TaskId>> edges;
  edges.reserve(static_cast<size_t>(instance.num_workers()) * 4);
  for (const Worker& w : instance.workers()) {
    if (!worker_fed[static_cast<size_t>(w.id)]) continue;
    const double radius = (max_dr + w.duration) * velocity;
    task_index.ForEachInDisk(
        w.location, radius, [&](const IndexedPoint& entry, double) {
          const Task& r = instance.task(static_cast<TaskId>(entry.id));
          if (CanServe(w, r, velocity,
                       FeasibilityPolicy::kDispatchAtWorkerStart)) {
            edges.emplace_back(w.id, r.id);
          }
        });
  }
  HopcroftKarp matcher(static_cast<int32_t>(instance.num_workers()),
                       static_cast<int32_t>(instance.num_tasks()));
  matcher.ReserveEdges(edges.size());
  for (const auto& [w, r] : edges) matcher.AddEdge(w, r);
  matcher.Solve();

  for (const Worker& w : instance.workers()) {
    const int32_t task = matcher.MatchOfLeft(w.id);
    if (task >= 0) {
      // The decision time of an offline pair is when both sides are known.
      const double decision = std::max(w.start, instance.task(task).start);
      assignment->Add(w.id, task, decision);
    }
  }
}

/// Buffering session: OPT records which objects arrived and solves the
/// maximum matching over exactly that sub-universe on the first Flush.
/// Run() feeds the whole instance, reproducing the classic full-instance
/// optimum; a sharded dispatcher feeds each shard session only its routed
/// objects, so per-shard OPT solves disjoint sub-instances whose union
/// merges without conflicts.
class OfflineOptSession final : public AssignmentSessionBase {
 public:
  explicit OfflineOptSession(const Instance& instance)
      : AssignmentSessionBase(instance),
        worker_fed_(instance.num_workers(), 0),
        task_fed_(instance.num_tasks(), 0) {}

  void OnWorker(WorkerId worker, double time) override {
    (void)time;
    worker_fed_[static_cast<size_t>(worker)] = 1;
  }
  void OnTask(TaskId task, double time) override {
    (void)time;
    task_fed_[static_cast<size_t>(task)] = 1;
  }

  void Flush() override {
    if (solved_) return;
    solved_ = true;
    SolveOffline(instance(), worker_fed_, task_fed_, &assignment_);
  }

 private:
  std::vector<uint8_t> worker_fed_;
  std::vector<uint8_t> task_fed_;
  bool solved_ = false;
};

}  // namespace

std::unique_ptr<AssignmentSession> OfflineOpt::StartSession(
    const Instance& instance) {
  return std::make_unique<OfflineOptSession>(instance);
}

}  // namespace ftoa
