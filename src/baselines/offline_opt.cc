#include "baselines/offline_opt.h"

#include <algorithm>
#include <vector>

#include "flow/hopcroft_karp.h"
#include "spatial/grid_index.h"

namespace ftoa {

Assignment OfflineOpt::DoRun(const Instance& instance, RunTrace* trace) {
  (void)trace;
  const double velocity = instance.velocity();
  Assignment assignment(instance.num_workers(), instance.num_tasks());
  if (instance.num_workers() == 0 || instance.num_tasks() == 0) {
    return assignment;
  }

  // Index tasks by location; for worker w the deadline constraint bounds
  // candidate tasks to d <= (Dr + Sr - Sw) * v with Sr - Sw < Dw, i.e. a
  // disk of radius (max_dr + Dw) * v.
  GridIndex task_index(instance.spacetime().grid());
  for (const Task& r : instance.tasks()) {
    task_index.Insert(r.id, r.location);
  }
  const double max_dr = instance.MaxTaskDuration();

  // Enumerate the pruned feasible edges once (the spatial query plus
  // CanServe dominates construction), then hand the matcher an
  // exactly-sized edge arena.
  std::vector<std::pair<WorkerId, TaskId>> edges;
  edges.reserve(static_cast<size_t>(instance.num_workers()) * 4);
  for (const Worker& w : instance.workers()) {
    const double radius = (max_dr + w.duration) * velocity;
    task_index.ForEachInDisk(
        w.location, radius, [&](const IndexedPoint& entry, double) {
          const Task& r = instance.task(static_cast<TaskId>(entry.id));
          if (CanServe(w, r, velocity,
                       FeasibilityPolicy::kDispatchAtWorkerStart)) {
            edges.emplace_back(w.id, r.id);
          }
        });
  }
  HopcroftKarp matcher(static_cast<int32_t>(instance.num_workers()),
                       static_cast<int32_t>(instance.num_tasks()));
  matcher.ReserveEdges(edges.size());
  for (const auto& [w, r] : edges) matcher.AddEdge(w, r);
  matcher.Solve();

  for (const Worker& w : instance.workers()) {
    const int32_t task = matcher.MatchOfLeft(w.id);
    if (task >= 0) {
      // The decision time of an offline pair is when both sides are known.
      const double decision =
          std::max(w.start, instance.task(task).start);
      assignment.Add(w.id, task, decision);
    }
  }
  return assignment;
}

}  // namespace ftoa
