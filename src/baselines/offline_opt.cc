#include "baselines/offline_opt.h"

#include <algorithm>
#include <vector>

#include "flow/hopcroft_karp.h"
#include "spatial/grid_index.h"

namespace ftoa {

namespace {

/// Maximum-cardinality matching over all feasible pairs of the full
/// instance (the paper's OPT).
void SolveOffline(const Instance& instance, Assignment* assignment) {
  const double velocity = instance.velocity();
  if (instance.num_workers() == 0 || instance.num_tasks() == 0) return;

  // Index tasks by location; for worker w the deadline constraint bounds
  // candidate tasks to d <= (Dr + Sr - Sw) * v with Sr - Sw < Dw, i.e. a
  // disk of radius (max_dr + Dw) * v.
  GridIndex task_index(instance.spacetime().grid());
  for (const Task& r : instance.tasks()) {
    task_index.Insert(r.id, r.location);
  }
  const double max_dr = instance.MaxTaskDuration();

  // Enumerate the pruned feasible edges once (the spatial query plus
  // CanServe dominates construction), then hand the matcher an
  // exactly-sized edge arena.
  std::vector<std::pair<WorkerId, TaskId>> edges;
  edges.reserve(static_cast<size_t>(instance.num_workers()) * 4);
  for (const Worker& w : instance.workers()) {
    const double radius = (max_dr + w.duration) * velocity;
    task_index.ForEachInDisk(
        w.location, radius, [&](const IndexedPoint& entry, double) {
          const Task& r = instance.task(static_cast<TaskId>(entry.id));
          if (CanServe(w, r, velocity,
                       FeasibilityPolicy::kDispatchAtWorkerStart)) {
            edges.emplace_back(w.id, r.id);
          }
        });
  }
  HopcroftKarp matcher(static_cast<int32_t>(instance.num_workers()),
                       static_cast<int32_t>(instance.num_tasks()));
  matcher.ReserveEdges(edges.size());
  for (const auto& [w, r] : edges) matcher.AddEdge(w, r);
  matcher.Solve();

  for (const Worker& w : instance.workers()) {
    const int32_t task = matcher.MatchOfLeft(w.id);
    if (task >= 0) {
      // The decision time of an offline pair is when both sides are known.
      const double decision = std::max(w.start, instance.task(task).start);
      assignment->Add(w.id, task, decision);
    }
  }
}

/// Buffering session: OPT needs the whole realized instance, which it was
/// handed at StartSession, so the streamed arrivals carry no extra
/// information — the session simply waits for the stream to end and solves
/// the full matching on the first Flush.
class OfflineOptSession final : public AssignmentSessionBase {
 public:
  using AssignmentSessionBase::AssignmentSessionBase;

  void OnWorker(WorkerId worker, double time) override {
    (void)worker;
    (void)time;
  }
  void OnTask(TaskId task, double time) override {
    (void)task;
    (void)time;
  }

  void Flush() override {
    if (solved_) return;
    solved_ = true;
    SolveOffline(instance(), &assignment_);
  }

 private:
  bool solved_ = false;
};

}  // namespace

std::unique_ptr<AssignmentSession> OfflineOpt::StartSession(
    const Instance& instance) {
  return std::make_unique<OfflineOptSession>(instance);
}

}  // namespace ftoa
