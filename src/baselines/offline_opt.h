// OPT: the offline optimal assignment (the paper's OPT curve and the
// denominator of the competitive ratio, Definition 5). With the full
// realized instance known, workers may be routed toward tasks from the
// moment they appear (Figure 1c), so feasibility uses the
// kDispatchAtWorkerStart predicate; the maximum-cardinality matching over
// all feasible pairs is computed with Hopcroft-Karp over spatially pruned
// candidate edges.

#ifndef FTOA_BASELINES_OFFLINE_OPT_H_
#define FTOA_BASELINES_OFFLINE_OPT_H_

#include "core/online_algorithm.h"

namespace ftoa {

/// The offline optimum. (Implemented against the OnlineAlgorithm interface
/// so benches can sweep it alongside the online algorithms, but it sees its
/// arrivals all at once — the session buffers the stream and solves the
/// maximum matching over the *fed* sub-universe on Flush/Finish. Run()
/// feeds everything, yielding the classic full-instance optimum; under a
/// sharded dispatcher each shard session solves its own sub-instance.)
class OfflineOpt : public OnlineAlgorithm {
 public:
  OfflineOpt() = default;

  std::string name() const override { return "OPT"; }

  std::unique_ptr<AssignmentSession> StartSession(
      const Instance& instance) override;
};

}  // namespace ftoa

#endif  // FTOA_BASELINES_OFFLINE_OPT_H_
