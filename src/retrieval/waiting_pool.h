// Waiting-pool backends for the ported per-arrival algorithms. A session
// template (greedy / TGOA / POLAR fallback) is instantiated once per
// backend, so the *only* difference between `--retrieval=linear` and
// `--retrieval=engine` is the candidate search itself:
//
//  * GridWaitingPool — the historical direct GridIndex scans. Queries
//    ignore the time attributes; the caller's feasibility filter is the
//    only pruning beyond the search radius.
//  * EngineWaitingPool — a CandidateStore + per-session CandidateCursor.
//    Queries additionally prune by deadline and arrival-time window
//    *before* the filter runs, and account per-query stats into the
//    session's RunTrace.
//
// Both backends answer Nearest in the canonical (distance, id) order, so
// sessions are bit-identical across backends; disk enumeration order is
// backend-dependent, which is why callers sort what they collect.

#ifndef FTOA_RETRIEVAL_WAITING_POOL_H_
#define FTOA_RETRIEVAL_WAITING_POOL_H_

#include <cstdint>
#include <limits>
#include <utility>

#include "retrieval/candidate_engine.h"
#include "spatial/grid_index.h"

namespace ftoa {

/// Historical backend: a GridIndex keyed by object id and location.
class GridWaitingPool {
 public:
  GridWaitingPool(const GridSpec& grid, RetrievalStats* stats)
      : index_(grid) {
    (void)stats;  // The reference path is deliberately uninstrumented.
  }

  void Insert(int64_t id, Point location, double start, double deadline) {
    (void)start;
    (void)deadline;
    index_.Insert(id, location);
  }
  bool Erase(int64_t id) { return index_.Erase(id); }
  bool Contains(int64_t id) const { return index_.Contains(id); }
  size_t size() const { return index_.size(); }

  /// Nearest entry within `max_distance` passing `filter(id, distance)`,
  /// or -1. Canonical (distance, id) tie-break.
  template <typename FilterFn>
  int64_t Nearest(Point origin, double max_distance, double query_time,
                  StartWindow window, FilterFn&& filter) const {
    (void)query_time;
    (void)window;
    const IndexedPoint hit = index_.FindNearest(
        origin, max_distance, [&](const IndexedPoint& entry, double d) {
          return filter(entry.id, d);
        });
    return hit.id;
  }

  /// Invokes `fn(id, distance)` for every entry within `radius`;
  /// backend-dependent order.
  template <typename Fn>
  void ForEachInDisk(Point origin, double radius, double query_time,
                     StartWindow window, Fn&& fn) const {
    (void)query_time;
    (void)window;
    index_.ForEachInDisk(origin, radius,
                         [&](const IndexedPoint& entry, double d) {
                           fn(entry.id, d);
                         });
  }

  /// Invokes `fn(id)` for every entry; backend-dependent order.
  template <typename Fn>
  void ForEachId(Fn&& fn) const {
    index_.ForEachInDisk({index_.grid().width() / 2,
                          index_.grid().height() / 2},
                         std::numeric_limits<double>::max(),
                         [&](const IndexedPoint& entry, double) {
                           fn(entry.id);
                         });
  }

 private:
  GridIndex index_;
};

/// Engine backend: CandidateStore + one reusable cursor per pool.
class EngineWaitingPool {
 public:
  EngineWaitingPool(const GridSpec& grid, RetrievalStats* stats)
      : store_(grid), cursor_(&store_, stats) {}

  void Insert(int64_t id, Point location, double start, double deadline) {
    store_.Insert(RetrievalCandidate{id, location, start, deadline});
  }
  bool Erase(int64_t id) { return store_.Erase(id); }
  bool Contains(int64_t id) const { return store_.Contains(id); }
  size_t size() const { return store_.size(); }

  template <typename FilterFn>
  int64_t Nearest(Point origin, double max_distance, double query_time,
                  StartWindow window, FilterFn&& filter) {
    const RetrievalCandidate hit = cursor_.Nearest(
        origin, max_distance, query_time, window,
        [&](const RetrievalCandidate& c, double d) {
          return filter(c.id, d);
        });
    return hit.id;
  }

  template <typename Fn>
  void ForEachInDisk(Point origin, double radius, double query_time,
                     StartWindow window, Fn&& fn) {
    cursor_.ForEachInDisk(origin, radius, query_time, window,
                          [&](const RetrievalCandidate& c, double d) {
                            fn(c.id, d);
                          });
  }

  template <typename Fn>
  void ForEachId(Fn&& fn) const {
    store_.ForEach([&](const RetrievalCandidate& c) { fn(c.id); });
  }

 private:
  CandidateStore store_;
  CandidateCursor cursor_;
};

}  // namespace ftoa

#endif  // FTOA_RETRIEVAL_WAITING_POOL_H_
