// Shared top-k feasible-candidate retrieval over the uniform grid — the
// engine behind every per-arrival candidate scan (greedy baselines, TGOA's
// edge discovery, the POLAR fallback, the boundary reconciler's cell walk).
//
// Design (docs/candidate_retrieval.md):
//  * CandidateStore — a dynamic point set bucketed per grid cell, each
//    bucket kept sorted by (start, id). Arrival-ordered insertion is an
//    O(1) append; erase tombstones in place (offsets stay stable) and
//    compacts a bucket when half of it is dead. The sort order is what
//    buys the per-cell *arrival-time binary search*: a query with a start
//    window [lo, hi] touches only the bucket span that can pass the
//    deadline predicate.
//  * CandidateCursor — reusable per-session query state (top-k buffer,
//    ring walk scratch, stats sink). One cursor per session amortizes all
//    allocation across that session's decisions; cursors are independent,
//    so sessions on different threads each own one.
//  * Queries run a best-first expanding-ring walk: cells are visited ring
//    by ring around the origin, each cell lower-bounded by
//    GridSpec::DistanceToCell and skipped when the bound exceeds the
//    current kth-best distance, and the walk stops when even the nearest
//    point of the next ring cannot beat the kth-best — the exact
//    termination rule of GridIndex::FindNearest (grid_index.h:93), pinned
//    by tests/spatial/grid_index_test.cc.
//  * Results are canonical: candidates are ordered by (distance, id), a
//    total order independent of scan order, so the engine's result set is
//    bit-identical to a linear scan over the same live entries — the
//    oracle equivalence the retrieval test suite enforces.
//
// Hot-path rule: every query is templated on its filter callable (enforced
// by ftoa-lint's no-std-function-hot-path check, which covers
// src/retrieval/); a query pays a direct, usually inlined, call per
// candidate.

#ifndef FTOA_RETRIEVAL_CANDIDATE_ENGINE_H_
#define FTOA_RETRIEVAL_CANDIDATE_ENGINE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "retrieval/stats.h"
#include "spatial/grid.h"
#include "spatial/point.h"

namespace ftoa {

/// One live entry of a CandidateStore: an identified point with the
/// arrival-time attributes the engine prunes on.
struct RetrievalCandidate {
  int64_t id = -1;
  Point location;
  double start = 0.0;
  double deadline = 0.0;
};

/// Inclusive arrival-time window restricting a query to entries with
/// start in [lo, hi]. The default admits everything.
struct StartWindow {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

/// One scored query result.
struct ScoredCandidate {
  double distance = 0.0;
  RetrievalCandidate candidate;
};

/// Dynamic candidate set bucketed per grid cell, buckets sorted by
/// (start, id). Ids must be unique among live entries; Insert overwrites.
class CandidateStore {
 public:
  explicit CandidateStore(const GridSpec& grid);

  /// Inserts an entry (O(1) amortized when starts arrive in nondecreasing
  /// order per cell — the arrival-stream case). Replaces any live entry
  /// with the same id.
  void Insert(const RetrievalCandidate& candidate);

  /// Removes an entry by id (tombstone; offsets of other entries stay
  /// valid). Returns false when absent.
  bool Erase(int64_t id);

  /// True iff `id` is currently stored.
  bool Contains(int64_t id) const { return locator_.count(id) > 0; }

  /// Number of live entries.
  size_t size() const { return locator_.size(); }

  /// Invokes `fn(const RetrievalCandidate&)` for every live entry, in
  /// (cell id, bucket position) order — deterministic given the same
  /// insert/erase history.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& bucket : buckets_) {
      for (const RetrievalCandidate& entry : bucket) {
        if (entry.id >= 0) fn(entry);
      }
    }
  }

  const GridSpec& grid() const { return grid_; }

  /// Live entries of one cell bucket in (start, id) order, tombstones
  /// included (id < 0) — the cursor's scan substrate.
  const std::vector<RetrievalCandidate>& bucket(CellId cell) const {
    return buckets_[static_cast<size_t>(cell)];
  }

 private:
  friend class CandidateCursor;

  void CompactBucket(CellId cell);

  struct Slot {
    int32_t cell;
    int32_t offset;
  };

  GridSpec grid_;
  std::vector<std::vector<RetrievalCandidate>> buckets_;
  std::vector<int32_t> dead_;  // Tombstones per bucket.
  std::unordered_map<int64_t, Slot> locator_;
};

/// Reusable per-session query state over one CandidateStore. Not
/// thread-safe; one cursor per session. All stats are accumulated into the
/// sink the cursor was constructed with (typically the session's
/// RunTrace::retrieval), so surfacing them costs nothing extra.
class CandidateCursor {
 public:
  /// `stats` may be nullptr (queries then keep only local counters).
  CandidateCursor(const CandidateStore* store, RetrievalStats* stats)
      : store_(store), stats_(stats) {}

  /// Re-targets the cursor (e.g. after a store rebuild). Scratch capacity
  /// is retained.
  void Bind(const CandidateStore* store) { store_ = store; }

  /// The k nearest live entries within `max_distance` of `origin` whose
  /// start lies in `window`, whose deadline is >= `query_time`, and which
  /// pass `filter` — any callable `bool(const RetrievalCandidate&, double
  /// distance)`. Returned in (distance, id) order; the reference is valid
  /// until the next query on this cursor.
  template <typename FilterFn>
  const std::vector<ScoredCandidate>& TopK(Point origin, double max_distance,
                                           size_t k, double query_time,
                                           StartWindow window,
                                           FilterFn&& filter) {
    topk_.clear();
    int64_t cells = 0;
    int64_t examined = 0;
    int64_t pruned = 0;
    if (store_ == nullptr || store_->size() == 0 || k == 0) {
      if (stats_ != nullptr) stats_->RecordQuery(cells, examined, pruned);
      return topk_;
    }
    const GridSpec& grid = store_->grid();
    const int origin_cx = grid.CellX(grid.CellOf(origin));
    const int origin_cy = grid.CellY(grid.CellOf(origin));
    const double cell_min = std::min(grid.cell_width(), grid.cell_height());
    // Any finite radius beyond the region diagonal covers every cell.
    const double reach =
        std::min(max_distance, grid.width() + grid.height());
    const int max_ring = static_cast<int>(std::ceil(reach / cell_min)) + 1;

    // Current pruning bound: the query radius until the top-k is full,
    // then the kth-best distance.
    const auto bound = [&]() {
      return topk_.size() == k ? topk_.back().distance : max_distance;
    };
    const auto worse_than_tail = [&](double d, int64_t id) {
      if (topk_.size() < k) return false;
      const ScoredCandidate& tail = topk_.back();
      return d > tail.distance ||
             (d == tail.distance && id >= tail.candidate.id);
    };

    const auto scan_cell = [&](int cx, int cy) {
      if (!grid.ValidCell(cx, cy)) return;
      const CellId cell = grid.CellAt(cx, cy);
      // Radius lower bound: skip cells that cannot beat the current tail.
      if (grid.DistanceToCell(origin, cell) > bound()) return;
      const std::vector<RetrievalCandidate>& bucket = store_->bucket(cell);
      if (bucket.empty()) return;
      ++cells;
      // Arrival-time binary search: the bucket is (start, id)-sorted, so
      // the window maps to one contiguous span.
      auto it = std::lower_bound(
          bucket.begin(), bucket.end(), window.lo,
          [](const RetrievalCandidate& e, double lo) { return e.start < lo; });
      for (; it != bucket.end() && it->start <= window.hi; ++it) {
        if (it->id < 0) continue;  // Tombstone.
        ++examined;
        // Deadline prune: an entry gone before the query instant can never
        // pass either CanServe policy (strict — deadline == query_time may
        // still be feasible).
        if (it->deadline < query_time) {
          ++pruned;
          continue;
        }
        const double d = Distance(origin, it->location);
        if (d > bound() || worse_than_tail(d, it->id)) {
          ++pruned;
          continue;
        }
        if (!filter(*it, d)) continue;
        Offer(ScoredCandidate{d, *it}, k);
      }
    };

    for (int ring = 0; ring <= max_ring; ++ring) {
      // Ring cutoff: once full, stop when even the closest point of this
      // ring is farther than the kth-best (the ring lower bound grows by
      // one cell size per step) — grid_index.h:93's rule generalized to k.
      if (topk_.size() == k &&
          static_cast<double>(ring - 1) * cell_min > topk_.back().distance) {
        break;
      }
      if (ring == 0) {
        scan_cell(origin_cx, origin_cy);
        continue;
      }
      for (int dx = -ring; dx <= ring; ++dx) {
        scan_cell(origin_cx + dx, origin_cy - ring);
        scan_cell(origin_cx + dx, origin_cy + ring);
      }
      for (int dy = -ring + 1; dy <= ring - 1; ++dy) {
        scan_cell(origin_cx - ring, origin_cy + dy);
        scan_cell(origin_cx + ring, origin_cy + dy);
      }
    }
    if (stats_ != nullptr) stats_->RecordQuery(cells, examined, pruned);
    return topk_;
  }

  /// Nearest single candidate (TopK with k = 1); id -1 when none.
  template <typename FilterFn>
  RetrievalCandidate Nearest(Point origin, double max_distance,
                             double query_time, StartWindow window,
                             FilterFn&& filter) {
    const auto& hits = TopK(origin, max_distance, 1, query_time, window,
                            std::forward<FilterFn>(filter));
    return hits.empty() ? RetrievalCandidate{} : hits.front().candidate;
  }

  /// Invokes `fn(const RetrievalCandidate&, double distance)` for every
  /// live entry within `radius` whose start lies in `window` and whose
  /// deadline is >= `query_time`. Enumeration order is (cell, bucket span)
  /// — NOT canonical; callers needing determinism across backends must
  /// sort what they collect (the TGOA port sorts edge ids).
  template <typename Fn>
  void ForEachInDisk(Point origin, double radius, double query_time,
                     StartWindow window, Fn&& fn) {
    int64_t cells = 0;
    int64_t examined = 0;
    int64_t pruned = 0;
    if (store_ == nullptr || store_->size() == 0) {
      if (stats_ != nullptr) stats_->RecordQuery(cells, examined, pruned);
      return;
    }
    const GridSpec& grid = store_->grid();
    radius = std::min(radius, grid.width() + grid.height());
    const int cx_lo = std::max(
        0, static_cast<int>((origin.x - radius) / grid.cell_width()));
    const int cx_hi =
        std::min(grid.cells_x() - 1,
                 static_cast<int>((origin.x + radius) / grid.cell_width()));
    const int cy_lo = std::max(
        0, static_cast<int>((origin.y - radius) / grid.cell_height()));
    const int cy_hi =
        std::min(grid.cells_y() - 1,
                 static_cast<int>((origin.y + radius) / grid.cell_height()));
    for (int cy = cy_lo; cy <= cy_hi; ++cy) {
      for (int cx = cx_lo; cx <= cx_hi; ++cx) {
        const CellId cell = grid.CellAt(cx, cy);
        if (grid.DistanceToCell(origin, cell) > radius) continue;
        const std::vector<RetrievalCandidate>& bucket = store_->bucket(cell);
        if (bucket.empty()) continue;
        ++cells;
        auto it = std::lower_bound(bucket.begin(), bucket.end(), window.lo,
                                   [](const RetrievalCandidate& e,
                                      double lo) { return e.start < lo; });
        for (; it != bucket.end() && it->start <= window.hi; ++it) {
          if (it->id < 0) continue;
          ++examined;
          if (it->deadline < query_time) {
            ++pruned;
            continue;
          }
          const double d = Distance(origin, it->location);
          if (d > radius) {
            ++pruned;
            continue;
          }
          fn(*it, d);
        }
      }
    }
    if (stats_ != nullptr) stats_->RecordQuery(cells, examined, pruned);
  }

  RetrievalStats* stats() { return stats_; }
  void set_stats(RetrievalStats* stats) { stats_ = stats; }

 private:
  /// Sorted-insert into the top-k buffer by (distance, id); drops the
  /// overflow. O(k) — k is small (1 for nearest, single digits for the
  /// reconciler).
  void Offer(const ScoredCandidate& c, size_t k) {
    const auto less = [](const ScoredCandidate& a, const ScoredCandidate& b) {
      return a.distance < b.distance ||
             (a.distance == b.distance && a.candidate.id < b.candidate.id);
    };
    topk_.insert(std::upper_bound(topk_.begin(), topk_.end(), c, less), c);
    if (topk_.size() > k) topk_.pop_back();
  }

  const CandidateStore* store_;
  RetrievalStats* stats_;
  std::vector<ScoredCandidate> topk_;
};

}  // namespace ftoa

#endif  // FTOA_RETRIEVAL_CANDIDATE_ENGINE_H_
