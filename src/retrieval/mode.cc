#include "retrieval/mode.h"

#include "util/string_util.h"

namespace ftoa {

std::vector<std::string> AllRetrievalModeNames() {
  return {"linear", "engine"};
}

std::string RetrievalModeName(RetrievalMode mode) {
  switch (mode) {
    case RetrievalMode::kLinear: return "linear";
    case RetrievalMode::kEngine: return "engine";
  }
  return "linear";
}

Result<RetrievalMode> ParseRetrievalMode(const std::string& name) {
  if (name == "linear") return RetrievalMode::kLinear;
  if (name == "engine") return RetrievalMode::kEngine;
  return Status::NotFound("unknown retrieval mode: " + name + " (valid: " +
                          Join(AllRetrievalModeNames(), ", ") + ")");
}

}  // namespace ftoa
