#include "retrieval/candidate_engine.h"

namespace ftoa {

CandidateStore::CandidateStore(const GridSpec& grid)
    : grid_(grid),
      buckets_(static_cast<size_t>(grid.num_cells())),
      dead_(static_cast<size_t>(grid.num_cells()), 0) {}

void CandidateStore::Insert(const RetrievalCandidate& candidate) {
  if (Contains(candidate.id)) Erase(candidate.id);
  const CellId cell = grid_.CellOf(candidate.location);
  std::vector<RetrievalCandidate>& bucket =
      buckets_[static_cast<size_t>(cell)];
  // Arrival-ordered inserts append; out-of-order inserts pay a sorted
  // insertion that keeps the (start, id) invariant (tombstones keep their
  // start, so they never break the order).
  const auto before = [](const RetrievalCandidate& a,
                         const RetrievalCandidate& b) {
    return a.start < b.start || (a.start == b.start && a.id < b.id);
  };
  if (bucket.empty() || !before(candidate, bucket.back())) {
    locator_[candidate.id] =
        Slot{cell, static_cast<int32_t>(bucket.size())};
    bucket.push_back(candidate);
    return;
  }
  const auto pos =
      std::upper_bound(bucket.begin(), bucket.end(), candidate, before);
  const int32_t offset = static_cast<int32_t>(pos - bucket.begin());
  bucket.insert(pos, candidate);
  locator_[candidate.id] = Slot{cell, offset};
  // Entries after the insertion point shifted by one.
  for (size_t i = static_cast<size_t>(offset) + 1; i < bucket.size(); ++i) {
    if (bucket[i].id >= 0) {
      locator_[bucket[i].id].offset = static_cast<int32_t>(i);
    }
  }
}

bool CandidateStore::Erase(int64_t id) {
  const auto it = locator_.find(id);
  if (it == locator_.end()) return false;
  const Slot slot = it->second;
  locator_.erase(it);
  std::vector<RetrievalCandidate>& bucket =
      buckets_[static_cast<size_t>(slot.cell)];
  bucket[static_cast<size_t>(slot.offset)].id = -1;
  int32_t& dead = dead_[static_cast<size_t>(slot.cell)];
  ++dead;
  // Compact once half the bucket is tombstones (and it is worth the walk):
  // scans stay O(live) amortized and the sort order is preserved.
  if (dead >= 8 &&
      static_cast<size_t>(dead) * 2 >= bucket.size()) {
    CompactBucket(slot.cell);
  }
  return true;
}

void CandidateStore::CompactBucket(CellId cell) {
  std::vector<RetrievalCandidate>& bucket =
      buckets_[static_cast<size_t>(cell)];
  size_t write = 0;
  for (size_t read = 0; read < bucket.size(); ++read) {
    if (bucket[read].id < 0) continue;
    bucket[write] = bucket[read];
    locator_[bucket[write].id].offset = static_cast<int32_t>(write);
    ++write;
  }
  bucket.resize(write);
  dead_[static_cast<size_t>(cell)] = 0;
}

}  // namespace ftoa
