// Which candidate-search backend a ported algorithm uses for its waiting
// pools. The modes are output-equivalent by contract — the engine's queries
// answer the same canonical (distance, id)-ordered candidate sets as the
// historical scans — so the flag trades running time, never assignments
// (property-tested in tests/retrieval/retrieval_mode_test.cc).

#ifndef FTOA_RETRIEVAL_MODE_H_
#define FTOA_RETRIEVAL_MODE_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace ftoa {

/// Candidate-search backend selector (`ftoa run --retrieval=...`).
enum class RetrievalMode {
  /// The pre-engine reference paths: SimpleGreedy's paper-faithful linear
  /// scan, and the direct grid-index scans of TGOA and the POLAR fallback.
  kLinear,
  /// The shared top-k engine (retrieval/candidate_engine.h): best-first
  /// expanding-ring search with deadline/time-window pruning and per-query
  /// stats, identical output.
  kEngine,
};

/// Canonical CLI spellings, in declaration order: linear, engine.
std::vector<std::string> AllRetrievalModeNames();

/// Canonical name of a mode ("linear" / "engine").
std::string RetrievalModeName(RetrievalMode mode);

/// Parses a canonical name; NotFound (listing the valid set) otherwise.
Result<RetrievalMode> ParseRetrievalMode(const std::string& name);

}  // namespace ftoa

#endif  // FTOA_RETRIEVAL_MODE_H_
