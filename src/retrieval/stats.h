// Per-query instrumentation of the candidate retrieval engine
// (retrieval/candidate_engine.h): how much of the index a query actually
// touched. The counters are plain integers and the per-query cells-visited
// distribution is a fixed geometric histogram, so stats merge
// deterministically across sessions and shards (elementwise addition, max
// for the tail witness) — the same contract as the other RunTrace counters.

#ifndef FTOA_RETRIEVAL_STATS_H_
#define FTOA_RETRIEVAL_STATS_H_

#include <algorithm>
#include <array>
#include <cstdint>

namespace ftoa {

/// Counters accumulated by every CandidateCursor query. A cursor writes
/// into the RetrievalStats sink it was constructed with, so a session can
/// point its cursors straight at its RunTrace and never copy.
struct RetrievalStats {
  /// Queries answered (Nearest / TopK / disk enumerations).
  int64_t queries = 0;
  /// Grid cells whose bucket was scanned, summed over queries. Cells
  /// rejected by the radius lower bound are not counted — not visiting
  /// them is the point of the engine.
  int64_t cells_visited = 0;
  /// Entries whose distance was evaluated (post time-window binary search).
  int64_t candidates_examined = 0;
  /// Examined entries rejected by the engine's own pruning (expired
  /// deadline, beyond the current distance bound, or worse than the
  /// current top-k tail) before the caller's filter ran.
  int64_t candidates_pruned = 0;

  /// Per-query cells-visited histogram. Bucket b counts queries that
  /// visited at most kCellsBucketBound(b) cells; the last bucket is
  /// unbounded and max_cells_visited witnesses its tail exactly.
  static constexpr int kNumCellsBuckets = 16;
  std::array<int64_t, kNumCellsBuckets> cells_visited_hist{};
  int64_t max_cells_visited = 0;

  /// Upper bound of histogram bucket `b`: 1, 2, 4, ..., 2^14; the last
  /// bucket is open-ended.
  static constexpr int64_t CellsBucketBound(int b) {
    return int64_t{1} << b;
  }

  /// Records one finished query that visited `cells` cells, examined
  /// `examined` entries, and pruned `pruned` of them.
  void RecordQuery(int64_t cells, int64_t examined, int64_t pruned) {
    ++queries;
    cells_visited += cells;
    candidates_examined += examined;
    candidates_pruned += pruned;
    max_cells_visited = std::max(max_cells_visited, cells);
    int bucket = 0;
    while (bucket < kNumCellsBuckets - 1 && cells > CellsBucketBound(bucket)) {
      ++bucket;
    }
    ++cells_visited_hist[static_cast<size_t>(bucket)];
  }

  /// Accumulates `other` into this (counters and histogram add, tail
  /// witness by max) — the shard-merge operation.
  void Absorb(const RetrievalStats& other) {
    queries += other.queries;
    cells_visited += other.cells_visited;
    candidates_examined += other.candidates_examined;
    candidates_pruned += other.candidates_pruned;
    max_cells_visited = std::max(max_cells_visited, other.max_cells_visited);
    for (int b = 0; b < kNumCellsBuckets; ++b) {
      cells_visited_hist[static_cast<size_t>(b)] +=
          other.cells_visited_hist[static_cast<size_t>(b)];
    }
  }

  /// Nearest-rank percentile of the per-query cells-visited distribution,
  /// read off the histogram: the bucket upper bound covering the rank (the
  /// open tail bucket reports max_cells_visited exactly). 0 when no
  /// queries were recorded. `p` in [0, 1].
  int64_t CellsVisitedPercentile(double p) const {
    if (queries <= 0) return 0;
    const int64_t rank = std::max<int64_t>(
        1, static_cast<int64_t>(p * static_cast<double>(queries) + 0.5));
    int64_t seen = 0;
    for (int b = 0; b < kNumCellsBuckets; ++b) {
      seen += cells_visited_hist[static_cast<size_t>(b)];
      if (seen >= rank) {
        return b == kNumCellsBuckets - 1
                   ? max_cells_visited
                   : std::min(max_cells_visited, CellsBucketBound(b));
      }
    }
    return max_cells_visited;
  }
};

}  // namespace ftoa

#endif  // FTOA_RETRIEVAL_STATS_H_
