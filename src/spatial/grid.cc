#include "spatial/grid.h"

#include <algorithm>
#include <cassert>

namespace ftoa {

GridSpec::GridSpec(double width, double height, int cells_x, int cells_y)
    : width_(width),
      height_(height),
      cells_x_(cells_x),
      cells_y_(cells_y),
      cell_width_(width / cells_x),
      cell_height_(height / cells_y) {
  assert(width > 0.0 && height > 0.0);
  assert(cells_x > 0 && cells_y > 0);
}

Point GridSpec::Clamp(Point p) const {
  // Nudge just inside the open upper edge so CellOf stays in range.
  const double max_x = width_ - width_ * 1e-12 - 1e-12;
  const double max_y = height_ - height_ * 1e-12 - 1e-12;
  return {std::clamp(p.x, 0.0, max_x), std::clamp(p.y, 0.0, max_y)};
}

CellId GridSpec::CellOf(Point p) const {
  p = Clamp(p);
  int cx = static_cast<int>(p.x / cell_width_);
  int cy = static_cast<int>(p.y / cell_height_);
  cx = std::clamp(cx, 0, cells_x_ - 1);
  cy = std::clamp(cy, 0, cells_y_ - 1);
  return CellAt(cx, cy);
}

Point GridSpec::CellCenter(CellId id) const {
  const int cx = CellX(id);
  const int cy = CellY(id);
  return {(cx + 0.5) * cell_width_, (cy + 0.5) * cell_height_};
}

double GridSpec::DistanceToCell(Point p, CellId id) const {
  const int cx = CellX(id);
  const int cy = CellY(id);
  const double lo_x = cx * cell_width_;
  const double hi_x = lo_x + cell_width_;
  const double lo_y = cy * cell_height_;
  const double hi_y = lo_y + cell_height_;
  const double dx = p.x < lo_x ? lo_x - p.x : (p.x > hi_x ? p.x - hi_x : 0.0);
  const double dy = p.y < lo_y ? lo_y - p.y : (p.y > hi_y ? p.y - hi_y : 0.0);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace ftoa
