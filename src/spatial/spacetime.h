// Spatiotemporal typing: the paper partitions time into slots and space into
// grid areas (Section 3.1.1); a (slot, area) pair is the *type* of a
// predicted node, and online objects occupy/associate guide nodes of their
// own type (Algorithms 2-3).

#ifndef FTOA_SPATIAL_SPACETIME_H_
#define FTOA_SPATIAL_SPACETIME_H_

#include <cstdint>

#include "spatial/grid.h"
#include "spatial/point.h"

namespace ftoa {

/// Dense id of a (slot, area) type: type = slot * num_areas + area.
using TypeId = int32_t;

/// Partition of the time horizon [0, horizon) into `num_slots` equal slots.
class SlotSpec {
 public:
  SlotSpec() = default;

  /// Both arguments must be positive.
  SlotSpec(double horizon, int num_slots);

  double horizon() const { return horizon_; }
  int num_slots() const { return num_slots_; }
  double slot_duration() const { return slot_duration_; }

  /// Slot containing time `t`; times outside the horizon are clamped.
  int SlotOf(double t) const;

  /// Start time of a slot.
  double SlotStart(int slot) const { return slot * slot_duration_; }

  /// Midpoint of a slot — the representative start time of the slot's
  /// predicted objects when building the offline guide.
  double SlotMidpoint(int slot) const {
    return (slot + 0.5) * slot_duration_;
  }

 private:
  double horizon_ = 1.0;
  int num_slots_ = 1;
  double slot_duration_ = 1.0;
};

/// Combines a SlotSpec and a GridSpec into the type space of the paper's
/// prediction matrices (alpha slots x beta areas).
class SpacetimeSpec {
 public:
  SpacetimeSpec() = default;
  SpacetimeSpec(const SlotSpec& slots, const GridSpec& grid)
      : slots_(slots), grid_(grid) {}

  const SlotSpec& slots() const { return slots_; }
  const GridSpec& grid() const { return grid_; }

  int num_slots() const { return slots_.num_slots(); }
  int num_areas() const { return grid_.num_cells(); }
  int num_types() const { return num_slots() * num_areas(); }

  /// Type of an object appearing at `location` at time `t`.
  TypeId TypeOf(Point location, double t) const {
    return TypeAt(slots_.SlotOf(t), grid_.CellOf(location));
  }

  /// Type from explicit slot/area indices.
  TypeId TypeAt(int slot, CellId area) const {
    return static_cast<TypeId>(slot) * num_areas() + area;
  }

  int SlotOfType(TypeId type) const { return type / num_areas(); }
  CellId AreaOfType(TypeId type) const { return type % num_areas(); }

  /// Representative location of a type (its cell center).
  Point RepresentativeLocation(TypeId type) const {
    return grid_.CellCenter(AreaOfType(type));
  }

  /// Representative start time of a type (its slot midpoint).
  double RepresentativeTime(TypeId type) const {
    return slots_.SlotMidpoint(SlotOfType(type));
  }

 private:
  SlotSpec slots_;
  GridSpec grid_;
};

}  // namespace ftoa

#endif  // FTOA_SPATIAL_SPACETIME_H_
