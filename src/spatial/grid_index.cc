#include "spatial/grid_index.h"

namespace ftoa {

GridIndex::GridIndex(const GridSpec& grid)
    : grid_(grid), buckets_(static_cast<size_t>(grid.num_cells())) {}

void GridIndex::Insert(int64_t id, Point location) {
  Erase(id);
  const CellId cell = grid_.CellOf(location);
  auto& bucket = buckets_[static_cast<size_t>(cell)];
  locator_[id] = Slot{cell, static_cast<int32_t>(bucket.size())};
  bucket.push_back(IndexedPoint{id, location});
}

bool GridIndex::Erase(int64_t id) {
  const auto it = locator_.find(id);
  if (it == locator_.end()) return false;
  const Slot slot = it->second;
  auto& bucket = buckets_[static_cast<size_t>(slot.cell)];
  const int32_t last = static_cast<int32_t>(bucket.size()) - 1;
  if (slot.offset != last) {
    bucket[slot.offset] = bucket[last];
    locator_[bucket[slot.offset].id].offset = slot.offset;
  }
  bucket.pop_back();
  locator_.erase(it);
  return true;
}

}  // namespace ftoa
