#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ftoa {

GridIndex::GridIndex(const GridSpec& grid)
    : grid_(grid), buckets_(static_cast<size_t>(grid.num_cells())) {}

void GridIndex::Insert(int64_t id, Point location) {
  Erase(id);
  const CellId cell = grid_.CellOf(location);
  auto& bucket = buckets_[static_cast<size_t>(cell)];
  locator_[id] = Slot{cell, static_cast<int32_t>(bucket.size())};
  bucket.push_back(IndexedPoint{id, location});
}

bool GridIndex::Erase(int64_t id) {
  const auto it = locator_.find(id);
  if (it == locator_.end()) return false;
  const Slot slot = it->second;
  auto& bucket = buckets_[static_cast<size_t>(slot.cell)];
  const int32_t last = static_cast<int32_t>(bucket.size()) - 1;
  if (slot.offset != last) {
    bucket[slot.offset] = bucket[last];
    locator_[bucket[slot.offset].id].offset = slot.offset;
  }
  bucket.pop_back();
  locator_.erase(it);
  return true;
}

IndexedPoint GridIndex::FindNearest(Point origin, double max_distance,
                                    const Filter& filter) const {
  IndexedPoint best{-1, {}};
  double best_distance = max_distance;
  bool found = false;

  const int origin_cx = grid_.CellX(grid_.CellOf(origin));
  const int origin_cy = grid_.CellY(grid_.CellOf(origin));
  const double cell_min =
      std::min(grid_.cell_width(), grid_.cell_height());
  const int max_ring = static_cast<int>(
      std::ceil(max_distance / cell_min)) + 1;

  auto scan_cell = [&](int cx, int cy) {
    if (!grid_.ValidCell(cx, cy)) return;
    const CellId cell = grid_.CellAt(cx, cy);
    // Skip cells that cannot contain a better candidate.
    if (grid_.DistanceToCell(origin, cell) > best_distance) return;
    for (const IndexedPoint& entry : buckets_[static_cast<size_t>(cell)]) {
      const double d = Distance(origin, entry.location);
      if (d > best_distance) continue;
      if (found && d >= best_distance && entry.id >= best.id) continue;
      if (filter && !filter(entry, d)) continue;
      // Deterministic tie-break: smaller distance, then smaller id.
      if (!found || d < best_distance ||
          (d == best_distance && entry.id < best.id)) {
        best = entry;
        best_distance = d;
        found = true;
      }
    }
  };

  for (int ring = 0; ring <= max_ring; ++ring) {
    // Stop when even the closest point of this ring is farther than the
    // current best (the ring lower bound grows by one cell size per step).
    if (found && (ring - 1) * cell_min > best_distance) break;
    if (ring == 0) {
      scan_cell(origin_cx, origin_cy);
      continue;
    }
    for (int dx = -ring; dx <= ring; ++dx) {
      scan_cell(origin_cx + dx, origin_cy - ring);
      scan_cell(origin_cx + dx, origin_cy + ring);
    }
    for (int dy = -ring + 1; dy <= ring - 1; ++dy) {
      scan_cell(origin_cx - ring, origin_cy + dy);
      scan_cell(origin_cx + ring, origin_cy + dy);
    }
  }
  return found ? best : IndexedPoint{-1, {}};
}

void GridIndex::ForEachInDisk(
    Point origin, double radius,
    const std::function<void(const IndexedPoint&, double)>& fn) const {
  // Any radius beyond the region diagonal covers everything; clamping keeps
  // the cell-range arithmetic finite for "scan all" callers.
  radius = std::min(radius, grid_.width() + grid_.height());
  const int cx_lo = std::max(
      0, static_cast<int>((origin.x - radius) / grid_.cell_width()));
  const int cx_hi = std::min(
      grid_.cells_x() - 1,
      static_cast<int>((origin.x + radius) / grid_.cell_width()));
  const int cy_lo = std::max(
      0, static_cast<int>((origin.y - radius) / grid_.cell_height()));
  const int cy_hi = std::min(
      grid_.cells_y() - 1,
      static_cast<int>((origin.y + radius) / grid_.cell_height()));
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      const CellId cell = grid_.CellAt(cx, cy);
      if (grid_.DistanceToCell(origin, cell) > radius) continue;
      for (const IndexedPoint& entry : buckets_[static_cast<size_t>(cell)]) {
        const double d = Distance(origin, entry.location);
        if (d <= radius) fn(entry, d);
      }
    }
  }
}

void GridIndex::ForEachInCell(
    CellId cell, const std::function<void(const IndexedPoint&)>& fn) const {
  if (cell < 0 || cell >= grid_.num_cells()) return;
  for (const IndexedPoint& entry : buckets_[static_cast<size_t>(cell)]) {
    fn(entry);
  }
}

}  // namespace ftoa
