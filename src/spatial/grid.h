// Uniform grid partition of the service region ("grid areas" in the paper,
// Section 3.1.1): the rectangle [0, width) x [0, height) divided into
// cells_x * cells_y equal cells, identified by a dense integer id.

#ifndef FTOA_SPATIAL_GRID_H_
#define FTOA_SPATIAL_GRID_H_

#include <cstdint>
#include <cstddef>

#include "spatial/point.h"

namespace ftoa {

/// Dense id of a grid cell; row-major: id = cy * cells_x + cx.
using CellId = int32_t;

/// Immutable description of a uniform grid over a rectangular region.
class GridSpec {
 public:
  GridSpec() = default;

  /// A grid of cells_x x cells_y cells over [0,width) x [0,height).
  /// All arguments must be positive.
  GridSpec(double width, double height, int cells_x, int cells_y);

  double width() const { return width_; }
  double height() const { return height_; }
  int cells_x() const { return cells_x_; }
  int cells_y() const { return cells_y_; }
  int num_cells() const { return cells_x_ * cells_y_; }
  double cell_width() const { return cell_width_; }
  double cell_height() const { return cell_height_; }

  /// True iff `p` lies inside the region.
  bool Contains(Point p) const {
    return p.x >= 0.0 && p.x < width_ && p.y >= 0.0 && p.y < height_;
  }

  /// Clamps `p` into the region (just inside the open upper edges).
  Point Clamp(Point p) const;

  /// Cell containing `p`; out-of-region points are clamped first, so the
  /// result is always a valid id.
  CellId CellOf(Point p) const;

  /// Column index of a cell id.
  int CellX(CellId id) const { return id % cells_x_; }
  /// Row index of a cell id.
  int CellY(CellId id) const { return id / cells_x_; }
  /// Cell id from column/row (must be in range).
  CellId CellAt(int cx, int cy) const { return cy * cells_x_ + cx; }
  /// True iff the column/row pair is inside the grid.
  bool ValidCell(int cx, int cy) const {
    return cx >= 0 && cx < cells_x_ && cy >= 0 && cy < cells_y_;
  }

  /// Center point of a cell — the representative location of the cell's
  /// predicted objects when building the offline guide.
  Point CellCenter(CellId id) const;

  /// Shortest distance from point `p` to any point of cell `id` (0 when `p`
  /// is inside). Used for best-first ring expansion in nearest queries.
  double DistanceToCell(Point p, CellId id) const;

 private:
  double width_ = 1.0;
  double height_ = 1.0;
  int cells_x_ = 1;
  int cells_y_ = 1;
  double cell_width_ = 1.0;
  double cell_height_ = 1.0;
};

}  // namespace ftoa

#endif  // FTOA_SPATIAL_GRID_H_
