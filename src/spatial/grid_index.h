// A dynamic point index over a GridSpec: insert/erase identified points and
// answer nearest-neighbor and disk queries with predicate filtering.
//
// This is the spatial substrate behind SimpleGreedy (nearest feasible
// counterpart per arrival) and the edge-pruned construction of the offline
// OPT bipartite graph.

#ifndef FTOA_SPATIAL_GRID_INDEX_H_
#define FTOA_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "spatial/grid.h"
#include "spatial/point.h"

namespace ftoa {

/// Identified point stored in a GridIndex.
struct IndexedPoint {
  int64_t id = 0;
  Point location;
};

/// Bucketed point index with O(1) insert/erase and ring-expansion
/// nearest-neighbor search. Ids must be unique among live entries.
class GridIndex {
 public:
  explicit GridIndex(const GridSpec& grid);

  /// Inserts a point; overwrites any previous live entry with the same id.
  void Insert(int64_t id, Point location);

  /// Removes an entry by id; returns false when absent.
  bool Erase(int64_t id);

  /// True iff `id` is currently stored.
  bool Contains(int64_t id) const { return locator_.count(id) > 0; }

  /// Number of live entries.
  size_t size() const { return locator_.size(); }

  /// Predicate deciding whether a candidate may be matched; receives the
  /// candidate and its Euclidean distance from the query point.
  using Filter = std::function<bool(const IndexedPoint&, double distance)>;

  /// Returns the nearest entry within `max_distance` of `origin` passing
  /// `filter` (nullptr-able: empty std::function accepts everything), or an
  /// IndexedPoint with id = -1 when none qualifies. Rings of cells are
  /// scanned outward, and the scan stops as soon as the best candidate found
  /// so far is closer than the next ring can possibly be.
  IndexedPoint FindNearest(Point origin, double max_distance,
                           const Filter& filter = Filter()) const;

  /// Invokes `fn` for every entry within `radius` of `origin`.
  void ForEachInDisk(Point origin, double radius,
                     const std::function<void(const IndexedPoint&,
                                              double distance)>& fn) const;

  /// Invokes `fn` for every entry in cell `cell`.
  void ForEachInCell(CellId cell,
                     const std::function<void(const IndexedPoint&)>& fn) const;

 private:
  struct Slot {
    int32_t cell;
    int32_t offset;  // Position within the cell bucket.
  };

  const GridSpec grid_;
  std::vector<std::vector<IndexedPoint>> buckets_;  // One per cell.
  std::unordered_map<int64_t, Slot> locator_;
};

}  // namespace ftoa

#endif  // FTOA_SPATIAL_GRID_INDEX_H_
