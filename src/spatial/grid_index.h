// A dynamic point index over a GridSpec: insert/erase identified points and
// answer nearest-neighbor and disk queries with predicate filtering.
//
// This is the spatial substrate behind SimpleGreedy (nearest feasible
// counterpart per arrival), the edge-pruned construction of the offline
// OPT bipartite graph, and the incremental candidate queries of the TGOA
// and GR baselines.
//
// The query methods are templated on the callable so hot callers pay a
// direct (usually inlined) call per candidate instead of a std::function
// allocation + indirect dispatch per query.

#ifndef FTOA_SPATIAL_GRID_INDEX_H_
#define FTOA_SPATIAL_GRID_INDEX_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "spatial/grid.h"
#include "spatial/point.h"

namespace ftoa {

/// Identified point stored in a GridIndex.
struct IndexedPoint {
  int64_t id = 0;
  Point location;
};

/// Bucketed point index with O(1) insert/erase and ring-expansion
/// nearest-neighbor search. Ids must be unique among live entries.
class GridIndex {
 public:
  explicit GridIndex(const GridSpec& grid);

  /// Inserts a point; overwrites any previous live entry with the same id.
  void Insert(int64_t id, Point location);

  /// Removes an entry by id; returns false when absent.
  bool Erase(int64_t id);

  /// True iff `id` is currently stored.
  bool Contains(int64_t id) const { return locator_.count(id) > 0; }

  /// Number of live entries.
  size_t size() const { return locator_.size(); }

  /// The grid this index buckets over.
  const GridSpec& grid() const { return grid_; }

  /// Returns the nearest entry within `max_distance` of `origin` passing
  /// `filter` — any callable `bool(const IndexedPoint&, double distance)`
  /// deciding whether a candidate may be matched — or an IndexedPoint with
  /// id = -1 when none qualifies. Rings of cells are scanned outward, and
  /// the scan stops as soon as the best candidate found so far is closer
  /// than the next ring can possibly be.
  template <typename FilterFn>
  IndexedPoint FindNearest(Point origin, double max_distance,
                           FilterFn&& filter) const {
    IndexedPoint best{-1, {}};
    double best_distance = max_distance;
    bool found = false;

    const int origin_cx = grid_.CellX(grid_.CellOf(origin));
    const int origin_cy = grid_.CellY(grid_.CellOf(origin));
    const double cell_min = std::min(grid_.cell_width(), grid_.cell_height());
    const int max_ring =
        static_cast<int>(std::ceil(max_distance / cell_min)) + 1;

    auto scan_cell = [&](int cx, int cy) {
      if (!grid_.ValidCell(cx, cy)) return;
      const CellId cell = grid_.CellAt(cx, cy);
      // Skip cells that cannot contain a better candidate.
      if (grid_.DistanceToCell(origin, cell) > best_distance) return;
      for (const IndexedPoint& entry : buckets_[static_cast<size_t>(cell)]) {
        const double d = Distance(origin, entry.location);
        if (d > best_distance) continue;
        if (found && d >= best_distance && entry.id >= best.id) continue;
        if (!filter(entry, d)) continue;
        // Deterministic tie-break: smaller distance, then smaller id.
        if (!found || d < best_distance ||
            (d == best_distance && entry.id < best.id)) {
          best = entry;
          best_distance = d;
          found = true;
        }
      }
    };

    for (int ring = 0; ring <= max_ring; ++ring) {
      // Stop when even the closest point of this ring is farther than the
      // current best (the ring lower bound grows by one cell size per step).
      if (found && (ring - 1) * cell_min > best_distance) break;
      if (ring == 0) {
        scan_cell(origin_cx, origin_cy);
        continue;
      }
      for (int dx = -ring; dx <= ring; ++dx) {
        scan_cell(origin_cx + dx, origin_cy - ring);
        scan_cell(origin_cx + dx, origin_cy + ring);
      }
      for (int dy = -ring + 1; dy <= ring - 1; ++dy) {
        scan_cell(origin_cx - ring, origin_cy + dy);
        scan_cell(origin_cx + ring, origin_cy + dy);
      }
    }
    return found ? best : IndexedPoint{-1, {}};
  }

  /// Unfiltered nearest-neighbor query.
  IndexedPoint FindNearest(Point origin, double max_distance) const {
    return FindNearest(origin, max_distance,
                       [](const IndexedPoint&, double) { return true; });
  }

  /// Invokes `fn(entry, distance)` for every entry within `radius` of
  /// `origin`.
  template <typename Fn>
  void ForEachInDisk(Point origin, double radius, Fn&& fn) const {
    // Any radius beyond the region diagonal covers everything; clamping
    // keeps the cell-range arithmetic finite for "scan all" callers.
    radius = std::min(radius, grid_.width() + grid_.height());
    const int cx_lo = std::max(
        0, static_cast<int>((origin.x - radius) / grid_.cell_width()));
    const int cx_hi = std::min(
        grid_.cells_x() - 1,
        static_cast<int>((origin.x + radius) / grid_.cell_width()));
    const int cy_lo = std::max(
        0, static_cast<int>((origin.y - radius) / grid_.cell_height()));
    const int cy_hi = std::min(
        grid_.cells_y() - 1,
        static_cast<int>((origin.y + radius) / grid_.cell_height()));
    for (int cy = cy_lo; cy <= cy_hi; ++cy) {
      for (int cx = cx_lo; cx <= cx_hi; ++cx) {
        const CellId cell = grid_.CellAt(cx, cy);
        if (grid_.DistanceToCell(origin, cell) > radius) continue;
        for (const IndexedPoint& entry :
             buckets_[static_cast<size_t>(cell)]) {
          const double d = Distance(origin, entry.location);
          if (d <= radius) fn(entry, d);
        }
      }
    }
  }

  /// Invokes `fn(entry)` for every entry in cell `cell`.
  template <typename Fn>
  void ForEachInCell(CellId cell, Fn&& fn) const {
    if (cell < 0 || cell >= grid_.num_cells()) return;
    for (const IndexedPoint& entry : buckets_[static_cast<size_t>(cell)]) {
      fn(entry);
    }
  }

 private:
  struct Slot {
    int32_t cell;
    int32_t offset;  // Position within the cell bucket.
  };

  const GridSpec grid_;
  std::vector<std::vector<IndexedPoint>> buckets_;  // One per cell.
  std::unordered_map<int64_t, Slot> locator_;
};

}  // namespace ftoa

#endif  // FTOA_SPATIAL_GRID_INDEX_H_
