// 2D points and basic Euclidean geometry. Locations in the FTOA model
// (Definitions 1-2 of the paper) are points in a bounded 2D region.

#ifndef FTOA_SPATIAL_POINT_H_
#define FTOA_SPATIAL_POINT_H_

#include <cmath>
#include <ostream>

namespace ftoa {

/// A point (or displacement) in the 2D plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point p, double s) { return {p.x * s, p.y * s}; }
  friend Point operator*(double s, Point p) { return p * s; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
  friend bool operator!=(Point a, Point b) { return !(a == b); }
  friend std::ostream& operator<<(std::ostream& os, Point p) {
    return os << '(' << p.x << ", " << p.y << ')';
  }
};

/// Squared Euclidean distance (avoids the sqrt when comparing).
inline double SquaredDistance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
inline double Distance(Point a, Point b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// Linear interpolation from `a` to `b`; fraction is clamped to [0, 1].
/// Used to track a dispatched worker's position while en route.
inline Point Lerp(Point a, Point b, double fraction) {
  if (fraction <= 0.0) return a;
  if (fraction >= 1.0) return b;
  return {a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction};
}

}  // namespace ftoa

#endif  // FTOA_SPATIAL_POINT_H_
