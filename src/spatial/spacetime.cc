#include "spatial/spacetime.h"

#include <algorithm>
#include <cassert>

namespace ftoa {

SlotSpec::SlotSpec(double horizon, int num_slots)
    : horizon_(horizon),
      num_slots_(num_slots),
      slot_duration_(horizon / num_slots) {
  assert(horizon > 0.0);
  assert(num_slots > 0);
}

int SlotSpec::SlotOf(double t) const {
  if (t <= 0.0) return 0;
  const int slot = static_cast<int>(t / slot_duration_);
  return std::min(slot, num_slots_ - 1);
}

}  // namespace ftoa
