// ServiceHarness: the long-running serving loop over the streaming
// assignment stack — the robustness tentpole tying together the unbounded
// trace replay (gen/looped_trace), the sharded streaming sessions
// (sim/sharded_dispatcher), live guide refresh with a degradation ladder
// (serve/guide_refresher), fault injection (serve/fault_injector),
// admission control, and rolling-window eviction that keeps memory
// O(live objects).
//
// Time model: one *window* == one day slot == one time unit, on the
// absolute stream axis of LoopedTraceSource (window w covers [w, w+1)).
// The harness processes windows in order; every window emits one
// WindowMetrics row — the soak's observability surface.
//
// Session model: sessions run over fixed object universes, so the
// unbounded stream is cut into *segments* of windows_per_segment windows
// (never crossing a day boundary — the guide's type space is one day).
// Arrivals admitted during a segment plus the previous segments' still-live
// unmatched objects (the carryover) form the segment's instance; the
// segment is replayed through one ShardedSession with AdvanceTo at every
// window boundary, then finished and its matches folded back into the
// store. Objects an injected fault drops on the harness→session handoff
// stay unmatched and are redelivered with the next carryover.
//
// Guide lifecycle: a GuideRefresher re-solves the guide from realized
// per-type counts (previous completed day; the generator's history before
// any day completed) every refresh_period_windows, inline or on a
// background thread. A publish landing inside a running segment is
// hot-swapped into the live sessions at the next window boundary
// (ShardedSession::SwapGuide — epoch swap at an AdvanceTo boundary, so the
// replay stays deterministic). The degradation ladder at segment start:
// fresh guide -> stale guide (refresh failed, slot kept) -> guide-free
// greedy (no guide yet, or staleness beyond max_guide_age_windows).
//
// Memory model: every admitted object lives in an id-keyed store plus a
// deadline-ordered min-heap. At each window boundary objects whose
// deadline has passed are popped; with evict_expired on (the serving
// default) their records are freed — the store never holds more than the
// live set plus the current segment. Eviction is *observationally
// inert by construction*: the heap, the live counter, and the carryover
// filter run identically with eviction on or off, so the committed
// assignments are bit-identical (the eviction property tests pin this).
//
// Admission control: per window the harness sheds deterministically,
// oldest deadline first, whenever the offered batch exceeds
// max_queue_depth, the last completed window's p99 exceeded slo_p99_ms
// (backpressure; the signal lags by up to one segment because latency is
// measured at replay), or admitting would exceed max_live_objects.

#ifndef FTOA_SERVE_SERVICE_HARNESS_H_
#define FTOA_SERVE_SERVICE_HARNESS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/guide_generator.h"
#include "gen/config.h"
#include "gen/looped_trace.h"
#include "prediction/predictor.h"
#include "retrieval/mode.h"
#include "serve/fault_injector.h"
#include "serve/guide_refresher.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace ftoa {

/// Serving-loop configuration.
struct ServiceOptions {
  /// Registry name of the guided serving algorithm (the ladder drops to
  /// "simple-greedy" when no usable guide exists).
  std::string algorithm = "polar-op";

  /// Sharding of each segment's session (sim/sharded_dispatcher).
  int num_shards = 1;
  int shard_threads = 1;
  bool reconcile = false;

  /// Candidate-retrieval backend of the served algorithms (the CLI's
  /// --retrieval flag). kEngine routes every spatial candidate scan —
  /// including the degraded-greedy rung's — through the shared retrieval
  /// engine and surfaces its per-query stats in the rotation window's
  /// WindowMetrics. Assignments are bit-identical across modes.
  RetrievalMode retrieval = RetrievalMode::kLinear;

  /// Windows per session segment; 0 = a full day (slots_per_day). Clamped
  /// to [1, slots_per_day] — segments never cross a day boundary.
  int windows_per_segment = 0;

  /// Windows between guide refresh cycles; 0 = once per day. The first
  /// cycle runs at window 0 (the bootstrap, from the generator's history).
  int refresh_period_windows = 0;

  /// Refresh on the refresher's background thread (poll at every window
  /// boundary) instead of inline at the due window.
  bool background_refresh = false;

  /// Learned predictor feeding the refresher (prediction/registry name,
  /// e.g. "HA" or "LR") instead of raw last-day realized counts. The
  /// predictor is fitted on the generator's history plus every completed
  /// stream day (rolling refit at each day boundary) and predicts the
  /// coming day per (slot, cell). Empty (the default) keeps the
  /// realized-counts source. Unknown names fail Create.
  std::string refresh_predictor;

  /// Segment rotation strategy. True (the serving default) maintains a
  /// persistent sorted arrival spine across segments: carryover survivors
  /// are compacted/re-timed in place and newly admitted objects are
  /// merge-inserted, so rotation costs O(carryover + new) instead of
  /// O(store) + a full re-sort. False runs the PR 6 rebuild reference
  /// (scan the store, sort everything); committed assignments are
  /// bit-identical either way (pinned by the rotation equivalence tests).
  bool incremental_rotation = true;

  /// Analytical pool isolation: > 0 shares one thread pool between the
  /// shard actors and the background refresher, with the refresher capped
  /// to this many concurrent tasks via a PoolSlice (util/thread_pool.h) so
  /// a background solve can never occupy every worker. 0 (the default)
  /// keeps the PR 6 layout: dispatcher-owned shard pool, dedicated
  /// refresher thread. Only meaningful with background_refresh.
  int analytical_slice = 0;

  /// Backpressure SLO on the per-window p99 decision latency; <= 0
  /// disables the latency trigger (keeps replays deterministic in tests).
  double slo_p99_ms = 0.0;

  /// When the latency SLO trips, this fraction of the next window's
  /// offered batch is shed (oldest deadline first).
  double overload_shed_fraction = 0.5;

  /// Per-window admission cap on the offered batch; 0 = unlimited.
  int64_t max_queue_depth = 0;

  /// Cap on simultaneously live (admitted, unexpired, unmatched) objects;
  /// admission beyond it sheds. 0 = unlimited.
  int64_t max_live_objects = 0;

  /// Guide staleness (windows since publish) beyond which a segment runs
  /// guide-free greedy instead; 0 = never degrade on age alone.
  int64_t max_guide_age_windows = 0;

  /// Free expired-object records (the serving default). Off = the
  /// unbounded reference the eviction property tests compare against.
  bool evict_expired = true;

  /// Fault plan (serve/fault_injector spec grammar; empty = none) and its
  /// RNG seed.
  std::string faults;
  uint64_t fault_seed = 1;

  /// Guide solve configuration. worker_duration/task_duration are derived
  /// from the city profile at Create; other fields are honored as given.
  GuideOptions guide;
  GuideRefresher::Options refresh;
};

/// One window's report — every processed window emits exactly one.
struct WindowMetrics {
  int64_t window = 0;
  int64_t day = 0;

  int64_t offered = 0;       ///< Base arrivals + flash clones.
  int64_t flash_clones = 0;  ///< Injected flash-crowd extras within offered.
  int64_t admitted = 0;
  int64_t shed = 0;
  /// Arrivals lost to an injected handoff drop this window (they are
  /// redelivered with the next segment's carryover).
  int64_t dropped_arrivals = 0;
  /// Pairs committed by the segment that rotated at this window (0 for
  /// non-rotation windows).
  int64_t matched = 0;

  /// Candidate-retrieval stats of the rotated segment (attributed to the
  /// rotation window, like `matched`). All-zero in linear mode and for
  /// non-rotation windows.
  int64_t retrieval_queries = 0;
  int64_t candidates_examined = 0;
  int64_t cells_visited_p50 = 0;
  int64_t cells_visited_p99 = 0;

  /// Harness-side per-decision latency over the window's fed events
  /// (includes injected slow-lane stalls). Nearest-rank percentiles.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  int64_t decisions = 0;

  int64_t live_objects = 0;  ///< Live gauge at the end of admission.
  int64_t evicted = 0;       ///< Expired-unmatched objects popped this window.
  uint64_t live_bytes = 0;   ///< util/memory_tracker gauge.

  int64_t guide_epoch = 0;
  int64_t guide_age_windows = -1;  ///< -1 = no guide published yet.
  int64_t refresh_failures = 0;    ///< Cumulative failed refresh cycles.

  /// Refresh cost attribution: the cycle whose publish landed at this
  /// window (inline refresh, or the window whose poll harvested a
  /// background cycle). All-zero/false when no publish landed here.
  double refresh_ms = 0.0;          ///< Solve wall time of that cycle.
  bool refresh_warm = false;        ///< Any component reused warm.
  int64_t refresh_components_total = 0;
  int64_t refresh_components_reused = 0;  ///< Dirty = total - reused.

  bool degraded_greedy = false;  ///< Segment ran the ladder's greedy rung.
  bool overloaded = false;       ///< Any shed trigger fired this window.
};

/// Lifetime aggregates across all processed windows.
struct ServiceTotals {
  int64_t windows = 0;
  int64_t segments = 0;
  int64_t offered = 0;
  int64_t admitted = 0;
  int64_t shed = 0;
  int64_t matched = 0;
  int64_t evictions = 0;
  int64_t dropped_arrivals = 0;
  /// Guide hot-swaps adopted by running shard sessions (mid-segment).
  int64_t guide_swaps = 0;
  /// Records freed while still live — the eviction safety invariant; any
  /// nonzero value is a harness bug (pinned by the property tests).
  int64_t evicted_live = 0;
  /// High-water mark of the object store (records held simultaneously).
  int64_t store_peak = 0;

  /// Guide refresh cost attribution across all published cycles.
  int64_t warm_refreshes = 0;  ///< Published cycles that reused components.
  int64_t cold_refreshes = 0;  ///< Published cycles that solved everything.
  int64_t refresh_components_reused = 0;
  int64_t refresh_components_solved = 0;
  double refresh_ms = 0.0;  ///< Total solve wall time of published cycles.
};

/// The long-running serving loop. Not thread-safe; drive from one thread.
class ServiceHarness {
 public:
  /// Builds a harness over the looped replay of `profile`. Fails on an
  /// unknown algorithm name or a malformed fault spec.
  static Result<std::unique_ptr<ServiceHarness>> Create(
      const CityProfile& profile, const LoopedTraceSource::Options& trace,
      const ServiceOptions& options);

  /// Processes the next `count` windows (admission, eviction, refresh,
  /// replay). A segment still open when the count is reached is rotated
  /// early, so every emitted window has complete metrics on return.
  Status RunWindows(int64_t count);

  const ServiceOptions& options() const { return options_; }
  const std::vector<WindowMetrics>& windows() const { return windows_; }
  const ServiceTotals& totals() const { return totals_; }
  const GuideRefresher::Stats& refresher_stats() const {
    return refresher_->stats();
  }
  const FaultInjector::Counters& fault_counters() const {
    return faults_.counters();
  }

  int64_t live_objects() const { return live_; }
  /// Records currently held (== admitted-ever with eviction off).
  int64_t store_size() const { return static_cast<int64_t>(store_.size()); }
  int64_t guide_epoch() const { return slot_.epoch(); }

  /// Every committed pair as (worker stream id, task stream id), in
  /// segment rotation order — deterministic, and independent of
  /// evict_expired (the bit-identity contract).
  const std::vector<std::pair<int64_t, int64_t>>& matched_pairs() const {
    return matched_pairs_;
  }

 private:
  /// One admitted (or carried-over) object, keyed by its stream id.
  struct ObjectRecord {
    ObjectKind kind = ObjectKind::kWorker;
    Point location;
    double abs_start = 0.0;
    double duration = 0.0;
    bool matched = false;

    double Deadline() const { return abs_start + duration; }
  };

  /// The segment currently accepting windows.
  struct Segment {
    bool open = false;
    int64_t begin = 0;
    int64_t end = 0;  ///< One past the last window (may shrink on flush).
    int64_t day = 0;
    GuideSlot::Snapshot start_guide;
    bool degraded = false;
    std::vector<int64_t> carryover;  ///< Stream ids, sorted ascending.
    std::vector<std::vector<int64_t>> admitted;  ///< Per window, in order.
    /// Publishes that landed mid-segment: applied at their window's
    /// AdvanceTo boundary during replay.
    std::vector<std::pair<int64_t, std::shared_ptr<const OfflineGuide>>>
        swaps;
  };

  /// One object of a segment's replay universe, on the day-relative axis.
  /// Also the element of the persistent rotation spine (incremental mode):
  /// the spine holds the previous segments' still-live unmatched objects
  /// sorted by (rel_time, kind, stream_id), rel_time relative to
  /// spine_day_.
  struct SpineEntry {
    int64_t stream_id = 0;
    ObjectKind kind = ObjectKind::kWorker;
    double rel_time = 0.0;
    double duration = 0.0;
    Point location;
    int64_t window = 0;  ///< Window its feed latency is attributed to.
  };

  ServiceHarness(LoopedTraceSource source, ServiceOptions options,
                 FaultInjector faults);

  Status StartDay(int64_t day);
  void ExpireUpTo(double time, WindowMetrics* metrics);
  Status HandleRefresh(int64_t window);
  PredictionMatrix PredictionFor(int64_t window) const;
  /// Rolling refit of the learned refresh predictor at a day boundary
  /// (refresh_predictor mode only): rebuilds the history-plus-realized
  /// dataset and fits fresh predictor instances on it.
  Status RefitPredictors(int64_t day);
  void StartSegment(int64_t window);
  /// Incremental-rotation carryover maintenance: drops dead spine entries
  /// (matched / freed / expired), re-times survivors when the segment's
  /// day differs from spine_day_, and restores the spine's sort order.
  /// O(carryover) (+ O(c log c) on a day change), never O(store).
  void CompactSpine(int64_t window, int64_t day);
  void AdmitWindow(int64_t window);
  Status ReplaySegment();

  LoopedTraceSource source_;
  ServiceOptions options_;
  FaultInjector faults_;
  GuideSlot slot_;
  /// Shared worker pool (analytical_slice > 0): shard drains and the
  /// refresher's bounded slice both run on it. Declared before the
  /// refresher so the refresher's slice drains first on destruction.
  std::unique_ptr<ThreadPool> shared_pool_;
  std::unique_ptr<GuideRefresher> refresher_;

  int64_t spd_ = 1;  ///< Slots (== windows) per day.
  int64_t next_window_ = 0;
  int64_t next_stream_id_ = 0;

  /// Current day's arrival cache and consumption cursor.
  std::vector<StreamArrival> day_arrivals_;
  size_t day_cursor_ = 0;

  /// Realized per-type counts: the running day and the last completed one
  /// (the refresh prediction source).
  std::vector<int32_t> day_workers_, day_tasks_;
  std::vector<int32_t> prev_workers_, prev_tasks_;
  bool have_prev_day_ = false;

  /// Learned-predictor refresh state (refresh_predictor mode only):
  /// realized counts of every completed stream day (appended to the
  /// generator history at each refit) and the current fitted predictors.
  std::vector<std::vector<int32_t>> realized_workers_, realized_tasks_;
  std::unique_ptr<Predictor> worker_predictor_, task_predictor_;
  std::unique_ptr<DemandDataset> predictor_data_;
  int predictor_target_day_ = 0;  ///< Dataset day PredictionFor predicts.

  std::unordered_map<int64_t, ObjectRecord> store_;
  /// (deadline, stream id) min-heap driving window-boundary expiry.
  std::priority_queue<std::pair<double, int64_t>,
                      std::vector<std::pair<double, int64_t>>,
                      std::greater<std::pair<double, int64_t>>>
      deadline_heap_;
  int64_t live_ = 0;
  /// Expired records awaiting their free at rotation (the open segment's
  /// replay may still match them; evict_expired mode only).
  std::vector<int64_t> deferred_free_;
  /// Deadline bound of the last ExpireUpTo — "already popped" horizon the
  /// match-marking live accounting keys off.
  double expired_up_to_ = 0.0;

  Segment segment_;
  double last_known_p99_ms_ = 0.0;  ///< From the last replayed window.

  /// Incremental rotation spine (see SpineEntry) and the day its rel_times
  /// are relative to (-1 before the first rotation).
  std::vector<SpineEntry> spine_;
  int64_t spine_day_ = -1;

  /// Refresh cost report awaiting attribution to the next emitted window
  /// (HandleRefresh runs before the window's metrics row exists).
  std::optional<GuideRefresher::CycleReport> pending_refresh_report_;

  std::vector<WindowMetrics> windows_;
  ServiceTotals totals_;
  std::vector<std::pair<int64_t, int64_t>> matched_pairs_;
};

}  // namespace ftoa

#endif  // FTOA_SERVE_SERVICE_HARNESS_H_
