// FaultInjector: seeded, window-indexed fault activation for the serving
// harness's robustness drills (serve/service_harness). A fault plan is a
// comma-separated spec string, each entry
//
//   <name>@<begin>-<end>[:<key>=<value>]...
//
// activating one fault over the inclusive window range [begin, end]:
//
//   slow-shard   a shard's decisions stall (params: shard = shard index,
//                -1 = every shard, default -1; stall-ms = stall per
//                decision, default 5).
//   guide-fail   background guide refreshes fail (param: count = how many
//                attempts fail inside the range, default 1).
//   flash        flash crowd — arrival volume multiplies (param:
//                factor >= 1, default 3; the harness clones admitted
//                arrivals with seeded jitter).
//   drop-batch   a staged handoff batch is dropped before it reaches the
//                shard (params: shard, default -1 = any; prob = drop
//                probability per batch from the seeded RNG, default 1).
//
// Example: "slow-shard@3-5:shard=1:stall-ms=40,guide-fail@4-6:count=2".
// Unknown fault names and unknown parameter keys are rejected with the
// valid set listed (same contract as the algorithm/router registries).
// Everything is deterministic in (spec, seed).

#ifndef FTOA_SERVE_FAULT_INJECTOR_H_
#define FTOA_SERVE_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace ftoa {

/// One parsed fault activation.
struct FaultSpec {
  std::string name;
  int64_t begin_window = 0;  ///< First affected window (inclusive).
  int64_t end_window = 0;    ///< Last affected window (inclusive).
  int shard = -1;            ///< Target shard; -1 = all/any.
  double stall_ms = 5.0;     ///< slow-shard: per-decision stall.
  int64_t count = 1;         ///< guide-fail: failing attempts remaining.
  double factor = 3.0;       ///< flash: arrival multiplier.
  double prob = 1.0;         ///< drop-batch: per-batch drop probability.
};

/// Window-indexed fault oracle the harness consults at each decision
/// point. Default-constructed = no faults (every query benign).
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Parses a fault plan. The empty string yields a no-fault injector.
  static Result<FaultInjector> Parse(const std::string& spec,
                                     uint64_t seed = 0);

  bool empty() const { return faults_.empty(); }
  const std::vector<FaultSpec>& faults() const { return faults_; }

  /// Per-decision stall (ms) for `shard` in `window`; 0 when unaffected.
  /// Overlapping slow-shard entries add up.
  double SlowShardStallMs(int64_t window, int shard) const;

  /// Arrival-volume multiplier for `window` (1.0 = no flash crowd).
  /// Overlapping flash entries multiply.
  double FlashCrowdFactor(int64_t window) const;

  /// True when the guide refresh attempted in `window` must fail; consumes
  /// one unit of the matching entry's `count`.
  bool GuideRefreshShouldFail(int64_t window);

  /// True when a handoff batch bound for `shard` in `window` must be
  /// dropped (seeded draw against `prob`).
  bool ShouldDropHandoffBatch(int64_t window, int shard);

  /// Jitter source for flash-crowd clones (deterministic in seed).
  Rng& rng() { return rng_; }

  /// How often each fault actually fired (soak assertions read these).
  struct Counters {
    int64_t guide_failures = 0;
    int64_t dropped_batches = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  std::vector<FaultSpec> faults_;
  Rng rng_;
  Counters counters_;
};

}  // namespace ftoa

#endif  // FTOA_SERVE_FAULT_INJECTOR_H_
