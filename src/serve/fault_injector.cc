#include "serve/fault_injector.h"

#include <cstdlib>
#include <utility>

namespace ftoa {

namespace {

constexpr const char* kValidFaults =
    "slow-shard, guide-fail, flash, drop-batch";

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

Status ParseNumber(const std::string& entry, const std::string& text,
                   double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    return Status::InvalidArgument("fault spec '" + entry +
                                   "': malformed number '" + text + "'");
  }
  return Status::OK();
}

Status ApplyParam(const std::string& entry, FaultSpec* fault,
                  const std::string& key, double value) {
  const bool is_slow = fault->name == "slow-shard";
  const bool is_fail = fault->name == "guide-fail";
  const bool is_flash = fault->name == "flash";
  const bool is_drop = fault->name == "drop-batch";
  if (key == "shard" && (is_slow || is_drop)) {
    fault->shard = static_cast<int>(value);
  } else if (key == "stall-ms" && is_slow) {
    if (value < 0) {
      return Status::InvalidArgument("fault spec '" + entry +
                                     "': stall-ms must be >= 0");
    }
    fault->stall_ms = value;
  } else if (key == "count" && is_fail) {
    if (value < 1) {
      return Status::InvalidArgument("fault spec '" + entry +
                                     "': count must be >= 1");
    }
    fault->count = static_cast<int64_t>(value);
  } else if (key == "factor" && is_flash) {
    if (value < 1.0) {
      return Status::InvalidArgument("fault spec '" + entry +
                                     "': factor must be >= 1");
    }
    fault->factor = value;
  } else if (key == "prob" && is_drop) {
    if (value < 0.0 || value > 1.0) {
      return Status::InvalidArgument("fault spec '" + entry +
                                     "': prob must be in [0, 1]");
    }
    fault->prob = value;
  } else {
    std::string valid;
    if (is_slow) valid = "shard, stall-ms";
    if (is_fail) valid = "count";
    if (is_flash) valid = "factor";
    if (is_drop) valid = "shard, prob";
    return Status::InvalidArgument("fault spec '" + entry +
                                   "': unknown parameter '" + key + "' for " +
                                   fault->name + " (valid: " + valid + ")");
  }
  return Status::OK();
}

Result<FaultSpec> ParseEntry(const std::string& entry) {
  const size_t at = entry.find('@');
  if (at == std::string::npos) {
    return Status::InvalidArgument(
        "fault spec '" + entry +
        "': expected <name>@<begin>-<end>[:<key>=<value>]...");
  }
  FaultSpec fault;
  fault.name = entry.substr(0, at);
  if (fault.name != "slow-shard" && fault.name != "guide-fail" &&
      fault.name != "flash" && fault.name != "drop-batch") {
    return Status::InvalidArgument("unknown fault '" + fault.name +
                                   "' (valid faults: " + kValidFaults + ")");
  }

  const std::vector<std::string> fields = Split(entry.substr(at + 1), ':');
  const size_t dash = fields[0].find('-');
  if (dash == std::string::npos) {
    return Status::InvalidArgument("fault spec '" + entry +
                                   "': window range must be <begin>-<end>");
  }
  double begin = 0.0;
  double end = 0.0;
  FTOA_RETURN_NOT_OK(ParseNumber(entry, fields[0].substr(0, dash), &begin));
  FTOA_RETURN_NOT_OK(ParseNumber(entry, fields[0].substr(dash + 1), &end));
  fault.begin_window = static_cast<int64_t>(begin);
  fault.end_window = static_cast<int64_t>(end);
  if (fault.begin_window < 0 || fault.end_window < fault.begin_window) {
    return Status::InvalidArgument(
        "fault spec '" + entry +
        "': window range must satisfy 0 <= begin <= end");
  }

  for (size_t i = 1; i < fields.size(); ++i) {
    const size_t eq = fields[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec '" + entry +
                                     "': parameter '" + fields[i] +
                                     "' must be <key>=<value>");
    }
    double value = 0.0;
    FTOA_RETURN_NOT_OK(ParseNumber(entry, fields[i].substr(eq + 1), &value));
    FTOA_RETURN_NOT_OK(
        ApplyParam(entry, &fault, fields[i].substr(0, eq), value));
  }
  return fault;
}

bool InWindow(const FaultSpec& fault, int64_t window) {
  return window >= fault.begin_window && window <= fault.end_window;
}

}  // namespace

Result<FaultInjector> FaultInjector::Parse(const std::string& spec,
                                           uint64_t seed) {
  FaultInjector injector;
  injector.rng_.Seed(seed ^ 0xfa017c0ffee1ULL);
  if (spec.empty()) return injector;
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) {
      return Status::InvalidArgument(
          "fault spec: empty entry (trailing or doubled comma?)");
    }
    FTOA_ASSIGN_OR_RETURN(FaultSpec fault, ParseEntry(entry));
    injector.faults_.push_back(std::move(fault));
  }
  return injector;
}

double FaultInjector::SlowShardStallMs(int64_t window, int shard) const {
  double total = 0.0;
  for (const FaultSpec& fault : faults_) {
    if (fault.name == "slow-shard" && InWindow(fault, window) &&
        (fault.shard < 0 || fault.shard == shard)) {
      total += fault.stall_ms;
    }
  }
  return total;
}

double FaultInjector::FlashCrowdFactor(int64_t window) const {
  double factor = 1.0;
  for (const FaultSpec& fault : faults_) {
    if (fault.name == "flash" && InWindow(fault, window)) {
      factor *= fault.factor;
    }
  }
  return factor;
}

bool FaultInjector::GuideRefreshShouldFail(int64_t window) {
  for (FaultSpec& fault : faults_) {
    if (fault.name == "guide-fail" && InWindow(fault, window) &&
        fault.count > 0) {
      --fault.count;
      ++counters_.guide_failures;
      return true;
    }
  }
  return false;
}

bool FaultInjector::ShouldDropHandoffBatch(int64_t window, int shard) {
  for (const FaultSpec& fault : faults_) {
    if (fault.name == "drop-batch" && InWindow(fault, window) &&
        (fault.shard < 0 || fault.shard == shard)) {
      if (fault.prob >= 1.0 || rng_.NextDouble() < fault.prob) {
        ++counters_.dropped_batches;
        return true;
      }
    }
  }
  return false;
}

}  // namespace ftoa
