// Live guide refresh for the serving harness: GuideSlot holds the current
// epoch-stamped OfflineGuide behind a mutex (published once, then shared
// immutably via shared_ptr — the reader side is one pointer copy), and
// GuideRefresher regenerates guides from a live PredictionMatrix with
// retry, backoff, a wall-clock deadline, and pluggable fault injection.
//
// Two refresh modes:
//  * RefreshNow — synchronous, on the calling thread. Deterministic: used
//    by tests and by deterministic replays where the refresh must land at
//    an exact window boundary.
//  * StartBackground/Poll — the solve runs on the refresher's own
//    single-thread pool under a SubmitWithDeadline deadline; the harness
//    polls at window boundaries and publishes a completed result. A solve
//    that misses its deadline is *discarded* (DeadlineTask's contract:
//    joined, never abandoned, reported as DeadlineExceeded) — a stale
//    guide is never replaced by a late one out of order.
//
// Failure semantics (the degradation ladder's input): a refresh cycle that
// exhausts its attempts leaves the slot untouched and reports the error.
// The harness then continues on the stale guide, and drops to guide-free
// greedy only when staleness exceeds its own bound. An injected
// "guide-fail" fault fails the whole cycle (every attempt), which is what
// lets a soak force the ladder to engage deterministically.

#ifndef FTOA_SERVE_GUIDE_REFRESHER_H_
#define FTOA_SERVE_GUIDE_REFRESHER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "core/guide.h"
#include "core/guide_generator.h"
#include "core/prediction_matrix.h"
#include "serve/fault_injector.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace ftoa {

/// Epoch-stamped holder of the current guide. Thread-safe; Get() is a
/// shared_ptr copy, so readers never block publishers for long.
class GuideSlot {
 public:
  struct Snapshot {
    std::shared_ptr<const OfflineGuide> guide;  ///< Null before 1st publish.
    int64_t epoch = 0;             ///< Increments per publish.
    int64_t published_window = -1; ///< Window the guide was published at.
  };

  Snapshot Get() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }

  int64_t epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_.epoch;
  }

  /// Installs `guide` as the new epoch. Returns the published snapshot.
  Snapshot Publish(std::shared_ptr<const OfflineGuide> guide,
                   int64_t window) {
    std::lock_guard<std::mutex> lock(mutex_);
    current_.guide = std::move(guide);
    ++current_.epoch;
    current_.published_window = window;
    return current_;
  }

 private:
  mutable std::mutex mutex_;
  Snapshot current_;
};

/// Regenerates guides from live predictions, with retry/backoff/deadline.
class GuideRefresher {
 public:
  struct Options {
    /// Attempts per refresh cycle before the cycle is reported failed.
    int max_attempts = 3;
    /// Base backoff between attempts, doubling per retry. 0 (the
    /// deterministic-test default) retries immediately.
    double backoff_ms = 0.0;
    /// Wall-clock deadline of one background solve (StartBackground).
    double timeout_ms = 5000.0;
    /// Analytical pool isolation: when set, background solves run on a
    /// PoolSlice of this *borrowed* pool (shared with the shard actors)
    /// instead of the refresher's own dedicated thread — bounded to
    /// `slice_tokens` concurrent tasks so a solve can never occupy every
    /// worker. Null (the default) keeps the dedicated 1-thread pool. The
    /// pool must outlive the refresher.
    ThreadPool* shared_pool = nullptr;
    /// Token-bucket size of the shared-pool slice (clamped to >= 1).
    int slice_tokens = 1;
  };

  /// `faults` may be null (no injection) and is only ever consulted on the
  /// caller's thread; it must outlive the refresher.
  GuideRefresher(double velocity, GuideOptions guide_options, Options options,
                 FaultInjector* faults = nullptr);
  ~GuideRefresher();

  /// Synchronous refresh cycle: generate (with retries), publish into
  /// `slot` on success. On failure the slot is untouched and the last
  /// attempt's error is returned.
  Result<GuideSlot::Snapshot> RefreshNow(const PredictionMatrix& prediction,
                                         int64_t window, GuideSlot* slot);

  /// Starts a background refresh cycle for `window`, publishing into
  /// `slot` when Poll observes completion in time. Returns false (and does
  /// nothing) when a cycle is already in flight. The prediction is copied.
  bool StartBackground(PredictionMatrix prediction, int64_t window,
                       GuideSlot* slot);

  /// What Poll observed about the background cycle.
  enum class PollResult {
    kIdle,       ///< Nothing in flight.
    kRunning,    ///< Still solving (within its deadline, or late but not
                 ///< yet reported as timed out).
    kPublished,  ///< Completed in time; the slot now holds the new guide.
    kFailed,     ///< Cycle failed (all attempts failed, or the deadline
                 ///< passed — a late result will be silently discarded).
  };

  /// Non-blocking progress check; publishes a completed in-time result.
  /// A deadline miss is reported as kFailed and the cycle is abandoned
  /// immediately (the late solve finishes on the pool thread and its
  /// result dies with the discarded future) so a new cycle can start.
  PollResult Poll();

  /// True while a background cycle is in flight.
  bool busy() const { return inflight_.has_value(); }

  struct Stats {
    int64_t attempts = 0;       ///< Individual generate attempts.
    int64_t failed_cycles = 0;  ///< Cycles that published nothing.
    int64_t publishes = 0;
    int64_t timeouts = 0;       ///< Background cycles past their deadline.
  };
  const Stats& stats() const { return stats_; }

  /// Cost attribution of the most recent *published* cycle (RefreshNow or
  /// a harvested background cycle): solve wall time plus the generator's
  /// warm-cache outcome, so the serving harness can report warm-vs-cold
  /// refresh cost per window. Failed/timed-out cycles leave it untouched.
  struct CycleReport {
    double solve_ms = 0.0;       ///< Wall time of the publishing cycle.
    GuideRefreshStats refresh;   ///< Warm-cache outcome of that cycle.
  };
  const CycleReport& last_cycle() const { return last_cycle_; }

 private:
  struct InFlight {
    DeadlineTask<Result<OfflineGuide>> task;
    int64_t window = 0;
    GuideSlot* slot = nullptr;
    /// Written by the background lambda once, read at harvest (atomic: the
    /// write races with a Poll that reports a timeout first — those
    /// attempts are then simply not merged into stats).
    std::shared_ptr<std::atomic<int64_t>> attempts;
    /// Cycle attribution, written by the lambda before it returns. Plain
    /// (non-atomic) by design: it is only read after the task's future is
    /// observed ready, which synchronizes-with the lambda's return — the
    /// timeout path never reads it.
    std::shared_ptr<CycleReport> report;
  };

  Result<OfflineGuide> GenerateWithRetries(const PredictionMatrix& prediction,
                                           bool injected_fail,
                                           GuideGenerator* generator,
                                           const CancellationToken* token,
                                           int64_t* attempts);

  double velocity_;
  GuideOptions guide_options_;
  Options options_;
  FaultInjector* faults_;  // Borrowed; may be null.

  /// Caller-thread generator (RefreshNow) and pool-thread generator
  /// (background lambda) — GuideGenerator is not thread-safe, so each
  /// thread keeps its own (solver-arena reuse stays effective per mode).
  GuideGenerator inline_generator_;
  GuideGenerator background_generator_;

  std::unique_ptr<ThreadPool> pool_;  ///< Lazily created, 1 thread (only
                                      ///< when no shared pool is lent).
  std::unique_ptr<PoolSlice> slice_;  ///< Lazily created bounded slice of
                                      ///< options_.shared_pool.
  std::optional<InFlight> inflight_;
  Stats stats_;
  CycleReport last_cycle_;
};

}  // namespace ftoa

#endif  // FTOA_SERVE_GUIDE_REFRESHER_H_
