#include "serve/guide_refresher.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "util/stopwatch.h"

namespace ftoa {

GuideRefresher::GuideRefresher(double velocity, GuideOptions guide_options,
                               Options options, FaultInjector* faults)
    : velocity_(velocity),
      guide_options_(guide_options),
      options_(options),
      faults_(faults),
      inline_generator_(velocity, guide_options),
      background_generator_(velocity, guide_options) {
  options_.max_attempts = std::max(1, options_.max_attempts);
}

GuideRefresher::~GuideRefresher() {
  // The pool (or slice) destructor drains its queue, so a late background
  // solve runs to completion (its result is discarded with the future).
}

Result<OfflineGuide> GuideRefresher::GenerateWithRetries(
    const PredictionMatrix& prediction, bool injected_fail,
    GuideGenerator* generator, const CancellationToken* token,
    int64_t* attempts) {
  Status last = Status::Internal("guide refresh: no attempt ran");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (token != nullptr && token->IsCancelled()) {
      return Status::DeadlineExceeded(
          "guide refresh cancelled between attempts");
    }
    if (attempt > 0 && options_.backoff_ms > 0.0) {
      const double factor = static_cast<double>(1 << (attempt - 1));
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.backoff_ms * factor));
    }
    ++*attempts;
    if (injected_fail) {
      // An injected fault fails the whole cycle: every attempt reports the
      // same injected error, so the degradation ladder engages even with
      // retries on.
      last = Status::Internal("injected guide-solve failure");
      continue;
    }
    Result<OfflineGuide> guide = generator->Generate(prediction);
    if (guide.ok()) return guide;
    last = guide.status();
  }
  return last;
}

Result<GuideSlot::Snapshot> GuideRefresher::RefreshNow(
    const PredictionMatrix& prediction, int64_t window, GuideSlot* slot) {
  const bool injected_fail =
      faults_ != nullptr && faults_->GuideRefreshShouldFail(window);
  int64_t attempts = 0;
  const Stopwatch stopwatch;
  Result<OfflineGuide> guide = GenerateWithRetries(
      prediction, injected_fail, &inline_generator_, nullptr, &attempts);
  stats_.attempts += attempts;
  if (!guide.ok()) {
    ++stats_.failed_cycles;
    return guide.status();
  }
  last_cycle_.solve_ms =
      static_cast<double>(stopwatch.ElapsedNanos()) * 1e-6;
  last_cycle_.refresh = inline_generator_.last_refresh_stats();
  ++stats_.publishes;
  return slot->Publish(
      std::make_shared<const OfflineGuide>(std::move(guide).value()), window);
}

bool GuideRefresher::StartBackground(PredictionMatrix prediction,
                                     int64_t window, GuideSlot* slot) {
  if (inflight_.has_value()) return false;
  // Fault decisions are taken here, on the caller's thread — the injector
  // is not thread-safe and the background lambda must not touch it.
  const bool injected_fail =
      faults_ != nullptr && faults_->GuideRefreshShouldFail(window);
  auto attempts = std::make_shared<std::atomic<int64_t>>(0);
  auto report = std::make_shared<CycleReport>();
  auto cycle = [this, prediction = std::move(prediction), injected_fail,
                attempts,
                report](const CancellationToken& token)
      -> Result<OfflineGuide> {
    const Stopwatch stopwatch;
    int64_t local = 0;
    Result<OfflineGuide> guide = GenerateWithRetries(
        prediction, injected_fail, &background_generator_, &token, &local);
    attempts->store(local, std::memory_order_relaxed);
    if (guide.ok()) {
      report->solve_ms =
          static_cast<double>(stopwatch.ElapsedNanos()) * 1e-6;
      report->refresh = background_generator_.last_refresh_stats();
    }
    return guide;
  };
  const auto deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(options_.timeout_ms));
  DeadlineTask<Result<OfflineGuide>> task;
  if (options_.shared_pool != nullptr) {
    // Analytical isolation: run on a bounded slice of the shared pool so
    // the solve competes with shard actors for at most slice_tokens
    // workers (see PoolSlice).
    if (slice_ == nullptr) {
      slice_ = std::make_unique<PoolSlice>(options_.shared_pool,
                                           options_.slice_tokens);
    }
    task = slice_->SubmitWithDeadline(std::move(cycle), deadline);
  } else {
    if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(1);
    task = pool_->SubmitWithDeadline(std::move(cycle), deadline);
  }
  inflight_ = InFlight{std::move(task), window, slot, std::move(attempts),
                       std::move(report)};
  return true;
}

GuideRefresher::PollResult GuideRefresher::Poll() {
  if (!inflight_.has_value()) return PollResult::kIdle;
  InFlight& inflight = *inflight_;
  if (!inflight.task.Poll()) {
    // Not finished. Poll() above has already requested cancellation if the
    // deadline passed; report the miss and free the refresher — the late
    // task keeps running on the pool and its result dies with the
    // discarded future (it is a Result, so no exception can be lost).
    if (inflight.task.token().IsCancelled()) {
      ++stats_.timeouts;
      ++stats_.failed_cycles;
      inflight_.reset();
      return PollResult::kFailed;
    }
    return PollResult::kRunning;
  }

  // Finished: harvest. Await does not block on a ready future; a result
  // that arrived past the deadline comes back as DeadlineExceeded and is
  // discarded, never published out of order.
  Result<Result<OfflineGuide>> outcome = inflight.task.Await();
  const int64_t window = inflight.window;
  GuideSlot* slot = inflight.slot;
  stats_.attempts += inflight.attempts->load(std::memory_order_relaxed);
  // Safe to read: the future was observed ready above, which
  // synchronizes-with the lambda's writes to the report cell.
  const CycleReport harvested = *inflight.report;
  inflight_.reset();

  if (!outcome.ok()) {
    ++stats_.failed_cycles;
    if (outcome.status().IsDeadlineExceeded()) ++stats_.timeouts;
    return PollResult::kFailed;
  }
  Result<OfflineGuide> guide = std::move(outcome).value();
  if (!guide.ok()) {
    ++stats_.failed_cycles;
    return PollResult::kFailed;
  }
  ++stats_.publishes;
  last_cycle_ = harvested;
  slot->Publish(
      std::make_shared<const OfflineGuide>(std::move(guide).value()), window);
  return PollResult::kPublished;
}

}  // namespace ftoa
